// Tests of the static policy analyzer, including property-style
// ground-truth checks against the runtime:
//
//   * every `unsat-object` verdict is validated by evaluating the path
//     on generated valid documents (it must select nothing);
//   * every `shadowed` verdict is validated by removing the
//     authorization and comparing ComputeView output for a population
//     of requesters (the view must not change);
//   * the decision coverage table is validated against the labeling
//     pass on generated instances of two DTDs, one of them recursive.

#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "authz/labeling.h"
#include "authz/processor.h"
#include "workload/authgen.h"
#include "workload/docgen.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/validator.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlsec {
namespace analysis {
namespace {

using authz::Authorization;
using authz::AuthType;
using authz::GroupStore;
using authz::Requester;
using authz::Sign;
using authz::Subject;
using authz::TriSign;

Authorization Auth(const std::string& subject, const std::string& path,
                   Sign sign, AuthType type,
                   const std::string& uri = "doc.xml") {
  Authorization auth;
  auto made = Subject::Make(subject, "*", "*");
  EXPECT_TRUE(made.ok());
  auth.subject = *made;
  auth.object.uri = uri;
  auth.object.path = path;
  auth.sign = sign;
  auth.type = type;
  return auth;
}

std::unique_ptr<xml::Dtd> MustParseDtd(const std::string& text) {
  auto dtd = xml::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

std::vector<const authz::LintFinding*> FindingsWithCode(
    const PolicyAnalysis& analysis, const std::string& code) {
  std::vector<const authz::LintFinding*> out;
  for (const authz::LintFinding& f : analysis.findings) {
    if (f.code == code) out.push_back(&f);
  }
  return out;
}

const Decision* CellFor(const CoverageTable& table, const SchemaPoint& point,
                        const Subject& subject) {
  for (size_t i = 0; i < table.points.size(); ++i) {
    if (!(table.points[i] == point)) continue;
    for (size_t j = 0; j < table.subjects.size(); ++j) {
      if (table.subjects[j] == subject) return &table.cells[i][j];
    }
  }
  return nullptr;
}

// --- Finding-level unit tests -------------------------------------------

class LaboratoryAnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override { dtd_ = MustParseDtd(workload::LaboratoryDtd()); }

  PolicyAnalysis Analyze(std::vector<Authorization> instance,
                         std::vector<Authorization> schema = {},
                         AnalyzerOptions options = {}) {
    return AnalyzePolicy(instance, schema, groups_, *dtd_, options);
  }

  std::unique_ptr<xml::Dtd> dtd_;
  GroupStore groups_;
};

TEST_F(LaboratoryAnalyzerTest, FlagsUnsatisfiableObjects) {
  PolicyAnalysis analysis = Analyze(
      {Auth("Public", "//budget", Sign::kMinus, AuthType::kRecursive),
       Auth("Public", "//paper", Sign::kPlus, AuthType::kRecursive)});
  auto unsat = FindingsWithCode(analysis, "unsat-object");
  ASSERT_EQ(unsat.size(), 1u);
  EXPECT_EQ(unsat[0]->auth_index, 0);
  EXPECT_EQ(unsat[0]->severity, authz::LintSeverity::kWarning);
}

TEST_F(LaboratoryAnalyzerTest, FlagsSameSignShadowing) {
  // The broader recursive authorization dominates the narrower one.
  PolicyAnalysis analysis = Analyze(
      {Auth("Public", "//project", Sign::kPlus, AuthType::kRecursive),
       Auth("Public", "//paper", Sign::kPlus, AuthType::kRecursive)});
  auto shadowed = FindingsWithCode(analysis, "shadowed");
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(shadowed[0]->auth_index, 1);
}

TEST_F(LaboratoryAnalyzerTest, OppositeSignBlocksShadowing) {
  // Same pair, but a denial overlaps the shadowed region: the narrower
  // authorization now matters (it can re-permit under a more specific
  // subject or flip slot resolution), so it must not be reported.
  groups_.AddMembership("tom", "Public");
  PolicyAnalysis analysis = Analyze(
      {Auth("Public", "//project", Sign::kPlus, AuthType::kRecursive),
       Auth("Public", "//paper", Sign::kPlus, AuthType::kRecursive),
       Auth("tom", "//paper", Sign::kMinus, AuthType::kLocal)});
  EXPECT_TRUE(FindingsWithCode(analysis, "shadowed").empty());
}

TEST_F(LaboratoryAnalyzerTest, SubjectSpecificityRequiredForShadowing) {
  // The candidate's subject must be dominated by the witness's.
  groups_.AddUser("tom");
  groups_.AddGroup("Staff");
  PolicyAnalysis analysis = Analyze(
      {Auth("Staff", "//paper", Sign::kPlus, AuthType::kRecursive),
       Auth("tom", "//paper", Sign::kPlus, AuthType::kRecursive)});
  // tom is not a member of Staff: neither shadows the other.
  EXPECT_TRUE(FindingsWithCode(analysis, "shadowed").empty());

  groups_.AddMembership("tom", "Staff");
  analysis = Analyze(
      {Auth("Staff", "//paper", Sign::kPlus, AuthType::kRecursive),
       Auth("tom", "//paper", Sign::kPlus, AuthType::kRecursive)});
  auto shadowed = FindingsWithCode(analysis, "shadowed");
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(shadowed[0]->auth_index, 1);
}

TEST_F(LaboratoryAnalyzerTest, OppositeSignShadowingUnderDenialsPolicy) {
  // Identical slots, opposite signs: under denials-take-precedence the
  // permission can never win — it is shadowed by the denial.
  PolicyAnalysis analysis = Analyze(
      {Auth("Public", "//paper", Sign::kPlus, AuthType::kLocal),
       Auth("Public", "//paper", Sign::kMinus, AuthType::kLocal)});
  auto shadowed = FindingsWithCode(analysis, "shadowed");
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(shadowed[0]->auth_index, 0);

  // Under nothing-takes-precedence there is no static winner.
  AnalyzerOptions options;
  options.policy.conflict = authz::ConflictPolicy::kNothingTakesPrecedence;
  analysis = Analyze(
      {Auth("Public", "//paper", Sign::kPlus, AuthType::kLocal),
       Auth("Public", "//paper", Sign::kMinus, AuthType::kLocal)},
      {}, options);
  EXPECT_TRUE(FindingsWithCode(analysis, "shadowed").empty());
}

TEST_F(LaboratoryAnalyzerTest, FlagsStaticConflicts) {
  groups_.AddMembership("tom", "Public");
  PolicyAnalysis analysis = Analyze(
      {Auth("Public", "//project", Sign::kPlus, AuthType::kRecursive),
       Auth("tom", "//paper", Sign::kMinus, AuthType::kRecursive)});
  auto conflicts = FindingsWithCode(analysis, "schema-conflict");
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_NE(conflicts[0]->message.find("more specific subject"),
            std::string::npos);

  // Disjoint objects: no conflict.
  analysis = Analyze(
      {Auth("Public", "//manager", Sign::kPlus, AuthType::kRecursive),
       Auth("tom", "//paper", Sign::kMinus, AuthType::kRecursive)});
  EXPECT_TRUE(FindingsWithCode(analysis, "schema-conflict").empty());

  // Incomparable subjects: resolved by design, not reported.
  groups_.AddUser("bob");
  groups_.AddGroup("Staff");
  analysis = Analyze(
      {Auth("Staff", "//paper", Sign::kPlus, AuthType::kRecursive),
       Auth("bob", "//paper", Sign::kMinus, AuthType::kRecursive)});
  EXPECT_TRUE(FindingsWithCode(analysis, "schema-conflict").empty());
}

TEST_F(LaboratoryAnalyzerTest, DisjointWindowsDoNotConflict) {
  Authorization allow =
      Auth("Public", "//paper", Sign::kPlus, AuthType::kRecursive);
  Authorization deny =
      Auth("Public", "//paper", Sign::kMinus, AuthType::kRecursive);
  allow.valid_from = 0;
  allow.valid_until = 99;
  deny.valid_from = 100;
  deny.valid_until = 200;
  PolicyAnalysis analysis = Analyze({allow, deny});
  EXPECT_TRUE(FindingsWithCode(analysis, "schema-conflict").empty());
}

TEST_F(LaboratoryAnalyzerTest, CoverageTableDecisions) {
  groups_.AddMembership("tom", "Public");
  AnalyzerOptions options;
  PolicyAnalysis analysis = Analyze(
      {Auth("Public", "", Sign::kPlus, AuthType::kRecursive),
       Auth("tom", "//paper", Sign::kMinus, AuthType::kLocal)},
      {}, options);

  Subject pub = *Subject::Make("Public", "*", "*");
  Subject tom = *Subject::Make("tom", "*", "*");

  // Public: only the root grant applies — definitely '+' everywhere.
  for (const SchemaPoint& point : analysis.coverage.points) {
    const Decision* cell = CellFor(analysis.coverage, point, pub);
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(*cell, Decision::kPlus) << point.ToString();
  }
  // tom: the denial overrides on papers (mixed signs => unknown there),
  // '+' elsewhere.
  const Decision* cell =
      CellFor(analysis.coverage, SchemaPoint{"paper", ""}, tom);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(*cell, Decision::kUnknown);
  cell = CellFor(analysis.coverage, SchemaPoint{"title", ""}, tom);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(*cell, Decision::kPlus);
}

TEST_F(LaboratoryAnalyzerTest, CoverageOpenAndOrOpenDecisions) {
  PolicyAnalysis analysis = Analyze(
      {Auth("Public", "//paper[./@category=\"public\"]", Sign::kPlus,
            AuthType::kRecursive)});
  Subject pub = *Subject::Make("Public", "*", "*");
  // The predicate may deselect instances: '+' or open, never definite.
  const Decision* cell =
      CellFor(analysis.coverage, SchemaPoint{"paper", ""}, pub);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(*cell, Decision::kPlusOrOpen);
  // Untouched regions stay open.
  cell = CellFor(analysis.coverage, SchemaPoint{"manager", ""}, pub);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(*cell, Decision::kOpen);
}

TEST_F(LaboratoryAnalyzerTest, ReportContainsFindingsAndTable) {
  PolicyAnalysis analysis = Analyze(
      {Auth("Public", "//budget", Sign::kMinus, AuthType::kRecursive)});
  std::string report = AnalysisReport(analysis);
  EXPECT_NE(report.find("unsat-object"), std::string::npos);
  EXPECT_NE(report.find("decision coverage"), std::string::npos);
  EXPECT_NE(report.find("laboratory"), std::string::npos);
}

TEST(AnalyzerEdgeTest, EmptyDtdYieldsNoSchemaFinding) {
  auto dtd = xml::ParseDtd("<!ENTITY x \"y\">");
  ASSERT_TRUE(dtd.ok());
  GroupStore groups;
  PolicyAnalysis analysis = AnalyzePolicy({}, {}, groups, **dtd, {});
  auto missing = FindingsWithCode(analysis, "no-schema");
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_TRUE(analysis.coverage.points.empty());
}

// --- Property: unsat verdicts hold on generated documents ---------------

TEST(AnalyzerPropertyTest, UnsatVerdictsSelectNothingOnInstances) {
  // Candidate paths: a mix of live, dead, and unanalyzable ones.
  const std::vector<std::string> paths = {
      "//paper", "//budget", "/laboratory/paper", "project/fund",
      "//paper[./@category=\"public\"]", "//paper[./@owner]",
      "//member/lname", "//manager/paper", "//fund/@sponsor",
      "//title/@id", "project/manager | project/budget", "//paper/.."};

  auto dtd = MustParseDtd(workload::LaboratoryDtd());
  SchemaGraph graph = SchemaGraph::Build(*dtd);
  ASSERT_TRUE(graph.valid());
  PathAnalyzer analyzer(&graph);

  for (uint64_t seed : {1u, 7u, 23u}) {
    std::unique_ptr<xml::Document> doc =
        workload::GenerateLaboratory(3, 4, seed);
    ASSERT_NE(doc->root(), nullptr);
    for (const std::string& path : paths) {
      AbstractSelection sel = analyzer.Analyze(path);
      if (sel.unknown) continue;
      auto compiled = xpath::CompileXPath(path);
      ASSERT_TRUE(compiled.ok()) << path;
      xpath::Evaluator evaluator;
      auto selected = evaluator.SelectNodes(**compiled, doc->root());
      ASSERT_TRUE(selected.ok()) << path;
      if (sel.definitely_empty()) {
        EXPECT_TRUE(selected->empty())
            << "claimed unsatisfiable but selects nodes: " << path;
      }
      // Soundness of the over-approximation: every concretely selected
      // element/attribute maps to an abstract point.
      for (const xml::Node* node : *selected) {
        if (const xml::Element* el = node->AsElement()) {
          EXPECT_TRUE(sel.MayContain(SchemaPoint{el->tag(), ""}))
              << path << " selected element " << el->tag();
        } else if (const xml::Attr* attr = node->AsAttr()) {
          const xml::Element* owner = node->ParentElement();
          ASSERT_NE(owner, nullptr);
          EXPECT_TRUE(
              sel.MayContain(SchemaPoint{owner->tag(), attr->name()}))
              << path << " selected @" << attr->name();
        }
      }
    }
  }
}

// --- Property: shadowed auths never change any view ---------------------

TEST(AnalyzerPropertyTest, ShadowedAuthRemovalPreservesViews) {
  int shadowed_total = 0;
  for (uint64_t seed : {3u, 11u, 42u, 77u}) {
    workload::DocGenConfig doc_config;
    doc_config.depth = 3;
    doc_config.fanout = 3;
    doc_config.seed = seed;
    std::unique_ptr<xml::Document> doc =
        workload::GenerateDocument(doc_config);
    ASSERT_NE(doc->dtd(), nullptr);

    workload::AuthGenConfig auth_config;
    auth_config.count = 24;
    auth_config.weak_fraction = 0;  // ComputeView rejects weak schema auths
    auth_config.seed = seed * 31 + 5;
    workload::GeneratedWorkload wl = workload::GenerateAuthorizations(
        *doc, "d.xml", "s.dtd", auth_config);

    // Duplicate a few authorizations verbatim so shadowing always has
    // material to find (generated ones are often pairwise distinct).
    for (size_t k = 0; k + 1 < wl.instance_auths.size() && k < 4; k += 2) {
      wl.instance_auths.push_back(wl.instance_auths[k]);
    }

    PolicyAnalysis analysis = AnalyzePolicy(
        wl.instance_auths, wl.schema_auths, wl.groups, *doc->dtd(), {});

    // Requester population: the generated requester plus every user.
    std::vector<Requester> requesters = {wl.requester};
    for (const std::string& user : wl.users) {
      Requester rq = wl.requester;
      rq.user = user;
      requesters.push_back(rq);
    }

    authz::SecurityProcessor processor(&wl.groups, {});
    for (const authz::LintFinding* finding :
         FindingsWithCode(analysis, "shadowed")) {
      ++shadowed_total;
      size_t index = static_cast<size_t>(finding->auth_index);
      ASSERT_LT(index, wl.instance_auths.size() + wl.schema_auths.size());
      std::vector<Authorization> instance = wl.instance_auths;
      std::vector<Authorization> schema = wl.schema_auths;
      if (index < instance.size()) {
        instance.erase(instance.begin() + static_cast<int64_t>(index));
      } else {
        schema.erase(schema.begin() +
                     static_cast<int64_t>(index - instance.size()));
      }
      for (const Requester& rq : requesters) {
        auto with = processor.ComputeView(*doc, wl.instance_auths,
                                          wl.schema_auths, rq);
        auto without = processor.ComputeView(*doc, instance, schema, rq);
        ASSERT_TRUE(with.ok() && without.ok());
        EXPECT_EQ(with->ToXml(), without->ToXml())
            << "removing shadowed auth#" << index << " changed the view of "
            << rq.ToString() << " (seed " << seed << ")";
      }
    }
  }
  // The duplicated authorizations guarantee the property is exercised.
  EXPECT_GT(shadowed_total, 0);
}

// --- Property: coverage table matches labeling --------------------------

void CheckNodeAgainstTable(const xml::Node* node,
                           const authz::LabelMap& labels,
                           const CoverageTable& table,
                           const Subject& subject) {
  SchemaPoint point;
  if (const xml::Element* el = node->AsElement()) {
    point = SchemaPoint{el->tag(), ""};
  } else if (const xml::Attr* attr = node->AsAttr()) {
    point = SchemaPoint{node->ParentElement()->tag(), attr->name()};
  } else {
    return;  // text nodes are not schema points
  }
  const Decision* cell = CellFor(table, point, subject);
  ASSERT_NE(cell, nullptr) << point.ToString();
  TriSign sign = labels.FinalSign(node);
  switch (*cell) {
    case Decision::kOpen:
      EXPECT_EQ(sign, TriSign::kEps) << point.ToString();
      break;
    case Decision::kPlus:
      EXPECT_EQ(sign, TriSign::kPlus) << point.ToString();
      break;
    case Decision::kMinus:
      EXPECT_EQ(sign, TriSign::kMinus) << point.ToString();
      break;
    case Decision::kPlusOrOpen:
      EXPECT_TRUE(sign == TriSign::kPlus || sign == TriSign::kEps)
          << point.ToString();
      break;
    case Decision::kMinusOrOpen:
      EXPECT_TRUE(sign == TriSign::kMinus || sign == TriSign::kEps)
          << point.ToString();
      break;
    case Decision::kUnknown:
      break;  // no static claim
  }
}

void CheckTreeAgainstTable(const xml::Node* node,
                           const authz::LabelMap& labels,
                           const CoverageTable& table,
                           const Subject& subject) {
  CheckNodeAgainstTable(node, labels, table, subject);
  if (const xml::Element* el = node->AsElement()) {
    for (const auto& attr : el->attributes()) {
      CheckNodeAgainstTable(attr.get(), labels, table, subject);
    }
  }
  for (const auto& child : node->children()) {
    CheckTreeAgainstTable(child.get(), labels, table, subject);
  }
}

TEST(AnalyzerPropertyTest, CoverageTableMatchesLabelingOnLaboratory) {
  auto dtd = MustParseDtd(workload::LaboratoryDtd());
  GroupStore groups;
  groups.AddMembership("tom", "Public");

  std::vector<Authorization> instance = {
      Auth("Public", "//project", Sign::kPlus, AuthType::kRecursive),
      Auth("tom", "//paper", Sign::kMinus, AuthType::kLocal),
      Auth("tom", "//fund", Sign::kMinus, AuthType::kRecursive)};
  std::vector<Authorization> schema = {
      Auth("Public", "/laboratory", Sign::kPlus, AuthType::kLocal,
           "s.dtd")};

  PolicyAnalysis analysis =
      AnalyzePolicy(instance, schema, groups, *dtd, {});

  authz::TreeLabeler labeler(&groups, {});
  for (uint64_t seed : {2u, 9u, 31u}) {
    std::unique_ptr<xml::Document> doc =
        workload::GenerateLaboratory(3, 3, seed);
    for (const char* user : {"tom", "someone"}) {
      Requester rq;
      rq.user = user;
      rq.ip = "10.0.0.1";
      rq.sym = "host.example.org";
      auto labels = labeler.Label(*doc, instance, schema, rq);
      ASSERT_TRUE(labels.ok());
      Subject column = *Subject::Make(user, "*", "*");
      if (CellFor(analysis.coverage, SchemaPoint{"laboratory", ""},
                  column) == nullptr) {
        // "someone" is only reachable through the Public column.
        column = *Subject::Make("Public", "*", "*");
      }
      CheckTreeAgainstTable(doc->root(), *labels, analysis.coverage,
                            column);
    }
  }
}

TEST(AnalyzerPropertyTest, CoverageTableMatchesLabelingOnRecursiveDtd) {
  const std::string dtd_text =
      "<!ELEMENT part (name, part*)>\n"
      "<!ATTLIST part serial CDATA #REQUIRED>\n"
      "<!ELEMENT name (#PCDATA)>\n";
  auto dtd = MustParseDtd(dtd_text);
  GroupStore groups;

  std::vector<Authorization> instance = {
      Auth("Public", "/part", Sign::kPlus, AuthType::kLocal),
      Auth("Public", "//name", Sign::kMinus, AuthType::kLocal)};

  PolicyAnalysis analysis = AnalyzePolicy(instance, {}, groups, *dtd, {});
  Subject pub = *Subject::Make("Public", "*", "*");

  // Static expectations on the folded recursive schema.  The folded
  // "part" point conflates the outermost part with nested ones, so the
  // local root grant yields "+ or open", not a definite '+'.
  const Decision* cell =
      CellFor(analysis.coverage, SchemaPoint{"part", ""}, pub);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(*cell, Decision::kPlusOrOpen);
  cell = CellFor(analysis.coverage, SchemaPoint{"name", ""}, pub);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(*cell, Decision::kMinus);  // //name denial hits every name

  // Dynamic confirmation on a nested instance.
  auto doc = xml::ParseDocument(
      "<part serial=\"a\"><name>top</name>"
      "<part serial=\"b\"><name>mid</name>"
      "<part serial=\"c\"><name>leaf</name></part></part></part>");
  ASSERT_TRUE(doc.ok());
  auto parsed_dtd = MustParseDtd(dtd_text);
  parsed_dtd->set_name("part");
  (*doc)->set_dtd(std::move(parsed_dtd));
  ASSERT_TRUE(xml::ValidateDocument(doc->get()).ok());
  (*doc)->Reindex();

  authz::TreeLabeler labeler(&groups, {});
  Requester rq;
  rq.user = "anyone";
  rq.ip = "10.0.0.1";
  rq.sym = "host.example.org";
  auto labels = labeler.Label(**doc, instance, {}, rq);
  ASSERT_TRUE(labels.ok());
  CheckTreeAgainstTable((*doc)->root(), *labels, analysis.coverage, pub);
}

}  // namespace
}  // namespace analysis
}  // namespace xmlsec
