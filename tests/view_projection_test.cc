// Differential property suite for the single-pass view projector: on
// randomized docgen/authgen workloads, under every conflict-resolution
// and completeness option, the projection pipeline must produce views
// that are BYTE-IDENTICAL (once serialized, loosened DTD included) to
// the paper-literal clone → label → prune pipeline, with equal stage
// statistics — plus a concurrent-serving test that exercises the
// sharded view cache under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "authz/processor.h"
#include "authz/projector.h"
#include "server/document_server.h"
#include "server/repository.h"
#include "server/user_directory.h"
#include "workload/authgen.h"
#include "workload/docgen.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlsec {
namespace authz {
namespace {

using workload::AuthGenConfig;
using workload::DocGenConfig;
using workload::GeneratedWorkload;
using xml::Document;

struct Scenario {
  uint64_t seed;
  int depth;
  int fanout;
  int auth_count;
  double negative_fraction;
};

void PrintTo(const Scenario& s, std::ostream* os) {
  *os << "seed=" << s.seed << " depth=" << s.depth << " fanout=" << s.fanout
      << " auths=" << s.auth_count << " neg=" << s.negative_fraction;
}

/// Serialization that pins down everything the server can emit,
/// including the loosened DTD as an internal subset — the strictest
/// observable equality between the two pipelines.
std::string Render(const View& view) {
  xml::SerializeOptions options;
  options.doctype = xml::DoctypeMode::kInternal;
  return view.ToXml(options);
}

void ExpectSameStats(const ViewStats& a, const ViewStats& b) {
  EXPECT_EQ(a.labeling.applicable_instance_auths,
            b.labeling.applicable_instance_auths);
  EXPECT_EQ(a.labeling.applicable_schema_auths,
            b.labeling.applicable_schema_auths);
  EXPECT_EQ(a.labeling.xpath_evaluations, b.labeling.xpath_evaluations);
  EXPECT_EQ(a.labeling.target_nodes, b.labeling.target_nodes);
  EXPECT_EQ(a.labeling.labeled_nodes, b.labeling.labeled_nodes);
  EXPECT_EQ(a.prune.nodes_before, b.prune.nodes_before);
  EXPECT_EQ(a.prune.nodes_after, b.prune.nodes_after);
  EXPECT_EQ(a.prune.removed_elements, b.prune.removed_elements);
  EXPECT_EQ(a.prune.removed_attributes, b.prune.removed_attributes);
  EXPECT_EQ(a.prune.removed_character_data,
            b.prune.removed_character_data);
  EXPECT_EQ(a.prune.skeleton_elements, b.prune.skeleton_elements);
}

class ViewProjectionTest : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    const Scenario& s = GetParam();
    DocGenConfig doc_config;
    doc_config.depth = s.depth;
    doc_config.fanout = s.fanout;
    doc_config.seed = s.seed;
    doc_ = workload::GenerateDocument(doc_config);

    AuthGenConfig auth_config;
    auth_config.count = s.auth_count;
    auth_config.negative_fraction = s.negative_fraction;
    auth_config.seed = s.seed * 1000 + 17;
    workload_ = workload::GenerateAuthorizations(*doc_, "d.xml", "s.dtd",
                                                 auth_config);
  }

  std::unique_ptr<Document> doc_;
  GeneratedWorkload workload_;
};

TEST_P(ViewProjectionTest, ProjectionMatchesClonePipelineByteForByte) {
  for (ConflictPolicy conflict :
       {ConflictPolicy::kDenialsTakePrecedence,
        ConflictPolicy::kPermissionsTakePrecedence,
        ConflictPolicy::kNothingTakesPrecedence}) {
    for (CompletenessPolicy completeness :
         {CompletenessPolicy::kClosed, CompletenessPolicy::kOpen}) {
      ProcessorOptions clone_options;
      clone_options.policy.conflict = conflict;
      clone_options.policy.completeness = completeness;
      clone_options.pipeline = ViewPipeline::kCloneLabelPrune;
      ProcessorOptions project_options = clone_options;
      project_options.pipeline = ViewPipeline::kProject;

      SecurityProcessor legacy(&workload_.groups, clone_options);
      SecurityProcessor fused(&workload_.groups, project_options);
      auto expected =
          legacy.ComputeView(*doc_, workload_.instance_auths,
                             workload_.schema_auths, workload_.requester);
      auto actual =
          fused.ComputeView(*doc_, workload_.instance_auths,
                            workload_.schema_auths, workload_.requester);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_TRUE(actual.ok()) << actual.status();
      SCOPED_TRACE(std::string(ConflictPolicyToString(conflict)) + " / " +
                   std::string(CompletenessPolicyToString(completeness)));
      EXPECT_EQ(expected->empty(), actual->empty());
      EXPECT_EQ(Render(*expected), Render(*actual));
      ExpectSameStats(expected->stats, actual->stats);
    }
  }
}

TEST_P(ViewProjectionTest, ProjectionLeavesOriginalUntouched) {
  const std::string before = xml::SerializeDocument(*doc_);
  const int64_t nodes_before = doc_->node_count();
  ProcessorOptions options;
  options.pipeline = ViewPipeline::kProject;
  SecurityProcessor processor(&workload_.groups, options);
  auto view = processor.ComputeView(*doc_, workload_.instance_auths,
                                    workload_.schema_auths,
                                    workload_.requester);
  ASSERT_TRUE(view.ok()) << view.status();
  // The projector reads the shared original; it must never mutate it
  // (the whole point of killing the per-request deep clone).
  EXPECT_EQ(xml::SerializeDocument(*doc_), before);
  EXPECT_EQ(doc_->node_count(), nodes_before);
}

TEST_P(ViewProjectionTest, ProjectionIsDeterministic) {
  ProcessorOptions options;
  options.pipeline = ViewPipeline::kProject;
  SecurityProcessor processor(&workload_.groups, options);
  auto a = processor.ComputeView(*doc_, workload_.instance_auths,
                                 workload_.schema_auths,
                                 workload_.requester);
  auto b = processor.ComputeView(*doc_, workload_.instance_auths,
                                 workload_.schema_auths,
                                 workload_.requester);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(Render(*a), Render(*b));
}

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> out;
  uint64_t seed = 100;
  for (int depth : {2, 4}) {
    for (int fanout : {2, 4}) {
      for (int auths : {4, 32, 128}) {
        // Deny-heavy and permit-heavy mixes: both prune shapes.
        for (double negative : {0.3, 0.7}) {
          out.push_back(Scenario{seed++, depth, fanout, auths, negative});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ViewProjectionTest,
                         ::testing::ValuesIn(MakeScenarios()));

// --- Deterministic semantics cases --------------------------------------

class ProjectionSemanticsTest : public ::testing::Test {
 protected:
  void Load(const std::string& xml) {
    auto parsed = xml::ParseDocument(xml);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    doc_ = std::move(*parsed);
  }

  static Authorization Auth(const std::string& group, const std::string& uri,
                            const std::string& path, Sign sign,
                            AuthType type) {
    Authorization auth;
    auth.subject = *Subject::Make(group, "*", "*");
    auth.object.uri = uri;
    auth.object.path = path;
    auth.sign = sign;
    auth.type = type;
    return auth;
  }

  /// Asserts both pipelines agree byte-for-byte and returns the view.
  std::string AgreedView(std::span<const Authorization> instance,
                         std::span<const Authorization> schema,
                         PolicyOptions policy = {}) {
    Requester rq;
    rq.user = "tom";
    rq.ip = "1.2.3.4";
    rq.sym = "host.example";
    ProcessorOptions clone_options;
    clone_options.policy = policy;
    clone_options.pipeline = ViewPipeline::kCloneLabelPrune;
    ProcessorOptions project_options = clone_options;
    project_options.pipeline = ViewPipeline::kProject;
    SecurityProcessor legacy(&groups_, clone_options);
    SecurityProcessor fused(&groups_, project_options);
    auto expected = legacy.ComputeView(*doc_, instance, schema, rq);
    auto actual = fused.ComputeView(*doc_, instance, schema, rq);
    EXPECT_TRUE(expected.ok()) << expected.status();
    EXPECT_TRUE(actual.ok()) << actual.status();
    if (!expected.ok() || !actual.ok()) return std::string();
    EXPECT_EQ(Render(*expected), Render(*actual));
    ExpectSameStats(expected->stats, actual->stats);
    return Render(*actual);
  }

  GroupStore groups_;
  std::unique_ptr<Document> doc_;
};

TEST_F(ProjectionSemanticsTest, WeakInstanceOverriddenBySchema) {
  Load("<r><a><b>secret</b></a></r>");
  // A weak instance-level permission loses to a schema-level denial —
  // both pipelines must resolve the override identically.
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "//a", Sign::kPlus, AuthType::kRecursiveWeak)};
  std::vector<Authorization> schema = {
      Auth("Public", "s.dtd", "//a", Sign::kMinus, AuthType::kRecursive)};
  std::string view = AgreedView(instance, schema);
  EXPECT_EQ(view.find("secret"), std::string::npos);
}

TEST_F(ProjectionSemanticsTest, StrongInstanceOverridesSchema) {
  Load("<r><a><b>visible</b></a></r>");
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "//a", Sign::kPlus, AuthType::kRecursive)};
  std::vector<Authorization> schema = {
      Auth("Public", "s.dtd", "//a", Sign::kMinus, AuthType::kRecursive)};
  std::string view = AgreedView(instance, schema);
  EXPECT_NE(view.find("visible"), std::string::npos);
}

TEST_F(ProjectionSemanticsTest, SkeletonTagsPreserved) {
  Load("<r><hidden><leaf>keep</leaf></hidden></r>");
  // The wrapper is denied but its descendant is permitted: its tags
  // survive as structure in both pipelines.
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "/r", Sign::kPlus, AuthType::kLocal),
      Auth("Public", "d.xml", "//hidden", Sign::kMinus, AuthType::kLocal),
      Auth("Public", "d.xml", "//leaf", Sign::kPlus, AuthType::kRecursive)};
  std::string view = AgreedView(instance, {});
  EXPECT_NE(view.find("<hidden>"), std::string::npos);
  EXPECT_NE(view.find("keep"), std::string::npos);
}

TEST_F(ProjectionSemanticsTest, DenyAllYieldsEmptyViewInBothPipelines) {
  Load("<r><a>x</a></r>");
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "/r", Sign::kMinus, AuthType::kRecursive)};
  Requester rq;
  rq.user = "tom";
  for (ViewPipeline pipeline :
       {ViewPipeline::kProject, ViewPipeline::kCloneLabelPrune}) {
    ProcessorOptions options;
    options.pipeline = pipeline;
    SecurityProcessor processor(&groups_, options);
    auto view = processor.ComputeView(*doc_, instance, {}, rq);
    ASSERT_TRUE(view.ok()) << view.status();
    EXPECT_TRUE(view->empty());
  }
}

TEST_F(ProjectionSemanticsTest, LoosenedDtdAttachedByBothPipelines) {
  Load("<?xml version=\"1.0\"?>\n"
       "<!DOCTYPE r [\n"
       "<!ELEMENT r (a)>\n"
       "<!ELEMENT a (#PCDATA)>\n"
       "<!ATTLIST a k CDATA #REQUIRED>\n"
       "]>\n"
       "<r><a k=\"v\">text</a></r>");
  ASSERT_NE(doc_->dtd(), nullptr);
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "/r", Sign::kPlus, AuthType::kRecursive),
      Auth("Public", "d.xml", "//a/@k", Sign::kMinus, AuthType::kLocal)};
  std::string view = AgreedView(instance, {});
  // The served view hides the redacted attribute and its DTD no longer
  // requires it (loosening) — identically in both pipelines.
  EXPECT_EQ(view.find("k=\"v\""), std::string::npos);
  EXPECT_NE(view.find("<!DOCTYPE"), std::string::npos);
  EXPECT_EQ(view.find("#REQUIRED"), std::string::npos);
}

TEST_F(ProjectionSemanticsTest, RootlessDocumentRejected) {
  auto doc = std::make_unique<Document>();
  Requester rq;
  ProcessorOptions options;
  options.pipeline = ViewPipeline::kProject;
  SecurityProcessor processor(&groups_, options);
  auto view = processor.ComputeView(*doc, {}, {}, rq);
  EXPECT_FALSE(view.ok());
}

// --- Concurrent serving over the sharded cache (TSan-exercised) ---------

TEST(ViewCacheConcurrencyTest, ConcurrentServingIsRaceFreeAndCoherent) {
  using server::Repository;
  using server::SecureDocumentServer;
  using server::ServerConfig;
  using server::ServerRequest;
  using server::ServerResponse;
  using server::UserDirectory;

  obs::MetricsRegistry registry;
  Repository repo;
  UserDirectory users;
  GroupStore groups;
  ASSERT_TRUE(
      repo.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
  constexpr int kDocs = 4;
  for (int d = 0; d < kDocs; ++d) {
    auto doc = workload::GenerateLaboratory(3, 3, /*seed=*/700 + d);
    ASSERT_TRUE(repo.AddDocument("doc" + std::to_string(d) + ".xml",
                                 xml::SerializeDocument(*doc),
                                 "laboratory.xml")
                    .ok());
  }
  constexpr int kUsers = 4;
  for (int u = 0; u < kUsers; ++u) {
    std::string name = "user" + std::to_string(u);
    ASSERT_TRUE(users.CreateUser(name, "pw").ok());
    // Distinct group per user: each requester matches a different
    // subject set, so every (doc, user) pair is its own cache entry.
    ASSERT_TRUE(groups.AddMembership(name, "G" + std::to_string(u)).ok());
    ASSERT_TRUE(repo.AddXacl("<xacl><authorization subject=\"G" +
                             std::to_string(u) +
                             "\" object=\"laboratory.xml\" "
                             "path=\"//paper[" +
                             std::to_string(u + 1) +
                             "]\" sign=\"-\" type=\"R\"/></xacl>")
                    .ok());
  }
  ASSERT_TRUE(
      repo.AddXacl("<xacl><authorization subject=\"Public\" "
                   "object=\"laboratory.xml\" path=\"/laboratory\" "
                   "sign=\"+\" type=\"R\"/></xacl>")
          .ok());

  ServerConfig config;
  config.view_cache_capacity = 64;  // Sharded: 8 shards of 8.
  config.metrics = &registry;
  SecureDocumentServer server(&repo, &users, &groups, config);

  // Reference bodies, computed single-threaded.
  std::string expected[kDocs][kUsers];
  for (int d = 0; d < kDocs; ++d) {
    for (int u = 0; u < kUsers; ++u) {
      ServerRequest request;
      request.uri = "doc" + std::to_string(d) + ".xml";
      request.user = "user" + std::to_string(u);
      request.password = "pw";
      ServerResponse response = server.Handle(request);
      ASSERT_EQ(response.http_status, 200);
      expected[d][u] = std::string(response.body_view());
    }
  }

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 50;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const int d = (t + i) % kDocs;
        const int u = (t * 3 + i) % kUsers;
        ServerRequest request;
        request.uri = "doc" + std::to_string(d) + ".xml";
        request.user = "user" + std::to_string(u);
        request.password = "pw";
        ServerResponse response = server.Handle(request);
        if (response.http_status != 200 ||
            response.body_view() != expected[d][u]) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
  // Every concurrent request after the warm-up pass is a hit.
  EXPECT_EQ(server.view_cache().misses(), kDocs * kUsers);
  EXPECT_EQ(server.view_cache().hits(),
            static_cast<int64_t>(kThreads) * kRequestsPerThread);
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
