// Differential property suite for the view pipelines: on randomized
// docgen/authgen workloads, under every conflict-resolution and
// completeness option, three implementations must produce views that
// are BYTE-IDENTICAL once serialized (loosened DTD included):
//
//   1. the paper-literal clone → label → prune oracle,
//   2. the fused single-pass projector (XPath labeling),
//   3. the schema-compiled policy automaton feeding the same projector
//      (table lookups + residual XPath, analysis/policy_automaton.h),
//
// with equal stage statistics — plus a concurrent-serving test that
// exercises the sharded view cache under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/policy_automaton.h"
#include "authz/processor.h"
#include "authz/projector.h"
#include "server/document_server.h"
#include "server/repository.h"
#include "server/user_directory.h"
#include "workload/authgen.h"
#include "workload/docgen.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlsec {
namespace authz {
namespace {

using workload::AuthGenConfig;
using workload::DocGenConfig;
using workload::GeneratedWorkload;
using xml::Document;

struct Scenario {
  uint64_t seed;
  int depth;
  int fanout;
  int auth_count;
  double negative_fraction;
};

void PrintTo(const Scenario& s, std::ostream* os) {
  *os << "seed=" << s.seed << " depth=" << s.depth << " fanout=" << s.fanout
      << " auths=" << s.auth_count << " neg=" << s.negative_fraction;
}

/// Serialization that pins down everything the server can emit,
/// including the loosened DTD as an internal subset — the strictest
/// observable equality between the two pipelines.
std::string Render(const View& view) {
  xml::SerializeOptions options;
  options.doctype = xml::DoctypeMode::kInternal;
  return view.ToXml(options);
}

void ExpectSameStats(const ViewStats& a, const ViewStats& b) {
  EXPECT_EQ(a.labeling.applicable_instance_auths,
            b.labeling.applicable_instance_auths);
  EXPECT_EQ(a.labeling.applicable_schema_auths,
            b.labeling.applicable_schema_auths);
  EXPECT_EQ(a.labeling.xpath_evaluations, b.labeling.xpath_evaluations);
  EXPECT_EQ(a.labeling.target_nodes, b.labeling.target_nodes);
  EXPECT_EQ(a.labeling.labeled_nodes, b.labeling.labeled_nodes);
  EXPECT_EQ(a.prune.nodes_before, b.prune.nodes_before);
  EXPECT_EQ(a.prune.nodes_after, b.prune.nodes_after);
  EXPECT_EQ(a.prune.removed_elements, b.prune.removed_elements);
  EXPECT_EQ(a.prune.removed_attributes, b.prune.removed_attributes);
  EXPECT_EQ(a.prune.removed_character_data,
            b.prune.removed_character_data);
  EXPECT_EQ(a.prune.skeleton_elements, b.prune.skeleton_elements);
}

class ViewProjectionTest : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    const Scenario& s = GetParam();
    DocGenConfig doc_config;
    doc_config.depth = s.depth;
    doc_config.fanout = s.fanout;
    doc_config.seed = s.seed;
    doc_ = workload::GenerateDocument(doc_config);

    AuthGenConfig auth_config;
    auth_config.count = s.auth_count;
    auth_config.negative_fraction = s.negative_fraction;
    auth_config.seed = s.seed * 1000 + 17;
    workload_ = workload::GenerateAuthorizations(*doc_, "d.xml", "s.dtd",
                                                 auth_config);
  }

  std::unique_ptr<Document> doc_;
  GeneratedWorkload workload_;
};

TEST_P(ViewProjectionTest, ProjectionMatchesClonePipelineByteForByte) {
  for (ConflictPolicy conflict :
       {ConflictPolicy::kDenialsTakePrecedence,
        ConflictPolicy::kPermissionsTakePrecedence,
        ConflictPolicy::kNothingTakesPrecedence}) {
    for (CompletenessPolicy completeness :
         {CompletenessPolicy::kClosed, CompletenessPolicy::kOpen}) {
      ProcessorOptions clone_options;
      clone_options.policy.conflict = conflict;
      clone_options.policy.completeness = completeness;
      clone_options.pipeline = ViewPipeline::kCloneLabelPrune;
      ProcessorOptions project_options = clone_options;
      project_options.pipeline = ViewPipeline::kProject;

      SecurityProcessor legacy(&workload_.groups, clone_options);
      SecurityProcessor fused(&workload_.groups, project_options);
      auto expected =
          legacy.ComputeView(*doc_, workload_.instance_auths,
                             workload_.schema_auths, workload_.requester);
      auto actual =
          fused.ComputeView(*doc_, workload_.instance_auths,
                            workload_.schema_auths, workload_.requester);
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_TRUE(actual.ok()) << actual.status();
      SCOPED_TRACE(std::string(ConflictPolicyToString(conflict)) + " / " +
                   std::string(CompletenessPolicyToString(completeness)));
      EXPECT_EQ(expected->empty(), actual->empty());
      EXPECT_EQ(Render(*expected), Render(*actual));
      ExpectSameStats(expected->stats, actual->stats);
    }
  }
}

TEST_P(ViewProjectionTest, ProjectionLeavesOriginalUntouched) {
  const std::string before = xml::SerializeDocument(*doc_);
  const int64_t nodes_before = doc_->node_count();
  ProcessorOptions options;
  options.pipeline = ViewPipeline::kProject;
  SecurityProcessor processor(&workload_.groups, options);
  auto view = processor.ComputeView(*doc_, workload_.instance_auths,
                                    workload_.schema_auths,
                                    workload_.requester);
  ASSERT_TRUE(view.ok()) << view.status();
  // The projector reads the shared original; it must never mutate it
  // (the whole point of killing the per-request deep clone).
  EXPECT_EQ(xml::SerializeDocument(*doc_), before);
  EXPECT_EQ(doc_->node_count(), nodes_before);
}

TEST_P(ViewProjectionTest, ProjectionIsDeterministic) {
  ProcessorOptions options;
  options.pipeline = ViewPipeline::kProject;
  SecurityProcessor processor(&workload_.groups, options);
  auto a = processor.ComputeView(*doc_, workload_.instance_auths,
                                 workload_.schema_auths,
                                 workload_.requester);
  auto b = processor.ComputeView(*doc_, workload_.instance_auths,
                                 workload_.schema_auths,
                                 workload_.requester);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(Render(*a), Render(*b));
}

TEST_P(ViewProjectionTest, CompiledMatchesBothPipelinesByteForByte) {
  ASSERT_NE(doc_->dtd(), nullptr);
  // One automaton per (DTD, policy), shared across every request below —
  // exactly how the server caches it.
  auto automaton = analysis::PolicyAutomaton::Compile(
      *doc_->dtd(), workload_.instance_auths, workload_.schema_auths);
  ASSERT_TRUE(automaton.ok()) << automaton.status();
  EXPECT_GE((*automaton)->stats().states, 1u);

  for (ConflictPolicy conflict :
       {ConflictPolicy::kDenialsTakePrecedence,
        ConflictPolicy::kPermissionsTakePrecedence,
        ConflictPolicy::kNothingTakesPrecedence}) {
    for (CompletenessPolicy completeness :
         {CompletenessPolicy::kClosed, CompletenessPolicy::kOpen}) {
      ProcessorOptions clone_options;
      clone_options.policy.conflict = conflict;
      clone_options.policy.completeness = completeness;
      clone_options.pipeline = ViewPipeline::kCloneLabelPrune;
      ProcessorOptions project_options = clone_options;
      project_options.pipeline = ViewPipeline::kProject;
      ProcessorOptions compiled_options = project_options;
      compiled_options.labeling = LabelingMode::kCompiled;

      SecurityProcessor oracle(&workload_.groups, clone_options);
      SecurityProcessor fused(&workload_.groups, project_options);
      SecurityProcessor compiled(&workload_.groups, compiled_options);
      auto expected =
          oracle.ComputeView(*doc_, workload_.instance_auths,
                             workload_.schema_auths, workload_.requester);
      auto via_xpath =
          fused.ComputeView(*doc_, workload_.instance_auths,
                            workload_.schema_auths, workload_.requester);
      auto via_table = compiled.ComputeView(
          *doc_, workload_.instance_auths, workload_.schema_auths,
          workload_.requester, automaton->get());
      ASSERT_TRUE(expected.ok()) << expected.status();
      ASSERT_TRUE(via_xpath.ok()) << via_xpath.status();
      ASSERT_TRUE(via_table.ok()) << via_table.status();
      SCOPED_TRACE(std::string(ConflictPolicyToString(conflict)) + " / " +
                   std::string(CompletenessPolicyToString(completeness)));
      EXPECT_EQ(Render(*expected), Render(*via_xpath));
      EXPECT_EQ(Render(*expected), Render(*via_table));

      // The document is valid against the DTD the automaton was
      // compiled from: no fallback, and every node is accounted to
      // either the table or the residual XPath path.
      const LabelingStats& stats = via_table->stats.labeling;
      EXPECT_EQ(stats.compiled_fallbacks, 0);
      // table/residual counters cover the element and attribute nodes
      // (text nodes carry no explicit signs).
      EXPECT_GT(stats.table_nodes, 0);
      EXPECT_LE(stats.table_nodes + stats.residual_nodes,
                doc_->node_count());
      // Requester filtering is identical; only the residual subset still
      // evaluates XPath.
      EXPECT_EQ(stats.applicable_instance_auths,
                expected->stats.labeling.applicable_instance_auths);
      EXPECT_EQ(stats.applicable_schema_auths,
                expected->stats.labeling.applicable_schema_auths);
      EXPECT_LE(stats.xpath_evaluations,
                expected->stats.labeling.xpath_evaluations);
      // Prune statistics agree exactly (same projector walk).
      EXPECT_EQ(expected->stats.prune.nodes_after,
                via_table->stats.prune.nodes_after);
      EXPECT_EQ(expected->stats.prune.removed_elements,
                via_table->stats.prune.removed_elements);
      EXPECT_EQ(expected->stats.prune.removed_attributes,
                via_table->stats.prune.removed_attributes);
      EXPECT_EQ(expected->stats.prune.skeleton_elements,
                via_table->stats.prune.skeleton_elements);
    }
  }
}

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> out;
  uint64_t seed = 100;
  for (int depth : {2, 4}) {
    for (int fanout : {2, 4}) {
      for (int auths : {4, 32, 128}) {
        // Deny-heavy and permit-heavy mixes: both prune shapes.
        for (double negative : {0.3, 0.7}) {
          out.push_back(Scenario{seed++, depth, fanout, auths, negative});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ViewProjectionTest,
                         ::testing::ValuesIn(MakeScenarios()));

// --- Deterministic semantics cases --------------------------------------

class ProjectionSemanticsTest : public ::testing::Test {
 protected:
  void Load(const std::string& xml) {
    auto parsed = xml::ParseDocument(xml);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    doc_ = std::move(*parsed);
  }

  static Authorization Auth(const std::string& group, const std::string& uri,
                            const std::string& path, Sign sign,
                            AuthType type) {
    Authorization auth;
    auth.subject = *Subject::Make(group, "*", "*");
    auth.object.uri = uri;
    auth.object.path = path;
    auth.sign = sign;
    auth.type = type;
    return auth;
  }

  /// Asserts both pipelines agree byte-for-byte and returns the view.
  std::string AgreedView(std::span<const Authorization> instance,
                         std::span<const Authorization> schema,
                         PolicyOptions policy = {}) {
    Requester rq;
    rq.user = "tom";
    rq.ip = "1.2.3.4";
    rq.sym = "host.example";
    ProcessorOptions clone_options;
    clone_options.policy = policy;
    clone_options.pipeline = ViewPipeline::kCloneLabelPrune;
    ProcessorOptions project_options = clone_options;
    project_options.pipeline = ViewPipeline::kProject;
    SecurityProcessor legacy(&groups_, clone_options);
    SecurityProcessor fused(&groups_, project_options);
    auto expected = legacy.ComputeView(*doc_, instance, schema, rq);
    auto actual = fused.ComputeView(*doc_, instance, schema, rq);
    EXPECT_TRUE(expected.ok()) << expected.status();
    EXPECT_TRUE(actual.ok()) << actual.status();
    if (!expected.ok() || !actual.ok()) return std::string();
    EXPECT_EQ(Render(*expected), Render(*actual));
    ExpectSameStats(expected->stats, actual->stats);
    return Render(*actual);
  }

  /// Computes the view through the compiled engine and asserts it is
  /// byte-identical to the clone→label→prune oracle.
  std::string CompiledAgreedView(std::span<const Authorization> instance,
                                 std::span<const Authorization> schema,
                                 const analysis::PolicyAutomaton* automaton,
                                 PolicyOptions policy = {},
                                 LabelingStats* stats_out = nullptr) {
    Requester rq;
    rq.user = "tom";
    rq.ip = "1.2.3.4";
    rq.sym = "host.example";
    ProcessorOptions clone_options;
    clone_options.policy = policy;
    clone_options.pipeline = ViewPipeline::kCloneLabelPrune;
    ProcessorOptions compiled_options;
    compiled_options.policy = policy;
    compiled_options.pipeline = ViewPipeline::kProject;
    compiled_options.labeling = LabelingMode::kCompiled;
    SecurityProcessor oracle(&groups_, clone_options);
    SecurityProcessor compiled(&groups_, compiled_options);
    auto expected = oracle.ComputeView(*doc_, instance, schema, rq);
    auto actual =
        compiled.ComputeView(*doc_, instance, schema, rq, automaton);
    EXPECT_TRUE(expected.ok()) << expected.status();
    EXPECT_TRUE(actual.ok()) << actual.status();
    if (!expected.ok() || !actual.ok()) return std::string();
    EXPECT_EQ(Render(*expected), Render(*actual));
    if (stats_out != nullptr) *stats_out = actual->stats.labeling;
    return Render(*actual);
  }

  GroupStore groups_;
  std::unique_ptr<Document> doc_;
};

TEST_F(ProjectionSemanticsTest, WeakInstanceOverriddenBySchema) {
  Load("<r><a><b>secret</b></a></r>");
  // A weak instance-level permission loses to a schema-level denial —
  // both pipelines must resolve the override identically.
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "//a", Sign::kPlus, AuthType::kRecursiveWeak)};
  std::vector<Authorization> schema = {
      Auth("Public", "s.dtd", "//a", Sign::kMinus, AuthType::kRecursive)};
  std::string view = AgreedView(instance, schema);
  EXPECT_EQ(view.find("secret"), std::string::npos);
}

TEST_F(ProjectionSemanticsTest, StrongInstanceOverridesSchema) {
  Load("<r><a><b>visible</b></a></r>");
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "//a", Sign::kPlus, AuthType::kRecursive)};
  std::vector<Authorization> schema = {
      Auth("Public", "s.dtd", "//a", Sign::kMinus, AuthType::kRecursive)};
  std::string view = AgreedView(instance, schema);
  EXPECT_NE(view.find("visible"), std::string::npos);
}

TEST_F(ProjectionSemanticsTest, SkeletonTagsPreserved) {
  Load("<r><hidden><leaf>keep</leaf></hidden></r>");
  // The wrapper is denied but its descendant is permitted: its tags
  // survive as structure in both pipelines.
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "/r", Sign::kPlus, AuthType::kLocal),
      Auth("Public", "d.xml", "//hidden", Sign::kMinus, AuthType::kLocal),
      Auth("Public", "d.xml", "//leaf", Sign::kPlus, AuthType::kRecursive)};
  std::string view = AgreedView(instance, {});
  EXPECT_NE(view.find("<hidden>"), std::string::npos);
  EXPECT_NE(view.find("keep"), std::string::npos);
}

TEST_F(ProjectionSemanticsTest, DenyAllYieldsEmptyViewInBothPipelines) {
  Load("<r><a>x</a></r>");
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "/r", Sign::kMinus, AuthType::kRecursive)};
  Requester rq;
  rq.user = "tom";
  for (ViewPipeline pipeline :
       {ViewPipeline::kProject, ViewPipeline::kCloneLabelPrune}) {
    ProcessorOptions options;
    options.pipeline = pipeline;
    SecurityProcessor processor(&groups_, options);
    auto view = processor.ComputeView(*doc_, instance, {}, rq);
    ASSERT_TRUE(view.ok()) << view.status();
    EXPECT_TRUE(view->empty());
  }
}

TEST_F(ProjectionSemanticsTest, LoosenedDtdAttachedByBothPipelines) {
  Load("<?xml version=\"1.0\"?>\n"
       "<!DOCTYPE r [\n"
       "<!ELEMENT r (a)>\n"
       "<!ELEMENT a (#PCDATA)>\n"
       "<!ATTLIST a k CDATA #REQUIRED>\n"
       "]>\n"
       "<r><a k=\"v\">text</a></r>");
  ASSERT_NE(doc_->dtd(), nullptr);
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "/r", Sign::kPlus, AuthType::kRecursive),
      Auth("Public", "d.xml", "//a/@k", Sign::kMinus, AuthType::kLocal)};
  std::string view = AgreedView(instance, {});
  // The served view hides the redacted attribute and its DTD no longer
  // requires it (loosening) — identically in both pipelines.
  EXPECT_EQ(view.find("k=\"v\""), std::string::npos);
  EXPECT_NE(view.find("<!DOCTYPE"), std::string::npos);
  EXPECT_EQ(view.find("#REQUIRED"), std::string::npos);
}

TEST_F(ProjectionSemanticsTest, RootlessDocumentRejected) {
  auto doc = std::make_unique<Document>();
  Requester rq;
  ProcessorOptions options;
  options.pipeline = ViewPipeline::kProject;
  SecurityProcessor processor(&groups_, options);
  auto view = processor.ComputeView(*doc, {}, {}, rq);
  EXPECT_FALSE(view.ok());
}

// --- Compiled labeling semantics ----------------------------------------

TEST_F(ProjectionSemanticsTest, CompiledWeakStrongOverride) {
  Load("<?xml version=\"1.0\"?>\n"
       "<!DOCTYPE r [\n"
       "<!ELEMENT r (a)>\n"
       "<!ELEMENT a (b)>\n"
       "<!ELEMENT b (#PCDATA)>\n"
       "]>\n"
       "<r><a><b>secret</b></a></r>");
  ASSERT_NE(doc_->dtd(), nullptr);
  // Weak instance-level permission vs. strong schema-level denial: the
  // override must resolve identically through the automaton's table.
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "//a", Sign::kPlus, AuthType::kRecursiveWeak)};
  std::vector<Authorization> schema = {
      Auth("Public", "s.dtd", "//a", Sign::kMinus, AuthType::kRecursive)};
  auto automaton =
      analysis::PolicyAutomaton::Compile(*doc_->dtd(), instance, schema);
  ASSERT_TRUE(automaton.ok()) << automaton.status();
  EXPECT_EQ((*automaton)->stats().decidable_auths, 2u);
  LabelingStats stats;
  std::string view = CompiledAgreedView(instance, schema, automaton->get(),
                                        PolicyOptions{}, &stats);
  EXPECT_EQ(view.find("secret"), std::string::npos);
  // Fully decidable policy: no XPath at all on the serving path.
  EXPECT_EQ(stats.xpath_evaluations, 0);
  EXPECT_EQ(stats.residual_nodes, 0);
  EXPECT_GT(stats.table_nodes, 0);

  // Strong instance beats schema — again, pure table resolution.
  instance[0].type = AuthType::kRecursive;
  auto automaton2 =
      analysis::PolicyAutomaton::Compile(*doc_->dtd(), instance, schema);
  ASSERT_TRUE(automaton2.ok());
  view = CompiledAgreedView(instance, schema, automaton2->get());
  EXPECT_NE(view.find("secret"), std::string::npos);
}

TEST_F(ProjectionSemanticsTest, CompiledValueDependentSubjectsFallBackToXPath) {
  Load("<?xml version=\"1.0\"?>\n"
       "<!DOCTYPE r [\n"
       "<!ELEMENT r (a*)>\n"
       "<!ELEMENT a (#PCDATA)>\n"
       "<!ATTLIST a owner CDATA #IMPLIED>\n"
       "]>\n"
       "<r><a owner=\"tom\">mine</a><a owner=\"ann\">hers</a></r>");
  ASSERT_NE(doc_->dtd(), nullptr);
  // Self-referential policy: the $user binding makes the path value-
  // dependent, so this authorization must stay on the per-request XPath
  // path (residual) while the decidable root grant uses the table.
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "/r", Sign::kPlus, AuthType::kLocal),
      Auth("Public", "d.xml", "//a[./@owner=$user]", Sign::kPlus,
           AuthType::kRecursive)};
  auto automaton =
      analysis::PolicyAutomaton::Compile(*doc_->dtd(), instance, {});
  ASSERT_TRUE(automaton.ok()) << automaton.status();
  EXPECT_EQ((*automaton)->stats().decidable_auths, 1u);
  EXPECT_EQ((*automaton)->stats().partial_auths, 1u);
  EXPECT_EQ((*automaton)->residual_instance().size(), 1u);
  LabelingStats stats;
  PolicyOptions closed;
  closed.completeness = CompletenessPolicy::kClosed;
  std::string view = CompiledAgreedView(instance, {}, automaton->get(),
                                        closed, &stats);
  // Requester "tom" sees their own record only.
  EXPECT_NE(view.find("mine"), std::string::npos);
  EXPECT_EQ(view.find("hers"), std::string::npos);
  // The residual authorization was evaluated through XPath and landed
  // on a node; no schema-mismatch fallback happened.
  EXPECT_EQ(stats.xpath_evaluations, 1);
  EXPECT_GT(stats.residual_nodes, 0);
  EXPECT_EQ(stats.compiled_fallbacks, 0);
}

TEST_F(ProjectionSemanticsTest, CompiledSchemaMismatchFallsBackWholeRequest) {
  Load("<r><a><b>text</b></a></r>");
  // An automaton compiled from a DTD the served document does NOT
  // conform to: the walk meets an undeclared element, aborts, and the
  // request transparently serves through the XPath path.
  auto foreign_dtd = xml::ParseDtd("<!ELEMENT r (c)>\n<!ELEMENT c EMPTY>");
  ASSERT_TRUE(foreign_dtd.ok());
  (*foreign_dtd)->set_name("r");
  std::vector<Authorization> instance = {
      Auth("Public", "d.xml", "/r", Sign::kPlus, AuthType::kRecursive)};
  auto automaton =
      analysis::PolicyAutomaton::Compile(**foreign_dtd, instance, {});
  ASSERT_TRUE(automaton.ok()) << automaton.status();
  LabelingStats stats;
  std::string view = CompiledAgreedView(instance, {}, automaton->get(),
                                        PolicyOptions{}, &stats);
  EXPECT_NE(view.find("text"), std::string::npos);
  EXPECT_EQ(stats.compiled_fallbacks, 1);
  EXPECT_EQ(stats.table_nodes, 0);
  EXPECT_EQ(stats.residual_nodes, 0);
}

// --- Concurrent serving over the sharded cache (TSan-exercised) ---------

TEST(ViewCacheConcurrencyTest, ConcurrentServingIsRaceFreeAndCoherent) {
  using server::Repository;
  using server::SecureDocumentServer;
  using server::ServerConfig;
  using server::ServerRequest;
  using server::ServerResponse;
  using server::UserDirectory;

  obs::MetricsRegistry registry;
  Repository repo;
  UserDirectory users;
  GroupStore groups;
  ASSERT_TRUE(
      repo.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
  constexpr int kDocs = 4;
  for (int d = 0; d < kDocs; ++d) {
    auto doc = workload::GenerateLaboratory(3, 3, /*seed=*/700 + d);
    ASSERT_TRUE(repo.AddDocument("doc" + std::to_string(d) + ".xml",
                                 xml::SerializeDocument(*doc),
                                 "laboratory.xml")
                    .ok());
  }
  constexpr int kUsers = 4;
  for (int u = 0; u < kUsers; ++u) {
    std::string name = "user" + std::to_string(u);
    ASSERT_TRUE(users.CreateUser(name, "pw").ok());
    // Distinct group per user: each requester matches a different
    // subject set, so every (doc, user) pair is its own cache entry.
    ASSERT_TRUE(groups.AddMembership(name, "G" + std::to_string(u)).ok());
    ASSERT_TRUE(repo.AddXacl("<xacl><authorization subject=\"G" +
                             std::to_string(u) +
                             "\" object=\"laboratory.xml\" "
                             "path=\"//paper[" +
                             std::to_string(u + 1) +
                             "]\" sign=\"-\" type=\"R\"/></xacl>")
                    .ok());
  }
  ASSERT_TRUE(
      repo.AddXacl("<xacl><authorization subject=\"Public\" "
                   "object=\"laboratory.xml\" path=\"/laboratory\" "
                   "sign=\"+\" type=\"R\"/></xacl>")
          .ok());

  ServerConfig config;
  config.view_cache_capacity = 64;  // Sharded: 8 shards of 8.
  config.metrics = &registry;
  SecureDocumentServer server(&repo, &users, &groups, config);

  // Reference bodies, computed single-threaded.
  std::string expected[kDocs][kUsers];
  for (int d = 0; d < kDocs; ++d) {
    for (int u = 0; u < kUsers; ++u) {
      ServerRequest request;
      request.uri = "doc" + std::to_string(d) + ".xml";
      request.user = "user" + std::to_string(u);
      request.password = "pw";
      ServerResponse response = server.Handle(request);
      ASSERT_EQ(response.http_status, 200);
      expected[d][u] = std::string(response.body_view());
    }
  }

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 50;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const int d = (t + i) % kDocs;
        const int u = (t * 3 + i) % kUsers;
        ServerRequest request;
        request.uri = "doc" + std::to_string(d) + ".xml";
        request.user = "user" + std::to_string(u);
        request.password = "pw";
        ServerResponse response = server.Handle(request);
        if (response.http_status != 200 ||
            response.body_view() != expected[d][u]) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
  // Every concurrent request after the warm-up pass is a hit.
  EXPECT_EQ(server.view_cache().misses(), kDocs * kUsers);
  EXPECT_EQ(server.view_cache().hits(),
            static_cast<int64_t>(kThreads) * kRequestsPerThread);
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
