#include <gtest/gtest.h>

#include "authz/explain.h"
#include "authz/lint.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"

namespace xmlsec {
namespace authz {
namespace {

using xml::Document;

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto result = xml::ParseDocument(
        "<laboratory>"
        "<project name=\"P1\" type=\"internal\">"
        "<paper category=\"private\"><title>T1</title></paper>"
        "<paper category=\"public\"><title>T2</title></paper>"
        "</project>"
        "</laboratory>");
    ASSERT_TRUE(result.ok()) << result.status();
    doc_ = std::move(result).value();
    requester_ = {"Tom", "130.100.50.8", "infosys.bld1.it"};
    ASSERT_TRUE(groups_.AddMembership("Tom", "Foreign").ok());
  }

  Authorization Auth(std::string_view ug, std::string_view path, Sign sign,
                     AuthType type, std::string_view uri = "doc.xml") {
    Authorization auth;
    auth.subject = *Subject::Make(ug, "*", "*");
    auth.object.uri = std::string(uri);
    auth.object.path = std::string(path);
    auth.sign = sign;
    auth.type = type;
    return auth;
  }

  Result<NodeExplanation> Explain(
      const std::vector<Authorization>& instance,
      const std::vector<Authorization>& schema, std::string_view path) {
    auto nodes = xpath::SelectXPath(path, doc_->root());
    EXPECT_TRUE(nodes.ok()) << nodes.status();
    EXPECT_EQ(nodes->size(), 1u);
    return ExplainNode(*doc_, instance, schema, requester_, groups_,
                       PolicyOptions{}, nodes->front());
  }

  std::unique_ptr<Document> doc_;
  GroupStore groups_;
  Requester requester_;
};

TEST_F(ExplainTest, ExplicitAuthorizationOnNode) {
  std::vector<Authorization> instance = {
      Auth("Public", "//paper[@category=\"private\"]", Sign::kMinus,
           AuthType::kRecursive)};
  auto explanation = Explain(instance, {}, "//paper[1]");
  ASSERT_TRUE(explanation.ok()) << explanation.status();
  EXPECT_EQ(explanation->final_sign, TriSign::kMinus);
  EXPECT_EQ(explanation->winning_slot, LabelSlot::kR);
  EXPECT_EQ(explanation->inherited_from, nullptr);
  const SlotExplanation& r = explanation->slots[1];
  ASSERT_EQ(r.winning.size(), 1u);
  EXPECT_EQ(r.winning[0]->sign, Sign::kMinus);
}

TEST_F(ExplainTest, InheritedSignNamesTheAncestor) {
  std::vector<Authorization> instance = {
      Auth("Public", "/laboratory", Sign::kPlus, AuthType::kRecursive)};
  auto explanation = Explain(instance, {}, "//paper[1]/title");
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->final_sign, TriSign::kPlus);
  EXPECT_EQ(explanation->winning_slot, LabelSlot::kR);
  ASSERT_NE(explanation->inherited_from, nullptr);
  EXPECT_EQ(explanation->inherited_from->NodeName(), "laboratory");
  // The report mentions the inheritance chain.
  std::string report = explanation->ToString();
  EXPECT_NE(report.find("inherited from /laboratory"), std::string::npos);
}

TEST_F(ExplainTest, OverriddenAuthorizationListed) {
  std::vector<Authorization> instance = {
      Auth("Foreign", "//paper", Sign::kMinus, AuthType::kRecursive),
      Auth("Tom", "//paper", Sign::kPlus, AuthType::kRecursive)};
  auto explanation = Explain(instance, {}, "//paper[1]");
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->final_sign, TriSign::kPlus);
  const SlotExplanation& r = explanation->slots[1];
  ASSERT_EQ(r.winning.size(), 1u);
  EXPECT_EQ(r.winning[0]->subject.ug, "Tom");
  ASSERT_EQ(r.overridden.size(), 1u);
  EXPECT_EQ(r.overridden[0]->subject.ug, "Foreign");
  EXPECT_NE(explanation->ToString().find("overridden"), std::string::npos);
}

TEST_F(ExplainTest, SchemaBeatenByInstance) {
  std::vector<Authorization> instance = {
      Auth("Public", "//paper[1]", Sign::kMinus, AuthType::kRecursive)};
  std::vector<Authorization> schema = {
      Auth("Public", "//paper", Sign::kPlus, AuthType::kRecursive,
           "dtd.xml")};
  auto explanation = Explain(instance, schema, "//paper[1]");
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->final_sign, TriSign::kMinus);
  EXPECT_EQ(explanation->winning_slot, LabelSlot::kR);
  // The schema slot is populated but outranked.
  EXPECT_EQ(explanation->slots[3].sign, TriSign::kPlus);
}

TEST_F(ExplainTest, AttributeInheritsParentLocal) {
  std::vector<Authorization> instance = {
      Auth("Public", "//project", Sign::kPlus, AuthType::kLocal)};
  auto explanation = Explain(instance, {}, "//project/@name");
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->final_sign, TriSign::kPlus);
  EXPECT_EQ(explanation->winning_slot, LabelSlot::kR);  // inherited slot
  ASSERT_NE(explanation->inherited_from, nullptr);
  EXPECT_EQ(explanation->inherited_from->NodeName(), "project");
}

TEST_F(ExplainTest, EpsilonWhenNothingApplies) {
  auto explanation = Explain({}, {}, "//paper[1]/title");
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->final_sign, TriSign::kEps);
  EXPECT_NE(explanation->ToString().find("no authorization applies"),
            std::string::npos);
}

TEST_F(ExplainTest, AgreesWithTreeLabelerOnEveryNode) {
  std::vector<Authorization> instance = {
      Auth("Public", "", Sign::kPlus, AuthType::kRecursive),
      Auth("Foreign", "//paper[@category=\"private\"]", Sign::kMinus,
           AuthType::kRecursive),
      Auth("Tom", "//title", Sign::kPlus, AuthType::kLocal)};
  std::vector<Authorization> schema = {
      Auth("Public", "//paper", Sign::kMinus, AuthType::kLocal, "dtd.xml")};

  TreeLabeler labeler(&groups_, PolicyOptions{});
  auto labels = labeler.Label(*doc_, instance, schema, requester_);
  ASSERT_TRUE(labels.ok());

  xml::ForEachNode(
      static_cast<const xml::Node*>(doc_.get()), [&](const xml::Node* node) {
        if (!node->IsElement() && !node->IsAttribute()) return;
        auto explanation = ExplainNode(*doc_, instance, schema, requester_,
                                       groups_, PolicyOptions{}, node);
        ASSERT_TRUE(explanation.ok()) << explanation.status();
        EXPECT_EQ(explanation->final_sign, labels->FinalSign(node))
            << node->NodeName();
      });
}

TEST_F(ExplainTest, ExplainPathRendersReport) {
  std::vector<Authorization> instance = {
      Auth("Public", "/laboratory", Sign::kPlus, AuthType::kRecursive)};
  auto report = ExplainPath(*doc_, instance, {}, requester_, groups_,
                            PolicyOptions{}, "//paper[2]/title");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NE(report->find("/laboratory/project/paper/title"),
            std::string::npos);
  EXPECT_NE(report->find("final sign: +"), std::string::npos);
  // Ambiguous path is rejected.
  EXPECT_FALSE(ExplainPath(*doc_, instance, {}, requester_, groups_,
                           PolicyOptions{}, "//paper")
                   .ok());
}

// --- Lint ---------------------------------------------------------------

class LintTest : public ExplainTest {};

TEST_F(LintTest, CleanPolicyHasNoFindings) {
  groups_.AddGroup("Staff");
  std::vector<Authorization> instance = {
      Auth("Staff", "//paper", Sign::kPlus, AuthType::kRecursive)};
  auto findings = LintPolicy(instance, {}, groups_, doc_.get());
  EXPECT_TRUE(findings.empty()) << LintReport(findings);
  EXPECT_EQ(LintReport(findings), "policy lint: clean\n");
}

TEST_F(LintTest, FlagsBadPath) {
  std::vector<Authorization> instance = {
      Auth("Foreign", "//paper[", Sign::kPlus, AuthType::kRecursive)};
  auto findings = LintPolicy(instance, {}, groups_, doc_.get());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "bad-path");
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  EXPECT_EQ(findings[0].auth_index, 0);
}

TEST_F(LintTest, FlagsDeadTarget) {
  std::vector<Authorization> instance = {
      Auth("Foreign", "//nonexistent", Sign::kPlus, AuthType::kRecursive)};
  auto findings = LintPolicy(instance, {}, groups_, doc_.get());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "dead-target");
  // Without a document the check is skipped.
  EXPECT_TRUE(LintPolicy(instance, {}, groups_, nullptr).empty());
}

TEST_F(LintTest, VariablePathsNotFlaggedAsDead) {
  std::vector<Authorization> instance = {
      Auth("Foreign", "//paper[@owner=$user]", Sign::kPlus,
           AuthType::kRecursive)};
  EXPECT_TRUE(LintPolicy(instance, {}, groups_, doc_.get()).empty());
}

TEST_F(LintTest, FlagsUnknownSubject) {
  std::vector<Authorization> instance = {
      Auth("Ghosts", "//paper", Sign::kPlus, AuthType::kRecursive)};
  auto findings = LintPolicy(instance, {}, groups_, doc_.get());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "unknown-subject");
  // The universal group and known users are fine.
  std::vector<Authorization> ok = {
      Auth("Public", "//paper", Sign::kPlus, AuthType::kRecursive),
      Auth("Tom", "//paper", Sign::kMinus, AuthType::kLocal)};
  EXPECT_TRUE(LintPolicy(ok, {}, groups_, doc_.get()).empty());
}

TEST_F(LintTest, FlagsWeakSchemaAndEmptyWindow) {
  Authorization weak = Auth("Foreign", "//paper", Sign::kPlus,
                            AuthType::kRecursiveWeak, "dtd.xml");
  Authorization inverted = Auth("Foreign", "//paper", Sign::kPlus,
                                AuthType::kRecursive);
  inverted.valid_from = 100;
  inverted.valid_until = 50;
  std::vector<Authorization> instance = {inverted};
  std::vector<Authorization> schema = {weak};
  auto findings = LintPolicy(instance, schema, groups_, doc_.get());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].code, "empty-window");
  EXPECT_EQ(findings[1].code, "weak-schema");
}

TEST_F(LintTest, FlagsDuplicatesAndContradictions) {
  Authorization a = Auth("Foreign", "//paper", Sign::kPlus,
                         AuthType::kRecursive);
  Authorization duplicate = a;
  Authorization contradiction = a;
  contradiction.sign = Sign::kMinus;
  std::vector<Authorization> instance = {a, duplicate, contradiction};
  auto findings = LintPolicy(instance, {}, groups_, doc_.get());
  // duplicate matches #0; contradiction matches both #0 and #1.
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].code, "duplicate");
  EXPECT_EQ(findings[1].code, "contradiction");
  EXPECT_EQ(findings[2].code, "contradiction");
  std::string report = LintReport(findings);
  EXPECT_NE(report.find("warning[duplicate] auth#1"), std::string::npos);
}

TEST_F(LintTest, InstanceAndSchemaNotCrossMatched) {
  Authorization a = Auth("Foreign", "//paper", Sign::kPlus,
                         AuthType::kRecursive);
  std::vector<Authorization> instance = {a};
  std::vector<Authorization> schema = {a};  // Same tuple, different level.
  auto findings = LintPolicy(instance, schema, groups_, doc_.get());
  EXPECT_TRUE(findings.empty()) << LintReport(findings);
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
