#include <gtest/gtest.h>

#include "authz/subject.h"

namespace xmlsec {
namespace authz {
namespace {

LocationPattern Ip(std::string_view text) {
  auto result = LocationPattern::ParseIp(text);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status();
  return *result;
}

LocationPattern Sym(std::string_view text) {
  auto result = LocationPattern::ParseSymbolic(text);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status();
  return *result;
}

TEST(LocationPatternTest, IpParsingAndToString) {
  EXPECT_EQ(Ip("150.100.30.8").ToString(), "150.100.30.8");
  EXPECT_EQ(Ip("151.100.*.*").ToString(), "151.100.*.*");
  // Paper: "151.100.*" is equivalent to "151.100.*.*".
  EXPECT_EQ(Ip("151.100.*").ToString(), "151.100.*.*");
  EXPECT_EQ(Ip("*").ToString(), "*");
}

TEST(LocationPatternTest, IpRejectsMalformed) {
  EXPECT_FALSE(LocationPattern::ParseIp("300.1.1.1").ok());
  EXPECT_FALSE(LocationPattern::ParseIp("1.2.3.4.5").ok());
  EXPECT_FALSE(LocationPattern::ParseIp("a.b.c.d").ok());
  EXPECT_FALSE(LocationPattern::ParseIp("1.2.3").ok());  // short, no wildcard
  EXPECT_FALSE(LocationPattern::ParseIp("").ok());
}

TEST(LocationPatternTest, IpWildcardsMustBeRightmost) {
  // Paper: wildcards must be continuous and right-most in IP patterns.
  EXPECT_FALSE(LocationPattern::ParseIp("151.*.30.8").ok());
  EXPECT_FALSE(LocationPattern::ParseIp("*.100.30.8").ok());
  EXPECT_FALSE(LocationPattern::ParseIp("151.*.30.*").ok());
  EXPECT_TRUE(LocationPattern::ParseIp("151.100.30.*").ok());
}

TEST(LocationPatternTest, SymbolicWildcardsMustBeLeftmost) {
  // Paper: wildcards must be left-most in symbolic patterns.
  EXPECT_TRUE(LocationPattern::ParseSymbolic("*.lab.com").ok());
  EXPECT_TRUE(LocationPattern::ParseSymbolic("*.*.com").ok());
  EXPECT_FALSE(LocationPattern::ParseSymbolic("www.*.com").ok());
  EXPECT_FALSE(LocationPattern::ParseSymbolic("lab.*").ok());
}

TEST(LocationPatternTest, IpMatching) {
  EXPECT_TRUE(Ip("151.100.*").Matches("151.100.30.8"));
  EXPECT_TRUE(Ip("*").Matches("10.0.0.1"));
  EXPECT_TRUE(Ip("150.100.30.8").Matches("150.100.30.8"));
  EXPECT_FALSE(Ip("150.100.30.8").Matches("150.100.30.9"));
  EXPECT_FALSE(Ip("151.100.*").Matches("151.101.30.8"));
  EXPECT_FALSE(Ip("151.100.30.8").Matches("not-an-ip"));
}

TEST(LocationPatternTest, SymbolicMatching) {
  EXPECT_TRUE(Sym("*.it").Matches("infosys.bld1.it"));
  EXPECT_TRUE(Sym("*.lab.com").Matches("tweety.lab.com"));
  EXPECT_TRUE(Sym("*.lab.com").Matches("deep.sub.lab.com"));
  EXPECT_FALSE(Sym("*.lab.com").Matches("tweety.lab.org"));
  EXPECT_TRUE(Sym("tweety.lab.com").Matches("tweety.lab.com"));
  EXPECT_FALSE(Sym("tweety.lab.com").Matches("sylvester.lab.com"));
  EXPECT_TRUE(Sym("*").Matches("anything.at.all"));
}

TEST(LocationPatternTest, PartialOrderIp) {
  // p1 <= p2 iff every component of p2 is * or equal (Definition 1).
  EXPECT_TRUE(Ip("150.100.30.8").LessEq(Ip("150.100.*")));
  EXPECT_TRUE(Ip("150.100.*").LessEq(Ip("150.*")));
  EXPECT_TRUE(Ip("150.100.*").LessEq(Ip("*")));
  EXPECT_FALSE(Ip("150.*").LessEq(Ip("150.100.*")));
  EXPECT_FALSE(Ip("151.100.*").LessEq(Ip("150.100.*")));
  // Reflexive.
  EXPECT_TRUE(Ip("150.100.*").LessEq(Ip("150.100.*")));
}

TEST(LocationPatternTest, PartialOrderSymbolic) {
  EXPECT_TRUE(Sym("tweety.lab.com").LessEq(Sym("*.lab.com")));
  EXPECT_TRUE(Sym("*.lab.com").LessEq(Sym("*.com")));
  EXPECT_TRUE(Sym("*.lab.com").LessEq(Sym("*")));
  EXPECT_FALSE(Sym("*.com").LessEq(Sym("*.lab.com")));
  EXPECT_FALSE(Sym("*.lab.com").LessEq(Sym("*.lab.org")));
}

TEST(LocationPatternTest, KindsDoNotCompare) {
  EXPECT_FALSE(Ip("150.100.30.8").LessEq(Sym("*")));
}

TEST(LocationPatternTest, Concreteness) {
  EXPECT_TRUE(Ip("1.2.3.4").IsConcrete());
  EXPECT_FALSE(Ip("1.2.3.*").IsConcrete());
  EXPECT_TRUE(Sym("a.b.c").IsConcrete());
  EXPECT_FALSE(Sym("*.b.c").IsConcrete());
}

TEST(GroupStoreTest, DirectAndTransitiveMembership) {
  GroupStore groups;
  ASSERT_TRUE(groups.AddMembership("Alice", "Staff").ok());
  ASSERT_TRUE(groups.AddMembership("Staff", "Employees").ok());
  EXPECT_TRUE(groups.IsMemberOrSelf("Alice", "Staff"));
  EXPECT_TRUE(groups.IsMemberOrSelf("Alice", "Employees"));
  EXPECT_TRUE(groups.IsMemberOrSelf("Staff", "Employees"));
  EXPECT_FALSE(groups.IsMemberOrSelf("Employees", "Staff"));
  EXPECT_FALSE(groups.IsMemberOrSelf("Bob", "Staff"));
  EXPECT_TRUE(groups.IsMemberOrSelf("Alice", "Alice"));
}

TEST(GroupStoreTest, NonDisjointGroups) {
  GroupStore groups;
  ASSERT_TRUE(groups.AddMembership("Tom", "Foreign").ok());
  ASSERT_TRUE(groups.AddMembership("Tom", "Students").ok());
  EXPECT_TRUE(groups.IsMemberOrSelf("Tom", "Foreign"));
  EXPECT_TRUE(groups.IsMemberOrSelf("Tom", "Students"));
}

TEST(GroupStoreTest, UniversalGroupContainsEveryone) {
  GroupStore groups;
  EXPECT_TRUE(groups.IsMemberOrSelf("total-stranger", "Public"));
  EXPECT_TRUE(groups.IsMemberOrSelf("anonymous", "Public"));
  groups.set_universal_group("Everyone");
  EXPECT_FALSE(groups.IsMemberOrSelf("stranger", "Public"));
  EXPECT_TRUE(groups.IsMemberOrSelf("stranger", "Everyone"));
  groups.set_universal_group("");
  EXPECT_FALSE(groups.IsMemberOrSelf("stranger", "Everyone"));
}

TEST(GroupStoreTest, CyclesRejected) {
  GroupStore groups;
  ASSERT_TRUE(groups.AddMembership("A", "B").ok());
  ASSERT_TRUE(groups.AddMembership("B", "C").ok());
  EXPECT_FALSE(groups.AddMembership("C", "A").ok());
  EXPECT_FALSE(groups.AddMembership("A", "A").ok());
}

TEST(GroupStoreTest, GroupsOfListsTransitiveClosure) {
  GroupStore groups;
  ASSERT_TRUE(groups.AddMembership("Alice", "Staff").ok());
  ASSERT_TRUE(groups.AddMembership("Staff", "Employees").ok());
  std::vector<std::string> of_alice = groups.GroupsOf("Alice");
  EXPECT_EQ(of_alice, (std::vector<std::string>{"Employees", "Public",
                                                "Staff"}));
}

TEST(SubjectTest, MakeAndToString) {
  auto subject = Subject::Make("Sam", "*", "*.lab.com");
  ASSERT_TRUE(subject.ok()) << subject.status();
  EXPECT_EQ(subject->ToString(), "<Sam, *, *.lab.com>");
  EXPECT_FALSE(Subject::Make("X", "999.1.1.1", "*").ok());
  EXPECT_FALSE(Subject::Make("X", "*", "x.*").ok());
}

TEST(SubjectTest, AshPartialOrder) {
  GroupStore groups;
  ASSERT_TRUE(groups.AddMembership("Alice", "Staff").ok());

  Subject alice_here = *Subject::Make("Alice", "150.100.30.8", "pc.lab.com");
  Subject staff_net = *Subject::Make("Staff", "150.100.*", "*");
  Subject staff_any = *Subject::Make("Staff", "*", "*");
  Subject public_any = *Subject::Make("Public", "*", "*");

  EXPECT_TRUE(SubjectLessEq(alice_here, staff_net, groups));
  EXPECT_TRUE(SubjectLessEq(alice_here, staff_any, groups));
  EXPECT_TRUE(SubjectLessEq(staff_net, staff_any, groups));
  EXPECT_TRUE(SubjectLessEq(staff_any, public_any, groups));
  EXPECT_FALSE(SubjectLessEq(staff_any, staff_net, groups));
  // All three components must be comparable.
  Subject alice_elsewhere = *Subject::Make("Alice", "9.9.9.9", "*");
  EXPECT_FALSE(SubjectLessEq(alice_elsewhere, staff_net, groups));
}

TEST(SubjectTest, StrictOrderExcludesEquality) {
  GroupStore groups;
  Subject a = *Subject::Make("Public", "*", "*");
  Subject b = *Subject::Make("Public", "*", "*");
  EXPECT_TRUE(SubjectLessEq(a, b, groups));
  EXPECT_FALSE(SubjectLess(a, b, groups));
  Subject c = *Subject::Make("Public", "150.*", "*");
  EXPECT_TRUE(SubjectLess(c, a, groups));
}

TEST(RequesterTest, MatchesSubjects) {
  GroupStore groups;
  ASSERT_TRUE(groups.AddMembership("Tom", "Foreign").ok());

  Requester tom{"Tom", "130.100.50.8", "infosys.bld1.it"};
  EXPECT_TRUE(RequesterMatches(tom, *Subject::Make("Tom", "*", "*"), groups));
  EXPECT_TRUE(
      RequesterMatches(tom, *Subject::Make("Foreign", "*", "*"), groups));
  EXPECT_TRUE(
      RequesterMatches(tom, *Subject::Make("Public", "*", "*.it"), groups));
  EXPECT_TRUE(RequesterMatches(
      tom, *Subject::Make("Public", "130.100.*", "*"), groups));
  EXPECT_FALSE(
      RequesterMatches(tom, *Subject::Make("Admin", "*", "*"), groups));
  EXPECT_FALSE(RequesterMatches(
      tom, *Subject::Make("Tom", "150.*", "*"), groups));
  EXPECT_FALSE(RequesterMatches(
      tom, *Subject::Make("Tom", "*", "*.com"), groups));
}

TEST(RequesterTest, PaperExample1Subjects) {
  // The four subjects of the paper's Example 1, against user Tom, member
  // of Foreign, connecting from infosys.bld1.it (130.100.50.8).
  GroupStore groups;
  ASSERT_TRUE(groups.AddMembership("Tom", "Foreign").ok());
  Requester tom{"Tom", "130.100.50.8", "infosys.bld1.it"};

  EXPECT_TRUE(RequesterMatches(
      tom, *Subject::Make("Foreign", "*", "*"), groups));
  EXPECT_TRUE(RequesterMatches(
      tom, *Subject::Make("Public", "*", "*"), groups));
  // Admin from a specific host: does not apply to Tom.
  EXPECT_FALSE(RequesterMatches(
      tom, *Subject::Make("Admin", "130.89.56.8", "*"), groups));
  // Public from the it domain: applies.
  EXPECT_TRUE(RequesterMatches(
      tom, *Subject::Make("Public", "*", "*.it"), groups));
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
