// Atomic policy hot-reload: a manifest builds a complete candidate
// repository off to the side, the lint/analysis gate rejects
// error-grade policies before they can go live, a failure at any point
// (including an injected fault) leaves the serving repository
// untouched, the admin endpoint and counters work, and readers
// hammering the server during swaps never observe a half-loaded
// repository or a stale view after the final swap.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "server/audit_log.h"
#include "server/config_files.h"
#include "server/document_server.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/tcp_listener.h"
#include "server/user_directory.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace server {
namespace {

constexpr char kDocXml[] =
    "<laboratory><project name=\"P\" type=\"public\">"
    "<manager><fname>A</fname><lname>B</lname></manager>"
    "<paper category=\"private\"><title>Secret</title></paper>"
    "<paper category=\"public\"><title>Known</title></paper>"
    "</project></laboratory>";

constexpr char kGrantAllXacl[] =
    "<xacl><authorization subject=\"Public\" object=\"CSlab.xml\" "
    "path=\"/laboratory\" sign=\"+\" type=\"RW\"/></xacl>";

constexpr char kDenyPrivateXacl[] =
    "<xacl>"
    "<authorization subject=\"Public\" object=\"CSlab.xml\" "
    "path=\"/laboratory\" sign=\"+\" type=\"RW\"/>"
    "<authorization subject=\"Public\" object=\"laboratory.xml\" "
    "path='//paper[./@category=&quot;private&quot;]' "
    "sign=\"-\" type=\"R\"/>"
    "</xacl>";

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << text;
}

/// Lays out `manifest`, `lab.dtd`, `doc.xml`, and `policy.xacl` in the
/// test temp dir and returns the manifest path.
std::string WriteManifest(const std::string& stem, const char* xacl) {
  std::string dir = ::testing::TempDir();
  WriteFile(dir + stem + "_lab.dtd", workload::LaboratoryDtd());
  WriteFile(dir + stem + "_doc.xml", kDocXml);
  WriteFile(dir + stem + "_policy.xacl", xacl);
  std::string manifest_path = dir + stem + "_manifest.txt";
  WriteFile(manifest_path,
            "# test repository manifest\n"
            "dtd laboratory.xml " + stem + "_lab.dtd\n"
            "doc CSlab.xml " + stem + "_doc.xml laboratory.xml\n"
            "xacl " + stem + "_policy.xacl\n");
  return manifest_path;
}

class ReloadTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::DisableAll(); }
  void TearDown() override { failpoint::DisableAll(); }

  authz::GroupStore groups_;
  UserDirectory users_;
};

TEST_F(ReloadTest, ManifestBuildsAServableRepository) {
  std::string manifest = WriteManifest("reload_valid", kDenyPrivateXacl);
  auto repo = LoadRepositoryManifest(manifest, groups_);
  ASSERT_TRUE(repo.ok()) << repo.status();
  SecureDocumentServer server(*repo, &users_, &groups_, {});
  std::string response = server.HandleHttp("GET /CSlab.xml HTTP/1.0\r\n\r\n",
                                           "10.0.0.8", "lab.example");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Known"), std::string::npos);
  EXPECT_EQ(response.find("Secret"), std::string::npos)
      << "manifest policy not enforced";
}

TEST_F(ReloadTest, MissingFileAndBadDirectiveAreRejectedWithLineNumbers) {
  std::string dir = ::testing::TempDir();
  std::string manifest = dir + "reload_bad_manifest.txt";
  WriteFile(manifest, "doc CSlab.xml does_not_exist.xml\n");
  auto missing = LoadRepositoryManifest(manifest, groups_);
  EXPECT_FALSE(missing.ok());

  WriteFile(manifest, "frobnicate a b\n");
  auto unknown = LoadRepositoryManifest(manifest, groups_);
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("line 1"), std::string::npos)
      << unknown.status();
}

TEST_F(ReloadTest, GateRejectsErrorGradePolicy) {
  // valid-from > valid-until is the lint's `empty-window` ERROR: the
  // sheet parses and loads, but the gate must keep it from going live.
  std::string manifest = WriteManifest(
      "reload_gate",
      "<xacl><authorization subject=\"Public\" object=\"CSlab.xml\" "
      "path=\"/laboratory\" sign=\"+\" type=\"RW\" "
      "valid-from=\"100\" valid-until=\"50\"/></xacl>");
  auto repo = LoadRepositoryManifest(manifest, groups_);
  ASSERT_FALSE(repo.ok());
  EXPECT_NE(repo.status().message().find("empty-window"), std::string::npos)
      << repo.status();
}

TEST_F(ReloadTest, FailedReloadLeavesTheServingRepositoryUntouched) {
  std::string good = WriteManifest("reload_keep", kDenyPrivateXacl);
  auto initial = LoadRepositoryManifest(good, groups_);
  ASSERT_TRUE(initial.ok()) << initial.status();
  SecureDocumentServer server(*initial, &users_, &groups_, {});
  const Repository* before = server.repository_snapshot().get();

  // Failure mode 1: gate rejection.
  std::string bad = WriteManifest(
      "reload_keep_bad",
      "<xacl><authorization subject=\"Public\" object=\"CSlab.xml\" "
      "path=\"/laboratory\" sign=\"+\" type=\"RW\" "
      "valid-from=\"100\" valid-until=\"50\"/></xacl>");
  auto rejected = LoadRepositoryManifest(bad, groups_);
  EXPECT_FALSE(rejected.ok());

  // Failure mode 2: injected fault inside the load itself.
  failpoint::Enable("server.reload");
  auto faulted = LoadRepositoryManifest(good, groups_);
  EXPECT_FALSE(faulted.ok());
  EXPECT_GT(failpoint::TriggerCount("server.reload"), 0);
  failpoint::Disable("server.reload");

  // Rollback is the absence of a swap: same repository, same behavior.
  EXPECT_EQ(server.repository_snapshot().get(), before);
  std::string response = server.HandleHttp("GET /CSlab.xml HTTP/1.0\r\n\r\n",
                                           "10.0.0.8", "lab.example");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(response.find("Secret"), std::string::npos);
}

TEST_F(ReloadTest, SwapRepositoryChangesServedPolicyAtomically) {
  auto permissive = LoadRepositoryManifest(
      WriteManifest("reload_swap_a", kGrantAllXacl), groups_);
  auto restrictive = LoadRepositoryManifest(
      WriteManifest("reload_swap_b", kDenyPrivateXacl), groups_);
  ASSERT_TRUE(permissive.ok() && restrictive.ok());
  SecureDocumentServer server(*permissive, &users_, &groups_, {});

  std::string open_view = server.HandleHttp(
      "GET /CSlab.xml HTTP/1.0\r\n\r\n", "10.0.0.8", "lab.example");
  EXPECT_NE(open_view.find("Secret"), std::string::npos)
      << "permissive policy should expose the private paper";

  server.SwapRepository(*restrictive);
  std::string pruned_view = server.HandleHttp(
      "GET /CSlab.xml HTTP/1.0\r\n\r\n", "10.0.0.8", "lab.example");
  EXPECT_NE(pruned_view.find("200 OK"), std::string::npos);
  EXPECT_NE(pruned_view.find("Known"), std::string::npos);
  EXPECT_EQ(pruned_view.find("Secret"), std::string::npos)
      << "stale view served after swap";
}

// --- Admin endpoint ------------------------------------------------------

TEST_F(ReloadTest, AdminReloadEndpointDrivesTheHandler) {
  auto repo = LoadRepositoryManifest(
      WriteManifest("reload_admin", kDenyPrivateXacl), groups_);
  ASSERT_TRUE(repo.ok());
  SecureDocumentServer server(*repo, &users_, &groups_, {});

  std::atomic<int> calls{0};
  std::atomic<bool> fail_next{false};
  ListenerConfig config;
  config.reload_handler = [&]() -> Status {
    calls.fetch_add(1);
    if (fail_next.load()) return Status::Internal("simulated reload fault");
    return Status::OK();
  };
  TcpHttpListener listener(&server, "lab.example", config);
  ASSERT_TRUE(listener.Start(0).ok());

  auto ok = FetchHttp(listener.port(),
                      "POST /admin/reload HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ok->find("200 OK"), std::string::npos) << *ok;
  EXPECT_NE(ok->find("reloaded"), std::string::npos);
  EXPECT_EQ(calls.load(), 1);

  fail_next.store(true);
  auto failed = FetchHttp(listener.port(),
                          "POST /admin/reload HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(failed.ok());
  EXPECT_NE(failed->find("500"), std::string::npos) << *failed;
  EXPECT_NE(failed->find("simulated reload fault"), std::string::npos);

#ifndef XMLSEC_METRICS_NOOP
  EXPECT_EQ(listener.reloads(), 1);
  EXPECT_EQ(listener.reload_failures(), 1);
  auto health = FetchHttp(listener.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->find("\"reloads\":1"), std::string::npos) << *health;
  EXPECT_NE(health->find("\"reload_failures\":1"), std::string::npos);
#endif
  listener.Stop();
}

TEST_F(ReloadTest, AdminReloadWithoutHandlerIs404) {
  auto repo = LoadRepositoryManifest(
      WriteManifest("reload_nohandler", kDenyPrivateXacl), groups_);
  ASSERT_TRUE(repo.ok());
  SecureDocumentServer server(*repo, &users_, &groups_, {});
  TcpHttpListener listener(&server, "lab.example");
  ASSERT_TRUE(listener.Start(0).ok());
  auto response = FetchHttp(listener.port(),
                            "POST /admin/reload HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("404"), std::string::npos) << *response;
  listener.Stop();
}

// --- Reload under load ---------------------------------------------------

TEST_F(ReloadTest, ReadersNeverSeeAHalfLoadedRepositoryDuringSwaps) {
  auto permissive = LoadRepositoryManifest(
      WriteManifest("reload_chaos_a", kGrantAllXacl), groups_);
  auto restrictive = LoadRepositoryManifest(
      WriteManifest("reload_chaos_b", kDenyPrivateXacl), groups_);
  ASSERT_TRUE(permissive.ok() && restrictive.ok());
  SecureDocumentServer server(*permissive, &users_, &groups_, {});
  TcpHttpListener listener(&server, "lab.example");
  ASSERT_TRUE(listener.Start(0).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> served{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto response =
            FetchHttp(listener.port(), "GET /CSlab.xml HTTP/1.0\r\n\r\n");
        if (!response.ok()) continue;
        if (response->find("200 OK") == std::string::npos) {
          torn.fetch_add(1);
          continue;
        }
        served.fetch_add(1);
        // Every 200 is a COMPLETE view from exactly one policy: the
        // public paper always present, the document well-terminated,
        // and the private paper either fully there (permissive) or
        // fully absent (restrictive) — never truncated mid-swap.
        if (response->find("Known") == std::string::npos ||
            response->find("</laboratory>") == std::string::npos) {
          torn.fetch_add(1);
        }
        bool has_secret_title =
            response->find("Secret") != std::string::npos;
        bool has_private_paper =
            response->find("category=\"private\"") != std::string::npos;
        if (has_secret_title != has_private_paper) torn.fetch_add(1);
      }
    });
  }

  // Hammer swaps while the readers run.
  for (int i = 0; i < 50; ++i) {
    server.SwapRepository(i % 2 == 0 ? *restrictive : *permissive);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.SwapRepository(*restrictive);
  stop.store(true);
  for (std::thread& t : readers) t.join();
  listener.Stop();

  EXPECT_EQ(torn.load(), 0) << "a reader observed a torn/partial view";
  EXPECT_GT(served.load(), 0);

  // No stale view after the final swap: the restrictive policy rules.
  std::string final_view = server.HandleHttp(
      "GET /CSlab.xml HTTP/1.0\r\n\r\n", "10.0.0.8", "lab.example");
  EXPECT_NE(final_view.find("200 OK"), std::string::npos);
  EXPECT_EQ(final_view.find("Secret"), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace xmlsec
