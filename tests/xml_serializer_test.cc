#include <gtest/gtest.h>

#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlsec {
namespace xml {
namespace {

std::unique_ptr<Document> MustParse(std::string_view text) {
  auto result = ParseDocument(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(SerializerTest, EscapeText) {
  EXPECT_EQ(EscapeText("a < b & c > d"), "a &lt; b &amp; c &gt; d");
  EXPECT_EQ(EscapeText("plain"), "plain");
  EXPECT_EQ(EscapeText("]]>"), "]]&gt;");
}

TEST(SerializerTest, EscapeAttrValue) {
  EXPECT_EQ(EscapeAttrValue("say \"hi\" & <go>"),
            "say &quot;hi&quot; &amp; &lt;go>");
  EXPECT_EQ(EscapeAttrValue("tab\there"), "tab&#9;here");
  EXPECT_EQ(EscapeAttrValue("line\nbreak"), "line&#10;break");
}

TEST(SerializerTest, CompactRoundTripPreservesContent) {
  const char* text =
      "<a x=\"1\"><b>text &amp; more</b><c/>tail<!--c--><?pi d?></a>";
  auto doc = MustParse(text);
  SerializeOptions options;
  options.xml_declaration = false;
  std::string out = SerializeDocument(*doc, options);
  // Reparse: same structure and content.
  auto doc2 = MustParse(out);
  EXPECT_EQ(SerializeDocument(*doc2, options), out);
  EXPECT_EQ(doc2->root()->TextContent(), doc->root()->TextContent());
  EXPECT_EQ(doc2->node_count(), doc->node_count());
}

TEST(SerializerTest, EmptyElementUsesSelfClosingTag) {
  auto doc = MustParse("<a><b></b></a>");
  SerializeOptions options;
  options.xml_declaration = false;
  EXPECT_EQ(SerializeDocument(*doc, options), "<a><b/></a>");
}

TEST(SerializerTest, XmlDeclarationEmitted) {
  auto doc = MustParse("<a/>");
  std::string out = SerializeDocument(*doc);
  EXPECT_EQ(out.find("<?xml version=\"1.0\" encoding=\"UTF-8\"?>"), 0u);
}

TEST(SerializerTest, CDataPreserved) {
  auto doc = MustParse("<a><![CDATA[x < y & z]]></a>");
  SerializeOptions options;
  options.xml_declaration = false;
  EXPECT_EQ(SerializeDocument(*doc, options),
            "<a><![CDATA[x < y & z]]></a>");
}

TEST(SerializerTest, PrettyPrintIndentsStructuralContent) {
  auto doc = MustParse("<a><b><c/></b></a>");
  SerializeOptions options;
  options.xml_declaration = false;
  options.indent = 2;
  EXPECT_EQ(SerializeDocument(*doc, options),
            "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
}

TEST(SerializerTest, PrettyPrintLeavesMixedContentAlone) {
  auto doc = MustParse("<p>one <em>two</em> three</p>");
  SerializeOptions options;
  options.xml_declaration = false;
  options.indent = 2;
  EXPECT_EQ(SerializeDocument(*doc, options),
            "<p>one <em>two</em> three</p>\n");
}

TEST(SerializerTest, DoctypeSystemMode) {
  auto doc = MustParse("<!DOCTYPE a SYSTEM \"a.dtd\"><a/>");
  SerializeOptions options;
  options.xml_declaration = false;
  options.doctype = DoctypeMode::kSystem;
  EXPECT_EQ(SerializeDocument(*doc, options),
            "<!DOCTYPE a SYSTEM \"a.dtd\"><a/>");
}

TEST(SerializerTest, DoctypeInternalModeEmbedsDtd) {
  auto doc = MustParse(
      "<!DOCTYPE a [<!ELEMENT a (b*)><!ELEMENT b EMPTY>"
      "<!ATTLIST b k CDATA #REQUIRED>]><a><b k=\"1\"/></a>");
  SerializeOptions options;
  options.xml_declaration = false;
  options.doctype = DoctypeMode::kInternal;
  std::string out = SerializeDocument(*doc, options);
  EXPECT_NE(out.find("<!DOCTYPE a ["), std::string::npos);
  EXPECT_NE(out.find("<!ELEMENT a (b*)>"), std::string::npos);
  EXPECT_NE(out.find("<!ATTLIST b"), std::string::npos);
  // The embedded form must reparse to an equivalent document.
  auto doc2 = MustParse(out);
  ASSERT_NE(doc2->dtd(), nullptr);
  EXPECT_NE(doc2->dtd()->FindElement("a"), nullptr);
  EXPECT_EQ(doc2->dtd()->FindAttr("b", "k")->default_kind,
            AttrDefaultKind::kRequired);
}

TEST(SerializerTest, SerializeNodeSubtree) {
  auto doc = MustParse("<a><b x=\"1\">t</b></a>");
  const Element* b = doc->root()->FirstChildElement("b");
  EXPECT_EQ(SerializeNode(*b), "<b x=\"1\">t</b>");
}

TEST(SerializerTest, DtdRoundTripThroughParser) {
  const char* source =
      "<!ELEMENT a (b+,c?)>\n"
      "<!ELEMENT b (#PCDATA)>\n"
      "<!ELEMENT c EMPTY>\n"
      "<!ATTLIST a id ID #REQUIRED kind (x|y) \"x\">\n"
      "<!ENTITY e \"text\">\n"
      "<!NOTATION n SYSTEM \"sys\">\n";
  auto dtd = ParseDtd(source);
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  std::string rendered = SerializeDtd(**dtd);
  auto reparsed = ParseDtd(rendered);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << rendered;
  EXPECT_EQ((*reparsed)->FindElement("a")->ContentToString(), "(b+,c?)");
  EXPECT_EQ((*reparsed)->FindAttr("a", "id")->type, AttrType::kId);
  EXPECT_EQ((*reparsed)->FindAttr("a", "kind")->default_value, "x");
  EXPECT_EQ((*reparsed)->FindEntity("e", false)->value, "text");
  EXPECT_NE((*reparsed)->FindNotation("n"), nullptr);
}

TEST(SerializerTest, AttributeRoundTripWithSpecialChars) {
  Document doc;
  auto root = std::make_unique<Element>("a");
  root->SetAttribute("k", "quote\" amp& lt< nl\n");
  doc.AppendChild(std::move(root));
  doc.Reindex();
  SerializeOptions options;
  options.xml_declaration = false;
  std::string out = SerializeDocument(doc, options);
  auto doc2 = MustParse(out);
  // Exact round-trip: the serializer emits newline as &#10;, and
  // character references bypass attribute-value normalization.
  EXPECT_EQ(doc2->root()->GetAttribute("k"), "quote\" amp& lt< nl\n");
}

}  // namespace
}  // namespace xml
}  // namespace xmlsec
