// Property sweeps over the authorization-subject machinery: the ASH
// order must be a partial order consistent with concrete matching
// (Definition 1 of the paper).

#include <gtest/gtest.h>

#include "common/prng.h"
#include "authz/subject.h"

namespace xmlsec {
namespace authz {
namespace {

/// Random IP pattern with a wildcard suffix of random length.
LocationPattern RandomIp(Prng* prng) {
  int concrete = static_cast<int>(prng->Below(5));  // 0..4 concrete octets
  std::string text;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) text += ".";
    text += i < concrete ? std::to_string(prng->Below(4)) : "*";
  }
  if (concrete == 0) text = "*";
  return LocationPattern::ParseIp(text).value();
}

LocationPattern RandomSym(Prng* prng) {
  static const char* kLabels[] = {"it", "com", "lab", "cs", "web", "pc1"};
  int total = 1 + static_cast<int>(prng->Below(4));
  int wild = static_cast<int>(prng->Below(static_cast<uint64_t>(total + 1)));
  std::string text;
  for (int i = 0; i < total; ++i) {
    if (i > 0) text += ".";
    text += i < wild ? "*" : kLabels[prng->Below(6)];
  }
  if (wild == total) text = "*";
  auto parsed = LocationPattern::ParseSymbolic(text);
  return parsed.ok() ? *parsed
                     : LocationPattern::Any(LocationPattern::Kind::kSymbolic);
}

std::string RandomIpAddress(Prng* prng) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out += ".";
    out += std::to_string(prng->Below(4));
  }
  return out;
}

std::string RandomSymAddress(Prng* prng) {
  static const char* kLabels[] = {"it", "com", "lab", "cs", "web", "pc1"};
  int total = 1 + static_cast<int>(prng->Below(4));
  std::string out;
  for (int i = 0; i < total; ++i) {
    if (i > 0) out += ".";
    out += kLabels[prng->Below(6)];
  }
  return out;
}

class PatternPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PatternPropertyTest, LessEqIsReflexiveAndTransitive) {
  Prng prng(GetParam());
  for (int round = 0; round < 200; ++round) {
    LocationPattern p1 = RandomIp(&prng);
    LocationPattern p2 = RandomIp(&prng);
    LocationPattern p3 = RandomIp(&prng);
    EXPECT_TRUE(p1.LessEq(p1)) << p1.ToString();
    if (p1.LessEq(p2) && p2.LessEq(p3)) {
      EXPECT_TRUE(p1.LessEq(p3))
          << p1.ToString() << " <= " << p2.ToString()
          << " <= " << p3.ToString();
    }
    // Antisymmetry: mutual <= implies equality.
    if (p1.LessEq(p2) && p2.LessEq(p1)) {
      EXPECT_EQ(p1.ToString(), p2.ToString());
    }
  }
}

TEST_P(PatternPropertyTest, OrderIsConsistentWithMatching) {
  // p1 <= p2 means p1 is MORE specific: every address p1 matches, p2
  // must match too.
  Prng prng(GetParam() * 7 + 1);
  int checked = 0;
  for (int round = 0; round < 500; ++round) {
    LocationPattern p1 = RandomIp(&prng);
    LocationPattern p2 = RandomIp(&prng);
    if (!p1.LessEq(p2)) continue;
    std::string address = RandomIpAddress(&prng);
    if (p1.Matches(address)) {
      EXPECT_TRUE(p2.Matches(address))
          << p1.ToString() << " <= " << p2.ToString() << ", address "
          << address;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_P(PatternPropertyTest, SymbolicOrderConsistentWithMatching) {
  Prng prng(GetParam() * 13 + 5);
  for (int round = 0; round < 500; ++round) {
    LocationPattern p1 = RandomSym(&prng);
    LocationPattern p2 = RandomSym(&prng);
    if (!p1.LessEq(p2)) continue;
    std::string address = RandomSymAddress(&prng);
    if (p1.Matches(address)) {
      EXPECT_TRUE(p2.Matches(address))
          << p1.ToString() << " <= " << p2.ToString() << ", address "
          << address;
    }
  }
}

TEST_P(PatternPropertyTest, SubjectOrderImpliesRequesterContainment) {
  // If s1 <= s2 in ASH, every requester to whom s1 applies, s2 applies
  // to as well — this is what makes "most specific subject" sound.
  Prng prng(GetParam() * 31 + 9);
  GroupStore groups;
  ASSERT_TRUE(groups.AddMembership("u0", "g0").ok());
  ASSERT_TRUE(groups.AddMembership("g0", "g1").ok());
  ASSERT_TRUE(groups.AddMembership("u1", "g1").ok());
  static const char* kUgs[] = {"u0", "u1", "g0", "g1", "Public"};

  for (int round = 0; round < 300; ++round) {
    Subject s1;
    s1.ug = kUgs[prng.Below(5)];
    s1.ip = RandomIp(&prng);
    s1.sym = RandomSym(&prng);
    Subject s2;
    s2.ug = kUgs[prng.Below(5)];
    s2.ip = RandomIp(&prng);
    s2.sym = RandomSym(&prng);
    if (!SubjectLessEq(s1, s2, groups)) continue;

    Requester rq;
    rq.user = prng.Chance(0.5) ? "u0" : "u1";
    rq.ip = RandomIpAddress(&prng);
    rq.sym = RandomSymAddress(&prng);
    if (RequesterMatches(rq, s1, groups)) {
      EXPECT_TRUE(RequesterMatches(rq, s2, groups))
          << s1.ToString() << " <= " << s2.ToString() << ", requester "
          << rq.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace authz
}  // namespace xmlsec
