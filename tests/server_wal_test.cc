// Durability suite for the audit WAL: frame round-trips, CRC catches
// corruption, crash simulation leaves a torn tail that reopen truncates
// while every fsync-acked frame survives, injected sink faults degrade
// the serving path per config (fail-closed 503 vs memory-only audit),
// and the AuditLog front-end stays data-race-free under concurrent
// record/flush/rotate/detach (run under TSan in CI).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "server/audit_log.h"
#include "server/audit_wal.h"
#include "server/document_server.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/tcp_listener.h"
#include "server/user_directory.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace server {
namespace {

#ifdef XMLSEC_METRICS_NOOP
constexpr bool kTalliesEnabled = false;
#else
constexpr bool kTalliesEnabled = true;
#endif

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".2").c_str());
  return path;
}

// --- Frame format --------------------------------------------------------

TEST(Crc32Test, MatchesTheIeeeReferenceVector) {
  // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(AuditWalTest, AppendFlushVerifyRoundTrip) {
  std::string path = TempPath("wal_roundtrip.log");
  AuditWal wal;
  ASSERT_TRUE(wal.Open(path, {}, nullptr).ok());
  std::vector<std::string> written = {"alpha", "", std::string(3000, 'x'),
                                      "final entry"};
  for (const std::string& payload : written) {
    auto seq = wal.Append(payload);
    ASSERT_TRUE(seq.ok()) << seq.status();
  }
  ASSERT_TRUE(wal.Flush().ok());
  wal.Close();

  std::vector<std::string> read_back;
  auto report = AuditWal::Verify(path, &read_back);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->frames, written.size());
  EXPECT_EQ(read_back, written);
}

TEST(AuditWalTest, AppendAfterCloseFailsAndCounts) {
  std::string path = TempPath("wal_closed.log");
  AuditWal wal;
  ASSERT_TRUE(wal.Open(path, {}, nullptr).ok());
  wal.Close();
  auto seq = wal.Append("too late");
  EXPECT_FALSE(seq.ok());
  EXPECT_GE(wal.sink_failures(), 1);
}

TEST(AuditWalTest, RotationKeepsAckedFramesAcrossGenerations) {
  std::string path = TempPath("wal_rotate.log");
  AuditWal::Options options;
  options.rotate_bytes = 256;  // A few frames per generation.
  options.max_rotated_files = 2;
  AuditWal wal;
  ASSERT_TRUE(wal.Open(path, options, nullptr).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(wal.Append("payload payload payload #" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(wal.Flush().ok());
  wal.Close();

  // The active file and at least one rotated generation exist, and every
  // surviving file verifies clean (rotation is a commit point).
  EXPECT_TRUE(std::ifstream(path).good());
  EXPECT_TRUE(std::ifstream(path + ".1").good());
  for (const std::string& p : {path, path + ".1"}) {
    auto report = AuditWal::Verify(p);
    ASSERT_TRUE(report.ok()) << p << ": " << report.status();
    EXPECT_TRUE(report->clean()) << p;
  }
}

TEST(AuditWalTest, VerifyFlagsABitFlippedPayload) {
  std::string path = TempPath("wal_bitflip.log");
  AuditWal wal;
  ASSERT_TRUE(wal.Open(path, {}, nullptr).ok());
  ASSERT_TRUE(wal.Append("intact frame one").ok());
  ASSERT_TRUE(wal.Append("frame that will rot").ok());
  ASSERT_TRUE(wal.Flush().ok());
  wal.Close();

  // Flip one byte inside the SECOND frame's payload.
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekp(8 + 16 + 8 + 4);  // frame1 header+payload, frame2 header, +4
  file.put('X');
  file.close();

  auto report = AuditWal::Verify(path);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->clean());
  EXPECT_TRUE(report->crc_mismatch);
  EXPECT_EQ(report->frames, 1u) << "only the intact prefix counts";
}

// --- Crash recovery ------------------------------------------------------

TEST(WalCrashRecoveryTest, FsyncAckedFramesSurviveACrashMidWrite) {
  std::string path = TempPath("wal_crash.log");
  std::vector<std::string> acked;
  {
    AuditWal wal;
    ASSERT_TRUE(wal.Open(path, {}, nullptr).ok());
    for (int i = 0; i < 5; ++i) {
      std::string payload = "acked entry " + std::to_string(i);
      auto seq = wal.Append(payload);
      ASSERT_TRUE(seq.ok());
      // Fsync-ack mode: once WaitDurable returns OK the frame must
      // survive ANY subsequent crash.
      ASSERT_TRUE(wal.WaitDurable(*seq).ok());
      acked.push_back(std::move(payload));
    }
    // Power cut mid-write: a partial frame lands after the acked tail.
    wal.CrashForTest(/*torn_bytes=*/13);
  }

  // Reopen recovers: the torn tail is detected and truncated; every
  // acked frame is intact.
  AuditWal::VerifyReport recovered;
  AuditWal reopened;
  ASSERT_TRUE(reopened.Open(path, {}, &recovered).ok());
  EXPECT_EQ(recovered.torn_bytes(), 13u);
  EXPECT_EQ(recovered.frames, acked.size());
  // The log accepts new appends after recovery.
  ASSERT_TRUE(reopened.Append("post-recovery entry").ok());
  ASSERT_TRUE(reopened.Flush().ok());
  reopened.Close();

  std::vector<std::string> read_back;
  auto report = AuditWal::Verify(path, &read_back);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << "reopen must have truncated the tear";
  ASSERT_EQ(read_back.size(), acked.size() + 1);
  for (size_t i = 0; i < acked.size(); ++i) {
    EXPECT_EQ(read_back[i], acked[i]);
  }
  EXPECT_EQ(read_back.back(), "post-recovery entry");
}

TEST(WalCrashRecoveryTest, ShortHeaderTearIsAlsoTruncated) {
  std::string path = TempPath("wal_crash_short.log");
  {
    AuditWal wal;
    ASSERT_TRUE(wal.Open(path, {}, nullptr).ok());
    ASSERT_TRUE(wal.Append("the only durable frame").ok());
    ASSERT_TRUE(wal.Flush().ok());
    wal.CrashForTest(/*torn_bytes=*/3);  // Not even a full length word.
  }
  AuditWal::VerifyReport recovered;
  AuditWal reopened;
  ASSERT_TRUE(reopened.Open(path, {}, &recovered).ok());
  reopened.Close();
  EXPECT_EQ(recovered.torn_bytes(), 3u);
  EXPECT_FALSE(recovered.crc_mismatch) << "a short write is not bit rot";
  auto report = AuditWal::Verify(path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->frames, 1u);
}

TEST(WalCrashRecoveryTest, InjectedWriteFaultFailsTheWaiterThenRecovers) {
  failpoint::DisableAll();
  std::string path = TempPath("wal_fault_write.log");
  AuditWal wal;
  ASSERT_TRUE(wal.Open(path, {}, nullptr).ok());

  failpoint::Enable("audit.wal_write");
  auto seq = wal.Append("doomed");
  ASSERT_TRUE(seq.ok()) << "enqueue itself succeeds";
  Status waited = wal.WaitDurable(*seq);
  EXPECT_FALSE(waited.ok()) << "the dropped batch must fail its waiter";
  EXPECT_FALSE(wal.healthy());
  EXPECT_GE(wal.sink_failures(), 1);
  failpoint::Disable("audit.wal_write");

  // The writer keeps going: the next batch commits and health returns.
  auto seq2 = wal.Append("survivor");
  ASSERT_TRUE(seq2.ok());
  EXPECT_TRUE(wal.WaitDurable(*seq2).ok());
  EXPECT_TRUE(wal.healthy());
  wal.Close();

  std::vector<std::string> payloads;
  ASSERT_TRUE(AuditWal::Verify(path, &payloads).ok());
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "survivor");
}

TEST(WalCrashRecoveryTest, InjectedFsyncFaultFailsTheWaiterThenRecovers) {
  failpoint::DisableAll();
  std::string path = TempPath("wal_fault_fsync.log");
  AuditWal wal;
  ASSERT_TRUE(wal.Open(path, {}, nullptr).ok());

  failpoint::Enable("audit.wal_fsync");
  auto seq = wal.Append("uncommitted");
  ASSERT_TRUE(seq.ok());
  EXPECT_FALSE(wal.WaitDurable(*seq).ok());
  EXPECT_FALSE(wal.healthy());
  failpoint::Disable("audit.wal_fsync");

  auto seq2 = wal.Append("committed");
  ASSERT_TRUE(seq2.ok());
  EXPECT_TRUE(wal.WaitDurable(*seq2).ok());
  EXPECT_TRUE(wal.healthy());
  wal.Close();
}

// --- AuditLog front-end --------------------------------------------------

AuditEntry MakeEntry(int i) {
  AuditEntry entry;
  entry.time = 1000 + i;
  entry.user = "tom";
  entry.ip = "10.0.0.8";
  entry.sym = "lab.example";
  entry.uri = "/CSlab.xml";
  entry.http_status = 200;
  entry.visible_nodes = 4;
  entry.total_nodes = 9;
  return entry;
}

TEST(AuditLogWalTest, RecordDurableFsyncLandsOnDisk) {
  std::string path = TempPath("wal_audit_log.log");
  AuditWal wal;
  ASSERT_TRUE(wal.Open(path, {}, nullptr).ok());
  AuditLog log;
  log.AttachWal(&wal);
  ASSERT_TRUE(
      log.RecordDurable(MakeEntry(1), AuditDurability::kFsync).ok());
  EXPECT_EQ(log.size(), 1u);
  log.DetachWal();
  wal.Close();

  std::vector<std::string> payloads;
  ASSERT_TRUE(AuditWal::Verify(path, &payloads).ok());
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], MakeEntry(1).ToString());
}

TEST(AuditLogWalTest, DurableFailureStoresNothingAndReportsDegraded) {
  failpoint::DisableAll();
  std::string path = TempPath("wal_audit_fail.log");
  AuditWal wal;
  ASSERT_TRUE(wal.Open(path, {}, nullptr).ok());
  AuditLog log;
  log.AttachWal(&wal);
  EXPECT_FALSE(log.degraded());

  failpoint::Enable("audit.wal_fsync");
  Status s = log.RecordDurable(MakeEntry(7), AuditDurability::kFsync);
  EXPECT_FALSE(s.ok());
  // The contract: on failure the entry is stored NOWHERE — the caller
  // decides between fail-closed and RecordMemoryOnly.
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.degraded());
  log.RecordMemoryOnly(MakeEntry(7));
  EXPECT_EQ(log.size(), 1u);
  failpoint::Disable("audit.wal_fsync");
  log.DetachWal();
  wal.Close();
}

TEST(AuditLogWalTest, ConcurrentRecordFlushRotateDetachIsRaceFree) {
  // The TSan target: recorders, a flusher, a sink-rotator, and a WAL
  // toggler all running against one AuditLog.  Asserts only totals —
  // the point is that the sanitizer observes the interleavings.
  std::string wal_path = TempPath("wal_tsan.log");
  std::string sink_path = TempPath("wal_tsan_sink.log");
  AuditWal wal;
  ASSERT_TRUE(wal.Open(wal_path, {}, nullptr).ok());
  AuditLog log;
  AuditLog::FileSinkOptions sink_options;
  sink_options.rotate_bytes = 2048;  // Rotate constantly under load.
  sink_options.flush_every_records = 4;
  ASSERT_TRUE(log.AttachFileSink(sink_path, sink_options).ok());
  log.AttachWal(&wal);

  constexpr int kRecorders = 4;
  constexpr int kPerRecorder = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kRecorders; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerRecorder; ++i) {
        if (i % 16 == 0) {
          (void)log.RecordDurable(MakeEntry(t * 1000 + i),
                                  AuditDurability::kFsync);
        } else {
          log.Record(MakeEntry(t * 1000 + i));
        }
      }
    });
  }
  threads.emplace_back([&log] {
    for (int i = 0; i < 50; ++i) (void)log.Flush();
  });
  threads.emplace_back([&log, &wal] {
    for (int i = 0; i < 50; ++i) {
      log.DetachWal();
      log.AttachWal(&wal);
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(log.total_recorded(), kRecorders * kPerRecorder);
  ASSERT_TRUE(log.Flush().ok());
  log.DetachWal();
  log.DetachFileSink();
  wal.Close();
  // Whatever reached the WAL is framed intact.
  auto report = AuditWal::Verify(wal_path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
}

// --- Degraded-mode serving -----------------------------------------------

class DegradedModeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisableAll();
    ASSERT_TRUE(
        repo_.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
    ASSERT_TRUE(repo_
                    .AddDocument("CSlab.xml",
                                 "<laboratory><project name=\"P\" "
                                 "type=\"public\"><manager><fname>A</fname>"
                                 "<lname>B</lname></manager>"
                                 "<paper category=\"public\">"
                                 "<title>Known</title></paper>"
                                 "</project></laboratory>",
                                 "laboratory.xml")
                    .ok());
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl><authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" type=\"RW\"/></xacl>")
                    .ok());
    ASSERT_TRUE(users_.CreateUser("tom", "secret").ok());
    wal_path_ = TempPath("wal_degraded.log");
    ASSERT_TRUE(wal_.Open(wal_path_, {}, nullptr).ok());
    audit_.AttachWal(&wal_);
  }

  void TearDown() override {
    failpoint::DisableAll();
    audit_.DetachWal();
    if (wal_.open()) wal_.Close();
  }

  std::unique_ptr<SecureDocumentServer> MakeServer(ServerConfig config) {
    auto server = std::make_unique<SecureDocumentServer>(&repo_, &users_,
                                                         &groups_, config);
    server->set_audit_log(&audit_);
    return server;
  }

  static std::string Request() {
    return "GET /CSlab.xml HTTP/1.0\r\n\r\n";
  }

  Repository repo_;
  UserDirectory users_;
  authz::GroupStore groups_;
  AuditLog audit_;
  AuditWal wal_;
  std::string wal_path_;
};

TEST_F(DegradedModeTest, FailClosedAnswers503WithEmptyBodyOnWalFault) {
  ServerConfig config;
  config.audit_durability = AuditDurability::kFsync;
  config.audit_degraded_mode = AuditDegradedMode::kFailClosed;
  auto server = MakeServer(config);

  failpoint::Enable("audit.wal_fsync");
  std::string response =
      server->HandleHttp(Request(), "10.0.0.8", "lab.example");
  EXPECT_NE(response.find("503"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Length: 0"), std::string::npos);
  EXPECT_EQ(response.find("Known"), std::string::npos)
      << "no view bytes without a durable audit record";
  // The degraded-mode trail still has the (amended) entry in memory.
  ASSERT_GE(audit_.size(), 1u);
  EXPECT_EQ(audit_.Entries().back().http_status, 503);
  failpoint::Disable("audit.wal_fsync");

  // Fault cleared: serving resumes with durable audit.
  std::string ok = server->HandleHttp(Request(), "10.0.0.8", "lab.example");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("Known"), std::string::npos);
}

TEST_F(DegradedModeTest, MemoryAuditModeKeepsServingThroughWalFault) {
  ServerConfig config;
  config.audit_durability = AuditDurability::kFsync;
  config.audit_degraded_mode = AuditDegradedMode::kMemoryAudit;
  auto server = MakeServer(config);

  failpoint::Enable("audit.wal_fsync");
  std::string response =
      server->HandleHttp(Request(), "10.0.0.8", "lab.example");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Known"), std::string::npos);
  // The access is still on the in-memory trail.
  ASSERT_GE(audit_.size(), 1u);
  EXPECT_EQ(audit_.Entries().back().http_status, 200);
  EXPECT_TRUE(server->audit_degraded());
  failpoint::Disable("audit.wal_fsync");
}

TEST_F(DegradedModeTest, HealthzAndMetricsExposeDegradedState) {
  if (!kTalliesEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::MetricsRegistry registry;
  ServerConfig config;
  config.metrics = &registry;
  config.audit_durability = AuditDurability::kFsync;
  auto server = MakeServer(config);
  ListenerConfig listener_config;
  listener_config.metrics = &registry;
  TcpHttpListener listener(server.get(), "lab.example", listener_config);
  ASSERT_TRUE(listener.Start(0).ok());

  auto healthy = FetchHttp(listener.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(healthy.ok());
  EXPECT_NE(healthy->find("\"degraded\":false"), std::string::npos)
      << *healthy;

  failpoint::Enable("audit.wal_fsync");
  (void)FetchHttp(listener.port(), Request());
  auto degraded = FetchHttp(listener.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(degraded.ok());
  EXPECT_NE(degraded->find("\"degraded\":true"), std::string::npos)
      << *degraded;

  auto scrape = FetchHttp(listener.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(scrape.ok());
  for (const char* family :
       {"xmlsec_audit_queue_depth", "xmlsec_audit_fsync_total",
        "xmlsec_audit_sink_failures_total", "xmlsec_audit_degraded",
        "xmlsec_audit_denied_total"}) {
    EXPECT_NE(scrape->find(family), std::string::npos)
        << "missing metric family " << family;
  }
  EXPECT_NE(scrape->find("xmlsec_audit_degraded 1"), std::string::npos)
      << *scrape;
  failpoint::Disable("audit.wal_fsync");
  listener.Stop();
}

}  // namespace
}  // namespace server
}  // namespace xmlsec
