#include <gtest/gtest.h>

#include <map>

#include "authz/labeling.h"
#include "authz/loosening.h"
#include "authz/processor.h"
#include "workload/authgen.h"
#include "workload/docgen.h"
#include "xml/serializer.h"
#include "xml/validator.h"

namespace xmlsec {
namespace authz {
namespace {

using workload::AuthGenConfig;
using workload::DocGenConfig;
using workload::GeneratedWorkload;
using xml::Document;

struct Scenario {
  uint64_t seed;
  int depth;
  int fanout;
  int auth_count;
};

void PrintTo(const Scenario& s, std::ostream* os) {
  *os << "seed=" << s.seed << " depth=" << s.depth << " fanout=" << s.fanout
      << " auths=" << s.auth_count;
}

class RandomWorkloadTest : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    const Scenario& s = GetParam();
    DocGenConfig doc_config;
    doc_config.depth = s.depth;
    doc_config.fanout = s.fanout;
    doc_config.seed = s.seed;
    doc_ = workload::GenerateDocument(doc_config);

    AuthGenConfig auth_config;
    auth_config.count = s.auth_count;
    auth_config.seed = s.seed * 1000 + 17;
    workload_ = workload::GenerateAuthorizations(*doc_, "d.xml", "s.dtd",
                                                 auth_config);
  }

  /// Multiset of root-to-node label paths, used for subset checks.
  static std::map<std::string, int> PathMultiset(const xml::Node* node,
                                                 const std::string& prefix) {
    std::map<std::string, int> out;
    std::string here = prefix + "/" + node->NodeName();
    out[here]++;
    if (const xml::Element* el = node->AsElement()) {
      for (const auto& attr : el->attributes()) {
        out[here + "/@" + attr->name()]++;
      }
    }
    for (const auto& child : node->children()) {
      for (auto& [path, count] : PathMultiset(child.get(), here)) {
        out[path] += count;
      }
    }
    return out;
  }

  std::unique_ptr<Document> doc_;
  GeneratedWorkload workload_;
};

TEST_P(RandomWorkloadTest, PropagationMatchesNaiveSemantics) {
  for (ConflictPolicy conflict :
       {ConflictPolicy::kDenialsTakePrecedence,
        ConflictPolicy::kPermissionsTakePrecedence,
        ConflictPolicy::kNothingTakesPrecedence}) {
    PolicyOptions policy;
    policy.conflict = conflict;
    TreeLabeler labeler(&workload_.groups, policy);
    auto fast = labeler.Label(*doc_, workload_.instance_auths,
                              workload_.schema_auths, workload_.requester);
    ASSERT_TRUE(fast.ok()) << fast.status();
    auto naive =
        LabelTreeNaive(*doc_, workload_.instance_auths,
                       workload_.schema_auths, workload_.requester,
                       workload_.groups, policy);
    ASSERT_TRUE(naive.ok()) << naive.status();
    int64_t mismatches = 0;
    xml::ForEachNode(static_cast<const xml::Node*>(doc_.get()),
                     [&](const xml::Node* node) {
                       if (fast->FinalSign(node) != naive->FinalSign(node)) {
                         ++mismatches;
                       }
                     });
    EXPECT_EQ(mismatches, 0) << "policy "
                             << ConflictPolicyToString(conflict);
  }
}

TEST_P(RandomWorkloadTest, ViewPathsAreSubsetOfOriginal) {
  SecurityProcessor processor(&workload_.groups, {});
  auto view = processor.ComputeView(*doc_, workload_.instance_auths,
                                    workload_.schema_auths,
                                    workload_.requester);
  ASSERT_TRUE(view.ok()) << view.status();
  if (view->empty()) return;
  auto original = PathMultiset(doc_->root(), "");
  auto pruned = PathMultiset(view->document->root(), "");
  for (const auto& [path, count] : pruned) {
    EXPECT_LE(count, original[path]) << path;
  }
  EXPECT_LE(view->document->node_count(), doc_->node_count());
}

TEST_P(RandomWorkloadTest, ViewValidatesAgainstLoosenedDtd) {
  SecurityProcessor processor(&workload_.groups, {});
  auto view = processor.ComputeView(*doc_, workload_.instance_auths,
                                    workload_.schema_auths,
                                    workload_.requester);
  ASSERT_TRUE(view.ok()) << view.status();
  if (view->empty()) return;
  ASSERT_NE(view->document->dtd(), nullptr);
  xml::ValidationOptions options;
  options.add_default_attributes = false;
  xml::Validator validator(view->document->dtd(), options);
  Status s = validator.Validate(view->document.get());
  EXPECT_TRUE(s.ok()) << s;
}

TEST_P(RandomWorkloadTest, AddingStrongDenialNeverRevealsMore) {
  SecurityProcessor processor(&workload_.groups, {});
  auto before = processor.ComputeView(*doc_, workload_.instance_auths,
                                      workload_.schema_auths,
                                      workload_.requester);
  ASSERT_TRUE(before.ok()) << before.status();
  int64_t visible_before =
      before->empty() ? 0 : before->document->node_count();

  // Add a strong (non-weak) recursive denial for everyone on some node.
  std::vector<Authorization> augmented = workload_.instance_auths;
  Authorization denial;
  denial.subject = *Subject::Make("Public", "*", "*");
  denial.object.uri = "d.xml";
  denial.object.path = "/root/*[1]";
  denial.sign = Sign::kMinus;
  denial.type = AuthType::kRecursive;
  augmented.push_back(denial);

  auto after = processor.ComputeView(*doc_, augmented,
                                     workload_.schema_auths,
                                     workload_.requester);
  ASSERT_TRUE(after.ok()) << after.status();
  int64_t visible_after = after->empty() ? 0 : after->document->node_count();
  EXPECT_LE(visible_after, visible_before);
}

TEST_P(RandomWorkloadTest, DenialsPolicyShowsNoMoreThanPermissionsPolicy) {
  PolicyOptions denials;
  denials.conflict = ConflictPolicy::kDenialsTakePrecedence;
  PolicyOptions permissions;
  permissions.conflict = ConflictPolicy::kPermissionsTakePrecedence;

  TreeLabeler denials_labeler(&workload_.groups, denials);
  TreeLabeler permissions_labeler(&workload_.groups, permissions);
  auto a = denials_labeler.Label(*doc_, workload_.instance_auths,
                                 workload_.schema_auths,
                                 workload_.requester);
  auto b = permissions_labeler.Label(*doc_, workload_.instance_auths,
                                     workload_.schema_auths,
                                     workload_.requester);
  ASSERT_TRUE(a.ok() && b.ok());
  // Per slot, minus-vs-plus flips only in one direction; at whole-node
  // granularity the denials policy cannot label plus where the
  // permissions policy labels minus *for the same winning slot*; we
  // check the weaker but meaningful aggregate: no more plus signs.
  int64_t plus_denials = 0;
  int64_t plus_permissions = 0;
  xml::ForEachNode(static_cast<const xml::Node*>(doc_.get()),
                   [&](const xml::Node* node) {
                     if (a->FinalSign(node) == TriSign::kPlus) {
                       ++plus_denials;
                     }
                     if (b->FinalSign(node) == TriSign::kPlus) {
                       ++plus_permissions;
                     }
                   });
  EXPECT_LE(plus_denials, plus_permissions);
}

TEST_P(RandomWorkloadTest, LabelingIsDeterministic) {
  TreeLabeler labeler(&workload_.groups, PolicyOptions{});
  auto a = labeler.Label(*doc_, workload_.instance_auths,
                         workload_.schema_auths, workload_.requester);
  auto b = labeler.Label(*doc_, workload_.instance_auths,
                         workload_.schema_auths, workload_.requester);
  ASSERT_TRUE(a.ok() && b.ok());
  xml::ForEachNode(static_cast<const xml::Node*>(doc_.get()),
                   [&](const xml::Node* node) {
                     EXPECT_EQ(a->FinalSign(node), b->FinalSign(node));
                   });
}

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> out;
  uint64_t seed = 1;
  for (int depth : {2, 4}) {
    for (int fanout : {2, 4}) {
      for (int auths : {4, 32, 128}) {
        out.push_back(Scenario{seed++, depth, fanout, auths});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomWorkloadTest,
                         ::testing::ValuesIn(MakeScenarios()));

}  // namespace
}  // namespace authz
}  // namespace xmlsec
