#include <gtest/gtest.h>

#include "xml/canonical.h"
#include "xml/parser.h"

namespace xmlsec {
namespace xml {
namespace {

std::string Canon(std::string_view text) {
  auto doc = ParseDocument(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return CanonicalXml(**doc);
}

TEST(CanonicalTest, AttributesSorted) {
  EXPECT_EQ(Canon("<a z=\"1\" m=\"2\" a=\"3\"/>"),
            "<a a=\"3\" m=\"2\" z=\"1\"></a>");
  // Attribute order in the source is irrelevant.
  EXPECT_EQ(Canon("<a z=\"1\" a=\"3\" m=\"2\"/>"),
            Canon("<a a=\"3\" m=\"2\" z=\"1\"/>"));
}

TEST(CanonicalTest, EmptyElementExpanded) {
  EXPECT_EQ(Canon("<a><b/></a>"), "<a><b></b></a>");
  EXPECT_EQ(Canon("<a><b></b></a>"), Canon("<a><b/></a>"));
}

TEST(CanonicalTest, CommentsAndPisDropped) {
  EXPECT_EQ(Canon("<!--x--><a><!--y--><?pi d?>t</a><!--z-->"),
            "<a>t</a>");
}

TEST(CanonicalTest, CDataFoldedIntoText) {
  EXPECT_EQ(Canon("<a>x<![CDATA[<&>]]>y</a>"),
            "<a>x&lt;&amp;&gt;y</a>");
  // CDATA vs escaped text: identical canonical form.
  EXPECT_EQ(Canon("<a><![CDATA[a<b]]></a>"), Canon("<a>a&lt;b</a>"));
}

TEST(CanonicalTest, AdjacentTextMerged) {
  auto doc = ParseDocument("<a>one</a>");
  ASSERT_TRUE(doc.ok());
  (*doc)->root()->AppendText("two");
  (*doc)->root()->AppendText("three");
  EXPECT_EQ(CanonicalXml(**doc), "<a>onetwothree</a>");
}

TEST(CanonicalTest, NoDeclarationOrDoctype) {
  EXPECT_EQ(Canon("<?xml version=\"1.0\"?>"
                  "<!DOCTYPE a [<!ELEMENT a ANY>]><a/>"),
            "<a></a>");
}

TEST(CanonicalTest, C14nEscapes) {
  EXPECT_EQ(Canon("<a k=\"v&amp;&lt;&quot;\">t&amp;&lt;</a>"),
            "<a k=\"v&amp;&lt;&quot;\">t&amp;&lt;</a>");
  // Tab/newline in attribute values (via char refs) stay escaped.
  EXPECT_EQ(Canon("<a k=\"x&#9;y&#10;z\"/>"),
            "<a k=\"x&#x9;y&#xA;z\"></a>");
}

TEST(CanonicalTest, EqualityMatchesContentEquality) {
  // Same content, wildly different markup: equal canonical form.
  std::string v1 = Canon(
      "<!DOCTYPE r [<!ENTITY e \"hi\">]>"
      "<r b=\"2\" a=\"1\"><x>&e;</x><y/></r>");
  std::string v2 = Canon("<r a=\"1\" b=\"2\"><x>hi</x><y></y></r>");
  EXPECT_EQ(v1, v2);
  // Different content: different canonical form.
  EXPECT_NE(Canon("<r><x>hi</x></r>"), Canon("<r><x>ho</x></r>"));
}

TEST(CanonicalTest, SubtreeForm) {
  auto doc = ParseDocument("<a><b k=\"v\">t</b></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(CanonicalXml(*(*doc)->root()->FirstChildElement("b")),
            "<b k=\"v\">t</b>");
}

}  // namespace
}  // namespace xml
}  // namespace xmlsec
