// Chaos suite for the fail-closed serving path: slowloris clients,
// oversized heads, mid-request disconnects, overload shedding, request
// budgets, and a failpoint sweep proving that a fault at EVERY
// registered site degrades into a denial-shaped response — never a
// partial or unpruned view on the wire — and that the listener keeps
// serving afterwards.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "server/audit_log.h"
#include "server/audit_wal.h"
#include "server/document_server.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/tcp_listener.h"
#include "server/user_directory.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace server {
namespace {

// The registry-backed listener tallies are compiled out in the
// -DXMLSEC_METRICS_NOOP=ON ablation build; behavioral assertions still
// run there, count assertions are gated on this flag.
#ifdef XMLSEC_METRICS_NOOP
constexpr bool kTalliesEnabled = false;
#else
constexpr bool kTalliesEnabled = true;
#endif

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

/// Raw client socket for slowloris/partial-send scenarios.
class RawClient {
 public:
  explicit RawClient(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        fd_ >= 0 &&
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawClient() { Close(); }

  bool connected() const { return connected_; }

  void Send(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;
      sent += static_cast<size_t>(n);
    }
  }

  std::string ReadAll() {
    std::string out;
    char buffer[4096];
    for (;;) {
      ssize_t n = read(fd_, buffer, sizeof(buffer));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      out.append(buffer, static_cast<size_t>(n));
    }
    return out;
  }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class ChaosTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    failpoint::DisableAll();
    ASSERT_TRUE(
        repo_.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
    ASSERT_TRUE(repo_
                    .AddDocument("CSlab.xml",
                                 "<laboratory>"
                                 "<project name=\"P\" type=\"public\">"
                                 "<manager><fname>A</fname>"
                                 "<lname>B</lname></manager>"
                                 "<paper category=\"private\">"
                                 "<title>Secret</title></paper>"
                                 "<paper category=\"public\">"
                                 "<title>Known</title></paper>"
                                 "</project></laboratory>",
                                 "laboratory.xml")
                    .ok());
    ASSERT_TRUE(users_.CreateUser("tom", "secret").ok());
    ASSERT_TRUE(groups_.AddMembership("tom", "Foreign").ok());
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl>"
                        "<authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" type=\"RW\"/>"
                        "<authorization subject=\"Foreign\" "
                        "object=\"laboratory.xml\" "
                        "path='//paper[./@category=&quot;private&quot;]' "
                        "sign=\"-\" type=\"R\"/>"
                        // Write grant for the update-path chaos scenarios:
                        // the batches below MUST be policy-legal, so the
                        // only thing standing between them and a publish
                        // is the fault under test.
                        "<authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" action=\"write\" type=\"R\"/>"
                        "</xacl>")
                    .ok());
    // Every chaos scenario runs with the durable WAL attached in
    // fsync-ack mode: faults anywhere (including the WAL's own
    // failpoint sites) must degrade fail-closed, and the surviving log
    // must verify clean afterwards (`xacl_tool audit-verify` replays
    // these files as a CI post-step).
    // Parameterized test names carry a '/' (Test/Mode): flatten it so
    // the WAL path stays a single file under TempDir.
    std::string test_name = ::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name();
    for (char& c : test_name) {
      if (c == '/') c = '_';
    }
    wal_path_ = ::testing::TempDir() + "chaos_wal_" + test_name + ".log";
    std::remove(wal_path_.c_str());
    ASSERT_TRUE(wal_.Open(wal_path_, {}, nullptr).ok());
    audit_.AttachWal(&wal_);
  }

  void TearDown() override {
    failpoint::DisableAll();
    if (listener_ != nullptr) listener_->Stop();
    audit_.DetachWal();
    if (wal_.open()) {
      EXPECT_TRUE(wal_.Flush().ok());
      wal_.Close();
      auto report = AuditWal::Verify(wal_path_);
      ASSERT_TRUE(report.ok()) << report.status();
      EXPECT_TRUE(report->clean())
          << "chaos left a torn frame in " << wal_path_;
    }
  }

  void StartServer(ServerConfig server_config, ListenerConfig config) {
    // Chaos parity: the whole suite runs under BOTH serving modes — the
    // suite param is `event_loops` (0 = legacy pool, 4 = epoll loops);
    // a test that pre-set event_loops (e.g. to pin a single loop) wins.
    if (config.event_loops == 0) config.event_loops = GetParam();
    server_config.audit_durability = AuditDurability::kFsync;
    server_ = std::make_unique<SecureDocumentServer>(&repo_, &users_,
                                                     &groups_, server_config);
    server_->set_audit_log(&audit_);
    listener_ = std::make_unique<TcpHttpListener>(
        server_.get(), "client.lab.example", config);
    Status started = listener_->Start(0);
    ASSERT_TRUE(started.ok()) << started;
  }

  std::string AuthorizedRequest(std::string_view query = "") const {
    std::string target = "/CSlab.xml";
    if (!query.empty()) target += "?query=" + std::string(query);
    return "GET " + target + " HTTP/1.0\r\nAuthorization: Basic " +
           Base64Encode("tom:secret") + "\r\n\r\n";
  }

  /// A policy-legal write batch: retitles the public paper "Tampered".
  /// Under any injected fault the word "Tampered" must NEVER become
  /// visible to a later read — that is the "no audit, no write" probe.
  std::string UpdateRequest() const {
    std::string body =
        "<update><set-text "
        "target='//paper[./@category=\"public\"]/title'>Tampered"
        "</set-text></update>";
    return "POST /update/CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
           Base64Encode("tom:secret") +
           "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n\r\n" +
           body;
  }

  Repository repo_;
  UserDirectory users_;
  authz::GroupStore groups_;
  AuditLog audit_;
  AuditWal wal_;
  std::string wal_path_;
  std::unique_ptr<SecureDocumentServer> server_;
  std::unique_ptr<TcpHttpListener> listener_;
};

// --- Hostile clients -----------------------------------------------------

TEST_P(ChaosTest, SlowlorisClientGets408WithinDeadline) {
  ListenerConfig config;
  config.read_timeout_ms = 200;
  StartServer({}, config);

  auto start = Clock::now();
  RawClient client(listener_->port());
  ASSERT_TRUE(client.connected());
  client.Send("GET /CSlab.xml HT");  // ... and then never finishes.
  std::string response = client.ReadAll();
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  EXPECT_LT(ElapsedMs(start), 5000);
  if (kTalliesEnabled) EXPECT_GE(listener_->read_timeouts(), 1);

  // The worker is free again: a healthy request succeeds.
  auto ok = FetchHttp(listener_->port(), AuthorizedRequest());
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ok->find("200 OK"), std::string::npos);
}

TEST_P(ChaosTest, OversizedHeadGets431WithoutReadingItAll) {
  ListenerConfig config;
  config.max_request_head = 1024;
  StartServer({}, config);

  RawClient client(listener_->port());
  ASSERT_TRUE(client.connected());
  std::string junk = "GET /CSlab.xml HTTP/1.0\r\n";
  junk += "X-Flood: " + std::string(8 * 1024, 'a') + "\r\n";
  client.Send(junk);  // No terminating blank line; cap must trip first.
  std::string response = client.ReadAll();
  EXPECT_NE(response.find("431"), std::string::npos) << response;
  if (kTalliesEnabled) EXPECT_GE(listener_->oversized_heads(), 1);

  auto ok = FetchHttp(listener_->port(), AuthorizedRequest());
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ok->find("200 OK"), std::string::npos);
}

TEST_P(ChaosTest, MidRequestDisconnectDoesNotWedgeTheListener) {
  ListenerConfig config;
  config.read_timeout_ms = 500;
  StartServer({}, config);

  for (int i = 0; i < 4; ++i) {
    RawClient client(listener_->port());
    ASSERT_TRUE(client.connected());
    client.Send("GET /CSlab.xml HTTP/1.0\r\nAuth");
    client.Close();  // Vanish mid-request.
  }
  auto ok = FetchHttp(listener_->port(), AuthorizedRequest());
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ok->find("200 OK"), std::string::npos);
}

TEST_P(ChaosTest, TruncatedHeadAnswers400) {
  ListenerConfig config;
  StartServer({}, config);
  // FetchHttp half-closes after sending; head lacks the blank line.
  auto response =
      FetchHttp(listener_->port(), "GET /CSlab.xml HTTP/1.0\r\nHost: x\r\n");
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("400"), std::string::npos) << *response;
}

// --- Overload shedding ---------------------------------------------------

TEST_P(ChaosTest, OverloadShedsWith503RetryAfter) {
  ListenerConfig config;
  config.worker_threads = 1;
  // Event mode: a single loop whose open-connection bound is 1, so the
  // staller below occupies the only slot and the flood must shed (with
  // 4 loops a stalled connection pins nothing — that is the point of
  // the event-loop design — so shedding would need a real flood).
  if (GetParam() > 0) config.event_loops = 1;
  config.accept_queue_limit = 1;
  config.read_timeout_ms = 400;
  StartServer({}, config);

  // Pin the single worker with a stalling connection.
  RawClient staller(listener_->port());
  ASSERT_TRUE(staller.connected());
  staller.Send("GET /CSlab.xml HT");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Flood: with a queue of 1 and the worker pinned for ~400ms, most of
  // these must be shed instead of queued without bound.
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &responses, i] {
      auto response = FetchHttp(listener_->port(), AuthorizedRequest());
      if (response.ok()) responses[static_cast<size_t>(i)] = *response;
    });
  }
  for (std::thread& t : threads) t.join();

  if (kTalliesEnabled) EXPECT_GE(listener_->requests_shed(), 1);
  bool saw_shed = false;
  for (const std::string& response : responses) {
    if (response.find("503") != std::string::npos) {
      saw_shed = true;
      EXPECT_NE(response.find("Retry-After"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_shed);

  // After the stall clears, service resumes.  (The slot frees when the
  // server observes the staller's FIN — retry across that small race.)
  staller.Close();
  std::string resumed;
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto ok = FetchHttp(listener_->port(), AuthorizedRequest());
    ASSERT_TRUE(ok.ok());
    resumed = *ok;
    if (resumed.find("200 OK") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(resumed.find("200 OK"), std::string::npos) << resumed;
}

// --- Request budget ------------------------------------------------------

TEST_P(ChaosTest, ExpiredRequestBudgetAnswers504WithEmptyBody) {
  ServerConfig server_config;
  server_config.request_budget_ms = -1;  // Every request over budget.
  StartServer(server_config, {});

  auto response = FetchHttp(listener_->port(), AuthorizedRequest());
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("504"), std::string::npos) << *response;
  EXPECT_NE(response->find("Content-Length: 0"), std::string::npos);
  EXPECT_EQ(response->find("Secret"), std::string::npos);
  EXPECT_EQ(response->find("Known"), std::string::npos);
}

// --- Failpoint sweep -----------------------------------------------------

TEST_P(ChaosTest, FailpointSweepProvesFailClosed) {
  ServerConfig server_config;
  server_config.view_cache_capacity = 8;  // Exercise the cache sites.
  // Queries serve through the rewrite path so its sites fire too; the
  // plain view request of each iteration still covers every
  // materialized-path site.
  server_config.query_path = QueryPathMode::kRewrite;
  server_config.enable_updates = true;  // Sweep the write path too.
  StartServer(server_config, {});

  // Sites the write path passes through BEFORE its publish step: with
  // the fault armed, an otherwise-legal update batch MUST be refused.
  // Only these sites get an update probe — a fault-free update would
  // SUCCEED and publish a cloned repository, detaching `repo_` (a
  // non-owning alias) from the served snapshot and defeating the
  // cold-cache version bump below.
  constexpr std::string_view kWriteMustFail[] = {
      "repo.find_document", "repo.instance_auths", "repo.schema_auths",
      "update.apply",       "update.publish",      "server.audit",
      "audit.wal_write",    "audit.wal_fsync",
  };

  for (std::string_view site : failpoint::Sites()) {
    if (site == "xml.parse") continue;      // Registration-time; below.
    if (site == "server.reload") continue;  // Reload-time; reload suite.
    SCOPED_TRACE(std::string(site));
    // Start every site with a COLD cache: the recovery request of the
    // previous iteration memoized the view, which would let cache-hit
    // fast paths skip the site under test (cache_put, serialize).  A
    // redundant policy append bumps the repository version, which is
    // exactly how real invalidation works.
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl><authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" type=\"RW\"/></xacl>")
                    .ok());
    failpoint::Enable(site);

    // A plain view request and a query request, so query-path sites
    // fire too; on write-path sites an update probe rides along and
    // must be refused before anything publishes.
    std::vector<std::string> requests = {AuthorizedRequest(),
                                         AuthorizedRequest("//title")};
    const bool write_must_fail =
        std::find(std::begin(kWriteMustFail), std::end(kWriteMustFail),
                  site) != std::end(kWriteMustFail);
    if (write_must_fail) requests.push_back(UpdateRequest());
    for (const std::string& request : requests) {
      auto response = FetchHttp(listener_->port(), request);
      ASSERT_TRUE(response.ok()) << response.status();
      // The fail-closed property: no response under fault may contain
      // content the requester is denied ("Secret"), and any 5xx denial
      // carries an EMPTY body (no partial view, no internal detail).
      EXPECT_EQ(response->find("Secret"), std::string::npos)
          << "unpruned bytes on the wire under failpoint " << site;
      if (site != "server.cache_put") {
        size_t http5xx = response->find("HTTP/1.0 5");
        if (http5xx != std::string::npos) {
          EXPECT_NE(response->find("Content-Length: 0"), std::string::npos)
              << "5xx body must be empty under failpoint " << site << ": "
              << *response;
        }
      }
    }
    if (write_must_fail) {
      // The faulted update must not have landed: the public paper
      // keeps its original title on a post-fault read.
      failpoint::Disable(site);
      auto after = FetchHttp(listener_->port(), AuthorizedRequest());
      ASSERT_TRUE(after.ok());
      EXPECT_EQ(after->find("Tampered"), std::string::npos)
          << "write landed despite failpoint " << site;
      failpoint::Enable(site);
    }

    // Sites on the mandatory path must actually have fired and denied.
    EXPECT_GT(failpoint::TriggerCount(site), 0)
        << "failpoint " << site << " never fired";

    failpoint::Disable(site);
    // The listener keeps serving correctly after the fault clears.
    auto ok = FetchHttp(listener_->port(), AuthorizedRequest());
    ASSERT_TRUE(ok.ok());
    EXPECT_NE(ok->find("200 OK"), std::string::npos)
        << "listener wedged after failpoint " << site;
    EXPECT_NE(ok->find("Known"), std::string::npos);
    EXPECT_EQ(ok->find("Secret"), std::string::npos);
  }

  // Every denial (and recovery) above is on the audit trail.
  EXPECT_GT(audit_.total_recorded(), 0);
}

TEST_P(ChaosTest, UpdateFailpointsRefuseWriteThenRecover) {
  // "No audit, no write" in depth: a fault at either write-path site
  // turns a policy-legal batch into a 5xx with an empty body, a later
  // read sees the ORIGINAL document, and once the fault clears the
  // identical batch applies and becomes visible.
  ServerConfig server_config;
  server_config.enable_updates = true;
  StartServer(server_config, {});

  for (std::string_view site : {"update.apply", "update.publish"}) {
    SCOPED_TRACE(std::string(site));
    failpoint::Enable(site);
    auto response = FetchHttp(listener_->port(), UpdateRequest());
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_NE(response->find("HTTP/1.0 5"), std::string::npos)
        << "faulted write not refused: " << *response;
    EXPECT_NE(response->find("Content-Length: 0"), std::string::npos)
        << "5xx body must be empty: " << *response;
    EXPECT_GT(failpoint::TriggerCount(site), 0);
    failpoint::Disable(site);

    auto view = FetchHttp(listener_->port(), AuthorizedRequest());
    ASSERT_TRUE(view.ok());
    EXPECT_NE(view->find("Known"), std::string::npos);
    EXPECT_EQ(view->find("Tampered"), std::string::npos)
        << "refused write became visible after failpoint " << site;
  }

  // Fault cleared: the same batch now lands, atomically and audibly.
  auto ok = FetchHttp(listener_->port(), UpdateRequest());
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ok->find("200 OK"), std::string::npos) << *ok;
  EXPECT_NE(ok->find("<update-result"), std::string::npos);
  auto view = FetchHttp(listener_->port(), AuthorizedRequest());
  ASSERT_TRUE(view.ok());
  EXPECT_NE(view->find("Tampered"), std::string::npos)
      << "fault-free write did not publish";
  EXPECT_EQ(view->find("Secret"), std::string::npos);
  EXPECT_GT(audit_.total_recorded(), 0);
}

TEST_P(ChaosTest, WalFaultRefusesWritesEvenInMemoryAuditMode) {
  // Reads may degrade to memory-only auditing when the WAL fails;
  // writes may NOT — a mutation whose durable record is lost cannot be
  // recomputed, so the write path stays fail-closed in EVERY mode.
  ServerConfig server_config;
  server_config.enable_updates = true;
  server_config.audit_degraded_mode = AuditDegradedMode::kMemoryAudit;
  StartServer(server_config, {});

  failpoint::Enable("audit.wal_write");
  auto refused = FetchHttp(listener_->port(), UpdateRequest());
  ASSERT_TRUE(refused.ok()) << refused.status();
  EXPECT_NE(refused->find("HTTP/1.0 503"), std::string::npos)
      << "write accepted without a durable audit record: " << *refused;
  // A read under the same fault degrades but still serves (that is what
  // kMemoryAudit is for) — and still never leaks.
  auto read = FetchHttp(listener_->port(), AuthorizedRequest());
  ASSERT_TRUE(read.ok());
  EXPECT_NE(read->find("200 OK"), std::string::npos)
      << "degraded-mode read should still serve: " << *read;
  EXPECT_EQ(read->find("Secret"), std::string::npos);
  failpoint::Disable("audit.wal_write");

  auto after = FetchHttp(listener_->port(), AuthorizedRequest());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->find("Tampered"), std::string::npos)
      << "refused write became visible";
}

TEST_P(ChaosTest, OversizedUpdateBodyRefusedEarly) {
  // A Content-Length beyond the body cap is refused with 413 before
  // the server ever sees the batch — in both listener modes.
  ServerConfig server_config;
  server_config.enable_updates = true;
  ListenerConfig config;
  config.max_request_body = 512;
  StartServer(server_config, config);

  std::string body = "<update><set-text target='//title'>";
  body.append(1024, 'x');
  body += "</set-text></update>";
  std::string request =
      "POST /update/CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
      Base64Encode("tom:secret") +
      "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
  auto response = FetchHttp(listener_->port(), request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response->find("HTTP/1.0 413"), std::string::npos) << *response;

  // An in-cap update on the same listener still works.
  auto ok = FetchHttp(listener_->port(), UpdateRequest());
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ok->find("200 OK"), std::string::npos) << *ok;
}

TEST_P(ChaosTest, MandatoryPathFailpointsDeny) {
  // The sites every plain view request must pass through: with the
  // fault injected, the request is denied with 5xx and an empty body.
  ServerConfig server_config;
  server_config.view_cache_capacity = 8;
  StartServer(server_config, {});

  for (std::string_view site :
       {"repo.find_document", "repo.instance_auths", "repo.schema_auths",
        "authz.compute_view", "server.cache_get", "server.serialize",
        "server.audit"}) {
    SCOPED_TRACE(std::string(site));
    failpoint::Enable(site);
    auto response = FetchHttp(listener_->port(), AuthorizedRequest());
    ASSERT_TRUE(response.ok());
    EXPECT_NE(response->find("HTTP/1.0 5"), std::string::npos)
        << "expected 5xx denial under " << site << ": " << *response;
    EXPECT_NE(response->find("Content-Length: 0"), std::string::npos);
    EXPECT_EQ(response->find("<laboratory"), std::string::npos);
    failpoint::Disable(site);
  }
}

TEST_P(ChaosTest, RewriteCompileFaultFailsClosedAndIsAudited) {
  // A fault anywhere in query rewriting must deny with an EMPTY 5xx —
  // never an unguarded (over-broad) evaluation, never a partial result,
  // and never a silent fallback that masks the fault — and the denial
  // must reach the audit trail.
  ServerConfig server_config;
  server_config.query_path = QueryPathMode::kRewrite;
  StartServer(server_config, {});

  const int64_t recorded_before = audit_.total_recorded();
  failpoint::Enable("rewrite.compile");
  auto denied = FetchHttp(listener_->port(), AuthorizedRequest("//title"));
  ASSERT_TRUE(denied.ok());
  EXPECT_NE(denied->find("HTTP/1.0 5"), std::string::npos) << *denied;
  EXPECT_NE(denied->find("Content-Length: 0"), std::string::npos);
  EXPECT_EQ(denied->find("Secret"), std::string::npos);  // Never over-broad.
  EXPECT_EQ(denied->find("Known"), std::string::npos);   // Never partial.
  failpoint::Disable("rewrite.compile");
  EXPECT_GT(failpoint::TriggerCount("rewrite.compile"), 0);
  EXPECT_GT(audit_.total_recorded(), recorded_before);

  // Fault cleared: the rewrite path serves the correct pruned answer.
  auto ok = FetchHttp(listener_->port(), AuthorizedRequest("//title"));
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ok->find("200 OK"), std::string::npos);
  EXPECT_NE(ok->find("Known"), std::string::npos);
  EXPECT_EQ(ok->find("Secret"), std::string::npos);
}

TEST_P(ChaosTest, CachePutFaultDegradesWithoutDenying) {
  ServerConfig server_config;
  server_config.view_cache_capacity = 8;
  StartServer(server_config, {});

  failpoint::Enable("server.cache_put");
  auto response = FetchHttp(listener_->port(), AuthorizedRequest());
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("200 OK"), std::string::npos);
  EXPECT_NE(response->find("Known"), std::string::npos);
  EXPECT_EQ(response->find("Secret"), std::string::npos);
  // Nothing was cached: the next request misses again.
  EXPECT_EQ(server_->view_cache().hits(), 0);
  failpoint::Disable("server.cache_put");
}

TEST_P(ChaosTest, FailpointTripsAlignWithServerErrorCounters) {
#ifdef XMLSEC_METRICS_NOOP
  GTEST_SKIP() << "counters compiled out in the ablation build";
#endif
  // The chaos telemetry must be self-consistent: every failpoint trip
  // on the mandatory path produces exactly one 5xx, and BOTH numbers
  // are visible in one scrape of the same registry.
  obs::MetricsRegistry registry;
  ServerConfig server_config;
  server_config.metrics = &registry;
  ListenerConfig listener_config;
  listener_config.metrics = &registry;
  StartServer(server_config, listener_config);

  auto count_5xx = [&registry] {
    double total = 0;
    for (const obs::MetricsRegistry::Sample& sample : registry.Samples()) {
      if (sample.name == "xmlsec_http_responses_total" &&
          sample.labels.find("status=\"5") != std::string::npos) {
        total += sample.value;
      }
    }
    return total;
  };

  constexpr std::string_view kSite = "authz.compute_view";
  const int64_t trips_before = failpoint::TriggerCount(kSite);
  const double errors_before = count_5xx();

  failpoint::Enable(kSite);
  constexpr int kRequests = 3;
  for (int i = 0; i < kRequests; ++i) {
    auto response = FetchHttp(listener_->port(), AuthorizedRequest());
    ASSERT_TRUE(response.ok());
    EXPECT_NE(response->find("HTTP/1.0 5"), std::string::npos);
  }
  failpoint::Disable(kSite);

  const int64_t trips = failpoint::TriggerCount(kSite) - trips_before;
  const double errors = count_5xx() - errors_before;
  EXPECT_EQ(trips, kRequests);
  EXPECT_EQ(errors, static_cast<double>(kRequests));
  EXPECT_EQ(static_cast<double>(trips), errors)
      << "failpoint trips and 5xx counters drifted apart";

  // And one scrape shows both: the trip collector and the status family.
  auto scrape = FetchHttp(listener_->port(), "GET /metrics HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(scrape.ok()) << scrape.status();
  EXPECT_NE(
      scrape->find("xmlsec_failpoint_trips_total{site=\"authz.compute_view\"}"),
      std::string::npos);
  EXPECT_NE(scrape->find("xmlsec_http_responses_total{status=\"5"),
            std::string::npos);

  // The registry is a local and must outlive the listener/server that
  // instrument it (see ListenerConfig::metrics): tear both down here,
  // before `registry` leaves scope.
  listener_->Stop();
  listener_.reset();
  server_.reset();
}

TEST_P(ChaosTest, ParserFailpointRefusesRegistrationCleanly) {
  failpoint::Enable("xml.parse");
  Status status = repo_.AddDocument("faulty.xml", "<a><b/></a>");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  failpoint::Disable("xml.parse");
  // Nothing half-registered: the URI is still free and usable.
  EXPECT_EQ(repo_.FindDocument("faulty.xml"), nullptr);
  EXPECT_TRUE(repo_.AddDocument("faulty.xml", "<a><b/></a>").ok());
}

TEST_P(ChaosTest, FailpointEnableOnceFiresOnce) {
  failpoint::Enable("authz.compute_view", 1);
  StartServer({}, {});
  auto denied = FetchHttp(listener_->port(), AuthorizedRequest());
  ASSERT_TRUE(denied.ok());
  EXPECT_NE(denied->find("HTTP/1.0 5"), std::string::npos);
  // Second request: the failpoint is spent; service is restored.
  auto ok = FetchHttp(listener_->port(), AuthorizedRequest());
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ok->find("200 OK"), std::string::npos);
}

// --- Health and drain ----------------------------------------------------

TEST_P(ChaosTest, HealthzWorksEvenUnderFailpoints) {
  StartServer({}, {});
  failpoint::Enable("authz.compute_view");
  auto health = FetchHttp(listener_->port(), "GET /healthz HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->find("200 OK"), std::string::npos);
  EXPECT_NE(health->find("\"status\":\"ready\""), std::string::npos);
  EXPECT_NE(health->find("\"workers\":"), std::string::npos);
  EXPECT_NE(health->find("\"shed\":"), std::string::npos);
  failpoint::DisableAll();
}

TEST_P(ChaosTest, StopForceClosesStalledConnectionsAtDrainDeadline) {
  ListenerConfig config;
  config.read_timeout_ms = 10'000;  // Worker would wait 10s for the head.
  config.drain_timeout_ms = 150;    // But drain must cut it off fast.
  StartServer({}, config);

  RawClient staller(listener_->port());
  ASSERT_TRUE(staller.connected());
  staller.Send("GET /CS");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto start = Clock::now();
  listener_->Stop();
  EXPECT_LT(ElapsedMs(start), 5000);  // Far below the 10s read deadline.
}

TEST_P(ChaosTest, GracefulStopFinishesInFlightRequests) {
  ListenerConfig config;
  config.worker_threads = 2;
  StartServer({}, config);

  constexpr int kClients = 12;
  std::vector<std::thread> threads;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &responses, i] {
      auto response = FetchHttp(listener_->port(), AuthorizedRequest());
      if (response.ok()) responses[static_cast<size_t>(i)] = *response;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener_->Stop();
  for (std::thread& t : threads) t.join();

  // Every response that did arrive is complete and correct — drain never
  // truncates a response into a partial view.
  for (const std::string& response : responses) {
    if (response.empty()) continue;  // Cut off before service: fine.
    if (response.find("200 OK") != std::string::npos) {
      EXPECT_NE(response.find("Known"), std::string::npos);
      EXPECT_EQ(response.find("Secret"), std::string::npos);
      EXPECT_NE(response.find("</laboratory>"), std::string::npos)
          << "truncated body on the wire";
    }
  }
}

// Chaos parity: every hostile-client, shedding, failpoint-sweep, WAL
// fsync-ack, and drain scenario above runs under BOTH the legacy
// bounded pool and the per-core epoll event loops, with the post-run
// audit-verify in TearDown proving neither mode tears the WAL.
INSTANTIATE_TEST_SUITE_P(Modes, ChaosTest, ::testing::Values(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? "LegacyPool"
                                                  : "EventLoops";
                         });

}  // namespace
}  // namespace server
}  // namespace xmlsec
