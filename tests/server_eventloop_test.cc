// TSan stress suite for the per-core epoll event loops: hammers 4 loops
// with concurrent connect/request/disconnect, /admin/reload swaps, and
// /metrics scrapes from many client threads at once, asserting that no
// response is lost or duplicated and that shutdown is clean.  The
// cross-loop shared state under test: the SO_REUSEPORT accept sockets,
// the RCU repository snapshot (reload races requests), the sharded
// metrics counters and per-loop gauges, and — in fallback mode — the
// lock-free SPSC hand-off rings.  Runs under -fsanitize=thread in the
// chaos-tsan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/document_server.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/tcp_listener.h"
#include "server/user_directory.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace server {
namespace {

class EventLoopStressTest : public ::testing::Test {
 protected:
  /// Builds a fresh repository with the fixture document and policy.
  /// The reload handler builds one per reload OFF TO THE SIDE and
  /// swaps it in — mutating the live repository under concurrent
  /// serving would be a data race, which is exactly what the RCU
  /// snapshot design avoids.
  static std::shared_ptr<Repository> BuildRepository() {
    auto repo = std::make_shared<Repository>();
    if (!repo->AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok() ||
        !repo->AddDocument("CSlab.xml",
                           "<laboratory>"
                           "<project name=\"P\" type=\"public\">"
                           "<manager><fname>A</fname>"
                           "<lname>B</lname></manager>"
                           "<paper category=\"public\">"
                           "<title>Known</title></paper>"
                           "</project></laboratory>",
                           "laboratory.xml")
             .ok() ||
        !repo->AddXacl("<xacl><authorization subject=\"Public\" "
                       "object=\"CSlab.xml\" path=\"/laboratory\" "
                       "sign=\"+\" type=\"RW\"/></xacl>")
             .ok()) {
      return nullptr;
    }
    return repo;
  }

  void SetUp() override {
    std::shared_ptr<Repository> repo = BuildRepository();
    ASSERT_NE(repo, nullptr);
    server_ = std::make_unique<SecureDocumentServer>(
        std::shared_ptr<const Repository>(repo), &users_, &groups_);
  }

  void StartListener(ListenerConfig config) {
    config.event_loops = 4;
    config.metrics = &registry_;
    config.reload_handler = [this]() -> Status {
      // A real swap pressure point: publish a replacement repository
      // (fresh process-global version) so reloads invalidate
      // concurrently cached views while requests are in flight.
      std::shared_ptr<Repository> next = BuildRepository();
      if (next == nullptr) return Status::Internal("reload build failed");
      server_->SwapRepository(std::move(next));
      return Status::OK();
    };
    listener_ = std::make_unique<TcpHttpListener>(server_.get(), "localhost",
                                                  config);
    Status started = listener_->Start(0);
    ASSERT_TRUE(started.ok()) << started;
  }

  void TearDown() override {
    if (listener_ != nullptr) listener_->Stop();
  }

  /// The stress body shared by the REUSEPORT and hand-off-fallback
  /// scenarios: `client_threads` request loops, one reload loop, one
  /// metrics-scrape loop, one connect-and-vanish loop — all concurrent.
  void Hammer(int client_threads, int requests_per_thread) {
    std::atomic<int> ok_responses{0};
    std::atomic<int> bad_responses{0};
    std::atomic<bool> stop_aux{false};
    std::vector<std::thread> threads;

    for (int t = 0; t < client_threads; ++t) {
      threads.emplace_back([this, requests_per_thread, &ok_responses,
                            &bad_responses] {
        for (int i = 0; i < requests_per_thread; ++i) {
          auto response = FetchHttp(listener_->port(),
                                    "GET /CSlab.xml HTTP/1.0\r\n\r\n");
          // Exactly one well-formed response per request: echoing the
          // unique body marker proves it was neither lost (EOF without
          // bytes), duplicated (two heads), nor torn (no terminator).
          if (response.ok() &&
              response->find("200 OK") != std::string::npos &&
              response->find("Known") != std::string::npos &&
              response->find("</laboratory>") != std::string::npos &&
              response->find("200 OK") == response->rfind("200 OK")) {
            ok_responses.fetch_add(1);
          } else {
            bad_responses.fetch_add(1);
          }
        }
      });
    }
    // Concurrent reloads: RCU snapshot swaps racing in-flight requests.
    threads.emplace_back([this, &stop_aux] {
      while (!stop_aux.load()) {
        auto response = FetchHttp(listener_->port(),
                                  "POST /admin/reload HTTP/1.0\r\n\r\n");
        if (response.ok()) {
          EXPECT_NE(response->find("200 OK"), std::string::npos);
        }
      }
    });
    // Concurrent scrapes: per-loop gauges/counters read while loops
    // write them.
    threads.emplace_back([this, &stop_aux] {
      while (!stop_aux.load()) {
        auto scrape =
            FetchHttp(listener_->port(), "GET /metrics HTTP/1.0\r\n\r\n");
        if (scrape.ok()) {
          EXPECT_NE(scrape->find("xmlsec_listener_queue_depth"),
                    std::string::npos);
        }
      }
    });
    // Connect-and-vanish: half-open churn across the accept shards.
    threads.emplace_back([this, &stop_aux] {
      while (!stop_aux.load()) {
        (void)FetchHttp(listener_->port(), "GET /CS");
      }
    });

    for (int t = 0; t < client_threads; ++t) threads[t].join();
    stop_aux.store(true);
    for (size_t t = client_threads; t < threads.size(); ++t) {
      threads[t].join();
    }

    EXPECT_EQ(ok_responses.load(), client_threads * requests_per_thread);
    EXPECT_EQ(bad_responses.load(), 0);
  }

  UserDirectory users_;
  authz::GroupStore groups_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<SecureDocumentServer> server_;
  std::unique_ptr<TcpHttpListener> listener_;
};

TEST_F(EventLoopStressTest, ReuseportShardsServeConcurrentChurn) {
  StartListener({});
  Hammer(/*client_threads=*/8, /*requests_per_thread=*/40);
  listener_->Stop();  // Clean shutdown with zero leaked connections.
  EXPECT_EQ(listener_->in_flight(), 0);
  listener_.reset();
  server_.reset();  // Before the local registry leaves scope.
}

TEST_F(EventLoopStressTest, HandoffFallbackServesConcurrentChurn) {
  // Same churn through the single-acceptor + SPSC hand-off rings.
  ListenerConfig config;
  config.force_accept_handoff = true;
  StartListener(config);
  Hammer(/*client_threads=*/8, /*requests_per_thread=*/25);
  listener_->Stop();
  EXPECT_EQ(listener_->in_flight(), 0);
  listener_.reset();
  server_.reset();
}

TEST_F(EventLoopStressTest, RepeatedStartStopUnderTraffic) {
  // Start/Stop cycles race in-flight clients: every cycle must come up
  // on a fresh port, serve, and tear down without leaking loop threads.
  for (int cycle = 0; cycle < 5; ++cycle) {
    ListenerConfig config;
    config.drain_timeout_ms = 500;
    StartListener(config);
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back([this] {
        for (int i = 0; i < 5; ++i) {
          (void)FetchHttp(listener_->port(),
                          "GET /CSlab.xml HTTP/1.0\r\n\r\n");
        }
      });
    }
    listener_->Stop();
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(listener_->in_flight(), 0);
    listener_.reset();
  }
  server_.reset();
}

}  // namespace
}  // namespace server
}  // namespace xmlsec
