// Deterministic fuzz-lite robustness suite: random mutations of valid
// inputs must never crash the parsers — every input either parses or
// fails with a clean Status.  Seeds are fixed so failures reproduce.

#include <gtest/gtest.h>

#include "common/prng.h"
#include "authz/xacl.h"
#include "workload/docgen.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace xmlsec {
namespace {

std::string Mutate(std::string input, Prng* prng, int edits) {
  static const char kNoise[] = "<>&;\"'[]()=/!?*@.,:|+-#x0 \n\t%";
  for (int i = 0; i < edits && !input.empty(); ++i) {
    size_t pos = prng->Below(input.size());
    switch (prng->Below(4)) {
      case 0:  // Flip a character.
        input[pos] = kNoise[prng->Below(sizeof(kNoise) - 1)];
        break;
      case 1:  // Delete a character.
        input.erase(pos, 1);
        break;
      case 2:  // Insert noise.
        input.insert(pos, 1, kNoise[prng->Below(sizeof(kNoise) - 1)]);
        break;
      case 3: {  // Duplicate a random slice.
        size_t len = std::min<size_t>(prng->Below(16) + 1,
                                      input.size() - pos);
        input.insert(pos, input.substr(pos, len));
        break;
      }
    }
  }
  return input;
}

class FuzzLiteTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzLiteTest, XmlParserNeverCrashes) {
  Prng prng(GetParam());
  workload::DocGenConfig config;
  config.depth = 3;
  config.fanout = 3;
  config.seed = GetParam();
  auto doc = workload::GenerateDocument(config);
  xml::SerializeOptions options;
  options.doctype = xml::DoctypeMode::kInternal;
  std::string base = SerializeDocument(*doc, options);

  for (int round = 0; round < 50; ++round) {
    std::string mutated = Mutate(base, &prng, 1 + round % 7);
    auto result = xml::ParseDocument(mutated);
    if (result.ok()) {
      // Whatever parsed must serialize and reparse.
      std::string out = SerializeDocument(**result);
      auto again = xml::ParseDocument(out);
      EXPECT_TRUE(again.ok())
          << "reparse failed: " << again.status() << "\n" << out;
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_P(FuzzLiteTest, DtdParserNeverCrashes) {
  Prng prng(GetParam() * 31 + 7);
  std::string base = workload::LaboratoryDtd();
  for (int round = 0; round < 50; ++round) {
    std::string mutated = Mutate(base, &prng, 1 + round % 9);
    auto result = xml::ParseDtd(mutated);
    if (result.ok()) {
      std::string out = xml::SerializeDtd(**result);
      EXPECT_TRUE(xml::ParseDtd(out).ok()) << out;
    }
  }
}

TEST_P(FuzzLiteTest, XPathParserNeverCrashes) {
  Prng prng(GetParam() * 97 + 3);
  const char* seeds[] = {
      "/laboratory//paper[./@category=\"private\"]",
      "project[./@type=\"internal\"]/manager",
      "count(//a[@x > 3] | //b) * last() - position()",
      "substring-before(concat(a, 'x'), translate(b, '-', ''))",
  };
  for (int round = 0; round < 80; ++round) {
    std::string mutated =
        Mutate(seeds[round % 4], &prng, 1 + round % 5);
    auto result = xpath::CompileXPath(mutated);
    if (result.ok()) {
      // The AST must render to something that still compiles.
      auto again = xpath::CompileXPath((*result)->ToString());
      EXPECT_TRUE(again.ok())
          << mutated << " -> " << (*result)->ToString();
    }
  }
}

TEST_P(FuzzLiteTest, XaclParserNeverCrashes) {
  Prng prng(GetParam() * 13 + 1);
  std::string base =
      "<xacl base-uri=\"http://lab/\">"
      "<authorization subject=\"Staff\" ip=\"10.0.*\" sym=\"*.lab.com\" "
      "object=\"doc.xml\" path=\"//a[@k='v']\" sign=\"-\" type=\"RW\" "
      "valid-from=\"100\" valid-until=\"900\"/></xacl>";
  for (int round = 0; round < 60; ++round) {
    std::string mutated = Mutate(base, &prng, 1 + round % 6);
    auto result = authz::ParseXacl(mutated);
    if (result.ok()) {
      std::string out = authz::SerializeXacl(*result);
      EXPECT_TRUE(authz::ParseXacl(out).ok()) << out;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzLiteTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace xmlsec
