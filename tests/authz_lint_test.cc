// Focused edge-case tests of the policy linter: weak schema
// authorizations, empty validity windows, requester-variable paths, the
// window-overlap semantics of the duplicate/contradiction scan, and the
// DTD-backed unsat-object check.

#include "authz/lint.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "workload/docgen.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/validator.h"

namespace xmlsec {
namespace authz {
namespace {

Authorization Auth(const std::string& subject, const std::string& path,
                   Sign sign, AuthType type) {
  Authorization auth;
  auto made = Subject::Make(subject, "*", "*");
  EXPECT_TRUE(made.ok());
  auth.subject = *made;
  auth.object.uri = "doc.xml";
  auth.object.path = path;
  auth.sign = sign;
  auth.type = type;
  return auth;
}

std::vector<std::string> Codes(const std::vector<LintFinding>& findings) {
  std::vector<std::string> out;
  for (const LintFinding& f : findings) out.push_back(f.code);
  return out;
}

class LintEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = xml::ParseDocument(
        "<laboratory><project name=\"p\" type=\"public\">"
        "<manager><fname>A</fname><lname>B</lname></manager>"
        "<paper category=\"public\"><title>t</title></paper>"
        "</project></laboratory>");
    ASSERT_TRUE(doc.ok());
    auto dtd = xml::ParseDtd(workload::LaboratoryDtd());
    ASSERT_TRUE(dtd.ok());
    (*dtd)->set_name("laboratory");
    (*doc)->set_dtd(std::move(*dtd));
    ASSERT_TRUE(xml::ValidateDocument(doc->get()).ok());
    (*doc)->Reindex();
    doc_ = std::move(*doc);
    groups_.AddGroup("Staff");
  }

  std::vector<LintFinding> Lint(const std::vector<Authorization>& instance,
                                const std::vector<Authorization>& schema = {},
                                bool with_dtd = false) {
    return LintPolicy(instance, schema, groups_, doc_.get(),
                      with_dtd ? doc_->dtd() : nullptr);
  }

  std::unique_ptr<xml::Document> doc_;
  GroupStore groups_;
};

TEST_F(LintEdgeTest, WeakSchemaIsErrorOnlyAtSchemaLevel) {
  Authorization weak =
      Auth("Staff", "//paper", Sign::kPlus, AuthType::kRecursiveWeak);
  // Weak at instance level: fine.
  EXPECT_TRUE(Lint({weak}).empty());
  // Weak at schema level: error.
  auto findings = Lint({}, {weak});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "weak-schema");
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  EXPECT_EQ(findings[0].auth_index, 0);
}

TEST_F(LintEdgeTest, EmptyWindowIsError) {
  Authorization auth =
      Auth("Staff", "//paper", Sign::kPlus, AuthType::kRecursive);
  auth.valid_from = 10;
  auth.valid_until = 9;
  auto findings = Lint({auth});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "empty-window");
  EXPECT_EQ(findings[0].severity, LintSeverity::kError);
  // A one-second window is not empty.
  auth.valid_until = 10;
  EXPECT_TRUE(Lint({auth}).empty());
}

TEST_F(LintEdgeTest, VariablePathsSkipDeadTargetButNotBadPath) {
  // $user makes the selection per-request: never reported dead, even
  // though it selects nothing for any current binding.
  Authorization variable = Auth("Staff", "//paper[./@category=$user]",
                                Sign::kPlus, AuthType::kRecursive);
  EXPECT_TRUE(Lint({variable}).empty());
  // Syntax errors are still reported on variable paths.
  Authorization broken =
      Auth("Staff", "//paper[$user", Sign::kPlus, AuthType::kRecursive);
  auto findings = Lint({broken});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "bad-path");
}

TEST_F(LintEdgeTest, DuplicateRequiresOverlappingWindows) {
  Authorization first =
      Auth("Staff", "//paper", Sign::kPlus, AuthType::kRecursive);
  Authorization second = first;
  // Disjoint windows: same tuple, but they can never both apply.
  first.valid_from = 0;
  first.valid_until = 99;
  second.valid_from = 100;
  second.valid_until = 199;
  EXPECT_TRUE(Lint({first, second}).empty());
  // Touching windows overlap at one instant: flagged.
  second.valid_from = 99;
  auto findings = Lint({first, second});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "duplicate");
  EXPECT_EQ(findings[0].auth_index, 1);
}

TEST_F(LintEdgeTest, ContradictionRequiresOverlappingWindows) {
  Authorization allow =
      Auth("Staff", "//paper", Sign::kPlus, AuthType::kRecursive);
  Authorization deny = allow;
  deny.sign = Sign::kMinus;
  // Fully overlapping (permanent) windows: contradiction.
  auto findings = Lint({allow, deny});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "contradiction");
  // Alternating signs over disjoint periods is a legitimate pattern.
  allow.valid_from = 0;
  allow.valid_until = 49;
  deny.valid_from = 50;
  deny.valid_until = 99;
  EXPECT_TRUE(Lint({allow, deny}).empty());
}

TEST_F(LintEdgeTest, DifferentTypesNeverPair) {
  Authorization local =
      Auth("Staff", "//paper", Sign::kPlus, AuthType::kLocal);
  Authorization recursive =
      Auth("Staff", "//paper", Sign::kPlus, AuthType::kRecursive);
  EXPECT_TRUE(Lint({local, recursive}).empty());
}

TEST_F(LintEdgeTest, ContradictionReportedAgainstEveryEarlierEntry) {
  Authorization a = Auth("Staff", "//paper", Sign::kPlus, AuthType::kRecursive);
  Authorization b = a;
  Authorization c = a;
  c.sign = Sign::kMinus;
  auto findings = Lint({a, b, c});
  EXPECT_EQ(Codes(findings), (std::vector<std::string>{
                                 "duplicate", "contradiction",
                                 "contradiction"}));
}

TEST_F(LintEdgeTest, InstanceAndSchemaLevelsNeverPair) {
  Authorization auth =
      Auth("Staff", "//paper", Sign::kPlus, AuthType::kRecursive);
  EXPECT_TRUE(Lint({auth}, {auth}).empty());
}

TEST_F(LintEdgeTest, UnsatObjectRequiresDtd) {
  // "//budget" misses this document *and* every valid document.
  Authorization dead =
      Auth("Staff", "//budget", Sign::kMinus, AuthType::kRecursive);
  EXPECT_EQ(Codes(Lint({dead})), (std::vector<std::string>{"dead-target"}));
  EXPECT_EQ(Codes(Lint({dead}, {}, /*with_dtd=*/true)),
            (std::vector<std::string>{"dead-target", "unsat-object"}));

  // "//abstract" misses this document but other valid documents have
  // abstracts: dead-target only, even with the DTD.
  Authorization instance_dead =
      Auth("Staff", "//abstract", Sign::kMinus, AuthType::kRecursive);
  EXPECT_EQ(Codes(Lint({instance_dead}, {}, /*with_dtd=*/true)),
            (std::vector<std::string>{"dead-target"}));
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
