// Table-driven XPath 1.0 conformance sweep: each case is one expression
// evaluated against a fixed document, compared against the expected
// string/number/boolean/count outcome.

#include <gtest/gtest.h>

#include <cmath>

#include "xml/parser.h"
#include "xpath/evaluator.h"

namespace xmlsec {
namespace xpath {
namespace {

constexpr char kDoc[] =
    "<!DOCTYPE shop [<!ELEMENT shop (dept*)><!ELEMENT dept (product*)>"
    "<!ATTLIST dept code ID #REQUIRED>"
    "<!ELEMENT product (name, price)>"
    "<!ATTLIST product grade NMTOKEN #IMPLIED>"
    "<!ELEMENT name (#PCDATA)><!ELEMENT price (#PCDATA)>]>"
    "<shop>"
    "<dept code=\"d1\">"
    "<product grade=\"a\"><name>anvil</name><price>100</price></product>"
    "<product grade=\"b\"><name>bolt cutter</name><price>25.5</price>"
    "</product>"
    "</dept>"
    "<dept code=\"d2\">"
    "<product><name>crate</name><price>7</price></product>"
    "<product grade=\"a\"><name>drill</name><price>60</price></product>"
    "<product grade=\"c\"><name>winch</name><price>250</price></product>"
    "</dept>"
    "</shop>";

enum class Expect { kCount, kNumber, kString, kBool, kError };

struct Case {
  const char* expr;
  Expect expect;
  double number;       // kCount / kNumber / kBool(0/1)
  const char* string;  // kString
};

constexpr Case kCases[] = {
    // Location paths.
    {"/shop", Expect::kCount, 1, nullptr},
    {"/shop/dept", Expect::kCount, 2, nullptr},
    {"/shop/dept/product", Expect::kCount, 5, nullptr},
    {"//product", Expect::kCount, 5, nullptr},
    {"//product/name", Expect::kCount, 5, nullptr},
    {"/shop//price", Expect::kCount, 5, nullptr},
    {"//*", Expect::kCount, 18, nullptr},
    {"//@*", Expect::kCount, 6, nullptr},
    {"//@grade", Expect::kCount, 4, nullptr},
    {"/nonexistent", Expect::kCount, 0, nullptr},
    {"//dept[@code=\"d1\"]/product", Expect::kCount, 2, nullptr},
    {"//product[@grade]", Expect::kCount, 4, nullptr},
    {"//product[not(@grade)]", Expect::kCount, 1, nullptr},
    {"//product[@grade=\"a\"]", Expect::kCount, 2, nullptr},
    {"//product[price > 50]", Expect::kCount, 3, nullptr},
    {"//product[price > 50][@grade=\"a\"]", Expect::kCount, 2, nullptr},
    {"//product[1]", Expect::kCount, 2, nullptr},  // first per dept
    {"//product[last()]", Expect::kCount, 2, nullptr},
    {"/shop/dept[2]/product[position()=2]", Expect::kCount, 1, nullptr},
    {"//product[position() mod 2 = 1]", Expect::kCount, 3, nullptr},
    // Axes.
    {"//price/parent::product", Expect::kCount, 5, nullptr},
    {"//price/..", Expect::kCount, 5, nullptr},
    {"//name/ancestor::dept", Expect::kCount, 2, nullptr},
    // 5 names + 5 products + 2 depts + 1 shop:
    {"//name/ancestor-or-self::*", Expect::kCount, 13, nullptr},
    {"//dept[1]/descendant::*", Expect::kCount, 6, nullptr},
    {"//dept[1]/descendant-or-self::dept", Expect::kCount, 1, nullptr},
    {"//product[name=\"crate\"]/following-sibling::product",
     Expect::kCount, 2, nullptr},
    {"//product[name=\"winch\"]/preceding-sibling::product",
     Expect::kCount, 2, nullptr},
    {"//product[name=\"crate\"]/following::name", Expect::kCount, 2,
     nullptr},
    {"//product[name=\"drill\"]/preceding::price", Expect::kCount, 3,
     nullptr},
    {"//name/self::name", Expect::kCount, 5, nullptr},
    {"//name/self::price", Expect::kCount, 0, nullptr},
    {"//dept/attribute::code", Expect::kCount, 2, nullptr},
    // Node tests.
    {"//name/text()", Expect::kCount, 5, nullptr},
    {"//dept/node()", Expect::kCount, 5, nullptr},
    // Unions.
    {"//name | //price", Expect::kCount, 10, nullptr},
    {"//name | //name", Expect::kCount, 5, nullptr},
    // Numbers.
    {"count(//product)", Expect::kNumber, 5, nullptr},
    {"count(//dept) * 10", Expect::kNumber, 20, nullptr},
    {"sum(//price)", Expect::kNumber, 442.5, nullptr},
    {"sum(//dept[@code=\"d1\"]//price)", Expect::kNumber, 125.5, nullptr},
    {"floor(25.7)", Expect::kNumber, 25, nullptr},
    {"ceiling(25.2)", Expect::kNumber, 26, nullptr},
    {"round(25.5)", Expect::kNumber, 26, nullptr},
    {"round(-25.5)", Expect::kNumber, -25, nullptr},
    {"7 mod 3", Expect::kNumber, 1, nullptr},
    {"8 div 2", Expect::kNumber, 4, nullptr},
    {"2 + 3 * 4", Expect::kNumber, 14, nullptr},
    {"(2 + 3) * 4", Expect::kNumber, 20, nullptr},
    {"-//price[1] + 0", Expect::kNumber, -100, nullptr},
    {"number(//price[. = 7])", Expect::kNumber, 7, nullptr},
    {"string-length(\"hello\")", Expect::kNumber, 5, nullptr},
    {"count(//product[price < 30])", Expect::kNumber, 2, nullptr},
    // Strings.
    {"string(//name)", Expect::kString, 0, "anvil"},  // first in doc order
    {"name(//*[1])", Expect::kString, 0, "shop"},
    {"local-name(//@code)", Expect::kString, 0, "code"},
    {"concat(\"a\", \"-\", \"b\")", Expect::kString, 0, "a-b"},
    {"substring(\"anvil\", 2, 3)", Expect::kString, 0, "nvi"},
    {"substring-before(\"key=value\", \"=\")", Expect::kString, 0, "key"},
    {"substring-after(\"key=value\", \"=\")", Expect::kString, 0, "value"},
    {"normalize-space(\"  a   b \")", Expect::kString, 0, "a b"},
    {"translate(\"abcabc\", \"ab\", \"AB\")", Expect::kString, 0, "ABcABc"},
    {"string(3.0)", Expect::kString, 0, "3"},
    {"string(//dept[2]/@code)", Expect::kString, 0, "d2"},
    {"string(1 = 1)", Expect::kString, 0, "true"},
    // Booleans.
    {"true()", Expect::kBool, 1, nullptr},
    {"false()", Expect::kBool, 0, nullptr},
    {"not(false())", Expect::kBool, 1, nullptr},
    {"boolean(//product)", Expect::kBool, 1, nullptr},
    {"boolean(//nothing)", Expect::kBool, 0, nullptr},
    {"contains(\"bolt cutter\", \"cut\")", Expect::kBool, 1, nullptr},
    {"starts-with(\"anvil\", \"an\")", Expect::kBool, 1, nullptr},
    {"//price = 60", Expect::kBool, 1, nullptr},
    {"//price != 60", Expect::kBool, 1, nullptr},
    {"//price > 249", Expect::kBool, 1, nullptr},
    {"//price > 250", Expect::kBool, 0, nullptr},
    {"//name = //name", Expect::kBool, 1, nullptr},
    {"//dept[1]/product/name = //dept[2]/product/name", Expect::kBool, 0,
     nullptr},
    {"count(//product) = 5 and sum(//price) > 400", Expect::kBool, 1,
     nullptr},
    {"count(//product) = 4 or contains(\"x\", \"x\")", Expect::kBool, 1,
     nullptr},
    {"\"10\" = 10", Expect::kBool, 1, nullptr},
    {"\"abc\" = \"abc\"", Expect::kBool, 1, nullptr},
    {"2 < 10", Expect::kBool, 1, nullptr},
    // id() through the DTD's ID attribute.
    {"count(id(\"d1\"))", Expect::kNumber, 1, nullptr},
    {"count(id(\"d1 d2\"))", Expect::kNumber, 2, nullptr},
    {"count(id(\"zzz\"))", Expect::kNumber, 0, nullptr},
    {"string(id(\"d2\")/product[1]/name)", Expect::kString, 0, "crate"},
    // Errors.
    {"", Expect::kError, 0, nullptr},
    {"//[", Expect::kError, 0, nullptr},
    {"1 +", Expect::kError, 0, nullptr},
    {"nosuchfn(1)", Expect::kError, 0, nullptr},
    {"count()", Expect::kError, 0, nullptr},
    {"bogus::x", Expect::kError, 0, nullptr},
};

class XPathConformanceTest : public ::testing::TestWithParam<Case> {
 protected:
  static void SetUpTestSuite() {
    auto result = xml::ParseDocument(kDoc);
    ASSERT_TRUE(result.ok()) << result.status();
    doc_ = result->release();
  }
  static void TearDownTestSuite() {
    delete doc_;
    doc_ = nullptr;
  }

  static xml::Document* doc_;
};

xml::Document* XPathConformanceTest::doc_ = nullptr;

TEST_P(XPathConformanceTest, Evaluates) {
  const Case& c = GetParam();
  auto value = EvaluateXPath(c.expr, doc_->root());
  if (c.expect == Expect::kError) {
    EXPECT_FALSE(value.ok()) << c.expr;
    return;
  }
  ASSERT_TRUE(value.ok()) << c.expr << ": " << value.status();
  switch (c.expect) {
    case Expect::kCount:
      ASSERT_TRUE(value->is_node_set()) << c.expr;
      EXPECT_EQ(value->nodes().size(), static_cast<size_t>(c.number))
          << c.expr;
      break;
    case Expect::kNumber:
      EXPECT_DOUBLE_EQ(value->ToNumber(), c.number) << c.expr;
      break;
    case Expect::kString:
      EXPECT_EQ(value->ToString(), c.string) << c.expr;
      break;
    case Expect::kBool:
      EXPECT_EQ(value->ToBool(), c.number != 0) << c.expr;
      break;
    case Expect::kError:
      break;
  }
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = "case" + std::to_string(info.index);
  return name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, XPathConformanceTest,
                         ::testing::ValuesIn(kCases), CaseName);

}  // namespace
}  // namespace xpath
}  // namespace xmlsec
