// Unit tests of the observability subsystem: sharded counters merging
// correctly under concurrency, histogram bucket semantics, registry
// family/label bookkeeping, Prometheus exposition format, collectors,
// and request-trace spans with the slow-trace threshold.
//
// The concurrency tests double as the TSan target for the subsystem
// (see .github/workflows chaos-tsan job).

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlsec {
namespace obs {
namespace {

#ifdef XMLSEC_METRICS_NOOP
// The ablation build compiles Inc/Observe out; value-accumulation tests
// would (correctly) see zeros.  Nothing to test beyond "it links".
TEST(MetricsNoop, HotPathCompiledOut) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("noop_total", "noop");
  counter->Inc(41);
  EXPECT_EQ(counter->Value(), 0);
}
#else

TEST(Counter, AccumulatesAcrossShards) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_total", "help");
  EXPECT_EQ(counter->Value(), 0);
  counter->Inc();
  counter->Inc(41);
  EXPECT_EQ(counter->Value(), 42);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_total", "help");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(),
            static_cast<int64_t>(kThreads) * kIncrements);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("depth", "help");
  gauge->Set(7);
  EXPECT_EQ(gauge->Value(), 7);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 4);
  gauge->Set(0);
  EXPECT_EQ(gauge->Value(), 0);
}

TEST(Histogram, BucketBoundariesAreInclusive) {
  MetricsRegistry registry;
  // Bounds 10, 100: buckets are (-inf,10], (10,100], (100,+inf).
  Histogram* h =
      registry.GetHistogram("h_test", "help", {10, 100}, 1.0);
  h->Observe(10);    // on the boundary -> first bucket (le is inclusive)
  h->Observe(11);    // second bucket
  h->Observe(100);   // second bucket
  h->Observe(101);   // +Inf bucket
  h->Observe(-5);    // first bucket
  std::vector<int64_t> buckets = h->BucketCounts();
  ASSERT_EQ(buckets.size(), 3u);  // two bounds + implicit +Inf
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 2);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(h->Count(), 5);
  EXPECT_EQ(h->Sum(), 10 + 11 + 100 + 101 - 5);
}

TEST(Histogram, ConcurrentObservationsAreLossless) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h_test", "help",
                                       DefaultLatencyBoundsNs(), 1e-9);
  constexpr int kThreads = 8;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kObservations; ++i) {
        h->Observe(1000 * (t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h->Count(),
            static_cast<int64_t>(kThreads) * kObservations);
  int64_t want_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    want_sum += static_cast<int64_t>(1000) * (t + 1) * kObservations;
  }
  EXPECT_EQ(h->Sum(), want_sum);
}

TEST(Registry, SameNameAndLabelsReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total", "help");
  Counter* b = registry.GetCounter("x_total", "different help ignored");
  EXPECT_EQ(a, b);
  Counter* labeled =
      registry.GetCounter("x_total", "help", {{"stage", "label"}});
  EXPECT_NE(a, labeled);
  Counter* labeled_again =
      registry.GetCounter("x_total", "help", {{"stage", "label"}});
  EXPECT_EQ(labeled, labeled_again);
}

TEST(Registry, TypeMismatchReturnsDummyNotNull) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("x_total", "help");
  counter->Inc(5);
  Gauge* wrong = registry.GetGauge("x_total", "help");
  ASSERT_NE(wrong, nullptr);
  wrong->Set(99);  // must be safe
  EXPECT_EQ(counter->Value(), 5);  // real metric untouched
  // The dummy is not part of the registry's exposition.
  EXPECT_EQ(registry.ValueOf("x_total"), 5.0);
}

TEST(Registry, RenderPrometheusFormat) {
  MetricsRegistry registry;
  registry.GetCounter("req_total", "requests", {{"status", "200"}})->Inc(3);
  registry.GetCounter("req_total", "requests", {{"status", "404"}})->Inc(1);
  registry.GetGauge("depth", "queue depth")->Set(2);
  Histogram* h = registry.GetHistogram("lat_seconds", "latency",
                                       {1000, 1000000}, 1e-9);
  h->Observe(500);      // le 1000
  h->Observe(2000);     // le 1000000
  h->Observe(5000000);  // +Inf
  std::string text = registry.RenderPrometheus();

  EXPECT_NE(text.find("# HELP req_total requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{status=\"200\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{status=\"404\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  // Buckets are cumulative and scaled by 1e-9.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.001\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3\n"), std::string::npos);
  // Sum is scaled: (500 + 2000 + 5000000) * 1e-9.
  EXPECT_NE(text.find("lat_seconds_sum 0.0050025\n"), std::string::npos);
}

TEST(Registry, EveryLineIsCommentOrSample) {
  MetricsRegistry registry;
  registry.GetCounter("a_total", "a")->Inc();
  registry.GetGauge("b", "b")->Set(1);
  registry.GetHistogram("c_seconds", "c", DefaultLatencyBoundsNs(), 1e-9)
      ->Observe(42);
  std::string text = registry.RenderPrometheus();
  size_t start = 0;
  int samples = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "text must end with a newline";
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    // sample:  name{labels} value   |   name value
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    char* parse_end = nullptr;
    std::strtod(value.c_str(), &parse_end);
    EXPECT_EQ(*parse_end, '\0') << "unparsable value in: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0);
}

TEST(Registry, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("esc_total", "h", {{"k", "a\"b\\c\nd"}})->Inc();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("esc_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(Registry, CollectorAppendedAndReplacedByName) {
  MetricsRegistry registry;
  registry.AddCollector("probe", [] {
    return std::string("probe_total 1\n");
  });
  EXPECT_NE(registry.RenderPrometheus().find("probe_total 1\n"),
            std::string::npos);
  registry.AddCollector("probe", [] {
    return std::string("probe_total 2\n");
  });
  std::string text = registry.RenderPrometheus();
  EXPECT_EQ(text.find("probe_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("probe_total 2\n"), std::string::npos);
}

TEST(Registry, ValueOfAndSamples) {
  MetricsRegistry registry;
  registry.GetCounter("v_total", "h", {{"s", "x"}})->Inc(7);
  EXPECT_EQ(registry.ValueOf("v_total", "s=\"x\""), 7.0);
  EXPECT_EQ(registry.ValueOf("v_total", "s=\"y\"", -1.0), -1.0);
  EXPECT_EQ(registry.ValueOf("absent", "", -1.0), -1.0);
  bool found = false;
  for (const MetricsRegistry::Sample& sample : registry.Samples()) {
    if (sample.name == "v_total" && sample.labels == "s=\"x\"") {
      EXPECT_EQ(sample.value, 7.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

#endif  // XMLSEC_METRICS_NOOP

TEST(Trace, SpansRecordInOrder) {
  RequestTrace trace;
  {
    auto span = trace.Span("auth");
    (void)span;
  }
  trace.Record("label", 1234567);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].first, "auth");
  EXPECT_GE(trace.spans()[0].second, 0);
  EXPECT_EQ(trace.NsOf("label"), 1234567);
  EXPECT_EQ(trace.NsOf("absent"), -1);
  EXPECT_GE(trace.ElapsedNs(), trace.spans()[0].second);
}

TEST(Trace, SummaryListsTotalThenStages) {
  RequestTrace trace;
  trace.Record("auth", 21000);      // 0.021 ms
  trace.Record("label", 7900000);   // 7.9 ms
  std::string summary = trace.Summary();
  EXPECT_EQ(summary.rfind("total=", 0), 0u) << summary;
  EXPECT_NE(summary.find(" auth=0.021ms"), std::string::npos) << summary;
  EXPECT_NE(summary.find(" label=7.900ms"), std::string::npos) << summary;
}

TEST(Trace, SlowThresholdOverride) {
  const int64_t original = SlowTraceThresholdMs();
  SetSlowTraceThresholdMs(0);
  EXPECT_EQ(SlowTraceThresholdMs(), 0);
  SetSlowTraceThresholdMs(250);
  EXPECT_EQ(SlowTraceThresholdMs(), 250);
  SetSlowTraceThresholdMs(-1);
  EXPECT_EQ(SlowTraceThresholdMs(), -1);
  SetSlowTraceThresholdMs(original);
}

}  // namespace
}  // namespace obs
}  // namespace xmlsec
