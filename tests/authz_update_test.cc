#include <gtest/gtest.h>

#include "authz/update.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlsec {
namespace authz {
namespace {

using xml::Document;

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto result = xml::ParseDocument(
        "<inventory>"
        "<item sku=\"A1\" qty=\"3\"><desc>bolts</desc></item>"
        "<item sku=\"B2\" qty=\"9\"><desc>nuts</desc>"
        "<audit>checked</audit></item>"
        "</inventory>");
    ASSERT_TRUE(result.ok()) << result.status();
    doc_ = std::move(result).value();
    requester_ = {"clerk", "10.0.0.5", "till1.shop.example"};
    ASSERT_TRUE(groups_.AddMembership("clerk", "Clerks").ok());
  }

  Authorization WriteAuth(std::string_view ug, std::string_view path,
                          Sign sign, AuthType type) {
    Authorization auth;
    auth.subject = *Subject::Make(ug, "*", "*");
    auth.object.uri = "inv.xml";
    auth.object.path = std::string(path);
    auth.action = Action::kWrite;
    auth.sign = sign;
    auth.type = type;
    return auth;
  }

  Result<UpdateOutcome> Apply(const std::vector<Authorization>& auths,
                              const std::vector<UpdateOp>& ops) {
    return Apply(auths, {}, ops);
  }

  Result<UpdateOutcome> Apply(const std::vector<Authorization>& auths,
                              const std::vector<Authorization>& schema,
                              const std::vector<UpdateOp>& ops) {
    UpdateProcessor processor(&groups_);
    return processor.Apply(*doc_, auths, schema, requester_, ops,
                           /*validate_result=*/false);
  }

  static std::string Compact(const Document& doc) {
    xml::SerializeOptions options;
    options.xml_declaration = false;
    return SerializeDocument(doc, options);
  }

  std::unique_ptr<Document> doc_;
  GroupStore groups_;
  Requester requester_;
};

TEST_F(UpdateTest, SetAttributeWithPermission) {
  UpdateOp op;
  op.kind = UpdateOpKind::kSetAttribute;
  op.target = "//item[@sku=\"A1\"]";
  op.name = "qty";
  op.value = "5";
  auto outcome = Apply(
      {WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursive)},
      {op});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->ops_applied, 1);
  EXPECT_NE(Compact(*outcome->document).find("qty=\"5\""),
            std::string::npos);
  // Original untouched.
  EXPECT_NE(Compact(*doc_).find("qty=\"3\""), std::string::npos);
}

TEST_F(UpdateTest, SetAttributeDeniedWithoutPermission) {
  UpdateOp op;
  op.kind = UpdateOpKind::kSetAttribute;
  op.target = "//item[@sku=\"A1\"]";
  op.name = "qty";
  op.value = "5";
  auto outcome = Apply({}, {op});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(UpdateTest, ReadAuthorizationsDoNotGrantWrite) {
  Authorization read_auth =
      WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursive);
  read_auth.action = Action::kRead;
  UpdateOp op;
  op.kind = UpdateOpKind::kSetText;
  op.target = "//item[@sku=\"A1\"]/desc";
  op.value = "screws";
  auto outcome = Apply({read_auth}, {op});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(UpdateTest, ExplicitAttributeDenialBlocksOnlyThatAttribute) {
  std::vector<Authorization> auths = {
      WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursive),
      WriteAuth("Public", "//item/@sku", Sign::kMinus, AuthType::kLocal)};
  UpdateOp set_sku;
  set_sku.kind = UpdateOpKind::kSetAttribute;
  set_sku.target = "//item[@qty=\"3\"]";
  set_sku.name = "sku";
  set_sku.value = "A9";
  auto denied = Apply(auths, {set_sku});
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);

  UpdateOp set_qty = set_sku;
  set_qty.name = "qty";
  set_qty.value = "4";
  auto allowed = Apply(auths, {set_qty});
  ASSERT_TRUE(allowed.ok()) << allowed.status();
}

TEST_F(UpdateTest, NewAttributeConsultsSchemaLevelAttributeDenials) {
  // Regression (fail-open kSetAttribute): creating a NEW attribute
  // used to be admitted under the element's sign alone, so a
  // schema-scoped denial on the attribute could be bypassed by
  // delete-then-recreate.  The created attribute is now re-labeled and
  // checked under its own authorizations.  The instance grant is WEAK
  // so the schema-level denial binds (paper tuple order
  // L, R, LD, RD, LW, RW).
  std::vector<Authorization> instance = {
      WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursiveWeak)};
  std::vector<Authorization> schema = {
      WriteAuth("Clerks", "//item/@price", Sign::kMinus, AuthType::kLocal)};
  UpdateOp op;
  op.kind = UpdateOpKind::kSetAttribute;
  op.target = "//item[@sku=\"A1\"]";
  op.name = "price";
  op.value = "0";
  auto outcome = Apply(instance, schema, {op});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kPermissionDenied);
  // An undenied new attribute on the same element is fine.
  op.name = "bin";
  op.value = "7";
  auto allowed = Apply(instance, schema, {op});
  ASSERT_TRUE(allowed.ok()) << allowed.status();
  EXPECT_NE(Compact(*allowed->document).find("bin=\"7\""), std::string::npos);
}

TEST_F(UpdateTest, DeleteThenRecreateCannotBypassAttributeDenial) {
  // The full bypass recipe as one batch: remove the protected
  // attribute, then recreate it with a chosen value.  Either leg must
  // deny, and the batch is atomic — the original document is intact.
  std::vector<Authorization> auths = {
      WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursive),
      WriteAuth("Clerks", "//item/@sku", Sign::kMinus, AuthType::kLocal)};
  UpdateOp remove;
  remove.kind = UpdateOpKind::kRemoveAttribute;
  remove.target = "//item[@qty=\"3\"]";
  remove.name = "sku";
  UpdateOp recreate;
  recreate.kind = UpdateOpKind::kSetAttribute;
  recreate.target = "//item[@qty=\"3\"]";
  recreate.name = "sku";
  recreate.value = "A9";
  auto outcome = Apply(auths, {remove, recreate});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kPermissionDenied);
  EXPECT_NE(Compact(*doc_).find("sku=\"A1\""), std::string::npos);
  EXPECT_EQ(Compact(*doc_).find("A9"), std::string::npos);
}

TEST_F(UpdateTest, InsertChildFragment) {
  UpdateOp op;
  op.kind = UpdateOpKind::kInsertChild;
  op.target = "/inventory";
  op.fragment = "<item sku=\"C3\" qty=\"1\"><desc>washers</desc></item>";
  // The grant must cover the whole inserted subtree, not just the
  // insertion point — hence Recursive.
  auto outcome = Apply(
      {WriteAuth("Clerks", "/inventory", Sign::kPlus, AuthType::kRecursive)},
      {op});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_NE(Compact(*outcome->document).find("washers"), std::string::npos);
}

TEST_F(UpdateTest, InsertSubtreeCheckedBeyondInsertionPoint) {
  // Regression (fail-open kInsertChild): a Local grant on the parent
  // used to admit an ARBITRARY subtree because only the insertion
  // point was checked.  Every inserted node must now carry a write
  // `+`; the ε on the fragment's descendants denies fail-closed.
  UpdateOp op;
  op.kind = UpdateOpKind::kInsertChild;
  op.target = "/inventory";
  op.fragment = "<item sku=\"C3\" qty=\"1\"><desc>washers</desc></item>";
  auto outcome = Apply(
      {WriteAuth("Clerks", "/inventory", Sign::kPlus, AuthType::kLocal)},
      {op});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(UpdateTest, InsertCannotSmuggleExplicitlyDeniedNodes) {
  // Regression (fail-open kInsertChild): even under a recursive grant,
  // an explicit `-` inside the would-be subtree must win — the denial
  // is evaluated against the POST-mutation labeling.
  std::vector<Authorization> auths = {
      WriteAuth("Clerks", "/inventory", Sign::kPlus, AuthType::kRecursive),
      WriteAuth("Clerks", "//audit", Sign::kMinus, AuthType::kRecursive)};
  UpdateOp op;
  op.kind = UpdateOpKind::kInsertChild;
  op.target = "/inventory";
  op.fragment = "<item sku=\"C3\"><audit>forged</audit></item>";
  auto outcome = Apply(auths, {op});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kPermissionDenied);
  // The denial leaves the original document untouched.
  EXPECT_EQ(Compact(*doc_).find("forged"), std::string::npos);
}

TEST_F(UpdateTest, InsertChildAtAnchor) {
  UpdateOp op;
  op.kind = UpdateOpKind::kInsertChild;
  op.target = "//item[@sku=\"B2\"]";
  op.before = "audit";
  op.fragment = "<note>restocked</note>";
  auto outcome = Apply(
      {WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursive)},
      {op});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  auto items = outcome->document->root()->GetElementsByTagName("item");
  const xml::Element* b2 = items[1];
  // Order: desc, note (inserted), audit.
  std::vector<std::string> tags;
  for (const xml::Element* child : b2->ChildElements()) {
    tags.push_back(child->tag());
  }
  EXPECT_EQ(tags, (std::vector<std::string>{"desc", "note", "audit"}));
}

TEST_F(UpdateTest, InsertAnchorMustBeChildOfTarget) {
  UpdateOp op;
  op.kind = UpdateOpKind::kInsertChild;
  op.target = "//item[@sku=\"A1\"]";
  op.before = "//audit";  // Child of the *other* item.
  op.fragment = "<note/>";
  auto outcome = Apply(
      {WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursive)},
      {op});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(UpdateTest, MalformedFragmentRejected) {
  UpdateOp op;
  op.kind = UpdateOpKind::kInsertChild;
  op.target = "/inventory";
  op.fragment = "<broken>";
  auto outcome = Apply(
      {WriteAuth("Clerks", "/inventory", Sign::kPlus, AuthType::kLocal)},
      {op});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kParseError);
}

TEST_F(UpdateTest, DeleteRequiresWholeSubtreeWritable) {
  // The clerk may write items but NOT audit records inside them.
  std::vector<Authorization> auths = {
      WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursive),
      WriteAuth("Public", "//audit", Sign::kMinus, AuthType::kRecursive)};
  UpdateOp del;
  del.kind = UpdateOpKind::kDeleteNode;
  del.target = "//item[@sku=\"B2\"]";
  auto denied = Apply(auths, {del});
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);

  // The item without an audit trail can be deleted.
  del.target = "//item[@sku=\"A1\"]";
  auto allowed = Apply(auths, {del});
  ASSERT_TRUE(allowed.ok()) << allowed.status();
  EXPECT_EQ(Compact(*allowed->document).find("bolts"), std::string::npos);
}

TEST_F(UpdateTest, DeleteRootRejected) {
  UpdateOp del;
  del.kind = UpdateOpKind::kDeleteNode;
  del.target = "/inventory";
  auto outcome = Apply(
      {WriteAuth("Clerks", "", Sign::kPlus, AuthType::kRecursive)}, {del});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(UpdateTest, SetTextReplacesContent) {
  UpdateOp op;
  op.kind = UpdateOpKind::kSetText;
  op.target = "//item[@sku=\"A1\"]/desc";
  op.value = "hex bolts";
  auto outcome = Apply(
      {WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursive)},
      {op});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_NE(Compact(*outcome->document).find("hex bolts"),
            std::string::npos);
  EXPECT_EQ(Compact(*outcome->document).find(">bolts<"), std::string::npos);
}

TEST_F(UpdateTest, AmbiguousTargetRejected) {
  UpdateOp op;
  op.kind = UpdateOpKind::kSetAttribute;
  op.target = "//item";  // two items
  op.name = "qty";
  op.value = "0";
  auto outcome = Apply(
      {WriteAuth("Clerks", "", Sign::kPlus, AuthType::kRecursive)}, {op});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(UpdateTest, BatchIsAtomicOnDenial) {
  std::vector<Authorization> auths = {
      WriteAuth("Clerks", "//item[./@sku=\"A1\"]", Sign::kPlus,
                AuthType::kRecursive)};
  UpdateOp ok_op;
  ok_op.kind = UpdateOpKind::kSetAttribute;
  ok_op.target = "//item[@sku=\"A1\"]";
  ok_op.name = "qty";
  ok_op.value = "7";
  UpdateOp bad_op = ok_op;
  bad_op.target = "//item[@sku=\"B2\"]";  // Not writable.
  auto outcome = Apply(auths, {ok_op, bad_op});
  ASSERT_FALSE(outcome.ok());
  // Nothing leaked into the original document.
  EXPECT_NE(Compact(*doc_).find("qty=\"3\""), std::string::npos);
}

TEST_F(UpdateTest, RemoveAttribute) {
  UpdateOp op;
  op.kind = UpdateOpKind::kRemoveAttribute;
  op.target = "//item[@sku=\"A1\"]";
  op.name = "qty";
  auto outcome = Apply(
      {WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursive)},
      {op});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(Compact(*outcome->document).find("qty=\"3\""),
            std::string::npos);
  // Removing a non-existent attribute is NotFound.
  auto missing = Apply(
      {WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursive)},
      {op, op});
  ASSERT_FALSE(missing.ok());
}

TEST_F(UpdateTest, ValidationGuardsDtdInvariants) {
  auto result = xml::ParseDocument(
      "<!DOCTYPE inventory [<!ELEMENT inventory (item+)>"
      "<!ELEMENT item (desc)><!ELEMENT desc (#PCDATA)>"
      "<!ATTLIST item sku CDATA #REQUIRED>]>"
      "<inventory><item sku=\"A1\"><desc>bolts</desc></item></inventory>");
  ASSERT_TRUE(result.ok()) << result.status();
  doc_ = std::move(result).value();

  UpdateProcessor processor(&groups_);
  std::vector<Authorization> auths = {
      WriteAuth("Clerks", "", Sign::kPlus, AuthType::kRecursive)};
  UpdateOp bad;
  bad.kind = UpdateOpKind::kInsertChild;
  bad.target = "/inventory";
  bad.fragment = "<unexpected/>";
  std::vector<UpdateOp> ops = {bad};
  auto outcome =
      processor.Apply(*doc_, auths, {}, requester_, ops,
                      /*validate_result=*/true);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kValidationError);
}

TEST_F(UpdateTest, TimeWindowRestrictsWrite) {
  Authorization shift =
      WriteAuth("Clerks", "//item", Sign::kPlus, AuthType::kRecursive);
  shift.valid_from = 1000;
  shift.valid_until = 2000;
  UpdateOp op;
  op.kind = UpdateOpKind::kSetAttribute;
  op.target = "//item[@sku=\"A1\"]";
  op.name = "qty";
  op.value = "8";

  requester_.time = 1500;  // Inside the shift.
  auto inside = Apply({shift}, {op});
  EXPECT_TRUE(inside.ok()) << inside.status();

  requester_.time = 3000;  // After it.
  auto outside = Apply({shift}, {op});
  ASSERT_FALSE(outside.ok());
  EXPECT_EQ(outside.status().code(), StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
