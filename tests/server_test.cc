#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "server/document_server.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/sha256.h"
#include "server/user_directory.h"
#include "server/view_cache.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace server {
namespace {

// --- SHA-256 (FIPS 180-4 test vectors) ---------------------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::HexDigest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::HexDigest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::HexDigest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  auto digest = hasher.Digest();
  EXPECT_EQ(ToHex(digest.data(), digest.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Sha256 hasher;
  hasher.Update("hello ");
  hasher.Update("world");
  auto digest = hasher.Digest();
  EXPECT_EQ(ToHex(digest.data(), digest.size()),
            Sha256::HexDigest("hello world"));
}

// --- User directory -----------------------------------------------------

TEST(UserDirectoryTest, CreateAndAuthenticate) {
  UserDirectory users;
  ASSERT_TRUE(users.CreateUser("tom", "secret").ok());
  EXPECT_TRUE(users.Authenticate("tom", "secret").ok());
  Status wrong = users.Authenticate("tom", "wrong");
  EXPECT_EQ(wrong.code(), StatusCode::kUnauthenticated);
  Status unknown = users.Authenticate("bob", "x");
  EXPECT_EQ(unknown.code(), StatusCode::kUnauthenticated);
}

TEST(UserDirectoryTest, DuplicateUserRejected) {
  UserDirectory users;
  ASSERT_TRUE(users.CreateUser("tom", "a").ok());
  EXPECT_EQ(users.CreateUser("tom", "b").code(),
            StatusCode::kAlreadyExists);
}

TEST(UserDirectoryTest, AnonymousPolicy) {
  UserDirectory users;
  EXPECT_TRUE(users.Authenticate("anonymous", "").ok());
  EXPECT_TRUE(users.Authenticate("", "").ok());
  users.set_allow_anonymous(false);
  EXPECT_FALSE(users.Authenticate("anonymous", "").ok());
  EXPECT_FALSE(users.CreateUser("anonymous", "x").ok());
}

TEST(UserDirectoryTest, PasswordChangeAndRemoval) {
  UserDirectory users;
  ASSERT_TRUE(users.CreateUser("tom", "old").ok());
  ASSERT_TRUE(users.SetPassword("tom", "new").ok());
  EXPECT_FALSE(users.Authenticate("tom", "old").ok());
  EXPECT_TRUE(users.Authenticate("tom", "new").ok());
  ASSERT_TRUE(users.RemoveUser("tom").ok());
  EXPECT_FALSE(users.Authenticate("tom", "new").ok());
  EXPECT_EQ(users.SetPassword("tom", "x").code(), StatusCode::kNotFound);
}

TEST(UserDirectoryTest, SaltsDifferAcrossUsers) {
  // Same password, different users: digests must differ (salted).
  UserDirectory users;
  ASSERT_TRUE(users.CreateUser("a", "pw").ok());
  ASSERT_TRUE(users.CreateUser("b", "pw").ok());
  EXPECT_TRUE(users.Authenticate("a", "pw").ok());
  EXPECT_TRUE(users.Authenticate("b", "pw").ok());
}

// --- HTTP ----------------------------------------------------------------

TEST(HttpTest, ParseRequestLineAndHeaders) {
  auto request = ParseHttpRequest(
      "GET /CSlab.xml?query=%2F%2Fpaper&x=1 HTTP/1.0\r\n"
      "Host: www.lab.com\r\n"
      "Authorization: Basic dG9tOnNlY3JldA==\r\n"
      "\r\n");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/CSlab.xml");
  EXPECT_EQ(request->version, "HTTP/1.0");
  EXPECT_EQ(request->headers.at("host"), "www.lab.com");
  EXPECT_EQ(request->query.at("query"), "//paper");
  EXPECT_EQ(request->query.at("x"), "1");
}

TEST(HttpTest, MalformedRequestsRejected) {
  EXPECT_FALSE(ParseHttpRequest("").ok());
  EXPECT_FALSE(ParseHttpRequest("GET /\r\n").ok());
  EXPECT_FALSE(ParseHttpRequest("GET / NOTHTTP\r\n\r\n").ok());
  EXPECT_FALSE(ParseHttpRequest("GET / HTTP/1.0\r\nBadHeader\r\n\r\n").ok());
}

TEST(HttpTest, Base64RoundTrip) {
  for (std::string_view s :
       {"", "f", "fo", "foo", "foob", "fooba", "foobar",
        "tom:secret", "binary\x01\x02\xff"}) {
    std::string encoded = Base64Encode(s);
    auto decoded = Base64Decode(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, s);
  }
  EXPECT_EQ(Base64Encode("foobar"), "Zm9vYmFy");
  EXPECT_EQ(Base64Encode("foob"), "Zm9vYg==");
}

TEST(HttpTest, Base64RejectsGarbage) {
  EXPECT_FALSE(Base64Decode("not base64!!").ok());
}

TEST(HttpTest, Base64RejectsTruncatedAndPaddingGames) {
  // A single leftover symbol encodes only 6 bits: truncated input.
  EXPECT_FALSE(Base64Decode("Z").ok());
  EXPECT_FALSE(Base64Decode("Zm9vY").ok());
  // Data after padding and excess padding are rejected.
  EXPECT_FALSE(Base64Decode("Zm==9v").ok());
  EXPECT_FALSE(Base64Decode("Zm9v====").ok());
  // Unpadded-but-complete groups stay accepted (lenient RFC 4648).
  auto unpadded = Base64Decode("Zm9vYg");
  ASSERT_TRUE(unpadded.ok());
  EXPECT_EQ(*unpadded, "foob");
  // MIME line wrapping stays accepted.
  EXPECT_TRUE(Base64Decode("Zm9v\r\nYmFy").ok());
}

TEST(HttpTest, BasicAuth) {
  auto credentials = ParseBasicAuth("Basic " + Base64Encode("tom:secret"));
  ASSERT_TRUE(credentials.ok());
  EXPECT_EQ(credentials->first, "tom");
  EXPECT_EQ(credentials->second, "secret");
  EXPECT_FALSE(ParseBasicAuth("Bearer xyz").ok());
  EXPECT_FALSE(ParseBasicAuth("Basic " + Base64Encode("no-colon")).ok());
}

TEST(HttpTest, PercentDecode) {
  auto spaces = PercentDecode("a%20b+c");
  ASSERT_TRUE(spaces.ok());
  EXPECT_EQ(*spaces, "a b c");
  auto slashes = PercentDecode("%2F%2f");
  ASSERT_TRUE(slashes.ok());
  EXPECT_EQ(*slashes, "//");
}

TEST(HttpTest, PercentDecodeRejectsMalformedEscapes) {
  // Truncated escapes are errors, not silently passed through.
  EXPECT_FALSE(PercentDecode("100%").ok());
  EXPECT_FALSE(PercentDecode("%4").ok());
  // Non-hex escape.
  EXPECT_FALSE(PercentDecode("%zz").ok());
  // Smuggled NUL.
  EXPECT_FALSE(PercentDecode("a%00b").ok());
}

TEST(HttpTest, ParseRejectsTruncatedAndHostileHeads) {
  // Missing terminating blank line = truncated read.
  EXPECT_FALSE(ParseHttpRequest("GET / HTTP/1.0\r\nHost: x\r\n").ok());
  // Embedded NUL anywhere in the head.
  EXPECT_FALSE(
      ParseHttpRequest(std::string("GET /a\0b HTTP/1.0\r\n\r\n", 21)).ok());
  // Control characters in the request target.
  EXPECT_FALSE(ParseHttpRequest("GET /a\tb HTTP/1.0\r\n\r\n").ok());
  // Header with empty name.
  EXPECT_FALSE(ParseHttpRequest("GET / HTTP/1.0\r\n: v\r\n\r\n").ok());
  // Unbounded header count.
  std::string flood = "GET / HTTP/1.0\r\n";
  for (int i = 0; i < 200; ++i) {
    flood += "X-H" + std::to_string(i) + ": v\r\n";
  }
  flood += "\r\n";
  EXPECT_FALSE(ParseHttpRequest(flood).ok());
  // Malformed percent-escapes in the target are a parse error now.
  EXPECT_FALSE(ParseHttpRequest("GET /doc%zz HTTP/1.0\r\n\r\n").ok());
}

TEST(HttpTest, BuildResponse) {
  std::string response = BuildHttpResponse(200, "OK", "text/xml", "<a/>");
  EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\n<a/>"), std::string::npos);
}

// --- Repository and server ----------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        repo_.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
    ASSERT_TRUE(repo_
                    .AddDocument("CSlab.xml",
                                 "<laboratory>"
                                 "<project name=\"P1\" type=\"internal\">"
                                 "<manager><fname>Eve</fname>"
                                 "<lname>Smith</lname></manager>"
                                 "<paper category=\"private\">"
                                 "<title>Secret</title></paper>"
                                 "<paper category=\"public\">"
                                 "<title>Known</title></paper>"
                                 "</project></laboratory>",
                                 "laboratory.xml")
                    .ok());
    ASSERT_TRUE(users_.CreateUser("tom", "secret").ok());
    ASSERT_TRUE(groups_.AddMembership("tom", "Foreign").ok());
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl>"
                        // Weak recursive permission: readable by default,
                        // but schema-level authorizations still override
                        // (the strong form would defeat the DTD denial
                        // below — instance > schema for non-weak auths).
                        "<authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" type=\"RW\"/>"
                        "<authorization subject=\"Foreign\" "
                        "object=\"laboratory.xml\" "
                        "path='//paper[./@category=&quot;private&quot;]' "
                        "sign=\"-\" type=\"R\"/>"
                        "</xacl>")
                    .ok());
  }

  Repository repo_;
  UserDirectory users_;
  authz::GroupStore groups_;
};

TEST_F(ServerTest, RepositoryLookups) {
  EXPECT_NE(repo_.FindDtd("laboratory.xml"), nullptr);
  EXPECT_EQ(repo_.FindDtd("nope.dtd"), nullptr);
  EXPECT_NE(repo_.FindDocument("CSlab.xml"), nullptr);
  EXPECT_EQ(repo_.DtdUriOf("CSlab.xml"), "laboratory.xml");
  EXPECT_EQ(repo_.InstanceAuths("CSlab.xml").size(), 1u);
  EXPECT_EQ(repo_.SchemaAuths("laboratory.xml").size(), 1u);
  EXPECT_EQ(repo_.DocumentUris(), std::vector<std::string>{"CSlab.xml"});
}

TEST_F(ServerTest, RepositoryRejectsInvalidDocument) {
  // Missing required attribute 'type'.
  Status s = repo_.AddDocument("bad.xml",
                               "<laboratory><project name=\"x\">"
                               "<manager><fname>a</fname><lname>b</lname>"
                               "</manager></project></laboratory>",
                               "laboratory.xml");
  EXPECT_EQ(s.code(), StatusCode::kValidationError);
}

TEST_F(ServerTest, RepositoryRejectsAuthForUnknownUri) {
  authz::Authorization auth;
  auth.subject = *authz::Subject::Make("Public", "*", "*");
  auth.object.uri = "ghost.xml";
  Status s = repo_.AddAuthorization(auth);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(ServerTest, RepositoryRejectsWeakSchemaAuth) {
  authz::Authorization auth;
  auth.subject = *authz::Subject::Make("Public", "*", "*");
  auth.object.uri = "laboratory.xml";
  auth.type = authz::AuthType::kRecursiveWeak;
  EXPECT_EQ(repo_.AddAuthorization(auth).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, ForeignUserGetsRedactedView) {
  SecureDocumentServer server(&repo_, &users_, &groups_);
  ServerRequest request;
  request.user = "tom";
  request.password = "secret";
  request.ip = "130.100.50.8";
  request.sym = "infosys.bld1.it";
  request.uri = "CSlab.xml";
  ServerResponse response = server.Handle(request);
  EXPECT_EQ(response.http_status, 200);
  EXPECT_EQ(response.body.find("Secret"), std::string::npos);
  EXPECT_NE(response.body.find("Known"), std::string::npos);
  EXPECT_NE(response.body.find("Eve"), std::string::npos);
  // Loosened DTD travels with the view.
  EXPECT_NE(response.body.find("<!DOCTYPE laboratory ["), std::string::npos);
  EXPECT_NE(response.body.find("#IMPLIED"), std::string::npos);
}

TEST_F(ServerTest, AnonymousSeesPublicView) {
  SecureDocumentServer server(&repo_, &users_, &groups_);
  ServerRequest request;
  request.ip = "8.8.8.8";
  request.sym = "x.example.org";
  request.uri = "CSlab.xml";
  ServerResponse response = server.Handle(request);
  EXPECT_EQ(response.http_status, 200);
  // anonymous is not in Foreign, so the schema denial does not apply.
  EXPECT_NE(response.body.find("Secret"), std::string::npos);
}

TEST_F(ServerTest, WrongPasswordIs401) {
  SecureDocumentServer server(&repo_, &users_, &groups_);
  ServerRequest request;
  request.user = "tom";
  request.password = "nope";
  request.uri = "CSlab.xml";
  EXPECT_EQ(server.Handle(request).http_status, 401);
}

TEST_F(ServerTest, UnknownDocumentIs404) {
  SecureDocumentServer server(&repo_, &users_, &groups_);
  ServerRequest request;
  request.uri = "ghost.xml";
  EXPECT_EQ(server.Handle(request).http_status, 404);
}

TEST_F(ServerTest, EmptyViewIndistinguishableFromMissing) {
  // A document nobody granted anything on answers exactly like a
  // missing document (closed policy, paper §6.2 intent).
  ASSERT_TRUE(repo_
                  .AddDocument("hidden.xml",
                               "<laboratory><project name=\"x\" "
                               "type=\"public\"><manager><fname>a</fname>"
                               "<lname>b</lname></manager></project>"
                               "</laboratory>",
                               "laboratory.xml")
                  .ok());
  SecureDocumentServer server(&repo_, &users_, &groups_);
  ServerRequest for_hidden;
  for_hidden.uri = "hidden.xml";
  ServerRequest for_missing;
  for_missing.uri = "missing.xml";
  ServerResponse hidden = server.Handle(for_hidden);
  ServerResponse missing = server.Handle(for_missing);
  EXPECT_EQ(hidden.http_status, 404);
  EXPECT_EQ(missing.http_status, 404);
  // The bodies must not let the requester tell the two cases apart.
  std::string hidden_body = hidden.body;
  std::string missing_body = missing.body;
  size_t pos;
  while ((pos = hidden_body.find("hidden")) != std::string::npos) {
    hidden_body.replace(pos, 6, "X");
  }
  while ((pos = missing_body.find("missing")) != std::string::npos) {
    missing_body.replace(pos, 7, "X");
  }
  EXPECT_EQ(hidden_body, missing_body);
}

TEST_F(ServerTest, QueryRunsOverTheView) {
  SecureDocumentServer server(&repo_, &users_, &groups_);
  ServerRequest request;
  request.user = "tom";
  request.password = "secret";
  request.ip = "130.100.50.8";
  request.sym = "infosys.bld1.it";
  request.uri = "CSlab.xml";
  request.query = "//paper/title";
  ServerResponse response = server.Handle(request);
  EXPECT_EQ(response.http_status, 200);
  // The private paper is already out of the view: the query cannot
  // reach it.
  EXPECT_NE(response.body.find("count=\"1\""), std::string::npos);
  EXPECT_NE(response.body.find("<title>Known</title>"), std::string::npos);
  EXPECT_EQ(response.body.find("Secret"), std::string::npos);
}

TEST_F(ServerTest, BadQueryIs400) {
  SecureDocumentServer server(&repo_, &users_, &groups_);
  ServerRequest request;
  request.uri = "CSlab.xml";
  request.query = "///[";
  EXPECT_EQ(server.Handle(request).http_status, 400);
}

TEST_F(ServerTest, ViewCacheServesIdenticalBodies) {
  ServerConfig config;
  config.view_cache_capacity = 8;
  SecureDocumentServer server(&repo_, &users_, &groups_, config);
  ServerRequest request;
  request.user = "tom";
  request.password = "secret";
  request.ip = "130.100.50.8";
  request.sym = "infosys.bld1.it";
  request.uri = "CSlab.xml";

  ServerResponse first = server.Handle(request);
  ServerResponse second = server.Handle(request);
  EXPECT_EQ(first.http_status, 200);
  // The hit carries the shared cached rendering, not a per-request
  // copy.
  ASSERT_NE(second.shared_body, nullptr);
  EXPECT_EQ(first.body_view(), second.body_view());
  EXPECT_EQ(server.view_cache().hits(), 1);
  EXPECT_EQ(server.view_cache().misses(), 1);

  // Two hits share one rendering: the same string object is served.
  ServerResponse third = server.Handle(request);
  ASSERT_NE(third.shared_body, nullptr);
  EXPECT_EQ(third.shared_body.get(), second.shared_body.get());

  // A requester matching a different set of authorization subjects
  // gets its own entry — and a different view.
  ServerRequest anon = request;
  anon.user.clear();
  anon.password.clear();
  ServerResponse other = server.Handle(anon);
  EXPECT_NE(other.body_view(), first.body_view());
  EXPECT_EQ(server.view_cache().misses(), 2);
}

TEST_F(ServerTest, ViewCacheInvalidatedByRepositoryChange) {
  ServerConfig config;
  config.view_cache_capacity = 8;
  SecureDocumentServer server(&repo_, &users_, &groups_, config);
  ServerRequest request;
  request.user = "tom";
  request.password = "secret";
  request.ip = "130.100.50.8";
  request.sym = "infosys.bld1.it";
  request.uri = "CSlab.xml";

  ServerResponse before = server.Handle(request);
  EXPECT_NE(before.body.find("Eve"), std::string::npos);

  // Revoke: deny managers to Foreign.  The cached view must not leak.
  ASSERT_TRUE(repo_
                  .AddXacl("<xacl><authorization subject=\"Foreign\" "
                           "object=\"CSlab.xml\" path=\"//manager\" "
                           "sign=\"-\" type=\"R\"/></xacl>")
                  .ok());
  ServerResponse after = server.Handle(request);
  EXPECT_NE(before.body, after.body);
  EXPECT_EQ(after.body.find("Eve"), std::string::npos);
}

TEST_F(ServerTest, ViewCacheBypassedForTimeLimitedPolicies) {
  authz::Authorization timed;
  timed.subject = *authz::Subject::Make("Public", "*", "*");
  timed.object.uri = "CSlab.xml";
  timed.object.path = "//manager";
  timed.sign = authz::Sign::kMinus;
  timed.type = authz::AuthType::kRecursive;
  timed.valid_from = 100;
  timed.valid_until = 200;
  ASSERT_TRUE(repo_.AddAuthorization(timed).ok());
  EXPECT_TRUE(repo_.has_time_limited_auths());

  ServerConfig config;
  config.view_cache_capacity = 8;
  SecureDocumentServer server(&repo_, &users_, &groups_, config);
  ServerRequest request;
  request.uri = "CSlab.xml";
  server.Handle(request);
  server.Handle(request);
  EXPECT_EQ(server.view_cache().hits(), 0);
  EXPECT_EQ(server.view_cache().size(), 0u);
}

TEST(ViewCacheTest, LruEviction) {
  // One shard: the test asserts strict global LRU order.
  ViewCache cache(2, /*shards=*/1);
  cache.Put({"a", "u", "i", "s"}, 1, "A");
  cache.Put({"b", "u", "i", "s"}, 1, "B");
  EXPECT_NE(cache.Get({"a", "u", "i", "s"}, 1), nullptr);  // a is MRU
  cache.Put({"c", "u", "i", "s"}, 1, "C");                 // evicts b
  EXPECT_EQ(cache.Get({"b", "u", "i", "s"}, 1), nullptr);
  EXPECT_NE(cache.Get({"a", "u", "i", "s"}, 1), nullptr);
  EXPECT_NE(cache.Get({"c", "u", "i", "s"}, 1), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(ViewCacheTest, VersionMismatchDropsEntry) {
  ViewCache cache(4, /*shards=*/1);
  cache.Put({"a", "u", "i", "s"}, 1, "A");
  EXPECT_EQ(cache.Get({"a", "u", "i", "s"}, 2), nullptr);
  EXPECT_EQ(cache.size(), 0u);  // Stale entry evicted on access.
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(ViewCacheTest, ZeroCapacityDisables) {
  ViewCache cache(0);
  cache.Put({"a", "u", "i", "s"}, 1, "A");
  EXPECT_EQ(cache.Get({"a", "u", "i", "s"}, 1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ViewCacheTest, HitsShareOneBody) {
  ViewCache cache(4, /*shards=*/1);
  cache.Put({"a", "u", "i", "s"}, 1, "A");
  std::shared_ptr<const std::string> first = cache.Get({"a", "u", "i", "s"}, 1);
  std::shared_ptr<const std::string> second =
      cache.Get({"a", "u", "i", "s"}, 1);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // No per-hit copy.
  EXPECT_EQ(*first, "A");
}

TEST(ViewCacheTest, ClearCountsDroppedEntriesAsEvictions) {
  ViewCache cache(4, /*shards=*/1);
  cache.Put({"a", "u", "i", "s"}, 1, "A");
  cache.Put({"b", "u", "i", "s"}, 1, "B");
  EXPECT_EQ(cache.evictions(), 0);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 2);  // A flush is an invalidation.
  cache.Clear();                    // Empty flush adds nothing.
  EXPECT_EQ(cache.evictions(), 2);
}

TEST(ViewCacheTest, PutOverwriteRefreshesEntry) {
  ViewCache cache(2, /*shards=*/1);
  cache.Put({"a", "u", "i", "s"}, 1, "A");
  cache.Put({"b", "u", "i", "s"}, 1, "B");
  cache.Put({"a", "u", "i", "s"}, 2, "A2");  // Overwrite: a becomes MRU.
  cache.Put({"c", "u", "i", "s"}, 1, "C");   // Evicts b, not a.
  EXPECT_EQ(cache.Get({"b", "u", "i", "s"}, 1), nullptr);
  std::shared_ptr<const std::string> a = cache.Get({"a", "u", "i", "s"}, 2);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, "A2");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ViewCacheTest, ShardedCapacityAndIsolation) {
  // Capacity 64 spreads over the default 8 shards (8 slots each), so 8
  // entries fit regardless of how the keys hash, and the aggregate
  // counters stay exact across shards.
  ViewCache cache(64);
  for (int i = 0; i < 8; ++i) {
    cache.Put({"doc" + std::to_string(i), "u", "i", "s"}, 1,
              "body" + std::to_string(i));
  }
  EXPECT_EQ(cache.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    std::shared_ptr<const std::string> hit =
        cache.Get({"doc" + std::to_string(i), "u", "i", "s"}, 1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, "body" + std::to_string(i));
  }
  EXPECT_EQ(cache.hits(), 8);
  EXPECT_EQ(cache.misses(), 0);
}

TEST_F(ServerTest, FullHttpCycle) {
  SecureDocumentServer server(&repo_, &users_, &groups_);
  std::string raw =
      "GET /CSlab.xml HTTP/1.0\r\n"
      "Authorization: Basic " + Base64Encode("tom:secret") + "\r\n\r\n";
  std::string response = server.HandleHttp(raw, "130.100.50.8",
                                           "infosys.bld1.it");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Known"), std::string::npos);
  EXPECT_EQ(response.find("Secret"), std::string::npos);
}

TEST_F(ServerTest, HttpPostRejected) {
  SecureDocumentServer server(&repo_, &users_, &groups_);
  std::string response =
      server.HandleHttp("POST /CSlab.xml HTTP/1.0\r\n\r\n", "1.2.3.4",
                        "h.example.com");
  EXPECT_NE(response.find("405"), std::string::npos);
}

TEST_F(ServerTest, HttpBadRequest) {
  SecureDocumentServer server(&repo_, &users_, &groups_);
  std::string response = server.HandleHttp("garbage", "1.2.3.4", "h");
  EXPECT_NE(response.find("400"), std::string::npos);
}

// --- POST /update ------------------------------------------------------

/// ServerTest plus a write policy: everyone may write the laboratory
/// tree, except the private paper (explicit instance-level carve-out,
/// which suppresses the propagated grant on that subtree).
class ServerUpdateTest : public ServerTest {
 protected:
  void SetUp() override {
    ServerTest::SetUp();
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl>"
                        "<authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" action=\"write\" type=\"R\"/>"
                        "<authorization subject=\"Foreign\" "
                        "object=\"CSlab.xml\" "
                        "path='//paper[./@category=&quot;private&quot;]' "
                        "sign=\"-\" action=\"write\" type=\"R\"/>"
                        "</xacl>")
                    .ok());
    config_.enable_updates = true;
  }

  std::string Post(SecureDocumentServer& server, const std::string& body,
                   const std::string& uri = "CSlab.xml",
                   const std::string& credentials = "tom:secret") {
    std::string raw = "POST /update/" + uri +
                      " HTTP/1.0\r\nAuthorization: Basic " +
                      Base64Encode(credentials) +
                      "\r\nContent-Length: " + std::to_string(body.size()) +
                      "\r\n\r\n" + body;
    return server.HandleHttp(raw, "130.100.50.8", "infosys.bld1.it");
  }

  std::string Get(SecureDocumentServer& server) {
    std::string raw = "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
                      Base64Encode("tom:secret") + "\r\n\r\n";
    return server.HandleHttp(raw, "130.100.50.8", "infosys.bld1.it");
  }

  static std::string SetTitle(const std::string& category,
                              const std::string& value) {
    return "<update><set-text target='//paper[./@category=\"" + category +
           "\"]/title'>" + value + "</set-text></update>";
  }

  ServerConfig config_;
};

TEST_F(ServerUpdateTest, UpdateAppliesAndBecomesVisible) {
  SecureDocumentServer server(&repo_, &users_, &groups_, config_);
  std::string response = Post(server, SetTitle("public", "Revised"));
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("<update-result ops=\"1\""), std::string::npos)
      << response;
  std::string view = Get(server);
  EXPECT_NE(view.find("Revised"), std::string::npos) << view;
  EXPECT_EQ(view.find("Known"), std::string::npos);
#ifndef XMLSEC_METRICS_NOOP
  EXPECT_EQ(server.metrics()->ValueOf("xmlsec_update_applied_total"), 1.0);
  EXPECT_GE(server.metrics()->ValueOf("xmlsec_update_ops_applied_total"), 1.0);
#endif
}

TEST_F(ServerUpdateTest, UpdatesDisabledByDefault) {
  SecureDocumentServer server(&repo_, &users_, &groups_);
  std::string response = Post(server, SetTitle("public", "Revised"));
  EXPECT_NE(response.find("405"), std::string::npos) << response;
  std::string view = Get(server);
  EXPECT_NE(view.find("Known"), std::string::npos);
}

TEST_F(ServerUpdateTest, WriteDenialIs403AndMutatesNothing) {
  SecureDocumentServer server(&repo_, &users_, &groups_, config_);
  std::string response = Post(server, SetTitle("private", "Overwritten"));
  EXPECT_NE(response.find("HTTP/1.0 403 Forbidden"), std::string::npos)
      << response;
  // The batch is atomic: a later read of the unrelated public paper
  // still serves the original document.
  std::string view = Get(server);
  EXPECT_NE(view.find("Known"), std::string::npos);
#ifndef XMLSEC_METRICS_NOOP
  EXPECT_EQ(server.metrics()->ValueOf("xmlsec_update_denied_total"), 1.0);
#endif
}

TEST_F(ServerUpdateTest, MalformedBatchIs400) {
  SecureDocumentServer server(&repo_, &users_, &groups_, config_);
  for (const std::string body :
       {std::string("not xml"), std::string("<update/>"),
        std::string("<update><bogus target=\"/x\"/></update>"),
        std::string("<update><set-text>missing target</set-text></update>")}) {
    std::string response = Post(server, body);
    EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos) << response;
  }
}

TEST_F(ServerUpdateTest, UnknownDocumentIs404) {
  SecureDocumentServer server(&repo_, &users_, &groups_, config_);
  std::string response =
      Post(server, SetTitle("public", "Revised"), "nope.xml");
  EXPECT_NE(response.find("HTTP/1.0 404"), std::string::npos) << response;
}

TEST_F(ServerUpdateTest, WrongPasswordIs401) {
  SecureDocumentServer server(&repo_, &users_, &groups_, config_);
  std::string response = Post(server, SetTitle("public", "Revised"),
                              "CSlab.xml", "tom:wrong");
  EXPECT_NE(response.find("HTTP/1.0 401"), std::string::npos) << response;
}

TEST_F(ServerUpdateTest, UpdateInvalidatesCachedViews) {
  config_.view_cache_capacity = 8;
  SecureDocumentServer server(&repo_, &users_, &groups_, config_);
  std::string first = Get(server);
  EXPECT_NE(first.find("Known"), std::string::npos);
  // Warm hit.
  Get(server);
#ifndef XMLSEC_METRICS_NOOP
  EXPECT_GE(server.metrics()->ValueOf("xmlsec_view_cache_hits_total"), 1.0);
#endif
  ASSERT_NE(Post(server, SetTitle("public", "Fresh")).find("200 OK"),
            std::string::npos);
  std::string after = Get(server);
  EXPECT_NE(after.find("Fresh"), std::string::npos)
      << "stale cached view served after update: " << after;
  EXPECT_EQ(after.find("Known"), std::string::npos);
#ifndef XMLSEC_METRICS_NOOP
  EXPECT_GE(server.metrics()->ValueOf("xmlsec_update_cache_invalidations_total"),
            1.0);
#endif
}

TEST_F(ServerUpdateTest, ConcurrentWritersCompose) {
  SecureDocumentServer server(&repo_, &users_, &groups_, config_);
  constexpr int kWriters = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kWriters; ++i) {
    threads.emplace_back([&, i] {
      std::string body =
          "<update><insert target='//project' before='paper[1]'>"
          "<member><fname>W" +
          std::to_string(i) +
          "</fname><lname>Writer</lname></member></insert></update>";
      std::string response = Post(server, body);
      if (response.find("200 OK") != std::string::npos) ++ok_count;
    });
  }
  for (std::thread& t : threads) t.join();
  // Writers serialize on the update mutex; every batch applies against
  // the snapshot current at its turn, so all of them compose.
  EXPECT_EQ(ok_count.load(), kWriters);
  std::string view = Get(server);
  for (int i = 0; i < kWriters; ++i) {
    EXPECT_NE(view.find("W" + std::to_string(i)), std::string::npos)
        << "lost write " << i;
  }
}

}  // namespace
}  // namespace server
}  // namespace xmlsec
