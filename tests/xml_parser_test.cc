#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/parser.h"

namespace xmlsec {
namespace xml {
namespace {

std::unique_ptr<Document> MustParse(std::string_view text,
                                    const ParseOptions& options = {}) {
  auto result = ParseDocument(text, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

Status ParseError(std::string_view text) {
  auto result = ParseDocument(text);
  EXPECT_FALSE(result.ok()) << "expected parse failure for: " << text;
  return result.ok() ? Status::OK() : result.status();
}

TEST(ParserTest, MinimalDocument) {
  auto doc = MustParse("<a/>");
  ASSERT_NE(doc->root(), nullptr);
  EXPECT_EQ(doc->root()->tag(), "a");
  EXPECT_TRUE(doc->root()->children().empty());
}

TEST(ParserTest, XmlDeclaration) {
  auto doc = MustParse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"yes\"?><a/>");
  EXPECT_TRUE(doc->has_xml_decl());
  EXPECT_EQ(doc->version(), "1.0");
  EXPECT_EQ(doc->encoding(), "UTF-8");
  EXPECT_TRUE(doc->standalone());
}

TEST(ParserTest, AttributesSingleAndDoubleQuotes) {
  auto doc = MustParse("<a x=\"1\" y='2'/>");
  EXPECT_EQ(doc->root()->GetAttribute("x"), "1");
  EXPECT_EQ(doc->root()->GetAttribute("y"), "2");
}

TEST(ParserTest, NestedElementsAndText) {
  auto doc = MustParse("<a>one<b>two</b>three</a>");
  const Element* a = doc->root();
  ASSERT_EQ(a->child_count(), 3u);
  EXPECT_EQ(a->child(0)->NodeValue(), "one");
  EXPECT_EQ(a->child(1)->NodeName(), "b");
  EXPECT_EQ(a->child(2)->NodeValue(), "three");
}

TEST(ParserTest, PredefinedEntities) {
  auto doc = MustParse("<a>&lt;&gt;&amp;&apos;&quot;</a>");
  EXPECT_EQ(doc->root()->TextContent(), "<>&'\"");
}

TEST(ParserTest, CharacterReferences) {
  auto doc = MustParse("<a>&#65;&#x42;&#x43;</a>");
  EXPECT_EQ(doc->root()->TextContent(), "ABC");
}

TEST(ParserTest, CharacterReferenceMultiByte) {
  auto doc = MustParse("<a>&#xE9;</a>");  // é
  EXPECT_EQ(doc->root()->TextContent(), "\xC3\xA9");
}

TEST(ParserTest, GeneralEntityFromInternalSubset) {
  auto doc = MustParse(
      "<!DOCTYPE a [<!ENTITY who \"world\">]><a>hello &who;</a>");
  EXPECT_EQ(doc->root()->TextContent(), "hello world");
}

TEST(ParserTest, EntityWithMarkupParsesAsContent) {
  auto doc = MustParse(
      "<!DOCTYPE a [<!ENTITY frag \"<b>inner</b>\">]><a>&frag;</a>");
  const Element* b = doc->root()->FirstChildElement("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->TextContent(), "inner");
}

TEST(ParserTest, NestedEntityExpansion) {
  auto doc = MustParse(
      "<!DOCTYPE a [<!ENTITY x \"1&y;3\"><!ENTITY y \"2\">]><a>&x;</a>");
  EXPECT_EQ(doc->root()->TextContent(), "123");
}

TEST(ParserTest, RecursiveEntityIsAnError) {
  Status s = ParseError(
      "<!DOCTYPE a [<!ENTITY x \"&y;\"><!ENTITY y \"&x;\">]><a>&x;</a>");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(ParserTest, UndeclaredEntityIsAnError) {
  Status s = ParseError("<a>&nope;</a>");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("nope"), std::string::npos);
}

TEST(ParserTest, EntityInAttributeValue) {
  auto doc = MustParse(
      "<!DOCTYPE a [<!ENTITY v \"xy\">]><a k=\"-&v;-&amp;\"/>");
  EXPECT_EQ(doc->root()->GetAttribute("k"), "-xy-&");
}

TEST(ParserTest, AttributeValueWhitespaceNormalized) {
  auto doc = MustParse("<a k=\"one\ntwo\tthree\"/>");
  EXPECT_EQ(doc->root()->GetAttribute("k"), "one two three");
}

TEST(ParserTest, AttributeValueMayNotContainLt) {
  ParseError("<a k=\"a<b\"/>");
}

TEST(ParserTest, CData) {
  auto doc = MustParse("<a><![CDATA[<not-markup> & stuff]]></a>");
  ASSERT_EQ(doc->root()->child_count(), 1u);
  EXPECT_EQ(doc->root()->child(0)->type(), NodeType::kCData);
  EXPECT_EQ(doc->root()->TextContent(), "<not-markup> & stuff");
}

TEST(ParserTest, CommentsKeptByDefault) {
  auto doc = MustParse("<a><!-- note --></a>");
  ASSERT_EQ(doc->root()->child_count(), 1u);
  EXPECT_EQ(doc->root()->child(0)->type(), NodeType::kComment);
  EXPECT_EQ(doc->root()->child(0)->NodeValue(), " note ");
}

TEST(ParserTest, CommentsDroppedOnRequest) {
  ParseOptions options;
  options.keep_comments = false;
  auto doc = MustParse("<a><!-- note --></a>", options);
  EXPECT_TRUE(doc->root()->children().empty());
}

TEST(ParserTest, DoubleHyphenInCommentRejected) {
  ParseError("<a><!-- bad -- comment --></a>");
}

TEST(ParserTest, ProcessingInstruction) {
  auto doc = MustParse("<a><?target some data?></a>");
  ASSERT_EQ(doc->root()->child_count(), 1u);
  const auto* pi =
      static_cast<const ProcessingInstruction*>(doc->root()->child(0));
  EXPECT_EQ(pi->target(), "target");
  EXPECT_EQ(pi->data(), "some data");
}

TEST(ParserTest, PiTargetXmlRejected) {
  ParseError("<a><?xml version=\"1.0\"?></a>");
}

TEST(ParserTest, MismatchedTagsRejected) {
  Status s = ParseError("<a><b></a></b>");
  EXPECT_NE(s.message().find("mismatched"), std::string::npos);
}

TEST(ParserTest, UnclosedElementRejected) { ParseError("<a><b></b>"); }

TEST(ParserTest, MultipleRootsRejected) { ParseError("<a/><b/>"); }

TEST(ParserTest, ContentAfterRootCommentAllowed) {
  auto doc = MustParse("<a/><!-- trailing -->");
  ASSERT_NE(doc->root(), nullptr);
}

TEST(ParserTest, DuplicateAttributesRejected) { ParseError("<a x=\"1\" x=\"2\"/>"); }

TEST(ParserTest, CdataEndInTextRejected) { ParseError("<a>bad ]]> text</a>"); }

TEST(ParserTest, DoctypeNameAndSystemId) {
  auto doc = MustParse(
      "<!DOCTYPE root SYSTEM \"http://x/root.dtd\"><root/>");
  EXPECT_EQ(doc->doctype_name(), "root");
  EXPECT_EQ(doc->doctype_system_id(), "http://x/root.dtd");
}

TEST(ParserTest, InternalSubsetParsed) {
  auto doc = MustParse(
      "<!DOCTYPE a [<!ELEMENT a (b*)><!ELEMENT b EMPTY>]><a><b/></a>");
  ASSERT_NE(doc->dtd(), nullptr);
  EXPECT_NE(doc->dtd()->FindElement("a"), nullptr);
  EXPECT_NE(doc->dtd()->FindElement("b"), nullptr);
}

TEST(ParserTest, ExternalDtdViaResolver) {
  ParseOptions options;
  options.resolver = [](std::string_view id) -> Result<std::string> {
    EXPECT_EQ(id, "lab.dtd");
    return std::string("<!ELEMENT a EMPTY>");
  };
  auto doc = MustParse("<!DOCTYPE a SYSTEM \"lab.dtd\"><a/>", options);
  ASSERT_NE(doc->dtd(), nullptr);
  EXPECT_NE(doc->dtd()->FindElement("a"), nullptr);
}

TEST(ParserTest, InternalSubsetWinsOverExternal) {
  ParseOptions options;
  options.resolver = [](std::string_view) -> Result<std::string> {
    return std::string("<!ENTITY site \"external\">");
  };
  auto doc = MustParse(
      "<!DOCTYPE a SYSTEM \"x.dtd\" [<!ENTITY site \"internal\">]>"
      "<a>&site;</a>",
      options);
  EXPECT_EQ(doc->root()->TextContent(), "internal");
}

TEST(ParserTest, StripIgnorableWhitespace) {
  ParseOptions options;
  options.strip_ignorable_whitespace = true;
  auto doc = MustParse("<a>\n  <b/>\n  <c/>\n</a>", options);
  EXPECT_EQ(doc->root()->child_count(), 2u);
}

TEST(ParserTest, WhitespaceKeptByDefault) {
  auto doc = MustParse("<a>\n  <b/>\n</a>");
  EXPECT_EQ(doc->root()->child_count(), 3u);
}

TEST(ParserTest, SourcePositionsTracked) {
  auto doc = MustParse("<a>\n  <b/>\n</a>");
  const Element* b = doc->root()->FirstChildElement("b");
  EXPECT_EQ(b->line(), 2);
  EXPECT_EQ(b->column(), 3);
}

TEST(ParserTest, Utf8NamesAndContent) {
  auto doc = MustParse("<données clé=\"été\">straße</données>");
  EXPECT_EQ(doc->root()->tag(), "données");
  EXPECT_EQ(doc->root()->GetAttribute("clé"), "été");
  EXPECT_EQ(doc->root()->TextContent(), "straße");
}

TEST(ParserTest, DeeplyNestedDocument) {
  std::string text;
  const int depth = 200;
  for (int i = 0; i < depth; ++i) text += "<d>";
  text += "x";
  for (int i = 0; i < depth; ++i) text += "</d>";
  auto doc = MustParse(text);
  EXPECT_EQ(doc->root()->TextContent(), "x");
}

TEST(ParserTest, EmptyInputRejected) { ParseError(""); }

TEST(ParserTest, NestingDepthBounded) {
  std::string text;
  for (int i = 0; i < 20; ++i) text += "<d>";
  text += "x";
  for (int i = 0; i < 20; ++i) text += "</d>";
  ParseOptions options;
  options.max_depth = 16;
  auto result = ParseDocument(text, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("max_depth"), std::string::npos);
  options.max_depth = 32;
  EXPECT_TRUE(ParseDocument(text, options).ok());
}

TEST(ParserTest, DepthBoundSpansEntityExpansion) {
  // 300 levels via nested entity expansions must trip the default bound
  // of 512 when combined with 300 literal levels.
  std::string dtd = "<!DOCTYPE d [<!ENTITY deep \"";
  for (int i = 0; i < 300; ++i) dtd += "<e>";
  for (int i = 0; i < 300; ++i) dtd += "</e>";
  dtd += "\">]>";
  std::string body;
  for (int i = 0; i < 300; ++i) body += "<d>";
  body += "&deep;";
  for (int i = 0; i < 300; ++i) body += "</d>";
  auto result = ParseDocument(dtd + body);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("max_depth"), std::string::npos);
}

TEST(ParserTest, TextBeforeRootRejected) { ParseError("junk<a/>"); }

TEST(ParserTest, NodeCountMatchesStructure) {
  auto doc = MustParse("<a x=\"1\"><b/>t</a>");
  // document, a, @x, b, text
  EXPECT_EQ(doc->node_count(), 5);
}

}  // namespace
}  // namespace xml
}  // namespace xmlsec
