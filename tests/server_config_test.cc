#include <gtest/gtest.h>

#include "server/config_files.h"
#include "server/document_server.h"
#include "server/repository.h"
#include "server/user_directory.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace server {
namespace {

TEST(GroupsFileTest, ParsesApacheStyle) {
  authz::GroupStore groups;
  Status s = LoadGroupsFile(
      "# staff roster\n"
      "Staff: alice bob\n"
      "Admins: alice\n"
      "\n"
      "Employees: Staff Admins   # nested groups\n",
      &groups);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_TRUE(groups.IsMemberOrSelf("alice", "Staff"));
  EXPECT_TRUE(groups.IsMemberOrSelf("bob", "Staff"));
  EXPECT_FALSE(groups.IsMemberOrSelf("bob", "Admins"));
  EXPECT_TRUE(groups.IsMemberOrSelf("alice", "Employees"));
  EXPECT_TRUE(groups.IsMemberOrSelf("bob", "Employees"));
}

TEST(GroupsFileTest, CommaSeparatorsAccepted) {
  authz::GroupStore groups;
  ASSERT_TRUE(LoadGroupsFile("G: a, b,c\n", &groups).ok());
  EXPECT_TRUE(groups.IsMemberOrSelf("a", "G"));
  EXPECT_TRUE(groups.IsMemberOrSelf("b", "G"));
  EXPECT_TRUE(groups.IsMemberOrSelf("c", "G"));
}

TEST(GroupsFileTest, RejectsMissingColonAndCycles) {
  authz::GroupStore groups;
  EXPECT_FALSE(LoadGroupsFile("just words\n", &groups).ok());
  authz::GroupStore groups2;
  Status s = LoadGroupsFile("A: B\nB: A\n", &groups2);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cycle"), std::string::npos);
}

TEST(GroupsFileTest, SaveLoadRoundTrip) {
  authz::GroupStore groups;
  ASSERT_TRUE(LoadGroupsFile("Staff: alice bob\nAdmins: alice Staff\n",
                             &groups)
                  .ok());
  std::string rendered = SaveGroupsFile(groups);
  authz::GroupStore reloaded;
  ASSERT_TRUE(LoadGroupsFile(rendered, &reloaded).ok());
  EXPECT_TRUE(reloaded.IsMemberOrSelf("alice", "Staff"));
  EXPECT_TRUE(reloaded.IsMemberOrSelf("bob", "Admins"));
  EXPECT_EQ(SaveGroupsFile(reloaded), rendered);
}

TEST(PasswordFileTest, SaveLoadRoundTrip) {
  UserDirectory users;
  ASSERT_TRUE(users.CreateUser("tom", "secret").ok());
  ASSERT_TRUE(users.CreateUser("ann", "hunter2").ok());
  std::string file = users.SavePasswordFile();

  UserDirectory restored;
  ASSERT_TRUE(restored.LoadPasswordFile(file).ok());
  EXPECT_TRUE(restored.Authenticate("tom", "secret").ok());
  EXPECT_TRUE(restored.Authenticate("ann", "hunter2").ok());
  EXPECT_FALSE(restored.Authenticate("tom", "hunter2").ok());
}

TEST(PasswordFileTest, CommentsAndBlanksSkipped) {
  UserDirectory users;
  ASSERT_TRUE(users.CreateUser("tom", "pw").ok());
  std::string file = "# directory\n\n" + users.SavePasswordFile();
  UserDirectory restored;
  ASSERT_TRUE(restored.LoadPasswordFile(file).ok());
  EXPECT_TRUE(restored.Authenticate("tom", "pw").ok());
}

TEST(PasswordFileTest, MalformedLinesRejected) {
  UserDirectory users;
  EXPECT_FALSE(users.LoadPasswordFile("tom:salt\n").ok());
  EXPECT_FALSE(users.LoadPasswordFile("tom:salt:short\n").ok());
  EXPECT_FALSE(
      users
          .LoadPasswordFile("anonymous:s:" + std::string(64, 'a') + "\n")
          .ok());
}

class PerDocumentPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        repo_.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
    const char* doc =
        "<laboratory><project name=\"P\" type=\"public\">"
        "<manager><fname>A</fname><lname>B</lname></manager>"
        "<paper category=\"public\"><title>T</title></paper>"
        "</project></laboratory>";
    ASSERT_TRUE(repo_.AddDocument("open.xml", doc, "laboratory.xml").ok());
    ASSERT_TRUE(repo_.AddDocument("closed.xml", doc, "laboratory.xml").ok());
    // One denial on each document; no permissions at all.
    for (const char* uri : {"open.xml", "closed.xml"}) {
      authz::Authorization denial;
      denial.subject = *authz::Subject::Make("Public", "*", "*");
      denial.object.uri = uri;
      denial.object.path = "//manager";
      denial.sign = authz::Sign::kMinus;
      denial.type = authz::AuthType::kRecursive;
      ASSERT_TRUE(repo_.AddAuthorization(denial).ok());
    }
    // open.xml is governed by the open completeness policy.
    authz::PolicyOptions open_policy;
    open_policy.completeness = authz::CompletenessPolicy::kOpen;
    ASSERT_TRUE(repo_.SetDocumentPolicy("open.xml", open_policy).ok());
  }

  Repository repo_;
  UserDirectory users_;
  authz::GroupStore groups_;
};

TEST_F(PerDocumentPolicyTest, PoliciesCoexistOnOneServer) {
  SecureDocumentServer server(&repo_, &users_, &groups_);
  ServerRequest request;
  request.ip = "1.2.3.4";
  request.sym = "h.example.com";

  // The open-policy document: undefined nodes are visible, the explicit
  // denial is not.
  request.uri = "open.xml";
  ServerResponse open_response = server.Handle(request);
  EXPECT_EQ(open_response.http_status, 200);
  EXPECT_NE(open_response.body.find("<title>T</title>"), std::string::npos);
  // The manager subtree is denied (its tags appear only inside the
  // emitted DTD, never as content).
  EXPECT_EQ(open_response.body.find("<fname>"), std::string::npos);
  EXPECT_EQ(open_response.body.find("<manager>"), std::string::npos);

  // The same content under the (default) closed policy: nothing visible.
  request.uri = "closed.xml";
  ServerResponse closed_response = server.Handle(request);
  EXPECT_EQ(closed_response.http_status, 404);
}

TEST_F(PerDocumentPolicyTest, PolicyOfFallsBack) {
  authz::PolicyOptions fallback;
  fallback.conflict = authz::ConflictPolicy::kPermissionsTakePrecedence;
  authz::PolicyOptions closed = repo_.PolicyOf("closed.xml", fallback);
  EXPECT_EQ(closed.conflict,
            authz::ConflictPolicy::kPermissionsTakePrecedence);
  authz::PolicyOptions open = repo_.PolicyOf("open.xml", fallback);
  EXPECT_EQ(open.completeness, authz::CompletenessPolicy::kOpen);
  EXPECT_FALSE(repo_.SetDocumentPolicy("ghost.xml", fallback).ok());
}

TEST_F(PerDocumentPolicyTest, LifecycleOperations) {
  const uint64_t before = repo_.version();

  // Replace keeps the policy and authorizations, bumps the version.
  Status replaced = repo_.ReplaceDocument(
      "open.xml",
      "<laboratory><project name=\"Q\" type=\"internal\">"
      "<manager><fname>C</fname><lname>D</lname></manager>"
      "</project></laboratory>");
  ASSERT_TRUE(replaced.ok()) << replaced;
  EXPECT_GT(repo_.version(), before);
  EXPECT_EQ(repo_.PolicyOf("open.xml", {}).completeness,
            authz::CompletenessPolicy::kOpen);
  EXPECT_EQ(repo_.InstanceAuths("open.xml").size(), 1u);
  EXPECT_NE(repo_.FindDocument("open.xml"), nullptr);

  // Replacing with an invalid document fails and leaves the old one.
  Status bad = repo_.ReplaceDocument("open.xml",
                                     "<laboratory><bogus/></laboratory>");
  EXPECT_EQ(bad.code(), StatusCode::kValidationError);
  ASSERT_NE(repo_.FindDocument("open.xml"), nullptr);
  EXPECT_EQ(repo_.FindDocument("open.xml")
                ->root()
                ->GetElementsByTagName("project")
                .size(),
            1u);

  // Clearing authorizations empties the instance set only.
  ASSERT_TRUE(repo_.ClearInstanceAuths("open.xml").ok());
  EXPECT_TRUE(repo_.InstanceAuths("open.xml").empty());

  // Removal drops document + remaining authorizations.
  ASSERT_TRUE(repo_.RemoveDocument("closed.xml").ok());
  EXPECT_EQ(repo_.FindDocument("closed.xml"), nullptr);
  EXPECT_TRUE(repo_.InstanceAuths("closed.xml").empty());
  EXPECT_EQ(repo_.RemoveDocument("closed.xml").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(repo_.ReplaceDocument("closed.xml", "<a/>").code(),
            StatusCode::kNotFound);
}

TEST_F(PerDocumentPolicyTest, CacheInvalidatesOnRemovalAndReplace) {
  ServerConfig config;
  config.view_cache_capacity = 4;
  SecureDocumentServer server(&repo_, &users_, &groups_, config);
  ServerRequest request;
  request.ip = "1.2.3.4";
  request.sym = "h.example.com";
  request.uri = "open.xml";
  ServerResponse first = server.Handle(request);
  EXPECT_EQ(first.http_status, 200);

  ASSERT_TRUE(repo_
                  .ReplaceDocument("open.xml",
                                   "<laboratory><project name=\"Z\" "
                                   "type=\"public\"><manager>"
                                   "<fname>X</fname><lname>Y</lname>"
                                   "</manager></project></laboratory>")
                  .ok());
  ServerResponse second = server.Handle(request);
  EXPECT_NE(second.body, first.body);
  EXPECT_NE(second.body.find("name=\"Z\""), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace xmlsec
