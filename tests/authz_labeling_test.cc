#include <gtest/gtest.h>

#include "authz/labeling.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"

namespace xmlsec {
namespace authz {
namespace {

using xml::Document;
using xml::Node;

constexpr char kDoc[] = R"(<laboratory>
<project name="P1" type="internal">
<manager><fname>Ada</fname></manager>
<paper category="private"><title>T1</title></paper>
<paper category="public"><title>T2</title></paper>
</project>
<project name="P2" type="public">
<manager><fname>Alan</fname></manager>
<paper category="public"><title>T3</title></paper>
</project>
</laboratory>)";

class LabelingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto result = xml::ParseDocument(kDoc);
    ASSERT_TRUE(result.ok()) << result.status();
    doc_ = std::move(result).value();
    requester_ = {"Tom", "130.100.50.8", "infosys.bld1.it"};
    ASSERT_TRUE(groups_.AddMembership("Tom", "Foreign").ok());
  }

  /// Builds an instance-level authorization on the test document.
  Authorization Auth(std::string_view subject_ug, std::string_view path,
                     Sign sign, AuthType type) {
    Authorization auth;
    auth.subject = *Subject::Make(subject_ug, "*", "*");
    auth.object.uri = "doc.xml";
    auth.object.path = std::string(path);
    auth.sign = sign;
    auth.type = type;
    return auth;
  }

  LabelMap Label(const std::vector<Authorization>& instance,
                 const std::vector<Authorization>& schema = {},
                 PolicyOptions policy = {}) {
    TreeLabeler labeler(&groups_, policy);
    auto result = labeler.Label(*doc_, instance, schema, requester_, &stats_);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }

  /// Final sign of the unique node selected by `path`.
  TriSign SignAt(const LabelMap& labels, std::string_view path) {
    auto nodes = xpath::SelectXPath(path, doc_->root());
    EXPECT_TRUE(nodes.ok()) << path << ": " << nodes.status();
    EXPECT_EQ(nodes->size(), 1u) << path;
    return labels.FinalSign(nodes->front());
  }

  std::unique_ptr<Document> doc_;
  GroupStore groups_;
  Requester requester_;
  LabelingStats stats_;
};

TEST_F(LabelingTest, NoAuthorizationsMeansAllEpsilon) {
  LabelMap labels = Label({});
  EXPECT_EQ(SignAt(labels, "/laboratory"), TriSign::kEps);
  EXPECT_EQ(SignAt(labels, "//paper[@category=\"private\"]"), TriSign::kEps);
}

TEST_F(LabelingTest, RecursivePlusOnRootCoversEverything) {
  LabelMap labels = Label({Auth("Public", "", Sign::kPlus,
                                AuthType::kRecursive)});
  EXPECT_EQ(SignAt(labels, "/laboratory"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//project[1]"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//project[1]/@name"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//paper[@category=\"private\"]/title"),
            TriSign::kPlus);
}

TEST_F(LabelingTest, MostSpecificObjectOverridesPropagation) {
  // Everything readable, except private papers (paper Example 1 pattern).
  LabelMap labels = Label(
      {Auth("Public", "", Sign::kPlus, AuthType::kRecursive),
       Auth("Public", "//paper[./@category=\"private\"]", Sign::kMinus,
            AuthType::kRecursive)});
  EXPECT_EQ(SignAt(labels, "/laboratory"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//paper[@category=\"private\"]"),
            TriSign::kMinus);
  EXPECT_EQ(SignAt(labels, "//paper[@category=\"private\"]/title"),
            TriSign::kMinus);
  EXPECT_EQ(SignAt(labels, "//paper[@category=\"private\"]/@category"),
            TriSign::kMinus);
  // Sibling public paper untouched.
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[@category=\"public\"]"),
            TriSign::kPlus);
}

TEST_F(LabelingTest, LocalAppliesToAttributesNotChildren) {
  LabelMap labels = Label(
      {Auth("Public", "/laboratory/project[1]", Sign::kPlus,
            AuthType::kLocal)});
  EXPECT_EQ(SignAt(labels, "//project[1]"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//project[1]/@name"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//project[1]/@type"), TriSign::kPlus);
  // Children and their attributes are NOT covered by a local auth.
  EXPECT_EQ(SignAt(labels, "//project[1]/manager"), TriSign::kEps);
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[1]/@category"),
            TriSign::kEps);
}

TEST_F(LabelingTest, ExplicitAttributeAuthOverridesParentLocal) {
  LabelMap labels = Label(
      {Auth("Public", "/laboratory/project[1]", Sign::kPlus,
            AuthType::kLocal),
       Auth("Public", "/laboratory/project[1]/@type", Sign::kMinus,
            AuthType::kLocal)});
  EXPECT_EQ(SignAt(labels, "//project[1]/@name"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//project[1]/@type"), TriSign::kMinus);
}

TEST_F(LabelingTest, RecursiveAuthCoversAttributesDownTheTree) {
  LabelMap labels = Label(
      {Auth("Public", "/laboratory/project[2]", Sign::kPlus,
            AuthType::kRecursive)});
  EXPECT_EQ(SignAt(labels, "//project[2]/paper/@category"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[1]/@category"),
            TriSign::kEps);
}

TEST_F(LabelingTest, MostSpecificSubjectTakesPrecedence) {
  // Foreign (Tom's group) is denied, but Tom himself is permitted: the
  // more specific subject wins.
  LabelMap labels = Label(
      {Auth("Foreign", "//paper", Sign::kMinus, AuthType::kRecursive),
       Auth("Tom", "//paper", Sign::kPlus, AuthType::kRecursive)});
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[1]"), TriSign::kPlus);
}

TEST_F(LabelingTest, UncomparableSubjectsDenialsTakePrecedence) {
  ASSERT_TRUE(groups_.AddMembership("Tom", "Students").ok());
  LabelMap labels = Label(
      {Auth("Foreign", "//paper", Sign::kMinus, AuthType::kRecursive),
       Auth("Students", "//paper", Sign::kPlus, AuthType::kRecursive)});
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[1]"), TriSign::kMinus);
}

TEST_F(LabelingTest, UncomparableSubjectsPermissionsPolicy) {
  ASSERT_TRUE(groups_.AddMembership("Tom", "Students").ok());
  PolicyOptions policy;
  policy.conflict = ConflictPolicy::kPermissionsTakePrecedence;
  LabelMap labels = Label(
      {Auth("Foreign", "//paper", Sign::kMinus, AuthType::kRecursive),
       Auth("Students", "//paper", Sign::kPlus, AuthType::kRecursive)},
      {}, policy);
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[1]"), TriSign::kPlus);
}

TEST_F(LabelingTest, UncomparableSubjectsNothingPolicy) {
  ASSERT_TRUE(groups_.AddMembership("Tom", "Students").ok());
  PolicyOptions policy;
  policy.conflict = ConflictPolicy::kNothingTakesPrecedence;
  LabelMap labels = Label(
      {Auth("Foreign", "//paper", Sign::kMinus, AuthType::kRecursive),
       Auth("Students", "//paper", Sign::kPlus, AuthType::kRecursive)},
      {}, policy);
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[1]"), TriSign::kEps);
}

TEST_F(LabelingTest, NonApplicableAuthorizationsIgnored) {
  LabelMap labels = Label(
      {Auth("Admin", "", Sign::kPlus, AuthType::kRecursive),
       // Applicable group but wrong location:
       [&] {
         Authorization a = Auth("Foreign", "", Sign::kPlus,
                                AuthType::kRecursive);
         a.subject = *Subject::Make("Foreign", "150.*", "*");
         return a;
       }()});
  EXPECT_EQ(SignAt(labels, "/laboratory"), TriSign::kEps);
  EXPECT_EQ(stats_.applicable_instance_auths, 0);
}

TEST_F(LabelingTest, SchemaAuthorizationsPropagate) {
  std::vector<Authorization> schema = {
      Auth("Public", "//manager", Sign::kPlus, AuthType::kRecursive)};
  LabelMap labels = Label({}, schema);
  EXPECT_EQ(SignAt(labels, "//project[1]/manager"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//project[1]/manager/fname"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[1]"), TriSign::kEps);
}

TEST_F(LabelingTest, InstanceOverridesSchema) {
  std::vector<Authorization> schema = {
      Auth("Public", "//paper", Sign::kPlus, AuthType::kRecursive)};
  LabelMap labels = Label(
      {Auth("Public", "//paper[./@category=\"private\"]", Sign::kMinus,
            AuthType::kRecursive)},
      schema);
  EXPECT_EQ(SignAt(labels, "//paper[@category=\"private\"]"),
            TriSign::kMinus);
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[@category=\"public\"]"),
            TriSign::kPlus);
}

TEST_F(LabelingTest, WeakInstanceYieldsToSchema) {
  // Weak instance permission, schema denial on the same element: the
  // schema wins (paper §5: weak authorizations are overridden by
  // schema-level ones).
  std::vector<Authorization> schema = {
      Auth("Public", "//paper[./@category=\"private\"]", Sign::kMinus,
           AuthType::kRecursive)};
  LabelMap labels = Label(
      {Auth("Public", "//paper", Sign::kPlus, AuthType::kRecursiveWeak)},
      schema);
  EXPECT_EQ(SignAt(labels, "//paper[@category=\"private\"]"),
            TriSign::kMinus);
  // Where the schema is silent, the weak authorization applies.
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[@category=\"public\"]"),
            TriSign::kPlus);
}

TEST_F(LabelingTest, InheritedRecursiveBeatsOwnSchemaSign) {
  // A non-weak recursive sign propagated from an ancestor has priority
  // over a schema-level sign on the node itself (first_def order
  // L,R,LD,RD,LW,RW).
  std::vector<Authorization> schema = {
      Auth("Public", "//paper", Sign::kPlus, AuthType::kRecursive)};
  LabelMap labels = Label(
      {Auth("Public", "/laboratory/project[1]", Sign::kMinus,
            AuthType::kRecursive)},
      schema);
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[1]"), TriSign::kMinus);
}

TEST_F(LabelingTest, WeakOverridesPropagationButYieldsPriority) {
  // Child declares a weak recursive permission; parent propagates a
  // strong denial.  The child's own (more specific object) declaration
  // stops the propagation pair, so the weak plus applies.
  LabelMap labels = Label(
      {Auth("Public", "/laboratory", Sign::kMinus, AuthType::kRecursive),
       Auth("Public", "/laboratory/project[1]", Sign::kPlus,
            AuthType::kRecursiveWeak)});
  EXPECT_EQ(SignAt(labels, "/laboratory"), TriSign::kMinus);
  EXPECT_EQ(SignAt(labels, "//project[1]"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//project[1]/paper[1]"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//project[2]"), TriSign::kMinus);
}

TEST_F(LabelingTest, TextNodesFollowTheirElement) {
  LabelMap labels = Label(
      {Auth("Public", "//title", Sign::kPlus, AuthType::kRecursive)});
  auto titles = xpath::SelectXPath("//title/text()", doc_->root());
  ASSERT_TRUE(titles.ok());
  ASSERT_EQ(titles->size(), 3u);
  for (const Node* text : *titles) {
    EXPECT_EQ(labels.FinalSign(text), TriSign::kPlus);
  }
}

TEST_F(LabelingTest, AttributeTargetedRecursiveActsAsLocal) {
  LabelMap labels = Label(
      {Auth("Public", "//project/@name", Sign::kPlus,
            AuthType::kRecursive)});
  EXPECT_EQ(SignAt(labels, "//project[1]/@name"), TriSign::kPlus);
  EXPECT_EQ(SignAt(labels, "//project[1]"), TriSign::kEps);
}

TEST_F(LabelingTest, StatsAreFilled) {
  Label({Auth("Public", "//paper", Sign::kPlus, AuthType::kRecursive),
         Auth("Admin", "//paper", Sign::kMinus, AuthType::kRecursive)});
  EXPECT_EQ(stats_.applicable_instance_auths, 1);
  EXPECT_EQ(stats_.xpath_evaluations, 1);
  EXPECT_EQ(stats_.target_nodes, 3);
  EXPECT_EQ(stats_.labeled_nodes, doc_->node_count());
}

TEST_F(LabelingTest, NaiveLabelerAgreesOnPaperScenario) {
  std::vector<Authorization> instance = {
      Auth("Public", "", Sign::kPlus, AuthType::kRecursive),
      Auth("Foreign", "//paper[./@category=\"private\"]", Sign::kMinus,
           AuthType::kRecursive),
      Auth("Tom", "//manager", Sign::kPlus, AuthType::kLocal)};
  std::vector<Authorization> schema = {
      Auth("Public", "//fname", Sign::kMinus, AuthType::kRecursive)};

  TreeLabeler labeler(&groups_, PolicyOptions{});
  auto fast = labeler.Label(*doc_, instance, schema, requester_);
  ASSERT_TRUE(fast.ok()) << fast.status();
  auto naive = LabelTreeNaive(*doc_, instance, schema, requester_, groups_,
                              PolicyOptions{});
  ASSERT_TRUE(naive.ok()) << naive.status();
  xml::ForEachNode(static_cast<const Node*>(doc_.get()),
                   [&](const Node* node) {
                     EXPECT_EQ(fast->FinalSign(node), naive->FinalSign(node))
                         << "node " << node->NodeName() << " order "
                         << node->doc_order();
                   });
}

TEST_F(LabelingTest, FirstDefSemantics) {
  EXPECT_EQ(FirstDef({TriSign::kEps, TriSign::kMinus, TriSign::kPlus}),
            TriSign::kMinus);
  EXPECT_EQ(FirstDef({TriSign::kEps, TriSign::kEps}), TriSign::kEps);
  EXPECT_EQ(FirstDef({TriSign::kPlus}), TriSign::kPlus);
  EXPECT_EQ(FirstDef({}), TriSign::kEps);
}

TEST_F(LabelingTest, ValidityWindowFiltersAuthorizations) {
  Authorization timed = Auth("Public", "", Sign::kPlus,
                             AuthType::kRecursive);
  timed.valid_from = 100;
  timed.valid_until = 200;

  requester_.time = 150;
  LabelMap inside = Label({timed});
  EXPECT_EQ(SignAt(inside, "/laboratory"), TriSign::kPlus);

  requester_.time = 50;
  LabelMap before = Label({timed});
  EXPECT_EQ(SignAt(before, "/laboratory"), TriSign::kEps);

  requester_.time = 201;
  LabelMap after = Label({timed});
  EXPECT_EQ(SignAt(after, "/laboratory"), TriSign::kEps);
}

TEST_F(LabelingTest, WriteAuthorizationsInvisibleToReadLabeling) {
  Authorization write_auth = Auth("Public", "", Sign::kPlus,
                                  AuthType::kRecursive);
  write_auth.action = Action::kWrite;
  LabelMap labels = Label({write_auth});
  EXPECT_EQ(SignAt(labels, "/laboratory"), TriSign::kEps);
}

TEST_F(LabelingTest, SelfReferentialAuthorizationViaUserVariable) {
  // One policy line covers every user: each sees papers whose title
  // equals their own user name (stand-in for an @owner attribute).
  auto doc = xml::ParseDocument(
      "<laboratory>"
      "<paper category=\"public\"><title>Tom</title></paper>"
      "<paper category=\"public\"><title>Ann</title></paper>"
      "</laboratory>");
  ASSERT_TRUE(doc.ok());
  doc_ = std::move(doc).value();

  std::vector<Authorization> auths = {
      Auth("Public", "//paper[title=$user]", Sign::kPlus,
           AuthType::kRecursive)};

  requester_.user = "Tom";
  LabelMap tom = Label(auths);
  EXPECT_EQ(SignAt(tom, "//paper[1]"), TriSign::kPlus);
  EXPECT_EQ(SignAt(tom, "//paper[2]"), TriSign::kEps);

  requester_.user = "Ann";
  // Ann is not in the Foreign group fixture; Public still matches.
  LabelMap ann = Label(auths);
  EXPECT_EQ(SignAt(ann, "//paper[1]"), TriSign::kEps);
  EXPECT_EQ(SignAt(ann, "//paper[2]"), TriSign::kPlus);
}

TEST_F(LabelingTest, InvalidPathExpressionSurfacesError) {
  TreeLabeler labeler(&groups_, PolicyOptions{});
  std::vector<Authorization> bad = {
      Auth("Public", "/laboratory[", Sign::kPlus, AuthType::kRecursive)};
  auto result = labeler.Label(*doc_, bad, {}, requester_);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
