#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "server/document_server.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/tcp_listener.h"
#include "server/user_directory.h"
#include "workload/docgen.h"
#include "xml/serializer.h"

namespace xmlsec {
namespace server {
namespace {

// The registry-backed listener tallies are compiled out in the
// -DXMLSEC_METRICS_NOOP=ON ablation build; behavioral assertions still
// run there, exact-count assertions are gated on this flag.
#ifdef XMLSEC_METRICS_NOOP
constexpr bool kTalliesEnabled = false;
#else
constexpr bool kTalliesEnabled = true;
#endif

class TcpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        repo_.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
    ASSERT_TRUE(repo_
                    .AddDocument("CSlab.xml",
                                 "<laboratory>"
                                 "<project name=\"P\" type=\"public\">"
                                 "<manager><fname>A</fname>"
                                 "<lname>B</lname></manager>"
                                 "<paper category=\"private\">"
                                 "<title>Secret</title></paper>"
                                 "<paper category=\"public\">"
                                 "<title>Known</title></paper>"
                                 "</project></laboratory>",
                                 "laboratory.xml")
                    .ok());
    ASSERT_TRUE(users_.CreateUser("tom", "secret").ok());
    ASSERT_TRUE(groups_.AddMembership("tom", "Foreign").ok());
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl>"
                        "<authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" type=\"RW\"/>"
                        "<authorization subject=\"Foreign\" "
                        "object=\"laboratory.xml\" "
                        "path='//paper[./@category=&quot;private&quot;]' "
                        "sign=\"-\" type=\"R\"/>"
                        "</xacl>")
                    .ok());
    server_ = std::make_unique<SecureDocumentServer>(&repo_, &users_,
                                                     &groups_);
    ASSERT_TRUE(listener_ == nullptr);
    listener_ = std::make_unique<TcpHttpListener>(server_.get(),
                                                  "client.lab.example");
    Status started = listener_->Start(0);
    ASSERT_TRUE(started.ok()) << started;
    ASSERT_GT(listener_->port(), 0);
  }

  void TearDown() override { listener_->Stop(); }

  Repository repo_;
  UserDirectory users_;
  authz::GroupStore groups_;
  std::unique_ptr<SecureDocumentServer> server_;
  std::unique_ptr<TcpHttpListener> listener_;
};

TEST_F(TcpServerTest, ServesViewOverRealSocket) {
  std::string request =
      "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
      Base64Encode("tom:secret") + "\r\n\r\n";
  auto response = FetchHttp(listener_->port(), request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response->find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response->find("Known"), std::string::npos);
  // The schema denial for Foreign holds across the wire.
  EXPECT_EQ(response->find("Secret"), std::string::npos);
  if (kTalliesEnabled) EXPECT_EQ(listener_->requests_served(), 1);
}

TEST_F(TcpServerTest, AnonymousPeerAddressIsUsed) {
  // Anonymous loopback client: 127.0.0.1 / client.lab.example.
  auto response =
      FetchHttp(listener_->port(), "GET /CSlab.xml HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status();
  // anonymous is not in Foreign: the private paper is visible.
  EXPECT_NE(response->find("Secret"), std::string::npos);
}

TEST_F(TcpServerTest, MalformedRequestGets400) {
  auto response = FetchHttp(listener_->port(), "NOISE\r\n\r\n");
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("400"), std::string::npos);
}

TEST_F(TcpServerTest, SequentialClients) {
  for (int i = 0; i < 8; ++i) {
    auto response =
        FetchHttp(listener_->port(), "GET /CSlab.xml HTTP/1.0\r\n\r\n");
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_NE(response->find("200 OK"), std::string::npos);
  }
  if (kTalliesEnabled) EXPECT_EQ(listener_->requests_served(), 8);
}

TEST_F(TcpServerTest, ConcurrentClients) {
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &responses, i] {
      auto response =
          FetchHttp(listener_->port(), "GET /CSlab.xml HTTP/1.0\r\n\r\n");
      if (response.ok()) responses[static_cast<size_t>(i)] = *response;
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("200 OK"), std::string::npos);
  }
}

TEST_F(TcpServerTest, HealthzReportsReadyAndCounters) {
  auto health = FetchHttp(listener_->port(), "GET /healthz HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_NE(health->find("200"), std::string::npos);
  EXPECT_NE(health->find("\"status\":\"ready\""), std::string::npos);
  EXPECT_NE(health->find("\"workers\":"), std::string::npos);
  EXPECT_NE(health->find("\"shed\":"), std::string::npos);
  if (kTalliesEnabled) EXPECT_EQ(listener_->health_checks(), 1);
  // Health probes are not document requests.
  EXPECT_EQ(listener_->requests_served(), 0);
}

TEST_F(TcpServerTest, WorkerPoolHandlesManyConcurrentClients) {
  // More clients than workers: the queue absorbs the excess and every
  // request still completes with a full, well-terminated view.
  constexpr int kClients = 16;
  std::vector<std::thread> threads;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &responses, i] {
      auto response =
          FetchHttp(listener_->port(), "GET /CSlab.xml HTTP/1.0\r\n\r\n");
      if (response.ok()) responses[static_cast<size_t>(i)] = *response;
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("</laboratory>"), std::string::npos);
  }
  if (kTalliesEnabled) EXPECT_EQ(listener_->requests_served(), kClients);
  EXPECT_EQ(listener_->in_flight(), 0);
}

TEST_F(TcpServerTest, LargeViewIsWrittenCompletely) {
  // A multi-hundred-KiB view must survive short writes on the socket
  // path: the response is complete and byte-exact per Content-Length.
  auto big = workload::GenerateLaboratory(/*projects=*/400,
                                          /*papers_per_project=*/6,
                                          /*seed=*/7);
  std::string big_text = xml::SerializeDocument(*big);
  ASSERT_GT(big_text.size(), 100u * 1024);
  ASSERT_TRUE(repo_.AddDocument("big.xml", big_text, "laboratory.xml").ok());
  ASSERT_TRUE(repo_.AddXacl(
                      "<xacl><authorization subject=\"Public\" "
                      "object=\"big.xml\" path=\"/laboratory\" "
                      "sign=\"+\" type=\"RW\"/></xacl>")
                  .ok());
  auto response =
      FetchHttp(listener_->port(), "GET /big.xml HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response->find("200 OK"), std::string::npos);
  size_t header_end = response->find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  std::string body = response->substr(header_end + 4);
  EXPECT_GT(body.size(), 100u * 1024);
  // Body arrived whole, not truncated mid-write.
  size_t length_pos = response->find("Content-Length: ");
  ASSERT_NE(length_pos, std::string::npos);
  size_t declared = std::stoul(response->substr(length_pos + 16));
  EXPECT_EQ(body.size(), declared);
  EXPECT_NE(body.rfind("</laboratory>"), std::string::npos);
}

TEST_F(TcpServerTest, StopIsIdempotentAndRestartable) {
  listener_->Stop();
  listener_->Stop();
  // A fresh listener can bind again.
  TcpHttpListener second(server_.get());
  ASSERT_TRUE(second.Start(0).ok());
  auto response = FetchHttp(second.port(), "GET /CSlab.xml HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("200 OK"), std::string::npos);
  second.Stop();
}

}  // namespace
}  // namespace server
}  // namespace xmlsec
