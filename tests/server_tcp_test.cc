#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "server/document_server.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/tcp_listener.h"
#include "server/user_directory.h"
#include "workload/docgen.h"
#include "xml/serializer.h"

namespace xmlsec {
namespace server {
namespace {

// The registry-backed listener tallies are compiled out in the
// -DXMLSEC_METRICS_NOOP=ON ablation build; behavioral assertions still
// run there, exact-count assertions are gated on this flag.
#ifdef XMLSEC_METRICS_NOOP
constexpr bool kTalliesEnabled = false;
#else
constexpr bool kTalliesEnabled = true;
#endif

/// Both serving modes run the whole suite: param is
/// `ListenerConfig::event_loops` (0 = legacy bounded worker pool,
/// 4 = per-core epoll event loops).
class TcpServerTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        repo_.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
    ASSERT_TRUE(repo_
                    .AddDocument("CSlab.xml",
                                 "<laboratory>"
                                 "<project name=\"P\" type=\"public\">"
                                 "<manager><fname>A</fname>"
                                 "<lname>B</lname></manager>"
                                 "<paper category=\"private\">"
                                 "<title>Secret</title></paper>"
                                 "<paper category=\"public\">"
                                 "<title>Known</title></paper>"
                                 "</project></laboratory>",
                                 "laboratory.xml")
                    .ok());
    ASSERT_TRUE(users_.CreateUser("tom", "secret").ok());
    ASSERT_TRUE(groups_.AddMembership("tom", "Foreign").ok());
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl>"
                        "<authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" type=\"RW\"/>"
                        "<authorization subject=\"Foreign\" "
                        "object=\"laboratory.xml\" "
                        "path='//paper[./@category=&quot;private&quot;]' "
                        "sign=\"-\" type=\"R\"/>"
                        "</xacl>")
                    .ok());
    server_ = std::make_unique<SecureDocumentServer>(&repo_, &users_,
                                                     &groups_);
    ListenerConfig config;
    config.event_loops = GetParam();
    ASSERT_TRUE(listener_ == nullptr);
    listener_ = std::make_unique<TcpHttpListener>(
        server_.get(), "client.lab.example", config);
    Status started = listener_->Start(0);
    ASSERT_TRUE(started.ok()) << started;
    ASSERT_GT(listener_->port(), 0);
  }

  void TearDown() override { listener_->Stop(); }

  /// Event loops close a connection only after observing the client's
  /// FIN (graceful half-close drain), so "no connection left open" is
  /// eventually-true, not instantly-true, once the clients returned.
  void WaitForQuiescence() {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (listener_->in_flight() != 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  }

  Repository repo_;
  UserDirectory users_;
  authz::GroupStore groups_;
  std::unique_ptr<SecureDocumentServer> server_;
  std::unique_ptr<TcpHttpListener> listener_;
};

TEST_P(TcpServerTest, ServesViewOverRealSocket) {
  std::string request =
      "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
      Base64Encode("tom:secret") + "\r\n\r\n";
  auto response = FetchHttp(listener_->port(), request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response->find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response->find("Known"), std::string::npos);
  // The schema denial for Foreign holds across the wire.
  EXPECT_EQ(response->find("Secret"), std::string::npos);
  if (kTalliesEnabled) EXPECT_EQ(listener_->requests_served(), 1);
}

TEST_P(TcpServerTest, AnonymousPeerAddressIsUsed) {
  // Anonymous loopback client: 127.0.0.1 / client.lab.example.
  auto response =
      FetchHttp(listener_->port(), "GET /CSlab.xml HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status();
  // anonymous is not in Foreign: the private paper is visible.
  EXPECT_NE(response->find("Secret"), std::string::npos);
}

TEST_P(TcpServerTest, MalformedRequestGets400) {
  auto response = FetchHttp(listener_->port(), "NOISE\r\n\r\n");
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("400"), std::string::npos);
}

TEST_P(TcpServerTest, SequentialClients) {
  for (int i = 0; i < 8; ++i) {
    auto response =
        FetchHttp(listener_->port(), "GET /CSlab.xml HTTP/1.0\r\n\r\n");
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_NE(response->find("200 OK"), std::string::npos);
  }
  if (kTalliesEnabled) EXPECT_EQ(listener_->requests_served(), 8);
}

TEST_P(TcpServerTest, ConcurrentClients) {
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &responses, i] {
      auto response =
          FetchHttp(listener_->port(), "GET /CSlab.xml HTTP/1.0\r\n\r\n");
      if (response.ok()) responses[static_cast<size_t>(i)] = *response;
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("200 OK"), std::string::npos);
  }
}

TEST_P(TcpServerTest, HealthzReportsReadyAndCounters) {
  auto health = FetchHttp(listener_->port(), "GET /healthz HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_NE(health->find("200"), std::string::npos);
  EXPECT_NE(health->find("\"status\":\"ready\""), std::string::npos);
  EXPECT_NE(health->find("\"workers\":"), std::string::npos);
  EXPECT_NE(health->find("\"event_loops\":" +
                         std::to_string(GetParam())),
            std::string::npos);
  EXPECT_NE(health->find("\"shed\":"), std::string::npos);
  if (kTalliesEnabled) EXPECT_EQ(listener_->health_checks(), 1);
  // Health probes are not document requests.
  EXPECT_EQ(listener_->requests_served(), 0);
}

TEST_P(TcpServerTest, WorkerPoolHandlesManyConcurrentClients) {
  // More clients than workers (or loops): the queue/loop tables absorb
  // the excess and every request still completes with a full,
  // well-terminated view.
  constexpr int kClients = 16;
  std::vector<std::thread> threads;
  std::vector<std::string> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, &responses, i] {
      auto response =
          FetchHttp(listener_->port(), "GET /CSlab.xml HTTP/1.0\r\n\r\n");
      if (response.ok()) responses[static_cast<size_t>(i)] = *response;
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("</laboratory>"), std::string::npos);
  }
  if (kTalliesEnabled) EXPECT_EQ(listener_->requests_served(), kClients);
  WaitForQuiescence();
  EXPECT_EQ(listener_->in_flight(), 0);
}

TEST_P(TcpServerTest, LargeViewIsWrittenCompletely) {
  // A multi-hundred-KiB view must survive short writes on the socket
  // path: the response is complete and byte-exact per Content-Length.
  auto big = workload::GenerateLaboratory(/*projects=*/400,
                                          /*papers_per_project=*/6,
                                          /*seed=*/7);
  std::string big_text = xml::SerializeDocument(*big);
  ASSERT_GT(big_text.size(), 100u * 1024);
  ASSERT_TRUE(repo_.AddDocument("big.xml", big_text, "laboratory.xml").ok());
  ASSERT_TRUE(repo_.AddXacl(
                      "<xacl><authorization subject=\"Public\" "
                      "object=\"big.xml\" path=\"/laboratory\" "
                      "sign=\"+\" type=\"RW\"/></xacl>")
                  .ok());
  auto response =
      FetchHttp(listener_->port(), "GET /big.xml HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_NE(response->find("200 OK"), std::string::npos);
  size_t header_end = response->find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  std::string body = response->substr(header_end + 4);
  EXPECT_GT(body.size(), 100u * 1024);
  // Body arrived whole, not truncated mid-write.
  size_t length_pos = response->find("Content-Length: ");
  ASSERT_NE(length_pos, std::string::npos);
  size_t declared = std::stoul(response->substr(length_pos + 16));
  EXPECT_EQ(body.size(), declared);
  EXPECT_NE(body.rfind("</laboratory>"), std::string::npos);
}

TEST_P(TcpServerTest, StopIsIdempotentAndRestartable) {
  listener_->Stop();
  listener_->Stop();
  // A fresh listener in the same mode can bind again.
  ListenerConfig config;
  config.event_loops = GetParam();
  TcpHttpListener second(server_.get(), "localhost", config);
  ASSERT_TRUE(second.Start(0).ok());
  auto response = FetchHttp(second.port(), "GET /CSlab.xml HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("200 OK"), std::string::npos);
  second.Stop();
}

INSTANTIATE_TEST_SUITE_P(Modes, TcpServerTest, ::testing::Values(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? "LegacyPool"
                                                  : "EventLoops";
                         });

// --- Deterministic event-loop timing ------------------------------------
//
// The event loops take their time source from `ListenerConfig::clock`:
// these tests install a manual clock, advance it, and call
// `TcpHttpListener::Wake()` — every deadline behavior (408 slowloris,
// slow-reader write-timeout close, Stop() drain cutoff) is asserted
// without a single wall-clock sleep, so the suite runs in milliseconds
// regardless of how generous the configured deadlines are.

class ManualClock {
 public:
  std::chrono::steady_clock::time_point Now() const {
    return base_ + std::chrono::milliseconds(
                       offset_ms_.load(std::memory_order_acquire));
  }
  void Advance(int64_t ms) {
    offset_ms_.fetch_add(ms, std::memory_order_acq_rel);
  }

 private:
  const std::chrono::steady_clock::time_point base_ =
      std::chrono::steady_clock::now();
  std::atomic<int64_t> offset_ms_{0};
};

/// Raw blocking client socket (the deadline scenarios need partial
/// sends and unread responses, which FetchHttp cannot express).
class RawSocket {
 public:
  explicit RawSocket(uint16_t port, int rcvbuf = 0) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (rcvbuf > 0) {
      // Before connect so the advertised window honors it.
      setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        fd_ >= 0 &&
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawSocket() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n =
          send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;
      sent += static_cast<size_t>(n);
    }
  }

  /// Blocks until the server starts answering (bytes become readable)
  /// without consuming them.
  bool WaitReadable() {
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
      int ready = poll(&pfd, 1, 10'000);
      if (ready < 0 && errno == EINTR) continue;
      return ready > 0;
    }
  }

  std::string ReadAll() {
    std::string out;
    char buffer[4096];
    for (;;) {
      ssize_t n = read(fd_, buffer, sizeof(buffer));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      out.append(buffer, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class EventLoopTimingTest : public ::testing::Test {
 protected:
  void StartListener(ListenerConfig config) {
    ASSERT_TRUE(
        repo_.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
    ASSERT_TRUE(repo_
                    .AddDocument("CSlab.xml",
                                 "<laboratory><project name=\"P\" "
                                 "type=\"public\"><manager><fname>A</fname>"
                                 "<lname>B</lname></manager>"
                                 "</project></laboratory>",
                                 "laboratory.xml")
                    .ok());
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl><authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" type=\"RW\"/></xacl>")
                    .ok());
    server_ = std::make_unique<SecureDocumentServer>(&repo_, &users_,
                                                     &groups_);
    config.event_loops = 1;
    config.clock = [this] { return clock_.Now(); };
    listener_ = std::make_unique<TcpHttpListener>(server_.get(), "localhost",
                                                  config);
    Status started = listener_->Start(0);
    ASSERT_TRUE(started.ok()) << started;
  }

  void TearDown() override {
    if (listener_ != nullptr) listener_->Stop();
  }

  /// Spins (yield, not sleep) until the loop has adopted `n`
  /// connections — the moment its deadlines are armed.
  void WaitForInFlight(int n) {
    while (listener_->in_flight() < n) std::this_thread::yield();
  }

  Repository repo_;
  UserDirectory users_;
  authz::GroupStore groups_;
  ManualClock clock_;
  std::unique_ptr<SecureDocumentServer> server_;
  std::unique_ptr<TcpHttpListener> listener_;
};

TEST_F(EventLoopTimingTest, SlowlorisGets408OnManualClock) {
  ListenerConfig config;
  config.read_timeout_ms = 30'000;  // Generous — and yet the test is fast.
  StartListener(config);

  RawSocket client(listener_->port());
  ASSERT_TRUE(client.connected());
  client.Send("GET /CSlab.xml HT");  // ... and then never finishes.
  WaitForInFlight(1);

  // One tick past the read deadline: the loop answers 408 and closes.
  clock_.Advance(30'001);
  listener_->Wake();
  std::string response = client.ReadAll();
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  if (kTalliesEnabled) EXPECT_EQ(listener_->read_timeouts(), 1);
}

TEST_F(EventLoopTimingTest, SlowReaderIsDroppedAtWriteDeadline) {
  if (!kTalliesEnabled) {
    // The advance-until-armed loop observes the write_timeouts counter,
    // which the ablation build compiles out.
    GTEST_SKIP() << "counters compiled out in the ablation build";
  }
  ListenerConfig config;
  config.read_timeout_ms = 3'600'000;  // Only the write deadline may fire.
  config.write_timeout_ms = 30'000;
  // Pin the server-side socket buffer: without this, loopback
  // auto-tuning absorbs the whole response and the non-blocking write
  // never parks on EPOLLOUT.
  config.so_sndbuf = 4096;
  StartListener(config);

  // A response far larger than the sum of a small receive window and the
  // server's send buffer, so the non-blocking write parks on EPOLLOUT.
  auto big = workload::GenerateLaboratory(/*projects=*/400,
                                          /*papers_per_project=*/6,
                                          /*seed=*/7);
  std::string big_text = xml::SerializeDocument(*big);
  ASSERT_TRUE(repo_.AddDocument("big.xml", big_text, "laboratory.xml").ok());
  ASSERT_TRUE(repo_.AddXacl(
                      "<xacl><authorization subject=\"Public\" "
                      "object=\"big.xml\" path=\"/laboratory\" "
                      "sign=\"+\" type=\"RW\"/></xacl>")
                  .ok());
  // A fast reader sees the full response; the slow reader below must
  // receive strictly less before the server cuts it off.
  auto full = FetchHttp(listener_->port(), "GET /big.xml HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(full.ok());
  const size_t full_size = full->size();
  ASSERT_GT(full_size, 100u * 1024);

  RawSocket slow(listener_->port(), /*rcvbuf=*/4096);
  ASSERT_TRUE(slow.connected());
  slow.Send("GET /big.xml HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(slow.WaitReadable());  // Response under way; never read it.

  // Tick the clock until the armed write deadline fires (the first
  // advance past arming suffices; the loop tolerates the race where the
  // deadline is armed after an advance).
  while (kTalliesEnabled && listener_->write_timeouts() == 0) {
    clock_.Advance(30'001);
    listener_->Wake();
    std::this_thread::yield();
  }
  std::string got = slow.ReadAll();  // Drains the buffer, then sees EOF.
  EXPECT_LT(got.size(), full_size) << "slow reader received a full response";
  if (kTalliesEnabled) EXPECT_EQ(listener_->write_timeouts(), 1);
}

TEST_F(EventLoopTimingTest, StopForceClosesAtDrainDeadlineOnManualClock) {
  ListenerConfig config;
  config.read_timeout_ms = 3'600'000;  // Only the drain deadline may fire.
  config.drain_timeout_ms = 30'000;
  StartListener(config);

  RawSocket staller(listener_->port());
  ASSERT_TRUE(staller.connected());
  staller.Send("GET /CS");  // Head never completes; connection stays open.
  WaitForInFlight(1);

  // Stop() blocks until the loop drains; with the connection stalled
  // only the drain deadline can release it.  The loop closes its listen
  // socket in the same iteration it arms the drain deadline, so "new
  // connections are refused" is the observable signal that exactly one
  // clock tick past the deadline now suffices.
  const uint16_t port = listener_->port();
  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    listener_->Stop();
    stopped.store(true);
  });
  while (RawSocket(port).connected() && !stopped.load()) {
    std::this_thread::yield();
  }
  clock_.Advance(30'001);
  listener_->Wake();
  stopper.join();
  // The stalled connection was force-closed under the client.
  EXPECT_EQ(staller.ReadAll(), "");
  EXPECT_EQ(listener_->in_flight(), 0);
}

}  // namespace
}  // namespace server
}  // namespace xmlsec
