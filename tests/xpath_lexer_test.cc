#include <gtest/gtest.h>

#include "xpath/lexer.h"

namespace xmlsec {
namespace xpath {
namespace {

std::vector<Token> MustTokenize(std::string_view text) {
  auto result = Tokenize(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

std::vector<TokenKind> Kinds(std::string_view text) {
  std::vector<TokenKind> kinds;
  for (const Token& t : MustTokenize(text)) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.back(), TokenKind::kEnd);
  kinds.pop_back();
  return kinds;
}

TEST(XPathLexerTest, SimplePath) {
  EXPECT_EQ(Kinds("/a/b"),
            (std::vector<TokenKind>{TokenKind::kSlash, TokenKind::kName,
                                    TokenKind::kSlash, TokenKind::kName}));
}

TEST(XPathLexerTest, DoubleSlashAndAt) {
  EXPECT_EQ(Kinds("//a/@b"),
            (std::vector<TokenKind>{TokenKind::kDoubleSlash, TokenKind::kName,
                                    TokenKind::kSlash, TokenKind::kAt,
                                    TokenKind::kName}));
}

TEST(XPathLexerTest, DotsAndAxes) {
  EXPECT_EQ(Kinds("./..//ancestor::x"),
            (std::vector<TokenKind>{
                TokenKind::kDot, TokenKind::kSlash, TokenKind::kDotDot,
                TokenKind::kDoubleSlash, TokenKind::kName,
                TokenKind::kAxisSep, TokenKind::kName}));
}

TEST(XPathLexerTest, StarDisambiguation) {
  // Leading: wildcard.  After an operand: multiplication.
  auto first = MustTokenize("*");
  EXPECT_EQ(first[0].kind, TokenKind::kStar);
  auto expr = MustTokenize("2 * 3");
  EXPECT_EQ(expr[1].kind, TokenKind::kOpMul);
  auto path = MustTokenize("a/*");
  EXPECT_EQ(path[2].kind, TokenKind::kStar);
  auto mult = MustTokenize("a * b");
  EXPECT_EQ(mult[1].kind, TokenKind::kOpMul);
}

TEST(XPathLexerTest, WordOperatorDisambiguation) {
  // "and" after operand is an operator; leading it is a name.
  auto expr = MustTokenize("a and b");
  EXPECT_EQ(expr[1].kind, TokenKind::kOpAnd);
  auto name = MustTokenize("and");
  EXPECT_EQ(name[0].kind, TokenKind::kName);
  EXPECT_EQ(name[0].text, "and");
  auto div = MustTokenize("6 div 2 mod 2");
  EXPECT_EQ(div[1].kind, TokenKind::kOpDiv);
  EXPECT_EQ(div[3].kind, TokenKind::kOpMod);
  auto or_tok = MustTokenize("x or y");
  EXPECT_EQ(or_tok[1].kind, TokenKind::kOpOr);
}

TEST(XPathLexerTest, Literals) {
  auto toks = MustTokenize("\"double\" 'single'");
  EXPECT_EQ(toks[0].kind, TokenKind::kLiteral);
  EXPECT_EQ(toks[0].text, "double");
  EXPECT_EQ(toks[1].kind, TokenKind::kLiteral);
  EXPECT_EQ(toks[1].text, "single");
}

TEST(XPathLexerTest, Numbers) {
  auto toks = MustTokenize("42 3.5 .25");
  EXPECT_EQ(toks[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(toks[0].number, 42);
  EXPECT_DOUBLE_EQ(toks[1].number, 3.5);
  EXPECT_DOUBLE_EQ(toks[2].number, 0.25);
}

TEST(XPathLexerTest, ComparisonOperators) {
  EXPECT_EQ(Kinds("a=b"), (std::vector<TokenKind>{TokenKind::kName,
                                                  TokenKind::kOpEq,
                                                  TokenKind::kName}));
  EXPECT_EQ(Kinds("a!=b")[1], TokenKind::kOpNeq);
  EXPECT_EQ(Kinds("a<b")[1], TokenKind::kOpLt);
  EXPECT_EQ(Kinds("a<=b")[1], TokenKind::kOpLe);
  EXPECT_EQ(Kinds("a>b")[1], TokenKind::kOpGt);
  EXPECT_EQ(Kinds("a>=b")[1], TokenKind::kOpGe);
}

TEST(XPathLexerTest, HyphenatedNamesVsMinus) {
  auto name = MustTokenize("starts-with");
  EXPECT_EQ(name[0].kind, TokenKind::kName);
  EXPECT_EQ(name[0].text, "starts-with");
  auto minus = MustTokenize("a - b");
  EXPECT_EQ(minus[1].kind, TokenKind::kOpMinus);
  auto tight = MustTokenize("1-2");
  EXPECT_EQ(tight[1].kind, TokenKind::kOpMinus);
}

TEST(XPathLexerTest, PredicateBrackets) {
  EXPECT_EQ(Kinds("a[1]"),
            (std::vector<TokenKind>{TokenKind::kName, TokenKind::kLBracket,
                                    TokenKind::kNumber,
                                    TokenKind::kRBracket}));
}

TEST(XPathLexerTest, UnionAndParens) {
  EXPECT_EQ(Kinds("(a|b)"),
            (std::vector<TokenKind>{TokenKind::kLParen, TokenKind::kName,
                                    TokenKind::kUnion, TokenKind::kName,
                                    TokenKind::kRParen}));
}

TEST(XPathLexerTest, Errors) {
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a : b").ok());
  EXPECT_FALSE(Tokenize("#").ok());
}

TEST(XPathLexerTest, OffsetsRecorded) {
  auto toks = MustTokenize("ab cd");
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 3u);
}

}  // namespace
}  // namespace xpath
}  // namespace xmlsec
