#include <gtest/gtest.h>

#include "authz/processor.h"
#include "authz/xacl.h"
#include "workload/docgen.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/validator.h"

namespace xmlsec {
namespace authz {
namespace {

using xml::Document;

/// The paper's CSlab.xml (Fig. 3a, reconstructed from the running
/// example): an instance of the laboratory DTD of Fig. 1.
constexpr char kCSlab[] =
    "<laboratory>"
    "<project name=\"Access Models\" type=\"internal\">"
    "<manager><fname>Eve</fname><lname>Smith</lname></manager>"
    "<paper category=\"private\"><title>Secret</title></paper>"
    "<paper category=\"public\"><title>Known</title></paper>"
    "</project>"
    "<project name=\"Web\" type=\"public\">"
    "<manager><fname>Alan</fname><lname>Turing</lname></manager>"
    "<paper category=\"internal\"><title>Draft</title></paper>"
    "<paper category=\"public\"><title>Published</title></paper>"
    "</project>"
    "</laboratory>";

class ProcessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = xml::ParseDocument(kCSlab);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
    auto dtd = xml::ParseDtd(workload::LaboratoryDtd());
    ASSERT_TRUE(dtd.ok()) << dtd.status();
    (*dtd)->set_name("laboratory");
    doc_->set_dtd(std::move(dtd).value());
    ASSERT_TRUE(xml::ValidateDocument(doc_.get()).ok());
    doc_->Reindex();

    ASSERT_TRUE(groups_.AddMembership("Tom", "Foreign").ok());
    ASSERT_TRUE(groups_.AddMembership("Carol", "Admin").ok());
  }

  Authorization Auth(std::string_view ug, std::string_view ip,
                     std::string_view sym, std::string_view uri,
                     std::string_view path, Sign sign, AuthType type) {
    Authorization auth;
    auth.subject = *Subject::Make(ug, ip, sym);
    auth.object.uri = std::string(uri);
    auth.object.path = std::string(path);
    auth.sign = sign;
    auth.type = type;
    return auth;
  }

  /// The four authorizations of the paper's Example 1.  The first is
  /// schema level (it targets laboratory.xml, the DTD); the others are
  /// instance level on CSlab.xml.  The fourth's type is printed as "W"
  /// in the paper — we read it as weak recursive, matching the intent
  /// ("access information about managers").
  void LoadExample1() {
    schema_auths_ = {Auth("Foreign", "*", "*", "laboratory.xml",
                          "/laboratory//paper[./@category=\"private\"]",
                          Sign::kMinus, AuthType::kRecursive)};
    instance_auths_ = {
        Auth("Public", "*", "*", "CSlab.xml",
             "/laboratory//paper[./@category=\"public\"]", Sign::kPlus,
             AuthType::kRecursiveWeak),
        Auth("Admin", "130.89.56.8", "*", "CSlab.xml",
             "project[./@type=\"internal\"]", Sign::kPlus,
             AuthType::kRecursive),
        Auth("Public", "*", "*.it", "CSlab.xml",
             "project[./@type=\"public\"]/manager", Sign::kPlus,
             AuthType::kRecursiveWeak)};
  }

  Result<View> Process(const Requester& rq, ProcessorOptions options = {}) {
    SecurityProcessor processor(&groups_, options);
    return processor.ComputeView(*doc_, instance_auths_, schema_auths_, rq);
  }

  static std::string Compact(const View& view) {
    xml::SerializeOptions options;
    options.xml_declaration = false;
    return view.ToXml(options);
  }

  std::unique_ptr<Document> doc_;
  GroupStore groups_;
  std::vector<Authorization> instance_auths_;
  std::vector<Authorization> schema_auths_;
};

TEST_F(ProcessorTest, PaperFigure3TomView) {
  // Example 2: Tom, member of Foreign, from infosys.bld1.it
  // (130.100.50.8).  His view (Fig. 3b): the private paper is denied by
  // the schema-level authorization; public papers are visible through
  // the weak permission; the manager of the public project is visible
  // because Tom connects from the it domain; everything else is either
  // undefined (closed policy: hidden) or kept as bare structure.
  LoadExample1();
  Requester tom{"Tom", "130.100.50.8", "infosys.bld1.it"};
  auto view = Process(tom);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(Compact(*view),
            "<laboratory>"
            "<project>"
            "<paper category=\"public\"><title>Known</title></paper>"
            "</project>"
            "<project>"
            "<manager><fname>Alan</fname><lname>Turing</lname></manager>"
            "<paper category=\"public\"><title>Published</title></paper>"
            "</project>"
            "</laboratory>");
}

TEST_F(ProcessorTest, AdminFromAuthorizedHostSeesInternalProject) {
  LoadExample1();
  Requester carol{"Carol", "130.89.56.8", "admin.lab.com"};
  auto view = Process(carol);
  ASSERT_TRUE(view.ok()) << view.status();
  std::string xml = Compact(*view);
  // The internal project is fully visible (recursive +), including its
  // private paper: the schema denial only applies to Foreign.
  EXPECT_NE(xml.find("name=\"Access Models\""), std::string::npos);
  EXPECT_NE(xml.find("<title>Secret</title>"), std::string::npos);
  EXPECT_NE(xml.find("<fname>Eve</fname>"), std::string::npos);
  // But not the public project's manager (Carol is not in the it
  // domain, and no other authorization covers it).
  EXPECT_EQ(xml.find("Turing"), std::string::npos);
}

TEST_F(ProcessorTest, AdminFromOtherHostLosesInternalProject) {
  LoadExample1();
  Requester carol{"Carol", "99.99.99.99", "admin.lab.com"};
  auto view = Process(carol);
  ASSERT_TRUE(view.ok()) << view.status();
  std::string xml = Compact(*view);
  EXPECT_EQ(xml.find("Secret"), std::string::npos);
  EXPECT_EQ(xml.find("Eve"), std::string::npos);
  // Public papers remain (Public subject).
  EXPECT_NE(xml.find("Known"), std::string::npos);
}

TEST_F(ProcessorTest, ForeignMemberDeniedPrivateEvenWithWeakPlus) {
  // A weak instance-level permission on all papers cannot override the
  // schema-level denial for Foreign.
  LoadExample1();
  instance_auths_.push_back(Auth("Foreign", "*", "*", "CSlab.xml",
                                 "//paper", Sign::kPlus,
                                 AuthType::kRecursiveWeak));
  Requester tom{"Tom", "130.100.50.8", "infosys.bld1.it"};
  auto view = Process(tom);
  ASSERT_TRUE(view.ok()) << view.status();
  std::string xml = Compact(*view);
  EXPECT_EQ(xml.find("Secret"), std::string::npos);
  // The weak plus does reveal the internal-category paper (the schema
  // rule only covers private papers).
  EXPECT_NE(xml.find("Draft"), std::string::npos);
}

TEST_F(ProcessorTest, ViewCarriesLoosenedDtd) {
  LoadExample1();
  Requester tom{"Tom", "130.100.50.8", "infosys.bld1.it"};
  auto view = Process(tom);
  ASSERT_TRUE(view.ok()) << view.status();
  ASSERT_NE(view->document->dtd(), nullptr);
  // name/type were #REQUIRED in Fig. 1; the served DTD has them optional
  // so the skeleton <project> elements stay valid and redaction is
  // indistinguishable from absence.
  EXPECT_EQ(view->document->dtd()->FindAttr("project", "name")->default_kind,
            xml::AttrDefaultKind::kImplied);
}

TEST_F(ProcessorTest, ViewValidatesAgainstLoosenedDtd) {
  LoadExample1();
  ProcessorOptions options;
  options.validate_output = true;  // Internal invariant check.
  Requester tom{"Tom", "130.100.50.8", "infosys.bld1.it"};
  auto view = Process(tom, options);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_FALSE(view->empty());
}

TEST_F(ProcessorTest, OriginalDocumentUntouched) {
  LoadExample1();
  std::string before = xml::SerializeDocument(*doc_);
  Requester tom{"Tom", "130.100.50.8", "infosys.bld1.it"};
  auto view = Process(tom);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(xml::SerializeDocument(*doc_), before);
  // Required attributes still intact on the original.
  EXPECT_EQ(doc_->dtd()->FindAttr("project", "name")->default_kind,
            xml::AttrDefaultKind::kRequired);
}

TEST_F(ProcessorTest, StrangerSeesNothing) {
  LoadExample1();
  // Anonymous from an unknown host: only the Public weak + applies, but
  // it is weak... and no schema auth overrides it, so public papers show.
  Requester anon{"anonymous", "8.8.8.8", "unknown.example.org"};
  auto view = Process(anon);
  ASSERT_TRUE(view.ok());
  std::string xml = Compact(*view);
  EXPECT_NE(xml.find("Known"), std::string::npos);
  EXPECT_EQ(xml.find("Secret"), std::string::npos);
  EXPECT_EQ(xml.find("Turing"), std::string::npos);

  // With no applicable authorizations at all, the view is empty.
  instance_auths_.clear();
  schema_auths_.clear();
  auto empty_view = Process(anon);
  ASSERT_TRUE(empty_view.ok());
  EXPECT_TRUE(empty_view->empty());
  EXPECT_EQ(Compact(*empty_view), "");
}

TEST_F(ProcessorTest, WeakSchemaAuthorizationRejected) {
  schema_auths_ = {Auth("Public", "*", "*", "laboratory.xml", "//paper",
                        Sign::kPlus, AuthType::kRecursiveWeak)};
  Requester tom{"Tom", "130.100.50.8", "infosys.bld1.it"};
  auto view = Process(tom);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProcessorTest, OpenPolicyRevealsUndefinedNodes) {
  LoadExample1();
  ProcessorOptions options;
  options.policy.completeness = CompletenessPolicy::kOpen;
  Requester tom{"Tom", "130.100.50.8", "infosys.bld1.it"};
  auto view = Process(tom, options);
  ASSERT_TRUE(view.ok());
  std::string xml = Compact(*view);
  // Undefined nodes (e.g. project attributes) are now visible...
  EXPECT_NE(xml.find("name=\"Access Models\""), std::string::npos);
  EXPECT_NE(xml.find("Draft"), std::string::npos);
  // ...but explicit denials still hold.
  EXPECT_EQ(xml.find("Secret"), std::string::npos);
}

TEST_F(ProcessorTest, DocumentWithoutDtdServedWithoutLoosening) {
  // Well-formed-only resources are also protectable; there is simply no
  // schema level and no DTD to loosen.
  auto doc = xml::ParseDocument("<notes><n owner=\"tom\">x</n></notes>");
  ASSERT_TRUE(doc.ok());
  instance_auths_ = {Auth("Public", "*", "*", "notes.xml", "//n",
                          Sign::kPlus, AuthType::kRecursive)};
  schema_auths_.clear();
  SecurityProcessor processor(&groups_, {});
  Requester anyone{"anyone", "1.2.3.4", "h.example.com"};
  auto view =
      processor.ComputeView(**doc, instance_auths_, {}, anyone);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->document->dtd(), nullptr);
  xml::SerializeOptions options;
  options.xml_declaration = false;
  EXPECT_EQ(view->ToXml(options),
            "<notes><n owner=\"tom\">x</n></notes>");
}

TEST_F(ProcessorTest, SelfReferentialPolicyThroughProcessor) {
  // One authorization serves every owner their own nodes.
  auto doc = xml::ParseDocument(
      "<notes><n owner=\"tom\">t-note</n><n owner=\"ann\">a-note</n>"
      "</notes>");
  ASSERT_TRUE(doc.ok());
  std::vector<Authorization> auths = {
      Auth("Public", "*", "*", "notes.xml", "//n[@owner=$user]",
           Sign::kPlus, AuthType::kRecursive)};
  SecurityProcessor processor(&groups_, {});

  Requester tom{"tom", "1.1.1.1", "a.example"};
  auto tom_view = processor.ComputeView(**doc, auths, {}, tom);
  ASSERT_TRUE(tom_view.ok());
  std::string tom_xml = Compact(*tom_view);
  EXPECT_NE(tom_xml.find("t-note"), std::string::npos);
  EXPECT_EQ(tom_xml.find("a-note"), std::string::npos);

  Requester ann{"ann", "1.1.1.1", "a.example"};
  auto ann_view = processor.ComputeView(**doc, auths, {}, ann);
  ASSERT_TRUE(ann_view.ok());
  std::string ann_xml = Compact(*ann_view);
  EXPECT_EQ(ann_xml.find("t-note"), std::string::npos);
  EXPECT_NE(ann_xml.find("a-note"), std::string::npos);
}

TEST_F(ProcessorTest, StatsReportWork) {
  LoadExample1();
  Requester tom{"Tom", "130.100.50.8", "infosys.bld1.it"};
  auto view = Process(tom);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->stats.labeling.applicable_schema_auths, 1);
  EXPECT_EQ(view->stats.labeling.applicable_instance_auths, 2);
  EXPECT_GT(view->stats.prune.nodes_before, view->stats.prune.nodes_after);
  EXPECT_GT(view->stats.prune.skeleton_elements, 0);
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
