// Unit tests of the schema-compiled policy automaton: decidability
// classification, the product construction, the decidability report,
// table-lookup labeling, residual handling, and the schema-mismatch
// guard (analysis/policy_automaton.h).

#include "analysis/policy_automaton.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/schema_paths.h"
#include "authz/labeling.h"
#include "workload/authgen.h"
#include "workload/docgen.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/validator.h"

namespace xmlsec {
namespace analysis {
namespace {

using authz::Authorization;
using authz::AuthType;
using authz::ExplicitSigns;
using authz::GroupStore;
using authz::LabelingStats;
using authz::PolicyOptions;
using authz::Requester;
using authz::Sign;
using authz::Subject;

Authorization Auth(const std::string& group, const std::string& uri,
                   const std::string& path, Sign sign, AuthType type) {
  Authorization auth;
  auth.subject = *Subject::Make(group, "*", "*");
  auth.object.uri = uri;
  auth.object.path = path;
  auth.sign = sign;
  auth.type = type;
  return auth;
}

std::unique_ptr<xml::Dtd> Dtd(const std::string& source,
                              const std::string& name) {
  auto dtd = xml::ParseDtd(source);
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  (*dtd)->set_name(name);
  return std::move(*dtd);
}

Requester Tom() {
  Requester rq;
  rq.user = "tom";
  rq.ip = "1.2.3.4";
  rq.sym = "host.example";
  return rq;
}

// --- Classification -----------------------------------------------------

TEST(ClassifyPathTest, PredicateFreeChildDescendantPathsAreDecidable) {
  for (const char* path :
       {"", "/r", "/r/a/b", "//a", "/r//a", "//a/@k", "//a | //b",
        "descendant-or-self::node()/child::a"}) {
    PathClassification c = ClassifyPath(path);
    EXPECT_EQ(c.verdict, PathCompilability::kDecidable) << path;
    EXPECT_TRUE(c.residual_predicates.empty()) << path;
  }
}

TEST(ClassifyPathTest, PredicatesAreValueDependent) {
  PathClassification c = ClassifyPath("//a[./@k=\"v\"]");
  EXPECT_EQ(c.verdict, PathCompilability::kValueDependent);
  ASSERT_EQ(c.residual_predicates.size(), 1u);
  EXPECT_NE(c.residual_predicates[0].find("attribute::k"),
            std::string::npos);
  EXPECT_FALSE(c.uses_requester_variables);
}

TEST(ClassifyPathTest, RequesterVariablesAreFlagged) {
  PathClassification c = ClassifyPath("//a[./@owner=$user]");
  EXPECT_EQ(c.verdict, PathCompilability::kValueDependent);
  EXPECT_TRUE(c.uses_requester_variables);
}

TEST(ClassifyPathTest, UnsupportedAxesAreOpaque) {
  PathClassification c = ClassifyPath("//a/parent::r");
  EXPECT_EQ(c.verdict, PathCompilability::kOpaque);
  EXPECT_FALSE(c.reason.empty());
}

TEST(ClassifyPathTest, UnparsablePathIsOpaque) {
  PathClassification c = ClassifyPath("//a[unclosed");
  EXPECT_EQ(c.verdict, PathCompilability::kOpaque);
  EXPECT_NE(c.reason.find("does not compile"), std::string::npos);
}

TEST(ClassifyAuthorizationsTest, OrderIsInstanceThenSchema) {
  std::vector<Authorization> instance = {
      Auth("G", "d.xml", "//a", Sign::kPlus, AuthType::kRecursive)};
  std::vector<Authorization> schema = {
      Auth("G", "s.dtd", "//a[./@k=\"v\"]", Sign::kMinus,
           AuthType::kRecursive)};
  auto classes = ClassifyAuthorizations(instance, schema);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].decidability, Decidability::kDecidable);
  EXPECT_FALSE(classes[0].schema_level);
  EXPECT_EQ(classes[1].decidability, Decidability::kPartial);
  EXPECT_TRUE(classes[1].schema_level);

  std::string report = DecidabilityReport(instance, schema, classes);
  EXPECT_NE(report.find("1 decidable, 1 partially-decidable, 0 opaque"),
            std::string::npos);
  EXPECT_NE(report.find("auth#0 [instance] decidable"), std::string::npos);
  EXPECT_NE(report.find("auth#1 [schema] partially-decidable"),
            std::string::npos);
}

// --- Compilation --------------------------------------------------------

TEST(PolicyAutomatonTest, RootlessDtdDoesNotCompile) {
  xml::Dtd empty;
  auto automaton = PolicyAutomaton::Compile(empty, {}, {});
  EXPECT_FALSE(automaton.ok());
}

TEST(PolicyAutomatonTest, StateCapOverflowFailsCompile) {
  auto dtd = Dtd("<!ELEMENT r (a)>\n<!ELEMENT a (a?)>", "r");
  std::vector<Authorization> instance = {
      Auth("G", "d.xml", "/r/a/a/a/a", Sign::kMinus, AuthType::kLocal)};
  AutomatonOptions options;
  options.max_states = 3;  // The chain alone needs more contexts.
  auto automaton = PolicyAutomaton::Compile(*dtd, instance, {}, options);
  EXPECT_FALSE(automaton.ok());
  EXPECT_NE(automaton.status().message().find("state cap"),
            std::string::npos);
}

TEST(PolicyAutomatonTest, RecursiveDtdFoldsIntoFiniteStates) {
  // part is recursive; the automaton must fold the unbounded tag words
  // into finitely many (element, NFA-set) contexts.
  auto dtd = Dtd("<!ELEMENT r (part*)>\n<!ELEMENT part (part*)>", "r");
  std::vector<Authorization> instance = {
      Auth("G", "d.xml", "//part", Sign::kPlus, AuthType::kRecursive)};
  auto automaton = PolicyAutomaton::Compile(*dtd, instance, {});
  ASSERT_TRUE(automaton.ok()) << automaton.status();
  // document, r, and the (saturated) part context(s): tiny, not
  // depth-dependent.
  EXPECT_LE((*automaton)->stats().states, 4u);
}

TEST(PolicyAutomatonTest, ReportCarriesHeaderAndVerdicts) {
  auto dtd = Dtd("<!ELEMENT r (a*)>\n<!ELEMENT a (#PCDATA)>", "r");
  std::vector<Authorization> instance = {
      Auth("G", "d.xml", "//a", Sign::kPlus, AuthType::kRecursive),
      Auth("G", "d.xml", "//a[./@k=\"v\"]", Sign::kMinus, AuthType::kLocal)};
  auto automaton = PolicyAutomaton::Compile(*dtd, instance, {});
  ASSERT_TRUE(automaton.ok());
  std::string report = (*automaton)->Report();
  EXPECT_NE(report.find("policy automaton over root 'r'"),
            std::string::npos);
  EXPECT_NE(report.find("partially-decidable"), std::string::npos);
  EXPECT_EQ((*automaton)->stats().decidable_auths, 1u);
  EXPECT_EQ((*automaton)->stats().partial_auths, 1u);
}

// --- Labeling through the table -----------------------------------------

/// Compiles, labels `xml` through the automaton, and returns the signs
/// with the oracle's signs for comparison.
struct LabeledPair {
  ExplicitSigns compiled;
  ExplicitSigns oracle;
  LabelingStats stats;
  bool mismatch = false;
};

LabeledPair LabelBothWays(const std::string& xml_text,
                          const std::string& dtd_text,
                          std::vector<Authorization> instance,
                          std::vector<Authorization> schema = {}) {
  LabeledPair out;
  auto doc = xml::ParseDocument(xml_text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  auto dtd = Dtd(dtd_text, (*doc)->root()->tag());
  (*doc)->set_dtd(std::move(dtd));
  EXPECT_TRUE(xml::ValidateDocument(doc->get()).ok());
  (*doc)->Reindex();

  auto automaton =
      PolicyAutomaton::Compile(*(*doc)->dtd(), instance, schema);
  EXPECT_TRUE(automaton.ok()) << automaton.status();
  GroupStore groups;
  EXPECT_TRUE(groups.AddMembership("tom", "G").ok());
  auto compiled = (*automaton)->ComputeSigns(
      **doc, Tom(), groups, PolicyOptions{}, &out.stats, &out.mismatch);
  EXPECT_TRUE(compiled.ok()) << compiled.status();
  auto oracle = authz::ComputeExplicitSigns(**doc, instance, schema, Tom(),
                                            groups, PolicyOptions{});
  EXPECT_TRUE(oracle.ok());
  out.compiled = std::move(*compiled);
  out.oracle = std::move(*oracle);
  return out;
}

void ExpectSameSigns(LabeledPair& pair) {
  ASSERT_EQ(pair.compiled.size(), pair.oracle.size());
  for (size_t i = 0; i < pair.compiled.size(); ++i) {
    for (size_t s = 0; s < 6; ++s) {
      EXPECT_EQ(pair.compiled.MutableRow(i)[s], pair.oracle.MutableRow(i)[s])
          << "node " << i << " slot " << s;
    }
  }
}

TEST(PolicyAutomatonTest, TableSignsMatchXPathSigns) {
  LabeledPair pair = LabelBothWays(
      "<r><a k=\"1\"><b>x</b></a><a k=\"2\"><b>y</b></a></r>",
      "<!ELEMENT r (a*)>\n<!ELEMENT a (b*)>\n<!ELEMENT b (#PCDATA)>\n"
      "<!ATTLIST a k CDATA #IMPLIED>",
      {Auth("G", "d.xml", "/r", Sign::kPlus, AuthType::kRecursive),
       Auth("G", "d.xml", "//b", Sign::kMinus, AuthType::kLocal),
       Auth("G", "d.xml", "//a/@k", Sign::kMinus, AuthType::kLocal)});
  EXPECT_FALSE(pair.mismatch);
  ExpectSameSigns(pair);
  EXPECT_EQ(pair.stats.xpath_evaluations, 0);
  EXPECT_EQ(pair.stats.residual_nodes, 0);
  EXPECT_GT(pair.stats.table_nodes, 0);
}

TEST(PolicyAutomatonTest, ResidualAndTableResolveJointly) {
  // The decidable denial and the residual (predicated) permission land
  // on the same node: joint resolution must apply the conflict policy
  // across the split exactly like the pure XPath path.
  LabeledPair pair = LabelBothWays(
      "<r><a k=\"v\">x</a></r>",
      "<!ELEMENT r (a*)>\n<!ELEMENT a (#PCDATA)>\n"
      "<!ATTLIST a k CDATA #IMPLIED>",
      {Auth("G", "d.xml", "//a", Sign::kMinus, AuthType::kLocal),
       Auth("G", "d.xml", "//a[./@k=\"v\"]", Sign::kPlus,
            AuthType::kLocal)});
  EXPECT_FALSE(pair.mismatch);
  ExpectSameSigns(pair);
  EXPECT_EQ(pair.stats.xpath_evaluations, 1);
  EXPECT_GT(pair.stats.residual_nodes, 0);
}

TEST(PolicyAutomatonTest, SubjectSpecificityOverridesAcrossTheSplit) {
  // A more specific subject (user) on the residual side must override a
  // less specific one (group) resolved from the table — the joint
  // resolution spans both candidate lists.
  auto doc = xml::ParseDocument("<r><a k=\"v\">x</a></r>");
  ASSERT_TRUE(doc.ok());
  auto dtd = Dtd(
      "<!ELEMENT r (a*)>\n<!ELEMENT a (#PCDATA)>\n"
      "<!ATTLIST a k CDATA #IMPLIED>",
      "r");
  (*doc)->set_dtd(std::move(dtd));
  ASSERT_TRUE(xml::ValidateDocument(doc->get()).ok());
  (*doc)->Reindex();

  GroupStore groups;
  ASSERT_TRUE(groups.AddMembership("tom", "Staff").ok());
  std::vector<Authorization> instance = {
      Auth("Staff", "d.xml", "//a", Sign::kMinus, AuthType::kLocal),
      Auth("tom", "d.xml", "//a[./@k=\"v\"]", Sign::kPlus,
           AuthType::kLocal)};
  auto automaton =
      PolicyAutomaton::Compile(*(*doc)->dtd(), instance, {});
  ASSERT_TRUE(automaton.ok());
  bool mismatch = false;
  auto compiled = (*automaton)->ComputeSigns(**doc, Tom(), groups,
                                             PolicyOptions{}, nullptr,
                                             &mismatch);
  ASSERT_TRUE(compiled.ok());
  ASSERT_FALSE(mismatch);
  auto oracle = authz::ComputeExplicitSigns(**doc, instance, {}, Tom(),
                                            groups, PolicyOptions{});
  ASSERT_TRUE(oracle.ok());
  const xml::Node* a = (*doc)->root()->children()[0].get();
  // tom's permission wins over Staff's denial despite the conflict
  // policy preferring denials (most specific subject first).
  EXPECT_EQ(compiled->Get(a, authz::LabelSlot::kL), authz::TriSign::kPlus);
  EXPECT_EQ(oracle->Get(a, authz::LabelSlot::kL), authz::TriSign::kPlus);
}

TEST(PolicyAutomatonTest, UndeclaredElementSetsMismatch) {
  auto doc = xml::ParseDocument("<r><zzz/></r>");
  ASSERT_TRUE(doc.ok());
  (*doc)->Reindex();
  auto dtd = Dtd("<!ELEMENT r (a*)>\n<!ELEMENT a (#PCDATA)>", "r");
  std::vector<Authorization> instance = {
      Auth("G", "d.xml", "/r", Sign::kPlus, AuthType::kRecursive)};
  auto automaton = PolicyAutomaton::Compile(*dtd, instance, {});
  ASSERT_TRUE(automaton.ok());
  GroupStore groups;
  bool mismatch = false;
  auto signs = (*automaton)->ComputeSigns(**doc, Tom(), groups,
                                          PolicyOptions{}, nullptr,
                                          &mismatch);
  ASSERT_TRUE(signs.ok());
  EXPECT_TRUE(mismatch);
}

TEST(PolicyAutomatonTest, UndeclaredAttributeIsSafeWithoutAttrTests) {
  // No compiled authorization tests attributes, so an undeclared
  // attribute is provably untargeted by the decidable set: no fallback.
  auto doc = xml::ParseDocument("<r><a extra=\"1\">x</a></r>");
  ASSERT_TRUE(doc.ok());
  (*doc)->Reindex();
  auto dtd = Dtd("<!ELEMENT r (a*)>\n<!ELEMENT a (#PCDATA)>", "r");
  std::vector<Authorization> instance = {
      Auth("G", "d.xml", "//a", Sign::kPlus, AuthType::kRecursive)};
  auto automaton = PolicyAutomaton::Compile(*dtd, instance, {});
  ASSERT_TRUE(automaton.ok());
  GroupStore groups;
  bool mismatch = false;
  auto signs = (*automaton)->ComputeSigns(**doc, Tom(), groups,
                                          PolicyOptions{}, nullptr,
                                          &mismatch);
  ASSERT_TRUE(signs.ok());
  EXPECT_FALSE(mismatch);

  // With a live attribute test in that context, the same undeclared
  // attribute cannot be proven untargeted: fallback.
  std::vector<Authorization> with_attr = {
      Auth("G", "d.xml", "//a", Sign::kPlus, AuthType::kRecursive),
      Auth("G", "d.xml", "//a/@k", Sign::kMinus, AuthType::kLocal)};
  auto automaton2 = PolicyAutomaton::Compile(*dtd, with_attr, {});
  ASSERT_TRUE(automaton2.ok());
  mismatch = false;
  signs = (*automaton2)->ComputeSigns(**doc, Tom(), groups,
                                      PolicyOptions{}, nullptr, &mismatch);
  ASSERT_TRUE(signs.ok());
  EXPECT_TRUE(mismatch);
}

TEST(PolicyAutomatonTest, RandomizedWorkloadSignsMatchOracle) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    workload::DocGenConfig doc_config;
    doc_config.depth = 4;
    doc_config.fanout = 3;
    doc_config.seed = seed;
    auto doc = workload::GenerateDocument(doc_config);
    ASSERT_NE(doc->dtd(), nullptr);
    workload::AuthGenConfig auth_config;
    auth_config.count = 48;
    auth_config.seed = seed * 31 + 5;
    auto workload = workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd",
                                                     auth_config);
    auto automaton = PolicyAutomaton::Compile(
        *doc->dtd(), workload.instance_auths, workload.schema_auths);
    ASSERT_TRUE(automaton.ok()) << automaton.status();
    bool mismatch = false;
    LabelingStats stats;
    auto compiled = (*automaton)->ComputeSigns(
        *doc, workload.requester, workload.groups, PolicyOptions{}, &stats,
        &mismatch);
    ASSERT_TRUE(compiled.ok());
    ASSERT_FALSE(mismatch) << "seed " << seed;
    auto oracle = authz::ComputeExplicitSigns(
        *doc, workload.instance_auths, workload.schema_auths,
        workload.requester, workload.groups, PolicyOptions{});
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(compiled->size(), oracle->size());
    for (size_t i = 0; i < compiled->size(); ++i) {
      for (size_t s = 0; s < 6; ++s) {
        ASSERT_EQ(compiled->MutableRow(i)[s], oracle->MutableRow(i)[s])
            << "seed " << seed << " node " << i << " slot " << s;
      }
    }
  }
}

}  // namespace
}  // namespace analysis
}  // namespace xmlsec
