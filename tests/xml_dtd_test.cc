#include <gtest/gtest.h>

#include "workload/docgen.h"
#include "xml/content_model.h"
#include "xml/dtd.h"
#include "xml/dtd_parser.h"

namespace xmlsec {
namespace xml {
namespace {

std::unique_ptr<Dtd> MustParse(std::string_view text) {
  auto result = ParseDtd(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(DtdParserTest, ElementDeclKinds) {
  auto dtd = MustParse(
      "<!ELEMENT e1 EMPTY>"
      "<!ELEMENT e2 ANY>"
      "<!ELEMENT e3 (#PCDATA)>"
      "<!ELEMENT e4 (#PCDATA|a|b)*>"
      "<!ELEMENT e5 (a,b?,c*)>");
  EXPECT_EQ(dtd->FindElement("e1")->content_kind, ContentKind::kEmpty);
  EXPECT_EQ(dtd->FindElement("e2")->content_kind, ContentKind::kAny);
  EXPECT_EQ(dtd->FindElement("e3")->content_kind, ContentKind::kMixed);
  EXPECT_TRUE(dtd->FindElement("e3")->mixed_names.empty());
  const ElementDecl* e4 = dtd->FindElement("e4");
  EXPECT_EQ(e4->content_kind, ContentKind::kMixed);
  EXPECT_EQ(e4->mixed_names, (std::vector<std::string>{"a", "b"}));
  const ElementDecl* e5 = dtd->FindElement("e5");
  ASSERT_EQ(e5->content_kind, ContentKind::kChildren);
  ASSERT_TRUE(e5->particle.has_value());
  EXPECT_EQ(e5->particle->kind, ContentParticle::Kind::kSequence);
  ASSERT_EQ(e5->particle->children.size(), 3u);
  EXPECT_EQ(e5->particle->children[1].cardinality, Cardinality::kOptional);
  EXPECT_EQ(e5->particle->children[2].cardinality, Cardinality::kZeroOrMore);
}

TEST(DtdParserTest, NestedGroups) {
  auto dtd = MustParse("<!ELEMENT e ((a|b)+,(c,d)?)>");
  const ContentParticle& p = *dtd->FindElement("e")->particle;
  ASSERT_EQ(p.children.size(), 2u);
  EXPECT_EQ(p.children[0].kind, ContentParticle::Kind::kChoice);
  EXPECT_EQ(p.children[0].cardinality, Cardinality::kOneOrMore);
  EXPECT_EQ(p.children[1].kind, ContentParticle::Kind::kSequence);
  EXPECT_EQ(p.children[1].cardinality, Cardinality::kOptional);
}

TEST(DtdParserTest, MixedSeparatorsRejected) {
  auto result = ParseDtd("<!ELEMENT e (a,b|c)>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(DtdParserTest, DuplicateElementDeclRejected) {
  auto result = ParseDtd("<!ELEMENT e EMPTY><!ELEMENT e ANY>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kValidationError);
}

TEST(DtdParserTest, AttlistTypesAndDefaults) {
  auto dtd = MustParse(
      "<!ELEMENT e ANY>"
      "<!ATTLIST e\n"
      "  id     ID       #REQUIRED\n"
      "  ref    IDREF    #IMPLIED\n"
      "  refs   IDREFS   #IMPLIED\n"
      "  tok    NMTOKEN  #IMPLIED\n"
      "  toks   NMTOKENS #IMPLIED\n"
      "  kind   (a|b|c)  \"b\"\n"
      "  fixed  CDATA    #FIXED \"F\"\n"
      "  plain  CDATA    \"dflt\">");
  EXPECT_EQ(dtd->FindAttr("e", "id")->type, AttrType::kId);
  EXPECT_EQ(dtd->FindAttr("e", "id")->default_kind,
            AttrDefaultKind::kRequired);
  EXPECT_EQ(dtd->FindAttr("e", "ref")->type, AttrType::kIdRef);
  EXPECT_EQ(dtd->FindAttr("e", "refs")->type, AttrType::kIdRefs);
  EXPECT_EQ(dtd->FindAttr("e", "tok")->type, AttrType::kNmToken);
  EXPECT_EQ(dtd->FindAttr("e", "toks")->type, AttrType::kNmTokens);
  const AttrDecl* kind = dtd->FindAttr("e", "kind");
  EXPECT_EQ(kind->type, AttrType::kEnumeration);
  EXPECT_EQ(kind->enum_values, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(kind->default_kind, AttrDefaultKind::kDefault);
  EXPECT_EQ(kind->default_value, "b");
  const AttrDecl* fixed = dtd->FindAttr("e", "fixed");
  EXPECT_EQ(fixed->default_kind, AttrDefaultKind::kFixed);
  EXPECT_EQ(fixed->default_value, "F");
}

TEST(DtdParserTest, FirstAttlistDeclarationWins) {
  auto dtd = MustParse(
      "<!ELEMENT e ANY>"
      "<!ATTLIST e a CDATA \"one\">"
      "<!ATTLIST e a CDATA \"two\">");
  EXPECT_EQ(dtd->FindAttr("e", "a")->default_value, "one");
}

TEST(DtdParserTest, GeneralAndParameterEntities) {
  auto dtd = MustParse(
      "<!ENTITY greeting \"hello\">"
      "<!ENTITY % level \"CDATA\">"
      "<!ELEMENT e ANY>"
      "<!ATTLIST e a %level; #IMPLIED>");
  const EntityDecl* g = dtd->FindEntity("greeting", false);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, "hello");
  EXPECT_NE(dtd->FindEntity("level", true), nullptr);
  EXPECT_EQ(dtd->FindAttr("e", "a")->type, AttrType::kCData);
}

TEST(DtdParserTest, ParameterEntityInContentModel) {
  auto dtd = MustParse(
      "<!ENTITY % inline \"(b|i)*\">"
      "<!ELEMENT p %inline;>");
  const ElementDecl* p = dtd->FindElement("p");
  ASSERT_EQ(p->content_kind, ContentKind::kChildren);
  EXPECT_EQ(p->particle->kind, ContentParticle::Kind::kChoice);
}

TEST(DtdParserTest, NestedParameterEntities) {
  auto dtd = MustParse(
      "<!ENTITY % a \"x\">"
      "<!ENTITY % b \"(%a;,y)\">"
      "<!ELEMENT e %b;>");
  EXPECT_EQ(dtd->FindElement("e")->particle->ToString(), "(x,y)");
}

TEST(DtdParserTest, UndeclaredParameterEntityRejected) {
  auto result = ParseDtd("<!ELEMENT e %missing;>");
  ASSERT_FALSE(result.ok());
}

TEST(DtdParserTest, ExternalEntityRecorded) {
  auto dtd = MustParse(
      "<!NOTATION gif SYSTEM \"image/gif\">"
      "<!ENTITY pic SYSTEM \"photo.gif\" NDATA gif>"
      "<!ENTITY ext PUBLIC \"-//X//EN\" \"x.ent\">");
  const EntityDecl* pic = dtd->FindEntity("pic", false);
  ASSERT_NE(pic, nullptr);
  EXPECT_TRUE(pic->is_external);
  EXPECT_EQ(pic->system_id, "photo.gif");
  EXPECT_EQ(pic->ndata, "gif");
  const EntityDecl* ext = dtd->FindEntity("ext", false);
  ASSERT_NE(ext, nullptr);
  EXPECT_EQ(ext->public_id, "-//X//EN");
  EXPECT_NE(dtd->FindNotation("gif"), nullptr);
}

TEST(DtdParserTest, CharacterReferencesInEntityValue) {
  auto dtd = MustParse("<!ENTITY amp2 \"&#38;&#x26;\">");
  EXPECT_EQ(dtd->FindEntity("amp2", false)->value, "&&");
}

TEST(DtdParserTest, ConditionalSections) {
  auto dtd = MustParse(
      "<![INCLUDE[<!ELEMENT a EMPTY>]]>"
      "<![IGNORE[<!ELEMENT b EMPTY>]]>");
  EXPECT_NE(dtd->FindElement("a"), nullptr);
  EXPECT_EQ(dtd->FindElement("b"), nullptr);
}

TEST(DtdParserTest, CommentsAndPisSkipped) {
  auto dtd = MustParse(
      "<!-- a comment with <!ELEMENT fake EMPTY> inside -->"
      "<?pi data?>"
      "<!ELEMENT real EMPTY>");
  EXPECT_EQ(dtd->FindElement("fake"), nullptr);
  EXPECT_NE(dtd->FindElement("real"), nullptr);
}

TEST(DtdParserTest, PaperFigure1LaboratoryDtd) {
  // The running example of the paper: the laboratory schema (Fig. 1a).
  auto dtd = MustParse(workload::LaboratoryDtd());
  const ElementDecl* lab = dtd->FindElement("laboratory");
  ASSERT_NE(lab, nullptr);
  ASSERT_EQ(lab->content_kind, ContentKind::kChildren);
  EXPECT_EQ(lab->particle->ToString(), "(project*)");

  const ElementDecl* project = dtd->FindElement("project");
  ASSERT_NE(project, nullptr);
  EXPECT_EQ(project->particle->ToString(), "(manager,member*,paper*,fund?)");
  const AttrDecl* type = dtd->FindAttr("project", "type");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->type, AttrType::kEnumeration);
  EXPECT_EQ(type->enum_values,
            (std::vector<std::string>{"internal", "public"}));
  EXPECT_EQ(type->default_kind, AttrDefaultKind::kRequired);

  const AttrDecl* category = dtd->FindAttr("paper", "category");
  ASSERT_NE(category, nullptr);
  EXPECT_EQ(category->enum_values,
            (std::vector<std::string>{"private", "internal", "public"}));
  EXPECT_NE(dtd->FindElement("fname"), nullptr);
  EXPECT_NE(dtd->FindElement("lname"), nullptr);
}

TEST(ContentModelTest, SequenceMatching) {
  auto dtd = MustParse("<!ELEMENT e (a,b,c)>");
  ContentModelMatcher m(*dtd->FindElement("e")->particle);
  EXPECT_TRUE(m.Matches({"a", "b", "c"}));
  EXPECT_FALSE(m.Matches({"a", "b"}));
  EXPECT_FALSE(m.Matches({"a", "c", "b"}));
  EXPECT_FALSE(m.Matches({}));
}

TEST(ContentModelTest, ChoiceMatching) {
  auto dtd = MustParse("<!ELEMENT e (a|b|c)>");
  ContentModelMatcher m(*dtd->FindElement("e")->particle);
  EXPECT_TRUE(m.Matches({"a"}));
  EXPECT_TRUE(m.Matches({"c"}));
  EXPECT_FALSE(m.Matches({"a", "b"}));
  EXPECT_FALSE(m.Matches({}));
}

TEST(ContentModelTest, Cardinalities) {
  auto dtd = MustParse("<!ELEMENT e (a?,b*,c+)>");
  ContentModelMatcher m(*dtd->FindElement("e")->particle);
  EXPECT_TRUE(m.Matches({"c"}));
  EXPECT_TRUE(m.Matches({"a", "c"}));
  EXPECT_TRUE(m.Matches({"b", "b", "c", "c"}));
  EXPECT_TRUE(m.Matches({"a", "b", "c"}));
  EXPECT_FALSE(m.Matches({"a", "b"}));     // missing required c
  EXPECT_FALSE(m.Matches({"a", "a", "c"}));  // two a's
}

TEST(ContentModelTest, NestedGroups) {
  auto dtd = MustParse("<!ELEMENT e ((a,b)|(c,d))+>");
  ContentModelMatcher m(*dtd->FindElement("e")->particle);
  EXPECT_TRUE(m.Matches({"a", "b"}));
  EXPECT_TRUE(m.Matches({"c", "d"}));
  EXPECT_TRUE(m.Matches({"a", "b", "c", "d"}));
  EXPECT_FALSE(m.Matches({"a", "d"}));
  EXPECT_FALSE(m.Matches({}));
}

TEST(ContentModelTest, UnknownNameNeverMatches) {
  auto dtd = MustParse("<!ELEMENT e (a)*>");
  ContentModelMatcher m(*dtd->FindElement("e")->particle);
  EXPECT_TRUE(m.Matches({"a", "a"}));
  EXPECT_FALSE(m.Matches({"z"}));
}

TEST(ContentModelTest, AmbiguousModelHandledByNfa) {
  // (a,b)|(a,c) is non-deterministic per XML 1.0; the NFA matcher still
  // recognizes the language exactly.
  auto dtd = MustParse("<!ELEMENT e ((a,b)|(a,c))>");
  ContentModelMatcher m(*dtd->FindElement("e")->particle);
  EXPECT_TRUE(m.Matches({"a", "b"}));
  EXPECT_TRUE(m.Matches({"a", "c"}));
  EXPECT_FALSE(m.Matches({"a"}));
}

TEST(DtdModelTest, ContentToStringRoundTrip) {
  auto dtd = MustParse("<!ELEMENT e (a?,(b|c)*,d+)>");
  EXPECT_EQ(dtd->FindElement("e")->ContentToString(), "(a?,(b|c)*,d+)");
  auto dtd2 = MustParse("<!ELEMENT e EMPTY>");
  EXPECT_EQ(dtd2->FindElement("e")->ContentToString(), "EMPTY");
  auto dtd3 = MustParse("<!ELEMENT e (#PCDATA|x)*>");
  EXPECT_EQ(dtd3->FindElement("e")->ContentToString(), "(#PCDATA|x)*");
}

}  // namespace
}  // namespace xml
}  // namespace xmlsec
