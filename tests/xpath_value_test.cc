#include <gtest/gtest.h>

#include <cmath>

#include "xml/parser.h"
#include "xpath/value.h"

namespace xmlsec {
namespace xpath {
namespace {

TEST(ValueTest, DefaultIsEmptyNodeSet) {
  Value v;
  EXPECT_TRUE(v.is_node_set());
  EXPECT_TRUE(v.nodes().empty());
  EXPECT_FALSE(v.ToBool());
  EXPECT_EQ(v.ToString(), "");
  EXPECT_TRUE(std::isnan(v.ToNumber()));
}

TEST(ValueTest, BooleanCoercions) {
  EXPECT_TRUE(Value(true).ToBool());
  EXPECT_FALSE(Value(false).ToBool());
  EXPECT_DOUBLE_EQ(Value(true).ToNumber(), 1.0);
  EXPECT_DOUBLE_EQ(Value(false).ToNumber(), 0.0);
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(false).ToString(), "false");
}

TEST(ValueTest, NumberCoercions) {
  EXPECT_TRUE(Value(1.0).ToBool());
  EXPECT_FALSE(Value(0.0).ToBool());
  EXPECT_FALSE(Value(std::nan("")).ToBool());
  EXPECT_TRUE(Value(-0.5).ToBool());
  EXPECT_EQ(Value(42.0).ToString(), "42");
  EXPECT_EQ(Value(-1.25).ToString(), "-1.25");
}

TEST(ValueTest, StringCoercions) {
  EXPECT_TRUE(Value(std::string("x")).ToBool());
  EXPECT_FALSE(Value(std::string("")).ToBool());
  EXPECT_DOUBLE_EQ(Value(std::string("  12.5 ")).ToNumber(), 12.5);
  EXPECT_TRUE(std::isnan(Value(std::string("12x")).ToNumber()));
}

TEST(ValueTest, StringToNumberGrammar) {
  EXPECT_DOUBLE_EQ(StringToNumber("5"), 5);
  EXPECT_DOUBLE_EQ(StringToNumber("-5."), -5);
  EXPECT_DOUBLE_EQ(StringToNumber(".5"), 0.5);
  EXPECT_DOUBLE_EQ(StringToNumber("-0.25"), -0.25);
  EXPECT_TRUE(std::isnan(StringToNumber("")));
  EXPECT_TRUE(std::isnan(StringToNumber("1e3")));   // no exponents in XPath
  EXPECT_TRUE(std::isnan(StringToNumber("+5")));    // no leading plus
  EXPECT_TRUE(std::isnan(StringToNumber("1.2.3")));
  EXPECT_TRUE(std::isnan(StringToNumber("-")));
}

TEST(ValueTest, NumberToStringRules) {
  EXPECT_EQ(NumberToString(0), "0");
  EXPECT_EQ(NumberToString(-0.0), "0");
  EXPECT_EQ(NumberToString(7), "7");
  EXPECT_EQ(NumberToString(-7), "-7");
  EXPECT_EQ(NumberToString(2.5), "2.5");
  EXPECT_EQ(NumberToString(std::nan("")), "NaN");
  EXPECT_EQ(NumberToString(HUGE_VAL), "Infinity");
  EXPECT_EQ(NumberToString(-HUGE_VAL), "-Infinity");
}

TEST(ValueTest, StringValueOfNodeKinds) {
  auto doc = xml::ParseDocument(
      "<a k=\"attr\">one<b>two</b><!--c--><?p d?></a>");
  ASSERT_TRUE(doc.ok());
  const xml::Element* a = (*doc)->root();
  EXPECT_EQ(StringValueOf(*a), "onetwo");
  EXPECT_EQ(StringValueOf(**doc), "onetwo");  // document node
  EXPECT_EQ(StringValueOf(*a->FindAttribute("k")), "attr");
  EXPECT_EQ(StringValueOf(*a->child(0)), "one");              // text
  EXPECT_EQ(StringValueOf(*a->child(2)), "c");                // comment
  EXPECT_EQ(StringValueOf(*a->child(3)), "d");                // PI
}

TEST(ValueTest, SortDocumentOrderDedupes) {
  auto doc = xml::ParseDocument("<a><b/><c/><d/></a>");
  ASSERT_TRUE(doc.ok());
  const xml::Element* a = (*doc)->root();
  NodeSet set = {a->child(2), a->child(0), a->child(2), a,
                 a->child(1), a->child(0)};
  SortDocumentOrder(&set);
  ASSERT_EQ(set.size(), 4u);
  EXPECT_EQ(set[0], a);
  EXPECT_EQ(set[1], a->child(0));
  EXPECT_EQ(set[2], a->child(1));
  EXPECT_EQ(set[3], a->child(2));
}

TEST(ValueTest, NodeSetToStringUsesFirstNode) {
  auto doc = xml::ParseDocument("<a><b>first</b><b>second</b></a>");
  ASSERT_TRUE(doc.ok());
  const xml::Element* a = (*doc)->root();
  NodeSet set = {a->child(0), a->child(1)};
  Value v(std::move(set));
  EXPECT_EQ(v.ToString(), "first");
  EXPECT_TRUE(v.ToBool());
}

}  // namespace
}  // namespace xpath
}  // namespace xmlsec
