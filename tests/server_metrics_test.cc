// Integration tests of the observability subsystem on the real serving
// path: the server and listener share one MetricsRegistry, `GET
// /metrics` exposes valid Prometheus text with the core families, the
// cache counters progress with traffic, and the slow-trace threshold
// routes span breakdowns into the audit trail.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/audit_log.h"
#include "server/document_server.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/tcp_listener.h"
#include "server/user_directory.h"
#include "server/view_cache.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace server {
namespace {

class ServerMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        repo_.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
    ASSERT_TRUE(repo_
                    .AddDocument("CSlab.xml",
                                 "<laboratory>"
                                 "<project name=\"P\" type=\"public\">"
                                 "<manager><fname>A</fname>"
                                 "<lname>B</lname></manager>"
                                 "<paper category=\"private\">"
                                 "<title>Secret</title></paper>"
                                 "<paper category=\"public\">"
                                 "<title>Known</title></paper>"
                                 "</project></laboratory>",
                                 "laboratory.xml")
                    .ok());
    ASSERT_TRUE(users_.CreateUser("tom", "secret").ok());
    ASSERT_TRUE(groups_.AddMembership("tom", "Foreign").ok());
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl>"
                        "<authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" type=\"RW\"/>"
                        "<authorization subject=\"Foreign\" "
                        "object=\"laboratory.xml\" "
                        "path='//paper[./@category=&quot;private&quot;]' "
                        "sign=\"-\" type=\"R\"/>"
                        "</xacl>")
                    .ok());
    ServerConfig config;
    config.view_cache_capacity = 8;
    config.metrics = &registry_;  // isolated from DefaultRegistry()
    server_ = std::make_unique<SecureDocumentServer>(&repo_, &users_,
                                                     &groups_, config);
    server_->set_audit_log(&audit_);
    ListenerConfig listener_config;
    listener_config.metrics = &registry_;  // same registry: one scrape
    listener_ = std::make_unique<TcpHttpListener>(
        server_.get(), "client.lab.example", listener_config);
    Status started = listener_->Start(0);
    ASSERT_TRUE(started.ok()) << started;
  }

  void TearDown() override {
    listener_->Stop();
    obs::SetSlowTraceThresholdMs(-1);
  }

  std::string AuthRequest() const {
    return "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
           Base64Encode("tom:secret") + "\r\n\r\n";
  }

  std::string Scrape() {
    auto response =
        FetchHttp(listener_->port(), "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_TRUE(response.ok()) << response.status();
    return response.ok() ? *response : std::string();
  }

  obs::MetricsRegistry registry_;
  Repository repo_;
  UserDirectory users_;
  authz::GroupStore groups_;
  AuditLog audit_;
  std::unique_ptr<SecureDocumentServer> server_;
  std::unique_ptr<TcpHttpListener> listener_;
};

TEST_F(ServerMetricsTest, CompiledLabelingServesIdenticalViews) {
#ifdef XMLSEC_METRICS_NOOP
  GTEST_SKIP() << "counters compiled out in the ablation build";
#endif
  // A second server over the same repository with the schema-compiled
  // labeling engine: views must be byte-identical to the XPath server's,
  // the automaton must compile once and be reused, and no request may
  // fall back (the document is valid against its DTD).
  obs::MetricsRegistry compiled_registry;
  ServerConfig config;
  config.metrics = &compiled_registry;
  config.processor.labeling = authz::LabelingMode::kCompiled;
  SecureDocumentServer compiled_server(&repo_, &users_, &groups_, config);

  ServerRequest request;
  request.user = "tom";
  request.password = "secret";
  request.ip = "150.100.30.8";
  request.sym = "client.lab.example";
  request.uri = "CSlab.xml";

  ServerResponse xpath_response = server_->Handle(request);
  ServerResponse first = compiled_server.Handle(request);
  ServerResponse second = compiled_server.Handle(request);
  ASSERT_EQ(xpath_response.http_status, 200);
  ASSERT_EQ(first.http_status, 200);
  EXPECT_EQ(first.body_view(), xpath_response.body_view());
  EXPECT_EQ(second.body_view(), xpath_response.body_view());
  EXPECT_NE(first.body_view().find("Known"), std::string_view::npos);
  EXPECT_EQ(first.body_view().find("Secret"), std::string_view::npos);

  auto value = [&](const char* name) {
    return compiled_registry
        .GetCounter(name, "")
        ->Value();
  };
  EXPECT_EQ(value("xmlsec_policy_automaton_compiles_total"), 1);
  EXPECT_EQ(value("xmlsec_policy_automaton_compile_failures_total"), 0);
  EXPECT_EQ(value("xmlsec_compiled_fallbacks_total"), 0);
  EXPECT_GT(value("xmlsec_compiled_table_nodes_total"), 0);
  // The private-paper denial carries a value predicate: residual.
  EXPECT_GT(value("xmlsec_compiled_residual_nodes_total"), 0);
  EXPECT_GT(compiled_registry
                .GetGauge("xmlsec_policy_automaton_states", "")
                ->Value(),
            0);
}

TEST_F(ServerMetricsTest, MetricsEndpointSpeaksPrometheus) {
  auto served = FetchHttp(listener_->port(), AuthRequest());
  ASSERT_TRUE(served.ok()) << served.status();
  std::string response = Scrape();
  ASSERT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(
      response.find("Content-Type: text/plain; version=0.0.4"),
      std::string::npos);

  // Every body line must be a comment or `name[{labels}] value`.
  size_t body_start = response.find("\r\n\r\n");
  ASSERT_NE(body_start, std::string::npos);
  std::string body = response.substr(body_start + 4);
  ASSERT_FALSE(body.empty());
  size_t start = 0;
  while (start < body.size()) {
    size_t end = body.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "body must end with newline";
    std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* parse_end = nullptr;
    std::strtod(line.c_str() + space + 1, &parse_end);
    EXPECT_EQ(*parse_end, '\0') << "unparsable sample: " << line;
  }
}

TEST_F(ServerMetricsTest, CoreFamiliesPresent) {
#ifdef XMLSEC_METRICS_NOOP
  GTEST_SKIP() << "counters compiled out in the ablation build";
#endif
  // One miss, one hit, so cache and stage families have data.
  ASSERT_TRUE(FetchHttp(listener_->port(), AuthRequest()).ok());
  ASSERT_TRUE(FetchHttp(listener_->port(), AuthRequest()).ok());
  std::string body = Scrape();
  for (const char* family : {
           "# TYPE xmlsec_requests_total counter",
           "# TYPE xmlsec_request_duration_seconds histogram",
           "# TYPE xmlsec_stage_duration_seconds histogram",
           "# TYPE xmlsec_http_responses_total counter",
           "# TYPE xmlsec_view_cache_hits_total counter",
           "# TYPE xmlsec_view_cache_misses_total counter",
           "# TYPE xmlsec_listener_requests_total counter",
           "# TYPE xmlsec_listener_queue_depth gauge",
       }) {
    EXPECT_NE(body.find(family), std::string::npos) << family;
  }
  for (const char* sample : {
           "xmlsec_stage_duration_seconds_count{stage=\"label\"}",
           "xmlsec_stage_duration_seconds_count{stage=\"prune\"}",
           "xmlsec_stage_duration_seconds_count{stage=\"serialize\"}",
           "xmlsec_http_responses_total{status=\"200\"}",
           "xmlsec_failpoint_trips_total{site=",
       }) {
    EXPECT_NE(body.find(sample), std::string::npos) << sample;
  }
}

TEST_F(ServerMetricsTest, CacheCountersProgressWithTraffic) {
#ifdef XMLSEC_METRICS_NOOP
  GTEST_SKIP() << "counters compiled out in the ablation build";
#endif
  ASSERT_TRUE(FetchHttp(listener_->port(), AuthRequest()).ok());
  EXPECT_EQ(registry_.ValueOf("xmlsec_view_cache_misses_total"), 1.0);
  EXPECT_EQ(registry_.ValueOf("xmlsec_view_cache_hits_total"), 0.0);
  ASSERT_TRUE(FetchHttp(listener_->port(), AuthRequest()).ok());
  ASSERT_TRUE(FetchHttp(listener_->port(), AuthRequest()).ok());
  EXPECT_EQ(registry_.ValueOf("xmlsec_view_cache_misses_total"), 1.0);
  EXPECT_EQ(registry_.ValueOf("xmlsec_view_cache_hits_total"), 2.0);
  EXPECT_EQ(registry_.ValueOf("xmlsec_requests_total"), 3.0);
  EXPECT_EQ(registry_.ValueOf("xmlsec_http_responses_total",
                              "status=\"200\""),
            3.0);
}

TEST_F(ServerMetricsTest, CacheClearTalliesEvictions) {
#ifdef XMLSEC_METRICS_NOOP
  GTEST_SKIP() << "counters compiled out in the ablation build";
#endif
  // A flush is an invalidation: entries dropped by Clear() must reach
  // the eviction counters, or /metrics silently understates churn.
  ViewCache cache(4, /*shards=*/1);
  cache.BindMetrics(
      registry_.GetCounter("test_cache_hits", "test"),
      registry_.GetCounter("test_cache_misses", "test"),
      registry_.GetCounter("test_cache_evictions", "test"));
  cache.Put({"a", "u", "i", "s"}, 1, "A");
  cache.Put({"b", "u", "i", "s"}, 1, "B");
  cache.Clear();
  EXPECT_EQ(cache.evictions(), 2);
  EXPECT_EQ(registry_.ValueOf("test_cache_evictions"), 2.0);
  // The tallies keep progressing in lockstep after the flush.
  cache.Put({"c", "u", "i", "s"}, 1, "C");
  ASSERT_NE(cache.Get({"c", "u", "i", "s"}, 1), nullptr);
  EXPECT_EQ(registry_.ValueOf("test_cache_hits"), 1.0);
  cache.Clear();
  EXPECT_EQ(cache.evictions(), 3);
  EXPECT_EQ(registry_.ValueOf("test_cache_evictions"), 3.0);
}

TEST_F(ServerMetricsTest, StatusCountersCoverErrors) {
#ifdef XMLSEC_METRICS_NOOP
  GTEST_SKIP() << "counters compiled out in the ablation build";
#endif
  // 401: wrong password.  404: unknown document.
  std::string bad_auth =
      "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
      Base64Encode("tom:wrong") + "\r\n\r\n";
  ASSERT_TRUE(FetchHttp(listener_->port(), bad_auth).ok());
  ASSERT_TRUE(
      FetchHttp(listener_->port(), "GET /Nope.xml HTTP/1.0\r\n\r\n").ok());
  EXPECT_EQ(registry_.ValueOf("xmlsec_http_responses_total",
                              "status=\"401\""),
            1.0);
  EXPECT_EQ(registry_.ValueOf("xmlsec_http_responses_total",
                              "status=\"404\""),
            1.0);
}

TEST_F(ServerMetricsTest, SlowTraceLandsInAuditTrail) {
#ifdef XMLSEC_METRICS_NOOP
  GTEST_SKIP() << "counters compiled out in the ablation build";
#endif
  obs::SetSlowTraceThresholdMs(0);  // every request is "slow"
  ASSERT_TRUE(FetchHttp(listener_->port(), AuthRequest()).ok());
  obs::SetSlowTraceThresholdMs(-1);

  std::vector<AuditEntry> entries = audit_.Entries();
  ASSERT_FALSE(entries.empty());
  const AuditEntry& entry = entries.back();
  EXPECT_FALSE(entry.trace.empty());
  std::string line = entry.ToString();
  EXPECT_NE(line.find("trace{total="), std::string::npos) << line;
  EXPECT_NE(line.find("label="), std::string::npos) << line;
  EXPECT_NE(line.find("serialize="), std::string::npos) << line;
  EXPECT_GE(registry_.ValueOf("xmlsec_slow_requests_total"), 1.0);
}

TEST_F(ServerMetricsTest, SlowTraceDisabledLeavesAuditClean) {
  obs::SetSlowTraceThresholdMs(-1);
  ASSERT_TRUE(FetchHttp(listener_->port(), AuthRequest()).ok());
  std::vector<AuditEntry> entries = audit_.Entries();
  ASSERT_FALSE(entries.empty());
  EXPECT_TRUE(entries.back().trace.empty());
  EXPECT_EQ(entries.back().ToString().find("trace{"), std::string::npos);
}

TEST_F(ServerMetricsTest, HealthzAgreesWithRegistry) {
#ifdef XMLSEC_METRICS_NOOP
  GTEST_SKIP() << "counters compiled out in the ablation build";
#endif
  ASSERT_TRUE(FetchHttp(listener_->port(), AuthRequest()).ok());
  auto health =
      FetchHttp(listener_->port(), "GET /healthz HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(health.ok()) << health.status();
  // The /healthz "served" figure and the registry counter are the same
  // number — the listener keeps no private tallies.
  EXPECT_NE(health->find("\"served\":1"), std::string::npos) << *health;
  EXPECT_EQ(
      registry_.ValueOf("xmlsec_listener_requests_total"), 1.0);
  EXPECT_EQ(registry_.ValueOf("xmlsec_listener_health_checks_total"),
            1.0);
}

TEST_F(ServerMetricsTest, ScrapeWorksWhileDraining) {
  // /metrics is served by the listener itself and must stay available
  // during drain (the moment an operator most wants telemetry).
  // Simplest observable proxy: a scrape right before Stop() succeeds
  // and includes the listener families even with zero traffic.
  std::string body = Scrape();
  EXPECT_NE(body.find("xmlsec_listener_shed_total"),
            std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace xmlsec
