#include <gtest/gtest.h>

#include "xpath/parser.h"

namespace xmlsec {
namespace xpath {
namespace {

std::unique_ptr<Expr> MustCompile(std::string_view text) {
  auto result = CompileXPath(text);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status();
  return std::move(result).value();
}

TEST(XPathParserTest, AbsolutePathSteps) {
  auto expr = MustCompile("/laboratory/project");
  ASSERT_EQ(expr->kind, Expr::Kind::kPath);
  EXPECT_TRUE(expr->absolute);
  ASSERT_EQ(expr->steps.size(), 2u);
  EXPECT_EQ(expr->steps[0].axis, Axis::kChild);
  EXPECT_EQ(expr->steps[0].name, "laboratory");
  EXPECT_EQ(expr->steps[1].name, "project");
}

TEST(XPathParserTest, RelativePath) {
  auto expr = MustCompile("project/paper");
  EXPECT_FALSE(expr->absolute);
  ASSERT_EQ(expr->steps.size(), 2u);
}

TEST(XPathParserTest, BareSlashSelectsRoot) {
  auto expr = MustCompile("/");
  EXPECT_TRUE(expr->absolute);
  EXPECT_TRUE(expr->steps.empty());
}

TEST(XPathParserTest, DoubleSlashInsertsDescendantOrSelf) {
  auto expr = MustCompile("/laboratory//fname");
  ASSERT_EQ(expr->steps.size(), 3u);
  EXPECT_EQ(expr->steps[1].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(expr->steps[1].test, NodeTestKind::kAnyNode);
  EXPECT_EQ(expr->steps[2].name, "fname");
}

TEST(XPathParserTest, LeadingDoubleSlash) {
  auto expr = MustCompile("//paper");
  EXPECT_TRUE(expr->absolute);
  ASSERT_EQ(expr->steps.size(), 2u);
  EXPECT_EQ(expr->steps[0].axis, Axis::kDescendantOrSelf);
}

TEST(XPathParserTest, AttributeStep) {
  auto expr = MustCompile("project/@name");
  ASSERT_EQ(expr->steps.size(), 2u);
  EXPECT_EQ(expr->steps[1].axis, Axis::kAttribute);
  EXPECT_EQ(expr->steps[1].name, "name");
}

TEST(XPathParserTest, DotAndDotDot) {
  auto expr = MustCompile("./../x");
  ASSERT_EQ(expr->steps.size(), 3u);
  EXPECT_EQ(expr->steps[0].axis, Axis::kSelf);
  EXPECT_EQ(expr->steps[1].axis, Axis::kParent);
}

TEST(XPathParserTest, ExplicitAxes) {
  auto expr = MustCompile("fund/ancestor::project");
  ASSERT_EQ(expr->steps.size(), 2u);
  EXPECT_EQ(expr->steps[1].axis, Axis::kAncestor);
  EXPECT_EQ(expr->steps[1].name, "project");
  for (const char* axis :
       {"child", "descendant", "descendant-or-self", "parent", "ancestor",
        "ancestor-or-self", "self", "attribute", "following-sibling",
        "preceding-sibling", "following", "preceding"}) {
    auto e = MustCompile(std::string(axis) + "::node()");
    EXPECT_EQ(e->steps.size(), 1u) << axis;
  }
  EXPECT_FALSE(CompileXPath("sideways::x").ok());
}

TEST(XPathParserTest, NodeTypeTests) {
  EXPECT_EQ(MustCompile("text()")->steps[0].test, NodeTestKind::kText);
  EXPECT_EQ(MustCompile("node()")->steps[0].test, NodeTestKind::kAnyNode);
  EXPECT_EQ(MustCompile("comment()")->steps[0].test, NodeTestKind::kComment);
  auto pi = MustCompile("processing-instruction('tgt')");
  EXPECT_EQ(pi->steps[0].test, NodeTestKind::kPi);
  EXPECT_EQ(pi->steps[0].name, "tgt");
  EXPECT_EQ(MustCompile("*")->steps[0].test, NodeTestKind::kWildcard);
  EXPECT_EQ(MustCompile("@*")->steps[0].test, NodeTestKind::kWildcard);
}

TEST(XPathParserTest, Predicates) {
  auto expr = MustCompile("project[./@type=\"internal\"]/paper[2]");
  ASSERT_EQ(expr->steps.size(), 2u);
  ASSERT_EQ(expr->steps[0].predicates.size(), 1u);
  EXPECT_EQ(expr->steps[0].predicates[0]->kind, Expr::Kind::kBinary);
  ASSERT_EQ(expr->steps[1].predicates.size(), 1u);
  EXPECT_EQ(expr->steps[1].predicates[0]->kind, Expr::Kind::kNumber);
}

TEST(XPathParserTest, MultiplePredicatesOnOneStep) {
  auto expr = MustCompile("a[@x][@y][3]");
  EXPECT_EQ(expr->steps[0].predicates.size(), 3u);
}

TEST(XPathParserTest, PaperExample1Expressions) {
  // All four path expressions from the paper's Example 1 must compile.
  MustCompile("/laboratory//paper[./@category=\"private\"]");
  MustCompile("/laboratory//paper[./@category=\"public\"]");
  MustCompile("project[./@type=\"internal\"]");
  MustCompile("project[./@type=\"public\"]/manager");
}

TEST(XPathParserTest, OperatorPrecedence) {
  auto expr = MustCompile("1 + 2 * 3 = 7 and true()");
  // Top: and
  ASSERT_EQ(expr->kind, Expr::Kind::kBinary);
  EXPECT_EQ(expr->op, BinaryOp::kAnd);
  // Left of and: (1 + (2*3)) = 7
  const Expr* eq = expr->lhs.get();
  ASSERT_EQ(eq->op, BinaryOp::kEq);
  const Expr* add = eq->lhs.get();
  ASSERT_EQ(add->op, BinaryOp::kAdd);
  EXPECT_EQ(add->rhs->op, BinaryOp::kMul);
}

TEST(XPathParserTest, UnionExpression) {
  auto expr = MustCompile("a | b | c");
  ASSERT_EQ(expr->kind, Expr::Kind::kBinary);
  EXPECT_EQ(expr->op, BinaryOp::kUnion);
  EXPECT_EQ(expr->lhs->op, BinaryOp::kUnion);
}

TEST(XPathParserTest, FunctionCalls) {
  auto expr = MustCompile("concat(\"a\", \"b\", \"c\")");
  ASSERT_EQ(expr->kind, Expr::Kind::kFunctionCall);
  EXPECT_EQ(expr->function_name, "concat");
  EXPECT_EQ(expr->args.size(), 3u);
}

TEST(XPathParserTest, FilterExpressionWithTrailingPath) {
  auto expr = MustCompile("id(\"x\")/child::item");
  ASSERT_NE(expr->base, nullptr);
  EXPECT_EQ(expr->base->function_name, "id");
  ASSERT_EQ(expr->steps.size(), 1u);
  EXPECT_EQ(expr->steps[0].name, "item");
}

TEST(XPathParserTest, UnaryMinus) {
  auto expr = MustCompile("-3");
  ASSERT_EQ(expr->kind, Expr::Kind::kNegate);
  EXPECT_EQ(expr->operand->kind, Expr::Kind::kNumber);
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(CompileXPath("").ok());
  EXPECT_FALSE(CompileXPath("/a[").ok());
  EXPECT_FALSE(CompileXPath("/a]").ok());
  EXPECT_FALSE(CompileXPath("f(1,)").ok());
  EXPECT_FALSE(CompileXPath("a/").ok());
  EXPECT_FALSE(CompileXPath("1 +").ok());
  EXPECT_FALSE(CompileXPath("()").ok());
}

TEST(XPathParserTest, ToStringIsReparseable) {
  for (const char* text :
       {"/laboratory//paper[./@category=\"private\"]",
        "project[./@type=\"internal\"]/manager", "count(//a) > 3",
        "a | b/c[2]", "-x + 1"}) {
    auto expr = MustCompile(text);
    auto again = CompileXPath(expr->ToString());
    ASSERT_TRUE(again.ok()) << expr->ToString() << ": " << again.status();
    EXPECT_EQ((*again)->ToString(), expr->ToString());
  }
}

}  // namespace
}  // namespace xpath
}  // namespace xmlsec
