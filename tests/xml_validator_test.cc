#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/validator.h"

namespace xmlsec {
namespace xml {
namespace {

std::unique_ptr<Document> MustParse(std::string_view text) {
  auto result = ParseDocument(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

Status ValidateText(std::string_view text, ValidationOptions options = {}) {
  auto doc = MustParse(text);
  return ValidateDocument(doc.get(), options);
}

TEST(ValidatorTest, ValidDocumentPasses) {
  EXPECT_TRUE(ValidateText("<!DOCTYPE a [<!ELEMENT a (b*)><!ELEMENT b EMPTY>]>"
                           "<a><b/><b/></a>")
                  .ok());
}

TEST(ValidatorTest, RootMustMatchDoctypeName) {
  Status s = ValidateText(
      "<!DOCTYPE a [<!ELEMENT a EMPTY><!ELEMENT b EMPTY>]><b/>");
  EXPECT_EQ(s.code(), StatusCode::kValidationError);
  EXPECT_NE(s.message().find("DOCTYPE"), std::string::npos);
}

TEST(ValidatorTest, UndeclaredElementRejected) {
  Status s = ValidateText("<!DOCTYPE a [<!ELEMENT a ANY>]><a><zz/></a>");
  EXPECT_EQ(s.code(), StatusCode::kValidationError);
  EXPECT_NE(s.message().find("zz"), std::string::npos);
}

TEST(ValidatorTest, UndeclaredElementAllowedWhenLenient) {
  ValidationOptions options;
  options.strict_declarations = false;
  EXPECT_TRUE(
      ValidateText("<!DOCTYPE a [<!ELEMENT a ANY>]><a><zz/></a>", options)
          .ok());
}

TEST(ValidatorTest, EmptyContentViolations) {
  Status s = ValidateText("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a>text</a>");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(
      ValidateText("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a></a>").ok());
}

TEST(ValidatorTest, ElementContentRejectsText) {
  Status s = ValidateText(
      "<!DOCTYPE a [<!ELEMENT a (b)><!ELEMENT b EMPTY>]><a>x<b/></a>");
  EXPECT_FALSE(s.ok());
  // Whitespace between children is ignorable.
  EXPECT_TRUE(ValidateText(
                  "<!DOCTYPE a [<!ELEMENT a (b)><!ELEMENT b EMPTY>]>"
                  "<a>\n  <b/>\n</a>")
                  .ok());
}

TEST(ValidatorTest, ContentModelViolation) {
  Status s = ValidateText(
      "<!DOCTYPE a [<!ELEMENT a (b,c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>]>"
      "<a><c/><b/></a>");
  EXPECT_EQ(s.code(), StatusCode::kValidationError);
  EXPECT_NE(s.message().find("does not match model"), std::string::npos);
}

TEST(ValidatorTest, MixedContentChecksNames) {
  const char* dtd =
      "<!DOCTYPE p [<!ELEMENT p (#PCDATA|em)*><!ELEMENT em (#PCDATA)>"
      "<!ELEMENT strong (#PCDATA)>]>";
  EXPECT_TRUE(ValidateText(std::string(dtd) + "<p>a<em>b</em>c</p>").ok());
  Status s = ValidateText(std::string(dtd) + "<p><strong>x</strong></p>");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("mixed content"), std::string::npos);
}

TEST(ValidatorTest, RequiredAttributeMissing) {
  Status s = ValidateText(
      "<!DOCTYPE a [<!ELEMENT a EMPTY><!ATTLIST a k CDATA #REQUIRED>]><a/>");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("required attribute"), std::string::npos);
}

TEST(ValidatorTest, DefaultAttributeInjected) {
  auto doc = MustParse(
      "<!DOCTYPE a [<!ELEMENT a EMPTY><!ATTLIST a k CDATA \"dflt\">]><a/>");
  ASSERT_TRUE(ValidateDocument(doc.get()).ok());
  const Attr* k = doc->root()->FindAttribute("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->value(), "dflt");
  EXPECT_TRUE(k->is_defaulted());
}

TEST(ValidatorTest, DefaultInjectionCanBeDisabled) {
  ValidationOptions options;
  options.add_default_attributes = false;
  auto doc = MustParse(
      "<!DOCTYPE a [<!ELEMENT a EMPTY><!ATTLIST a k CDATA \"dflt\">]><a/>");
  ASSERT_TRUE(ValidateDocument(doc.get(), options).ok());
  EXPECT_EQ(doc->root()->FindAttribute("k"), nullptr);
}

TEST(ValidatorTest, FixedAttributeMustMatch) {
  const char* dtd =
      "<!DOCTYPE a [<!ELEMENT a EMPTY><!ATTLIST a v CDATA #FIXED \"1\">]>";
  EXPECT_TRUE(ValidateText(std::string(dtd) + "<a v=\"1\"/>").ok());
  EXPECT_FALSE(ValidateText(std::string(dtd) + "<a v=\"2\"/>").ok());
  // Absent: injected with the fixed value.
  auto doc = MustParse(std::string(dtd) + "<a/>");
  ASSERT_TRUE(ValidateDocument(doc.get()).ok());
  EXPECT_EQ(doc->root()->GetAttribute("v"), "1");
}

TEST(ValidatorTest, EnumerationChecked) {
  const char* dtd =
      "<!DOCTYPE a [<!ELEMENT a EMPTY>"
      "<!ATTLIST a t (x|y) #REQUIRED>]>";
  EXPECT_TRUE(ValidateText(std::string(dtd) + "<a t=\"x\"/>").ok());
  Status s = ValidateText(std::string(dtd) + "<a t=\"z\"/>");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("enumeration"), std::string::npos);
}

TEST(ValidatorTest, IdUniqueness) {
  const char* dtd =
      "<!DOCTYPE a [<!ELEMENT a (b*)><!ELEMENT b EMPTY>"
      "<!ATTLIST b id ID #REQUIRED>]>";
  EXPECT_TRUE(
      ValidateText(std::string(dtd) + "<a><b id=\"x\"/><b id=\"y\"/></a>")
          .ok());
  Status s =
      ValidateText(std::string(dtd) + "<a><b id=\"x\"/><b id=\"x\"/></a>");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("duplicate ID"), std::string::npos);
}

TEST(ValidatorTest, IdMustBeValidName) {
  const char* dtd =
      "<!DOCTYPE a [<!ELEMENT a EMPTY><!ATTLIST a id ID #REQUIRED>]>";
  Status s = ValidateText(std::string(dtd) + "<a id=\"1bad\"/>");
  EXPECT_FALSE(s.ok());
}

TEST(ValidatorTest, IdRefResolution) {
  const char* dtd =
      "<!DOCTYPE a [<!ELEMENT a (b*)><!ELEMENT b EMPTY>"
      "<!ATTLIST b id ID #IMPLIED ref IDREF #IMPLIED>]>";
  EXPECT_TRUE(
      ValidateText(std::string(dtd) + "<a><b id=\"x\"/><b ref=\"x\"/></a>")
          .ok());
  Status s = ValidateText(std::string(dtd) + "<a><b ref=\"ghost\"/></a>");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ghost"), std::string::npos);
}

TEST(ValidatorTest, IdRefsChecksEveryToken) {
  const char* dtd =
      "<!DOCTYPE a [<!ELEMENT a (b*)><!ELEMENT b EMPTY>"
      "<!ATTLIST b id ID #IMPLIED refs IDREFS #IMPLIED>]>";
  EXPECT_TRUE(ValidateText(std::string(dtd) +
                           "<a><b id=\"x\"/><b id=\"y\"/>"
                           "<b refs=\"x y\"/></a>")
                  .ok());
  EXPECT_FALSE(ValidateText(std::string(dtd) +
                            "<a><b id=\"x\"/><b refs=\"x ghost\"/></a>")
                   .ok());
}

TEST(ValidatorTest, NmtokenSyntax) {
  const char* dtd =
      "<!DOCTYPE a [<!ELEMENT a EMPTY><!ATTLIST a t NMTOKEN #IMPLIED>]>";
  EXPECT_TRUE(ValidateText(std::string(dtd) + "<a t=\"abc-12.3\"/>").ok());
  EXPECT_FALSE(ValidateText(std::string(dtd) + "<a t=\"has space\"/>").ok());
}

TEST(ValidatorTest, EntityAttributeNeedsUnparsedEntity) {
  const char* dtd =
      "<!DOCTYPE a [<!ELEMENT a EMPTY>"
      "<!NOTATION gif SYSTEM \"gif\">"
      "<!ENTITY pic SYSTEM \"p.gif\" NDATA gif>"
      "<!ENTITY txt \"inline\">"
      "<!ATTLIST a src ENTITY #IMPLIED>]>";
  EXPECT_TRUE(ValidateText(std::string(dtd) + "<a src=\"pic\"/>").ok());
  EXPECT_FALSE(ValidateText(std::string(dtd) + "<a src=\"txt\"/>").ok());
  EXPECT_FALSE(ValidateText(std::string(dtd) + "<a src=\"none\"/>").ok());
}

TEST(ValidatorTest, NotationAttribute) {
  const char* dtd =
      "<!DOCTYPE a [<!ELEMENT a EMPTY>"
      "<!NOTATION n1 SYSTEM \"s1\">"
      "<!ATTLIST a fmt NOTATION (n1|n2) #IMPLIED>]>";
  EXPECT_TRUE(ValidateText(std::string(dtd) + "<a fmt=\"n1\"/>").ok());
  // n2 is in the enumeration but never declared.
  EXPECT_FALSE(ValidateText(std::string(dtd) + "<a fmt=\"n2\"/>").ok());
  EXPECT_FALSE(ValidateText(std::string(dtd) + "<a fmt=\"n3\"/>").ok());
}

TEST(ValidatorTest, UndeclaredAttributeRejected) {
  Status s = ValidateText("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a mystery=\"1\"/>");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("mystery"), std::string::npos);
}

TEST(ValidatorTest, ErrorListCollectsAll) {
  auto doc = MustParse(
      "<!DOCTYPE a [<!ELEMENT a (b)><!ELEMENT b EMPTY>"
      "<!ATTLIST b k CDATA #REQUIRED>]>"
      "<a><b/><b/></a>");
  Validator validator(doc->dtd());
  Status s = validator.Validate(doc.get());
  EXPECT_FALSE(s.ok());
  // Content model violation + two missing required attributes.
  EXPECT_EQ(validator.errors().size(), 3u);
}

TEST(ValidatorTest, ValidatorReusableAcrossDocuments) {
  auto doc1 = MustParse(
      "<!DOCTYPE a [<!ELEMENT a EMPTY><!ATTLIST a id ID #IMPLIED>]>"
      "<a id=\"same\"/>");
  auto doc2 = MustParse("<a id=\"same\"/>");
  Validator validator(doc1->dtd());
  EXPECT_TRUE(validator.Validate(doc1.get()).ok());
  // Same ID in a different document must NOT be a duplicate.
  EXPECT_TRUE(validator.Validate(doc2.get()).ok());
}

TEST(ValidatorTest, NoDtdIsInvalidArgument) {
  auto doc = MustParse("<a/>");
  Status s = ValidateDocument(doc.get());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xml
}  // namespace xmlsec
