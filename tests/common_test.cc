#include <gtest/gtest.h>

#include "common/prng.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"

namespace xmlsec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "boom");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kValidationError, StatusCode::kPermissionDenied,
        StatusCode::kUnauthenticated, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  XMLSEC_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> err = Quarter(6);  // 6/2 = 3, odd.
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a.b.c", '.'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("a..b", '.'),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString(".x.", '.'),
            (std::vector<std::string>{"", "x", ""}));
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(JoinStrings({}, "."), "");
  EXPECT_EQ(JoinStrings({"solo"}, "."), "solo");
}

TEST(StrUtilTest, Strip) {
  EXPECT_EQ(StripAsciiWhitespace("  x \t\r\n"), "x");
  EXPECT_EQ(StripAsciiWhitespace("\n\n"), "");
  EXPECT_EQ(StripAsciiWhitespace("a b"), "a b");
}

TEST(StrUtilTest, Affixes) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("ftp://x", "http://"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
}

TEST(StrUtilTest, NormalizeSpace) {
  EXPECT_EQ(NormalizeSpace("  a\t\tb \n c  "), "a b c");
  EXPECT_EQ(NormalizeSpace(""), "");
  EXPECT_EQ(NormalizeSpace(" \t\n"), "");
}

TEST(StrUtilTest, IsXmlWhitespace) {
  EXPECT_TRUE(IsXmlWhitespace(" \t\r\n"));
  EXPECT_TRUE(IsXmlWhitespace(""));
  EXPECT_FALSE(IsXmlWhitespace(" x "));
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrUtilTest, ParseDecimal) {
  EXPECT_EQ(ParseDecimal("0"), 0);
  EXPECT_EQ(ParseDecimal("123456"), 123456);
  EXPECT_EQ(ParseDecimal(""), -1);
  EXPECT_EQ(ParseDecimal("12a"), -1);
  EXPECT_EQ(ParseDecimal("-5"), -1);
}

TEST(PrngTest, DeterministicForSeed) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(PrngTest, RangeBounds) {
  Prng prng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = prng.Range(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(PrngTest, ChanceExtremes) {
  Prng prng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(prng.Chance(0.0));
    EXPECT_TRUE(prng.Chance(1.0));
  }
}

TEST(PrngTest, ChanceIsRoughlyCalibrated) {
  Prng prng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (prng.Chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace xmlsec
