#include <gtest/gtest.h>

#include "authz/labeling.h"
#include "authz/prune.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlsec {
namespace authz {
namespace {

using xml::Document;

class PruneTest : public ::testing::Test {
 protected:
  std::unique_ptr<Document> Parse(std::string_view text) {
    auto result = xml::ParseDocument(text);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }

  Authorization Auth(std::string_view path, Sign sign, AuthType type) {
    Authorization auth;
    auth.subject = *Subject::Make("Public", "*", "*");
    auth.object.uri = "doc.xml";
    auth.object.path = std::string(path);
    auth.sign = sign;
    auth.type = type;
    return auth;
  }

  /// Labels `doc` with `auths` and prunes; returns compact XML.
  std::string LabelAndPrune(Document* doc,
                            const std::vector<Authorization>& auths,
                            CompletenessPolicy completeness =
                                CompletenessPolicy::kClosed) {
    GroupStore groups;
    Requester rq{"u", "1.2.3.4", "h.example.com"};
    PolicyOptions policy;
    policy.completeness = completeness;
    TreeLabeler labeler(&groups, policy);
    auto labels = labeler.Label(*doc, auths, {}, rq);
    EXPECT_TRUE(labels.ok()) << labels.status();
    PruneDocument(doc, *labels, completeness, &stats_);
    xml::SerializeOptions options;
    options.xml_declaration = false;
    return SerializeDocument(*doc, options);
  }

  PruneStats stats_;
};

TEST_F(PruneTest, FullyPermittedDocumentUnchanged) {
  auto doc = Parse("<a x=\"1\"><b>t</b><c/></a>");
  std::string out =
      LabelAndPrune(doc.get(), {Auth("", Sign::kPlus, AuthType::kRecursive)});
  EXPECT_EQ(out, "<a x=\"1\"><b>t</b><c/></a>");
  EXPECT_EQ(stats_.nodes_after, stats_.nodes_before);
  EXPECT_EQ(stats_.skeleton_elements, 0);
}

TEST_F(PruneTest, NothingPermittedPrunesEverything) {
  auto doc = Parse("<a x=\"1\"><b>t</b></a>");
  std::string out = LabelAndPrune(doc.get(), {});
  EXPECT_EQ(out, "");
  EXPECT_EQ(doc->root(), nullptr);
}

TEST_F(PruneTest, DeniedSubtreeRemoved) {
  auto doc = Parse("<a><keep>1</keep><drop>2</drop></a>");
  std::string out = LabelAndPrune(
      doc.get(), {Auth("", Sign::kPlus, AuthType::kRecursive),
                  Auth("//drop", Sign::kMinus, AuthType::kRecursive)});
  EXPECT_EQ(out, "<a><keep>1</keep></a>");
  EXPECT_GE(stats_.removed_elements, 1);
}

TEST_F(PruneTest, SkeletonTagsPreservedForPermittedDescendants) {
  // The start/end tags of elements with a permitted descendant survive
  // even when the element itself is not permitted (paper §6.2).
  auto doc = Parse("<a><mid attr=\"x\">hidden<leaf>seen</leaf></mid></a>");
  std::string out = LabelAndPrune(
      doc.get(), {Auth("//leaf", Sign::kPlus, AuthType::kRecursive)});
  // 'a' and 'mid' are skeleton; mid's attribute and text are pruned.
  EXPECT_EQ(out, "<a><mid><leaf>seen</leaf></mid></a>");
  EXPECT_EQ(stats_.skeleton_elements, 2);
  EXPECT_EQ(stats_.removed_attributes, 1);
}

TEST_F(PruneTest, AttributesPrunedIndividually) {
  auto doc = Parse("<a x=\"1\" y=\"2\"/>");
  std::string out = LabelAndPrune(
      doc.get(), {Auth("/a", Sign::kPlus, AuthType::kLocal),
                  Auth("/a/@y", Sign::kMinus, AuthType::kLocal)});
  EXPECT_EQ(out, "<a x=\"1\"/>");
}

TEST_F(PruneTest, LocalAuthKeepsElementWithoutChildren) {
  auto doc = Parse("<a><b k=\"v\"><c>deep</c></b></a>");
  std::string out = LabelAndPrune(
      doc.get(), {Auth("/a/b", Sign::kPlus, AuthType::kLocal)});
  // b and its attribute survive; c (not covered by the local auth) and
  // the skeleton-less text go away; a is skeleton.
  EXPECT_EQ(out, "<a><b k=\"v\"/></a>");
}

TEST_F(PruneTest, OpenPolicyKeepsUndefinedNodes) {
  auto doc = Parse("<a><b>t</b><c/></a>");
  std::string out = LabelAndPrune(
      doc.get(), {Auth("//c", Sign::kMinus, AuthType::kRecursive)},
      CompletenessPolicy::kOpen);
  EXPECT_EQ(out, "<a><b>t</b></a>");
}

TEST_F(PruneTest, ClosedPolicyDropsUndefinedNodes) {
  auto doc = Parse("<a><b>t</b><c/></a>");
  std::string out = LabelAndPrune(
      doc.get(), {Auth("//b", Sign::kPlus, AuthType::kRecursive)});
  EXPECT_EQ(out, "<a><b>t</b></a>");
}

TEST_F(PruneTest, CommentsAndPisFollowTheirElement) {
  auto doc = Parse("<a><b><!--note--><?pi d?>x</b><c><!--gone--></c></a>");
  std::string out = LabelAndPrune(
      doc.get(), {Auth("//b", Sign::kPlus, AuthType::kRecursive)});
  EXPECT_EQ(out, "<a><b><!--note--><?pi d?>x</b></a>");
}

TEST_F(PruneTest, PrologCommentsStrippedUnderClosedPolicy) {
  auto doc = Parse("<!--prolog--><a>x</a><!--epilog-->");
  std::string out = LabelAndPrune(
      doc.get(), {Auth("", Sign::kPlus, AuthType::kRecursive)});
  EXPECT_EQ(out, "<a>x</a>");
}

TEST_F(PruneTest, MixedSignsDeepTree) {
  auto doc = Parse(
      "<r><u1><v1>a</v1><v2>b</v2></u1><u2><v3>c</v3></u2></r>");
  std::string out = LabelAndPrune(
      doc.get(), {Auth("", Sign::kPlus, AuthType::kRecursive),
                  Auth("//u1", Sign::kMinus, AuthType::kRecursive),
                  Auth("//v2", Sign::kPlus, AuthType::kRecursive)});
  EXPECT_EQ(out, "<r><u1><v2>b</v2></u1><u2><v3>c</v3></u2></r>");
}

TEST_F(PruneTest, StatsCountsAreConsistent) {
  auto doc = Parse("<a x=\"1\"><b>t</b><c/><d>u</d></a>");
  int64_t before = doc->node_count();
  LabelAndPrune(doc.get(), {Auth("//b", Sign::kPlus, AuthType::kRecursive)});
  EXPECT_EQ(stats_.nodes_before, before);
  EXPECT_EQ(stats_.nodes_after, doc->node_count());
  EXPECT_LT(stats_.nodes_after, stats_.nodes_before);
}

TEST_F(PruneTest, ReindexesAfterPruning) {
  auto doc = Parse("<a><b/><c/><d/></a>");
  LabelAndPrune(doc.get(), {Auth("//c", Sign::kPlus, AuthType::kRecursive)});
  // doc, a, c — contiguous doc orders.
  EXPECT_EQ(doc->node_count(), 3);
  EXPECT_EQ(doc->doc_order(), 0);
  EXPECT_EQ(doc->root()->doc_order(), 1);
  EXPECT_EQ(doc->root()->child(0)->doc_order(), 2);
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
