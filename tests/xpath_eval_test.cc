#include <gtest/gtest.h>

#include <cmath>

#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlsec {
namespace xpath {
namespace {

using xml::Document;
using xml::Element;
using xml::ParseDocument;

class XPathEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto result = ParseDocument(R"(<laboratory name="CSlab">
<project name="Access Models" type="internal">
<manager><fname>Ada</fname><lname>Lovelace</lname></manager>
<paper category="private"><title>P1</title></paper>
<paper category="public"><title>P2</title></paper>
<fund sponsor="acme">5000</fund>
</project>
<project name="Web" type="public">
<manager><fname>Alan</fname><lname>Turing</lname></manager>
<paper category="public"><title>P3</title></paper>
</project>
</laboratory>)");
    ASSERT_TRUE(result.ok()) << result.status();
    doc_ = std::move(result).value();
  }

  NodeSet Select(std::string_view expr) {
    auto result = SelectXPath(expr, doc_->root());
    EXPECT_TRUE(result.ok()) << expr << ": " << result.status();
    return result.ok() ? *result : NodeSet{};
  }

  Value Eval(std::string_view expr) {
    auto result = EvaluateXPath(expr, doc_->root());
    EXPECT_TRUE(result.ok()) << expr << ": " << result.status();
    return result.ok() ? *result : Value();
  }

  std::unique_ptr<Document> doc_;
};

TEST_F(XPathEvalTest, AbsoluteChildPath) {
  NodeSet projects = Select("/laboratory/project");
  EXPECT_EQ(projects.size(), 2u);
}

TEST_F(XPathEvalTest, RelativePathFromRootElement) {
  // Relative paths use the context node (here, the root element).
  NodeSet projects = Select("project");
  EXPECT_EQ(projects.size(), 2u);
  NodeSet managers = Select("project/manager");
  EXPECT_EQ(managers.size(), 2u);
}

TEST_F(XPathEvalTest, DescendantShortcut) {
  EXPECT_EQ(Select("//paper").size(), 3u);
  EXPECT_EQ(Select("/laboratory//fname").size(), 2u);
  EXPECT_EQ(Select("//title").size(), 3u);
}

TEST_F(XPathEvalTest, WildcardSelectsElements) {
  NodeSet children = Select("/laboratory/*");
  EXPECT_EQ(children.size(), 2u);
}

TEST_F(XPathEvalTest, AttributeAxis) {
  NodeSet names = Select("/laboratory/project/@name");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0]->NodeValue(), "Access Models");
  EXPECT_EQ(names[1]->NodeValue(), "Web");
  EXPECT_EQ(Select("//@*").size(), 9u);
}

TEST_F(XPathEvalTest, AttributePredicateFromPaper) {
  NodeSet private_papers =
      Select("/laboratory//paper[./@category=\"private\"]");
  ASSERT_EQ(private_papers.size(), 1u);
  NodeSet internal_projects = Select("project[./@type=\"internal\"]");
  ASSERT_EQ(internal_projects.size(), 1u);
  EXPECT_EQ(internal_projects[0]->AsElement()->GetAttribute("name"),
            "Access Models");
  NodeSet managers = Select("project[./@type=\"public\"]/manager");
  ASSERT_EQ(managers.size(), 1u);
  EXPECT_EQ(static_cast<const Element*>(managers[0])->TextContent(),
            "AlanTuring");
}

TEST_F(XPathEvalTest, PositionalPredicates) {
  NodeSet first = Select("/laboratory/project[1]");
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0]->AsElement()->GetAttribute("name"), "Access Models");
  NodeSet last = Select("/laboratory/project[last()]");
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0]->AsElement()->GetAttribute("name"), "Web");
  NodeSet pos2 = Select("/laboratory/project[position()=2]");
  ASSERT_EQ(pos2.size(), 1u);
  EXPECT_EQ(pos2[0]->AsElement()->GetAttribute("name"), "Web");
}

TEST_F(XPathEvalTest, AncestorAxisFromPaper) {
  NodeSet projects = Select("//fund/ancestor::project");
  ASSERT_EQ(projects.size(), 1u);
  EXPECT_EQ(projects[0]->AsElement()->GetAttribute("name"), "Access Models");
}

TEST_F(XPathEvalTest, ParentAndSelf) {
  EXPECT_EQ(Select("//title/..").size(), 3u);
  EXPECT_EQ(Select("//title/../self::paper").size(), 3u);
  EXPECT_EQ(Select(".").size(), 1u);
}

TEST_F(XPathEvalTest, SiblingAxes) {
  NodeSet after = Select("//paper[@category=\"private\"]"
                         "/following-sibling::paper");
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(static_cast<const Element*>(after[0])->TextContent(), "P2");
  NodeSet before =
      Select("//fund/preceding-sibling::paper");
  EXPECT_EQ(before.size(), 2u);
  // Reverse-axis positional predicate: nearest first.
  NodeSet nearest = Select("//fund/preceding-sibling::paper[1]");
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(static_cast<const Element*>(nearest[0])->TextContent(), "P2");
}

TEST_F(XPathEvalTest, FollowingAndPrecedingAxes) {
  // 'following' excludes descendants; the private paper is followed by
  // P2's paper+title, fund, whole second project subtree...
  NodeSet following =
      Select("//paper[@category=\"private\"]/following::paper");
  EXPECT_EQ(following.size(), 2u);
  NodeSet preceding = Select("//fund/preceding::paper");
  EXPECT_EQ(preceding.size(), 2u);
}

TEST_F(XPathEvalTest, TextNodeTest) {
  NodeSet texts = Select("//fname/text()");
  ASSERT_EQ(texts.size(), 2u);
  EXPECT_EQ(texts[0]->NodeValue(), "Ada");
}

TEST_F(XPathEvalTest, UnionIsDocOrderDeduped) {
  NodeSet set = Select("//paper | //manager | //paper");
  EXPECT_EQ(set.size(), 5u);
  for (size_t i = 1; i < set.size(); ++i) {
    EXPECT_LT(set[i - 1]->doc_order(), set[i]->doc_order());
  }
}

TEST_F(XPathEvalTest, CountAndSum) {
  EXPECT_DOUBLE_EQ(Eval("count(//paper)").ToNumber(), 3);
  EXPECT_DOUBLE_EQ(Eval("sum(//fund)").ToNumber(), 5000);
  EXPECT_DOUBLE_EQ(Eval("count(//zzz)").ToNumber(), 0);
}

TEST_F(XPathEvalTest, StringFunctions) {
  EXPECT_EQ(Eval("string(/laboratory/@name)").ToString(), "CSlab");
  EXPECT_EQ(Eval("concat(\"a\",\"b\",\"c\")").ToString(), "abc");
  EXPECT_TRUE(Eval("starts-with(\"hello\",\"he\")").ToBool());
  EXPECT_FALSE(Eval("starts-with(\"hello\",\"lo\")").ToBool());
  EXPECT_TRUE(Eval("contains(\"hello\",\"ell\")").ToBool());
  EXPECT_EQ(Eval("substring-before(\"a=b\",\"=\")").ToString(), "a");
  EXPECT_EQ(Eval("substring-after(\"a=b\",\"=\")").ToString(), "b");
  EXPECT_EQ(Eval("substring(\"12345\",2,3)").ToString(), "234");
  EXPECT_EQ(Eval("substring(\"12345\",2)").ToString(), "2345");
  // Spec rounding edge case.
  EXPECT_EQ(Eval("substring(\"12345\",1.5,2.6)").ToString(), "234");
  EXPECT_DOUBLE_EQ(Eval("string-length(\"abcd\")").ToNumber(), 4);
  EXPECT_EQ(Eval("normalize-space(\"  a  b \")").ToString(), "a b");
  EXPECT_EQ(Eval("translate(\"bar\",\"abc\",\"ABC\")").ToString(), "BAr");
  EXPECT_EQ(Eval("translate(\"-a-b-\",\"-\",\"\")").ToString(), "ab");
}

TEST_F(XPathEvalTest, NameFunctions) {
  EXPECT_EQ(Eval("name(/laboratory/project[1])").ToString(), "project");
  EXPECT_EQ(Eval("local-name(//@name)").ToString(), "name");
  EXPECT_EQ(Eval("name()").ToString(), "laboratory");
}

TEST_F(XPathEvalTest, BooleanAndNumberFunctions) {
  EXPECT_TRUE(Eval("boolean(//paper)").ToBool());
  EXPECT_FALSE(Eval("boolean(//zzz)").ToBool());
  EXPECT_TRUE(Eval("not(false())").ToBool());
  EXPECT_DOUBLE_EQ(Eval("number(\"3.5\")").ToNumber(), 3.5);
  EXPECT_TRUE(std::isnan(Eval("number(\"abc\")").ToNumber()));
  EXPECT_DOUBLE_EQ(Eval("floor(2.7)").ToNumber(), 2);
  EXPECT_DOUBLE_EQ(Eval("ceiling(2.1)").ToNumber(), 3);
  EXPECT_DOUBLE_EQ(Eval("round(2.5)").ToNumber(), 3);
  EXPECT_DOUBLE_EQ(Eval("round(-2.5)").ToNumber(), -2);
}

TEST_F(XPathEvalTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(Eval("1 + 2 * 3").ToNumber(), 7);
  EXPECT_DOUBLE_EQ(Eval("10 div 4").ToNumber(), 2.5);
  EXPECT_DOUBLE_EQ(Eval("10 mod 3").ToNumber(), 1);
  EXPECT_DOUBLE_EQ(Eval("-(2 + 3)").ToNumber(), -5);
}

TEST_F(XPathEvalTest, ComparisonSemantics) {
  // Node-set = string: exists a node with that string-value.
  EXPECT_TRUE(Eval("//fname = \"Ada\"").ToBool());
  EXPECT_FALSE(Eval("//fname = \"Grace\"").ToBool());
  // Node-set != string: exists a node with a different value (both can
  // be true simultaneously — XPath 1.0 semantics).
  EXPECT_TRUE(Eval("//fname != \"Ada\"").ToBool());
  // Node-set vs number.
  EXPECT_TRUE(Eval("//fund = 5000").ToBool());
  EXPECT_TRUE(Eval("//fund > 4999").ToBool());
  EXPECT_FALSE(Eval("//fund > 5000").ToBool());
  // Plain values.
  EXPECT_TRUE(Eval("\"5\" = 5").ToBool());
  EXPECT_TRUE(Eval("true() = 1").ToBool());
  EXPECT_TRUE(Eval("\"a\" = \"a\"").ToBool());
  EXPECT_FALSE(Eval("\"a\" = \"b\"").ToBool());
}

TEST_F(XPathEvalTest, BooleanConnectives) {
  // Short-circuit: the undefined function on the right is never called.
  EXPECT_TRUE(Eval("true() or frobnicate()").ToBool());
  EXPECT_FALSE(Eval("false() and frobnicate()").ToBool());
  EXPECT_TRUE(Eval("1 = 1 and 2 = 2").ToBool());
}

TEST_F(XPathEvalTest, PredicateWithAndOr) {
  NodeSet set = Select(
      "//paper[@category=\"public\" or @category=\"private\"]");
  EXPECT_EQ(set.size(), 3u);
  NodeSet both = Select(
      "//project[@type=\"internal\" and @name=\"Access Models\"]");
  EXPECT_EQ(both.size(), 1u);
}

TEST_F(XPathEvalTest, DocumentNodeContext) {
  auto from_doc = SelectXPath("/laboratory", doc_.get());
  ASSERT_TRUE(from_doc.ok());
  EXPECT_EQ(from_doc->size(), 1u);
}

TEST_F(XPathEvalTest, NonNodeSetToSelectNodesFails) {
  auto result = SelectXPath("1 + 1", doc_->root());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(XPathEvalTest, UnknownFunctionFails) {
  auto result = EvaluateXPath("frobnicate(1)", doc_->root());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("frobnicate"), std::string::npos);
}

TEST_F(XPathEvalTest, ArityErrors) {
  EXPECT_FALSE(EvaluateXPath("count()", doc_->root()).ok());
  EXPECT_FALSE(EvaluateXPath("concat(\"a\")", doc_->root()).ok());
  EXPECT_FALSE(EvaluateXPath("not()", doc_->root()).ok());
}

TEST_F(XPathEvalTest, NumberFormatting) {
  EXPECT_EQ(Eval("string(1)").ToString(), "1");
  EXPECT_EQ(Eval("string(1.5)").ToString(), "1.5");
  EXPECT_EQ(Eval("string(-17)").ToString(), "-17");
  EXPECT_EQ(Eval("string(0)").ToString(), "0");
  EXPECT_EQ(Eval("string(1 div 0)").ToString(), "Infinity");
  EXPECT_EQ(Eval("string(0 div 0)").ToString(), "NaN");
}

TEST_F(XPathEvalTest, VariableBindings) {
  VariableBindings vars;
  vars.emplace("who", Value(std::string("Ada")));
  vars.emplace("limit", Value(2.0));
  vars.emplace("flag", Value(true));

  auto by_name = SelectXPath("//fname[. = $who]", doc_->root(), &vars);
  ASSERT_TRUE(by_name.ok()) << by_name.status();
  EXPECT_EQ(by_name->size(), 1u);

  auto arith = EvaluateXPath("$limit * 3", doc_->root(), &vars);
  ASSERT_TRUE(arith.ok());
  EXPECT_DOUBLE_EQ(arith->ToNumber(), 6.0);

  auto boolean = EvaluateXPath("$flag and true()", doc_->root(), &vars);
  ASSERT_TRUE(boolean.ok());
  EXPECT_TRUE(boolean->ToBool());

  auto positional =
      SelectXPath("/laboratory/project[position() <= $limit]",
                  doc_->root(), &vars);
  ASSERT_TRUE(positional.ok());
  EXPECT_EQ(positional->size(), 2u);
}

TEST_F(XPathEvalTest, UnboundVariableIsError) {
  auto result = EvaluateXPath("$ghost", doc_->root());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ghost"), std::string::npos);
  VariableBindings vars;
  vars.emplace("other", Value(1.0));
  auto still = EvaluateXPath("$ghost", doc_->root(), &vars);
  EXPECT_FALSE(still.ok());
}

TEST_F(XPathEvalTest, VariableSyntaxRoundTrip) {
  auto compiled = CompileXPath("//a[@owner=$user]");
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ((*compiled)->ToString(),
            CompileXPath((*compiled)->ToString()).value()->ToString());
}

TEST_F(XPathEvalTest, IdFunction) {
  auto doc = ParseDocument(
      "<!DOCTYPE r [<!ELEMENT r (item*)><!ELEMENT item (#PCDATA)>"
      "<!ATTLIST item key ID #REQUIRED>]>"
      "<r><item key=\"a\">1</item><item key=\"b\">2</item></r>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto set = SelectXPath("id(\"b a\")", (*doc)->root());
  ASSERT_TRUE(set.ok()) << set.status();
  EXPECT_EQ(set->size(), 2u);
}

}  // namespace
}  // namespace xpath
}  // namespace xmlsec
