// Unit tests of the XPath-over-DTD abstract interpreter: schema-graph
// construction, abstract satisfiability, containment, and whole-schema
// coverage — all without any document instance.

#include "analysis/schema_paths.h"

#include <gtest/gtest.h>

#include "workload/docgen.h"
#include "xml/dtd_parser.h"

namespace xmlsec {
namespace analysis {
namespace {

std::unique_ptr<xml::Dtd> MustParseDtd(const std::string& text) {
  auto dtd = xml::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return std::move(*dtd);
}

/// The paper's Fig. 1 laboratory DTD (via the workload generator).
class LaboratoryPathsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dtd_ = MustParseDtd(workload::LaboratoryDtd());
    graph_ = SchemaGraph::Build(*dtd_);
    ASSERT_TRUE(graph_.valid());
  }

  AbstractSelection Analyze(const std::string& path) {
    return PathAnalyzer(&graph_).Analyze(path);
  }

  std::unique_ptr<xml::Dtd> dtd_;
  SchemaGraph graph_;
};

TEST_F(LaboratoryPathsTest, InfersRootOfBareDtd) {
  // The .dtd text has no doctype name; the only unreferenced element is
  // the document root.
  EXPECT_EQ(graph_.root(), "laboratory");
  EXPECT_TRUE(graph_.reachable().count("paper") > 0);
  EXPECT_TRUE(graph_.HasAttribute("paper", "category"));
  EXPECT_FALSE(graph_.HasAttribute("paper", "bogus"));
}

TEST_F(LaboratoryPathsTest, SatisfiablePaths) {
  for (const char* path :
       {"/laboratory", "//paper", "/laboratory/project/paper",
        "project/paper/title", "//paper/@category", "//*",
        "/laboratory//paper", "project/manager | project/member",
        "//paper[./@category=\"public\"]"}) {
    AbstractSelection sel = Analyze(path);
    EXPECT_FALSE(sel.unknown) << path;
    EXPECT_FALSE(sel.points.empty()) << path;
  }
}

TEST_F(LaboratoryPathsTest, AbstractPointsAreExact) {
  AbstractSelection sel = Analyze("//paper");
  ASSERT_FALSE(sel.unknown);
  EXPECT_EQ(sel.points, (std::set<SchemaPoint>{{"paper", ""}}));

  sel = Analyze("project/*");
  ASSERT_FALSE(sel.unknown);
  EXPECT_EQ(sel.points, (std::set<SchemaPoint>{
                            {"manager", ""}, {"member", ""},
                            {"paper", ""}, {"fund", ""}}));

  sel = Analyze("//paper/@category");
  ASSERT_FALSE(sel.unknown);
  EXPECT_EQ(sel.points, (std::set<SchemaPoint>{{"paper", "category"}}));
}

TEST_F(LaboratoryPathsTest, UnsatisfiablePaths) {
  for (const char* path :
       {"//budget", "/project", "/laboratory/paper", "//paper/title/fund",
        "project/manager/paper", "//title/@category",
        // Predicate over a provably empty operand path.
        "//paper[budget]", "//paper[./@owner=\"tom\"]",
        "//paper[budget=\"x\"]"}) {
    AbstractSelection sel = Analyze(path);
    EXPECT_FALSE(sel.unknown) << path;
    EXPECT_TRUE(sel.definitely_empty()) << path;
  }
}

TEST_F(LaboratoryPathsTest, PredicatesNeverPruneSatisfiableCandidates) {
  // Positional / function predicates are kept conservatively.
  for (const char* path :
       {"//paper[1]", "//paper[last()]", "//paper[./@category]",
        "//project[manager]"}) {
    EXPECT_FALSE(Analyze(path).definitely_empty()) << path;
  }
}

TEST_F(LaboratoryPathsTest, UnsupportedConstructsAreUnknown) {
  for (const char* path :
       {"//paper/..", "//paper/ancestor::project", "//paper/text()",
        "$var/paper"}) {
    EXPECT_TRUE(Analyze(path).unknown) << path;
  }
  // Unknown is not "empty": it must not prove anything.
  EXPECT_FALSE(Analyze("//paper/..").definitely_empty());
}

TEST_F(LaboratoryPathsTest, EmptyPathSelectsRoot) {
  PathAnalyzer analyzer(&graph_);
  AbstractSelection sel = analyzer.Analyze("");
  EXPECT_EQ(sel.points, (std::set<SchemaPoint>{{"laboratory", ""}}));
}

TEST_F(LaboratoryPathsTest, InfluenceClosesOverPropagation) {
  PathAnalyzer analyzer(&graph_);
  // Local on project: the element and its own attributes only.
  AbstractSelection local =
      analyzer.Influence(PathQuery{"//project", false});
  EXPECT_TRUE(local.MayContain({"project", ""}));
  EXPECT_TRUE(local.MayContain({"project", "type"}));
  EXPECT_FALSE(local.MayContain({"paper", ""}));
  // Recursive on project: the whole subtree.
  AbstractSelection rec = analyzer.Influence(PathQuery{"//project", true});
  EXPECT_TRUE(rec.MayContain({"paper", "category"}));
  EXPECT_TRUE(rec.MayContain({"title", ""}));
  EXPECT_FALSE(rec.MayContain({"laboratory", ""}));
}

TEST_F(LaboratoryPathsTest, CoversInfluenceMode) {
  PathAnalyzer analyzer(&graph_);
  // A recursive authorization on the root influences everything.
  PathQuery whole{"", true};
  EXPECT_TRUE(analyzer.Covers(whole, PathQuery{"//paper", false},
                              CoverMode::kInfluence));
  EXPECT_TRUE(analyzer.Covers(whole, PathQuery{"//paper/@category", false},
                              CoverMode::kInfluence));
  // The reverse does not hold.
  EXPECT_FALSE(analyzer.Covers(PathQuery{"//paper", false}, whole,
                               CoverMode::kInfluence));
  // //paper covers the more specific /laboratory/project/paper.
  EXPECT_TRUE(analyzer.Covers(PathQuery{"//paper", false},
                              PathQuery{"/laboratory/project/paper", false},
                              CoverMode::kInfluence));
  // A local authorization covers the attributes of its targets.
  EXPECT_TRUE(analyzer.Covers(PathQuery{"//paper", false},
                              PathQuery{"//paper/@category", false},
                              CoverMode::kInfluence));
  // Outer queries with predicates can never prove containment.
  EXPECT_FALSE(analyzer.Covers(PathQuery{"//paper[1]", false},
                               PathQuery{"//paper", false},
                               CoverMode::kInfluence));
  // Inner predicates are ignored (over-approximation stays sound).
  EXPECT_TRUE(analyzer.Covers(PathQuery{"//paper", false},
                              PathQuery{"//paper[1]", false},
                              CoverMode::kInfluence));
}

TEST_F(LaboratoryPathsTest, CoversSameSlotMode) {
  PathAnalyzer analyzer(&graph_);
  // Recursive influence earns no credit in same-slot mode: /laboratory
  // recursive does NOT explicitly select paper nodes.
  EXPECT_TRUE(analyzer.Covers(PathQuery{"", true},
                              PathQuery{"//paper", false},
                              CoverMode::kInfluence));
  EXPECT_FALSE(analyzer.Covers(PathQuery{"", true},
                               PathQuery{"//paper", true},
                               CoverMode::kSameSlot));
  // Exact element coverage works.
  EXPECT_TRUE(analyzer.Covers(PathQuery{"//paper", false},
                              PathQuery{"/laboratory/project/paper", false},
                              CoverMode::kSameSlot));
  // An element query does not same-slot-cover an attribute query.
  EXPECT_FALSE(analyzer.Covers(PathQuery{"//paper", false},
                               PathQuery{"//paper/@category", false},
                               CoverMode::kSameSlot));
  EXPECT_TRUE(analyzer.Covers(PathQuery{"//paper/@*", false},
                              PathQuery{"//paper/@category", false},
                              CoverMode::kSameSlot));
}

TEST_F(LaboratoryPathsTest, CoversAllInstances) {
  PathAnalyzer analyzer(&graph_);
  // //paper selects every paper instance.
  EXPECT_TRUE(
      analyzer.CoversAllInstances(PathQuery{"//paper", false},
                                  SchemaPoint{"paper", ""}));
  // A recursive root authorization influences every instance of every
  // point.
  for (const std::string& element : graph_.reachable()) {
    EXPECT_TRUE(analyzer.CoversAllInstances(PathQuery{"", true},
                                            SchemaPoint{element, ""}))
        << element;
  }
  // A local root authorization does not reach papers.
  EXPECT_FALSE(analyzer.CoversAllInstances(PathQuery{"", false},
                                           SchemaPoint{"paper", ""}));
  // /laboratory/project covers all projects (the only parent chain),
  // and covers project attributes through the element.
  EXPECT_TRUE(
      analyzer.CoversAllInstances(PathQuery{"/laboratory/project", false},
                                  SchemaPoint{"project", ""}));
  EXPECT_TRUE(
      analyzer.CoversAllInstances(PathQuery{"/laboratory/project", false},
                                  SchemaPoint{"project", "type"}));
  // Predicates disqualify the proof (they may deselect instances).
  EXPECT_FALSE(analyzer.CoversAllInstances(
      PathQuery{"//paper[./@category=\"public\"]", false},
      SchemaPoint{"paper", ""}));
}

// --- Recursive DTD ------------------------------------------------------

class RecursivePathsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dtd_ = MustParseDtd(
        "<!ELEMENT part (name, part*)>\n"
        "<!ATTLIST part serial CDATA #REQUIRED>\n"
        "<!ELEMENT name (#PCDATA)>\n");
    graph_ = SchemaGraph::Build(*dtd_);
    ASSERT_TRUE(graph_.valid());
  }

  std::unique_ptr<xml::Dtd> dtd_;
  SchemaGraph graph_;
};

TEST_F(RecursivePathsTest, RecursionFoldsFinitely) {
  EXPECT_EQ(graph_.root(), "part");
  PathAnalyzer analyzer(&graph_);
  // Arbitrarily deep chains stay satisfiable (the document can nest).
  EXPECT_FALSE(analyzer.Analyze("/part/part/part/part").definitely_empty());
  EXPECT_FALSE(analyzer.Analyze("//part/name").definitely_empty());
  // name has no children: nothing below it.
  EXPECT_TRUE(analyzer.Analyze("//name/part").definitely_empty());
  EXPECT_TRUE(analyzer.Analyze("/part/name/name").definitely_empty());
}

TEST_F(RecursivePathsTest, ContainmentUnderRecursion) {
  PathAnalyzer analyzer(&graph_);
  // //part covers every nested part chain.
  EXPECT_TRUE(analyzer.Covers(PathQuery{"//part", false},
                              PathQuery{"/part/part/part", false},
                              CoverMode::kSameSlot));
  // /part/part does NOT cover /part (the root instance is missed).
  EXPECT_FALSE(analyzer.Covers(PathQuery{"/part/part", false},
                               PathQuery{"//part", false},
                               CoverMode::kSameSlot));
  // A recursive authorization on the root part influences all names.
  EXPECT_TRUE(analyzer.Covers(PathQuery{"/part", true},
                              PathQuery{"//name", false},
                              CoverMode::kInfluence));
  // A local one does not.
  EXPECT_FALSE(analyzer.Covers(PathQuery{"/part", false},
                               PathQuery{"//name", false},
                               CoverMode::kInfluence));
  // //part selects every instance of the folded recursive point.
  EXPECT_TRUE(analyzer.CoversAllInstances(PathQuery{"//part", false},
                                          SchemaPoint{"part", ""}));
  // /part selects only the outermost instance.
  EXPECT_FALSE(analyzer.CoversAllInstances(PathQuery{"/part", false},
                                           SchemaPoint{"part", ""}));
  // ...but recursively it covers them all.
  EXPECT_TRUE(analyzer.CoversAllInstances(PathQuery{"/part", true},
                                          SchemaPoint{"part", ""}));
}

TEST(SchemaGraphTest, InvalidWhenEmpty) {
  auto dtd = MustParseDtd("<!ENTITY x \"y\">");
  SchemaGraph graph = SchemaGraph::Build(*dtd);
  EXPECT_FALSE(graph.valid());
  PathAnalyzer analyzer(&graph);
  // Nothing is provable against an empty schema; Analyze reports empty
  // (no valid documents exist at all), Covers refuses.
  EXPECT_FALSE(
      analyzer.Covers(PathQuery{"//a", false}, PathQuery{"//a", false},
                      CoverMode::kInfluence));
}

TEST(SchemaGraphTest, DescendantsOf) {
  auto dtd = MustParseDtd(workload::LaboratoryDtd());
  SchemaGraph graph = SchemaGraph::Build(*dtd);
  std::set<std::string> below = graph.DescendantsOf({"paper"}, false);
  EXPECT_EQ(below, (std::set<std::string>{"title", "abstract"}));
  below = graph.DescendantsOf({"paper"}, true);
  EXPECT_EQ(below, (std::set<std::string>{"paper", "title", "abstract"}));
}

}  // namespace
}  // namespace analysis
}  // namespace xmlsec
