// Table-driven XML validity sweep: document snippets against a fixed DTD,
// expected valid/invalid with a message fragment for the invalid ones.

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/validator.h"

namespace xmlsec {
namespace xml {
namespace {

constexpr char kDtd[] =
    "<!DOCTYPE library [\n"
    "<!ELEMENT library (section+, index?)>\n"
    "<!ATTLIST library lang (en|it|de) \"en\">\n"
    "<!ELEMENT section (heading, (book | journal)*)>\n"
    "<!ATTLIST section id ID #REQUIRED>\n"
    "<!ELEMENT heading (#PCDATA)>\n"
    "<!ELEMENT book (title, author+)>\n"
    "<!ATTLIST book isbn NMTOKEN #REQUIRED loan IDREF #IMPLIED>\n"
    "<!ELEMENT journal (title)>\n"
    "<!ATTLIST journal issue CDATA #REQUIRED>\n"
    "<!ELEMENT title (#PCDATA)>\n"
    "<!ELEMENT author (#PCDATA)>\n"
    "<!ELEMENT index EMPTY>\n"
    "<!ATTLIST index style CDATA #FIXED \"flat\">\n"
    "]>";

struct Case {
  const char* name;
  const char* body;  // document after the DOCTYPE
  bool valid;
  const char* message_fragment;  // for invalid cases
};

constexpr Case kCases[] = {
    {"minimal_valid",
     "<library><section id=\"s1\"><heading>H</heading></section></library>",
     true, nullptr},
    {"full_valid",
     "<library lang=\"it\"><section id=\"s1\"><heading>H</heading>"
     "<book isbn=\"i1\"><title>T</title><author>A</author></book>"
     "<journal issue=\"4\"><title>J</title></journal></section>"
     "<index style=\"flat\"/></library>",
     true, nullptr},
    {"choice_repetition_valid",
     "<library><section id=\"s1\"><heading>H</heading>"
     "<journal issue=\"1\"><title>a</title></journal>"
     "<book isbn=\"b\"><title>b</title><author>x</author></book>"
     "<journal issue=\"2\"><title>c</title></journal>"
     "</section></library>",
     true, nullptr},
    {"missing_required_section",
     "<library><index/></library>", false, "does not match model"},
    {"wrong_order",
     "<library><section id=\"s1\"><book isbn=\"i\"><title>T</title>"
     "<author>A</author></book><heading>H</heading></section></library>",
     false, "does not match model"},
    {"book_without_author",
     "<library><section id=\"s1\"><heading>H</heading>"
     "<book isbn=\"i\"><title>T</title></book></section></library>",
     false, "does not match model"},
    {"missing_required_id",
     "<library><section><heading>H</heading></section></library>", false,
     "required attribute 'id'"},
    {"duplicate_ids",
     "<library><section id=\"s1\"><heading>a</heading></section>"
     "<section id=\"s1\"><heading>b</heading></section></library>",
     false, "duplicate ID"},
    {"dangling_idref",
     "<library><section id=\"s1\"><heading>H</heading>"
     "<book isbn=\"i\" loan=\"nobody\"><title>T</title>"
     "<author>A</author></book></section></library>",
     false, "does not match any ID"},
    {"valid_idref",
     "<library><section id=\"s1\"><heading>H</heading>"
     "<book isbn=\"i\" loan=\"s1\"><title>T</title>"
     "<author>A</author></book></section></library>",
     true, nullptr},
    {"bad_enumeration",
     "<library lang=\"fr\"><section id=\"s1\"><heading>H</heading>"
     "</section></library>",
     false, "not in the enumeration"},
    {"nmtoken_with_space",
     "<library><section id=\"s1\"><heading>H</heading>"
     "<book isbn=\"bad isbn\"><title>T</title><author>A</author></book>"
     "</section></library>",
     false, "NMTOKEN"},
    {"fixed_attribute_wrong_value",
     "<library><section id=\"s1\"><heading>H</heading></section>"
     "<index style=\"fancy\"/></library>",
     false, "#FIXED"},
    {"empty_element_with_content",
     "<library><section id=\"s1\"><heading>H</heading></section>"
     "<index>boo</index></library>",
     false, "declared EMPTY"},
    // The content-model violation is reported first; the undeclared
    // element itself is the "(and 1 more)" entry.
    {"undeclared_element",
     "<library><section id=\"s1\"><heading>H</heading><movie/></section>"
     "</library>",
     false, "does not match model"},
    {"undeclared_attribute",
     "<library mood=\"sunny\"><section id=\"s1\"><heading>H</heading>"
     "</section></library>",
     false, "is not declared"},
    {"text_in_element_content",
     "<library>words<section id=\"s1\"><heading>H</heading></section>"
     "</library>",
     false, "character data"},
    {"whitespace_between_children_ok",
     "<library>\n  <section id=\"s1\">\n    <heading>H</heading>\n"
     "  </section>\n</library>",
     true, nullptr},
};

class ValidityConformanceTest : public ::testing::TestWithParam<Case> {};

TEST_P(ValidityConformanceTest, Validates) {
  const Case& c = GetParam();
  auto doc = ParseDocument(std::string(kDtd) + c.body);
  ASSERT_TRUE(doc.ok()) << c.name << ": " << doc.status();
  Status status = ValidateDocument(doc->get());
  if (c.valid) {
    EXPECT_TRUE(status.ok()) << c.name << ": " << status;
  } else {
    ASSERT_FALSE(status.ok()) << c.name;
    EXPECT_NE(status.message().find(c.message_fragment), std::string::npos)
        << c.name << ": got '" << status.message() << "', expected fragment '"
        << c.message_fragment << "'";
  }
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValidityConformanceTest,
                         ::testing::ValuesIn(kCases), CaseName);

}  // namespace
}  // namespace xml
}  // namespace xmlsec
