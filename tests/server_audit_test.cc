#include <gtest/gtest.h>

#include "server/audit_log.h"
#include "server/document_server.h"
#include "server/repository.h"
#include "server/user_directory.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace server {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        repo_.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
    ASSERT_TRUE(repo_
                    .AddDocument("CSlab.xml",
                                 "<laboratory><project name=\"P\" "
                                 "type=\"public\"><manager><fname>A</fname>"
                                 "<lname>B</lname></manager>"
                                 "<paper category=\"public\">"
                                 "<title>T</title></paper></project>"
                                 "</laboratory>",
                                 "laboratory.xml")
                    .ok());
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl><authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" type=\"R\"/></xacl>")
                    .ok());
    ASSERT_TRUE(users_.CreateUser("tom", "secret").ok());
  }

  ServerRequest Request(const char* uri) {
    ServerRequest request;
    request.user = "tom";
    request.password = "secret";
    request.ip = "10.0.0.1";
    request.sym = "pc.lab.example";
    request.uri = uri;
    request.time = 1234;
    return request;
  }

  Repository repo_;
  UserDirectory users_;
  authz::GroupStore groups_;
};

TEST_F(AuditTest, RecordsSuccessfulRequests) {
  AuditLog audit;
  SecureDocumentServer server(&repo_, &users_, &groups_);
  server.set_audit_log(&audit);

  server.Handle(Request("CSlab.xml"));
  ASSERT_EQ(audit.size(), 1u);
  AuditEntry entry = audit.Entries()[0];
  EXPECT_EQ(entry.user, "tom");
  EXPECT_EQ(entry.ip, "10.0.0.1");
  EXPECT_EQ(entry.uri, "CSlab.xml");
  EXPECT_EQ(entry.http_status, 200);
  EXPECT_EQ(entry.time, 1234);
  EXPECT_GT(entry.visible_nodes, 0);
  EXPECT_FALSE(entry.cache_hit);
  std::string line = entry.ToString();
  EXPECT_NE(line.find("tom@10.0.0.1"), std::string::npos);
  EXPECT_NE(line.find("-> 200"), std::string::npos);
}

TEST_F(AuditTest, RecordsDenialsAndMisses) {
  AuditLog audit;
  SecureDocumentServer server(&repo_, &users_, &groups_);
  server.set_audit_log(&audit);

  ServerRequest bad_password = Request("CSlab.xml");
  bad_password.password = "wrong";
  server.Handle(bad_password);
  server.Handle(Request("ghost.xml"));
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit.Entries()[0].http_status, 401);
  EXPECT_EQ(audit.Entries()[1].http_status, 404);
}

TEST_F(AuditTest, RecordsQueriesAndCacheHits) {
  AuditLog audit;
  ServerConfig config;
  config.view_cache_capacity = 8;
  SecureDocumentServer server(&repo_, &users_, &groups_, config);
  server.set_audit_log(&audit);

  ServerRequest query = Request("CSlab.xml");
  query.query = "//title";
  server.Handle(query);
  server.Handle(Request("CSlab.xml"));  // miss, fills cache
  server.Handle(Request("CSlab.xml"));  // hit
  ASSERT_EQ(audit.size(), 3u);
  EXPECT_EQ(audit.Entries()[0].query, "//title");
  EXPECT_FALSE(audit.Entries()[1].cache_hit);
  EXPECT_TRUE(audit.Entries()[2].cache_hit);
  EXPECT_NE(audit.Entries()[2].ToString().find("[cache]"),
            std::string::npos);
}

TEST_F(AuditTest, CapacityBoundsAndDrain) {
  AuditLog audit(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    AuditEntry entry;
    entry.uri = "r" + std::to_string(i);
    audit.Record(std::move(entry));
  }
  EXPECT_EQ(audit.size(), 3u);
  EXPECT_EQ(audit.total_recorded(), 5);
  std::vector<AuditEntry> drained = audit.TakeAll();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].uri, "r2");  // Oldest kept entry.
  EXPECT_EQ(drained[2].uri, "r4");
  EXPECT_EQ(audit.size(), 0u);
  EXPECT_EQ(audit.total_recorded(), 5);
}

}  // namespace
}  // namespace server
}  // namespace xmlsec
