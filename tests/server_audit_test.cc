#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/failpoint.h"
#include "server/audit_log.h"
#include "server/document_server.h"
#include "server/repository.h"
#include "server/user_directory.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace server {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        repo_.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
    ASSERT_TRUE(repo_
                    .AddDocument("CSlab.xml",
                                 "<laboratory><project name=\"P\" "
                                 "type=\"public\"><manager><fname>A</fname>"
                                 "<lname>B</lname></manager>"
                                 "<paper category=\"public\">"
                                 "<title>T</title></paper></project>"
                                 "</laboratory>",
                                 "laboratory.xml")
                    .ok());
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl><authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" type=\"R\"/></xacl>")
                    .ok());
    ASSERT_TRUE(users_.CreateUser("tom", "secret").ok());
  }

  ServerRequest Request(const char* uri) {
    ServerRequest request;
    request.user = "tom";
    request.password = "secret";
    request.ip = "10.0.0.1";
    request.sym = "pc.lab.example";
    request.uri = uri;
    request.time = 1234;
    return request;
  }

  Repository repo_;
  UserDirectory users_;
  authz::GroupStore groups_;
};

TEST_F(AuditTest, RecordsSuccessfulRequests) {
  AuditLog audit;
  SecureDocumentServer server(&repo_, &users_, &groups_);
  server.set_audit_log(&audit);

  server.Handle(Request("CSlab.xml"));
  ASSERT_EQ(audit.size(), 1u);
  AuditEntry entry = audit.Entries()[0];
  EXPECT_EQ(entry.user, "tom");
  EXPECT_EQ(entry.ip, "10.0.0.1");
  EXPECT_EQ(entry.uri, "CSlab.xml");
  EXPECT_EQ(entry.http_status, 200);
  EXPECT_EQ(entry.time, 1234);
  EXPECT_GT(entry.visible_nodes, 0);
  EXPECT_FALSE(entry.cache_hit);
  std::string line = entry.ToString();
  EXPECT_NE(line.find("tom@10.0.0.1"), std::string::npos);
  EXPECT_NE(line.find("-> 200"), std::string::npos);
}

TEST_F(AuditTest, RecordsDenialsAndMisses) {
  AuditLog audit;
  SecureDocumentServer server(&repo_, &users_, &groups_);
  server.set_audit_log(&audit);

  ServerRequest bad_password = Request("CSlab.xml");
  bad_password.password = "wrong";
  server.Handle(bad_password);
  server.Handle(Request("ghost.xml"));
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit.Entries()[0].http_status, 401);
  EXPECT_EQ(audit.Entries()[1].http_status, 404);
}

TEST_F(AuditTest, RecordsQueriesAndCacheHits) {
  AuditLog audit;
  ServerConfig config;
  config.view_cache_capacity = 8;
  SecureDocumentServer server(&repo_, &users_, &groups_, config);
  server.set_audit_log(&audit);

  ServerRequest query = Request("CSlab.xml");
  query.query = "//title";
  server.Handle(query);
  server.Handle(Request("CSlab.xml"));  // miss, fills cache
  server.Handle(Request("CSlab.xml"));  // hit
  ASSERT_EQ(audit.size(), 3u);
  EXPECT_EQ(audit.Entries()[0].query, "//title");
  EXPECT_FALSE(audit.Entries()[1].cache_hit);
  EXPECT_TRUE(audit.Entries()[2].cache_hit);
  EXPECT_NE(audit.Entries()[2].ToString().find("[cache]"),
            std::string::npos);
}

TEST_F(AuditTest, CapacityBoundsAndDrain) {
  AuditLog audit(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    AuditEntry entry;
    entry.uri = "r" + std::to_string(i);
    audit.Record(std::move(entry));
  }
  EXPECT_EQ(audit.size(), 3u);
  EXPECT_EQ(audit.total_recorded(), 5);
  std::vector<AuditEntry> drained = audit.TakeAll();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].uri, "r2");  // Oldest kept entry.
  EXPECT_EQ(drained[2].uri, "r4");
  EXPECT_EQ(audit.size(), 0u);
  EXPECT_EQ(audit.total_recorded(), 5);
}

// --- File sink durability ------------------------------------------------

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AuditSinkTest, StreamsEntriesAndRotatesBySize) {
  std::string path = ::testing::TempDir() + "audit_sink_rotation.log";
  for (int i = 0; i <= 3; ++i) {
    std::remove((i == 0 ? path : path + "." + std::to_string(i)).c_str());
  }

  AuditLog audit(/*capacity=*/64);
  AuditLog::FileSinkOptions options;
  options.rotate_bytes = 200;  // A handful of lines per generation.
  options.max_rotated_files = 2;
  ASSERT_TRUE(audit.AttachFileSink(path, options).ok());
  for (int i = 0; i < 20; ++i) {
    AuditEntry entry;
    entry.time = i;
    entry.user = "tom";
    entry.ip = "10.0.0.1";
    entry.uri = "CSlab.xml";
    entry.http_status = i % 2 == 0 ? 200 : 503;
    audit.Record(std::move(entry));
  }
  ASSERT_TRUE(audit.Flush().ok());
  audit.DetachFileSink();

  EXPECT_EQ(audit.sink_write_failures(), 0);
  std::string current = ReadWholeFile(path);
  EXPECT_FALSE(current.empty());
  EXPECT_NE(current.find("tom@10.0.0.1"), std::string::npos);
  // Rotation happened: at least one older generation exists.
  std::string rotated = ReadWholeFile(path + ".1");
  EXPECT_FALSE(rotated.empty());
  // Shed/denied requests are on the durable trail too.
  EXPECT_NE((current + rotated).find("-> 503"), std::string::npos);
}

TEST_F(AuditTest, FailClosedDenialsAreDurable) {
  std::string path = ::testing::TempDir() + "audit_sink_denials.log";
  std::remove(path.c_str());

  AuditLog audit;
  ASSERT_TRUE(audit.AttachFileSink(path).ok());
  SecureDocumentServer server(&repo_, &users_, &groups_);
  server.set_audit_log(&audit);

  failpoint::Enable("authz.compute_view");
  ServerResponse denied = server.Handle(Request("CSlab.xml"));
  failpoint::Disable("authz.compute_view");
  EXPECT_EQ(denied.http_status, 500);
  EXPECT_TRUE(denied.body.empty()) << "fail-closed 5xx must carry no body";

  ServerResponse ok = server.Handle(Request("CSlab.xml"));
  EXPECT_EQ(ok.http_status, 200);
  audit.DetachFileSink();

  std::string trail = ReadWholeFile(path);
  EXPECT_NE(trail.find("-> 500"), std::string::npos) << trail;
  EXPECT_NE(trail.find("-> 200"), std::string::npos) << trail;
}

TEST(AuditSinkTest, ReattachAppendsAcrossRestarts) {
  std::string path = ::testing::TempDir() + "audit_sink_restart.log";
  std::remove(path.c_str());
  {
    AuditLog audit;
    ASSERT_TRUE(audit.AttachFileSink(path).ok());
    AuditEntry entry;
    entry.uri = "first.xml";
    audit.Record(std::move(entry));
  }  // Destructor detaches.
  {
    AuditLog audit;
    ASSERT_TRUE(audit.AttachFileSink(path).ok());
    AuditEntry entry;
    entry.uri = "second.xml";
    audit.Record(std::move(entry));
  }
  std::string trail = ReadWholeFile(path);
  EXPECT_NE(trail.find("first.xml"), std::string::npos);
  EXPECT_NE(trail.find("second.xml"), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace xmlsec
