#include <gtest/gtest.h>

#include "authz/xacl.h"

namespace xmlsec {
namespace authz {
namespace {

constexpr char kExample1Xacl[] = R"(<?xml version="1.0"?>
<xacl base-uri="http://www.lab.com/">
  <authorization subject="Foreign" object="laboratory.xml"
      path='/laboratory//paper[./@category="private"]'
      sign="-" type="R"/>
  <authorization subject="Public" object="CSlab.xml"
      path='/laboratory//paper[./@category="public"]'
      sign="+" type="RW"/>
  <authorization subject="Admin" ip="130.89.56.8" object="CSlab.xml"
      path='project[./@type="internal"]' sign="+" type="R"/>
  <authorization subject="Public" sym="*.it" object="CSlab.xml"
      path='project[./@type="public"]/manager' sign="+" type="RW"/>
</xacl>)";

TEST(XaclTest, PaperExample1) {
  auto xacl = ParseXacl(kExample1Xacl);
  ASSERT_TRUE(xacl.ok()) << xacl.status();
  EXPECT_EQ(xacl->base_uri, "http://www.lab.com/");
  ASSERT_EQ(xacl->authorizations.size(), 4u);

  const Authorization& a1 = xacl->authorizations[0];
  EXPECT_EQ(a1.subject.ToString(), "<Foreign, *, *>");
  EXPECT_EQ(a1.object.uri, "http://www.lab.com/laboratory.xml");
  EXPECT_EQ(a1.object.path, "/laboratory//paper[./@category=\"private\"]");
  EXPECT_EQ(a1.sign, Sign::kMinus);
  EXPECT_EQ(a1.type, AuthType::kRecursive);

  const Authorization& a3 = xacl->authorizations[2];
  EXPECT_EQ(a3.subject.ug, "Admin");
  EXPECT_EQ(a3.subject.ip.ToString(), "130.89.56.8");
  EXPECT_EQ(a3.subject.sym.ToString(), "*");

  const Authorization& a4 = xacl->authorizations[3];
  EXPECT_EQ(a4.subject.sym.ToString(), "*.it");
  EXPECT_EQ(a4.type, AuthType::kRecursiveWeak);
}

TEST(XaclTest, DefaultsApplied) {
  auto xacl = ParseXacl(
      "<xacl><authorization subject=\"u\" object=\"d.xml\" sign=\"+\"/>"
      "</xacl>");
  ASSERT_TRUE(xacl.ok()) << xacl.status();
  const Authorization& a = xacl->authorizations[0];
  EXPECT_EQ(a.subject.ip.ToString(), "*");
  EXPECT_EQ(a.subject.sym.ToString(), "*");
  EXPECT_EQ(a.action, Action::kRead);
  EXPECT_EQ(a.type, AuthType::kRecursive);  // XACL DTD default
  EXPECT_EQ(a.object.path, "");
}

TEST(XaclTest, CombinedObjectNotation) {
  auto xacl = ParseXacl(
      "<xacl><authorization subject=\"u\" "
      "object='d.xml:/a/b[@k=\"v\"]' sign=\"-\"/></xacl>");
  ASSERT_TRUE(xacl.ok()) << xacl.status();
  EXPECT_EQ(xacl->authorizations[0].object.uri, "d.xml");
  EXPECT_EQ(xacl->authorizations[0].object.path, "/a/b[@k=\"v\"]");
}

TEST(XaclTest, AbsoluteUriNotRebased) {
  auto xacl = ParseXacl(
      "<xacl base-uri=\"http://a/\">"
      "<authorization subject=\"u\" object=\"http://b/d.xml\" sign=\"+\"/>"
      "</xacl>");
  ASSERT_TRUE(xacl.ok());
  EXPECT_EQ(xacl->authorizations[0].object.uri, "http://b/d.xml");
}

TEST(XaclTest, RejectsBadSign) {
  auto result = ParseXacl(
      "<xacl><authorization subject=\"u\" object=\"d\" sign=\"±\"/></xacl>");
  EXPECT_FALSE(result.ok());
}

TEST(XaclTest, RejectsBadType) {
  // type is an enumerated attribute in the XACL DTD, so validation
  // rejects unknown tokens before authorization parsing.
  auto result = ParseXacl(
      "<xacl><authorization subject=\"u\" object=\"d\" sign=\"+\" "
      "type=\"Q\"/></xacl>");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kValidationError);
}

TEST(XaclTest, RejectsMissingSubject) {
  auto result = ParseXacl(
      "<xacl><authorization object=\"d\" sign=\"+\"/></xacl>");
  EXPECT_FALSE(result.ok());
}

TEST(XaclTest, ParsesWriteActionRejectsUnknown) {
  auto write = ParseXacl(
      "<xacl><authorization subject=\"u\" object=\"d\" sign=\"+\" "
      "action=\"write\"/></xacl>");
  ASSERT_TRUE(write.ok()) << write.status();
  EXPECT_EQ(write->authorizations[0].action, Action::kWrite);
  auto bogus = ParseXacl(
      "<xacl><authorization subject=\"u\" object=\"d\" sign=\"+\" "
      "action=\"shred\"/></xacl>");
  EXPECT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kUnimplemented);
}

TEST(XaclTest, RejectsWrongRootElement) {
  auto result = ParseXacl("<policies/>");
  EXPECT_FALSE(result.ok());
}

TEST(XaclTest, RejectsBadLocationPattern) {
  auto result = ParseXacl(
      "<xacl><authorization subject=\"u\" ip=\"1.*.3.4\" object=\"d\" "
      "sign=\"+\"/></xacl>");
  EXPECT_FALSE(result.ok());
}

TEST(XaclTest, SerializeRoundTrip) {
  auto xacl = ParseXacl(kExample1Xacl);
  ASSERT_TRUE(xacl.ok());
  std::string rendered = SerializeXacl(*xacl);
  auto again = ParseXacl(rendered);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << rendered;
  ASSERT_EQ(again->authorizations.size(), xacl->authorizations.size());
  for (size_t i = 0; i < xacl->authorizations.size(); ++i) {
    EXPECT_EQ(again->authorizations[i].ToString(),
              xacl->authorizations[i].ToString());
  }
}

TEST(XaclTest, EmptyXaclIsValid) {
  auto xacl = ParseXacl("<xacl/>");
  ASSERT_TRUE(xacl.ok()) << xacl.status();
  EXPECT_TRUE(xacl->authorizations.empty());
}

TEST(XaclTest, XaclDtdItselfParses) {
  EXPECT_FALSE(XaclDtd().empty());
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
