#include <gtest/gtest.h>

#include "authz/authorization.h"
#include "authz/policy.h"

namespace xmlsec {
namespace authz {
namespace {

TEST(ObjectSpecTest, UriOnly) {
  auto spec = ObjectSpec::Parse("CSlab.xml");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->uri, "CSlab.xml");
  EXPECT_EQ(spec->path, "");
}

TEST(ObjectSpecTest, UriWithAbsolutePath) {
  auto spec = ObjectSpec::Parse(
      "laboratory.xml:/laboratory//paper[./@category=\"private\"]");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->uri, "laboratory.xml");
  EXPECT_EQ(spec->path, "/laboratory//paper[./@category=\"private\"]");
}

TEST(ObjectSpecTest, UriWithRelativePath) {
  auto spec = ObjectSpec::Parse("CSlab.xml:project[./@type=\"internal\"]");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->uri, "CSlab.xml");
  EXPECT_EQ(spec->path, "project[./@type=\"internal\"]");
}

TEST(ObjectSpecTest, HttpSchemeNotSplit) {
  auto spec = ObjectSpec::Parse(
      "http://www.lab.com/CSlab.xml:/laboratory/project");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->uri, "http://www.lab.com/CSlab.xml");
  EXPECT_EQ(spec->path, "/laboratory/project");
}

TEST(ObjectSpecTest, HttpUriWithoutPath) {
  auto spec = ObjectSpec::Parse("http://www.lab.com/CSlab.xml");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->uri, "http://www.lab.com/CSlab.xml");
  EXPECT_EQ(spec->path, "");
}

TEST(ObjectSpecTest, AxisSeparatorInPathSurvives) {
  auto spec = ObjectSpec::Parse("doc.xml:fund/ancestor::project");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->uri, "doc.xml");
  EXPECT_EQ(spec->path, "fund/ancestor::project");
}

TEST(ObjectSpecTest, RoundTripToString) {
  auto spec = ObjectSpec::Parse("doc.xml:/a/b");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->ToString(), "doc.xml:/a/b");
  auto again = ObjectSpec::Parse(spec->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *spec);
}

TEST(ObjectSpecTest, EmptyRejected) {
  EXPECT_FALSE(ObjectSpec::Parse("").ok());
  EXPECT_FALSE(ObjectSpec::Parse(":/a").ok());
}

TEST(EnumsTest, SignRoundTrip) {
  EXPECT_EQ(SignToString(Sign::kPlus), "+");
  EXPECT_EQ(SignToString(Sign::kMinus), "-");
  EXPECT_EQ(*ParseSign("+"), Sign::kPlus);
  EXPECT_EQ(*ParseSign("-"), Sign::kMinus);
  EXPECT_FALSE(ParseSign("plus").ok());
}

TEST(EnumsTest, TypeRoundTrip) {
  for (AuthType type : {AuthType::kLocal, AuthType::kRecursive,
                        AuthType::kLocalWeak, AuthType::kRecursiveWeak}) {
    auto parsed = ParseAuthType(AuthTypeToString(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(ParseAuthType("X").ok());
  EXPECT_FALSE(ParseAuthType("l").ok());
}

TEST(EnumsTest, TypePredicates) {
  EXPECT_TRUE(IsRecursive(AuthType::kRecursive));
  EXPECT_TRUE(IsRecursive(AuthType::kRecursiveWeak));
  EXPECT_FALSE(IsRecursive(AuthType::kLocal));
  EXPECT_TRUE(IsWeak(AuthType::kLocalWeak));
  EXPECT_TRUE(IsWeak(AuthType::kRecursiveWeak));
  EXPECT_FALSE(IsWeak(AuthType::kRecursive));
}

TEST(EnumsTest, ActionParsing) {
  EXPECT_EQ(*ParseAction("read"), Action::kRead);
  EXPECT_EQ(*ParseAction("write"), Action::kWrite);
  Status update = ParseAction("update").status();
  EXPECT_EQ(update.code(), StatusCode::kUnimplemented);
}

TEST(AuthorizationTest, ToStringMatchesPaperNotation) {
  Authorization auth;
  auth.subject = *Subject::Make("Foreign", "*", "*");
  auth.object =
      *ObjectSpec::Parse("laboratory.xml:/laboratory//paper");
  auth.sign = Sign::kMinus;
  auth.type = AuthType::kRecursive;
  EXPECT_EQ(auth.ToString(),
            "<<Foreign, *, *>, laboratory.xml:/laboratory//paper, read, -, "
            "R>");
}

TEST(PolicyTest, Names) {
  EXPECT_EQ(ConflictPolicyToString(ConflictPolicy::kDenialsTakePrecedence),
            "denials-take-precedence");
  EXPECT_EQ(
      ConflictPolicyToString(ConflictPolicy::kPermissionsTakePrecedence),
      "permissions-take-precedence");
  EXPECT_EQ(ConflictPolicyToString(ConflictPolicy::kNothingTakesPrecedence),
            "nothing-takes-precedence");
  EXPECT_EQ(CompletenessPolicyToString(CompletenessPolicy::kClosed),
            "closed");
  EXPECT_EQ(CompletenessPolicyToString(CompletenessPolicy::kOpen), "open");
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
