#include <gtest/gtest.h>

#include "authz/loosening.h"
#include "workload/docgen.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/validator.h"

namespace xmlsec {
namespace authz {
namespace {

using xml::AttrDefaultKind;
using xml::Cardinality;
using xml::Dtd;

std::unique_ptr<Dtd> MustParseDtd(std::string_view text) {
  auto result = xml::ParseDtd(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(LooseningTest, RequiredAttributesBecomeImplied) {
  auto dtd = MustParseDtd(
      "<!ELEMENT a EMPTY>"
      "<!ATTLIST a req CDATA #REQUIRED imp CDATA #IMPLIED "
      "fix CDATA #FIXED \"f\" def CDATA \"d\">");
  Dtd loose = LoosenDtd(*dtd);
  EXPECT_EQ(loose.FindAttr("a", "req")->default_kind,
            AttrDefaultKind::kImplied);
  EXPECT_EQ(loose.FindAttr("a", "imp")->default_kind,
            AttrDefaultKind::kImplied);
  EXPECT_EQ(loose.FindAttr("a", "fix")->default_kind,
            AttrDefaultKind::kFixed);
  EXPECT_EQ(loose.FindAttr("a", "def")->default_kind,
            AttrDefaultKind::kDefault);
}

TEST(LooseningTest, CardinalitiesLoosened) {
  auto dtd = MustParseDtd("<!ELEMENT e (a,b?,c*,d+)>");
  Dtd loose = LoosenDtd(*dtd);
  const auto& children = loose.FindElement("e")->particle->children;
  ASSERT_EQ(children.size(), 4u);
  EXPECT_EQ(children[0].cardinality, Cardinality::kOptional);     // 1 -> ?
  EXPECT_EQ(children[1].cardinality, Cardinality::kOptional);     // ? -> ?
  EXPECT_EQ(children[2].cardinality, Cardinality::kZeroOrMore);   // * -> *
  EXPECT_EQ(children[3].cardinality, Cardinality::kZeroOrMore);   // + -> *
}

TEST(LooseningTest, NestedGroupsLoosenedRecursively) {
  auto dtd = MustParseDtd("<!ELEMENT e ((a,b)+,(c|d))>");
  Dtd loose = LoosenDtd(*dtd);
  const auto& p = *loose.FindElement("e")->particle;
  EXPECT_EQ(p.cardinality, Cardinality::kOptional);
  EXPECT_EQ(p.children[0].cardinality, Cardinality::kZeroOrMore);
  EXPECT_EQ(p.children[0].children[0].cardinality, Cardinality::kOptional);
  EXPECT_EQ(p.children[1].cardinality, Cardinality::kOptional);
}

TEST(LooseningTest, PreservesEntitiesNotationsAndName) {
  auto dtd = MustParseDtd(
      "<!ELEMENT a EMPTY><!ENTITY e \"v\">"
      "<!NOTATION n SYSTEM \"s\">");
  dtd->set_name("a");
  Dtd loose = LoosenDtd(*dtd);
  EXPECT_EQ(loose.name(), "a");
  EXPECT_NE(loose.FindEntity("e", false), nullptr);
  EXPECT_NE(loose.FindNotation("n"), nullptr);
}

TEST(LooseningTest, EmptyAndAnyAndMixedUnchanged) {
  auto dtd = MustParseDtd(
      "<!ELEMENT a EMPTY><!ELEMENT b ANY><!ELEMENT c (#PCDATA|x)*>");
  Dtd loose = LoosenDtd(*dtd);
  EXPECT_EQ(loose.FindElement("a")->content_kind, xml::ContentKind::kEmpty);
  EXPECT_EQ(loose.FindElement("b")->content_kind, xml::ContentKind::kAny);
  EXPECT_EQ(loose.FindElement("c")->content_kind, xml::ContentKind::kMixed);
}

TEST(LooseningTest, AnySubsetOfChildrenValidates) {
  // The defining property of loosening: removing arbitrary children and
  // attributes from a valid document keeps it valid w.r.t. the loosened
  // DTD (here checked on a representative pruning pattern).
  auto dtd = MustParseDtd(
      "<!ELEMENT lab (head,proj+)>"
      "<!ELEMENT head (#PCDATA)>"
      "<!ELEMENT proj (title,member*)>"
      "<!ELEMENT title (#PCDATA)>"
      "<!ELEMENT member (#PCDATA)>"
      "<!ATTLIST proj id CDATA #REQUIRED>");
  dtd->set_name("lab");

  // A pruned view: head removed, proj's required attribute removed,
  // title removed from the second proj.
  auto view = xml::ParseDocument(
      "<lab><proj><title>t</title></proj><proj><member>m</member></proj>"
      "</lab>");
  ASSERT_TRUE(view.ok());

  // Invalid against the original DTD...
  {
    xml::Validator strict(dtd.get());
    EXPECT_FALSE(strict.Validate(view->get()).ok());
  }
  // ...valid against the loosened one.
  Dtd loose = LoosenDtd(*dtd);
  xml::ValidationOptions options;
  options.add_default_attributes = false;
  xml::Validator validator(&loose, options);
  Status loose_status = validator.Validate(view->get());
  EXPECT_TRUE(loose_status.ok()) << loose_status;
}

TEST(LooseningTest, LaboratoryDtdLoosens) {
  auto dtd = MustParseDtd(workload::LaboratoryDtd());
  Dtd loose = LoosenDtd(*dtd);
  // project's name/type were #REQUIRED.
  EXPECT_EQ(loose.FindAttr("project", "name")->default_kind,
            AttrDefaultKind::kImplied);
  EXPECT_EQ(loose.FindAttr("project", "type")->default_kind,
            AttrDefaultKind::kImplied);
  // manager (exactly-one) becomes optional.
  const auto& project = *loose.FindElement("project")->particle;
  EXPECT_EQ(project.children[0].cardinality, Cardinality::kOptional);
}

TEST(LooseningTest, Idempotent) {
  auto dtd = MustParseDtd(
      "<!ELEMENT e (a+,b)><!ATTLIST e k CDATA #REQUIRED>");
  Dtd once = LoosenDtd(*dtd);
  Dtd twice = LoosenDtd(once);
  EXPECT_EQ(once.FindElement("e")->ContentToString(),
            twice.FindElement("e")->ContentToString());
  EXPECT_EQ(once.FindAttr("e", "k")->default_kind,
            twice.FindAttr("e", "k")->default_kind);
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
