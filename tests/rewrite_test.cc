// Tests for the policy-safe query rewriter (src/rewrite): the
// randomized materialized-vs-rewritten equivalence suite (the two query
// paths must answer byte-identically, error encodings included), the
// guard-insertion unit tests, the shared result serializer, the
// view-cache query-key separation, the schema-mismatch fail-safe, and
// server-level path equivalence with its fallback accounting.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/policy_automaton.h"
#include "authz/labeling.h"
#include "authz/processor.h"
#include "obs/metrics.h"
#include "rewrite/query_result.h"
#include "rewrite/rewriter.h"
#include "rewrite/visibility.h"
#include "server/document_server.h"
#include "server/repository.h"
#include "server/user_directory.h"
#include "server/view_cache.h"
#include "workload/authgen.h"
#include "workload/docgen.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlsec {
namespace rewrite {
namespace {

using workload::AuthGenConfig;
using workload::DocGenConfig;
using workload::GeneratedWorkload;

// --- RewriteExpr unit tests ---------------------------------------------

std::string Rewritten(std::string_view query) {
  auto parsed = xpath::CompileXPath(query);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  RewrittenQuery rewritten = RewriteExpr(**parsed);
  EXPECT_TRUE(rewritten.ok())
      << UnsupportedReasonToString(rewritten.unsupported);
  return rewritten.expr == nullptr ? std::string() : rewritten.expr->ToString();
}

TEST(RewriteExprTest, GuardsEveryStep) {
  std::string out = Rewritten("/laboratory/project/paper");
  // One guard per location step.
  size_t count = 0;
  for (size_t at = out.find(xpath::kAccessibleFunctionName);
       at != std::string::npos;
       at = out.find(xpath::kAccessibleFunctionName, at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u) << out;
}

TEST(RewriteExprTest, GuardComesBeforePositionalPredicate) {
  std::string out = Rewritten("//paper[2]");
  size_t guard = out.find(xpath::kAccessibleFunctionName);
  size_t positional = out.find("[2]");
  ASSERT_NE(guard, std::string::npos) << out;
  ASSERT_NE(positional, std::string::npos) << out;
  // Guard-first: [2] must count guarded (visible) candidates.
  EXPECT_LT(guard, positional) << out;
}

TEST(RewriteExprTest, GuardsStepsInsidePredicatesAndFunctionArgs) {
  std::string out = Rewritten("//project[paper/@category = \"x\"]"
                              "[count(.//title) > 0]");
  size_t count = 0;
  for (size_t at = out.find(xpath::kAccessibleFunctionName);
       at != std::string::npos;
       at = out.find(xpath::kAccessibleFunctionName, at + 1)) {
    ++count;
  }
  // //project, paper, @category, .//title (self + descendant steps).
  EXPECT_GE(count, 4u) << out;
}

TEST(RewriteExprTest, BareLiteralSurvivesUnguarded) {
  auto parsed = xpath::CompileXPath("\"hello\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  RewrittenQuery rewritten = RewriteExpr(**parsed);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.expr->ToString().find(xpath::kAccessibleFunctionName),
            std::string::npos);
}

TEST(RewriteExprTest, RecordsOriginalSource) {
  auto parsed = xpath::CompileXPath("//paper");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  RewrittenQuery rewritten = RewriteExpr(**parsed);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.source, (*parsed)->ToString());
  EXPECT_EQ(rewritten.source.find(xpath::kAccessibleFunctionName),
            std::string::npos);
}

TEST(RewriteExprTest, ReservedGuardFunctionIsRefused) {
  std::string query =
      "//paper[" + std::string(xpath::kAccessibleFunctionName) + "()]";
  auto parsed = xpath::CompileXPath(query);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  RewrittenQuery rewritten = RewriteExpr(**parsed);
  EXPECT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.unsupported, UnsupportedReason::kReservedFunction);
  EXPECT_EQ(rewritten.expr, nullptr);
}

TEST(RewriteExprTest, IdFunctionIsUnsupported) {
  auto parsed = xpath::CompileXPath("id(\"chapter1\")");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  RewrittenQuery rewritten = RewriteExpr(**parsed);
  EXPECT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.unsupported, UnsupportedReason::kUnsupportedFunction);
}

TEST(RewriteExprTest, GuardUnresolvableWithoutHooks) {
  // A user query carrying the reserved name must not evaluate: without
  // hooks the evaluator treats it as an unknown function.
  auto doc = xml::ParseDocument("<a><b/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  std::string query =
      "//b[" + std::string(xpath::kAccessibleFunctionName) + "()]";
  auto result = xpath::SelectXPath(query, (*doc)->root());
  EXPECT_FALSE(result.ok());
}

// --- Shared result serializer -------------------------------------------

TEST(QueryResultTest, EscapesAttributeValuesAndText) {
  auto doc = xml::ParseDocument(
      "<r a=\"x&amp;y&lt;z\"><c>5 &lt; 6 &amp; 7 &gt; 2</c></r>");
  ASSERT_TRUE(doc.ok()) << doc.status();

  auto attrs = xpath::SelectXPath("//@a", (*doc)->root());
  ASSERT_TRUE(attrs.ok()) << attrs.status();
  std::string body = BuildQueryResultBody(*attrs, nullptr);
  EXPECT_NE(body.find("<attribute name=\"a\">x&amp;y&lt;z</attribute>"),
            std::string::npos)
      << body;

  auto text = xpath::SelectXPath("//c/text()", (*doc)->root());
  ASSERT_TRUE(text.ok()) << text.status();
  body = BuildQueryResultBody(*text, nullptr);
  EXPECT_NE(body.find("5 &lt; 6 &amp; 7 &gt; 2"), std::string::npos) << body;
  EXPECT_EQ(body.find("5 < 6"), std::string::npos) << body;
}

TEST(QueryResultTest, CountAttributeAndFilteredSerialization) {
  auto doc = xml::ParseDocument("<r><keep/><drop/></r>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto nodes = xpath::SelectXPath("/r", (*doc)->root());
  ASSERT_TRUE(nodes.ok()) << nodes.status();

  xpath::NodeFilter filter = [](const xml::Node* node) {
    return node->NodeName() != "drop";
  };
  std::string body = BuildQueryResultBody(*nodes, &filter);
  EXPECT_NE(body.find("count=\"1\""), std::string::npos) << body;
  EXPECT_NE(body.find("<keep/>"), std::string::npos) << body;
  EXPECT_EQ(body.find("<drop"), std::string::npos) << body;
}

// --- View-cache key separation ------------------------------------------

TEST(ViewCacheQueryKeyTest, FullViewEntryNeverServesAQuery) {
  server::ViewCache cache(/*capacity=*/4, /*shards=*/1);
  server::ViewCache::Key full{"d.xml", "tom", "1.2.3.4", "host", "s", ""};
  cache.Put(full, /*version=*/1, "full view body");

  server::ViewCache::Key query = full;
  query.query = "//a";
  EXPECT_EQ(cache.Get(query, 1), nullptr);
  ASSERT_NE(cache.Get(full, 1), nullptr);

  // And distinct queries never collide with each other either.
  cache.Put(query, 1, "query body");
  server::ViewCache::Key other = full;
  other.query = "//b";
  EXPECT_EQ(cache.Get(other, 1), nullptr);
  EXPECT_EQ(*cache.Get(query, 1), "query body");
}

// --- Schema-mismatch fail-safe ------------------------------------------

TEST(VisibilityOracleTest, UndeclaredTagLatchesMismatchAndAnswersFalse) {
  auto dtd_doc = xml::ParseDocument("<laboratory/>");
  ASSERT_TRUE(dtd_doc.ok());
  std::string dtd_text = workload::LaboratoryDtd();
  auto lab = workload::GenerateLaboratory(1, 1, /*seed=*/1);
  ASSERT_NE(lab, nullptr);
  ASSERT_NE(lab->dtd(), nullptr);

  std::vector<authz::Authorization> instance;
  std::vector<authz::Authorization> schema;
  auto automaton_result =
      analysis::PolicyAutomaton::Compile(*lab->dtd(), instance, schema);
  ASSERT_TRUE(automaton_result.ok()) << automaton_result.status();
  std::shared_ptr<const analysis::PolicyAutomaton> automaton =
      std::move(*automaton_result);

  // A document whose tags the compiled schema has never seen.
  auto alien = xml::ParseDocument("<martian><crater/></martian>");
  ASSERT_TRUE(alien.ok()) << alien.status();

  authz::Requester rq;
  rq.user = "tom";
  authz::GroupStore groups;
  authz::PolicyOptions policy;
  policy.completeness = authz::CompletenessPolicy::kOpen;

  auto oracle =
      VisibilityOracle::Create(**alien, automaton, rq, groups, policy);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  // Even under the open policy — where unlabeled nodes are visible — a
  // mismatched walk must answer false, never fail open.
  EXPECT_FALSE((*oracle)->InView((*alien)->root()));
  EXPECT_TRUE((*oracle)->schema_mismatch());
  EXPECT_FALSE((*oracle)->RootVisible());
}

// --- Materialized-vs-rewritten equivalence ------------------------------

struct Scenario {
  uint64_t seed;
  int depth;
  int fanout;
  int auth_count;
};

void PrintTo(const Scenario& s, std::ostream* os) {
  *os << "seed=" << s.seed << " depth=" << s.depth << " fanout=" << s.fanout
      << " auths=" << s.auth_count;
}

/// One encoded answer: "404", "400: <status>", or the response body.
/// Both answerers use this encoding, so string equality == protocol
/// equality.
std::string Encode404() { return "404"; }
std::string EncodeError(const Status& status) {
  return "400: " + status.ToString();
}

class EquivalenceTest : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    const Scenario& s = GetParam();
    DocGenConfig doc_config;
    doc_config.depth = s.depth;
    doc_config.fanout = s.fanout;
    doc_config.seed = s.seed;
    doc_ = workload::GenerateDocument(doc_config);
    ASSERT_NE(doc_, nullptr);
    ASSERT_NE(doc_->dtd(), nullptr);

    AuthGenConfig auth_config;
    auth_config.count = s.auth_count;
    auth_config.seed = s.seed * 1000 + 17;
    workload_ = workload::GenerateAuthorizations(*doc_, "d.xml", "s.dtd",
                                                 auth_config);

    auto automaton = analysis::PolicyAutomaton::Compile(
        *doc_->dtd(), workload_.instance_auths, workload_.schema_auths);
    ASSERT_TRUE(automaton.ok()) << automaton.status();
    automaton_ = std::move(*automaton);
  }

  /// The materialized path: compute the view, then query it — exactly
  /// the server's fallback path (document_server.cc).
  std::string MaterializedAnswer(authz::PolicyOptions policy,
                                 const std::string& query) {
    authz::ProcessorOptions options;
    options.policy = policy;
    authz::SecurityProcessor processor(&workload_.groups, options);
    auto view = processor.ComputeView(*doc_, workload_.instance_auths,
                                      workload_.schema_auths,
                                      workload_.requester);
    EXPECT_TRUE(view.ok()) << view.status();
    if (!view.ok()) return "materialize-error";
    if (view->empty()) return Encode404();
    xpath::VariableBindings vars = Bindings();
    auto selected = xpath::SelectXPath(query, view->document->root(), &vars);
    if (!selected.ok()) return EncodeError(selected.status());
    return BuildQueryResultBody(*selected, nullptr);
  }

  /// The rewrite path: guards + oracle over the ORIGINAL document —
  /// mirrors the server's serve_rewritten flow.  `fell_back` reports
  /// conditions where the server would fall back to the materialized
  /// path (never an error, but nothing to compare either).
  std::string RewrittenAnswer(authz::PolicyOptions policy,
                              const std::string& query, bool* fell_back) {
    *fell_back = false;
    QueryRewriter rewriter(automaton_);
    auto oracle = rewriter.NewOracle(*doc_, workload_.requester,
                                     workload_.groups, policy);
    EXPECT_TRUE(oracle.ok()) << oracle.status();
    if (!oracle.ok()) return "oracle-error";
    if (!(*oracle)->RootVisible()) {
      if ((*oracle)->schema_mismatch()) {
        *fell_back = true;
        return "";
      }
      return Encode404();
    }
    auto rewritten = rewriter.Rewrite(query);
    if (!rewritten.ok()) return EncodeError(rewritten.status());
    if (!rewritten->ok()) {
      *fell_back = true;
      return "";
    }
    xpath::VariableBindings vars = Bindings();
    xpath::NodeFilter filter = (*oracle)->Filter();
    xpath::EvalHooks hooks;
    hooks.node_visible = filter;
    xpath::Evaluator evaluator;
    auto value =
        evaluator.Evaluate(*rewritten->expr, doc_->root(), &vars, &hooks);
    if ((*oracle)->schema_mismatch()) {
      *fell_back = true;
      return "";
    }
    if (!value.ok()) return EncodeError(value.status());
    if (!value->is_node_set()) {
      return EncodeError(Status::InvalidArgument(
          "XPath expression does not yield a node-set: " +
          rewritten->source));
    }
    return BuildQueryResultBody(value->nodes(), &filter);
  }

  xpath::VariableBindings Bindings() const {
    xpath::VariableBindings vars;
    vars.emplace("user", xpath::Value(workload_.requester.user));
    vars.emplace("ip", xpath::Value(workload_.requester.ip));
    vars.emplace("sym", xpath::Value(workload_.requester.sym));
    return vars;
  }

  /// Deterministic query templates built from vocabulary actually
  /// present in the generated document.
  std::vector<std::string> Queries() const {
    std::vector<std::string> tags;
    std::vector<std::pair<std::string, std::string>> attrs;  // tag, attr
    std::set<std::string> seen_tags;
    CollectVocabulary(doc_->root(), &tags, &attrs, &seen_tags);

    std::vector<std::string> queries;
    std::string root_tag = doc_->root()->NodeName();
    queries.push_back("/" + root_tag);
    queries.push_back("/" + root_tag + "/*");
    for (size_t i = 0; i < tags.size() && i < 4; ++i) {
      const std::string& tag = tags[i];
      queries.push_back("//" + tag);
      queries.push_back("//" + tag + "[2]");
      queries.push_back("//" + tag + "[position() < 3]");
      queries.push_back("//" + tag + "/text()");
      queries.push_back("/descendant::" + tag + "[last()]");
    }
    if (tags.size() >= 2) {
      queries.push_back("//" + tags[0] + " | //" + tags[1]);
      queries.push_back("//" + tags[0] + "[count(.//" + tags[1] + ") > 0]");
    }
    for (size_t i = 0; i < attrs.size() && i < 3; ++i) {
      queries.push_back("//" + attrs[i].first + "[@" + attrs[i].second + "]");
      queries.push_back("//" + attrs[i].first + "/@" + attrs[i].second);
      queries.push_back("//*[string-length(@" + attrs[i].second + ") > 2]");
    }
    // Error encodings must match too: non-node-set result ...
    queries.push_back("count(//" + root_tag + ")");
    // ... and an unknown variable.
    queries.push_back("//" + root_tag + "[$nosuch = 1]");
    return queries;
  }

  static void CollectVocabulary(
      const xml::Element* el, std::vector<std::string>* tags,
      std::vector<std::pair<std::string, std::string>>* attrs,
      std::set<std::string>* seen_tags) {
    if (el == nullptr) return;
    if (seen_tags->insert(std::string(el->NodeName())).second) {
      tags->push_back(std::string(el->NodeName()));
    }
    for (const auto& attr : el->attributes()) {
      if (attrs->size() < 8) {
        attrs->emplace_back(std::string(el->NodeName()),
                            std::string(attr->name()));
      }
    }
    for (const auto& child : el->children()) {
      CollectVocabulary(child->AsElement(), tags, attrs, seen_tags);
    }
  }

  std::unique_ptr<xml::Document> doc_;
  GeneratedWorkload workload_;
  std::shared_ptr<const analysis::PolicyAutomaton> automaton_;
};

TEST_P(EquivalenceTest, RewrittenAnswersMatchMaterializedByteForByte) {
  const authz::ConflictPolicy conflicts[] = {
      authz::ConflictPolicy::kDenialsTakePrecedence,
      authz::ConflictPolicy::kPermissionsTakePrecedence,
      authz::ConflictPolicy::kNothingTakesPrecedence,
  };
  const authz::CompletenessPolicy completeness[] = {
      authz::CompletenessPolicy::kClosed,
      authz::CompletenessPolicy::kOpen,
  };
  int compared = 0;
  for (authz::ConflictPolicy conflict : conflicts) {
    for (authz::CompletenessPolicy complete : completeness) {
      authz::PolicyOptions policy;
      policy.conflict = conflict;
      policy.completeness = complete;
      for (const std::string& query : Queries()) {
        bool fell_back = false;
        std::string rewritten = RewrittenAnswer(policy, query, &fell_back);
        if (fell_back) continue;  // Server would serve materialized.
        std::string materialized = MaterializedAnswer(policy, query);
        EXPECT_EQ(rewritten, materialized)
            << "conflict=" << static_cast<int>(conflict)
            << " completeness=" << static_cast<int>(complete)
            << " query=" << query;
        ++compared;
      }
    }
  }
  // The suite must actually exercise the rewrite path, not fall back
  // its way to vacuous success.
  EXPECT_GT(compared, 0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, EquivalenceTest,
    ::testing::Values(Scenario{1, 3, 3, 8}, Scenario{2, 4, 3, 16},
                      Scenario{3, 3, 4, 24}, Scenario{4, 5, 2, 12},
                      Scenario{5, 4, 4, 32}, Scenario{6, 3, 3, 6},
                      Scenario{7, 5, 3, 20}, Scenario{8, 4, 2, 40}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// --- Server-level path equivalence --------------------------------------

class ServerEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        repo_.AddDtd("laboratory.xml", workload::LaboratoryDtd()).ok());
    ASSERT_TRUE(repo_
                    .AddDocument("CSlab.xml",
                                 "<laboratory>"
                                 "<project name=\"P\" type=\"public\">"
                                 "<manager><fname>A</fname>"
                                 "<lname>B</lname></manager>"
                                 "<paper category=\"private\">"
                                 "<title>Secret</title></paper>"
                                 "<paper category=\"public\">"
                                 "<title>Known</title></paper>"
                                 "</project></laboratory>",
                                 "laboratory.xml")
                    .ok());
    // A well-formed-only document: no DTD, so no automaton — query
    // requests against it must fall back (and still answer).
    ASSERT_TRUE(repo_.AddDocument("plain.xml",
                                  "<notes><n>alpha</n><n>beta</n></notes>")
                    .ok());
    ASSERT_TRUE(users_.CreateUser("tom", "secret").ok());
    ASSERT_TRUE(groups_.AddMembership("tom", "Foreign").ok());
    ASSERT_TRUE(repo_.AddXacl(
                        "<xacl>"
                        "<authorization subject=\"Public\" "
                        "object=\"CSlab.xml\" path=\"/laboratory\" "
                        "sign=\"+\" type=\"RW\"/>"
                        "<authorization subject=\"Public\" "
                        "object=\"plain.xml\" path=\"/notes\" "
                        "sign=\"+\" type=\"RW\"/>"
                        "<authorization subject=\"Foreign\" "
                        "object=\"laboratory.xml\" "
                        "path='//paper[./@category=&quot;private&quot;]' "
                        "sign=\"-\" type=\"R\"/>"
                        "</xacl>")
                    .ok());

    server::ServerConfig materialize_config;
    materialize_config.metrics = &materialize_registry_;
    materialize_ = std::make_unique<server::SecureDocumentServer>(
        &repo_, &users_, &groups_, materialize_config);

    server::ServerConfig rewrite_config;
    rewrite_config.query_path = server::QueryPathMode::kRewrite;
    rewrite_config.metrics = &rewrite_registry_;
    rewrite_ = std::make_unique<server::SecureDocumentServer>(
        &repo_, &users_, &groups_, rewrite_config);
  }

  server::ServerRequest Request(const std::string& uri,
                                const std::string& query) const {
    server::ServerRequest request;
    request.user = "tom";
    request.password = "secret";
    request.ip = "10.0.0.1";
    request.sym = "client.lab.example";
    request.uri = uri;
    request.query = query;
    return request;
  }

  server::Repository repo_;
  server::UserDirectory users_;
  authz::GroupStore groups_;
  obs::MetricsRegistry materialize_registry_;
  obs::MetricsRegistry rewrite_registry_;
  std::unique_ptr<server::SecureDocumentServer> materialize_;
  std::unique_ptr<server::SecureDocumentServer> rewrite_;
};

TEST_F(ServerEquivalenceTest, ResponsesAreByteIdenticalAcrossPaths) {
  const char* queries[] = {
      "//paper",
      "//paper[1]",
      "//title/text()",
      "//paper/@category",
      "//paper[./@category=\"public\"]",
      "//nosuchtag",
      "count(//paper)",        // 400: non-node-set, quoting the original
      "//paper[",              // 400: parse error
  };
  for (const char* query : queries) {
    server::ServerResponse a = materialize_->Handle(Request("CSlab.xml",
                                                            query));
    server::ServerResponse b = rewrite_->Handle(Request("CSlab.xml", query));
    EXPECT_EQ(a.http_status, b.http_status) << query;
    EXPECT_EQ(a.body_view(), b.body_view()) << query;
    EXPECT_EQ(a.content_type, b.content_type) << query;
  }
  // The rewrite server really served those through the rewriter: every
  // 200 above, minus fallbacks (none here), counts.
  EXPECT_GT(rewrite_registry_.ValueOf("xmlsec_rewrite_served_total"), 0.0);
  EXPECT_GT(rewrite_registry_.ValueOf("xmlsec_rewrite_compiles_total"), 0.0);
  EXPECT_EQ(materialize_registry_.ValueOf("xmlsec_rewrite_served_total"),
            0.0);
}

TEST_F(ServerEquivalenceTest, RewrittenQueryNeverLeaksDeniedContent) {
  server::ServerResponse response =
      rewrite_->Handle(Request("CSlab.xml", "//title"));
  EXPECT_EQ(response.http_status, 200);
  EXPECT_NE(response.body_view().find("Known"), std::string_view::npos);
  EXPECT_EQ(response.body_view().find("Secret"), std::string_view::npos);

  // String-value coercions are filtered too: comparing against the
  // hidden title must not match it.
  response = rewrite_->Handle(
      Request("CSlab.xml", "//paper[title=\"Secret\"]"));
  EXPECT_NE(response.body_view().find("count=\"0\""), std::string_view::npos)
      << response.body_view();
}

TEST_F(ServerEquivalenceTest, UnsupportedQueryFallsBackCounted) {
  server::ServerResponse a =
      materialize_->Handle(Request("CSlab.xml", "id(\"x\")"));
  server::ServerResponse b = rewrite_->Handle(Request("CSlab.xml",
                                                      "id(\"x\")"));
  EXPECT_EQ(a.http_status, b.http_status);
  EXPECT_EQ(a.body_view(), b.body_view());
  EXPECT_EQ(rewrite_registry_.ValueOf("xmlsec_rewrite_fallbacks_total",
                                      "reason=\"unsupported_function\""),
            1.0);
}

TEST_F(ServerEquivalenceTest, NoAutomatonFallsBackCounted) {
  server::ServerResponse a = materialize_->Handle(Request("plain.xml",
                                                          "//n"));
  server::ServerResponse b = rewrite_->Handle(Request("plain.xml", "//n"));
  EXPECT_EQ(a.http_status, 200);
  EXPECT_EQ(a.body_view(), b.body_view());
  EXPECT_EQ(rewrite_registry_.ValueOf("xmlsec_rewrite_fallbacks_total",
                                      "reason=\"no_automaton\""),
            1.0);
  EXPECT_EQ(rewrite_registry_.ValueOf("xmlsec_rewrite_served_total"), 0.0);
}

TEST_F(ServerEquivalenceTest, ReservedFunctionInUserQueryFallsBackSafely) {
  std::string query =
      "//paper[" + std::string(xpath::kAccessibleFunctionName) + "()]";
  server::ServerResponse a = materialize_->Handle(Request("CSlab.xml",
                                                          query));
  server::ServerResponse b = rewrite_->Handle(Request("CSlab.xml", query));
  // Materialized path: unknown function → 400.  Rewrite path: refuses
  // to rewrite, falls back to the materialized path → same 400.
  EXPECT_EQ(a.http_status, 400);
  EXPECT_EQ(a.http_status, b.http_status);
  EXPECT_EQ(a.body_view(), b.body_view());
  EXPECT_EQ(rewrite_registry_.ValueOf("xmlsec_rewrite_fallbacks_total",
                                      "reason=\"reserved_function\""),
            1.0);
}

TEST_F(ServerEquivalenceTest, AllHiddenDocumentYields404OnBothPaths) {
  // A document that a stranger (no matching subject) cannot see at all.
  server::ServerRequest request;
  request.user = "anonymous";
  request.ip = "203.0.113.9";
  request.sym = "outside.example";
  request.uri = "CSlab.xml";
  request.query = "//paper";
  // Public covers everyone; deny the whole lab to make it invisible.
  ASSERT_TRUE(repo_.AddXacl("<xacl>"
                            "<authorization subject=\"Public\" "
                            "object=\"CSlab.xml\" path=\"/laboratory\" "
                            "sign=\"-\" type=\"R\"/>"
                            "</xacl>")
                  .ok());
  server::ServerResponse a = materialize_->Handle(request);
  server::ServerResponse b = rewrite_->Handle(request);
  EXPECT_EQ(a.http_status, 404);
  EXPECT_EQ(b.http_status, 404);
  EXPECT_EQ(a.body_view(), b.body_view());
}

}  // namespace
}  // namespace rewrite
}  // namespace xmlsec
