#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/parser.h"

namespace xmlsec {
namespace xml {
namespace {

std::unique_ptr<Document> Parse(std::string_view text) {
  auto result = ParseDocument(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(DomTest, BuildTreeManually) {
  Document doc;
  auto root = std::make_unique<Element>("a");
  root->SetAttribute("k", "v");
  root->AppendText("hello");
  doc.AppendChild(std::move(root));
  doc.Reindex();

  ASSERT_NE(doc.root(), nullptr);
  EXPECT_EQ(doc.root()->tag(), "a");
  EXPECT_EQ(doc.root()->GetAttribute("k"), "v");
  EXPECT_EQ(doc.root()->TextContent(), "hello");
  // document + element + attribute + text
  EXPECT_EQ(doc.node_count(), 4);
}

TEST(DomTest, NodeNamesFollowDomLevel1) {
  Document doc;
  EXPECT_EQ(doc.NodeName(), "#document");
  Element el("tag");
  EXPECT_EQ(el.NodeName(), "tag");
  Attr attr("name", "value");
  EXPECT_EQ(attr.NodeName(), "name");
  EXPECT_EQ(attr.NodeValue(), "value");
  Text text("data");
  EXPECT_EQ(text.NodeName(), "#text");
  Text cdata("data", /*cdata=*/true);
  EXPECT_EQ(cdata.NodeName(), "#cdata-section");
  Comment comment("c");
  EXPECT_EQ(comment.NodeName(), "#comment");
  ProcessingInstruction pi("target", "data");
  EXPECT_EQ(pi.NodeName(), "target");
  EXPECT_EQ(pi.NodeValue(), "data");
}

TEST(DomTest, DuplicateAttributeRejected) {
  Element el("e");
  ASSERT_TRUE(el.AddAttribute(std::make_unique<Attr>("a", "1")).ok());
  Status s = el.AddAttribute(std::make_unique<Attr>("a", "2"));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(el.GetAttribute("a"), "1");
}

TEST(DomTest, SetAttributeOverwrites) {
  Element el("e");
  el.SetAttribute("a", "1");
  el.SetAttribute("a", "2");
  EXPECT_EQ(el.attribute_count(), 1u);
  EXPECT_EQ(el.GetAttribute("a"), "2");
}

TEST(DomTest, RemoveAttribute) {
  Element el("e");
  el.SetAttribute("a", "1");
  EXPECT_TRUE(el.RemoveAttribute("a"));
  EXPECT_FALSE(el.RemoveAttribute("a"));
  EXPECT_EQ(el.GetAttribute("a"), std::nullopt);
}

TEST(DomTest, RemoveChildReturnsOwnership) {
  Element parent("p");
  Node* child = parent.AppendChild(std::make_unique<Element>("c"));
  std::unique_ptr<Node> removed = parent.RemoveChild(child);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->NodeName(), "c");
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_TRUE(parent.children().empty());
}

TEST(DomTest, ParentElementSkipsDocument) {
  auto doc = Parse("<a><b><c/></b></a>");
  Element* a = doc->root();
  Element* b = a->FirstChildElement("b");
  Element* c = b->FirstChildElement("c");
  EXPECT_EQ(c->ParentElement(), b);
  EXPECT_EQ(b->ParentElement(), a);
  EXPECT_EQ(a->ParentElement(), nullptr);
}

TEST(DomTest, AttributeParentIsOwnerElement) {
  auto doc = Parse("<a k=\"v\"/>");
  const Attr* attr = doc->root()->FindAttribute("k");
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->parent(), doc->root());
  EXPECT_EQ(attr->ParentElement(), doc->root());
}

TEST(DomTest, GetElementsByTagNameIsDocumentOrder) {
  auto doc = Parse("<a><b id=\"1\"/><c><b id=\"2\"/></c><b id=\"3\"/></a>");
  std::vector<Element*> bs = doc->root()->GetElementsByTagName("b");
  ASSERT_EQ(bs.size(), 3u);
  EXPECT_EQ(bs[0]->GetAttribute("id"), "1");
  EXPECT_EQ(bs[1]->GetAttribute("id"), "2");
  EXPECT_EQ(bs[2]->GetAttribute("id"), "3");
  EXPECT_EQ(doc->root()->GetElementsByTagName("*").size(), 4u);
}

TEST(DomTest, TextContentConcatenatesDescendants) {
  auto doc = Parse("<a>x<b>y<c>z</c></b>w</a>");
  EXPECT_EQ(doc->root()->TextContent(), "xyzw");
}

TEST(DomTest, DocOrderAttributesAfterElementBeforeChildren) {
  auto doc = Parse("<a k=\"v\"><b/></a>");
  const Element* a = doc->root();
  const Attr* k = a->FindAttribute("k");
  const Element* b = a->FirstChildElement("b");
  EXPECT_LT(a->doc_order(), k->doc_order());
  EXPECT_LT(k->doc_order(), b->doc_order());
}

TEST(DomTest, CloneDeepIsIndependent) {
  auto doc = Parse("<a k=\"v\"><b>text</b></a>");
  auto clone_node = doc->Clone(true);
  auto* clone = static_cast<Document*>(clone_node.get());
  ASSERT_NE(clone->root(), nullptr);
  EXPECT_EQ(clone->root()->tag(), "a");
  EXPECT_EQ(clone->root()->GetAttribute("k"), "v");
  EXPECT_EQ(clone->root()->TextContent(), "text");
  // Mutating the clone leaves the original intact.
  clone->root()->SetAttribute("k", "changed");
  clone->root()->RemoveChild(clone->root()->FirstChildElement("b"));
  EXPECT_EQ(doc->root()->GetAttribute("k"), "v");
  EXPECT_NE(doc->root()->FirstChildElement("b"), nullptr);
}

TEST(DomTest, CloneShallowSkipsChildrenKeepsAttributes) {
  Element el("e");
  el.SetAttribute("a", "1");
  el.AppendChild(std::make_unique<Element>("child"));
  auto clone = el.Clone(false);
  auto* cloned = static_cast<Element*>(clone.get());
  EXPECT_EQ(cloned->attribute_count(), 1u);
  EXPECT_TRUE(cloned->children().empty());
}

TEST(DomTest, CloneCopiesDtd) {
  auto doc = Parse("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>");
  ASSERT_NE(doc->dtd(), nullptr);
  auto clone_node = doc->Clone(true);
  auto* clone = static_cast<Document*>(clone_node.get());
  ASSERT_NE(clone->dtd(), nullptr);
  EXPECT_NE(clone->dtd(), doc->dtd());
  EXPECT_NE(clone->dtd()->FindElement("a"), nullptr);
}

TEST(DomTest, ReindexAfterMutation) {
  auto doc = Parse("<a><b/><c/></a>");
  int64_t before = doc->node_count();
  doc->root()->RemoveChild(doc->root()->FirstChildElement("b"));
  doc->Reindex();
  EXPECT_EQ(doc->node_count(), before - 1);
}

TEST(DomTest, ForEachNodeVisitsAttributes) {
  auto doc = Parse("<a x=\"1\"><b y=\"2\"/>t</a>");
  int elements = 0;
  int attributes = 0;
  int texts = 0;
  ForEachNode(static_cast<const Node*>(doc.get()), [&](const Node* n) {
    if (n->IsElement()) ++elements;
    if (n->IsAttribute()) ++attributes;
    if (n->IsText()) ++texts;
  });
  EXPECT_EQ(elements, 2);
  EXPECT_EQ(attributes, 2);
  EXPECT_EQ(texts, 1);
}

TEST(DomTest, IsAncestorOrSelf) {
  auto doc = Parse("<a><b><c/></b><d/></a>");
  Element* a = doc->root();
  Element* b = a->FirstChildElement("b");
  Element* c = b->FirstChildElement("c");
  Element* d = a->FirstChildElement("d");
  EXPECT_TRUE(IsAncestorOrSelf(a, c));
  EXPECT_TRUE(IsAncestorOrSelf(c, c));
  EXPECT_FALSE(IsAncestorOrSelf(c, a));
  EXPECT_FALSE(IsAncestorOrSelf(b, d));
}

TEST(DomTest, InsertBefore) {
  auto doc = Parse("<a><b/><d/></a>");
  Element* a = doc->root();
  Node* d = a->FirstChildElement("d");
  Node* inserted = a->InsertBefore(std::make_unique<Element>("c"), d);
  ASSERT_NE(inserted, nullptr);
  EXPECT_EQ(inserted->parent(), a);
  ASSERT_EQ(a->child_count(), 3u);
  EXPECT_EQ(a->child(1)->NodeName(), "c");
  // Null reference appends.
  a->InsertBefore(std::make_unique<Element>("e"), nullptr);
  EXPECT_EQ(a->child(3)->NodeName(), "e");
  // Foreign reference fails.
  Element other("x");
  EXPECT_EQ(a->InsertBefore(std::make_unique<Element>("y"), &other),
            nullptr);
}

TEST(DomTest, ReplaceChild) {
  auto doc = Parse("<a><b>old</b></a>");
  Element* a = doc->root();
  Node* b = a->FirstChildElement("b");
  auto replacement = std::make_unique<Element>("c");
  replacement->AppendText("new");
  std::unique_ptr<Node> old = a->ReplaceChild(std::move(replacement), b);
  ASSERT_NE(old, nullptr);
  EXPECT_EQ(old->NodeName(), "b");
  EXPECT_EQ(old->parent(), nullptr);
  ASSERT_EQ(a->child_count(), 1u);
  EXPECT_EQ(a->child(0)->NodeName(), "c");
  EXPECT_EQ(a->TextContent(), "new");
}

TEST(DomTest, NormalizeMergesAdjacentText) {
  Element el("e");
  el.AppendText("a");
  el.AppendText("b");
  el.AppendChild(std::make_unique<Element>("x"));
  el.AppendText("");
  el.AppendText("c");
  el.Normalize();
  ASSERT_EQ(el.child_count(), 3u);
  EXPECT_EQ(el.child(0)->NodeValue(), "ab");
  EXPECT_EQ(el.child(1)->NodeName(), "x");
  EXPECT_EQ(el.child(2)->NodeValue(), "c");
}

TEST(DomTest, NormalizeRecursesAndKeepsCData) {
  auto doc = Parse("<a><b><![CDATA[x]]>y</b></a>");
  // Parser already separates CDATA from text; normalize must not merge
  // across the CDATA boundary.
  doc->Normalize();
  const Element* b = doc->root()->FirstChildElement("b");
  EXPECT_EQ(b->child_count(), 2u);
}

TEST(DomTest, NodeTypePredicates) {
  Text text("x");
  Text cdata("x", true);
  EXPECT_TRUE(text.IsText());
  EXPECT_TRUE(cdata.IsText());
  EXPECT_EQ(cdata.type(), NodeType::kCData);
  Element el("e");
  EXPECT_TRUE(el.IsElement());
  EXPECT_EQ(el.AsElement(), &el);
  EXPECT_EQ(el.AsAttr(), nullptr);
  Attr attr("a", "v");
  EXPECT_EQ(attr.AsAttr(), &attr);
  EXPECT_EQ(attr.AsElement(), nullptr);
}

}  // namespace
}  // namespace xml
}  // namespace xmlsec
