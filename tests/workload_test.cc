#include <gtest/gtest.h>

#include "workload/authgen.h"
#include "workload/docgen.h"
#include "xml/serializer.h"
#include "xml/validator.h"
#include "xpath/evaluator.h"

namespace xmlsec {
namespace workload {
namespace {

TEST(DocGenTest, GeneratesValidDocumentOfExpectedShape) {
  DocGenConfig config;
  config.depth = 3;
  config.fanout = 3;
  config.seed = 1;
  auto doc = GenerateDocument(config);
  ASSERT_NE(doc->root(), nullptr);
  EXPECT_EQ(doc->root()->tag(), "root");
  // fanout^1 + fanout^2 + fanout^3 = 3 + 9 + 27 element children.
  EXPECT_EQ(doc->root()->GetElementsByTagName("*").size(), 39u);
  ASSERT_NE(doc->dtd(), nullptr);
  EXPECT_TRUE(xml::ValidateDocument(doc.get()).ok());
}

TEST(DocGenTest, DeterministicForSeed) {
  DocGenConfig config;
  config.seed = 7;
  auto a = GenerateDocument(config);
  auto b = GenerateDocument(config);
  EXPECT_EQ(xml::SerializeDocument(*a), xml::SerializeDocument(*b));
  config.seed = 8;
  auto c = GenerateDocument(config);
  EXPECT_NE(xml::SerializeDocument(*a), xml::SerializeDocument(*c));
}

TEST(DocGenTest, ApproxNodeCountIsClose) {
  DocGenConfig config;
  config.depth = 4;
  config.fanout = 3;
  auto doc = GenerateDocument(config);
  int64_t approx = ApproxNodeCount(config);
  EXPECT_GT(doc->node_count(), approx / 2);
  EXPECT_LT(doc->node_count(), approx * 2);
}

TEST(DocGenTest, ConfigForNodeBudgetScales) {
  DocGenConfig small = ConfigForNodeBudget(100);
  DocGenConfig large = ConfigForNodeBudget(100000);
  EXPECT_GE(ApproxNodeCount(small), 100);
  EXPECT_GE(ApproxNodeCount(large), 100000);
  auto doc = GenerateDocument(large);
  EXPECT_GT(doc->node_count(), 50000);
}

TEST(DocGenTest, LaboratoryConformsToPaperDtd) {
  auto doc = GenerateLaboratory(5, 4, 42);
  ASSERT_NE(doc->root(), nullptr);
  EXPECT_EQ(doc->root()->tag(), "laboratory");
  EXPECT_EQ(doc->root()->GetElementsByTagName("project").size(), 5u);
  EXPECT_EQ(doc->root()->GetElementsByTagName("paper").size(), 20u);
  EXPECT_TRUE(xml::ValidateDocument(doc.get()).ok());
}

TEST(AuthGenTest, GeneratesRequestedCountAndSplit) {
  auto doc = GenerateLaboratory(4, 3, 1);
  AuthGenConfig config;
  config.count = 64;
  config.schema_fraction = 0.25;
  config.seed = 3;
  GeneratedWorkload workload =
      GenerateAuthorizations(*doc, "d.xml", "s.dtd", config);
  EXPECT_EQ(workload.instance_auths.size() + workload.schema_auths.size(),
            64u);
  EXPECT_GT(workload.schema_auths.size(), 4u);
  EXPECT_GT(workload.instance_auths.size(), 32u);
  for (const auto& auth : workload.instance_auths) {
    EXPECT_EQ(auth.object.uri, "d.xml");
  }
  for (const auto& auth : workload.schema_auths) {
    EXPECT_EQ(auth.object.uri, "s.dtd");
    EXPECT_FALSE(authz::IsWeak(auth.type));  // schema auths never weak
  }
}

TEST(AuthGenTest, PathsTargetLiveNodes) {
  auto doc = GenerateLaboratory(3, 2, 9);
  AuthGenConfig config;
  config.count = 32;
  config.seed = 5;
  GeneratedWorkload workload =
      GenerateAuthorizations(*doc, "d.xml", "s.dtd", config);
  // Every generated path must compile and select at least one node.
  int live = 0;
  for (const auto& auth : workload.instance_auths) {
    auto nodes = xpath::SelectXPath(auth.object.path, doc->root());
    ASSERT_TRUE(nodes.ok()) << auth.object.path << ": " << nodes.status();
    if (!nodes->empty()) ++live;
  }
  EXPECT_EQ(live, static_cast<int>(workload.instance_auths.size()));
}

TEST(AuthGenTest, RequesterBelongsToPopulation) {
  auto doc = GenerateLaboratory(2, 2, 4);
  AuthGenConfig config;
  GeneratedWorkload workload =
      GenerateAuthorizations(*doc, "d.xml", "s.dtd", config);
  EXPECT_FALSE(workload.requester.user.empty());
  EXPECT_TRUE(workload.groups.IsMemberOrSelf(workload.requester.user,
                                             "Public"));
}

}  // namespace
}  // namespace workload
}  // namespace xmlsec
