// Property suites for the write path (DESIGN.md, "The write path"):
//
//  * Incremental/full parity — for randomized documents, authorization
//    mixes, and op batches, applying a batch with the compiled engine
//    (incremental re-labeling when fully decidable) yields a
//    byte-identical document, identical op counts, and identical
//    error outcomes to the whole-document re-label path.
//  * Batch oracle — a batch that applies equals the sequential
//    composition of its operations applied one at a time.
//  * Atomicity — a batch with a denied operation at ANY position
//    mutates nothing: the caller's document is untouched and no
//    partial outcome escapes.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "analysis/policy_automaton.h"
#include "authz/labeling.h"
#include "authz/update.h"
#include "workload/authgen.h"
#include "workload/docgen.h"
#include "xml/serializer.h"

namespace xmlsec {
namespace authz {
namespace {

using analysis::PolicyAutomaton;
using workload::AuthGenConfig;
using workload::DocGenConfig;
using workload::GeneratedWorkload;
using xml::Document;
using xml::Element;
using xml::Node;

std::string Compact(const Document& doc) {
  xml::SerializeOptions options;
  options.xml_declaration = false;
  return SerializeDocument(doc, options);
}

/// Absolute location path selecting exactly `el` (positional predicate
/// per step), usable as an update target on the same document shape.
std::string PathTo(const Element* el) {
  std::string path;
  const Element* cur = el;
  while (cur != nullptr) {
    const Node* parent = cur->parent();
    int index = 1;
    if (parent != nullptr) {
      for (size_t i = 0; i < parent->child_count(); ++i) {
        const Element* sib = parent->child(i)->AsElement();
        if (sib == cur) break;
        if (sib != nullptr && sib->tag() == cur->tag()) ++index;
      }
    }
    path = "/" + cur->tag() + "[" + std::to_string(index) + "]" + path;
    cur = parent == nullptr ? nullptr : parent->AsElement();
  }
  return path;
}

std::vector<const Element*> AllElements(const Document& doc) {
  std::vector<const Element*> out;
  xml::ForEachNode(static_cast<const Node*>(&doc), [&](const Node* n) {
    if (const Element* el = n->AsElement()) out.push_back(el);
  });
  return out;
}

struct Scenario {
  uint64_t seed;
  int depth;
  int fanout;
  int auth_count;
  int op_count;
};

void PrintTo(const Scenario& s, std::ostream* os) {
  *os << "seed=" << s.seed << " depth=" << s.depth << " fanout=" << s.fanout
      << " auths=" << s.auth_count << " ops=" << s.op_count;
}

class UpdatePropertyTest : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    const Scenario& s = GetParam();
    DocGenConfig doc_config;
    doc_config.depth = s.depth;
    doc_config.fanout = s.fanout;
    doc_config.seed = s.seed;
    doc_ = workload::GenerateDocument(doc_config);

    AuthGenConfig auth_config;
    auth_config.count = s.auth_count;
    auth_config.seed = s.seed * 1000 + 17;
    workload_ = workload::GenerateAuthorizations(*doc_, "d.xml", "s.dtd",
                                                 auth_config);
    // The generator emits read authorizations; the write path only
    // considers write-action ones, so flip the whole policy.
    for (Authorization& auth : workload_.instance_auths) {
      auth.action = Action::kWrite;
    }
    for (Authorization& auth : workload_.schema_auths) {
      auth.action = Action::kWrite;
    }
    // A broad base grant so random batches are not vacuously denied
    // under the closed completeness policy; the generated negative
    // authorizations still carve denied regions out of it.
    Authorization base;
    base.subject = *Subject::Make(workload_.requester.user, "*", "*");
    base.object.uri = "d.xml";
    base.object.path = "/" + std::string(doc_->root()->tag());
    base.action = Action::kWrite;
    base.sign = Sign::kPlus;
    base.type = AuthType::kRecursive;
    workload_.instance_auths.push_back(base);
  }

  /// A batch of `op_count` operations over existing nodes, sampled
  /// deterministically from the scenario seed.  Deletions are kept at
  /// the batch tail so earlier targets stay resolvable in the
  /// sequential oracle.
  std::vector<UpdateOp> RandomOps() {
    const Scenario& s = GetParam();
    std::mt19937_64 rng(s.seed * 7919 + 13);
    std::vector<const Element*> elements = AllElements(*doc_);
    auto pick = [&](size_t n) { return rng() % n; };
    std::vector<UpdateOp> ops;
    std::vector<UpdateOp> deletes;
    for (int i = 0; i < s.op_count; ++i) {
      const Element* el = elements[pick(elements.size())];
      UpdateOp op;
      op.target = PathTo(el);
      switch (pick(5)) {
        case 0:
          op.kind = UpdateOpKind::kSetText;
          op.value = "mutated-" + std::to_string(i);
          ops.push_back(op);
          break;
        case 1: {
          op.kind = UpdateOpKind::kSetAttribute;
          if (!el->attributes().empty()) {
            op.name = el->attributes()[pick(el->attributes().size())]->name();
          } else {
            op.name = "a0";
          }
          op.value = "v" + std::to_string(i);
          ops.push_back(op);
          break;
        }
        case 2: {
          if (el->attributes().empty()) break;  // Thinner mix, same seed.
          op.kind = UpdateOpKind::kRemoveAttribute;
          op.name = el->attributes()[pick(el->attributes().size())]->name();
          ops.push_back(op);
          break;
        }
        case 3: {
          op.kind = UpdateOpKind::kInsertChild;
          const Element* donor = elements[pick(elements.size())];
          op.fragment = "<" + donor->tag() + "/>";
          ops.push_back(op);
          break;
        }
        default: {
          if (el->parent() == nullptr ||
              el->parent()->AsElement() == nullptr) {
            break;  // Never delete the root.
          }
          op.kind = UpdateOpKind::kDeleteNode;
          deletes.push_back(op);
          break;
        }
      }
    }
    ops.insert(ops.end(), deletes.begin(), deletes.end());
    return ops;
  }

  Result<UpdateOutcome> Apply(const std::vector<UpdateOp>& ops,
                              const ExplicitSignEngine* engine,
                              const Document* doc = nullptr) {
    UpdateProcessor processor(&workload_.groups);
    return processor.Apply(doc != nullptr ? *doc : *doc_,
                           workload_.instance_auths, workload_.schema_auths,
                           workload_.requester, ops,
                           /*validate_result=*/false, engine);
  }

  std::unique_ptr<Document> doc_;
  GeneratedWorkload workload_;
};

TEST_P(UpdatePropertyTest, IncrementalEngineMatchesFullRelabel) {
  std::vector<UpdateOp> ops = RandomOps();
  if (ops.empty()) GTEST_SKIP() << "empty op mix for this seed";

  auto compiled = PolicyAutomaton::Compile(*doc_->dtd(),
                                           workload_.instance_auths,
                                           workload_.schema_auths);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  const std::string before = Compact(*doc_);
  auto full = Apply(ops, /*engine=*/nullptr);
  auto incr = Apply(ops, compiled->get());

  // Whatever happens, the input document is never touched.
  EXPECT_EQ(Compact(*doc_), before);

  ASSERT_EQ(full.ok(), incr.ok())
      << "engine path diverged: full=" << full.status()
      << " incremental=" << incr.status();
  if (!full.ok()) {
    EXPECT_EQ(full.status().code(), incr.status().code());
    return;
  }
  // Byte-identical result document and identical op accounting — the
  // incremental path is an optimization, never a semantic change.
  EXPECT_EQ(Compact(*full->document), Compact(*incr->document));
  EXPECT_EQ(full->ops_applied, incr->ops_applied);
  EXPECT_EQ(full->incremental_relabels, 0);
  // Every op re-labels exactly once, one way or the other.
  EXPECT_EQ(incr->incremental_relabels + incr->full_relabels,
            full->full_relabels);
  if (!(*compiled)->fully_decidable()) {
    EXPECT_EQ(incr->incremental_relabels, 0)
        << "incremental path used on an undecidable policy";
  }
}

TEST_P(UpdatePropertyTest, BatchEqualsSequentialComposition) {
  std::vector<UpdateOp> ops = RandomOps();
  if (ops.empty()) GTEST_SKIP() << "empty op mix for this seed";
  // Random mixes hit genuine denials and vanished targets; shrink the
  // batch to an applicable core by dropping the op the error names
  // (errors quote the target path), so the oracle runs on real data
  // instead of skipping.
  auto batch = Apply(ops, /*engine=*/nullptr);
  for (int guard = 0; !batch.ok() && guard < 32 && !ops.empty(); ++guard) {
    const std::string& message = batch.status().message();
    auto offending =
        std::find_if(ops.begin(), ops.end(), [&](const UpdateOp& op) {
          return message.find("'" + op.target + "'") != std::string::npos;
        });
    if (offending == ops.end()) break;
    ops.erase(offending);
    if (ops.empty()) break;
    batch = Apply(ops, /*engine=*/nullptr);
  }
  if (ops.empty() || !batch.ok()) {
    GTEST_SKIP() << "no applicable core: " << batch.status();
  }

  // Oracle: the batch is the left fold of its operations.
  std::unique_ptr<Document> rolling;
  int64_t applied = 0;
  for (const UpdateOp& op : ops) {
    auto step = Apply({op}, /*engine=*/nullptr,
                      rolling != nullptr ? rolling.get() : doc_.get());
    ASSERT_TRUE(step.ok()) << "batch applied but step did not: "
                           << step.status();
    applied += step->ops_applied;
    rolling = std::move(step->document);
  }
  EXPECT_EQ(Compact(*batch->document), Compact(*rolling));
  EXPECT_EQ(batch->ops_applied, applied);
}

TEST_P(UpdatePropertyTest, DeniedOpAtAnyPositionIsAtomic) {
  // Find a node the requester cannot write; a batch ending there must
  // fail as a unit even when every earlier op would have applied.
  TreeLabeler labeler(&workload_.groups,
                      PolicyOptions{.action = static_cast<int>(Action::kWrite)});
  auto labels = labeler.Label(*doc_, workload_.instance_auths,
                              workload_.schema_auths, workload_.requester);
  ASSERT_TRUE(labels.ok()) << labels.status();
  const Element* denied_el = nullptr;
  for (const Element* el : AllElements(*doc_)) {
    if (labels->FinalSign(el) != TriSign::kPlus) {
      denied_el = el;
      break;
    }
  }
  if (denied_el == nullptr) {
    GTEST_SKIP() << "requester can write everywhere in this scenario";
  }

  UpdateOp poison;
  poison.kind = UpdateOpKind::kSetText;
  poison.target = PathTo(denied_el);
  poison.value = "forged";

  std::vector<UpdateOp> ops = RandomOps();
  for (size_t position = 0; position <= ops.size(); ++position) {
    std::vector<UpdateOp> batch = ops;
    batch.insert(batch.begin() + static_cast<ptrdiff_t>(position), poison);
    const std::string before = Compact(*doc_);
    auto outcome = Apply(batch, /*engine=*/nullptr);
    ASSERT_FALSE(outcome.ok())
        << "poison op applied at position " << position;
    EXPECT_EQ(Compact(*doc_), before) << "denied batch left side effects";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, UpdatePropertyTest,
    ::testing::Values(Scenario{1, 3, 3, 8, 6}, Scenario{2, 4, 3, 12, 8},
                      Scenario{3, 2, 5, 6, 5}, Scenario{4, 4, 4, 16, 10},
                      Scenario{5, 3, 4, 20, 8}, Scenario{6, 5, 2, 10, 12},
                      Scenario{7, 3, 3, 4, 6}, Scenario{8, 4, 3, 24, 9}));

// Deterministic decidable-policy scenario on the paper's laboratory
// schema: the compiled automaton must prove full decidability and the
// write path must serve every op through the incremental re-label.
TEST(UpdateIncrementalTest, DecidablePolicyServesIncrementally) {
  std::unique_ptr<Document> doc = workload::GenerateLaboratory(4, 3, 7);
  GroupStore groups;
  ASSERT_TRUE(groups.AddMembership("ada", "Staff").ok());
  Requester rq{"ada", "10.0.0.9", "lab.example"};

  auto auth = [](std::string_view path, Sign sign, AuthType type) {
    Authorization a;
    a.subject = *Subject::Make("Staff", "*", "*");
    a.object.uri = "lab.xml";
    a.object.path = std::string(path);
    a.action = Action::kWrite;
    a.sign = sign;
    a.type = type;
    return a;
  };
  std::vector<Authorization> instance = {
      auth("/laboratory", Sign::kPlus, AuthType::kRecursive),
      auth("//fund", Sign::kMinus, AuthType::kRecursive)};

  auto compiled = PolicyAutomaton::Compile(*doc->dtd(), instance, {});
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  ASSERT_TRUE((*compiled)->fully_decidable());

  std::vector<UpdateOp> ops;
  UpdateOp retitle;
  retitle.kind = UpdateOpKind::kSetText;
  retitle.target = "/laboratory[1]/project[1]/paper[1]/title[1]";
  retitle.value = "Revised";
  ops.push_back(retitle);
  UpdateOp relabel_paper;
  relabel_paper.kind = UpdateOpKind::kSetAttribute;
  relabel_paper.target = "/laboratory[1]/project[2]/paper[1]";
  relabel_paper.name = "category";
  relabel_paper.value = "public";
  ops.push_back(relabel_paper);
  UpdateOp add_member;
  add_member.kind = UpdateOpKind::kInsertChild;
  add_member.target = "/laboratory[1]/project[1]";
  add_member.before = "paper[1]";
  add_member.fragment = "<member><fname>Tony</fname><lname>Hoare</lname></member>";
  ops.push_back(add_member);

  UpdateProcessor processor(&groups);
  auto full = processor.Apply(*doc, instance, {}, rq, ops,
                              /*validate_result=*/true, nullptr);
  ASSERT_TRUE(full.ok()) << full.status();
  auto incr = processor.Apply(*doc, instance, {}, rq, ops,
                              /*validate_result=*/true, compiled->get());
  ASSERT_TRUE(incr.ok()) << incr.status();

  xml::SerializeOptions options;
  options.xml_declaration = false;
  EXPECT_EQ(SerializeDocument(*full->document, options),
            SerializeDocument(*incr->document, options));
  EXPECT_EQ(incr->incremental_relabels, static_cast<int64_t>(ops.size()));
  EXPECT_EQ(incr->full_relabels, 0);
  EXPECT_EQ(full->incremental_relabels, 0);

  // The explicit denial still binds on the incremental path: touching
  // the fund subtree is refused either way.
  auto funds = doc->root()->GetElementsByTagName("fund");
  ASSERT_FALSE(funds.empty()) << "seed produced no fund element";
  UpdateOp touch_fund;
  touch_fund.kind = UpdateOpKind::kSetText;
  touch_fund.target = PathTo(funds.front());
  touch_fund.value = "0";
  std::vector<UpdateOp> fund_ops = {touch_fund};
  auto denied_full = processor.Apply(*doc, instance, {}, rq, fund_ops,
                                     /*validate_result=*/true, nullptr);
  auto denied_incr =
      processor.Apply(*doc, instance, {}, rq, fund_ops,
                      /*validate_result=*/true, compiled->get());
  ASSERT_FALSE(denied_full.ok());
  ASSERT_FALSE(denied_incr.ok());
  EXPECT_EQ(denied_full.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(denied_incr.status().code(), StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace authz
}  // namespace xmlsec
