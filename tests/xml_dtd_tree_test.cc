#include <gtest/gtest.h>

#include "workload/docgen.h"
#include "xml/dtd_parser.h"
#include "xml/dtd_tree.h"

namespace xmlsec {
namespace xml {
namespace {

std::unique_ptr<Dtd> MustParse(std::string_view text) {
  auto result = ParseDtd(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(DtdTreeTest, PaperFigure1Tree) {
  auto dtd = MustParse(workload::LaboratoryDtd());
  dtd->set_name("laboratory");
  std::string tree = DtdTreeString(*dtd);
  // The arcs of Fig. 1(b): laboratory --* project; project --- manager,
  // --* member, --* paper, --? fund; attributes as squares.
  EXPECT_NE(tree.find("(laboratory)"), std::string::npos);
  EXPECT_NE(tree.find("|--* (project)"), std::string::npos);
  EXPECT_NE(tree.find("|--- (manager)"), std::string::npos);
  EXPECT_NE(tree.find("|--* (member)"), std::string::npos);
  EXPECT_NE(tree.find("|--* (paper)"), std::string::npos);
  EXPECT_NE(tree.find("|--? (fund)"), std::string::npos);
  EXPECT_NE(tree.find("|--- [name]"), std::string::npos);
  EXPECT_NE(tree.find("|--- [type]"), std::string::npos);
  EXPECT_NE(tree.find("|--? (abstract)"), std::string::npos);
  EXPECT_NE(tree.find("|--? [sponsor]"), std::string::npos);
}

TEST(DtdTreeTest, ChoiceMembersRenderOptional) {
  auto dtd = MustParse("<!ELEMENT e (a|b)><!ELEMENT a EMPTY>"
                       "<!ELEMENT b EMPTY>");
  dtd->set_name("e");
  std::string tree = DtdTreeString(*dtd);
  EXPECT_NE(tree.find("|--? (a)"), std::string::npos);
  EXPECT_NE(tree.find("|--? (b)"), std::string::npos);
}

TEST(DtdTreeTest, GroupCardinalityComposes) {
  auto dtd = MustParse("<!ELEMENT e (a,b?)+><!ELEMENT a EMPTY>"
                       "<!ELEMENT b EMPTY>");
  dtd->set_name("e");
  std::string tree = DtdTreeString(*dtd);
  EXPECT_NE(tree.find("|--+ (a)"), std::string::npos);  // 1 inside + -> +
  EXPECT_NE(tree.find("|--* (b)"), std::string::npos);  // ? inside + -> *
}

TEST(DtdTreeTest, RecursionCutWithMarker) {
  auto dtd = MustParse("<!ELEMENT tree (tree*, leaf?)>"
                       "<!ELEMENT leaf EMPTY>");
  dtd->set_name("tree");
  std::string tree = DtdTreeString(*dtd);
  EXPECT_NE(tree.find("(tree)^"), std::string::npos);
  // The recursive branch stops; leaf still rendered once.
  EXPECT_NE(tree.find("|--? (leaf)"), std::string::npos);
}

TEST(DtdTreeTest, MixedContentChildren) {
  auto dtd = MustParse("<!ELEMENT p (#PCDATA|em)*><!ELEMENT em (#PCDATA)>");
  dtd->set_name("p");
  std::string tree = DtdTreeString(*dtd);
  EXPECT_NE(tree.find("|--* (em)"), std::string::npos);
}

TEST(DtdTreeTest, ExplicitRootAndFallbacks) {
  auto dtd = MustParse("<!ELEMENT a (b)><!ELEMENT b EMPTY>");
  // Explicit root.
  EXPECT_EQ(DtdTreeString(*dtd, "b"), "(b)\n");
  // No name: first declaration alphabetically.
  std::string tree = DtdTreeString(*dtd);
  EXPECT_EQ(tree.find("(a)"), 0u);
  // Empty DTD.
  Dtd empty;
  EXPECT_EQ(DtdTreeString(empty), "(empty DTD)\n");
}

}  // namespace
}  // namespace xml
}  // namespace xmlsec
