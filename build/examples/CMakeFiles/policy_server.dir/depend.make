# Empty dependencies file for policy_server.
# This may be replaced when dependencies are built.
