file(REMOVE_RECURSE
  "CMakeFiles/policy_server.dir/policy_server.cpp.o"
  "CMakeFiles/policy_server.dir/policy_server.cpp.o.d"
  "policy_server"
  "policy_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
