# Empty dependencies file for secure_editor.
# This may be replaced when dependencies are built.
