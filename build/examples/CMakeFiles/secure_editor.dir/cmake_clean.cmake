file(REMOVE_RECURSE
  "CMakeFiles/secure_editor.dir/secure_editor.cpp.o"
  "CMakeFiles/secure_editor.dir/secure_editor.cpp.o.d"
  "secure_editor"
  "secure_editor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_editor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
