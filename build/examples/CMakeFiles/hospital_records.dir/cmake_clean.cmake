file(REMOVE_RECURSE
  "CMakeFiles/hospital_records.dir/hospital_records.cpp.o"
  "CMakeFiles/hospital_records.dir/hospital_records.cpp.o.d"
  "hospital_records"
  "hospital_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
