# Empty compiler generated dependencies file for hospital_records.
# This may be replaced when dependencies are built.
