# Empty dependencies file for xacl_tool.
# This may be replaced when dependencies are built.
