file(REMOVE_RECURSE
  "CMakeFiles/xacl_tool.dir/xacl_tool.cpp.o"
  "CMakeFiles/xacl_tool.dir/xacl_tool.cpp.o.d"
  "xacl_tool"
  "xacl_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xacl_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
