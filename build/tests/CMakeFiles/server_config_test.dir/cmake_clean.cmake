file(REMOVE_RECURSE
  "CMakeFiles/server_config_test.dir/server_config_test.cc.o"
  "CMakeFiles/server_config_test.dir/server_config_test.cc.o.d"
  "server_config_test"
  "server_config_test.pdb"
  "server_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
