file(REMOVE_RECURSE
  "CMakeFiles/authz_authorization_test.dir/authz_authorization_test.cc.o"
  "CMakeFiles/authz_authorization_test.dir/authz_authorization_test.cc.o.d"
  "authz_authorization_test"
  "authz_authorization_test.pdb"
  "authz_authorization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_authorization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
