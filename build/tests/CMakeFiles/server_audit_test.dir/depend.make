# Empty dependencies file for server_audit_test.
# This may be replaced when dependencies are built.
