file(REMOVE_RECURSE
  "CMakeFiles/server_audit_test.dir/server_audit_test.cc.o"
  "CMakeFiles/server_audit_test.dir/server_audit_test.cc.o.d"
  "server_audit_test"
  "server_audit_test.pdb"
  "server_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
