file(REMOVE_RECURSE
  "CMakeFiles/xpath_eval_test.dir/xpath_eval_test.cc.o"
  "CMakeFiles/xpath_eval_test.dir/xpath_eval_test.cc.o.d"
  "xpath_eval_test"
  "xpath_eval_test.pdb"
  "xpath_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
