# Empty dependencies file for xpath_eval_test.
# This may be replaced when dependencies are built.
