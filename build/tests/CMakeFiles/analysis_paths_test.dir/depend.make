# Empty dependencies file for analysis_paths_test.
# This may be replaced when dependencies are built.
