file(REMOVE_RECURSE
  "CMakeFiles/analysis_paths_test.dir/analysis_paths_test.cc.o"
  "CMakeFiles/analysis_paths_test.dir/analysis_paths_test.cc.o.d"
  "analysis_paths_test"
  "analysis_paths_test.pdb"
  "analysis_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
