# Empty compiler generated dependencies file for xml_validity_conformance_test.
# This may be replaced when dependencies are built.
