file(REMOVE_RECURSE
  "CMakeFiles/xml_validity_conformance_test.dir/xml_validity_conformance_test.cc.o"
  "CMakeFiles/xml_validity_conformance_test.dir/xml_validity_conformance_test.cc.o.d"
  "xml_validity_conformance_test"
  "xml_validity_conformance_test.pdb"
  "xml_validity_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_validity_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
