file(REMOVE_RECURSE
  "CMakeFiles/server_tcp_test.dir/server_tcp_test.cc.o"
  "CMakeFiles/server_tcp_test.dir/server_tcp_test.cc.o.d"
  "server_tcp_test"
  "server_tcp_test.pdb"
  "server_tcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_tcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
