# Empty compiler generated dependencies file for server_tcp_test.
# This may be replaced when dependencies are built.
