# Empty compiler generated dependencies file for authz_processor_test.
# This may be replaced when dependencies are built.
