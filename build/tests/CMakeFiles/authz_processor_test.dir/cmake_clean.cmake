file(REMOVE_RECURSE
  "CMakeFiles/authz_processor_test.dir/authz_processor_test.cc.o"
  "CMakeFiles/authz_processor_test.dir/authz_processor_test.cc.o.d"
  "authz_processor_test"
  "authz_processor_test.pdb"
  "authz_processor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_processor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
