file(REMOVE_RECURSE
  "CMakeFiles/authz_update_test.dir/authz_update_test.cc.o"
  "CMakeFiles/authz_update_test.dir/authz_update_test.cc.o.d"
  "authz_update_test"
  "authz_update_test.pdb"
  "authz_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
