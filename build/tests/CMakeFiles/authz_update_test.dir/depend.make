# Empty dependencies file for authz_update_test.
# This may be replaced when dependencies are built.
