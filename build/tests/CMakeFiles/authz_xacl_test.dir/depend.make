# Empty dependencies file for authz_xacl_test.
# This may be replaced when dependencies are built.
