file(REMOVE_RECURSE
  "CMakeFiles/authz_xacl_test.dir/authz_xacl_test.cc.o"
  "CMakeFiles/authz_xacl_test.dir/authz_xacl_test.cc.o.d"
  "authz_xacl_test"
  "authz_xacl_test.pdb"
  "authz_xacl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_xacl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
