# Empty compiler generated dependencies file for authz_loosening_test.
# This may be replaced when dependencies are built.
