file(REMOVE_RECURSE
  "CMakeFiles/authz_loosening_test.dir/authz_loosening_test.cc.o"
  "CMakeFiles/authz_loosening_test.dir/authz_loosening_test.cc.o.d"
  "authz_loosening_test"
  "authz_loosening_test.pdb"
  "authz_loosening_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_loosening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
