file(REMOVE_RECURSE
  "CMakeFiles/server_chaos_test.dir/server_chaos_test.cc.o"
  "CMakeFiles/server_chaos_test.dir/server_chaos_test.cc.o.d"
  "server_chaos_test"
  "server_chaos_test.pdb"
  "server_chaos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
