
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/server_chaos_test.cc" "tests/CMakeFiles/server_chaos_test.dir/server_chaos_test.cc.o" "gcc" "tests/CMakeFiles/server_chaos_test.dir/server_chaos_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/xmlsec_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xmlsec_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/xmlsec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/authz/CMakeFiles/xmlsec_authz.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xmlsec_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlsec_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xmlsec_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/xmlsec_schema_paths.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
