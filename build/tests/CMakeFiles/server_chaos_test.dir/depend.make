# Empty dependencies file for server_chaos_test.
# This may be replaced when dependencies are built.
