file(REMOVE_RECURSE
  "CMakeFiles/xml_dtd_tree_test.dir/xml_dtd_tree_test.cc.o"
  "CMakeFiles/xml_dtd_tree_test.dir/xml_dtd_tree_test.cc.o.d"
  "xml_dtd_tree_test"
  "xml_dtd_tree_test.pdb"
  "xml_dtd_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_dtd_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
