# Empty dependencies file for xml_dtd_tree_test.
# This may be replaced when dependencies are built.
