# Empty dependencies file for xml_validator_test.
# This may be replaced when dependencies are built.
