file(REMOVE_RECURSE
  "CMakeFiles/xml_validator_test.dir/xml_validator_test.cc.o"
  "CMakeFiles/xml_validator_test.dir/xml_validator_test.cc.o.d"
  "xml_validator_test"
  "xml_validator_test.pdb"
  "xml_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
