# Empty dependencies file for authz_labeling_test.
# This may be replaced when dependencies are built.
