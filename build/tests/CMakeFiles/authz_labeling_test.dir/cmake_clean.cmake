file(REMOVE_RECURSE
  "CMakeFiles/authz_labeling_test.dir/authz_labeling_test.cc.o"
  "CMakeFiles/authz_labeling_test.dir/authz_labeling_test.cc.o.d"
  "authz_labeling_test"
  "authz_labeling_test.pdb"
  "authz_labeling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_labeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
