file(REMOVE_RECURSE
  "CMakeFiles/xpath_value_test.dir/xpath_value_test.cc.o"
  "CMakeFiles/xpath_value_test.dir/xpath_value_test.cc.o.d"
  "xpath_value_test"
  "xpath_value_test.pdb"
  "xpath_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
