# Empty dependencies file for xpath_value_test.
# This may be replaced when dependencies are built.
