file(REMOVE_RECURSE
  "CMakeFiles/xml_dom_test.dir/xml_dom_test.cc.o"
  "CMakeFiles/xml_dom_test.dir/xml_dom_test.cc.o.d"
  "xml_dom_test"
  "xml_dom_test.pdb"
  "xml_dom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_dom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
