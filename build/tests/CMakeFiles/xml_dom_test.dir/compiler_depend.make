# Empty compiler generated dependencies file for xml_dom_test.
# This may be replaced when dependencies are built.
