# Empty dependencies file for analysis_policy_test.
# This may be replaced when dependencies are built.
