file(REMOVE_RECURSE
  "CMakeFiles/analysis_policy_test.dir/analysis_policy_test.cc.o"
  "CMakeFiles/analysis_policy_test.dir/analysis_policy_test.cc.o.d"
  "analysis_policy_test"
  "analysis_policy_test.pdb"
  "analysis_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
