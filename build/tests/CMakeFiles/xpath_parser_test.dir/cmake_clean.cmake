file(REMOVE_RECURSE
  "CMakeFiles/xpath_parser_test.dir/xpath_parser_test.cc.o"
  "CMakeFiles/xpath_parser_test.dir/xpath_parser_test.cc.o.d"
  "xpath_parser_test"
  "xpath_parser_test.pdb"
  "xpath_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
