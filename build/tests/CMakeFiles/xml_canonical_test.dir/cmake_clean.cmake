file(REMOVE_RECURSE
  "CMakeFiles/xml_canonical_test.dir/xml_canonical_test.cc.o"
  "CMakeFiles/xml_canonical_test.dir/xml_canonical_test.cc.o.d"
  "xml_canonical_test"
  "xml_canonical_test.pdb"
  "xml_canonical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_canonical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
