# Empty dependencies file for xml_canonical_test.
# This may be replaced when dependencies are built.
