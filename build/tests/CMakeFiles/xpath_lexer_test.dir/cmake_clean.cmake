file(REMOVE_RECURSE
  "CMakeFiles/xpath_lexer_test.dir/xpath_lexer_test.cc.o"
  "CMakeFiles/xpath_lexer_test.dir/xpath_lexer_test.cc.o.d"
  "xpath_lexer_test"
  "xpath_lexer_test.pdb"
  "xpath_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
