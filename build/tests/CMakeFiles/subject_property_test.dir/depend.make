# Empty dependencies file for subject_property_test.
# This may be replaced when dependencies are built.
