# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for subject_property_test.
