file(REMOVE_RECURSE
  "CMakeFiles/subject_property_test.dir/subject_property_test.cc.o"
  "CMakeFiles/subject_property_test.dir/subject_property_test.cc.o.d"
  "subject_property_test"
  "subject_property_test.pdb"
  "subject_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subject_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
