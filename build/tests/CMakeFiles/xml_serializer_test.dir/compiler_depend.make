# Empty compiler generated dependencies file for xml_serializer_test.
# This may be replaced when dependencies are built.
