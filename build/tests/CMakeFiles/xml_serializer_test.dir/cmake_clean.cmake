file(REMOVE_RECURSE
  "CMakeFiles/xml_serializer_test.dir/xml_serializer_test.cc.o"
  "CMakeFiles/xml_serializer_test.dir/xml_serializer_test.cc.o.d"
  "xml_serializer_test"
  "xml_serializer_test.pdb"
  "xml_serializer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_serializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
