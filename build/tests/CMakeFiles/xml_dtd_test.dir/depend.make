# Empty dependencies file for xml_dtd_test.
# This may be replaced when dependencies are built.
