file(REMOVE_RECURSE
  "CMakeFiles/authz_prune_test.dir/authz_prune_test.cc.o"
  "CMakeFiles/authz_prune_test.dir/authz_prune_test.cc.o.d"
  "authz_prune_test"
  "authz_prune_test.pdb"
  "authz_prune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_prune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
