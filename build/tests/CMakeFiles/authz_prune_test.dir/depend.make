# Empty dependencies file for authz_prune_test.
# This may be replaced when dependencies are built.
