# Empty compiler generated dependencies file for authz_subject_test.
# This may be replaced when dependencies are built.
