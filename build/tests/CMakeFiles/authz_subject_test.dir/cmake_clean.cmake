file(REMOVE_RECURSE
  "CMakeFiles/authz_subject_test.dir/authz_subject_test.cc.o"
  "CMakeFiles/authz_subject_test.dir/authz_subject_test.cc.o.d"
  "authz_subject_test"
  "authz_subject_test.pdb"
  "authz_subject_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_subject_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
