# Empty dependencies file for authz_lint_test.
# This may be replaced when dependencies are built.
