file(REMOVE_RECURSE
  "CMakeFiles/authz_lint_test.dir/authz_lint_test.cc.o"
  "CMakeFiles/authz_lint_test.dir/authz_lint_test.cc.o.d"
  "authz_lint_test"
  "authz_lint_test.pdb"
  "authz_lint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_lint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
