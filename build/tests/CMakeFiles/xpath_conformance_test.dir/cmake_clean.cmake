file(REMOVE_RECURSE
  "CMakeFiles/xpath_conformance_test.dir/xpath_conformance_test.cc.o"
  "CMakeFiles/xpath_conformance_test.dir/xpath_conformance_test.cc.o.d"
  "xpath_conformance_test"
  "xpath_conformance_test.pdb"
  "xpath_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
