# Empty dependencies file for xpath_conformance_test.
# This may be replaced when dependencies are built.
