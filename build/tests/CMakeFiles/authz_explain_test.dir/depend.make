# Empty dependencies file for authz_explain_test.
# This may be replaced when dependencies are built.
