file(REMOVE_RECURSE
  "CMakeFiles/authz_explain_test.dir/authz_explain_test.cc.o"
  "CMakeFiles/authz_explain_test.dir/authz_explain_test.cc.o.d"
  "authz_explain_test"
  "authz_explain_test.pdb"
  "authz_explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authz_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
