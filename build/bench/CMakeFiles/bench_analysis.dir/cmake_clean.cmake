file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis.dir/bench_analysis.cc.o"
  "CMakeFiles/bench_analysis.dir/bench_analysis.cc.o.d"
  "bench_analysis"
  "bench_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
