# Empty dependencies file for bench_analysis.
# This may be replaced when dependencies are built.
