file(REMOVE_RECURSE
  "CMakeFiles/bench_xpath.dir/bench_xpath.cc.o"
  "CMakeFiles/bench_xpath.dir/bench_xpath.cc.o.d"
  "bench_xpath"
  "bench_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
