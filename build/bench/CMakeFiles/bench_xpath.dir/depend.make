# Empty dependencies file for bench_xpath.
# This may be replaced when dependencies are built.
