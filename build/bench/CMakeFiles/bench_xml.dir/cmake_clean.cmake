file(REMOVE_RECURSE
  "CMakeFiles/bench_xml.dir/bench_xml.cc.o"
  "CMakeFiles/bench_xml.dir/bench_xml.cc.o.d"
  "bench_xml"
  "bench_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
