# Empty compiler generated dependencies file for bench_xml.
# This may be replaced when dependencies are built.
