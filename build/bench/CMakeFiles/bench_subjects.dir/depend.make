# Empty dependencies file for bench_subjects.
# This may be replaced when dependencies are built.
