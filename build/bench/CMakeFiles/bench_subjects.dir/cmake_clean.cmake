file(REMOVE_RECURSE
  "CMakeFiles/bench_subjects.dir/bench_subjects.cc.o"
  "CMakeFiles/bench_subjects.dir/bench_subjects.cc.o.d"
  "bench_subjects"
  "bench_subjects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subjects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
