file(REMOVE_RECURSE
  "CMakeFiles/bench_server.dir/bench_server.cc.o"
  "CMakeFiles/bench_server.dir/bench_server.cc.o.d"
  "bench_server"
  "bench_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
