file(REMOVE_RECURSE
  "CMakeFiles/bench_labeling.dir/bench_labeling.cc.o"
  "CMakeFiles/bench_labeling.dir/bench_labeling.cc.o.d"
  "bench_labeling"
  "bench_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
