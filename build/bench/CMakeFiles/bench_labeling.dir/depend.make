# Empty dependencies file for bench_labeling.
# This may be replaced when dependencies are built.
