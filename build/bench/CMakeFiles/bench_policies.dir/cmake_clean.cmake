file(REMOVE_RECURSE
  "CMakeFiles/bench_policies.dir/bench_policies.cc.o"
  "CMakeFiles/bench_policies.dir/bench_policies.cc.o.d"
  "bench_policies"
  "bench_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
