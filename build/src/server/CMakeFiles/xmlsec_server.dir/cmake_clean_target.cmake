file(REMOVE_RECURSE
  "libxmlsec_server.a"
)
