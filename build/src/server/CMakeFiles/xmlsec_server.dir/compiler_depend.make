# Empty compiler generated dependencies file for xmlsec_server.
# This may be replaced when dependencies are built.
