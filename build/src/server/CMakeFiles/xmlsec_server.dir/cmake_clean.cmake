file(REMOVE_RECURSE
  "CMakeFiles/xmlsec_server.dir/audit_log.cc.o"
  "CMakeFiles/xmlsec_server.dir/audit_log.cc.o.d"
  "CMakeFiles/xmlsec_server.dir/config_files.cc.o"
  "CMakeFiles/xmlsec_server.dir/config_files.cc.o.d"
  "CMakeFiles/xmlsec_server.dir/document_server.cc.o"
  "CMakeFiles/xmlsec_server.dir/document_server.cc.o.d"
  "CMakeFiles/xmlsec_server.dir/http.cc.o"
  "CMakeFiles/xmlsec_server.dir/http.cc.o.d"
  "CMakeFiles/xmlsec_server.dir/repository.cc.o"
  "CMakeFiles/xmlsec_server.dir/repository.cc.o.d"
  "CMakeFiles/xmlsec_server.dir/sha256.cc.o"
  "CMakeFiles/xmlsec_server.dir/sha256.cc.o.d"
  "CMakeFiles/xmlsec_server.dir/tcp_listener.cc.o"
  "CMakeFiles/xmlsec_server.dir/tcp_listener.cc.o.d"
  "CMakeFiles/xmlsec_server.dir/user_directory.cc.o"
  "CMakeFiles/xmlsec_server.dir/user_directory.cc.o.d"
  "CMakeFiles/xmlsec_server.dir/view_cache.cc.o"
  "CMakeFiles/xmlsec_server.dir/view_cache.cc.o.d"
  "libxmlsec_server.a"
  "libxmlsec_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlsec_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
