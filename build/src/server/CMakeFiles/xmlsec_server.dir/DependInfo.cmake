
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/audit_log.cc" "src/server/CMakeFiles/xmlsec_server.dir/audit_log.cc.o" "gcc" "src/server/CMakeFiles/xmlsec_server.dir/audit_log.cc.o.d"
  "/root/repo/src/server/config_files.cc" "src/server/CMakeFiles/xmlsec_server.dir/config_files.cc.o" "gcc" "src/server/CMakeFiles/xmlsec_server.dir/config_files.cc.o.d"
  "/root/repo/src/server/document_server.cc" "src/server/CMakeFiles/xmlsec_server.dir/document_server.cc.o" "gcc" "src/server/CMakeFiles/xmlsec_server.dir/document_server.cc.o.d"
  "/root/repo/src/server/http.cc" "src/server/CMakeFiles/xmlsec_server.dir/http.cc.o" "gcc" "src/server/CMakeFiles/xmlsec_server.dir/http.cc.o.d"
  "/root/repo/src/server/repository.cc" "src/server/CMakeFiles/xmlsec_server.dir/repository.cc.o" "gcc" "src/server/CMakeFiles/xmlsec_server.dir/repository.cc.o.d"
  "/root/repo/src/server/sha256.cc" "src/server/CMakeFiles/xmlsec_server.dir/sha256.cc.o" "gcc" "src/server/CMakeFiles/xmlsec_server.dir/sha256.cc.o.d"
  "/root/repo/src/server/tcp_listener.cc" "src/server/CMakeFiles/xmlsec_server.dir/tcp_listener.cc.o" "gcc" "src/server/CMakeFiles/xmlsec_server.dir/tcp_listener.cc.o.d"
  "/root/repo/src/server/user_directory.cc" "src/server/CMakeFiles/xmlsec_server.dir/user_directory.cc.o" "gcc" "src/server/CMakeFiles/xmlsec_server.dir/user_directory.cc.o.d"
  "/root/repo/src/server/view_cache.cc" "src/server/CMakeFiles/xmlsec_server.dir/view_cache.cc.o" "gcc" "src/server/CMakeFiles/xmlsec_server.dir/view_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/authz/CMakeFiles/xmlsec_authz.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/xmlsec_schema_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xmlsec_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlsec_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xmlsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
