file(REMOVE_RECURSE
  "CMakeFiles/xmlsec_workload.dir/authgen.cc.o"
  "CMakeFiles/xmlsec_workload.dir/authgen.cc.o.d"
  "CMakeFiles/xmlsec_workload.dir/docgen.cc.o"
  "CMakeFiles/xmlsec_workload.dir/docgen.cc.o.d"
  "libxmlsec_workload.a"
  "libxmlsec_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlsec_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
