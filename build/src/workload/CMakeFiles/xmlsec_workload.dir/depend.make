# Empty dependencies file for xmlsec_workload.
# This may be replaced when dependencies are built.
