file(REMOVE_RECURSE
  "libxmlsec_workload.a"
)
