# Empty compiler generated dependencies file for xmlsec_xml.
# This may be replaced when dependencies are built.
