
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/canonical.cc" "src/xml/CMakeFiles/xmlsec_xml.dir/canonical.cc.o" "gcc" "src/xml/CMakeFiles/xmlsec_xml.dir/canonical.cc.o.d"
  "/root/repo/src/xml/content_model.cc" "src/xml/CMakeFiles/xmlsec_xml.dir/content_model.cc.o" "gcc" "src/xml/CMakeFiles/xmlsec_xml.dir/content_model.cc.o.d"
  "/root/repo/src/xml/dom.cc" "src/xml/CMakeFiles/xmlsec_xml.dir/dom.cc.o" "gcc" "src/xml/CMakeFiles/xmlsec_xml.dir/dom.cc.o.d"
  "/root/repo/src/xml/dtd.cc" "src/xml/CMakeFiles/xmlsec_xml.dir/dtd.cc.o" "gcc" "src/xml/CMakeFiles/xmlsec_xml.dir/dtd.cc.o.d"
  "/root/repo/src/xml/dtd_parser.cc" "src/xml/CMakeFiles/xmlsec_xml.dir/dtd_parser.cc.o" "gcc" "src/xml/CMakeFiles/xmlsec_xml.dir/dtd_parser.cc.o.d"
  "/root/repo/src/xml/dtd_tree.cc" "src/xml/CMakeFiles/xmlsec_xml.dir/dtd_tree.cc.o" "gcc" "src/xml/CMakeFiles/xmlsec_xml.dir/dtd_tree.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/xml/CMakeFiles/xmlsec_xml.dir/parser.cc.o" "gcc" "src/xml/CMakeFiles/xmlsec_xml.dir/parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/xml/CMakeFiles/xmlsec_xml.dir/serializer.cc.o" "gcc" "src/xml/CMakeFiles/xmlsec_xml.dir/serializer.cc.o.d"
  "/root/repo/src/xml/validator.cc" "src/xml/CMakeFiles/xmlsec_xml.dir/validator.cc.o" "gcc" "src/xml/CMakeFiles/xmlsec_xml.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xmlsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
