file(REMOVE_RECURSE
  "CMakeFiles/xmlsec_xml.dir/canonical.cc.o"
  "CMakeFiles/xmlsec_xml.dir/canonical.cc.o.d"
  "CMakeFiles/xmlsec_xml.dir/content_model.cc.o"
  "CMakeFiles/xmlsec_xml.dir/content_model.cc.o.d"
  "CMakeFiles/xmlsec_xml.dir/dom.cc.o"
  "CMakeFiles/xmlsec_xml.dir/dom.cc.o.d"
  "CMakeFiles/xmlsec_xml.dir/dtd.cc.o"
  "CMakeFiles/xmlsec_xml.dir/dtd.cc.o.d"
  "CMakeFiles/xmlsec_xml.dir/dtd_parser.cc.o"
  "CMakeFiles/xmlsec_xml.dir/dtd_parser.cc.o.d"
  "CMakeFiles/xmlsec_xml.dir/dtd_tree.cc.o"
  "CMakeFiles/xmlsec_xml.dir/dtd_tree.cc.o.d"
  "CMakeFiles/xmlsec_xml.dir/parser.cc.o"
  "CMakeFiles/xmlsec_xml.dir/parser.cc.o.d"
  "CMakeFiles/xmlsec_xml.dir/serializer.cc.o"
  "CMakeFiles/xmlsec_xml.dir/serializer.cc.o.d"
  "CMakeFiles/xmlsec_xml.dir/validator.cc.o"
  "CMakeFiles/xmlsec_xml.dir/validator.cc.o.d"
  "libxmlsec_xml.a"
  "libxmlsec_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlsec_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
