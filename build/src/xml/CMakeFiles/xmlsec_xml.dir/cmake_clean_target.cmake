file(REMOVE_RECURSE
  "libxmlsec_xml.a"
)
