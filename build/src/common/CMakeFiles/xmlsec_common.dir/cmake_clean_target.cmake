file(REMOVE_RECURSE
  "libxmlsec_common.a"
)
