file(REMOVE_RECURSE
  "CMakeFiles/xmlsec_common.dir/failpoint.cc.o"
  "CMakeFiles/xmlsec_common.dir/failpoint.cc.o.d"
  "CMakeFiles/xmlsec_common.dir/status.cc.o"
  "CMakeFiles/xmlsec_common.dir/status.cc.o.d"
  "CMakeFiles/xmlsec_common.dir/str_util.cc.o"
  "CMakeFiles/xmlsec_common.dir/str_util.cc.o.d"
  "libxmlsec_common.a"
  "libxmlsec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlsec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
