# Empty dependencies file for xmlsec_common.
# This may be replaced when dependencies are built.
