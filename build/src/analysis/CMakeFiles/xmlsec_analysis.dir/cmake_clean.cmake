file(REMOVE_RECURSE
  "CMakeFiles/xmlsec_analysis.dir/analyzer.cc.o"
  "CMakeFiles/xmlsec_analysis.dir/analyzer.cc.o.d"
  "libxmlsec_analysis.a"
  "libxmlsec_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlsec_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
