file(REMOVE_RECURSE
  "libxmlsec_analysis.a"
)
