# Empty dependencies file for xmlsec_analysis.
# This may be replaced when dependencies are built.
