
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyzer.cc" "src/analysis/CMakeFiles/xmlsec_analysis.dir/analyzer.cc.o" "gcc" "src/analysis/CMakeFiles/xmlsec_analysis.dir/analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/authz/CMakeFiles/xmlsec_authz.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/xmlsec_schema_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xmlsec_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlsec_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xmlsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
