file(REMOVE_RECURSE
  "CMakeFiles/xmlsec_schema_paths.dir/schema_paths.cc.o"
  "CMakeFiles/xmlsec_schema_paths.dir/schema_paths.cc.o.d"
  "libxmlsec_schema_paths.a"
  "libxmlsec_schema_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlsec_schema_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
