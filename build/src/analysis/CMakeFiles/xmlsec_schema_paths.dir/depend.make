# Empty dependencies file for xmlsec_schema_paths.
# This may be replaced when dependencies are built.
