file(REMOVE_RECURSE
  "libxmlsec_schema_paths.a"
)
