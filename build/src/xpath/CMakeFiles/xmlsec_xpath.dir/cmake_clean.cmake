file(REMOVE_RECURSE
  "CMakeFiles/xmlsec_xpath.dir/ast.cc.o"
  "CMakeFiles/xmlsec_xpath.dir/ast.cc.o.d"
  "CMakeFiles/xmlsec_xpath.dir/evaluator.cc.o"
  "CMakeFiles/xmlsec_xpath.dir/evaluator.cc.o.d"
  "CMakeFiles/xmlsec_xpath.dir/lexer.cc.o"
  "CMakeFiles/xmlsec_xpath.dir/lexer.cc.o.d"
  "CMakeFiles/xmlsec_xpath.dir/parser.cc.o"
  "CMakeFiles/xmlsec_xpath.dir/parser.cc.o.d"
  "CMakeFiles/xmlsec_xpath.dir/value.cc.o"
  "CMakeFiles/xmlsec_xpath.dir/value.cc.o.d"
  "libxmlsec_xpath.a"
  "libxmlsec_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlsec_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
