
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xpath/ast.cc" "src/xpath/CMakeFiles/xmlsec_xpath.dir/ast.cc.o" "gcc" "src/xpath/CMakeFiles/xmlsec_xpath.dir/ast.cc.o.d"
  "/root/repo/src/xpath/evaluator.cc" "src/xpath/CMakeFiles/xmlsec_xpath.dir/evaluator.cc.o" "gcc" "src/xpath/CMakeFiles/xmlsec_xpath.dir/evaluator.cc.o.d"
  "/root/repo/src/xpath/lexer.cc" "src/xpath/CMakeFiles/xmlsec_xpath.dir/lexer.cc.o" "gcc" "src/xpath/CMakeFiles/xmlsec_xpath.dir/lexer.cc.o.d"
  "/root/repo/src/xpath/parser.cc" "src/xpath/CMakeFiles/xmlsec_xpath.dir/parser.cc.o" "gcc" "src/xpath/CMakeFiles/xmlsec_xpath.dir/parser.cc.o.d"
  "/root/repo/src/xpath/value.cc" "src/xpath/CMakeFiles/xmlsec_xpath.dir/value.cc.o" "gcc" "src/xpath/CMakeFiles/xmlsec_xpath.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/xmlsec_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xmlsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
