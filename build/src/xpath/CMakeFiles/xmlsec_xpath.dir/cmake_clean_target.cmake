file(REMOVE_RECURSE
  "libxmlsec_xpath.a"
)
