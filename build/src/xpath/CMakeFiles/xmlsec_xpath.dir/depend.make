# Empty dependencies file for xmlsec_xpath.
# This may be replaced when dependencies are built.
