# Empty dependencies file for xmlsec_authz.
# This may be replaced when dependencies are built.
