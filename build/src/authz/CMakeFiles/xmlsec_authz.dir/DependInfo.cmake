
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authz/authorization.cc" "src/authz/CMakeFiles/xmlsec_authz.dir/authorization.cc.o" "gcc" "src/authz/CMakeFiles/xmlsec_authz.dir/authorization.cc.o.d"
  "/root/repo/src/authz/explain.cc" "src/authz/CMakeFiles/xmlsec_authz.dir/explain.cc.o" "gcc" "src/authz/CMakeFiles/xmlsec_authz.dir/explain.cc.o.d"
  "/root/repo/src/authz/labeling.cc" "src/authz/CMakeFiles/xmlsec_authz.dir/labeling.cc.o" "gcc" "src/authz/CMakeFiles/xmlsec_authz.dir/labeling.cc.o.d"
  "/root/repo/src/authz/lint.cc" "src/authz/CMakeFiles/xmlsec_authz.dir/lint.cc.o" "gcc" "src/authz/CMakeFiles/xmlsec_authz.dir/lint.cc.o.d"
  "/root/repo/src/authz/loosening.cc" "src/authz/CMakeFiles/xmlsec_authz.dir/loosening.cc.o" "gcc" "src/authz/CMakeFiles/xmlsec_authz.dir/loosening.cc.o.d"
  "/root/repo/src/authz/policy.cc" "src/authz/CMakeFiles/xmlsec_authz.dir/policy.cc.o" "gcc" "src/authz/CMakeFiles/xmlsec_authz.dir/policy.cc.o.d"
  "/root/repo/src/authz/processor.cc" "src/authz/CMakeFiles/xmlsec_authz.dir/processor.cc.o" "gcc" "src/authz/CMakeFiles/xmlsec_authz.dir/processor.cc.o.d"
  "/root/repo/src/authz/prune.cc" "src/authz/CMakeFiles/xmlsec_authz.dir/prune.cc.o" "gcc" "src/authz/CMakeFiles/xmlsec_authz.dir/prune.cc.o.d"
  "/root/repo/src/authz/subject.cc" "src/authz/CMakeFiles/xmlsec_authz.dir/subject.cc.o" "gcc" "src/authz/CMakeFiles/xmlsec_authz.dir/subject.cc.o.d"
  "/root/repo/src/authz/update.cc" "src/authz/CMakeFiles/xmlsec_authz.dir/update.cc.o" "gcc" "src/authz/CMakeFiles/xmlsec_authz.dir/update.cc.o.d"
  "/root/repo/src/authz/xacl.cc" "src/authz/CMakeFiles/xmlsec_authz.dir/xacl.cc.o" "gcc" "src/authz/CMakeFiles/xmlsec_authz.dir/xacl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xpath/CMakeFiles/xmlsec_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlsec_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/xmlsec_schema_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xmlsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
