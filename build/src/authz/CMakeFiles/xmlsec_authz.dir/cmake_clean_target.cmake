file(REMOVE_RECURSE
  "libxmlsec_authz.a"
)
