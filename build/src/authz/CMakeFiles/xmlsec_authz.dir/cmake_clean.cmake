file(REMOVE_RECURSE
  "CMakeFiles/xmlsec_authz.dir/authorization.cc.o"
  "CMakeFiles/xmlsec_authz.dir/authorization.cc.o.d"
  "CMakeFiles/xmlsec_authz.dir/explain.cc.o"
  "CMakeFiles/xmlsec_authz.dir/explain.cc.o.d"
  "CMakeFiles/xmlsec_authz.dir/labeling.cc.o"
  "CMakeFiles/xmlsec_authz.dir/labeling.cc.o.d"
  "CMakeFiles/xmlsec_authz.dir/lint.cc.o"
  "CMakeFiles/xmlsec_authz.dir/lint.cc.o.d"
  "CMakeFiles/xmlsec_authz.dir/loosening.cc.o"
  "CMakeFiles/xmlsec_authz.dir/loosening.cc.o.d"
  "CMakeFiles/xmlsec_authz.dir/policy.cc.o"
  "CMakeFiles/xmlsec_authz.dir/policy.cc.o.d"
  "CMakeFiles/xmlsec_authz.dir/processor.cc.o"
  "CMakeFiles/xmlsec_authz.dir/processor.cc.o.d"
  "CMakeFiles/xmlsec_authz.dir/prune.cc.o"
  "CMakeFiles/xmlsec_authz.dir/prune.cc.o.d"
  "CMakeFiles/xmlsec_authz.dir/subject.cc.o"
  "CMakeFiles/xmlsec_authz.dir/subject.cc.o.d"
  "CMakeFiles/xmlsec_authz.dir/update.cc.o"
  "CMakeFiles/xmlsec_authz.dir/update.cc.o.d"
  "CMakeFiles/xmlsec_authz.dir/xacl.cc.o"
  "CMakeFiles/xmlsec_authz.dir/xacl.cc.o.d"
  "libxmlsec_authz.a"
  "libxmlsec_authz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlsec_authz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
