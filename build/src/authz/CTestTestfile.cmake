# CMake generated Testfile for 
# Source directory: /root/repo/src/authz
# Build directory: /root/repo/build/src/authz
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
