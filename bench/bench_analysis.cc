// Static policy analyzer cost vs policy size.  The analyzer runs
// offline (policy-authoring time), so the interesting question is how
// the shadowing pass (quadratic candidate pairs, each a product-automaton
// walk) and the coverage table (points x subjects x CoversAllInstances)
// scale with the number of authorizations — all without touching any
// document instance.

#include <benchmark/benchmark.h>

#include "analysis/analyzer.h"
#include "analysis/schema_paths.h"
#include "workload/authgen.h"
#include "workload/docgen.h"
#include "xml/dtd_parser.h"

namespace xmlsec {
namespace {

using analysis::AnalyzerOptions;
using analysis::CoverMode;
using analysis::PathAnalyzer;
using analysis::PathQuery;
using analysis::SchemaGraph;
using workload::AuthGenConfig;
using workload::GeneratedWorkload;

struct Setup {
  std::unique_ptr<xml::Document> doc;
  GeneratedWorkload workload;
};

Setup MakeSetup(int auth_count) {
  Setup setup;
  workload::DocGenConfig doc_config;
  doc_config.depth = 4;
  doc_config.fanout = 4;
  doc_config.seed = 19;
  setup.doc = workload::GenerateDocument(doc_config);
  AuthGenConfig auth_config;
  auth_config.count = auth_count;
  auth_config.seed = 83;
  setup.workload = workload::GenerateAuthorizations(*setup.doc, "d.xml",
                                                    "s.dtd", auth_config);
  return setup;
}

/// Full analysis (findings + coverage) over N generated authorizations.
void BM_AnalyzePolicy(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<int>(state.range(0)));
  const xml::Dtd* dtd = setup.doc->dtd();
  size_t findings = 0;
  for (auto _ : state) {
    analysis::PolicyAnalysis analysis = analysis::AnalyzePolicy(
        setup.workload.instance_auths, setup.workload.schema_auths,
        setup.workload.groups, *dtd, AnalyzerOptions{});
    findings = analysis.findings.size();
    benchmark::DoNotOptimize(analysis);
  }
  state.counters["findings"] = static_cast<double>(findings);
  state.counters["auths"] = static_cast<double>(
      setup.workload.instance_auths.size() +
      setup.workload.schema_auths.size());
}
BENCHMARK(BM_AnalyzePolicy)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

/// Findings only: how much of the full run the coverage table costs.
void BM_AnalyzePolicyNoCoverage(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<int>(state.range(0)));
  const xml::Dtd* dtd = setup.doc->dtd();
  AnalyzerOptions options;
  options.coverage = false;
  for (auto _ : state) {
    analysis::PolicyAnalysis analysis = analysis::AnalyzePolicy(
        setup.workload.instance_auths, setup.workload.schema_auths,
        setup.workload.groups, *dtd, options);
    benchmark::DoNotOptimize(analysis);
  }
}
BENCHMARK(BM_AnalyzePolicyNoCoverage)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

/// Micro: one abstract path evaluation over the paper's laboratory DTD.
void BM_PathAnalyze(benchmark::State& state) {
  auto dtd = xml::ParseDtd(workload::LaboratoryDtd());
  SchemaGraph graph = SchemaGraph::Build(**dtd);
  PathAnalyzer analyzer(&graph);
  const std::string path = "/laboratory//paper[./@category=\"public\"]";
  for (auto _ : state) {
    analysis::AbstractSelection sel = analyzer.Analyze(path);
    benchmark::DoNotOptimize(sel);
  }
}
BENCHMARK(BM_PathAnalyze);

/// Micro: one containment proof (product-automaton walk).
void BM_PathCovers(benchmark::State& state) {
  auto dtd = xml::ParseDtd(workload::LaboratoryDtd());
  SchemaGraph graph = SchemaGraph::Build(**dtd);
  PathAnalyzer analyzer(&graph);
  PathQuery outer{"//paper", false};
  PathQuery inner{"/laboratory/project/paper", false};
  for (auto _ : state) {
    bool covered = analyzer.Covers(outer, inner, CoverMode::kInfluence);
    benchmark::DoNotOptimize(covered);
  }
}
BENCHMARK(BM_PathCovers);

}  // namespace
}  // namespace xmlsec
