// B10 (extension): cost of write enforcement (authz::UpdateProcessor) —
// each checked operation pays a clone + write-labeling pass, so batches
// amortize the clone but re-label per op.  Compared against applying the
// same mutation with no enforcement.

#include <benchmark/benchmark.h>

#include "authz/update.h"
#include "workload/authgen.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace {

using authz::Authorization;
using authz::AuthType;
using authz::Sign;
using authz::Subject;
using authz::UpdateOp;
using authz::UpdateOpKind;
using authz::UpdateProcessor;

struct Setup {
  std::unique_ptr<xml::Document> doc;
  authz::GroupStore groups;
  std::vector<Authorization> auths;
  authz::Requester requester{"clerk", "10.0.0.5", "till.shop.example"};
};

Setup MakeSetup(int64_t nodes) {
  Setup setup;
  setup.doc = workload::GenerateDocument(workload::ConfigForNodeBudget(nodes));
  Authorization grant;
  grant.subject = *Subject::Make("Public", "*", "*");
  grant.object.uri = "d.xml";
  grant.action = authz::Action::kWrite;
  grant.sign = Sign::kPlus;
  grant.type = AuthType::kRecursive;
  setup.auths.push_back(std::move(grant));
  return setup;
}

void BM_CheckedSetAttribute(benchmark::State& state) {
  Setup setup = MakeSetup(state.range(0));
  UpdateProcessor processor(&setup.groups);
  UpdateOp op;
  op.kind = UpdateOpKind::kSetAttribute;
  op.target = "/root/*[1]";
  op.name = "a0";
  op.value = "patched";
  std::vector<UpdateOp> ops = {op};
  for (auto _ : state) {
    auto outcome = processor.Apply(*setup.doc, setup.auths, {},
                                   setup.requester, ops,
                                   /*validate_result=*/false);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["nodes"] = static_cast<double>(setup.doc->node_count());
}
BENCHMARK(BM_CheckedSetAttribute)->Arg(1000)->Arg(10000);

void BM_UncheckedSetAttribute(benchmark::State& state) {
  Setup setup = MakeSetup(state.range(0));
  for (auto _ : state) {
    // The no-enforcement baseline still clones (copy-on-write serving).
    auto clone_node = setup.doc->Clone(true);
    auto* clone = static_cast<xml::Document*>(clone_node.get());
    auto* first = clone->root()->ChildElements().front();
    first->SetAttribute("a0", "patched");
    benchmark::DoNotOptimize(clone);
  }
  state.counters["nodes"] = static_cast<double>(setup.doc->node_count());
}
BENCHMARK(BM_UncheckedSetAttribute)->Arg(1000)->Arg(10000);

void BM_CheckedBatch(benchmark::State& state) {
  Setup setup = MakeSetup(10000);
  UpdateProcessor processor(&setup.groups);
  std::vector<UpdateOp> ops;
  for (int64_t i = 0; i < state.range(0); ++i) {
    UpdateOp op;
    op.kind = UpdateOpKind::kSetAttribute;
    op.target = "/root/*[" + std::to_string(i % 8 + 1) + "]";
    op.name = "a0";
    op.value = "v" + std::to_string(i);
    ops.push_back(std::move(op));
  }
  for (auto _ : state) {
    auto outcome = processor.Apply(*setup.doc, setup.auths, {},
                                   setup.requester, ops,
                                   /*validate_result=*/false);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["ops"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CheckedBatch)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace xmlsec
