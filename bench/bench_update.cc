// B10 (extension): cost of write enforcement (authz::UpdateProcessor) —
// each checked operation pays a clone + write-labeling pass, so batches
// amortize the clone but re-label per op.  Compared against applying the
// same mutation with no enforcement, and — the gated pair — against the
// compiled-automaton incremental path, which on fully decidable
// policies re-labels only the mutated subtrees (see scripts/
// check_bench.sh: BM_UpdateIncremental must beat BM_UpdateFullRelabel
// by the configured floor on the 16k-node fixture).

#include <benchmark/benchmark.h>

#include "analysis/policy_automaton.h"
#include "bench_json.h"
#include "authz/update.h"
#include "workload/authgen.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace {

using authz::Authorization;
using authz::AuthType;
using authz::Sign;
using authz::Subject;
using authz::UpdateOp;
using authz::UpdateOpKind;
using authz::UpdateProcessor;

struct Setup {
  std::unique_ptr<xml::Document> doc;
  authz::GroupStore groups;
  std::vector<Authorization> auths;
  authz::Requester requester{"clerk", "10.0.0.5", "till.shop.example"};
};

Setup MakeSetup(int64_t nodes) {
  Setup setup;
  setup.doc = workload::GenerateDocument(workload::ConfigForNodeBudget(nodes));
  Authorization grant;
  grant.subject = *Subject::Make("Public", "*", "*");
  grant.object.uri = "d.xml";
  grant.action = authz::Action::kWrite;
  grant.sign = Sign::kPlus;
  grant.type = AuthType::kRecursive;
  setup.auths.push_back(std::move(grant));
  return setup;
}

void BM_CheckedSetAttribute(benchmark::State& state) {
  Setup setup = MakeSetup(state.range(0));
  UpdateProcessor processor(&setup.groups);
  UpdateOp op;
  op.kind = UpdateOpKind::kSetAttribute;
  op.target = "/root/*[1]";
  op.name = "a0";
  op.value = "patched";
  std::vector<UpdateOp> ops = {op};
  for (auto _ : state) {
    auto outcome = processor.Apply(*setup.doc, setup.auths, {},
                                   setup.requester, ops,
                                   /*validate_result=*/false);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["nodes"] = static_cast<double>(setup.doc->node_count());
}
BENCHMARK(BM_CheckedSetAttribute)->Arg(1000)->Arg(10000);

void BM_UncheckedSetAttribute(benchmark::State& state) {
  Setup setup = MakeSetup(state.range(0));
  for (auto _ : state) {
    // The no-enforcement baseline still clones (copy-on-write serving).
    auto clone_node = setup.doc->Clone(true);
    auto* clone = static_cast<xml::Document*>(clone_node.get());
    auto* first = clone->root()->ChildElements().front();
    first->SetAttribute("a0", "patched");
    benchmark::DoNotOptimize(clone);
  }
  state.counters["nodes"] = static_cast<double>(setup.doc->node_count());
}
BENCHMARK(BM_UncheckedSetAttribute)->Arg(1000)->Arg(10000);

void BM_CheckedBatch(benchmark::State& state) {
  Setup setup = MakeSetup(10000);
  UpdateProcessor processor(&setup.groups);
  std::vector<UpdateOp> ops;
  for (int64_t i = 0; i < state.range(0); ++i) {
    UpdateOp op;
    op.kind = UpdateOpKind::kSetAttribute;
    op.target = "/root/*[" + std::to_string(i % 8 + 1) + "]";
    op.name = "a0";
    op.value = "v" + std::to_string(i);
    ops.push_back(std::move(op));
  }
  for (auto _ : state) {
    auto outcome = processor.Apply(*setup.doc, setup.auths, {},
                                   setup.requester, ops,
                                   /*validate_result=*/false);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["ops"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_CheckedBatch)->Arg(1)->Arg(8)->Arg(32);

// --- Incremental vs full re-labeling (gated) ----------------------------
//
// The same decidable write policy (simple-path grant + carve-out, no
// value predicates) over the ~16k-node fixture, applying an 8-op batch
// of point mutations.  The full path re-labels the whole document per
// op; the incremental path proves signs outside the mutated subtrees
// unchanged and re-labels only the created regions.

constexpr int64_t kGatedNodes = 16000;
constexpr int kGatedOps = 32;

Setup MakeDecidableSetup() {
  Setup setup = MakeSetup(kGatedNodes);
  // A decidable carve-out so the policy is not a trivial constant map.
  // Level 3 only, so the level-2 batch targets stay writable.
  Authorization deny;
  deny.subject = *Subject::Make("Public", "*", "*");
  deny.object.uri = "d.xml";
  deny.object.path = "//n3x3";
  deny.action = authz::Action::kWrite;
  deny.sign = Sign::kMinus;
  deny.type = AuthType::kRecursive;
  setup.auths.push_back(std::move(deny));
  return setup;
}

// Point-mutation mix: three attribute rewrites to one subtree insert,
// exercising both incremental subpaths (value rewrites keep the label
// map as-is; creations re-label only the inserted block).
std::vector<UpdateOp> GatedBatch() {
  std::vector<UpdateOp> ops;
  for (int i = 0; i < kGatedOps; ++i) {
    UpdateOp op;
    if (i % 4 == 3) {
      op.kind = UpdateOpKind::kInsertChild;
      op.target = "/root/*[" + std::to_string(i % 4 + 1) + "]";
      op.fragment = "<n2x0/>";
    } else {
      op.kind = UpdateOpKind::kSetAttribute;
      op.target = "/root/*[" + std::to_string(i % 4 + 1) + "]/*[" +
                  std::to_string(i / 4 + 1) + "]";
      op.name = "a0";
      op.value = "v" + std::to_string(i);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void BM_UpdateFullRelabel(benchmark::State& state) {
  Setup setup = MakeDecidableSetup();
  UpdateProcessor processor(&setup.groups);
  std::vector<UpdateOp> ops = GatedBatch();
  int64_t full_relabels = 0;
  for (auto _ : state) {
    auto outcome = processor.Apply(*setup.doc, setup.auths, {},
                                   setup.requester, ops,
                                   /*validate_result=*/false);
    if (!outcome.ok()) state.SkipWithError(outcome.status().ToString().c_str());
    full_relabels = outcome.ok() ? outcome->full_relabels : 0;
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["nodes"] = static_cast<double>(setup.doc->node_count());
  state.counters["full_relabels"] = static_cast<double>(full_relabels);
}
BENCHMARK(BM_UpdateFullRelabel);

void BM_UpdateIncremental(benchmark::State& state) {
  Setup setup = MakeDecidableSetup();
  auto compiled = analysis::PolicyAutomaton::Compile(*setup.doc->dtd(),
                                                     setup.auths, {});
  if (!compiled.ok() || !(*compiled)->fully_decidable()) {
    state.SkipWithError("gated policy failed to compile fully decidable");
    return;
  }
  UpdateProcessor processor(&setup.groups);
  std::vector<UpdateOp> ops = GatedBatch();
  int64_t incremental_relabels = 0;
  for (auto _ : state) {
    auto outcome = processor.Apply(*setup.doc, setup.auths, {},
                                   setup.requester, ops,
                                   /*validate_result=*/false,
                                   compiled->get());
    if (!outcome.ok()) state.SkipWithError(outcome.status().ToString().c_str());
    incremental_relabels = outcome.ok() ? outcome->incremental_relabels : 0;
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["nodes"] = static_cast<double>(setup.doc->node_count());
  state.counters["incremental_relabels"] =
      static_cast<double>(incremental_relabels);
}
BENCHMARK(BM_UpdateIncremental);

}  // namespace
}  // namespace xmlsec

int main(int argc, char** argv) {
  return xmlsec::bench::RunWithJson(argc, argv, "BENCH_update.json");
}
