// B8 (DESIGN.md): end-to-end request throughput of the secure document
// server (paper §7 usage scenario): HTTP parse + Basic-auth decode +
// password check + repository lookup + compute-view + unparse.  Compares
// against serving the same document with no enforcement to quantify the
// security processor's overhead.

// This binary has its own main (see bench/CMakeLists.txt OWN_MAIN):
// results are also written to BENCH_server.json for trend tracking.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "obs/metrics.h"
#include "server/audit_log.h"
#include "server/audit_wal.h"
#include "server/document_server.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/tcp_listener.h"
#include "server/user_directory.h"
#include "workload/authgen.h"
#include "workload/docgen.h"
#include "xml/serializer.h"

namespace xmlsec {
namespace server {
namespace {

struct ServerFixture {
  explicit ServerFixture(int projects, bool decidable_policy = false) {
    auto doc = workload::GenerateLaboratory(projects, 5, 71);
    xml::SerializeOptions options;
    plain_body = xml::SerializeDocument(*doc, options);
    Status s = repo.AddDtd("laboratory.xml", workload::LaboratoryDtd());
    s = repo.AddDocument("CSlab.xml", plain_body, "laboratory.xml");
    s = users.CreateUser("tom", "secret");
    s = groups.AddMembership("tom", "Foreign");
    // The default policy carries a value-dependent (residual) denial;
    // the decidable variant keeps every authorization resolvable by
    // automaton table lookup, so neither path pays per-request XPath
    // labeling.
    s = repo.AddXacl(decidable_policy ? R"(<xacl>
      <authorization subject="Public" object="CSlab.xml" path="/laboratory"
                     sign="+" type="RW"/>
      <authorization subject="Public" object="laboratory.xml"
                     path='//fund' sign="-" type="R"/>
    </xacl>)"
                                      : R"(<xacl>
      <authorization subject="Public" object="CSlab.xml" path="/laboratory"
                     sign="+" type="RW"/>
      <authorization subject="Foreign" object="laboratory.xml"
                     path='//paper[./@category="private"]' sign="-" type="R"/>
      <authorization subject="Public" object="laboratory.xml"
                     path='//fund' sign="-" type="R"/>
    </xacl>)");
    benchmark::DoNotOptimize(s);
    raw_request = "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
                  Base64Encode("tom:secret") + "\r\n\r\n";
  }

  Repository repo;
  UserDirectory users;
  authz::GroupStore groups;
  std::string plain_body;
  std::string raw_request;
};

ServerFixture& Fixture() {
  static ServerFixture* fixture = new ServerFixture(100);
  return *fixture;
}

void BM_FullHttpRequest(benchmark::State& state) {
  ServerFixture& f = Fixture();
  SecureDocumentServer server(&f.repo, &f.users, &f.groups);
  for (auto _ : state) {
    std::string response =
        server.HandleHttp(f.raw_request, "130.100.50.8", "infosys.bld1.it");
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_FullHttpRequest);

/// Ablation: same request stream with the render cache enabled — after
/// the first miss every request is a memoized string copy.
void BM_FullHttpRequest_Cached(benchmark::State& state) {
  ServerFixture& f = Fixture();
  obs::MetricsRegistry registry;  // bench-local: isolates the counters
  ServerConfig config;
  config.view_cache_capacity = 64;
  config.metrics = &registry;
  SecureDocumentServer server(&f.repo, &f.users, &f.groups, config);
  for (auto _ : state) {
    std::string response =
        server.HandleHttp(f.raw_request, "130.100.50.8", "infosys.bld1.it");
    benchmark::DoNotOptimize(response);
  }
  // Hit rate read back from the observability registry — the same
  // numbers `GET /metrics` would expose.
  const double hits = registry.ValueOf("xmlsec_view_cache_hits_total");
  const double misses = registry.ValueOf("xmlsec_view_cache_misses_total");
  state.counters["hit_rate"] =
      hits + misses > 0 ? hits / (hits + misses) : 0.0;
}
BENCHMARK(BM_FullHttpRequest_Cached);

void BM_ViewComputationOnly(benchmark::State& state) {
  ServerFixture& f = Fixture();
  SecureDocumentServer server(&f.repo, &f.users, &f.groups);
  authz::Requester rq{"tom", "130.100.50.8", "infosys.bld1.it"};
  for (auto _ : state) {
    auto view = server.ComputeView(rq, "CSlab.xml");
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_ViewComputationOnly);

/// Baseline: what serving the document WITHOUT enforcement would cost
/// (serialize the stored DOM).
void BM_ServeUnprotectedBaseline(benchmark::State& state) {
  ServerFixture& f = Fixture();
  const xml::Document* doc = f.repo.FindDocument("CSlab.xml");
  for (auto _ : state) {
    std::string body = xml::SerializeDocument(*doc);
    std::string response = BuildHttpResponse(200, "OK", "text/xml", body);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeUnprotectedBaseline);

void BM_Authentication(benchmark::State& state) {
  ServerFixture& f = Fixture();
  for (auto _ : state) {
    Status s = f.users.Authenticate("tom", "secret");
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Authentication);

/// Large fixture for the query-path comparison: ~16k nodes, all tags
/// within the compiled schema, so the rewriter never falls back.
ServerFixture& QueryFixture() {
  static ServerFixture* fixture =
      new ServerFixture(1000, /*decidable_policy=*/true);
  return *fixture;
}

/// The gated pair below answers a *selective* query — the case query
/// rewriting exists for: the materialized path clones, labels, prunes,
/// and loosens all ~16k nodes to answer a question that touches a few
/// dozen, while the rewriter resolves visibility only along the steps
/// the query walks.  The positional predicates also exercise
/// guard-first ordering (positions count visible siblings).
constexpr const char kSelectiveQuery[] =
    "/laboratory/project[17]/paper[2]/title";
/// The scan pair is informational: a descendant scan visits every node
/// on both paths, so the rewrite win shrinks to the avoided
/// materialization alone.
constexpr const char kScanQuery[] = "//paper[@category=\"public\"]/title";

ServerRequest QueryRequest(const char* query) {
  ServerRequest request;
  request.user = "tom";
  request.password = "secret";
  request.ip = "130.100.50.8";
  request.sym = "infosys.bld1.it";
  request.uri = "CSlab.xml";
  request.query = query;
  return request;
}

void RunQueryOverView(benchmark::State& state, const char* query) {
  ServerFixture& f = QueryFixture();
  SecureDocumentServer server(&f.repo, &f.users, &f.groups);
  ServerRequest request = QueryRequest(query);
  for (auto _ : state) {
    ServerResponse response = server.Handle(request);
    benchmark::DoNotOptimize(response);
  }
}

/// Same request through the query rewriter: guards + lazy visibility
/// oracle over the original DOM, no view materialized.  Must actually
/// serve through the rewriter — a silent per-request fallback would
/// quietly benchmark the materialized path against itself.
void RunQueryRewrite(benchmark::State& state, const char* query) {
  ServerFixture& f = QueryFixture();
  obs::MetricsRegistry registry;  // bench-local: isolates the counters
  ServerConfig config;
  config.query_path = QueryPathMode::kRewrite;
  config.metrics = &registry;
  SecureDocumentServer server(&f.repo, &f.users, &f.groups, config);
  ServerRequest request = QueryRequest(query);
  for (auto _ : state) {
    ServerResponse response = server.Handle(request);
    benchmark::DoNotOptimize(response);
  }
#ifndef XMLSEC_METRICS_NOOP
  const double served = registry.ValueOf("xmlsec_rewrite_served_total");
  if (served < static_cast<double>(state.iterations())) {
    state.SkipWithError("rewrite path fell back to materialization");
  }
  state.counters["rewrite_served"] = served;
#endif
}

/// Gated (scripts/check_bench.sh): BM_QueryRewrite must beat
/// BM_QueryOverView by the rewrite ratio floor (default 3x).
void BM_QueryOverView(benchmark::State& state) {
  RunQueryOverView(state, kSelectiveQuery);
}
BENCHMARK(BM_QueryOverView);

void BM_QueryRewrite(benchmark::State& state) {
  RunQueryRewrite(state, kSelectiveQuery);
}
BENCHMARK(BM_QueryRewrite);

void BM_QueryScanOverView(benchmark::State& state) {
  RunQueryOverView(state, kScanQuery);
}
BENCHMARK(BM_QueryScanOverView);

void BM_QueryScanRewrite(benchmark::State& state) {
  RunQueryRewrite(state, kScanQuery);
}
BENCHMARK(BM_QueryScanRewrite);

/// Throughput vs document size (number of projects).
void BM_RequestByDocumentSize(benchmark::State& state) {
  ServerFixture fixture(static_cast<int>(state.range(0)));
  SecureDocumentServer server(&fixture.repo, &fixture.users,
                              &fixture.groups);
  for (auto _ : state) {
    std::string response = server.HandleHttp(fixture.raw_request,
                                             "130.100.50.8",
                                             "infosys.bld1.it");
    benchmark::DoNotOptimize(response);
  }
  state.counters["projects"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RequestByDocumentSize)->Arg(10)->Arg(100)->Arg(1000);

/// Concurrent load over the real TCP path on the 16k-node fixture.
/// Arg = event loops (0 = the legacy 4-worker blocking pool, kept as an
/// informational comparison point).  The view cache is DISABLED so every
/// request pays the full CPU-bound view computation — that is the
/// scaling story: requests execute inline on loop threads, so N loops
/// should saturate N cores.  8 closed-loop client threads keep every
/// loop busy.  Gated (scripts/check_bench.sh): on hosts with >= 4 cores
/// the 4-loop items/s must be >= 2.5x the 1-loop items/s.
void BM_TcpConcurrentLoad(benchmark::State& state) {
  ServerFixture& f = QueryFixture();
  ServerConfig config;
  config.view_cache_capacity = 0;  // every request recomputes the view
  SecureDocumentServer server(&f.repo, &f.users, &f.groups, config);
  ListenerConfig listener_config;
  const int loops = static_cast<int>(state.range(0));
  listener_config.event_loops = loops;
  listener_config.worker_threads = 4;  // used only by the Arg(0) pool
  listener_config.accept_queue_limit = 256;
  TcpHttpListener listener(&server, "bench.example", listener_config);
  if (!listener.Start(0).ok()) {
    state.SkipWithError("listener failed to start");
    return;
  }
  constexpr int kClientThreads = 8;
  constexpr int kRequestsPerThread = 4;
  int64_t completed = 0;
  for (auto _ : state) {
    std::atomic<int64_t> round_ok{0};
    std::vector<std::thread> clients;
    clients.reserve(kClientThreads);
    for (int c = 0; c < kClientThreads; ++c) {
      clients.emplace_back([&] {
        for (int r = 0; r < kRequestsPerThread; ++r) {
          auto response = FetchHttp(listener.port(), f.raw_request);
          if (response.ok() &&
              response->find("200 OK") != std::string::npos) {
            round_ok.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    completed += round_ok.load();
  }
  listener.Stop();
  state.SetItemsProcessed(completed);
  state.counters["loops"] = static_cast<double>(loops);
  state.counters["shed"] = static_cast<double>(listener.requests_shed());
}
BENCHMARK(BM_TcpConcurrentLoad)->Arg(0)->Arg(1)->Arg(4)->UseRealTime();

/// The durable-audit tax.  Same concurrent TCP load with the WAL
/// attached and its background group-commit fsync writer running:
///
///  * Arg = 0 (`enqueue` ack): the request hot path only enqueues; the
///    writer fsyncs behind it.  The audit tax should be noise here.
///  * Arg = 1 (`fsync` ack): every 200 response additionally waits for
///    its group commit — and in event-loop mode that wait happens
///    INLINE on the loop thread (a documented allowance, see DESIGN.md
///    "Threading model").  Informational: with 4 closed-loop clients
///    the commit group is small, so each response eats a large
///    fraction of a raw fsync (~100us on CI disks) — a
///    durability/latency tradeoff the operator opts into, not a
///    regression.
///
/// Runs under 4 event loops — the production configuration the WAL
/// guarantees must hold under.
void BM_TcpConcurrentLoadWal(benchmark::State& state) {
  ServerFixture& f = Fixture();
  std::string wal_path =
      "/tmp/bench_audit_wal_" + std::to_string(::getpid()) + ".log";
  std::remove(wal_path.c_str());
  AuditWal wal;
  if (!wal.Open(wal_path, {}, nullptr).ok()) {
    state.SkipWithError("WAL failed to open");
    return;
  }
  AuditLog audit;
  audit.AttachWal(&wal);
  ServerConfig config;
  config.view_cache_capacity = 64;
  config.audit_durability = state.range(0) == 1 ? AuditDurability::kFsync
                                                : AuditDurability::kEnqueue;
  SecureDocumentServer server(&f.repo, &f.users, &f.groups, config);
  server.set_audit_log(&audit);
  ListenerConfig listener_config;
  listener_config.event_loops = 4;
  listener_config.accept_queue_limit = 256;
  TcpHttpListener listener(&server, "bench.example", listener_config);
  if (!listener.Start(0).ok()) {
    state.SkipWithError("listener failed to start");
    return;
  }
  constexpr int kClientThreads = 4;
  constexpr int kRequestsPerThread = 8;
  int64_t completed = 0;
  for (auto _ : state) {
    std::atomic<int64_t> round_ok{0};
    std::vector<std::thread> clients;
    clients.reserve(kClientThreads);
    for (int c = 0; c < kClientThreads; ++c) {
      clients.emplace_back([&] {
        for (int r = 0; r < kRequestsPerThread; ++r) {
          auto response = FetchHttp(listener.port(), f.raw_request);
          if (response.ok() &&
              response->find("200 OK") != std::string::npos) {
            round_ok.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    completed += round_ok.load();
  }
  listener.Stop();
  audit.DetachWal();
  wal.Close();
  std::remove(wal_path.c_str());
  state.SetItemsProcessed(completed);
  state.counters["fsync_ack"] = static_cast<double>(state.range(0));
  state.counters["fsyncs"] = static_cast<double>(wal.fsyncs());
}
BENCHMARK(BM_TcpConcurrentLoadWal)->Arg(0)->Arg(1)->UseRealTime();

/// The instrumentation hot path itself: one counter increment plus one
/// histogram observation (what a single pipeline stage costs the
/// serving path).  Arg = concurrent threads; the sharded registry must
/// scale near-linearly instead of serialising on one cache line.
/// Under -DXMLSEC_METRICS_NOOP=ON this measures the compiled-out stub.
void BM_MetricsHotPath(benchmark::State& state) {
  static obs::MetricsRegistry* registry = new obs::MetricsRegistry();
  static obs::Counter* counter =
      registry->GetCounter("bench_hot_counter", "bench");
  static obs::Histogram* histogram = registry->GetHistogram(
      "bench_hot_histogram", "bench", obs::DefaultLatencyBoundsNs(), 1e-9);
  int64_t sample = 12'345;
  for (auto _ : state) {
    counter->Inc();
    histogram->Observe(sample);
    benchmark::DoNotOptimize(sample);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHotPath)->Threads(1)->Threads(4)->UseRealTime();

}  // namespace
}  // namespace server
}  // namespace xmlsec

int main(int argc, char** argv) {
  return xmlsec::bench::RunWithJson(argc, argv, "BENCH_server.json");
}
