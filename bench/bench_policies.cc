// B6 (DESIGN.md): ablations over the model's policy knobs (paper §5/§6):
// conflict-resolution policy, open vs closed completeness, and the mix of
// authorization types (local/recursive, weak share, negative share).
// Expected shape: policy choice is almost free (it only changes the slot
// resolution rule); heavy recursive shares are cheaper than many locals
// targeting deep paths because propagation amortizes.

#include <benchmark/benchmark.h>

#include "authz/processor.h"
#include "workload/authgen.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace {

using authz::CompletenessPolicy;
using authz::ConflictPolicy;
using authz::PolicyOptions;
using workload::AuthGenConfig;
using workload::GeneratedWorkload;

struct Setup {
  std::unique_ptr<xml::Document> doc;
  GeneratedWorkload workload;
};

Setup MakeSetup(AuthGenConfig auth_config) {
  Setup setup;
  setup.doc = workload::GenerateDocument(workload::ConfigForNodeBudget(10000));
  auth_config.seed = 61;
  setup.workload = workload::GenerateAuthorizations(*setup.doc, "d.xml",
                                                    "s.dtd", auth_config);
  return setup;
}

void RunView(benchmark::State& state, const Setup& setup,
             PolicyOptions policy) {
  authz::SecurityProcessor processor(&setup.workload.groups, {policy});
  int64_t visible = 0;
  for (auto _ : state) {
    auto view =
        processor.ComputeView(*setup.doc, setup.workload.instance_auths,
                              setup.workload.schema_auths,
                              setup.workload.requester);
    if (!view.ok()) {
      state.SkipWithError(view.status().ToString().c_str());
      return;
    }
    visible = view->empty() ? 0 : view->document->node_count();
    benchmark::DoNotOptimize(view);
  }
  state.counters["visible_nodes"] = static_cast<double>(visible);
  state.counters["total_nodes"] = static_cast<double>(setup.doc->node_count());
}

void BM_ConflictPolicy(benchmark::State& state) {
  AuthGenConfig config;
  config.count = 128;
  config.negative_fraction = 0.5;  // Force real conflicts.
  Setup setup = MakeSetup(config);
  PolicyOptions policy;
  policy.conflict = static_cast<ConflictPolicy>(state.range(0));
  RunView(state, setup, policy);
}
BENCHMARK(BM_ConflictPolicy)
    ->Arg(0)   // denials take precedence
    ->Arg(1)   // permissions take precedence
    ->Arg(2);  // nothing takes precedence

void BM_CompletenessPolicy(benchmark::State& state) {
  AuthGenConfig config;
  config.count = 64;
  Setup setup = MakeSetup(config);
  PolicyOptions policy;
  policy.completeness = static_cast<CompletenessPolicy>(state.range(0));
  RunView(state, setup, policy);
}
BENCHMARK(BM_CompletenessPolicy)->Arg(0)->Arg(1);  // closed / open

void BM_RecursiveShare(benchmark::State& state) {
  AuthGenConfig config;
  config.count = 128;
  config.recursive_fraction = static_cast<double>(state.range(0)) / 100.0;
  Setup setup = MakeSetup(config);
  RunView(state, setup, PolicyOptions{});
  state.counters["recursive_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RecursiveShare)->Arg(0)->Arg(50)->Arg(100);

void BM_WeakShare(benchmark::State& state) {
  AuthGenConfig config;
  config.count = 128;
  config.weak_fraction = static_cast<double>(state.range(0)) / 100.0;
  config.schema_fraction = 0.3;  // Weakness only matters against schema.
  Setup setup = MakeSetup(config);
  RunView(state, setup, PolicyOptions{});
  state.counters["weak_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WeakShare)->Arg(0)->Arg(25)->Arg(75);

void BM_NegativeShare(benchmark::State& state) {
  AuthGenConfig config;
  config.count = 128;
  config.negative_fraction = static_cast<double>(state.range(0)) / 100.0;
  Setup setup = MakeSetup(config);
  RunView(state, setup, PolicyOptions{});
  state.counters["negative_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_NegativeShare)->Arg(0)->Arg(30)->Arg(70)->Arg(100);

}  // namespace
}  // namespace xmlsec
