// B4 (DESIGN.md): XPath evaluation cost by expression class on a ~10k
// node document — the objects of the paper's §4 authorization model.
// Child chains are cheapest; `//` and `ancestor::` traversals pay for
// subtree walks; predicates add per-candidate evaluation.

#include <benchmark/benchmark.h>

#include "workload/docgen.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlsec {
namespace {

std::unique_ptr<xml::Document>& SharedDoc() {
  static auto* doc = new std::unique_ptr<xml::Document>(
      workload::GenerateLaboratory(200, 10, 51));
  return *doc;
}

void RunExpr(benchmark::State& state, const char* text) {
  auto& doc = SharedDoc();
  auto compiled = xpath::CompileXPath(text);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  xpath::Evaluator evaluator;
  size_t selected = 0;
  for (auto _ : state) {
    auto nodes = evaluator.SelectNodes(**compiled, doc->root());
    if (!nodes.ok()) {
      state.SkipWithError(nodes.status().ToString().c_str());
      return;
    }
    selected = nodes->size();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["doc_nodes"] = static_cast<double>(doc->node_count());
}

void BM_CompileOnly(benchmark::State& state) {
  const char* text =
      "/laboratory//paper[./@category=\"private\"]/title";
  for (auto _ : state) {
    auto compiled = xpath::CompileXPath(text);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileOnly);

void BM_ChildChain(benchmark::State& state) {
  RunExpr(state, "/laboratory/project/paper/title");
}
BENCHMARK(BM_ChildChain);

void BM_DescendantAll(benchmark::State& state) { RunExpr(state, "//title"); }
BENCHMARK(BM_DescendantAll);

void BM_DescendantWithPredicate(benchmark::State& state) {
  RunExpr(state, "/laboratory//paper[./@category=\"private\"]");
}
BENCHMARK(BM_DescendantWithPredicate);

void BM_PositionalPredicate(benchmark::State& state) {
  RunExpr(state, "/laboratory/project[42]/paper[1]");
}
BENCHMARK(BM_PositionalPredicate);

void BM_AncestorAxis(benchmark::State& state) {
  RunExpr(state, "//fund/ancestor::project");
}
BENCHMARK(BM_AncestorAxis);

void BM_AttributeScan(benchmark::State& state) {
  RunExpr(state, "//@category");
}
BENCHMARK(BM_AttributeScan);

void BM_UnionOfPaths(benchmark::State& state) {
  RunExpr(state, "//manager | //fund | //paper[@category=\"public\"]");
}
BENCHMARK(BM_UnionOfPaths);

void BM_CountAggregate(benchmark::State& state) {
  auto& doc = SharedDoc();
  auto compiled = xpath::CompileXPath(
      "count(//paper[@category=\"public\"]) > count(//fund)");
  xpath::Evaluator evaluator;
  for (auto _ : state) {
    auto value = evaluator.Evaluate(**compiled, doc->root());
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_CountAggregate);

void BM_TextPredicate(benchmark::State& state) {
  RunExpr(state, "//paper[contains(title, \"7 of prj9\")]");
}
BENCHMARK(BM_TextPredicate);

}  // namespace
}  // namespace xmlsec
