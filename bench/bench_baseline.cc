// B5 (DESIGN.md): the paper's single-pass propagation labeler versus the
// naive declarative baseline that resolves each node independently by
// walking its ancestor chain (no propagation pass).  Both share the
// initial-label step (requester filtering + XPath evaluation), so two
// workloads are measured:
//
//  * "CheapAuths": authorizations whose node-sets cost almost nothing to
//    evaluate — isolates the propagation-vs-walk difference, which grows
//    with tree depth (naive is O(n*depth), propagation O(n)).
//  * "XPathHeavy": a realistic mix with descendant scans and predicates —
//    shows that on shallow documents XPath evaluation dominates either
//    labeler, which is why the paper pushes path evaluation to
//    initial_label (once per authorization, not once per node).
//
// Both labelers produce identical labels (enforced by property tests).

#include <benchmark/benchmark.h>

#include "authz/labeling.h"
#include "workload/authgen.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace {

using authz::Authorization;
using authz::AuthType;
using authz::Sign;
using authz::Subject;
using workload::AuthGenConfig;
using workload::DocGenConfig;
using workload::GeneratedWorkload;

struct Setup {
  std::unique_ptr<xml::Document> doc;
  GeneratedWorkload workload;
};

Setup MakeSetup(int depth, int fanout, bool cheap_paths) {
  Setup setup;
  DocGenConfig config;
  config.depth = depth;
  config.fanout = fanout;
  config.seed = 41;
  setup.doc = workload::GenerateDocument(config);

  if (cheap_paths) {
    // Hand-built authorizations with near-free node-set evaluation: the
    // whole cost is in labeling itself.
    auto make = [](std::string path, Sign sign, AuthType type) {
      Authorization auth;
      auth.subject = *Subject::Make("Public", "*", "*");
      auth.object.uri = "d.xml";
      auth.object.path = std::move(path);
      auth.sign = sign;
      auth.type = type;
      return auth;
    };
    setup.workload.requester = {"u0", "151.100.30.8", "pc1.lab.example.com"};
    setup.workload.instance_auths = {
        make("", Sign::kPlus, AuthType::kRecursive),
        make("/root/*[1]", Sign::kMinus, AuthType::kRecursive),
        make("/root/*[2]", Sign::kPlus, AuthType::kLocal),
        make("/root/*[1]/*[1]", Sign::kPlus, AuthType::kRecursiveWeak),
    };
  } else {
    AuthGenConfig auth_config;
    auth_config.count = 64;
    auth_config.seed = 43;
    setup.workload = workload::GenerateAuthorizations(*setup.doc, "d.xml",
                                                      "s.dtd", auth_config);
  }
  return setup;
}

template <bool kNaive>
void RunLabeler(benchmark::State& state, const Setup& setup) {
  authz::TreeLabeler labeler(&setup.workload.groups, authz::PolicyOptions{});
  for (auto _ : state) {
    if constexpr (kNaive) {
      auto labels = authz::LabelTreeNaive(
          *setup.doc, setup.workload.instance_auths,
          setup.workload.schema_auths, setup.workload.requester,
          setup.workload.groups, authz::PolicyOptions{});
      benchmark::DoNotOptimize(labels);
    } else {
      auto labels = labeler.Label(*setup.doc, setup.workload.instance_auths,
                                  setup.workload.schema_auths,
                                  setup.workload.requester);
      benchmark::DoNotOptimize(labels);
    }
  }
  state.counters["nodes"] = static_cast<double>(setup.doc->node_count());
  state.counters["depth"] = static_cast<double>(state.range(0));
}

void BM_Propagation_CheapAuths(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)), true);
  RunLabeler<false>(state, setup);
}

void BM_Naive_CheapAuths(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)), true);
  RunLabeler<true>(state, setup);
}

// Roughly constant element count (~4-8k), increasing depth.
#define DEPTH_SWEEP ->Args({4, 8})->Args({6, 4})->Args({12, 2})->Args({64, 1})
BENCHMARK(BM_Propagation_CheapAuths) DEPTH_SWEEP;
BENCHMARK(BM_Naive_CheapAuths) DEPTH_SWEEP;

void BM_Propagation_XPathHeavy(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)), false);
  RunLabeler<false>(state, setup);
}

void BM_Naive_XPathHeavy(benchmark::State& state) {
  Setup setup = MakeSetup(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)), false);
  RunLabeler<true>(state, setup);
}

BENCHMARK(BM_Propagation_XPathHeavy)->Args({4, 8})->Args({12, 2});
BENCHMARK(BM_Naive_XPathHeavy)->Args({4, 8})->Args({12, 2});

}  // namespace
}  // namespace xmlsec
