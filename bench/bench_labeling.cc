// B1/B2 (DESIGN.md): cost of the compute-view labeling + prune pass as a
// function of document size and of the number of authorizations — the
// paper's "fast on-line computation of the view" claim (§1, §6).  The
// expected shape is linear in document size and near-flat in the number
// of authorizations beyond the XPath evaluation cost.
//
// B4: XPath labeling vs the schema-compiled policy automaton
// (analysis/policy_automaton.h) on the same fixture — the table-lookup
// path must beat per-request XPath evaluation by a wide margin (the
// check_bench.sh gate enforces a ratio floor), and the one-time compile
// cost is measured separately to show it amortizes.

// This binary has its own main (see bench/CMakeLists.txt OWN_MAIN):
// results are also written to BENCH_labeling.json for trend tracking.

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "analysis/policy_automaton.h"
#include "authz/labeling.h"
#include "authz/prune.h"
#include "workload/authgen.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace {

using authz::LabelMap;
using authz::PolicyOptions;
using authz::PruneDocument;
using authz::TreeLabeler;
using workload::AuthGenConfig;
using workload::DocGenConfig;
using workload::GeneratedWorkload;

/// B1: labeling time vs document size, fixed 64 authorizations.
void BM_LabelByDocumentSize(benchmark::State& state) {
  const int64_t target_nodes = state.range(0);
  DocGenConfig config = workload::ConfigForNodeBudget(target_nodes);
  auto doc = workload::GenerateDocument(config);

  AuthGenConfig auth_config;
  auth_config.count = 64;
  auth_config.seed = 11;
  GeneratedWorkload workload =
      workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd", auth_config);

  TreeLabeler labeler(&workload.groups, PolicyOptions{});
  for (auto _ : state) {
    auto labels = labeler.Label(*doc, workload.instance_auths,
                                workload.schema_auths, workload.requester);
    benchmark::DoNotOptimize(labels);
  }
  state.counters["nodes"] = static_cast<double>(doc->node_count());
  state.counters["nodes_per_s"] = benchmark::Counter(
      static_cast<double>(doc->node_count()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LabelByDocumentSize)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

/// B2: labeling time vs number of authorizations, fixed ~10k-node doc.
void BM_LabelByAuthCount(benchmark::State& state) {
  DocGenConfig config = workload::ConfigForNodeBudget(10000);
  auto doc = workload::GenerateDocument(config);

  AuthGenConfig auth_config;
  auth_config.count = static_cast<int>(state.range(0));
  auth_config.seed = 13;
  GeneratedWorkload workload =
      workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd", auth_config);

  TreeLabeler labeler(&workload.groups, PolicyOptions{});
  for (auto _ : state) {
    auto labels = labeler.Label(*doc, workload.instance_auths,
                                workload.schema_auths, workload.requester);
    benchmark::DoNotOptimize(labels);
  }
  state.counters["auths"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_LabelByAuthCount)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

/// B1b: label+prune together (the full transformation minus parsing).
void BM_LabelAndPrune(benchmark::State& state) {
  const int64_t target_nodes = state.range(0);
  DocGenConfig config = workload::ConfigForNodeBudget(target_nodes);
  auto doc = workload::GenerateDocument(config);

  AuthGenConfig auth_config;
  auth_config.count = 64;
  auth_config.seed = 29;
  GeneratedWorkload workload =
      workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd", auth_config);

  TreeLabeler labeler(&workload.groups, PolicyOptions{});
  for (auto _ : state) {
    // Pruning mutates, so clone inside the loop (cost reported
    // separately by the pipeline benchmark).
    auto clone_node = doc->Clone(true);
    auto* clone = static_cast<xml::Document*>(clone_node.get());
    auto labels = labeler.Label(*clone, workload.instance_auths,
                                workload.schema_auths, workload.requester);
    PruneDocument(clone, *labels,
                  authz::CompletenessPolicy::kClosed);
    benchmark::DoNotOptimize(clone->node_count());
  }
  state.counters["nodes"] = static_cast<double>(doc->node_count());
}
BENCHMARK(BM_LabelAndPrune)->Arg(1000)->Arg(10000)->Arg(100000);

/// B1c: shape sensitivity — same node budget, deep-narrow vs
/// shallow-wide trees (propagation is one pass either way).
void BM_LabelByShape(benchmark::State& state) {
  DocGenConfig config;
  config.depth = static_cast<int>(state.range(0));
  config.fanout = static_cast<int>(state.range(1));
  config.seed = 31;
  auto doc = workload::GenerateDocument(config);

  AuthGenConfig auth_config;
  auth_config.count = 64;
  auth_config.seed = 37;
  GeneratedWorkload workload =
      workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd", auth_config);

  TreeLabeler labeler(&workload.groups, PolicyOptions{});
  for (auto _ : state) {
    auto labels = labeler.Label(*doc, workload.instance_auths,
                                workload.schema_auths, workload.requester);
    benchmark::DoNotOptimize(labels);
  }
  state.counters["nodes"] = static_cast<double>(doc->node_count());
  state.counters["depth"] = static_cast<double>(config.depth);
}
BENCHMARK(BM_LabelByShape)
    ->Args({12, 2})   // deep, narrow: 2^12 leaves
    ->Args({6, 4})    // balanced
    ->Args({4, 8})    // shallow, wide
    ->Args({2, 64});  // very wide

/// Shared ~16k-node fixture of the B4 pair: same shape and size as
/// bench_pipeline's stage fixture (64 auths, seed 23), but with a fully
/// *decidable* policy (no value predicates) — the fragment the compiler
/// exists for, where every authorization resolves by table lookup.  The
/// check_bench.sh ratio gate runs on this pair; the default
/// predicate mix (where residual XPath evaluation dominates both
/// pipelines) is measured separately below, ungated.
struct CompiledFixture {
  explicit CompiledFixture(double predicate_fraction) {
    doc = workload::GenerateDocument(workload::ConfigForNodeBudget(10000));
    AuthGenConfig auth_config;
    auth_config.count = 64;
    auth_config.seed = 23;
    auth_config.predicate_fraction = predicate_fraction;
    workload = workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd",
                                                auth_config);
    auto compiled = analysis::PolicyAutomaton::Compile(
        *doc->dtd(), workload.instance_auths, workload.schema_auths);
    if (compiled.ok()) automaton = std::move(*compiled);
  }

  std::unique_ptr<xml::Document> doc;
  GeneratedWorkload workload;
  std::unique_ptr<analysis::PolicyAutomaton> automaton;
};

CompiledFixture& SharedCompiledFixture() {
  static CompiledFixture* fixture =
      new CompiledFixture(/*predicate_fraction=*/0.0);
  return *fixture;
}

/// Default authgen mix: a quarter of the paths carry value predicates
/// and stay residual (partially-decidable policy).
CompiledFixture& SharedResidualFixture() {
  static CompiledFixture* fixture =
      new CompiledFixture(/*predicate_fraction=*/0.25);
  return *fixture;
}

/// B4 baseline: the per-request XPath labeling stage (explicit signs via
/// 64 XPath evaluations, then the propagation pass).
void BM_StageLabel(benchmark::State& state) {
  CompiledFixture& f = SharedCompiledFixture();
  TreeLabeler labeler(&f.workload.groups, PolicyOptions{});
  for (auto _ : state) {
    auto labels = labeler.Label(*f.doc, f.workload.instance_auths,
                                f.workload.schema_auths, f.workload.requester);
    benchmark::DoNotOptimize(labels);
  }
  state.counters["nodes"] = static_cast<double>(f.doc->node_count());
}
BENCHMARK(BM_StageLabel);

/// Shared loop of the compiled-stage benchmarks: explicit signs through
/// the precompiled automaton (residual predicated auths still via
/// XPath), then the same propagation pass `TreeLabeler::Label` runs.
void RunCompiledStage(benchmark::State& state, CompiledFixture& f) {
  if (f.automaton == nullptr) {
    state.SkipWithError("policy automaton failed to compile");
    return;
  }
  authz::LabelingStats stats;
  for (auto _ : state) {
    stats = authz::LabelingStats{};
    bool mismatch = false;
    auto signs = f.automaton->ComputeSigns(*f.doc, f.workload.requester,
                                           f.workload.groups, PolicyOptions{},
                                           &stats, &mismatch);
    if (!signs.ok() || mismatch) {
      state.SkipWithError("compiled labeling fell back");
      return;
    }
    auto labels = authz::PropagateSigns(*f.doc, *signs);
    benchmark::DoNotOptimize(labels);
  }
  state.counters["nodes"] = static_cast<double>(f.doc->node_count());
  state.counters["table_nodes"] = static_cast<double>(stats.table_nodes);
  state.counters["residual_nodes"] =
      static_cast<double>(stats.residual_nodes);
  state.counters["residual_xpath_evals"] =
      static_cast<double>(stats.xpath_evaluations);
}

/// B4 compiled: table lookups only (the gated pair's fast side).
void BM_StageLabelCompiled(benchmark::State& state) {
  RunCompiledStage(state, SharedCompiledFixture());
}
BENCHMARK(BM_StageLabelCompiled);

/// B4 partial-policy variant (ungated): default predicate mix, so ~1/4
/// of the authorizations stay residual and their per-request XPath
/// evaluation bounds the achievable speedup.
void BM_StageLabelCompiledResidualMix(benchmark::State& state) {
  RunCompiledStage(state, SharedResidualFixture());
}
BENCHMARK(BM_StageLabelCompiledResidualMix);

/// XPath baseline of the partial-policy variant.
void BM_StageLabelResidualMix(benchmark::State& state) {
  CompiledFixture& f = SharedResidualFixture();
  TreeLabeler labeler(&f.workload.groups, PolicyOptions{});
  for (auto _ : state) {
    auto labels = labeler.Label(*f.doc, f.workload.instance_auths,
                                f.workload.schema_auths, f.workload.requester);
    benchmark::DoNotOptimize(labels);
  }
  state.counters["nodes"] = static_cast<double>(f.doc->node_count());
}
BENCHMARK(BM_StageLabelResidualMix);

/// B4 amortization: the one-time product construction the server pays
/// per (document, policy version) — not per request.
void BM_AutomatonCompile(benchmark::State& state) {
  CompiledFixture& f = SharedCompiledFixture();
  size_t states = 0;
  for (auto _ : state) {
    auto automaton = analysis::PolicyAutomaton::Compile(
        *f.doc->dtd(), f.workload.instance_auths, f.workload.schema_auths);
    if (!automaton.ok()) {
      state.SkipWithError("compile failed");
      return;
    }
    states = (*automaton)->stats().states;
    benchmark::DoNotOptimize(automaton);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_AutomatonCompile);

}  // namespace
}  // namespace xmlsec

int main(int argc, char** argv) {
  return xmlsec::bench::RunWithJson(argc, argv, "BENCH_labeling.json");
}
