// B1/B2 (DESIGN.md): cost of the compute-view labeling + prune pass as a
// function of document size and of the number of authorizations — the
// paper's "fast on-line computation of the view" claim (§1, §6).  The
// expected shape is linear in document size and near-flat in the number
// of authorizations beyond the XPath evaluation cost.

#include <benchmark/benchmark.h>

#include "authz/labeling.h"
#include "authz/prune.h"
#include "workload/authgen.h"
#include "workload/docgen.h"

namespace xmlsec {
namespace {

using authz::LabelMap;
using authz::PolicyOptions;
using authz::PruneDocument;
using authz::TreeLabeler;
using workload::AuthGenConfig;
using workload::DocGenConfig;
using workload::GeneratedWorkload;

/// B1: labeling time vs document size, fixed 64 authorizations.
void BM_LabelByDocumentSize(benchmark::State& state) {
  const int64_t target_nodes = state.range(0);
  DocGenConfig config = workload::ConfigForNodeBudget(target_nodes);
  auto doc = workload::GenerateDocument(config);

  AuthGenConfig auth_config;
  auth_config.count = 64;
  auth_config.seed = 11;
  GeneratedWorkload workload =
      workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd", auth_config);

  TreeLabeler labeler(&workload.groups, PolicyOptions{});
  for (auto _ : state) {
    auto labels = labeler.Label(*doc, workload.instance_auths,
                                workload.schema_auths, workload.requester);
    benchmark::DoNotOptimize(labels);
  }
  state.counters["nodes"] = static_cast<double>(doc->node_count());
  state.counters["nodes_per_s"] = benchmark::Counter(
      static_cast<double>(doc->node_count()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LabelByDocumentSize)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

/// B2: labeling time vs number of authorizations, fixed ~10k-node doc.
void BM_LabelByAuthCount(benchmark::State& state) {
  DocGenConfig config = workload::ConfigForNodeBudget(10000);
  auto doc = workload::GenerateDocument(config);

  AuthGenConfig auth_config;
  auth_config.count = static_cast<int>(state.range(0));
  auth_config.seed = 13;
  GeneratedWorkload workload =
      workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd", auth_config);

  TreeLabeler labeler(&workload.groups, PolicyOptions{});
  for (auto _ : state) {
    auto labels = labeler.Label(*doc, workload.instance_auths,
                                workload.schema_auths, workload.requester);
    benchmark::DoNotOptimize(labels);
  }
  state.counters["auths"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_LabelByAuthCount)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

/// B1b: label+prune together (the full transformation minus parsing).
void BM_LabelAndPrune(benchmark::State& state) {
  const int64_t target_nodes = state.range(0);
  DocGenConfig config = workload::ConfigForNodeBudget(target_nodes);
  auto doc = workload::GenerateDocument(config);

  AuthGenConfig auth_config;
  auth_config.count = 64;
  auth_config.seed = 29;
  GeneratedWorkload workload =
      workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd", auth_config);

  TreeLabeler labeler(&workload.groups, PolicyOptions{});
  for (auto _ : state) {
    // Pruning mutates, so clone inside the loop (cost reported
    // separately by the pipeline benchmark).
    auto clone_node = doc->Clone(true);
    auto* clone = static_cast<xml::Document*>(clone_node.get());
    auto labels = labeler.Label(*clone, workload.instance_auths,
                                workload.schema_auths, workload.requester);
    PruneDocument(clone, *labels,
                  authz::CompletenessPolicy::kClosed);
    benchmark::DoNotOptimize(clone->node_count());
  }
  state.counters["nodes"] = static_cast<double>(doc->node_count());
}
BENCHMARK(BM_LabelAndPrune)->Arg(1000)->Arg(10000)->Arg(100000);

/// B1c: shape sensitivity — same node budget, deep-narrow vs
/// shallow-wide trees (propagation is one pass either way).
void BM_LabelByShape(benchmark::State& state) {
  DocGenConfig config;
  config.depth = static_cast<int>(state.range(0));
  config.fanout = static_cast<int>(state.range(1));
  config.seed = 31;
  auto doc = workload::GenerateDocument(config);

  AuthGenConfig auth_config;
  auth_config.count = 64;
  auth_config.seed = 37;
  GeneratedWorkload workload =
      workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd", auth_config);

  TreeLabeler labeler(&workload.groups, PolicyOptions{});
  for (auto _ : state) {
    auto labels = labeler.Label(*doc, workload.instance_auths,
                                workload.schema_auths, workload.requester);
    benchmark::DoNotOptimize(labels);
  }
  state.counters["nodes"] = static_cast<double>(doc->node_count());
  state.counters["depth"] = static_cast<double>(config.depth);
}
BENCHMARK(BM_LabelByShape)
    ->Args({12, 2})   // deep, narrow: 2^12 leaves
    ->Args({6, 4})    // balanced
    ->Args({4, 8})    // shallow, wide
    ->Args({2, 64});  // very wide

}  // namespace
}  // namespace xmlsec
