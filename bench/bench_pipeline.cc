// B3 (DESIGN.md): per-stage breakdown of the security processor's
// execution cycle (paper §7): parse -> validate -> clone -> label ->
// prune -> loosen -> unparse.  Reproduces the paper's architectural
// claim that enforcement is a modest, single-pass addition to the XML
// serving pipeline.

// This binary has its own main (see bench/CMakeLists.txt OWN_MAIN):
// results are also written to BENCH_pipeline.json for trend tracking.

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "authz/labeling.h"
#include "authz/loosening.h"
#include "authz/processor.h"
#include "authz/projector.h"
#include "authz/prune.h"
#include "workload/authgen.h"
#include "workload/docgen.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/validator.h"

namespace xmlsec {
namespace {

using workload::AuthGenConfig;
using workload::GeneratedWorkload;

struct Fixture {
  explicit Fixture(int64_t nodes) {
    auto generated =
        workload::GenerateDocument(workload::ConfigForNodeBudget(nodes));
    doc = std::move(generated);
    xml::SerializeOptions options;
    options.doctype = xml::DoctypeMode::kInternal;
    text = xml::SerializeDocument(*doc, options);
    AuthGenConfig auth_config;
    auth_config.count = 64;
    auth_config.seed = 23;
    workload = workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd",
                                                auth_config);
  }

  std::unique_ptr<xml::Document> doc;
  std::string text;
  GeneratedWorkload workload;
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture(10000);
  return *fixture;
}

/// Deny-heavy mix under the default closed policy: most of the tree is
/// redacted, so a view is a small slice of the original — the case the
/// projection pipeline exists for (the clone pipeline still copies the
/// whole tree before throwing most of it away).
struct DenyHeavyFixture {
  DenyHeavyFixture() {
    doc = workload::GenerateDocument(workload::ConfigForNodeBudget(10000));
    AuthGenConfig auth_config;
    auth_config.count = 64;
    auth_config.negative_fraction = 0.7;
    auth_config.seed = 29;
    workload = workload::GenerateAuthorizations(*doc, "d.xml", "s.dtd",
                                                auth_config);
  }

  std::unique_ptr<xml::Document> doc;
  GeneratedWorkload workload;
};

DenyHeavyFixture& SharedDenyHeavyFixture() {
  static DenyHeavyFixture* fixture = new DenyHeavyFixture();
  return *fixture;
}

void BM_StageParse(benchmark::State& state) {
  Fixture& f = SharedFixture();
  for (auto _ : state) {
    auto doc = xml::ParseDocument(f.text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(f.text.size()) *
                          state.iterations());
}
BENCHMARK(BM_StageParse);

void BM_StageValidate(benchmark::State& state) {
  Fixture& f = SharedFixture();
  xml::Validator validator(f.doc->dtd());
  for (auto _ : state) {
    Status s = validator.Validate(f.doc.get());
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_StageValidate);

void BM_StageClone(benchmark::State& state) {
  Fixture& f = SharedFixture();
  for (auto _ : state) {
    auto clone = f.doc->Clone(true);
    benchmark::DoNotOptimize(clone);
  }
}
BENCHMARK(BM_StageClone);

void BM_StageLabel(benchmark::State& state) {
  Fixture& f = SharedFixture();
  authz::TreeLabeler labeler(&f.workload.groups, authz::PolicyOptions{});
  for (auto _ : state) {
    auto labels =
        labeler.Label(*f.doc, f.workload.instance_auths,
                      f.workload.schema_auths, f.workload.requester);
    benchmark::DoNotOptimize(labels);
  }
}
BENCHMARK(BM_StageLabel);

void BM_StagePrune(benchmark::State& state) {
  Fixture& f = SharedFixture();
  authz::TreeLabeler labeler(&f.workload.groups, authz::PolicyOptions{});
  auto labels = labeler.Label(*f.doc, f.workload.instance_auths,
                              f.workload.schema_auths, f.workload.requester);
  for (auto _ : state) {
    state.PauseTiming();
    auto clone_node = f.doc->Clone(true);
    auto* clone = static_cast<xml::Document*>(clone_node.get());
    state.ResumeTiming();
    authz::PruneDocument(clone, *labels, authz::CompletenessPolicy::kClosed);
    benchmark::DoNotOptimize(clone->node_count());
  }
}
BENCHMARK(BM_StagePrune);

void BM_StageProject(benchmark::State& state) {
  Fixture& f = SharedFixture();
  for (auto _ : state) {
    auto view = authz::ProjectView(*f.doc, f.workload.instance_auths,
                                   f.workload.schema_auths,
                                   f.workload.requester, f.workload.groups,
                                   authz::PolicyOptions{});
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_StageProject);

/// View construction (lookup excluded, loosening included) through each
/// pipeline on the deny-heavy workload — both live in this binary so
/// the speedup ratio is directly comparable run to run.
void RunViewConstruction(benchmark::State& state,
                         authz::ViewPipeline pipeline) {
  DenyHeavyFixture& f = SharedDenyHeavyFixture();
  authz::ProcessorOptions options;
  options.pipeline = pipeline;
  authz::SecurityProcessor processor(&f.workload.groups, options);
  int64_t visible = 0;
  for (auto _ : state) {
    auto view =
        processor.ComputeView(*f.doc, f.workload.instance_auths,
                              f.workload.schema_auths, f.workload.requester);
    benchmark::DoNotOptimize(view);
    visible = view->empty() ? 0 : view->document->node_count();
  }
  state.counters["nodes"] = static_cast<double>(f.doc->node_count());
  state.counters["visible_nodes"] = static_cast<double>(visible);
}

void BM_ViewConstructionClone(benchmark::State& state) {
  RunViewConstruction(state, authz::ViewPipeline::kCloneLabelPrune);
}
BENCHMARK(BM_ViewConstructionClone);

void BM_ViewConstructionProject(benchmark::State& state) {
  RunViewConstruction(state, authz::ViewPipeline::kProject);
}
BENCHMARK(BM_ViewConstructionProject);

void BM_StageLoosen(benchmark::State& state) {
  Fixture& f = SharedFixture();
  for (auto _ : state) {
    xml::Dtd loose = authz::LoosenDtd(*f.doc->dtd());
    benchmark::DoNotOptimize(loose);
  }
}
BENCHMARK(BM_StageLoosen);

void BM_StageUnparse(benchmark::State& state) {
  Fixture& f = SharedFixture();
  for (auto _ : state) {
    std::string out = xml::SerializeDocument(*f.doc);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(f.text.size()) *
                          state.iterations());
}
BENCHMARK(BM_StageUnparse);

/// The whole §7 cycle end-to-end through the SecurityProcessor.
void BM_FullTransformation(benchmark::State& state) {
  Fixture& f = SharedFixture();
  authz::SecurityProcessor processor(&f.workload.groups, {});
  for (auto _ : state) {
    auto view =
        processor.ComputeView(*f.doc, f.workload.instance_auths,
                              f.workload.schema_auths, f.workload.requester);
    benchmark::DoNotOptimize(view);
  }
  state.counters["nodes"] = static_cast<double>(f.doc->node_count());
}
BENCHMARK(BM_FullTransformation);

}  // namespace
}  // namespace xmlsec

int main(int argc, char** argv) {
  return xmlsec::bench::RunWithJson(argc, argv, "BENCH_pipeline.json");
}
