// B7 (DESIGN.md): cost of the authorization-subject machinery (paper §3):
// location-pattern matching, ASH comparisons, and group-membership
// resolution as the group DAG deepens.  BFS over the membership DAG is
// the dominant term; pattern matching is constant-time on components.

#include <benchmark/benchmark.h>

#include "authz/subject.h"
#include "common/prng.h"

namespace xmlsec {
namespace {

using authz::GroupStore;
using authz::LocationPattern;
using authz::Requester;
using authz::RequesterMatches;
using authz::Subject;

void BM_IpPatternMatch(benchmark::State& state) {
  LocationPattern pattern = *LocationPattern::ParseIp("151.100.*");
  bool hit = false;
  for (auto _ : state) {
    hit ^= pattern.Matches("151.100.30.8");
    hit ^= pattern.Matches("10.0.0.1");
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_IpPatternMatch);

void BM_SymbolicPatternMatch(benchmark::State& state) {
  LocationPattern pattern = *LocationPattern::ParseSymbolic("*.lab.example.com");
  bool hit = false;
  for (auto _ : state) {
    hit ^= pattern.Matches("pc1.lab.example.com");
    hit ^= pattern.Matches("other.example.org");
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_SymbolicPatternMatch);

/// Membership test cost vs depth of a group chain.
void BM_MembershipChainDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  GroupStore groups;
  for (int i = 1; i <= depth; ++i) {
    Status s = groups.AddMembership("g" + std::to_string(i - 1),
                                    "g" + std::to_string(i));
    if (!s.ok()) state.SkipWithError("membership setup failed");
  }
  groups.AddUser("u");
  Status s = groups.AddMembership("u", "g0");
  if (!s.ok()) state.SkipWithError("membership setup failed");
  std::string top = "g" + std::to_string(depth);
  bool hit = false;
  for (auto _ : state) {
    hit ^= groups.IsMemberOrSelf("u", top);
    benchmark::DoNotOptimize(hit);
  }
  state.counters["depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_MembershipChainDepth)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

/// Membership test cost vs a wide random DAG (users x groups).
void BM_MembershipDagWidth(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  const int groups_n = users / 4 + 1;
  GroupStore groups;
  Prng prng(77);
  for (int g = 1; g < groups_n; ++g) {
    Status s = groups.AddMembership(
        "g" + std::to_string(g),
        "g" + std::to_string(prng.Below(static_cast<uint64_t>(g))));
    benchmark::DoNotOptimize(s);
  }
  for (int u = 0; u < users; ++u) {
    Status s = groups.AddMembership(
        "u" + std::to_string(u),
        "g" + std::to_string(prng.Below(static_cast<uint64_t>(groups_n))));
    benchmark::DoNotOptimize(s);
  }
  bool hit = false;
  for (auto _ : state) {
    hit ^= groups.IsMemberOrSelf("u0", "g0");
    benchmark::DoNotOptimize(hit);
  }
  state.counters["users"] = static_cast<double>(users);
}
BENCHMARK(BM_MembershipDagWidth)->Arg(64)->Arg(1024)->Arg(16384);

/// Full requester-vs-subject applicability check (the per-authorization
/// test of compute-view step 1).
void BM_RequesterMatch(benchmark::State& state) {
  GroupStore groups;
  Status s = groups.AddMembership("tom", "Foreign");
  benchmark::DoNotOptimize(s);
  Requester tom{"tom", "130.100.50.8", "infosys.bld1.it"};
  Subject subject = *Subject::Make("Foreign", "130.100.*", "*.it");
  bool hit = false;
  for (auto _ : state) {
    hit ^= RequesterMatches(tom, subject, groups);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_RequesterMatch);

/// ASH partial-order comparison (used for most-specific-subject
/// overriding during initial_label).
void BM_SubjectLessEq(benchmark::State& state) {
  GroupStore groups;
  Status s = groups.AddMembership("tom", "Foreign");
  benchmark::DoNotOptimize(s);
  Subject narrow = *Subject::Make("tom", "130.100.50.8", "infosys.bld1.it");
  Subject wide = *Subject::Make("Foreign", "130.100.*", "*.it");
  bool hit = false;
  for (auto _ : state) {
    hit ^= authz::SubjectLessEq(narrow, wide, groups);
    hit ^= authz::SubjectLessEq(wide, narrow, groups);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_SubjectLessEq);

}  // namespace
}  // namespace xmlsec
