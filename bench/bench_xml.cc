// B9 (DESIGN.md): substrate characterization — XML parse / validate /
// serialize throughput and DTD machinery costs.  These bound what any
// enforcement layered on the substrate can achieve.

#include <benchmark/benchmark.h>

#include "workload/docgen.h"
#include "xml/content_model.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/validator.h"

namespace xmlsec {
namespace xml {
namespace {

std::string DocumentText(int64_t nodes) {
  auto doc = workload::GenerateDocument(workload::ConfigForNodeBudget(nodes));
  SerializeOptions options;
  options.doctype = DoctypeMode::kInternal;
  return SerializeDocument(*doc, options);
}

void BM_ParseThroughput(benchmark::State& state) {
  std::string text = DocumentText(state.range(0));
  for (auto _ : state) {
    auto doc = ParseDocument(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(text.size()) *
                          state.iterations());
}
BENCHMARK(BM_ParseThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SerializeThroughput(benchmark::State& state) {
  auto doc = workload::GenerateDocument(
      workload::ConfigForNodeBudget(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string out = SerializeDocument(*doc);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_SerializeThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ValidateThroughput(benchmark::State& state) {
  auto doc = workload::GenerateDocument(
      workload::ConfigForNodeBudget(state.range(0)));
  Validator validator(doc->dtd());
  for (auto _ : state) {
    Status s = validator.Validate(doc.get());
    benchmark::DoNotOptimize(s);
  }
  state.counters["nodes"] = static_cast<double>(doc->node_count());
}
BENCHMARK(BM_ValidateThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DtdParse(benchmark::State& state) {
  std::string text = workload::LaboratoryDtd();
  for (auto _ : state) {
    auto dtd = ParseDtd(text);
    benchmark::DoNotOptimize(dtd);
  }
}
BENCHMARK(BM_DtdParse);

void BM_ContentModelCompile(benchmark::State& state) {
  auto dtd = ParseDtd(
      "<!ELEMENT e ((a,b?)|(c,(d|e)*,f+))+>");
  const ContentParticle& particle = *(*dtd)->FindElement("e")->particle;
  for (auto _ : state) {
    ContentModelMatcher matcher(particle);
    benchmark::DoNotOptimize(matcher.state_count());
  }
}
BENCHMARK(BM_ContentModelCompile);

void BM_ContentModelMatch(benchmark::State& state) {
  auto dtd = ParseDtd("<!ELEMENT e (a?,b*,c+)>");
  ContentModelMatcher matcher(*(*dtd)->FindElement("e")->particle);
  std::vector<std::string_view> sequence;
  for (int i = 0; i < state.range(0); ++i) {
    sequence.push_back(i < state.range(0) / 2 ? "b" : "c");
  }
  sequence.push_back("c");
  bool ok = false;
  for (auto _ : state) {
    ok ^= matcher.Matches(sequence);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["children"] = static_cast<double>(sequence.size());
}
BENCHMARK(BM_ContentModelMatch)->Arg(4)->Arg(64)->Arg(1024);

void BM_CloneDeep(benchmark::State& state) {
  auto doc = workload::GenerateDocument(
      workload::ConfigForNodeBudget(state.range(0)));
  for (auto _ : state) {
    auto clone = doc->Clone(true);
    benchmark::DoNotOptimize(clone);
  }
  state.counters["nodes"] = static_cast<double>(doc->node_count());
}
BENCHMARK(BM_CloneDeep)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Reindex(benchmark::State& state) {
  auto doc = workload::GenerateDocument(
      workload::ConfigForNodeBudget(state.range(0)));
  for (auto _ : state) {
    doc->Reindex();
    benchmark::DoNotOptimize(doc->node_count());
  }
  state.counters["nodes"] = static_cast<double>(doc->node_count());
}
BENCHMARK(BM_Reindex)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace xml
}  // namespace xmlsec
