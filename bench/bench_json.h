// Machine-readable benchmark output (satellite of the observability
// subsystem).  Google Benchmark's own --benchmark_out JSON is rich but
// awkward for trend tracking: every field of every run, nested context,
// version-dependent schema.  The JSON written here is deliberately
// minimal and stable — one object per benchmark run:
//
//   {"name": "BM_FullHttpRequest", "ns_per_op": 61250.4,
//    "ops_per_second": 16326.4, "iterations": 11200,
//    "counters": {"hit_rate": 0.999}}
//
// so a CI trend job can diff two files with ten lines of python.
//
// Usage: give the benchmark binary its own main that calls
// `RunWithJson(argc, argv, "BENCH_foo.json")`.  The default path is
// overridable with the XMLSEC_BENCH_JSON environment variable; setting
// it to the empty string disables the file entirely.  Console output is
// unchanged (the capturing reporter forwards to ConsoleReporter).

#ifndef XMLSEC_BENCH_BENCH_JSON_H_
#define XMLSEC_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace xmlsec {
namespace bench {

/// A display reporter that renders the usual console table AND captures
/// a simplified record of every (non-aggregate, non-errored) run.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double ns_per_op = 0;
    double ops_per_second = 0;
    int64_t iterations = 0;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Entry entry;
      entry.name = run.benchmark_name();
      entry.iterations = static_cast<int64_t>(run.iterations);
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      entry.ns_per_op = run.real_accumulated_time / iters * 1e9;
      entry.ops_per_second =
          entry.ns_per_op > 0 ? 1e9 / entry.ns_per_op : 0.0;
      for (const auto& [name, counter] : run.counters) {
        entry.counters.emplace_back(name, counter.value);
      }
      entries_.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Entry>& entries() const { return entries_; }

  /// Writes the captured entries as a JSON array, one object per line.
  /// Returns false (with a note on stderr) if the file cannot be
  /// written; benchmarks results were already printed, so callers treat
  /// this as non-fatal.
  bool WriteFile(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out, "[\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(out,
                   "  {\"name\": \"%s\", \"ns_per_op\": %.6g, "
                   "\"ops_per_second\": %.6g, \"iterations\": %lld",
                   Escape(e.name).c_str(), e.ns_per_op, e.ops_per_second,
                   static_cast<long long>(e.iterations));
      if (!e.counters.empty()) {
        std::fprintf(out, ", \"counters\": {");
        for (size_t c = 0; c < e.counters.size(); ++c) {
          std::fprintf(out, "%s\"%s\": %.6g", c == 0 ? "" : ", ",
                       Escape(e.counters[c].first).c_str(),
                       e.counters[c].second);
        }
        std::fprintf(out, "}");
      }
      std::fprintf(out, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    return true;
  }

 private:
  static std::string Escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<Entry> entries_;
};

/// Drop-in `main` body: run all registered benchmarks with console
/// output, then write the simplified JSON summary to `default_path`
/// (cwd-relative) unless XMLSEC_BENCH_JSON overrides it.
inline int RunWithJson(int argc, char** argv, const char* default_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  std::string path = default_path;
  if (const char* env = std::getenv("XMLSEC_BENCH_JSON")) path = env;
  if (!path.empty()) reporter.WriteFile(path);
  return 0;
}

}  // namespace bench
}  // namespace xmlsec

#endif  // XMLSEC_BENCH_BENCH_JSON_H_
