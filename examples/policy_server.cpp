// The §7 architecture end to end: a document repository, a user
// directory, group definitions, XACL policies, and the secure document
// server answering HTTP requests (transport simulated; the request text
// and connection addresses are exactly what a socket would deliver).
//
// Build & run:  ./build/examples/policy_server
//
// `policy_server --serve <port> [seconds]` skips the scripted demo and
// instead keeps the TCP listener alive for `seconds` (default 30) so an
// external client — curl, a CI scrape script, a load generator — can
// exercise `/CSlab.xml`, `/healthz`, and `/metrics` against a real
// socket.  The bound port is printed on stdout (one line, flushed) so
// callers passing port 0 can discover the ephemeral port.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "server/audit_log.h"
#include "server/document_server.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/tcp_listener.h"
#include "server/user_directory.h"
#include "workload/docgen.h"
#include "xml/serializer.h"

namespace {

using namespace xmlsec;  // NOLINT: example brevity

constexpr char kCSlabXml[] =
    "<laboratory>"
    "<project name=\"Access Models\" type=\"internal\">"
    "<manager><fname>Eve</fname><lname>Smith</lname></manager>"
    "<paper category=\"private\"><title>Key escrow notes</title></paper>"
    "<paper category=\"public\"><title>Access control for XML</title></paper>"
    "</project>"
    "<project name=\"Web\" type=\"public\">"
    "<manager><fname>Alan</fname><lname>Turing</lname></manager>"
    "<paper category=\"public\"><title>Serving XML securely</title></paper>"
    "</project>"
    "</laboratory>";

void Send(const server::SecureDocumentServer& server, const char* label,
          const std::string& raw, const char* ip, const char* sym) {
  std::printf("==== %s (from %s / %s) ====\n>>> request\n%s<<< response\n",
              label, ip, sym, raw.c_str());
  std::string response = server.HandleHttp(raw, ip, sym);
  std::printf("%s\n\n", response.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool serve_mode = false;
  uint16_t serve_port = 0;
  int serve_seconds = 30;
  if (argc >= 2 && std::string(argv[1]) == "--serve") {
    if (argc < 3 || argc > 4) {
      std::fprintf(stderr, "usage: policy_server [--serve <port> [seconds]]\n");
      return 2;
    }
    serve_mode = true;
    serve_port = static_cast<uint16_t>(std::atoi(argv[2]));
    if (argc == 4) serve_seconds = std::atoi(argv[3]);
    if (serve_seconds <= 0) serve_seconds = 30;
  }

  server::Repository repo;
  server::UserDirectory users;
  authz::GroupStore groups;

  // Populate the repository: schema, document, policy.
  if (Status s = repo.AddDtd("laboratory.xml", workload::LaboratoryDtd());
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = repo.AddDocument("CSlab.xml", kCSlabXml, "laboratory.xml");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = repo.AddXacl(R"(<xacl>
        <authorization subject="Public" object="CSlab.xml"
            path="/laboratory" sign="+" type="RW"/>
        <authorization subject="Foreign" object="laboratory.xml"
            path='//paper[./@category="private"]' sign="-" type="R"/>
        <authorization subject="Public" object="laboratory.xml"
            path="//fund" sign="-" type="R"/>
      </xacl>)");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Accounts and groups.
  for (auto [user, password] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"tom", "tom-secret"}, {"carol", "carol-secret"}}) {
    if (Status s = users.CreateUser(user, password); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = groups.AddMembership("tom", "Foreign"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  server::SecureDocumentServer server(&repo, &users, &groups);

  if (serve_mode) {
    // CI / interactive mode: a real listener on the requested port, kept
    // alive long enough for an external scrape, then a clean drain.
    server::AuditLog audit;
    server.set_audit_log(&audit);
    server::TcpHttpListener listener(&server, "demo.lab.example");
    if (Status s = listener.Start(serve_port); !s.ok()) {
      std::fprintf(stderr, "listener: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("listening 127.0.0.1:%u\n", listener.port());
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
    listener.Stop();
    std::printf("served %lld requests\n",
                static_cast<long long>(listener.requests_served()));
    return 0;
  }

  // 1. Tom (Foreign): the private paper is redacted.
  Send(server, "tom fetches CSlab.xml",
       "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
           server::Base64Encode("tom:tom-secret") + "\r\n\r\n",
       "130.100.50.8", "infosys.bld1.it");

  // 2. Carol (no Foreign membership): she sees the private paper too.
  Send(server, "carol fetches CSlab.xml",
       "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
           server::Base64Encode("carol:carol-secret") + "\r\n\r\n",
       "130.89.56.8", "admin.lab.com");

  // 3. Anonymous request: allowed, served the Public view.
  Send(server, "anonymous fetches CSlab.xml",
       "GET /CSlab.xml HTTP/1.0\r\n\r\n", "203.0.113.7", "cafe.example");

  // 4. Tom queries over his view: the query engine runs on the pruned
  //    document, so denied content is unreachable by construction.
  Send(server, "tom queries //title",
       "GET /CSlab.xml?query=%2F%2Ftitle HTTP/1.0\r\nAuthorization: Basic " +
           server::Base64Encode("tom:tom-secret") + "\r\n\r\n",
       "130.100.50.8", "infosys.bld1.it");

  // 5. Bad password: 401.
  Send(server, "wrong password",
       "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
           server::Base64Encode("tom:oops") + "\r\n\r\n",
       "130.100.50.8", "infosys.bld1.it");

  // 6. Unknown document: 404 (indistinguishable from a fully-denied one).
  Send(server, "missing document", "GET /Nothing.xml HTTP/1.0\r\n\r\n",
       "130.100.50.8", "infosys.bld1.it");

  // 7. The same server on a real TCP socket, with an audit trail.
  server::AuditLog audit;
  server.set_audit_log(&audit);
  server::TcpHttpListener listener(&server, "demo.lab.example");
  if (Status s = listener.Start(0); !s.ok()) {
    std::fprintf(stderr, "listener: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("==== live TCP demo on 127.0.0.1:%u ====\n", listener.port());
  auto live = server::FetchHttp(
      listener.port(), "GET /CSlab.xml?query=%2F%2Ftitle HTTP/1.0\r\n\r\n");
  if (live.ok()) {
    std::printf("%s\n", live->c_str());
  }
  listener.Stop();
  std::printf("==== audit trail ====\n");
  for (const server::AuditEntry& entry : audit.Entries()) {
    std::printf("%s\n", entry.ToString().c_str());
  }
  return 0;
}
