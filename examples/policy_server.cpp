// The §7 architecture end to end: a document repository, a user
// directory, group definitions, XACL policies, and the secure document
// server answering HTTP requests (transport simulated; the request text
// and connection addresses are exactly what a socket would deliver).
//
// Build & run:  ./build/examples/policy_server
//
// `policy_server [--event-loops=N] --serve <port> [seconds]` skips the
// scripted demo and
// instead keeps the TCP listener alive for `seconds` (default 30) so an
// external client — curl, a CI scrape script, a load generator — can
// exercise `/CSlab.xml`, `/healthz`, and `/metrics` against a real
// socket.  The bound port is printed on stdout (one line, flushed) so
// callers passing port 0 can discover the ephemeral port.
//
// Serve-mode environment:
//   XMLSEC_AUDIT_WAL=<path>        durable audit WAL (CRC-framed,
//                                  group-commit fsync; torn tails are
//                                  truncated on reopen and reported)
//   XMLSEC_AUDIT_DURABILITY=fsync  positive responses wait for the
//                                  group commit (default: enqueue)
//   XMLSEC_AUDIT_DEGRADED=memory   serve with memory-only audit while
//                                  the WAL sink fails (default:
//                                  fail-closed 503)
//   XMLSEC_ENABLE_UPDATES=1        serve `POST /update/<uri>` (the
//                                  write path; off by default — a
//                                  deployment must opt in to mutation
//                                  over HTTP)
//   XMLSEC_QUERY_REWRITE=1         answer `?query=` through the
//                                  policy-safe query rewriter instead
//                                  of materializing the view (falls
//                                  back per request when unsupported)
//   XMLSEC_MANIFEST=<file>         repository manifest reloaded on
//                                  SIGHUP / POST /admin/reload (without
//                                  it, reload rebuilds the built-in
//                                  demo repository)
//   XMLSEC_EVENT_LOOPS=N           serve through N per-core epoll event
//                                  loops with SO_REUSEPORT-sharded
//                                  accept (0/unset = legacy worker
//                                  pool); `--event-loops=N` overrides

#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/audit_log.h"
#include "server/audit_wal.h"
#include "server/config_files.h"
#include "server/document_server.h"
#include "server/http.h"
#include "server/repository.h"
#include "server/tcp_listener.h"
#include "server/user_directory.h"
#include "workload/docgen.h"
#include "xml/serializer.h"

namespace {

using namespace xmlsec;  // NOLINT: example brevity

constexpr char kCSlabXml[] =
    "<laboratory>"
    "<project name=\"Access Models\" type=\"internal\">"
    "<manager><fname>Eve</fname><lname>Smith</lname></manager>"
    "<paper category=\"private\"><title>Key escrow notes</title></paper>"
    "<paper category=\"public\"><title>Access control for XML</title></paper>"
    "</project>"
    "<project name=\"Web\" type=\"public\">"
    "<manager><fname>Alan</fname><lname>Turing</lname></manager>"
    "<paper category=\"public\"><title>Serving XML securely</title></paper>"
    "</project>"
    "</laboratory>";

/// SIGHUP => reload the policy repository (classic daemon semantics).
volatile std::sig_atomic_t g_reload_requested = 0;
/// SIGTERM/SIGINT => drain the listener and commit the WAL tail before
/// exiting, so a normal stop never leaves a torn frame behind.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void OnSighup(int) { g_reload_requested = 1; }
void OnShutdown(int) { g_shutdown_requested = 1; }

/// Builds the demo repository from scratch — also the SIGHUP/admin
/// reload path when no manifest is configured: the rebuild happens off
/// to the side and is atomically swapped in.
Result<std::shared_ptr<const server::Repository>> BuildRepository() {
  auto repo = std::make_shared<server::Repository>();
  XMLSEC_RETURN_IF_ERROR(
      repo->AddDtd("laboratory.xml", workload::LaboratoryDtd()));
  XMLSEC_RETURN_IF_ERROR(
      repo->AddDocument("CSlab.xml", kCSlabXml, "laboratory.xml"));
  XMLSEC_RETURN_IF_ERROR(repo->AddXacl(R"(<xacl>
        <authorization subject="Public" object="CSlab.xml"
            path="/laboratory" sign="+" type="RW"/>
        <authorization subject="Foreign" object="laboratory.xml"
            path='//paper[./@category="private"]' sign="-" type="R"/>
        <authorization subject="Public" object="laboratory.xml"
            path="//fund" sign="-" type="R"/>
      </xacl>)"));
  return std::shared_ptr<const server::Repository>(std::move(repo));
}

void Send(const server::SecureDocumentServer& server, const char* label,
          const std::string& raw, const char* ip, const char* sym) {
  std::printf("==== %s (from %s / %s) ====\n>>> request\n%s<<< response\n",
              label, ip, sym, raw.c_str());
  std::string response = server.HandleHttp(raw, ip, sym);
  std::printf("%s\n\n", response.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool serve_mode = false;
  uint16_t serve_port = 0;
  int serve_seconds = 30;
  // Serving-mode selection: `--event-loops=N` (N per-core epoll loops
  // with SO_REUSEPORT-sharded accept; 0 = legacy worker pool), or the
  // XMLSEC_EVENT_LOOPS env var; the flag wins.
  int event_loops = 0;
  if (const char* loops_env = std::getenv("XMLSEC_EVENT_LOOPS");
      loops_env != nullptr && loops_env[0] != '\0') {
    event_loops = std::atoi(loops_env);
  }
  std::vector<std::string> args(argv + 1, argv + argc);
  for (size_t i = 0; i < args.size();) {
    if (args[i].rfind("--event-loops=", 0) == 0) {
      event_loops = std::atoi(args[i].c_str() + 14);
      args.erase(args.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (event_loops < 0) event_loops = 0;
  if (!args.empty() && args[0] == "--serve") {
    if (args.size() < 2 || args.size() > 3) {
      std::fprintf(stderr,
                   "usage: policy_server [--event-loops=N] "
                   "[--serve <port> [seconds]]\n");
      return 2;
    }
    serve_mode = true;
    serve_port = static_cast<uint16_t>(std::atoi(args[1].c_str()));
    if (args.size() == 3) serve_seconds = std::atoi(args[2].c_str());
    if (serve_seconds <= 0) serve_seconds = 30;
  }

  server::UserDirectory users;
  authz::GroupStore groups;

  // Populate the repository: schema, document, policy.
  auto initial_repo = BuildRepository();
  if (!initial_repo.ok()) {
    std::fprintf(stderr, "%s\n", initial_repo.status().ToString().c_str());
    return 1;
  }

  // Accounts and groups.
  for (auto [user, password] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"tom", "tom-secret"}, {"carol", "carol-secret"}}) {
    if (Status s = users.CreateUser(user, password); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = groups.AddMembership("tom", "Foreign"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  server::ServerConfig config;
  if (const char* durability = std::getenv("XMLSEC_AUDIT_DURABILITY");
      durability != nullptr && std::string(durability) == "fsync") {
    config.audit_durability = server::AuditDurability::kFsync;
  }
  if (const char* degraded = std::getenv("XMLSEC_AUDIT_DEGRADED");
      degraded != nullptr && std::string(degraded) == "memory") {
    config.audit_degraded_mode = server::AuditDegradedMode::kMemoryAudit;
  }
  if (const char* rewrite = std::getenv("XMLSEC_QUERY_REWRITE");
      rewrite != nullptr && std::string(rewrite) == "1") {
    config.query_path = server::QueryPathMode::kRewrite;
  }
  if (const char* updates = std::getenv("XMLSEC_ENABLE_UPDATES");
      updates != nullptr && std::string(updates) == "1") {
    config.enable_updates = true;
  }
  server::SecureDocumentServer server(*initial_repo, &users, &groups,
                                      config);

  if (serve_mode) {
    // CI / interactive mode: a real listener on the requested port, kept
    // alive long enough for an external scrape, then a clean drain.
    server::AuditLog audit;
    server::AuditWal wal;
    if (const char* wal_path = std::getenv("XMLSEC_AUDIT_WAL");
        wal_path != nullptr && wal_path[0] != '\0') {
      server::AuditWal::VerifyReport recovered;
      if (Status s = wal.Open(wal_path, {}, &recovered); !s.ok()) {
        std::fprintf(stderr, "audit WAL: %s\n", s.ToString().c_str());
        return 1;
      }
      if (!recovered.clean()) {
        std::fprintf(stderr,
                     "audit WAL: truncated %llu torn byte(s), kept %llu "
                     "intact frame(s)\n",
                     static_cast<unsigned long long>(recovered.torn_bytes()),
                     static_cast<unsigned long long>(recovered.frames));
      }
      audit.AttachWal(&wal);
    }
    // WAL first, then set_audit_log: the attach binds WAL health into
    // the server's metrics registry.
    server.set_audit_log(&audit);

    // Reload sources: a manifest when configured, the built-in demo
    // repository otherwise.  Either way the candidate builds off to the
    // side and swaps atomically; a failed build leaves serving intact.
    const char* manifest = std::getenv("XMLSEC_MANIFEST");
    auto reload = [&]() -> Status {
      Result<std::shared_ptr<const server::Repository>> next =
          manifest != nullptr && manifest[0] != '\0'
              ? server::LoadRepositoryManifest(manifest, groups)
              : BuildRepository();
      if (!next.ok()) return next.status();
      server.SwapRepository(*next);
      return Status::OK();
    };

    server::ListenerConfig listener_config;
    listener_config.event_loops = event_loops;
    listener_config.reload_handler = reload;
    server::TcpHttpListener listener(&server, "demo.lab.example",
                                     listener_config);
    if (Status s = listener.Start(serve_port); !s.ok()) {
      std::fprintf(stderr, "listener: %s\n", s.ToString().c_str());
      return 1;
    }
    std::signal(SIGHUP, OnSighup);
    std::signal(SIGTERM, OnShutdown);
    std::signal(SIGINT, OnShutdown);
    std::printf("listening 127.0.0.1:%u\n", listener.port());
    std::fflush(stdout);
    // Poll so a SIGHUP/SIGTERM is honoured within ~200ms of delivery.
    const auto stop_at = std::chrono::steady_clock::now() +
                         std::chrono::seconds(serve_seconds);
    while (std::chrono::steady_clock::now() < stop_at &&
           !g_shutdown_requested) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (g_reload_requested) {
        g_reload_requested = 0;
        if (Status s = reload(); s.ok()) {
          // Keep the SIGHUP path visible in the same counters the admin
          // endpoint uses, so /healthz "reloads" covers both.
          server.metrics()
              ->GetCounter("xmlsec_listener_reloads_total",
                           "successful POST /admin/reload repository swaps")
              ->Inc();
          std::fprintf(stderr, "reload: ok\n");
        } else {
          server.metrics()
              ->GetCounter(
                  "xmlsec_listener_reload_failures_total",
                  "POST /admin/reload attempts rejected (build/validation "
                  "failure; the previous repository stays live)")
              ->Inc();
          std::fprintf(stderr, "reload failed (still serving previous "
                               "policy): %s\n",
                       s.ToString().c_str());
        }
      }
    }
    listener.Stop();
    if (wal.open()) wal.Close();
    std::printf("served %lld requests\n",
                static_cast<long long>(listener.requests_served()));
    return 0;
  }

  // 1. Tom (Foreign): the private paper is redacted.
  Send(server, "tom fetches CSlab.xml",
       "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
           server::Base64Encode("tom:tom-secret") + "\r\n\r\n",
       "130.100.50.8", "infosys.bld1.it");

  // 2. Carol (no Foreign membership): she sees the private paper too.
  Send(server, "carol fetches CSlab.xml",
       "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
           server::Base64Encode("carol:carol-secret") + "\r\n\r\n",
       "130.89.56.8", "admin.lab.com");

  // 3. Anonymous request: allowed, served the Public view.
  Send(server, "anonymous fetches CSlab.xml",
       "GET /CSlab.xml HTTP/1.0\r\n\r\n", "203.0.113.7", "cafe.example");

  // 4. Tom queries over his view: the query engine runs on the pruned
  //    document, so denied content is unreachable by construction.
  Send(server, "tom queries //title",
       "GET /CSlab.xml?query=%2F%2Ftitle HTTP/1.0\r\nAuthorization: Basic " +
           server::Base64Encode("tom:tom-secret") + "\r\n\r\n",
       "130.100.50.8", "infosys.bld1.it");

  // 5. Bad password: 401.
  Send(server, "wrong password",
       "GET /CSlab.xml HTTP/1.0\r\nAuthorization: Basic " +
           server::Base64Encode("tom:oops") + "\r\n\r\n",
       "130.100.50.8", "infosys.bld1.it");

  // 6. Unknown document: 404 (indistinguishable from a fully-denied one).
  Send(server, "missing document", "GET /Nothing.xml HTTP/1.0\r\n\r\n",
       "130.100.50.8", "infosys.bld1.it");

  // 7. The same server on a real TCP socket, with an audit trail.
  server::AuditLog audit;
  server.set_audit_log(&audit);
  server::TcpHttpListener listener(&server, "demo.lab.example");
  if (Status s = listener.Start(0); !s.ok()) {
    std::fprintf(stderr, "listener: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("==== live TCP demo on 127.0.0.1:%u ====\n", listener.port());
  auto live = server::FetchHttp(
      listener.port(), "GET /CSlab.xml?query=%2F%2Ftitle HTTP/1.0\r\n\r\n");
  if (live.ok()) {
    std::printf("%s\n", live->c_str());
  }
  listener.Stop();
  std::printf("==== audit trail ====\n");
  for (const server::AuditEntry& entry : audit.Entries()) {
    std::printf("%s\n", entry.ToString().c_str());
  }
  return 0;
}
