// Quickstart: the paper's running example, end to end.
//
// Reproduces, in one program, Figures 1-3 of "Securing XML Documents"
// (EDBT 2000): the laboratory DTD (Fig. 1), the Example 1 authorizations
// expressed as an XACL document, and the computation of user Tom's view
// (Example 2 / Fig. 3) via the security processor.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <functional>

#include "authz/processor.h"
#include "authz/xacl.h"
#include "workload/docgen.h"
#include "xml/dtd_parser.h"
#include "xml/dtd_tree.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/validator.h"

namespace {

using namespace xmlsec;  // NOLINT: example brevity

// CSlab.xml — an instance of the laboratory DTD (paper Fig. 3a).
constexpr char kCSlabXml[] = R"(<laboratory>
<project name="Access Models" type="internal">
<manager><fname>Eve</fname><lname>Smith</lname></manager>
<paper category="private"><title>Key escrow notes</title></paper>
<paper category="public"><title>Access control for XML</title></paper>
</project>
<project name="Web" type="public">
<manager><fname>Alan</fname><lname>Turing</lname></manager>
<paper category="internal"><title>Server design draft</title></paper>
<paper category="public"><title>Serving XML securely</title></paper>
</project>
</laboratory>)";

// The paper's Example 1, as an XACL document (§7).  The DTD's URI is
// laboratory.xml (schema level), the document's is CSlab.xml.
constexpr char kExample1Xacl[] = R"(<xacl base-uri="http://www.lab.com/">
  <authorization subject="Foreign" object="laboratory.xml"
      path='/laboratory//paper[./@category="private"]' sign="-" type="R"/>
  <authorization subject="Public" object="CSlab.xml"
      path='/laboratory//paper[./@category="public"]' sign="+" type="RW"/>
  <authorization subject="Admin" ip="130.89.56.8" object="CSlab.xml"
      path='project[./@type="internal"]' sign="+" type="R"/>
  <authorization subject="Public" sym="*.it" object="CSlab.xml"
      path='project[./@type="public"]/manager' sign="+" type="RW"/>
</xacl>)";

void PrintTree(const xml::Node& node, int depth) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  if (const auto* el = node.AsElement()) {
    std::printf("%s(%s)\n", indent.c_str(), el->tag().c_str());
    for (const auto& attr : el->attributes()) {
      std::printf("%s  [@%s = \"%s\"]\n", indent.c_str(),
                  attr->name().c_str(), attr->value().c_str());
    }
  } else if (node.IsText()) {
    std::printf("%s\"%s\"\n", indent.c_str(), node.NodeValue().c_str());
  }
  for (const auto& child : node.children()) {
    PrintTree(*child, depth + 1);
  }
}

}  // namespace

int main() {
  // --- Fig. 1: the laboratory DTD and its tree -------------------------
  std::printf("== Figure 1: laboratory DTD ==\n%s\n",
              workload::LaboratoryDtd().c_str());

  auto dtd_result = xml::ParseDtd(workload::LaboratoryDtd());
  if (!dtd_result.ok()) {
    std::fprintf(stderr, "DTD parse failed: %s\n",
                 dtd_result.status().ToString().c_str());
    return 1;
  }
  auto dtd = std::move(dtd_result).value();
  dtd->set_name("laboratory");
  std::printf("== Figure 1b: DTD tree representation ==\n%s\n",
              xml::DtdTreeString(*dtd).c_str());

  // --- Parse + validate the document (processor step 1) ----------------
  xml::ParseOptions parse_options;
  parse_options.strip_ignorable_whitespace = true;  // pretty-print noise
  auto doc_result = xml::ParseDocument(kCSlabXml, parse_options);
  if (!doc_result.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 doc_result.status().ToString().c_str());
    return 1;
  }
  auto doc = std::move(doc_result).value();
  doc->set_dtd(std::move(dtd));
  if (Status s = xml::ValidateDocument(doc.get()); !s.ok()) {
    std::fprintf(stderr, "validation failed: %s\n", s.ToString().c_str());
    return 1;
  }
  doc->Reindex();
  std::printf("== Figure 3a: CSlab.xml document tree ==\n");
  PrintTree(*doc->root(), 0);

  // --- Example 1: parse the XACL ---------------------------------------
  auto xacl = authz::ParseXacl(kExample1Xacl);
  if (!xacl.ok()) {
    std::fprintf(stderr, "XACL parse failed: %s\n",
                 xacl.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Example 1 authorizations ==\n");
  std::vector<authz::Authorization> instance;
  std::vector<authz::Authorization> schema;
  for (const authz::Authorization& auth : xacl->authorizations) {
    std::printf("  %s\n", auth.ToString().c_str());
    if (auth.object.uri == "http://www.lab.com/laboratory.xml") {
      schema.push_back(auth);
    } else {
      instance.push_back(auth);
    }
  }

  // --- Example 2 / Fig. 3b: Tom's view ----------------------------------
  authz::GroupStore groups;
  if (Status s = groups.AddMembership("Tom", "Foreign"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  authz::Requester tom{"Tom", "130.100.50.8", "infosys.bld1.it"};
  std::printf("\nRequester: %s, member of Foreign\n",
              tom.ToString().c_str());

  authz::SecurityProcessor processor(&groups, {});
  auto view = processor.ComputeView(*doc, instance, schema, tom);
  if (!view.ok()) {
    std::fprintf(stderr, "view computation failed: %s\n",
                 view.status().ToString().c_str());
    return 1;
  }

  std::printf("\n== Figure 3b: Tom's view ==\n");
  PrintTree(*view->document->root(), 0);

  xml::SerializeOptions options;
  options.indent = 2;
  options.doctype = xml::DoctypeMode::kInternal;
  std::printf("\n== Served document (with loosened DTD) ==\n%s\n",
              view->ToXml(options).c_str());

  std::printf("stats: %lld/%lld nodes visible, %lld skeleton tags\n",
              static_cast<long long>(view->stats.prune.nodes_after),
              static_cast<long long>(view->stats.prune.nodes_before),
              static_cast<long long>(view->stats.prune.skeleton_elements));
  return 0;
}
