// Write enforcement: the paper's §8 "write and update operations"
// future-work item, realized with authz::UpdateProcessor.
//
// A shared project file is edited by three parties:
//   * the manager may change anything in her project;
//   * members may edit paper titles but not the project's funding;
//   * everybody's edits are checked against write authorizations and the
//     result is re-validated against the DTD — an edit that would break
//     the schema is rejected even when permitted.
//
// Build & run:  ./build/examples/secure_editor

#include <cstdio>

#include "authz/update.h"
#include "authz/xacl.h"
#include "workload/docgen.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/validator.h"

namespace {

using namespace xmlsec;  // NOLINT: example brevity

constexpr char kDoc[] =
    "<laboratory>"
    "<project name=\"Web\" type=\"public\">"
    "<manager><fname>Alan</fname><lname>Turing</lname></manager>"
    "<paper category=\"public\"><title>Draft title</title></paper>"
    "<fund sponsor=\"acme\">50000</fund>"
    "</project>"
    "</laboratory>";

constexpr char kWritePolicy[] = R"(<xacl>
  <authorization subject="alan" object="lab.xml"
      path='//project[./@name="Web"]' sign="+" type="R" action="write"/>
  <authorization subject="Members" object="lab.xml"
      path='//project[./@name="Web"]//paper' sign="+" type="R"
      action="write"/>
  <authorization subject="Members" object="lab.xml"
      path="//fund" sign="-" type="R" action="write"/>
</xacl>)";

void Try(const authz::UpdateProcessor& processor, const xml::Document& doc,
         const std::vector<authz::Authorization>& auths,
         const authz::Requester& rq, const char* label,
         const authz::UpdateOp& op) {
  std::vector<authz::UpdateOp> ops = {op};
  auto outcome = processor.Apply(doc, auths, {}, rq, ops);
  std::printf("%-46s [%s] -> %s\n", label, rq.user.c_str(),
              outcome.ok() ? "APPLIED" : outcome.status().ToString().c_str());
  if (outcome.ok()) {
    xml::SerializeOptions options;
    options.xml_declaration = false;
    std::printf("    %s\n",
                xml::SerializeDocument(*outcome->document, options).c_str());
  }
}

}  // namespace

int main() {
  auto doc_result = xml::ParseDocument(kDoc);
  if (!doc_result.ok()) {
    std::fprintf(stderr, "%s\n", doc_result.status().ToString().c_str());
    return 1;
  }
  auto doc = std::move(doc_result).value();
  auto dtd = xml::ParseDtd(workload::LaboratoryDtd());
  (*dtd)->set_name("laboratory");
  doc->set_dtd(std::move(dtd).value());
  if (Status s = xml::ValidateDocument(doc.get()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  doc->Reindex();

  auto xacl = authz::ParseXacl(kWritePolicy);
  if (!xacl.ok()) {
    std::fprintf(stderr, "%s\n", xacl.status().ToString().c_str());
    return 1;
  }

  authz::GroupStore groups;
  if (Status s = groups.AddMembership("grace", "Members"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  authz::Requester alan{"alan", "10.0.0.2", "alan.lab.example"};
  authz::Requester grace{"grace", "10.0.0.3", "grace.lab.example"};

  authz::UpdateProcessor processor(&groups);

  authz::UpdateOp retitle;
  retitle.kind = authz::UpdateOpKind::kSetText;
  retitle.target = "//paper/title";
  retitle.value = "Serving XML securely";
  Try(processor, *doc, xacl->authorizations, grace,
      "member renames the paper", retitle);

  authz::UpdateOp raise_funds;
  raise_funds.kind = authz::UpdateOpKind::kSetText;
  raise_funds.target = "//fund";
  raise_funds.value = "90000";
  Try(processor, *doc, xacl->authorizations, grace,
      "member tries to change funding", raise_funds);
  Try(processor, *doc, xacl->authorizations, alan,
      "manager changes funding", raise_funds);

  authz::UpdateOp add_member;
  add_member.kind = authz::UpdateOpKind::kInsertChild;
  add_member.target = "//project";
  add_member.before = "paper";  // Content model: (manager,member*,paper*,fund?)
  add_member.fragment = "<member><fname>Grace</fname>"
                        "<lname>Hopper</lname></member>";
  Try(processor, *doc, xacl->authorizations, alan,
      "manager adds a member (schema-checked)", add_member);

  authz::UpdateOp break_schema;
  break_schema.kind = authz::UpdateOpKind::kInsertChild;
  break_schema.target = "//project";
  break_schema.fragment = "<gadget/>";
  Try(processor, *doc, xacl->authorizations, alan,
      "manager inserts an undeclared element", break_schema);

  authz::UpdateOp delete_project;
  delete_project.kind = authz::UpdateOpKind::kDeleteNode;
  delete_project.target = "//project";
  Try(processor, *doc, xacl->authorizations, grace,
      "member tries to delete the project", delete_project);
  return 0;
}
