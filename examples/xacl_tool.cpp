// xacl_tool: command-line front end to the security processor.
//
// Usage:
//   xacl_tool view    <doc.xml> <doc-uri> <dtd.dtd> <dtd-uri> <xacl.xml>
//                     <user[:group,group...]> <ip> <symbolic-name>
//   xacl_tool explain <doc.xml> <doc-uri> <dtd.dtd> <dtd-uri> <xacl.xml>
//                     <user[:groups]> <ip> <sym> <node-xpath>
//   xacl_tool lint    <doc.xml> <doc-uri> <dtd.dtd> <dtd-uri> <xacl.xml>
//   xacl_tool analyze <dtd.dtd> <dtd-uri> <xacl.xml> [<doc-uri>]
//   xacl_tool compile <dtd.dtd> <dtd-uri> <xacl.xml> [<doc-uri>]
//   xacl_tool rewrite <dtd.dtd> <dtd-uri> <xacl.xml> <query> [<doc-uri>]
//   xacl_tool check   <xacl.xml>
//   xacl_tool loosen  <dtd.dtd>
//   xacl_tool metrics <doc.xml> <doc-uri> <dtd.dtd> <dtd-uri> <xacl.xml>
//                     <user[:groups]> <ip> <sym> [repeat]
//   xacl_tool audit-verify <wal-file> [--print]
//
//   view     computes and prints the requester's view of the document
//   explain  reports why one node is (in)visible to the requester
//   lint     static policy checks (dead targets, bad paths, ...)
//   analyze  static schema-only policy analysis: satisfiability,
//            shadowing, conflicts, and the per-subject decision
//            coverage table — no document instance needed
//   compile  builds the schema-compiled policy automaton and prints the
//            static decidability report: which authorizations resolve by
//            table lookup and which stay on the per-request XPath path
//   rewrite  compiles the policy automaton, prints its decidability
//            header, and rewrites <query> into its policy-safe form
//            (accessibility guards folded into every location step) —
//            or reports why the query must stay on the materialized
//            path
//   check    validates an XACL file and prints its authorizations
//   loosen   prints the loosened version of a DTD (paper §6.2)
//   metrics  runs the request through the full secure document server
//            `repeat` times (default 16, half with the view cache warm)
//            and prints the resulting observability registry snapshot
//            in Prometheus text format — per-stage latency histograms,
//            cache hit/miss, per-status totals
//   audit-verify
//            replays a durable-audit WAL frame by frame, validates each
//            CRC, and reports intact frames vs. torn/corrupt tail bytes;
//            exits non-zero on any torn or corrupt frame so CI and
//            operators can attest the trail after a crash
//
// Build & run:  ./build/examples/xacl_tool check policy.xml

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/analyzer.h"
#include "analysis/policy_automaton.h"
#include "authz/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/audit_wal.h"
#include "server/document_server.h"
#include "server/repository.h"
#include "server/user_directory.h"
#include "authz/lint.h"
#include "rewrite/rewriter.h"
#include "authz/loosening.h"
#include "authz/processor.h"
#include "authz/xacl.h"
#include "common/str_util.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/validator.h"

namespace {

using namespace xmlsec;  // NOLINT: example brevity

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(std::string("cannot open '") + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunCheck(const char* xacl_path) {
  auto text = ReadFile(xacl_path);
  if (!text.ok()) return Fail(text.status());
  auto xacl = authz::ParseXacl(*text);
  if (!xacl.ok()) return Fail(xacl.status());
  std::printf("%s: OK, %zu authorization(s)\n", xacl_path,
              xacl->authorizations.size());
  for (const authz::Authorization& auth : xacl->authorizations) {
    std::printf("  %s\n", auth.ToString().c_str());
  }
  return 0;
}

int RunLoosen(const char* dtd_path) {
  auto text = ReadFile(dtd_path);
  if (!text.ok()) return Fail(text.status());
  auto dtd = xml::ParseDtd(*text);
  if (!dtd.ok()) return Fail(dtd.status());
  std::printf("%s", xml::SerializeDtd(authz::LoosenDtd(**dtd)).c_str());
  return 0;
}

/// Shared state for the document-bound subcommands.
struct LoadedScenario {
  std::unique_ptr<xml::Document> doc;
  std::vector<authz::Authorization> instance;
  std::vector<authz::Authorization> schema;
};

Result<LoadedScenario> LoadScenario(char** argv) {
  auto doc_text = ReadFile(argv[2]);
  if (!doc_text.ok()) return doc_text.status();
  const std::string doc_uri = argv[3];
  auto dtd_text = ReadFile(argv[4]);
  if (!dtd_text.ok()) return dtd_text.status();
  const std::string dtd_uri = argv[5];
  auto xacl_text = ReadFile(argv[6]);
  if (!xacl_text.ok()) return xacl_text.status();

  LoadedScenario out;
  XMLSEC_ASSIGN_OR_RETURN(out.doc, xml::ParseDocument(*doc_text));
  XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<xml::Dtd> dtd,
                          xml::ParseDtd(*dtd_text));
  if (out.doc->root() != nullptr && dtd->name().empty()) {
    dtd->set_name(out.doc->root()->tag());
  }
  out.doc->set_dtd(std::move(dtd));
  XMLSEC_RETURN_IF_ERROR(xml::ValidateDocument(out.doc.get()));
  out.doc->Reindex();

  XMLSEC_ASSIGN_OR_RETURN(authz::XaclFile xacl,
                          authz::ParseXacl(*xacl_text));
  for (authz::Authorization& auth : xacl.authorizations) {
    if (auth.object.uri == dtd_uri) {
      out.schema.push_back(std::move(auth));
    } else if (auth.object.uri == doc_uri) {
      out.instance.push_back(std::move(auth));
    } else {
      std::fprintf(stderr, "note: ignoring authorization on '%s'\n",
                   auth.object.uri.c_str());
    }
  }
  return out;
}

authz::Requester ParseRequester(char** argv, authz::GroupStore* groups,
                                Status* status) {
  std::vector<std::string> user_spec = SplitString(argv[7], ':');
  authz::Requester rq;
  rq.user = user_spec[0];
  rq.ip = argv[8];
  rq.sym = argv[9];
  if (user_spec.size() > 1) {
    for (const std::string& group : SplitString(user_spec[1], ',')) {
      Status s = groups->AddMembership(rq.user, group);
      if (!s.ok()) *status = s;
    }
  }
  return rq;
}

int RunLint(int argc, char** argv) {
  if (argc != 7) {
    std::fprintf(stderr,
                 "usage: xacl_tool lint <doc.xml> <doc-uri> <dtd.dtd> "
                 "<dtd-uri> <xacl.xml>\n");
    return 2;
  }
  auto scenario = LoadScenario(argv);
  if (!scenario.ok()) return Fail(scenario.status());
  authz::GroupStore groups;
  auto findings = authz::LintPolicy(scenario->instance, scenario->schema,
                                    groups, scenario->doc.get(),
                                    scenario->doc->dtd());
  // Subjects are declared per deployment, not in the XACL; skip the
  // unknown-subject advisories in this offline tool.
  std::vector<authz::LintFinding> shown;
  for (authz::LintFinding& finding : findings) {
    if (finding.code != "unknown-subject") shown.push_back(std::move(finding));
  }
  std::printf("%s", authz::LintReport(shown).c_str());
  for (const authz::LintFinding& finding : shown) {
    if (finding.severity == authz::LintSeverity::kError) return 1;
  }
  return 0;
}

int RunAnalyze(int argc, char** argv) {
  if (argc != 5 && argc != 6) {
    std::fprintf(stderr,
                 "usage: xacl_tool analyze <dtd.dtd> <dtd-uri> <xacl.xml> "
                 "[<doc-uri>]\n");
    return 2;
  }
  auto dtd_text = ReadFile(argv[2]);
  if (!dtd_text.ok()) return Fail(dtd_text.status());
  auto dtd = xml::ParseDtd(*dtd_text);
  if (!dtd.ok()) return Fail(dtd.status());
  const std::string dtd_uri = argv[3];
  auto xacl_text = ReadFile(argv[4]);
  if (!xacl_text.ok()) return Fail(xacl_text.status());
  auto xacl = authz::ParseXacl(*xacl_text);
  if (!xacl.ok()) return Fail(xacl.status());
  const std::string doc_uri = argc == 6 ? argv[5] : "";

  std::vector<authz::Authorization> instance;
  std::vector<authz::Authorization> schema;
  for (authz::Authorization& auth : xacl->authorizations) {
    if (auth.object.uri == dtd_uri) {
      schema.push_back(std::move(auth));
    } else if (doc_uri.empty() || auth.object.uri == doc_uri) {
      // Without a doc URI, every non-schema authorization is assumed to
      // protect an instance of this DTD.
      instance.push_back(std::move(auth));
    } else {
      std::fprintf(stderr, "note: ignoring authorization on '%s'\n",
                   auth.object.uri.c_str());
    }
  }

  authz::GroupStore groups;
  // Structural policy errors (weak schema-level authorizations,
  // unparsable paths, inverted validity windows) must gate an automated
  // analyze step too — without this, a CI pipeline running only
  // `analyze` exits 0 on a policy the server would reject outright.
  int exit_code = 0;
  std::vector<authz::LintFinding> lint_errors;
  for (authz::LintFinding& finding :
       authz::LintPolicy(instance, schema, groups, nullptr, dtd->get())) {
    if (finding.severity == authz::LintSeverity::kError) {
      lint_errors.push_back(std::move(finding));
    }
  }
  if (!lint_errors.empty()) {
    std::printf("%s", authz::LintReport(lint_errors).c_str());
    exit_code = 1;
  }
  analysis::PolicyAnalysis analysis = analysis::AnalyzePolicy(
      instance, schema, groups, **dtd, analysis::AnalyzerOptions{});
  std::printf("%s", analysis::AnalysisReport(analysis).c_str());
  for (const authz::LintFinding& finding : analysis.findings) {
    if (finding.severity == authz::LintSeverity::kError) exit_code = 1;
  }
  return exit_code;
}

int RunCompile(int argc, char** argv) {
  if (argc != 5 && argc != 6) {
    std::fprintf(stderr,
                 "usage: xacl_tool compile <dtd.dtd> <dtd-uri> <xacl.xml> "
                 "[<doc-uri>]\n");
    return 2;
  }
  auto dtd_text = ReadFile(argv[2]);
  if (!dtd_text.ok()) return Fail(dtd_text.status());
  auto dtd = xml::ParseDtd(*dtd_text);
  if (!dtd.ok()) return Fail(dtd.status());
  const std::string dtd_uri = argv[3];
  auto xacl_text = ReadFile(argv[4]);
  if (!xacl_text.ok()) return Fail(xacl_text.status());
  auto xacl = authz::ParseXacl(*xacl_text);
  if (!xacl.ok()) return Fail(xacl.status());
  const std::string doc_uri = argc == 6 ? argv[5] : "";

  std::vector<authz::Authorization> instance;
  std::vector<authz::Authorization> schema;
  for (authz::Authorization& auth : xacl->authorizations) {
    if (auth.object.uri == dtd_uri) {
      schema.push_back(std::move(auth));
    } else if (doc_uri.empty() || auth.object.uri == doc_uri) {
      instance.push_back(std::move(auth));
    } else {
      std::fprintf(stderr, "note: ignoring authorization on '%s'\n",
                   auth.object.uri.c_str());
    }
  }

  auto automaton =
      analysis::PolicyAutomaton::Compile(**dtd, instance, schema);
  if (!automaton.ok()) return Fail(automaton.status());
  std::printf("%s", (*automaton)->Report().c_str());
  const analysis::AutomatonStats& stats = (*automaton)->stats();
  std::fprintf(stderr,
               "compiled: %zu states, %zu transitions; %zu decidable / "
               "%zu partially-decidable / %zu opaque authorization(s)\n",
               stats.states, stats.transitions, stats.decidable_auths,
               stats.partial_auths, stats.opaque_auths);
  return 0;
}

int RunRewrite(int argc, char** argv) {
  if (argc != 6 && argc != 7) {
    std::fprintf(stderr,
                 "usage: xacl_tool rewrite <dtd.dtd> <dtd-uri> <xacl.xml> "
                 "<query> [<doc-uri>]\n");
    return 2;
  }
  auto dtd_text = ReadFile(argv[2]);
  if (!dtd_text.ok()) return Fail(dtd_text.status());
  auto dtd = xml::ParseDtd(*dtd_text);
  if (!dtd.ok()) return Fail(dtd.status());
  const std::string dtd_uri = argv[3];
  auto xacl_text = ReadFile(argv[4]);
  if (!xacl_text.ok()) return Fail(xacl_text.status());
  auto xacl = authz::ParseXacl(*xacl_text);
  if (!xacl.ok()) return Fail(xacl.status());
  const std::string query = argv[5];
  const std::string doc_uri = argc == 7 ? argv[6] : "";

  std::vector<authz::Authorization> instance;
  std::vector<authz::Authorization> schema;
  for (authz::Authorization& auth : xacl->authorizations) {
    if (auth.object.uri == dtd_uri) {
      schema.push_back(std::move(auth));
    } else if (doc_uri.empty() || auth.object.uri == doc_uri) {
      instance.push_back(std::move(auth));
    } else {
      std::fprintf(stderr, "note: ignoring authorization on '%s'\n",
                   auth.object.uri.c_str());
    }
  }

  auto automaton =
      analysis::PolicyAutomaton::Compile(**dtd, instance, schema);
  if (!automaton.ok()) return Fail(automaton.status());
  const analysis::AutomatonStats& stats = (*automaton)->stats();
  std::printf("policy: %zu states, %zu transitions; %zu decidable / "
              "%zu partially-decidable / %zu opaque authorization(s)\n",
              stats.states, stats.transitions, stats.decidable_auths,
              stats.partial_auths, stats.opaque_auths);

  rewrite::QueryRewriter rewriter(std::move(*automaton));
  auto rewritten = rewriter.Rewrite(query);
  if (!rewritten.ok()) return Fail(rewritten.status());
  if (!rewritten->ok()) {
    std::printf(
        "unsupported: %s (the server serves this query through the "
        "materialized view)\n",
        std::string(rewrite::UnsupportedReasonToString(rewritten->unsupported))
            .c_str());
    return 1;
  }
  std::printf("source:    %s\nrewritten: %s\n", rewritten->source.c_str(),
              rewritten->expr->ToString().c_str());
  return 0;
}

int RunExplain(int argc, char** argv) {
  if (argc != 11) {
    std::fprintf(stderr,
                 "usage: xacl_tool explain <doc.xml> <doc-uri> <dtd.dtd> "
                 "<dtd-uri> <xacl.xml> <user[:groups]> <ip> <sym> "
                 "<node-xpath>\n");
    return 2;
  }
  auto scenario = LoadScenario(argv);
  if (!scenario.ok()) return Fail(scenario.status());
  authz::GroupStore groups;
  Status group_status;
  authz::Requester rq = ParseRequester(argv, &groups, &group_status);
  if (!group_status.ok()) return Fail(group_status);
  auto report = authz::ExplainPath(*scenario->doc, scenario->instance,
                                   scenario->schema, rq, groups,
                                   authz::PolicyOptions{}, argv[10]);
  if (!report.ok()) return Fail(report.status());
  std::printf("requester %s\n%s", rq.ToString().c_str(), report->c_str());
  return 0;
}

int RunView(int argc, char** argv) {
  if (argc != 10) {
    std::fprintf(stderr,
                 "usage: xacl_tool view <doc.xml> <doc-uri> <dtd.dtd> "
                 "<dtd-uri> <xacl.xml> <user[:groups]> <ip> <sym>\n");
    return 2;
  }
  auto doc_text = ReadFile(argv[2]);
  if (!doc_text.ok()) return Fail(doc_text.status());
  const std::string doc_uri = argv[3];
  auto dtd_text = ReadFile(argv[4]);
  if (!dtd_text.ok()) return Fail(dtd_text.status());
  const std::string dtd_uri = argv[5];
  auto xacl_text = ReadFile(argv[6]);
  if (!xacl_text.ok()) return Fail(xacl_text.status());

  auto doc = xml::ParseDocument(*doc_text);
  if (!doc.ok()) return Fail(doc.status());
  auto dtd = xml::ParseDtd(*dtd_text);
  if (!dtd.ok()) return Fail(dtd.status());
  if ((*doc)->root() != nullptr && (*dtd)->name().empty()) {
    (*dtd)->set_name((*doc)->root()->tag());
  }
  (*doc)->set_dtd(std::move(*dtd));
  if (Status s = xml::ValidateDocument(doc->get()); !s.ok()) return Fail(s);
  (*doc)->Reindex();

  auto xacl = authz::ParseXacl(*xacl_text);
  if (!xacl.ok()) return Fail(xacl.status());
  std::vector<authz::Authorization> instance;
  std::vector<authz::Authorization> schema;
  for (const authz::Authorization& auth : xacl->authorizations) {
    if (auth.object.uri == dtd_uri) {
      schema.push_back(auth);
    } else if (auth.object.uri == doc_uri) {
      instance.push_back(auth);
    } else {
      std::fprintf(stderr, "note: ignoring authorization on '%s'\n",
                   auth.object.uri.c_str());
    }
  }

  // "user:group1,group2" declares the requester's memberships inline.
  authz::GroupStore groups;
  std::vector<std::string> user_spec = SplitString(argv[7], ':');
  authz::Requester rq;
  rq.user = user_spec[0];
  rq.ip = argv[8];
  rq.sym = argv[9];
  if (user_spec.size() > 1) {
    for (const std::string& group : SplitString(user_spec[1], ',')) {
      if (Status s = groups.AddMembership(rq.user, group); !s.ok()) {
        return Fail(s);
      }
    }
  }

  authz::SecurityProcessor processor(&groups, {});
  auto view = processor.ComputeView(**doc, instance, schema, rq);
  if (!view.ok()) return Fail(view.status());
  if (view->empty()) {
    std::printf("(the requester sees nothing)\n");
    return 0;
  }
  xml::SerializeOptions options;
  options.indent = 2;
  options.doctype = xml::DoctypeMode::kInternal;
  std::printf("%s", view->ToXml(options).c_str());
  std::fprintf(stderr, "view: %lld of %lld nodes visible\n",
               static_cast<long long>(view->stats.prune.nodes_after),
               static_cast<long long>(view->stats.prune.nodes_before));
  return 0;
}

int RunMetrics(int argc, char** argv) {
  if (argc != 10 && argc != 11) {
    std::fprintf(stderr,
                 "usage: xacl_tool metrics <doc.xml> <doc-uri> <dtd.dtd> "
                 "<dtd-uri> <xacl.xml> <user[:groups]> <ip> <sym> "
                 "[repeat]\n");
    return 2;
  }
  auto doc_text = ReadFile(argv[2]);
  if (!doc_text.ok()) return Fail(doc_text.status());
  auto dtd_text = ReadFile(argv[4]);
  if (!dtd_text.ok()) return Fail(dtd_text.status());
  auto xacl_text = ReadFile(argv[6]);
  if (!xacl_text.ok()) return Fail(xacl_text.status());
  const int repeat = argc == 11 ? std::max(1, std::atoi(argv[10])) : 16;

  // Assemble the full §7 serving stack in memory so the scrape shows
  // exactly what a production scrape would: stage histograms, cache
  // hit/miss, per-status totals.
  server::Repository repo;
  if (Status s = repo.AddDtd(argv[5], *dtd_text); !s.ok()) return Fail(s);
  if (Status s = repo.AddDocument(argv[3], *doc_text, argv[5]); !s.ok()) {
    return Fail(s);
  }
  if (Status s = repo.AddXacl(*xacl_text); !s.ok()) return Fail(s);

  server::UserDirectory users;
  authz::GroupStore groups;
  Status group_status;
  authz::Requester rq = ParseRequester(argv, &groups, &group_status);
  if (!group_status.ok()) return Fail(group_status);
  std::string password;
  if (!rq.user.empty() && rq.user != "anonymous") {
    password = "metrics-probe";
    if (Status s = users.CreateUser(rq.user, password); !s.ok()) {
      return Fail(s);
    }
  }

  obs::MetricsRegistry registry;
  server::ServerConfig config;
  config.metrics = &registry;
  config.view_cache_capacity = 16;
  server::SecureDocumentServer server(&repo, &users, &groups, config);
  server::AuditLog audit;
  server.set_audit_log(&audit);
  // Trace every request so the audit trail carries span breakdowns.
  obs::SetSlowTraceThresholdMs(0);

  server::ServerRequest request;
  request.user = rq.user == "anonymous" ? "" : rq.user;
  request.password = password;
  request.ip = rq.ip;
  request.sym = rq.sym;
  request.uri = argv[3];
  int status = 0;
  for (int i = 0; i < repeat; ++i) {
    server::ServerResponse response = server.Handle(request);
    status = response.http_status;
  }
  if (status != 200) {
    std::fprintf(stderr, "note: request answered HTTP %d\n", status);
  }

  std::printf("%s", registry.RenderPrometheus().c_str());
  std::fprintf(stderr, "---- slow-request traces (audit trail) ----\n");
  for (const server::AuditEntry& entry : audit.Entries()) {
    std::fprintf(stderr, "%s\n", entry.ToString().c_str());
  }
  return status == 200 ? 0 : 1;
}

int RunAuditVerify(int argc, char** argv) {
  if (argc != 3 && argc != 4) {
    std::fprintf(stderr,
                 "usage: xacl_tool audit-verify <wal-file> [--print]\n");
    return 2;
  }
  const bool print = argc == 4 && std::string(argv[3]) == "--print";
  std::vector<std::string> payloads;
  auto report =
      server::AuditWal::Verify(argv[2], print ? &payloads : nullptr);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s: %llu frame(s), %llu payload byte(s), %llu/%llu file "
              "byte(s) intact\n",
              argv[2], static_cast<unsigned long long>(report->frames),
              static_cast<unsigned long long>(report->payload_bytes),
              static_cast<unsigned long long>(report->valid_bytes),
              static_cast<unsigned long long>(report->file_bytes));
  for (const std::string& payload : payloads) {
    std::printf("  %s\n", payload.c_str());
  }
  if (!report->clean()) {
    std::fprintf(stderr, "error: %llu torn byte(s) at offset %llu (%s)\n",
                 static_cast<unsigned long long>(report->torn_bytes()),
                 static_cast<unsigned long long>(report->valid_bytes),
                 report->crc_mismatch ? "CRC mismatch or corrupt length"
                                      : "short frame, crash mid-write");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc >= 2 ? argv[1] : "";
  if (mode == "check" && argc == 3) return RunCheck(argv[2]);
  if (mode == "loosen" && argc == 3) return RunLoosen(argv[2]);
  if (mode == "view") return RunView(argc, argv);
  if (mode == "lint") return RunLint(argc, argv);
  if (mode == "analyze") return RunAnalyze(argc, argv);
  if (mode == "compile") return RunCompile(argc, argv);
  if (mode == "rewrite") return RunRewrite(argc, argv);
  if (mode == "explain") return RunExplain(argc, argv);
  if (mode == "metrics") return RunMetrics(argc, argv);
  if (mode == "audit-verify") return RunAuditVerify(argc, argv);
  std::fprintf(stderr,
               "usage:\n"
               "  xacl_tool check <xacl.xml>\n"
               "  xacl_tool loosen <dtd.dtd>\n"
               "  xacl_tool view <doc.xml> <doc-uri> <dtd.dtd> <dtd-uri> "
               "<xacl.xml> <user[:groups]> <ip> <sym>\n"
               "  xacl_tool lint <doc.xml> <doc-uri> <dtd.dtd> <dtd-uri> "
               "<xacl.xml>\n"
               "  xacl_tool analyze <dtd.dtd> <dtd-uri> <xacl.xml> "
               "[<doc-uri>]\n"
               "  xacl_tool compile <dtd.dtd> <dtd-uri> <xacl.xml> "
               "[<doc-uri>]\n"
               "  xacl_tool rewrite <dtd.dtd> <dtd-uri> <xacl.xml> "
               "<query> [<doc-uri>]\n"
               "  xacl_tool explain <doc.xml> <doc-uri> <dtd.dtd> <dtd-uri> "
               "<xacl.xml> <user[:groups]> <ip> <sym> <node-xpath>\n"
               "  xacl_tool metrics <doc.xml> <doc-uri> <dtd.dtd> <dtd-uri> "
               "<xacl.xml> <user[:groups]> <ip> <sym> [repeat]\n"
               "  xacl_tool audit-verify <wal-file> [--print]\n");
  return 2;
}
