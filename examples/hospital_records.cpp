// Domain scenario: selective release of hospital records.
//
// The motivating use case of the paper's introduction — one XML source,
// many audiences — mapped onto a richer policy than the running example:
//
//   * clinicians on the ward network see clinical data;
//   * the billing department sees billing data only, wherever it appears;
//   * a named specialist is granted one patient's psychiatric notes,
//     which are otherwise denied even to clinicians (exception via
//     most-specific-object + most-specific-subject);
//   * patients (group per patient) see their own record but never staff
//     annotations;
//   * everything is closed by default.
//
// Build & run:  ./build/examples/hospital_records

#include <cstdio>

#include "authz/processor.h"
#include "authz/xacl.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/validator.h"

namespace {

using namespace xmlsec;  // NOLINT: example brevity

constexpr char kWardDtd[] = R"(
<!ELEMENT ward (patient+)>
<!ATTLIST ward id CDATA #REQUIRED>
<!ELEMENT patient (name, clinical, billing)>
<!ATTLIST patient mrn ID #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT clinical (diagnosis*, note*, psychiatric?)>
<!ELEMENT diagnosis (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ATTLIST note author CDATA #REQUIRED>
<!ELEMENT psychiatric (note*)>
<!ELEMENT billing (item*)>
<!ELEMENT item (#PCDATA)>
<!ATTLIST item amount CDATA #REQUIRED>
)";

constexpr char kWardXml[] = R"(<ward id="W3">
<patient mrn="p1001">
<name>Maria Rossi</name>
<clinical>
<diagnosis>Hypertension</diagnosis>
<note author="dr.house">Monitor weekly.</note>
<psychiatric><note author="dr.frasier">Anxiety episodes.</note></psychiatric>
</clinical>
<billing><item amount="120">Consultation</item></billing>
</patient>
<patient mrn="p1002">
<name>John Doe</name>
<clinical>
<diagnosis>Fracture</diagnosis>
<note author="dr.house">Cast for 6 weeks.</note>
</clinical>
<billing><item amount="480">Radiology</item></billing>
</patient>
</ward>)";

// The policy, in XACL.  ward.dtd authorizations are schema level.
constexpr char kPolicy[] = R"(<xacl>
  <authorization subject="Clinicians" ip="10.3.*" object="ward.xml"
      path="/ward" sign="+" type="RW"/>
  <authorization subject="Clinicians" object="ward.dtd"
      path="//psychiatric" sign="-" type="R"/>
  <authorization subject="dr.frasier" object="ward.xml"
      path='//patient[./@mrn="p1001"]//psychiatric' sign="+" type="R"/>
  <authorization subject="Billing" object="ward.xml"
      path="//billing" sign="+" type="R"/>
  <authorization subject="Billing" object="ward.xml"
      path="//patient/name" sign="+" type="L"/>
  <authorization subject="PatientP1001" object="ward.xml"
      path='//patient[./@mrn="p1001"]' sign="+" type="RW"/>
  <authorization subject="PatientP1001" object="ward.dtd"
      path="//note/@author" sign="-" type="L"/>
  <authorization subject="PatientP1001" object="ward.dtd"
      path="//psychiatric" sign="-" type="R"/>
</xacl>)";

void ShowView(const char* title, const authz::SecurityProcessor& processor,
              const xml::Document& doc,
              const std::vector<authz::Authorization>& instance,
              const std::vector<authz::Authorization>& schema,
              const authz::Requester& rq) {
  auto view = processor.ComputeView(doc, instance, schema, rq);
  std::printf("---- %s  %s ----\n", title, rq.ToString().c_str());
  if (!view.ok()) {
    std::printf("error: %s\n\n", view.status().ToString().c_str());
    return;
  }
  if (view->empty()) {
    std::printf("(nothing visible)\n\n");
    return;
  }
  xml::SerializeOptions options;
  options.xml_declaration = false;
  options.indent = 2;
  std::printf("%s\n", view->ToXml(options).c_str());
}

}  // namespace

int main() {
  xml::ParseOptions parse_options;
  parse_options.strip_ignorable_whitespace = true;
  auto doc_result = xml::ParseDocument(kWardXml, parse_options);
  if (!doc_result.ok()) {
    std::fprintf(stderr, "parse: %s\n",
                 doc_result.status().ToString().c_str());
    return 1;
  }
  auto doc = std::move(doc_result).value();
  auto dtd_result = xml::ParseDtd(kWardDtd);
  if (!dtd_result.ok()) {
    std::fprintf(stderr, "dtd: %s\n", dtd_result.status().ToString().c_str());
    return 1;
  }
  (*dtd_result)->set_name("ward");
  doc->set_dtd(std::move(dtd_result).value());
  if (Status s = xml::ValidateDocument(doc.get()); !s.ok()) {
    std::fprintf(stderr, "validate: %s\n", s.ToString().c_str());
    return 1;
  }
  doc->Reindex();

  auto xacl = authz::ParseXacl(kPolicy);
  if (!xacl.ok()) {
    std::fprintf(stderr, "xacl: %s\n", xacl.status().ToString().c_str());
    return 1;
  }
  std::vector<authz::Authorization> instance;
  std::vector<authz::Authorization> schema;
  for (const authz::Authorization& auth : xacl->authorizations) {
    (auth.object.uri == "ward.dtd" ? schema : instance).push_back(auth);
  }

  authz::GroupStore groups;
  for (auto [member, group] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"dr.house", "Clinicians"},
           {"dr.frasier", "Clinicians"},
           {"nina", "Billing"},
           {"maria", "PatientP1001"}}) {
    if (Status s = groups.AddMembership(member, group); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  authz::SecurityProcessor processor(&groups, {});

  // A clinician on the ward network: clinical view, but the psychiatric
  // section is redacted by the schema-level denial.
  ShowView("dr.house (clinician, ward network)", processor, *doc, instance,
           schema, {"dr.house", "10.3.7.21", "ward3.hospital.example"});

  // The same clinician from home: the location pattern does not match,
  // so the weak ward-wide permission is gone.
  ShowView("dr.house (clinician, from home)", processor, *doc, instance,
           schema, {"dr.house", "93.40.12.9", "home.isp.example"});

  // The specialist: the explicit instance-level grant on p1001's
  // psychiatric notes overrides the schema denial (instance > schema).
  ShowView("dr.frasier (specialist, ward network)", processor, *doc,
           instance, schema,
           {"dr.frasier", "10.3.7.30", "ward3.hospital.example"});

  // Billing: bills and patient names, nothing clinical.
  ShowView("nina (billing)", processor, *doc, instance, schema,
           {"nina", "10.9.1.4", "billing.hospital.example"});

  // The patient: her own record, without staff annotations' authorship
  // or the psychiatric section.
  ShowView("maria (patient p1001)", processor, *doc, instance, schema,
           {"maria", "151.66.9.9", "phone.carrier.example"});

  // A stranger: closed policy, empty view.
  ShowView("stranger", processor, *doc, instance, schema,
           {"anonymous", "203.0.113.5", "somewhere.example"});
  return 0;
}
