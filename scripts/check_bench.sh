#!/usr/bin/env bash
# CI gate for the view-construction hot path: builds bench_pipeline and
# bench_labeling, reruns the gated benchmarks with repetitions, and
# fails when any of
#
#   1. the single-pass projection pipeline is not at least RATIO_FLOOR
#      (default 1.5x) faster than the legacy clone->label->prune
#      pipeline on the deny-heavy workload (both run in the same
#      binary, so the ratio is machine-independent),
#
#   2. the schema-compiled labeling stage (BM_StageLabelCompiled) is
#      not at least LABELING_RATIO_FLOOR (default 3x) faster than the
#      per-request XPath stage (BM_StageLabel) on the fully decidable
#      16k-node fixture — the table-lookup payoff of the policy
#      automaton, also machine-independent, or
#
#   3. the rewritten query path (BM_QueryRewrite) is not at least
#      REWRITE_RATIO_FLOOR (default 3x) faster than answering the same
#      selective query over the materialized view (BM_QueryOverView) on
#      the decidable 16k-node fixture — the whole point of policy-safe
#      query rewriting, machine-independent, or
#
#   4. the per-core event loops do not scale: on hosts with >= 4 cores,
#      BM_TcpConcurrentLoad with 4 event loops must move at least
#      SCALING_RATIO_FLOOR (default 2.5x) the items/s of 1 event loop
#      on the 16k-node fixture with the view cache off (requests are
#      CPU-bound view computations, so loops should saturate cores).
#      On 2-3 core hosts a reduced smoke gate runs instead, pinned to
#      2 cores via taskset: 4 loops (oversubscribed onto 2 cores) must
#      still beat 1 loop by SCALING_SMOKE_FLOOR (default 1.3x).
#      Single-core hosts skip the gate with a note — there is nothing
#      to scale onto, or
#
#   5. the incremental write path (BM_UpdateIncremental) is not at
#      least UPDATE_RATIO_FLOOR (default 3x) faster than per-op
#      whole-document re-labeling (BM_UpdateFullRelabel) for a mixed
#      point-mutation batch over the decidable 16k-node fixture — the
#      payoff of subtree-scoped re-labeling, machine-independent, or
#
#   6. a gated benchmark's p50 regressed more than MAX_REGRESSION_PCT
#      (default 15%) against its committed baseline in
#      bench/baselines/.  The absolute check is advisory off-CI
#      (machines differ); set XMLSEC_BENCH_STRICT=1 to make it fail
#      the gate, as CI does.
#
# Runnable locally:
#
#   scripts/check_bench.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
PIPELINE_BASELINE="bench/baselines/BENCH_pipeline.json"
LABELING_BASELINE="bench/baselines/BENCH_labeling.json"
SERVER_BASELINE="bench/baselines/BENCH_server.json"
UPDATE_BASELINE="bench/baselines/BENCH_update.json"
REPS="${XMLSEC_BENCH_REPS:-7}"
MIN_TIME="${XMLSEC_BENCH_MIN_TIME:-0.1}"
RATIO_FLOOR="${XMLSEC_BENCH_RATIO_FLOOR:-1.5}"
LABELING_RATIO_FLOOR="${XMLSEC_BENCH_LABELING_RATIO_FLOOR:-3.0}"
REWRITE_RATIO_FLOOR="${XMLSEC_BENCH_REWRITE_RATIO_FLOOR:-3.0}"
UPDATE_RATIO_FLOOR="${XMLSEC_BENCH_UPDATE_RATIO_FLOOR:-3.0}"
SCALING_RATIO_FLOOR="${XMLSEC_BENCH_SCALING_RATIO_FLOOR:-2.5}"
SCALING_SMOKE_FLOOR="${XMLSEC_BENCH_SCALING_SMOKE_FLOOR:-1.3}"
MAX_REGRESSION_PCT="${XMLSEC_BENCH_REGRESSION_PCT:-15}"
STRICT="${XMLSEC_BENCH_STRICT:-${CI:+1}}"
STRICT="${STRICT:-0}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_pipeline \
  bench_labeling bench_server bench_update

PIPE_OUT="$(mktemp)"
LABEL_OUT="$(mktemp)"
SERVER_OUT="$(mktemp)"
UPDATE_OUT="$(mktemp)"
SCALING_OUT="$(mktemp)"
trap 'rm -f "$PIPE_OUT" "$LABEL_OUT" "$SERVER_OUT" "$UPDATE_OUT" \
  "$SCALING_OUT"' EXIT

# Repetitions give one JSON entry per rep (the capturing reporter skips
# aggregate rows), so the p50s below are medians over real reruns.
XMLSEC_BENCH_JSON="$PIPE_OUT" "$BUILD_DIR/bench/bench_pipeline" \
  --benchmark_filter='BM_ViewConstruction' \
  --benchmark_repetitions="$REPS" \
  --benchmark_min_time="$MIN_TIME" > /dev/null
XMLSEC_BENCH_JSON="$LABEL_OUT" "$BUILD_DIR/bench/bench_labeling" \
  --benchmark_filter='^BM_StageLabel$|^BM_StageLabelCompiled$' \
  --benchmark_repetitions="$REPS" \
  --benchmark_min_time="$MIN_TIME" > /dev/null
XMLSEC_BENCH_JSON="$SERVER_OUT" "$BUILD_DIR/bench/bench_server" \
  --benchmark_filter='^BM_QueryOverView$|^BM_QueryRewrite$' \
  --benchmark_repetitions="$REPS" \
  --benchmark_min_time="$MIN_TIME" > /dev/null
XMLSEC_BENCH_JSON="$UPDATE_OUT" "$BUILD_DIR/bench/bench_update" \
  --benchmark_filter='^BM_UpdateFullRelabel$|^BM_UpdateIncremental$' \
  --benchmark_repetitions="$REPS" \
  --benchmark_min_time="$MIN_TIME" > /dev/null

# Event-loop scaling gate.  The TCP bench is expensive (32 full-view
# requests per iteration), so it gets its own rep count.
CORES="$(nproc)"
SCALING_REPS="${XMLSEC_BENCH_SCALING_REPS:-3}"
SCALING_MODE="skip"
if [ "$CORES" -ge 4 ]; then
  SCALING_MODE="full"
  XMLSEC_BENCH_JSON="$SCALING_OUT" "$BUILD_DIR/bench/bench_server" \
    --benchmark_filter='^BM_TcpConcurrentLoad/(1|4)(/|$)' \
    --benchmark_repetitions="$SCALING_REPS" \
    --benchmark_min_time="$MIN_TIME" > /dev/null
elif [ "$CORES" -ge 2 ] && command -v taskset > /dev/null; then
  # Pin to exactly 2 cores so the smoke ratio means the same thing on a
  # 2-core runner and a 3-core one.
  SCALING_MODE="smoke"
  XMLSEC_BENCH_JSON="$SCALING_OUT" taskset -c 0,1 \
    "$BUILD_DIR/bench/bench_server" \
    --benchmark_filter='^BM_TcpConcurrentLoad/(1|4)(/|$)' \
    --benchmark_repetitions="$SCALING_REPS" \
    --benchmark_min_time="$MIN_TIME" > /dev/null
else
  echo "check_bench: NOTE: $CORES core(s) — skipping the event-loop" \
    "scaling gate (nothing to scale onto)"
fi

python3 - "$PIPE_OUT" "$LABEL_OUT" "$SERVER_OUT" "$UPDATE_OUT" \
    "$PIPELINE_BASELINE" "$LABELING_BASELINE" "$SERVER_BASELINE" \
    "$UPDATE_BASELINE" "$RATIO_FLOOR" "$LABELING_RATIO_FLOOR" \
    "$REWRITE_RATIO_FLOOR" "$UPDATE_RATIO_FLOOR" \
    "$MAX_REGRESSION_PCT" "$STRICT" <<'PY'
import json, statistics, sys

(pipe_path, label_path, server_path, update_path, pipe_baseline_path,
 label_baseline_path, server_baseline_path, update_baseline_path,
 ratio_floor, labeling_floor, rewrite_floor, update_floor, max_pct,
 strict) = sys.argv[1:15]
ratio_floor, labeling_floor = float(ratio_floor), float(labeling_floor)
rewrite_floor = float(rewrite_floor)
update_floor = float(update_floor)
max_pct = float(max_pct)
strict = strict == "1"
failed = False

def p50(entries, name, path):
    samples = [e["ns_per_op"] for e in entries
               if e["name"].split("/")[0] == name]
    if not samples:
        sys.exit(f"check_bench: no samples for {name} in {path}")
    return statistics.median(samples)

def check_ratio(label, slow, fast, floor):
    global failed
    ratio = slow / fast
    print(f"check_bench: {label}: p50 slow={slow/1e6:.3f}ms "
          f"fast={fast/1e6:.3f}ms ratio={ratio:.2f}x (floor {floor}x)")
    if ratio < floor:
        print(f"check_bench: FAIL: {label} only {ratio:.2f}x "
              f"(floor {floor}x)", file=sys.stderr)
        failed = True

def check_regression(label, baseline_path, name, current):
    global failed
    try:
        baseline = json.load(open(baseline_path))
    except FileNotFoundError:
        print(f"check_bench: no baseline at {baseline_path}; skipping "
              "regression check")
        return
    base = p50(baseline, name, baseline_path)
    delta_pct = (current - base) / base * 100.0
    print(f"check_bench: {label}: baseline p50={base/1e6:.3f}ms "
          f"delta={delta_pct:+.1f}% (limit +{max_pct}%)")
    if delta_pct > max_pct:
        message = (f"{label} p50 regressed {delta_pct:+.1f}% vs baseline "
                   f"(limit +{max_pct}%)")
        if strict:
            print(f"check_bench: FAIL: {message}", file=sys.stderr)
            failed = True
        else:
            print(f"check_bench: WARNING (non-strict): {message}")

pipe = json.load(open(pipe_path))
clone = p50(pipe, "BM_ViewConstructionClone", pipe_path)
project = p50(pipe, "BM_ViewConstructionProject", pipe_path)
check_ratio("clone/project", clone, project, ratio_floor)
check_regression("view construction", pipe_baseline_path,
                 "BM_ViewConstructionProject", project)

label = json.load(open(label_path))
xpath = p50(label, "BM_StageLabel", label_path)
compiled = p50(label, "BM_StageLabelCompiled", label_path)
check_ratio("xpath/compiled labeling", xpath, compiled, labeling_floor)
check_regression("compiled labeling", label_baseline_path,
                 "BM_StageLabelCompiled", compiled)

server = json.load(open(server_path))
over_view = p50(server, "BM_QueryOverView", server_path)
rewritten = p50(server, "BM_QueryRewrite", server_path)
check_ratio("materialized/rewritten query", over_view, rewritten,
            rewrite_floor)
check_regression("rewritten query", server_baseline_path,
                 "BM_QueryRewrite", rewritten)

update = json.load(open(update_path))
full_relabel = p50(update, "BM_UpdateFullRelabel", update_path)
incremental = p50(update, "BM_UpdateIncremental", update_path)
check_ratio("full/incremental relabel", full_relabel, incremental,
            update_floor)
check_regression("incremental update", update_baseline_path,
                 "BM_UpdateIncremental", incremental)

sys.exit(1 if failed else 0)
PY

if [ "$SCALING_MODE" != "skip" ]; then
  python3 - "$SCALING_OUT" "$SCALING_MODE" "$SCALING_RATIO_FLOOR" \
      "$SCALING_SMOKE_FLOOR" <<'PY'
import json, statistics, sys

out_path, mode, full_floor, smoke_floor = sys.argv[1:5]
floor = float(full_floor) if mode == "full" else float(smoke_floor)
entries = json.load(open(out_path))

def p50(arg):
    prefix = f"BM_TcpConcurrentLoad/{arg}"
    samples = [e["ns_per_op"] for e in entries
               if e["name"] == prefix or e["name"].startswith(prefix + "/")]
    if not samples:
        sys.exit(f"check_bench: no samples for {prefix} in {out_path}")
    return statistics.median(samples)

# Each iteration completes the same fixed request count, so the
# throughput ratio is the inverse ns_per_op ratio.
one, four = p50(1), p50(4)
ratio = one / four
label = ("4 loops vs 1 (full)" if mode == "full"
         else "4 loops vs 1 (2-core taskset smoke)")
print(f"check_bench: event-loop scaling {label}: "
      f"1-loop p50={one/1e6:.1f}ms 4-loop p50={four/1e6:.1f}ms "
      f"ratio={ratio:.2f}x (floor {floor}x)")
if ratio < floor:
    sys.exit(f"check_bench: FAIL: event loops scaled only {ratio:.2f}x "
             f"(floor {floor}x)")
PY
fi

echo "check_bench: OK"
