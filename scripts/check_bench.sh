#!/usr/bin/env bash
# CI gate for the view-construction hot path: builds bench_pipeline,
# reruns the view-construction benchmarks with repetitions, and fails
# when either
#
#   1. the single-pass projection pipeline is not at least RATIO_FLOOR
#      (default 1.5x) faster than the legacy clone->label->prune
#      pipeline on the deny-heavy workload (both run in the same
#      binary, so the ratio is machine-independent), or
#
#   2. the p50 of BM_ViewConstructionProject regressed more than
#      MAX_REGRESSION_PCT (default 15%) against the committed baseline
#      in bench/baselines/BENCH_pipeline.json.  The absolute check is
#      advisory off-CI (machines differ); set XMLSEC_BENCH_STRICT=1 to
#      make it fail the gate, as CI does.
#
# Runnable locally:
#
#   scripts/check_bench.sh [build_dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
BASELINE="bench/baselines/BENCH_pipeline.json"
REPS="${XMLSEC_BENCH_REPS:-7}"
MIN_TIME="${XMLSEC_BENCH_MIN_TIME:-0.1}"
RATIO_FLOOR="${XMLSEC_BENCH_RATIO_FLOOR:-1.5}"
MAX_REGRESSION_PCT="${XMLSEC_BENCH_REGRESSION_PCT:-15}"
STRICT="${XMLSEC_BENCH_STRICT:-${CI:+1}}"
STRICT="${STRICT:-0}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_pipeline

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

# Repetitions give one JSON entry per rep (the capturing reporter skips
# aggregate rows), so the p50 below is a median over real reruns.
XMLSEC_BENCH_JSON="$OUT" "$BUILD_DIR/bench/bench_pipeline" \
  --benchmark_filter='BM_ViewConstruction' \
  --benchmark_repetitions="$REPS" \
  --benchmark_min_time="$MIN_TIME" > /dev/null

python3 - "$OUT" "$BASELINE" "$RATIO_FLOOR" "$MAX_REGRESSION_PCT" \
    "$STRICT" <<'PY'
import json, statistics, sys

out_path, baseline_path, ratio_floor, max_pct, strict = sys.argv[1:6]
ratio_floor, max_pct = float(ratio_floor), float(max_pct)
strict = strict == "1"

def p50(entries, name):
    samples = [e["ns_per_op"] for e in entries
               if e["name"].split("/")[0] == name]
    if not samples:
        sys.exit(f"check_bench: no samples for {name} in {out_path}")
    return statistics.median(samples)

entries = json.load(open(out_path))
clone = p50(entries, "BM_ViewConstructionClone")
project = p50(entries, "BM_ViewConstructionProject")
ratio = clone / project
print(f"check_bench: p50 clone={clone/1e6:.3f}ms "
      f"project={project/1e6:.3f}ms ratio={ratio:.2f}x "
      f"(floor {ratio_floor}x)")
failed = False
if ratio < ratio_floor:
    print(f"check_bench: FAIL: projection only {ratio:.2f}x faster than "
          f"the clone pipeline (floor {ratio_floor}x)", file=sys.stderr)
    failed = True

try:
    baseline = json.load(open(baseline_path))
except FileNotFoundError:
    print(f"check_bench: no baseline at {baseline_path}; skipping "
          "regression check")
    baseline = None
if baseline is not None:
    base = p50(baseline, "BM_ViewConstructionProject")
    delta_pct = (project - base) / base * 100.0
    print(f"check_bench: baseline p50={base/1e6:.3f}ms "
          f"delta={delta_pct:+.1f}% (limit +{max_pct}%)")
    if delta_pct > max_pct:
        message = (f"view construction p50 regressed {delta_pct:+.1f}% "
                   f"vs baseline (limit +{max_pct}%)")
        if strict:
            print(f"check_bench: FAIL: {message}", file=sys.stderr)
            failed = True
        else:
            print(f"check_bench: WARNING (non-strict): {message}")

sys.exit(1 if failed else 0)
PY

echo "check_bench: OK"
