#!/usr/bin/env bash
# CI gate for the observability subsystem: boots the example server on
# an ephemeral port with the durable audit WAL in fsync-ack mode, sends
# real traffic, scrapes GET /metrics, exercises the admin reload
# endpoint, and fails on (1) any malformed exposition line, (2) a
# missing core metric family, or (3) a WAL that does not replay clean
# under `xacl_tool audit-verify`.  Runnable locally:
#
#   scripts/check_metrics.sh ./build/examples/policy_server
set -euo pipefail

SERVER_BIN="${1:-./build/examples/policy_server}"
TOOL_BIN="${2:-$(dirname "$SERVER_BIN")/xacl_tool}"
OUT="$(mktemp)"
WAL="$(mktemp -u).audit.wal"

XMLSEC_AUDIT_WAL="$WAL" XMLSEC_AUDIT_DURABILITY=fsync \
  XMLSEC_QUERY_REWRITE=1 \
  "$SERVER_BIN" --serve 0 30 > "$OUT" &
SERVER_PID=$!
cleanup() {
  kill "$SERVER_PID" 2>/dev/null || true
  rm -f "$OUT" "$WAL"
}
trap cleanup EXIT

# The server prints "listening 127.0.0.1:<port>" once bound.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(awk -F: '/^listening/ {print $2; exit}' "$OUT")
  [ -n "$PORT" ] && break
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "check_metrics: server did not start" >&2
  cat "$OUT" >&2
  exit 1
fi

# Wait until /healthz reports ready (served by the listener itself).
for _ in $(seq 1 100); do
  if curl -fsS "http://127.0.0.1:$PORT/healthz" 2>/dev/null \
      | grep -q '"status":"ready"'; then
    break
  fi
  sleep 0.1
done

# Real traffic: two document fetches (a slow-trace-eligible pipeline run
# plus a repeat), one bad document (404 counter), and two query
# requests — one the rewriter serves, one (id()) it must fall back on.
curl -fsS "http://127.0.0.1:$PORT/CSlab.xml" > /dev/null
curl -fsS "http://127.0.0.1:$PORT/CSlab.xml" > /dev/null
curl -sS "http://127.0.0.1:$PORT/Missing.xml" > /dev/null || true
curl -fsS "http://127.0.0.1:$PORT/CSlab.xml?query=//paper" > /dev/null
curl -fsS "http://127.0.0.1:$PORT/CSlab.xml?query=id(%22x%22)" > /dev/null

# Atomic hot-reload round-trip: the admin endpoint rebuilds the
# repository off to the side and swaps it in; serving must continue.
RELOAD=$(curl -fsS -X POST "http://127.0.0.1:$PORT/admin/reload")
if ! printf '%s' "$RELOAD" | grep -q 'reloaded'; then
  echo "check_metrics: admin reload failed: $RELOAD" >&2
  exit 1
fi
curl -fsS "http://127.0.0.1:$PORT/CSlab.xml" > /dev/null

# The healthz degraded flag must be false while the WAL is healthy, and
# the reload above must be counted.
HEALTH=$(curl -fsS "http://127.0.0.1:$PORT/healthz")
for want in '"degraded":false' '"reloads":1'; do
  if ! printf '%s' "$HEALTH" | grep -qF "$want"; then
    echo "check_metrics: healthz missing $want: $HEALTH" >&2
    exit 1
  fi
done

SCRAPE=$(curl -fsS "http://127.0.0.1:$PORT/metrics")

# --- 1. Format check: every line must be a comment or a sample
#        `name[{labels}] <number>`.
BAD=$(printf '%s\n' "$SCRAPE" \
  | grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][^ ]*|)$' \
  || true)
if [ -n "$BAD" ]; then
  echo "check_metrics: malformed exposition lines:" >&2
  printf '%s\n' "$BAD" >&2
  exit 1
fi

# --- 2. Core families must be present (per-stage pipeline histograms,
#        cache, listener, per-status and failpoint telemetry).
MISSING=0
for family in \
    'xmlsec_requests_total' \
    'xmlsec_request_duration_seconds_bucket' \
    'xmlsec_request_duration_seconds_count' \
    'xmlsec_stage_duration_seconds_count\{stage="label"\}' \
    'xmlsec_stage_duration_seconds_count\{stage="project"\}' \
    'xmlsec_stage_duration_seconds_count\{stage="prune"\}' \
    'xmlsec_stage_duration_seconds_count\{stage="serialize"\}' \
    'xmlsec_http_responses_total\{status="200"\}' \
    'xmlsec_http_responses_total\{status="404"\}' \
    'xmlsec_view_cache_misses_total' \
    'xmlsec_listener_requests_total' \
    'xmlsec_listener_shed_total' \
    'xmlsec_listener_queue_depth' \
    'xmlsec_listener_reloads_total' \
    'xmlsec_audit_queue_depth' \
    'xmlsec_audit_fsync_total' \
    'xmlsec_audit_sink_failures_total' \
    'xmlsec_audit_degraded' \
    'xmlsec_audit_denied_total' \
    'xmlsec_failpoint_trips_total' \
    'xmlsec_rewrite_compiles_total' \
    'xmlsec_rewrite_fallbacks_total\{reason="unsupported_function"\}' \
    'xmlsec_rewrite_served_total'; do
  if ! printf '%s\n' "$SCRAPE" | grep -qE "^$family"; then
    echo "check_metrics: missing core family: $family" >&2
    MISSING=1
  fi
done
[ "$MISSING" -eq 0 ] || exit 1

# --- 2b. The query traffic above ran with XMLSEC_QUERY_REWRITE=1, so
#         the counters must show one rewritten answer and one counted
#         fallback — not just registered-but-zero families.
for want in \
    'xmlsec_rewrite_served_total [1-9]' \
    'xmlsec_rewrite_fallbacks_total\{reason="unsupported_function"\} [1-9]'; do
  if ! printf '%s\n' "$SCRAPE" | grep -qE "^$want"; then
    echo "check_metrics: expected nonzero sample: $want" >&2
    exit 1
  fi
done

# --- 3. Durable audit post-check: stop the server cleanly, then replay
#        the WAL — every acknowledged access must verify frame-intact.
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
if [ ! -s "$WAL" ]; then
  echo "check_metrics: audit WAL was not written at $WAL" >&2
  exit 1
fi
if ! "$TOOL_BIN" audit-verify "$WAL"; then
  echo "check_metrics: audit-verify found torn/corrupt frames" >&2
  exit 1
fi

SAMPLES=$(printf '%s\n' "$SCRAPE" | grep -c '^xmlsec' || true)
echo "check_metrics: OK ($SAMPLES xmlsec samples, port $PORT)"
