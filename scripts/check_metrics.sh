#!/usr/bin/env bash
# CI gate for the observability subsystem: boots the example server on
# an ephemeral port, sends real traffic, scrapes GET /metrics, and
# fails on (1) any malformed exposition line or (2) a missing core
# metric family.  Runnable locally:
#
#   scripts/check_metrics.sh ./build/examples/policy_server
set -euo pipefail

SERVER_BIN="${1:-./build/examples/policy_server}"
OUT="$(mktemp)"

"$SERVER_BIN" --serve 0 30 > "$OUT" &
SERVER_PID=$!
cleanup() {
  kill "$SERVER_PID" 2>/dev/null || true
  rm -f "$OUT"
}
trap cleanup EXIT

# The server prints "listening 127.0.0.1:<port>" once bound.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(awk -F: '/^listening/ {print $2; exit}' "$OUT")
  [ -n "$PORT" ] && break
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "check_metrics: server did not start" >&2
  cat "$OUT" >&2
  exit 1
fi

# Wait until /healthz reports ready (served by the listener itself).
for _ in $(seq 1 100); do
  if curl -fsS "http://127.0.0.1:$PORT/healthz" 2>/dev/null \
      | grep -q '"status":"ready"'; then
    break
  fi
  sleep 0.1
done

# Real traffic: two document fetches (a slow-trace-eligible pipeline run
# plus a repeat), one bad document (404 counter).
curl -fsS "http://127.0.0.1:$PORT/CSlab.xml" > /dev/null
curl -fsS "http://127.0.0.1:$PORT/CSlab.xml" > /dev/null
curl -sS "http://127.0.0.1:$PORT/Missing.xml" > /dev/null || true

SCRAPE=$(curl -fsS "http://127.0.0.1:$PORT/metrics")

# --- 1. Format check: every line must be a comment or a sample
#        `name[{labels}] <number>`.
BAD=$(printf '%s\n' "$SCRAPE" \
  | grep -vE '^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][^ ]*|)$' \
  || true)
if [ -n "$BAD" ]; then
  echo "check_metrics: malformed exposition lines:" >&2
  printf '%s\n' "$BAD" >&2
  exit 1
fi

# --- 2. Core families must be present (per-stage pipeline histograms,
#        cache, listener, per-status and failpoint telemetry).
MISSING=0
for family in \
    'xmlsec_requests_total' \
    'xmlsec_request_duration_seconds_bucket' \
    'xmlsec_request_duration_seconds_count' \
    'xmlsec_stage_duration_seconds_count\{stage="label"\}' \
    'xmlsec_stage_duration_seconds_count\{stage="project"\}' \
    'xmlsec_stage_duration_seconds_count\{stage="prune"\}' \
    'xmlsec_stage_duration_seconds_count\{stage="serialize"\}' \
    'xmlsec_http_responses_total\{status="200"\}' \
    'xmlsec_http_responses_total\{status="404"\}' \
    'xmlsec_view_cache_misses_total' \
    'xmlsec_listener_requests_total' \
    'xmlsec_listener_shed_total' \
    'xmlsec_listener_queue_depth' \
    'xmlsec_failpoint_trips_total'; do
  if ! printf '%s\n' "$SCRAPE" | grep -qE "^$family"; then
    echo "check_metrics: missing core family: $family" >&2
    MISSING=1
  fi
done
[ "$MISSING" -eq 0 ] || exit 1

SAMPLES=$(printf '%s\n' "$SCRAPE" | grep -c '^xmlsec' || true)
echo "check_metrics: OK ($SAMPLES xmlsec samples, port $PORT)"
