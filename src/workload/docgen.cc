#include "workload/docgen.h"

#include <algorithm>
#include <cmath>

#include "common/prng.h"
#include "common/str_util.h"
#include "xml/dtd_parser.h"
#include "xml/parser.h"

namespace xmlsec {
namespace workload {

namespace {

using xml::Attr;
using xml::AttrDecl;
using xml::AttrDefaultKind;
using xml::AttrType;
using xml::Cardinality;
using xml::ContentKind;
using xml::ContentParticle;
using xml::Document;
using xml::Dtd;
using xml::Element;
using xml::ElementDecl;

std::string TagName(int level, int k) {
  return "n" + std::to_string(level) + "x" + std::to_string(k);
}

void BuildSubtree(Element* parent, int level, const DocGenConfig& config,
                  Prng* prng) {
  if (level > config.depth) return;
  for (int i = 0; i < config.fanout; ++i) {
    int k = static_cast<int>(prng->Below(
        static_cast<uint64_t>(std::max(1, config.vocabulary))));
    auto child = std::make_unique<Element>(TagName(level, k));
    for (int a = 0; a < config.attrs_per_element; ++a) {
      child->SetAttribute("a" + std::to_string(a),
                          "v" + std::to_string(prng->Below(16)));
    }
    if (prng->Chance(config.text_probability)) {
      child->AppendText("t" + std::to_string(prng->Below(1000)));
    }
    Element* raw = static_cast<Element*>(parent->AppendChild(std::move(child)));
    BuildSubtree(raw, level + 1, config, prng);
  }
}

/// DTD matching the generator's shape: each level-tag admits any mix of
/// next-level tags plus text, and declares the generated attributes.
std::unique_ptr<Dtd> BuildDtd(const DocGenConfig& config) {
  auto dtd = std::make_unique<Dtd>();
  dtd->set_name("root");

  auto declare = [&](const std::string& name, int level) {
    ElementDecl decl;
    decl.name = name;
    if (level > config.depth) {
      decl.content_kind = ContentKind::kMixed;  // Leaves: text only.
    } else {
      decl.content_kind = ContentKind::kMixed;
      for (int k = 0; k < std::max(1, config.vocabulary); ++k) {
        decl.mixed_names.push_back(TagName(level, k));
      }
    }
    Status s = dtd->AddElementDecl(std::move(decl));
    (void)s;
    for (int a = 0; a < config.attrs_per_element; ++a) {
      AttrDecl attr;
      attr.name = "a" + std::to_string(a);
      attr.type = AttrType::kCData;
      attr.default_kind = AttrDefaultKind::kImplied;
      dtd->AddAttrDecl(name, std::move(attr));
    }
  };

  declare("root", 1);
  for (int level = 1; level <= config.depth; ++level) {
    for (int k = 0; k < std::max(1, config.vocabulary); ++k) {
      declare(TagName(level, k), level + 1);
    }
  }
  return dtd;
}

}  // namespace

std::unique_ptr<Document> GenerateDocument(const DocGenConfig& config) {
  Prng prng(config.seed);
  auto doc = std::make_unique<Document>();
  doc->SetXmlDecl("1.0", "UTF-8", false);
  auto root = std::make_unique<Element>("root");
  Element* root_raw = static_cast<Element*>(doc->AppendChild(std::move(root)));
  BuildSubtree(root_raw, 1, config, &prng);
  doc->set_doctype_name("root");
  doc->set_dtd(BuildDtd(config));
  doc->Reindex();
  return doc;
}

int64_t ApproxNodeCount(const DocGenConfig& config) {
  // Elements: geometric series of fanout^level, levels 0..depth.
  double elements = 1;
  double level_count = 1;
  for (int level = 1; level <= config.depth; ++level) {
    level_count *= config.fanout;
    elements += level_count;
  }
  double per_element =
      1.0 + config.attrs_per_element + config.text_probability;
  return static_cast<int64_t>(elements * per_element);
}

DocGenConfig ConfigForNodeBudget(int64_t target_nodes, DocGenConfig base) {
  // Keep depth, solve for fanout; fall back to growing depth for very
  // large budgets with small fanout.
  for (int fanout = 2; fanout <= 64; ++fanout) {
    base.fanout = fanout;
    if (ApproxNodeCount(base) >= target_nodes) return base;
  }
  while (ApproxNodeCount(base) < target_nodes && base.depth < 24) {
    base.depth++;
  }
  return base;
}

std::string LaboratoryDtd() {
  return R"(<!ELEMENT laboratory (project*)>
<!ATTLIST laboratory name CDATA #IMPLIED>
<!ELEMENT project (manager, member*, paper*, fund?)>
<!ATTLIST project
  name CDATA #REQUIRED
  type (internal|public) #REQUIRED>
<!ELEMENT manager (fname, lname)>
<!ELEMENT member (fname, lname)>
<!ELEMENT fname (#PCDATA)>
<!ELEMENT lname (#PCDATA)>
<!ELEMENT paper (title, abstract?)>
<!ATTLIST paper category (private|internal|public) #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT abstract (#PCDATA)>
<!ELEMENT fund (#PCDATA)>
<!ATTLIST fund sponsor CDATA #IMPLIED>
)";
}

std::unique_ptr<Document> GenerateLaboratory(int projects,
                                             int papers_per_project,
                                             uint64_t seed) {
  Prng prng(seed);
  static const char* kFirst[] = {"Ada",   "Grace", "Alan",  "Edsger",
                                 "Barbara", "Donald", "Tony", "Leslie"};
  static const char* kLast[] = {"Lovelace", "Hopper",   "Turing", "Dijkstra",
                                "Liskov",   "Knuth",    "Hoare",  "Lamport"};
  static const char* kCategories[] = {"private", "internal", "public"};

  std::string xml = "<laboratory name=\"CSlab\">\n";
  for (int p = 0; p < projects; ++p) {
    const char* type = prng.Chance(0.5) ? "internal" : "public";
    xml += StrFormat("<project name=\"prj%d\" type=\"%s\">\n", p, type);
    xml += StrFormat("<manager><fname>%s</fname><lname>%s</lname></manager>\n",
                     kFirst[prng.Below(8)], kLast[prng.Below(8)]);
    int members = static_cast<int>(prng.Below(3));
    for (int m = 0; m < members; ++m) {
      xml += StrFormat("<member><fname>%s</fname><lname>%s</lname></member>\n",
                       kFirst[prng.Below(8)], kLast[prng.Below(8)]);
    }
    for (int q = 0; q < papers_per_project; ++q) {
      const char* category = kCategories[prng.Below(3)];
      xml += StrFormat(
          "<paper category=\"%s\"><title>Paper %d of prj%d</title>"
          "<abstract>About topic %llu.</abstract></paper>\n",
          category, q, p, static_cast<unsigned long long>(prng.Below(100)));
    }
    if (prng.Chance(0.6)) {
      xml += StrFormat("<fund sponsor=\"sponsor%llu\">%llu</fund>\n",
                       static_cast<unsigned long long>(prng.Below(5)),
                       static_cast<unsigned long long>(prng.Below(100000)));
    }
    xml += "</project>\n";
  }
  xml += "</laboratory>\n";

  // Parse (cheap) so the result is a proper indexed DOM with DTD.
  auto parsed = xml::ParseDocument(xml);
  // The generator emits well-formed XML by construction.
  std::unique_ptr<Document> doc = std::move(parsed).value();
  auto dtd_result = xml::ParseDtd(LaboratoryDtd());
  std::unique_ptr<Dtd> dtd = std::move(dtd_result).value();
  dtd->set_name("laboratory");
  doc->set_dtd(std::move(dtd));
  doc->set_doctype_name("laboratory");
  return doc;
}

}  // namespace workload
}  // namespace xmlsec
