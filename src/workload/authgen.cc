#include "workload/authgen.h"

#include "common/prng.h"

namespace xmlsec {
namespace workload {

namespace {

using authz::Authorization;
using authz::AuthType;
using authz::GroupStore;
using authz::LocationPattern;
using authz::Sign;
using authz::Subject;
using xml::Element;
using xml::Node;

/// Absolute tag path from the root to `el`, e.g. "/root/n1x2/n2x0".
std::string AbsolutePathOf(const Element* el) {
  std::vector<const Element*> chain;
  for (const Element* cur = el; cur != nullptr; cur = cur->ParentElement()) {
    chain.push_back(cur);
  }
  std::string path;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    path += "/";
    path += (*it)->tag();
  }
  return path;
}

void CollectElements(const Element* el, std::vector<const Element*>* out) {
  out->push_back(el);
  for (const auto& child : el->children()) {
    if (child->IsElement()) {
      CollectElements(static_cast<const Element*>(child.get()), out);
    }
  }
}

}  // namespace

GeneratedWorkload GenerateAuthorizations(const xml::Document& doc,
                                         const std::string& doc_uri,
                                         const std::string& dtd_uri,
                                         const AuthGenConfig& config) {
  Prng prng(config.seed);
  GeneratedWorkload out;

  // Population: users u0..uN, groups g0..gM arranged in a chain with
  // cross-links (a small DAG); every user belongs to one base group.
  for (int g = 0; g < config.num_groups; ++g) {
    out.groups.AddGroup("g" + std::to_string(g));
    if (g > 0) {
      Status s = out.groups.AddMembership("g" + std::to_string(g),
                                          "g" + std::to_string(g - 1));
      (void)s;
    }
  }
  for (int u = 0; u < config.num_users; ++u) {
    std::string name = "u" + std::to_string(u);
    out.users.push_back(name);
    out.groups.AddUser(name);
    if (config.num_groups > 0) {
      Status s = out.groups.AddMembership(
          name, "g" + std::to_string(
                          prng.Below(static_cast<uint64_t>(config.num_groups))));
      (void)s;
    }
  }

  out.requester.user = out.users.empty() ? "anonymous" : out.users[0];
  out.requester.ip = "151.100.30.8";
  out.requester.sym = "pc1.lab.example.com";

  std::vector<const Element*> elements;
  CollectElements(doc.root(), &elements);

  auto random_subject = [&]() {
    Subject subject;
    uint64_t pick = prng.Below(4);
    if (pick == 0 || out.users.empty()) {
      subject.ug = out.groups.universal_group();
    } else if (pick == 1) {
      subject.ug = "g" + std::to_string(
                             prng.Below(static_cast<uint64_t>(
                                 std::max(1, config.num_groups))));
    } else {
      subject.ug =
          out.users[prng.Below(static_cast<uint64_t>(out.users.size()))];
    }
    // Locations: mostly wildcard, sometimes a matching prefix pattern.
    if (prng.Chance(0.25)) {
      subject.ip = LocationPattern::ParseIp("151.100.*").value();
    }
    if (prng.Chance(0.25)) {
      subject.sym = LocationPattern::ParseSymbolic("*.example.com").value();
    }
    return subject;
  };

  for (int i = 0; i < config.count; ++i) {
    Authorization auth;
    auth.subject = random_subject();

    const Element* target =
        elements[prng.Below(static_cast<uint64_t>(elements.size()))];
    bool schema_level = prng.Chance(config.schema_fraction);
    std::string path;
    if (prng.Chance(config.descendant_fraction)) {
      path = "//" + target->tag();
    } else {
      path = AbsolutePathOf(target);
    }
    if (prng.Chance(config.predicate_fraction) &&
        target->attribute_count() > 0) {
      const auto& attr = target->attributes().front();
      path += "[./@" + attr->name() + "=\"" + attr->value() + "\"]";
    }
    if (prng.Chance(config.attribute_fraction) &&
        target->attribute_count() > 0) {
      path += "/@" + target->attributes().front()->name();
    }
    auth.object.uri = schema_level ? dtd_uri : doc_uri;
    auth.object.path = path;

    auth.sign = prng.Chance(config.negative_fraction) ? Sign::kMinus
                                                      : Sign::kPlus;
    bool recursive = prng.Chance(config.recursive_fraction);
    bool weak = !schema_level && prng.Chance(config.weak_fraction);
    auth.type = recursive ? (weak ? AuthType::kRecursiveWeak
                                  : AuthType::kRecursive)
                          : (weak ? AuthType::kLocalWeak : AuthType::kLocal);

    if (schema_level) {
      out.schema_auths.push_back(std::move(auth));
    } else {
      out.instance_auths.push_back(std::move(auth));
    }
  }
  return out;
}

}  // namespace workload
}  // namespace xmlsec
