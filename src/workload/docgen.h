#ifndef XMLSEC_WORKLOAD_DOCGEN_H_
#define XMLSEC_WORKLOAD_DOCGEN_H_

#include <cstdint>
#include <memory>
#include <string>

#include "xml/dom.h"
#include "xml/dtd.h"

namespace xmlsec {
namespace workload {

/// Shape parameters of a synthetic document tree.
struct DocGenConfig {
  int depth = 4;              ///< levels below the root
  int fanout = 4;             ///< element children per element
  int attrs_per_element = 2;  ///< attributes per element
  int vocabulary = 4;         ///< distinct tag names per level
  double text_probability = 0.5;  ///< chance an element carries text
  uint64_t seed = 42;
};

/// Generates a random document of the given shape, with a DTD attached
/// that the document is valid against (level-stratified tag vocabulary,
/// starred choice content models, CDATA attributes).
std::unique_ptr<xml::Document> GenerateDocument(const DocGenConfig& config);

/// Upper-bound node count (elements + attributes + text) for `config` —
/// used by benchmarks to pick shapes of a target size.
int64_t ApproxNodeCount(const DocGenConfig& config);

/// Picks depth/fanout for roughly `target_nodes` total nodes, keeping the
/// other config fields.
DocGenConfig ConfigForNodeBudget(int64_t target_nodes, DocGenConfig base = {});

/// Generates a document in the paper's running "laboratory" schema
/// (Fig. 1): projects with name/type attributes, managers, and papers
/// with category attributes — the workload its motivating examples
/// protect.  Valid against `LaboratoryDtd()`.
std::unique_ptr<xml::Document> GenerateLaboratory(int projects,
                                                  int papers_per_project,
                                                  uint64_t seed);

/// The laboratory DTD source (external-subset syntax).
std::string LaboratoryDtd();

}  // namespace workload
}  // namespace xmlsec

#endif  // XMLSEC_WORKLOAD_DOCGEN_H_
