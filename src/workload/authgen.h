#ifndef XMLSEC_WORKLOAD_AUTHGEN_H_
#define XMLSEC_WORKLOAD_AUTHGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "authz/authorization.h"
#include "authz/subject.h"
#include "xml/dom.h"

namespace xmlsec {
namespace workload {

/// Mix parameters of a synthetic authorization workload.
struct AuthGenConfig {
  int count = 16;
  double negative_fraction = 0.3;
  double recursive_fraction = 0.7;
  double weak_fraction = 0.1;       ///< instance-level only
  double schema_fraction = 0.2;     ///< routed to the schema set
  double attribute_fraction = 0.15; ///< path ends in an attribute
  double descendant_fraction = 0.2; ///< use //tag instead of a full path
  double predicate_fraction = 0.25; ///< attach an attribute predicate
  int num_users = 8;
  int num_groups = 4;
  uint64_t seed = 7;
};

/// A generated access-control scenario over one document: a group
/// hierarchy, user population, split authorization sets, and a concrete
/// requester that a configurable share of subjects applies to.
struct GeneratedWorkload {
  authz::GroupStore groups;
  std::vector<std::string> users;
  std::vector<authz::Authorization> instance_auths;
  std::vector<authz::Authorization> schema_auths;
  authz::Requester requester;
};

/// Generates authorizations whose path expressions target actual nodes of
/// `doc` (sampled uniformly), so every authorization is live.
/// `doc_uri` / `dtd_uri` fill the object URIs.
GeneratedWorkload GenerateAuthorizations(const xml::Document& doc,
                                         const std::string& doc_uri,
                                         const std::string& dtd_uri,
                                         const AuthGenConfig& config);

}  // namespace workload
}  // namespace xmlsec

#endif  // XMLSEC_WORKLOAD_AUTHGEN_H_
