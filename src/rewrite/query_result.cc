#include "rewrite/query_result.h"

#include "xml/serializer.h"

namespace xmlsec {
namespace rewrite {

std::string BuildQueryResultBody(const xpath::NodeSet& nodes,
                                 const xpath::NodeFilter* filter) {
  std::string body =
      "<query-result count=\"" + std::to_string(nodes.size()) + "\">\n";
  for (const xml::Node* node : nodes) {
    if (node->IsAttribute()) {
      body += "<attribute name=\"" + xml::EscapeAttrValue(node->NodeName()) +
              "\">" + xml::EscapeText(node->NodeValue()) + "</attribute>\n";
    } else if (filter != nullptr && *filter) {
      body += xml::SerializeNodeFiltered(*node, *filter) + "\n";
    } else {
      body += xml::SerializeNode(*node) + "\n";
    }
  }
  body += "</query-result>\n";
  return body;
}

}  // namespace rewrite
}  // namespace xmlsec
