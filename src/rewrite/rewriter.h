#ifndef XMLSEC_REWRITE_REWRITER_H_
#define XMLSEC_REWRITE_REWRITER_H_

#include <memory>
#include <string>
#include <string_view>

#include "analysis/policy_automaton.h"
#include "authz/policy.h"
#include "authz/subject.h"
#include "common/result.h"
#include "rewrite/visibility.h"
#include "xpath/ast.h"

namespace xmlsec {
namespace rewrite {

/// Why a query could not be rewritten (the server counts these as
/// `xmlsec_rewrite_fallbacks_total{reason=...}` and serves through the
/// materialized path instead).
enum class UnsupportedReason {
  kNone,
  /// The user query names the reserved guard function — refused outright
  /// so a requester can never pre-seat (or confuse) the guard.
  kReservedFunction,
  /// The query uses a function whose view-semantics the rewriter cannot
  /// reproduce over the original tree (currently: `id()`, whose ID map
  /// is built at parse time and cannot be re-filtered soundly).
  kUnsupportedFunction,
};

std::string_view UnsupportedReasonToString(UnsupportedReason reason);

/// A rewritten query: the original AST with the accessibility guard
/// `__xmlsec-accessible()` inserted as the FIRST predicate of every
/// location step (guard-first keeps positional predicates counting
/// visible nodes only, exactly as they would over the materialized
/// view).
struct RewrittenQuery {
  std::unique_ptr<xpath::Expr> expr;
  /// `ToString()` of the pre-rewrite AST.  Evaluation errors that quote
  /// the expression must quote THIS, not the guarded form — the two
  /// query paths are required to answer byte-identically, and the guard
  /// function must never leak into a response.
  std::string source;
  UnsupportedReason unsupported = UnsupportedReason::kNone;

  bool ok() const { return unsupported == UnsupportedReason::kNone; }
};

/// Rewrites a parsed query.  Never mutates `query`; on an unsupported
/// construct the result carries the reason and a null expr.
RewrittenQuery RewriteExpr(const xpath::Expr& query);

/// Per-(document, policy) query rewriter, cached by the server next to
/// the automaton entry.  Stateless across requests: `Rewrite` transforms
/// query text, `NewOracle` builds the per-request visibility oracle the
/// rewritten query evaluates against.
class QueryRewriter {
 public:
  explicit QueryRewriter(
      std::shared_ptr<const analysis::PolicyAutomaton> automaton)
      : automaton_(std::move(automaton)) {}

  /// Parses and rewrites.  Parse failures return the parser's status
  /// (the server maps it to 400, same as the materialized path).
  Result<RewrittenQuery> Rewrite(std::string_view query_text) const;

  Result<std::unique_ptr<VisibilityOracle>> NewOracle(
      const xml::Document& doc, const authz::Requester& rq,
      const authz::GroupStore& groups, authz::PolicyOptions policy) const {
    return VisibilityOracle::Create(doc, automaton_, rq, groups, policy);
  }

  const analysis::PolicyAutomaton& automaton() const { return *automaton_; }

 private:
  std::shared_ptr<const analysis::PolicyAutomaton> automaton_;
};

}  // namespace rewrite
}  // namespace xmlsec

#endif  // XMLSEC_REWRITE_REWRITER_H_
