#ifndef XMLSEC_REWRITE_VISIBILITY_H_
#define XMLSEC_REWRITE_VISIBILITY_H_

#include <memory>
#include <vector>

#include "analysis/policy_automaton.h"
#include "authz/labeling.h"
#include "authz/policy.h"
#include "authz/subject.h"
#include "common/result.h"
#include "xml/dom.h"
#include "xpath/value.h"

namespace xmlsec {
namespace rewrite {

/// Per-request view-membership oracle over the *original* document — the
/// runtime half of the query rewriter.
///
/// `InView(n)` answers "would `n` appear in the requester's materialized
/// view?" without building that view: explicit 6-tuple rows come from
/// `PolicyAutomaton::Resolver` (lazy table lookups + residual joint
/// resolution), and this class replays the projector's propagation and
/// pruning rules (authz/projector.cc) on top — parent-merge of recursive
/// signs, `first_def` final signs, attribute propagation from the owning
/// element, tag-skeleton preservation (an element stays when any
/// descendant or attribute is visible), text/comment/PI visibility tied
/// to the owning element's own permission, and the completeness policy
/// for doc-level prolog nodes.  Memoized per node, so a query touching a
/// slice of the document pays only for that slice (plus the subtrees of
/// skeleton checks).
///
/// Fail-safe: any schema mismatch in the resolver latches
/// `schema_mismatch()` and every subsequent answer is `false`.  Callers
/// MUST check the latch after evaluation and discard the result — the
/// server falls back to the materialized path, it never serves a
/// mismatched oracle's answers.
class VisibilityOracle {
 public:
  /// The automaton must have been compiled from the policy this document
  /// is served under; `doc` must outlive the oracle and be `Reindex()`ed.
  static Result<std::unique_ptr<VisibilityOracle>> Create(
      const xml::Document& doc,
      std::shared_ptr<const analysis::PolicyAutomaton> automaton,
      const authz::Requester& rq, const authz::GroupStore& groups,
      authz::PolicyOptions policy);

  /// True when `node` would appear in the materialized view.  Always
  /// false once `schema_mismatch()` latched.
  bool InView(const xml::Node* node);

  /// True when the view would be non-empty (the root element survives
  /// pruning) — the rewriter's analogue of the server's empty-view 404.
  bool RootVisible();

  bool schema_mismatch() const { return resolver_->schema_mismatch(); }

  /// Resolution-split counters, for `xmlsec_rewrite_*` accounting.
  int64_t table_nodes() const { return resolver_->table_nodes(); }
  int64_t residual_nodes() const { return resolver_->residual_nodes(); }

  /// `InView` bound as an evaluator/serializer filter.  The oracle must
  /// outlive the returned callable.
  xpath::NodeFilter Filter() {
    return [this](const xml::Node* node) { return InView(node); };
  }

 private:
  /// Post-propagation working signs of one element (projector `Signs`,
  /// memoized by doc_order).  `l`, `ld`, `lw` never merge with the
  /// parent, so they double as the explicit values the attribute rule
  /// propagates.
  struct ElementSigns {
    bool ready = false;
    bool self_permitted = false;
    authz::TriSign l, r, ld, rd, lw, rw;
  };

  VisibilityOracle(const xml::Document* doc,
                   std::shared_ptr<const analysis::PolicyAutomaton> automaton,
                   std::unique_ptr<analysis::PolicyAutomaton::Resolver>
                       resolver,
                   authz::CompletenessPolicy completeness);

  const ElementSigns& SignsOf(const xml::Element* el);
  bool ElementInView(const xml::Element* el);
  bool AttributePermitted(const xml::Attr* attr);
  bool Permitted(authz::TriSign sign) const;

  const xml::Document* doc_;
  /// Keeps the compiled policy alive for the oracle's lifetime (the
  /// server hot-swaps policies under RCU).
  std::shared_ptr<const analysis::PolicyAutomaton> automaton_;
  std::unique_ptr<analysis::PolicyAutomaton::Resolver> resolver_;
  authz::CompletenessPolicy completeness_;
  std::vector<ElementSigns> signs_;     ///< by doc_order (elements only)
  std::vector<int8_t> in_view_;         ///< by doc_order; -1 unknown
};

}  // namespace rewrite
}  // namespace xmlsec

#endif  // XMLSEC_REWRITE_VISIBILITY_H_
