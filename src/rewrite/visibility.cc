#include "rewrite/visibility.h"

#include <utility>

namespace xmlsec {
namespace rewrite {

namespace {

using authz::TriSign;

TriSign First2(TriSign a, TriSign b) { return a != TriSign::kEps ? a : b; }

}  // namespace

Result<std::unique_ptr<VisibilityOracle>> VisibilityOracle::Create(
    const xml::Document& doc,
    std::shared_ptr<const analysis::PolicyAutomaton> automaton,
    const authz::Requester& rq, const authz::GroupStore& groups,
    authz::PolicyOptions policy) {
  if (automaton == nullptr) {
    return Status::InvalidArgument("visibility oracle requires an automaton");
  }
  XMLSEC_ASSIGN_OR_RETURN(auto resolver,
                          automaton->NewResolver(doc, rq, groups, policy));
  return std::unique_ptr<VisibilityOracle>(
      new VisibilityOracle(&doc, std::move(automaton), std::move(resolver),
                           policy.completeness));
}

VisibilityOracle::VisibilityOracle(
    const xml::Document* doc,
    std::shared_ptr<const analysis::PolicyAutomaton> automaton,
    std::unique_ptr<analysis::PolicyAutomaton::Resolver> resolver,
    authz::CompletenessPolicy completeness)
    : doc_(doc),
      automaton_(std::move(automaton)),
      resolver_(std::move(resolver)),
      completeness_(completeness),
      signs_(static_cast<size_t>(doc->node_count())),
      in_view_(static_cast<size_t>(doc->node_count()), -1) {}

bool VisibilityOracle::Permitted(TriSign sign) const {
  if (completeness_ == authz::CompletenessPolicy::kClosed) {
    return sign == TriSign::kPlus;
  }
  return sign != TriSign::kMinus;  // Open: ε reads as permission.
}

const VisibilityOracle::ElementSigns& VisibilityOracle::SignsOf(
    const xml::Element* el) {
  ElementSigns& out = signs_[static_cast<size_t>(el->doc_order())];
  if (out.ready) return out;

  const std::array<TriSign, 6> row = resolver_->RowFor(*el);
  out.l = row[static_cast<size_t>(authz::LabelSlot::kL)];
  out.r = row[static_cast<size_t>(authz::LabelSlot::kR)];
  out.ld = row[static_cast<size_t>(authz::LabelSlot::kLD)];
  out.rd = row[static_cast<size_t>(authz::LabelSlot::kRD)];
  out.lw = row[static_cast<size_t>(authz::LabelSlot::kLW)];
  out.rw = row[static_cast<size_t>(authz::LabelSlot::kRW)];

  // Parent merge (projector.cc, rule for rule): the node's own recursive
  // signs of either strength suppress the propagated pair; schema-level
  // recursive signs propagate independently.  The root merges against
  // all-ε (its parent is the document node).
  const xml::Node* parent = el->parent();
  if (parent != nullptr && parent->IsElement()) {
    const ElementSigns& up = SignsOf(static_cast<const xml::Element*>(parent));
    if (out.r == TriSign::kEps && out.rw == TriSign::kEps) {
      out.r = up.r;
      out.rw = up.rw;
    }
    out.rd = First2(out.rd, up.rd);
  }
  out.self_permitted = Permitted(
      authz::FirstDef({out.l, out.r, out.ld, out.rd, out.lw, out.rw}));
  out.ready = true;
  return out;
}

bool VisibilityOracle::AttributePermitted(const xml::Attr* attr) {
  const xml::Node* parent = attr->parent();
  if (parent == nullptr || !parent->IsElement()) return false;
  const ElementSigns& up = SignsOf(static_cast<const xml::Element*>(parent));

  const std::array<TriSign, 6> row = resolver_->RowFor(*attr);
  // An element's Local authorizations cover its direct attributes; its
  // merged recursive signs cover them too, at lower priority (same
  // sequence as the element rule: instance, schema, weak).
  TriSign inst = First2(up.l, up.r);
  TriSign schema = First2(up.ld, up.rd);
  TriSign weak = First2(up.lw, up.rw);
  return Permitted(authz::FirstDef(
      {row[static_cast<size_t>(authz::LabelSlot::kL)], inst,
       row[static_cast<size_t>(authz::LabelSlot::kLD)], schema,
       row[static_cast<size_t>(authz::LabelSlot::kLW)], weak}));
}

bool VisibilityOracle::ElementInView(const xml::Element* el) {
  int8_t& memo = in_view_[static_cast<size_t>(el->doc_order())];
  if (memo >= 0) return memo != 0;

  // Tag-skeleton preservation: the element appears when itself
  // permitted, or when any attribute or descendant element is (the
  // projector keeps the tags of every ancestor of a visible node).
  bool visible = SignsOf(el).self_permitted;
  if (!visible) {
    for (const auto& attr : el->attributes()) {
      if (AttributePermitted(attr.get())) {
        visible = true;
        break;
      }
    }
  }
  if (!visible) {
    for (const auto& child : el->children()) {
      if (child->IsElement() &&
          ElementInView(static_cast<const xml::Element*>(child.get()))) {
        visible = true;
        break;
      }
    }
  }
  memo = visible ? 1 : 0;
  return visible;
}

bool VisibilityOracle::InView(const xml::Node* node) {
  if (node == nullptr || resolver_->schema_mismatch()) return false;
  bool answer = false;
  switch (node->type()) {
    case xml::NodeType::kDocument:
      answer = true;
      break;
    case xml::NodeType::kElement:
      answer = ElementInView(static_cast<const xml::Element*>(node));
      break;
    case xml::NodeType::kAttribute:
      // A permitted attribute forces its element (and every ancestor)
      // into the view, so permission alone decides membership.
      answer = AttributePermitted(static_cast<const xml::Attr*>(node));
      break;
    default: {
      // Text / CDATA / comment / PI: the "values" of the paper's tree,
      // visible iff their element is itself permitted.  At document
      // level no authorization ever targets them — the completeness
      // policy alone decides (projector.cc, prolog/epilog rule).
      const xml::Node* parent = node->parent();
      if (parent != nullptr && parent->IsElement()) {
        answer = SignsOf(static_cast<const xml::Element*>(parent))
                     .self_permitted;
      } else {
        answer = Permitted(TriSign::kEps);
      }
      break;
    }
  }
  // A mismatch latched mid-computation poisons the answer (ε rows read
  // as permission under an open policy): fail closed.
  return resolver_->schema_mismatch() ? false : answer;
}

bool VisibilityOracle::RootVisible() {
  const xml::Element* root = doc_->root();
  if (root == nullptr) return false;
  return InView(root);
}

}  // namespace rewrite
}  // namespace xmlsec
