#ifndef XMLSEC_REWRITE_QUERY_RESULT_H_
#define XMLSEC_REWRITE_QUERY_RESULT_H_

#include <string>

#include "xpath/value.h"

namespace xmlsec {
namespace rewrite {

/// Renders a `/query` node-set as the server's `<query-result>` body —
/// the ONE serializer both query paths share, so a rewritten answer is
/// byte-identical to the materialized one.
///
/// Shape: `<query-result count="N">`, one line per node — attributes as
/// `<attribute name="...">value</attribute>` (name and value escaped),
/// other nodes serialized as XML — then `</query-result>`.
///
/// `filter` prunes invisible descendants out of serialized subtrees
/// (the rewrite path passes the visibility oracle; the materialized
/// path passes `nullptr` — its view is already pruned).  The selected
/// nodes themselves are NOT filtered here: the evaluator's guards
/// already decided membership.
std::string BuildQueryResultBody(const xpath::NodeSet& nodes,
                                 const xpath::NodeFilter* filter);

}  // namespace rewrite
}  // namespace xmlsec

#endif  // XMLSEC_REWRITE_QUERY_RESULT_H_
