#include "rewrite/rewriter.h"

#include <utility>

#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xmlsec {
namespace rewrite {

namespace {

using xpath::Expr;
using xpath::Step;

std::unique_ptr<Expr> MakeGuardCall() {
  auto call = std::make_unique<Expr>(Expr::Kind::kFunctionCall);
  call->function_name = std::string(xpath::kAccessibleFunctionName);
  return call;
}

/// Walks the AST inserting the guard; returns the first unsupported
/// construct met (short-circuits the rest of the walk).
class GuardInserter {
 public:
  UnsupportedReason Transform(Expr* expr) {
    Visit(expr);
    return reason_;
  }

 private:
  void Fail(UnsupportedReason reason) {
    if (reason_ == UnsupportedReason::kNone) reason_ = reason;
  }

  void VisitStep(Step* step) {
    if (reason_ != UnsupportedReason::kNone) return;
    for (auto& pred : step->predicates) Visit(pred.get());
    // Guard FIRST: positional predicates ([2], [position() < 3],
    // [last()]) must count visible siblings only, which requires the
    // candidate list to be filtered before any user predicate runs.
    step->predicates.insert(step->predicates.begin(), MakeGuardCall());
  }

  void Visit(Expr* expr) {
    if (expr == nullptr || reason_ != UnsupportedReason::kNone) return;
    switch (expr->kind) {
      case Expr::Kind::kBinary:
        Visit(expr->lhs.get());
        Visit(expr->rhs.get());
        break;
      case Expr::Kind::kNegate:
        Visit(expr->operand.get());
        break;
      case Expr::Kind::kLiteral:
      case Expr::Kind::kNumber:
      case Expr::Kind::kVariable:
        break;
      case Expr::Kind::kFunctionCall:
        if (expr->function_name == xpath::kAccessibleFunctionName) {
          return Fail(UnsupportedReason::kReservedFunction);
        }
        if (expr->function_name == "id") {
          // id() resolves through the document's ID map; the evaluator
          // filters its results only under hooks, but its *argument*
          // string-values could leak structure through error shapes the
          // materialized path cannot produce — keep it on the
          // materialized path until proven equivalent.
          return Fail(UnsupportedReason::kUnsupportedFunction);
        }
        for (auto& arg : expr->args) Visit(arg.get());
        break;
      case Expr::Kind::kPath:
        // The filter base needs no guard of its own: every node-set a
        // base can produce comes out of guarded steps (the one other
        // node-set source, id(), is rejected above), so its predicates
        // already count visible nodes — while a guard on a non-node-set
        // base (a bare literal parses as kPath{base}) would turn a
        // plain value into an evaluation error.
        Visit(expr->base.get());
        for (auto& pred : expr->base_predicates) Visit(pred.get());
        for (Step& step : expr->steps) VisitStep(&step);
        break;
    }
  }

  UnsupportedReason reason_ = UnsupportedReason::kNone;
};

}  // namespace

std::string_view UnsupportedReasonToString(UnsupportedReason reason) {
  switch (reason) {
    case UnsupportedReason::kNone:
      return "none";
    case UnsupportedReason::kReservedFunction:
      return "reserved_function";
    case UnsupportedReason::kUnsupportedFunction:
      return "unsupported_function";
  }
  return "unknown";
}

RewrittenQuery RewriteExpr(const Expr& query) {
  RewrittenQuery out;
  out.source = query.ToString();
  std::unique_ptr<Expr> copy = query.Clone();
  GuardInserter inserter;
  out.unsupported = inserter.Transform(copy.get());
  if (out.unsupported == UnsupportedReason::kNone) {
    out.expr = std::move(copy);
  }
  return out;
}

Result<RewrittenQuery> QueryRewriter::Rewrite(
    std::string_view query_text) const {
  XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> parsed,
                          xpath::CompileXPath(query_text));
  return RewriteExpr(*parsed);
}

}  // namespace rewrite
}  // namespace xmlsec
