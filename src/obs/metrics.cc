#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/failpoint.h"

namespace xmlsec {
namespace obs {

namespace internal {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

namespace {

/// Formats a double with enough precision for exposition without
/// trailing-zero noise; integers render without a decimal point.
std::string FormatValue(double value) {
  if (value == static_cast<int64_t>(value) && value > -9.2e18 &&
      value < 9.2e18) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRId64,
                  static_cast<int64_t>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// `name{labels}` or `name{labels,extra}` (extra = `le="..."`).
std::string SampleName(const std::string& name, const std::string& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name;
  out.push_back('{');
  out += labels;
  if (!labels.empty() && !extra.empty()) out.push_back(',');
  out += extra;
  out.push_back('}');
  return out;
}

Counter* DummyCounter() {
  static Counter* dummy = []() {
    static MetricsRegistry scratch;
    return scratch.GetCounter("xmlsec_obs_type_mismatch_total",
                              "sink for mistyped metric registrations");
  }();
  return dummy;
}

Gauge* DummyGauge() {
  static MetricsRegistry scratch;
  static Gauge* dummy = scratch.GetGauge(
      "xmlsec_obs_type_mismatch", "sink for mistyped metric registrations");
  return dummy;
}

Histogram* DummyHistogram() {
  static MetricsRegistry scratch;
  static Histogram* dummy = scratch.GetHistogram(
      "xmlsec_obs_type_mismatch_seconds",
      "sink for mistyped metric registrations", {1});
  return dummy;
}

}  // namespace

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<int64_t> bounds, double scale)
    : bounds_(std::move(bounds)), scale_(scale) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  const size_t buckets = bounds_.size() + 1;  // +Inf overflow bucket
  for (Shard& shard : shards_) {
    shard.counts = std::make_unique<std::atomic<int64_t>[]>(buckets);
    for (size_t i = 0; i < buckets; ++i) shard.counts[i].store(0);
  }
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      total += shard.counts[i].load(std::memory_order_relaxed);
    }
  }
  return total;
}

int64_t Histogram::Sum() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

const std::vector<int64_t>& DefaultLatencyBoundsNs() {
  static const std::vector<int64_t>* bounds = new std::vector<int64_t>{
      100'000,        // 100µs
      250'000,        // 250µs
      500'000,        // 500µs
      1'000'000,      // 1ms
      2'500'000,      // 2.5ms
      5'000'000,      // 5ms
      10'000'000,     // 10ms
      25'000'000,     // 25ms
      50'000'000,     // 50ms
      100'000'000,    // 100ms
      250'000'000,    // 250ms
      500'000'000,    // 500ms
      1'000'000'000,  // 1s
      2'500'000'000,  // 2.5s
      5'000'000'000,  // 5s
  };
  return *bounds;
}

std::string CanonicalLabels(const MetricsRegistry::Labels& labels) {
  MetricsRegistry::Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [key, value] : sorted) {
    if (!out.empty()) out.push_back(',');
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out.push_back('"');
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = families_.try_emplace(std::string(name));
  Family& family = it->second;
  if (inserted) {
    family.type = 'c';
    family.help = std::string(help);
  } else if (family.type != 'c') {
    return DummyCounter();
  }
  auto& slot = family.counters[CanonicalLabels(labels)];
  if (slot == nullptr) slot = std::unique_ptr<Counter>(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = families_.try_emplace(std::string(name));
  Family& family = it->second;
  if (inserted) {
    family.type = 'g';
    family.help = std::string(help);
  } else if (family.type != 'g') {
    return DummyGauge();
  }
  auto& slot = family.gauges[CanonicalLabels(labels)];
  if (slot == nullptr) slot = std::unique_ptr<Gauge>(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<int64_t> bounds,
                                         double scale, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = families_.try_emplace(std::string(name));
  Family& family = it->second;
  if (inserted) {
    family.type = 'h';
    family.help = std::string(help);
  } else if (family.type != 'h') {
    return DummyHistogram();
  }
  auto& slot = family.histograms[CanonicalLabels(labels)];
  if (slot == nullptr) {
    slot = std::unique_ptr<Histogram>(new Histogram(std::move(bounds), scale));
  }
  return slot.get();
}

void MetricsRegistry::AddCollector(std::string name,
                                   std::function<std::string()> render) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_[std::move(name)] = std::move(render);
}

std::string MetricsRegistry::RenderPrometheus() const {
  // Collector callbacks may themselves consult the registry, so snapshot
  // them and run outside the lock.
  std::vector<std::function<std::string()>> collectors;
  std::string out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, family] : families_) {
      out += "# HELP " + name + " " + family.help + "\n";
      out += "# TYPE " + name + " ";
      out += family.type == 'c'   ? "counter"
             : family.type == 'g' ? "gauge"
                                  : "histogram";
      out.push_back('\n');
      for (const auto& [labels, counter] : family.counters) {
        out += SampleName(name, labels) + " " +
               FormatValue(static_cast<double>(counter->Value())) + "\n";
      }
      for (const auto& [labels, gauge] : family.gauges) {
        out += SampleName(name, labels) + " " +
               FormatValue(static_cast<double>(gauge->Value())) + "\n";
      }
      for (const auto& [labels, histogram] : family.histograms) {
        const std::vector<int64_t> counts = histogram->BucketCounts();
        const std::vector<int64_t>& bounds = histogram->bounds();
        int64_t cumulative = 0;
        for (size_t i = 0; i < bounds.size(); ++i) {
          cumulative += counts[i];
          out += SampleName(
                     name + "_bucket", labels,
                     "le=\"" +
                         FormatValue(static_cast<double>(bounds[i]) *
                                     histogram->scale()) +
                         "\"") +
                 " " + FormatValue(static_cast<double>(cumulative)) + "\n";
        }
        cumulative += counts.back();
        out += SampleName(name + "_bucket", labels, "le=\"+Inf\"") + " " +
               FormatValue(static_cast<double>(cumulative)) + "\n";
        out += SampleName(name + "_sum", labels) + " " +
               FormatValue(static_cast<double>(histogram->Sum()) *
                           histogram->scale()) +
               "\n";
        out += SampleName(name + "_count", labels) + " " +
               FormatValue(static_cast<double>(cumulative)) + "\n";
      }
    }
    collectors.reserve(collectors_.size());
    for (const auto& [name, render] : collectors_) {
      collectors.push_back(render);
    }
  }
  for (const auto& render : collectors) out += render();
  return out;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, counter] : family.counters) {
      out.push_back({name, labels, static_cast<double>(counter->Value())});
    }
    for (const auto& [labels, gauge] : family.gauges) {
      out.push_back({name, labels, static_cast<double>(gauge->Value())});
    }
    for (const auto& [labels, histogram] : family.histograms) {
      out.push_back({name + "_count", labels,
                     static_cast<double>(histogram->Count())});
      out.push_back({name + "_sum", labels,
                     static_cast<double>(histogram->Sum()) *
                         histogram->scale()});
    }
  }
  return out;
}

double MetricsRegistry::ValueOf(std::string_view name, std::string_view labels,
                                double fallback) const {
  for (const Sample& sample : Samples()) {
    if (sample.name == name && sample.labels == labels) return sample.value;
  }
  return fallback;
}

MetricsRegistry* DefaultRegistry() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

void RegisterFailpointCollector(MetricsRegistry* registry) {
  registry->AddCollector("failpoints", []() {
    std::string out =
        "# HELP xmlsec_failpoint_trips_total times each fault-injection "
        "site has fired since process start\n"
        "# TYPE xmlsec_failpoint_trips_total counter\n";
    for (std::string_view site : failpoint::Sites()) {
      out += "xmlsec_failpoint_trips_total{site=\"" + std::string(site) +
             "\"} " + std::to_string(failpoint::TriggerCount(site)) + "\n";
    }
    return out;
  });
}

}  // namespace obs
}  // namespace xmlsec
