#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace xmlsec {
namespace obs {

namespace {

int64_t ThresholdFromEnv() {
  const char* spec = std::getenv("XMLSEC_TRACE_SLOW_MS");
  if (spec == nullptr || *spec == '\0') return -1;
  char* end = nullptr;
  long long parsed = std::strtoll(spec, &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 0) return -1;
  return parsed;
}

std::atomic<int64_t>& Threshold() {
  static std::atomic<int64_t> threshold{ThresholdFromEnv()};
  return threshold;
}

}  // namespace

int64_t RequestTrace::NsOf(std::string_view name) const {
  for (const auto& [span, ns] : spans_) {
    if (span == name) return ns;
  }
  return -1;
}

std::string RequestTrace::Summary() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "total=%.3fms",
                static_cast<double>(ElapsedNs()) / 1e6);
  std::string out = buffer;
  for (const auto& [name, ns] : spans_) {
    std::snprintf(buffer, sizeof(buffer), " %.*s=%.3fms",
                  static_cast<int>(name.size()), name.data(),
                  static_cast<double>(ns) / 1e6);
    out += buffer;
  }
  return out;
}

int64_t SlowTraceThresholdMs() {
  return Threshold().load(std::memory_order_relaxed);
}

void SetSlowTraceThresholdMs(int64_t ms) {
  Threshold().store(ms < 0 ? -1 : ms, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace xmlsec
