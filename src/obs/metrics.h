#ifndef XMLSEC_OBS_METRICS_H_
#define XMLSEC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xmlsec {
namespace obs {

/// Observability subsystem: a registry of named counters, gauges, and
/// fixed-bucket histograms, with Prometheus text-format exposition.
///
/// Design goals (mirroring the `failpoint` armed-count pattern):
///
///  * The HOT PATH — `Counter::Inc`, `Histogram::Observe` — is a single
///    relaxed atomic add on a per-thread *shard*, so the worker pool of
///    the TCP listener never contends on a metrics cache line.  Values
///    are aggregated lazily, at scrape time.
///  * Registration is cheap but mutex-guarded; instrumented layers
///    resolve their handles ONCE (at construction) and keep raw
///    pointers.  Handles are stable for the registry's lifetime.
///  * Building with `-DXMLSEC_METRICS_NOOP=ON` compiles the hot path
///    out entirely (the ablation baseline for measuring instrumentation
///    overhead; see DESIGN.md "Observability").
///
/// Naming scheme: `xmlsec_<layer>_<what>_<unit>` with Prometheus
/// conventions (`_total` for counters, `_seconds` for latency
/// histograms, plain nouns for gauges).

/// Number of per-thread shards.  A power of two; threads are assigned
/// round-robin, so up to `kMetricShards` threads increment without ever
/// sharing a cache line.
inline constexpr size_t kMetricShards = 16;

namespace internal {
/// Stable shard index of the calling thread, in [0, kMetricShards).
size_t ThreadShard();
}  // namespace internal

/// Monotonic counter, sharded per thread.
class Counter {
 public:
  void Inc(int64_t delta = 1) {
#ifdef XMLSEC_METRICS_NOOP
    (void)delta;
#else
    shards_[internal::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
#endif
  }

  /// Sum over all shards (scrape path; not a hot-path call).
  int64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;

  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Point-in-time value (queue depth, busy workers).  Sets are rare and
/// absolute, so a single atomic suffices — no sharding.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram, sharded per thread.  Observations and bucket
/// upper bounds are integers in an arbitrary unit chosen at creation
/// (latency histograms use nanoseconds); `scale` converts to the
/// exposition unit (1e-9 renders nanoseconds as Prometheus seconds).
class Histogram {
 public:
  void Observe(int64_t value) {
#ifdef XMLSEC_METRICS_NOOP
    (void)value;
#else
    Shard& shard = shards_[internal::ThreadShard()];
    shard.counts[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
#endif
  }

  int64_t Count() const;  ///< total observations (all shards, all buckets)
  int64_t Sum() const;    ///< sum of observed values (unscaled unit)
  /// Per-bucket (non-cumulative) counts; last entry is the +Inf bucket.
  std::vector<int64_t> BucketCounts() const;
  const std::vector<int64_t>& bounds() const { return bounds_; }
  double scale() const { return scale_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::vector<int64_t> bounds, double scale);

  size_t BucketOf(int64_t value) const {
    size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;  // le: inclusive
    return i;
  }

  std::vector<int64_t> bounds_;  ///< ascending upper bounds; +Inf implicit
  double scale_;
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<int64_t>[]> counts;  ///< bounds_.size()+1
    std::atomic<int64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Default latency bucket bounds in nanoseconds: 100µs … 5s, roughly
/// logarithmic — wide enough for a cache hit and a pathological
/// million-node labeling run alike.
const std::vector<int64_t>& DefaultLatencyBoundsNs();

/// The registry: owns every metric, groups them into families (same
/// name, different label sets), renders the Prometheus text format.
///
/// `Get*` returns the existing metric when (name, labels) was already
/// registered — the help text and bucket layout of the first
/// registration win.  Asking for a name that exists with a DIFFERENT
/// type is a programming error and returns a process-wide dummy metric
/// (never nullptr, so call sites need no checks).
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help,
                      const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  const Labels& labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<int64_t> bounds, double scale = 1.0,
                          const Labels& labels = {});

  /// Registers a named collector: a callback whose output (complete
  /// exposition lines, each ending in '\n') is appended to every
  /// scrape.  Re-registering the same name replaces the callback — so
  /// layers can register idempotently.  Used to expose state owned by
  /// other subsystems (e.g. failpoint trip counts) without coupling
  /// them to obs.
  void AddCollector(std::string name, std::function<std::string()> render);

  /// Prometheus text exposition format (version 0.0.4): families sorted
  /// by name, `# HELP` / `# TYPE` once per family, histogram
  /// `_bucket{le=...}` series cumulative with a final `le="+Inf"`.
  std::string RenderPrometheus() const;

  /// Flat snapshot for tests and tools.  Histograms appear as
  /// `<name>_count` and `<name>_sum` samples.
  struct Sample {
    std::string name;
    std::string labels;  ///< canonical rendering, "" when unlabeled
    double value;
  };
  std::vector<Sample> Samples() const;

  /// Scrape-time value of a counter/gauge sample, or `fallback` when
  /// the (name, labels) pair does not exist.
  double ValueOf(std::string_view name, std::string_view labels = "",
                 double fallback = 0.0) const;

 private:
  struct Family {
    char type = 'c';  // 'c' counter, 'g' gauge, 'h' histogram
    std::string help;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
  std::map<std::string, std::function<std::string()>, std::less<>>
      collectors_;
};

/// The process-wide registry.  Layers default to it when no explicit
/// registry is configured; tests pass their own for isolation.
MetricsRegistry* DefaultRegistry();

/// Renders `k1="v1",k2="v2"` with keys sorted and values escaped per
/// the exposition format (backslash, double-quote, newline).
std::string CanonicalLabels(const MetricsRegistry::Labels& labels);

/// Registers the `xmlsec_failpoint_trips_total{site=...}` collector on
/// `registry` (idempotent), exposing `failpoint::TriggerCount` per site
/// so chaos drills and production fault telemetry share one scrape.
void RegisterFailpointCollector(MetricsRegistry* registry);

}  // namespace obs
}  // namespace xmlsec

#endif  // XMLSEC_OBS_METRICS_H_
