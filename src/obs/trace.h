#ifndef XMLSEC_OBS_TRACE_H_
#define XMLSEC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xmlsec {
namespace obs {

/// Per-request stage trace.
///
/// One `RequestTrace` rides along a single request through the serving
/// pipeline (parse → auth → cache probe → repository lookup → labeling →
/// prune → loosen → query/serialize → audit), recording how long each
/// stage took.  It is intentionally NOT thread-safe: a request is served
/// by exactly one worker, and the trace dies with the response — only
/// its aggregates (stage histograms, slow-request log lines) survive.
///
/// Usage:
///
///     obs::RequestTrace trace;
///     {
///       auto span = trace.Span("auth");
///       Authenticate(...);
///     }                       // span closes, duration recorded
///     trace.Record("label", stats.label_ns);   // externally-timed stage
///     if (trace.ElapsedNs() >= threshold) log(trace.Summary());
class RequestTrace {
 public:
  using Clock = std::chrono::steady_clock;

  RequestTrace() : start_(Clock::now()) {}
  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  /// RAII span: records `now - construction` under `name` when it goes
  /// out of scope.
  class Scope {
   public:
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      trace_->Record(name_, std::chrono::duration_cast<
                                std::chrono::nanoseconds>(Clock::now() -
                                                          begin_)
                                .count());
    }

   private:
    friend class RequestTrace;
    Scope(RequestTrace* trace, std::string_view name)
        : trace_(trace), name_(name), begin_(Clock::now()) {}
    RequestTrace* trace_;
    std::string_view name_;  ///< must outlive the scope (string literals)
    Clock::time_point begin_;
  };

  /// Opens a span named `name` (a string literal; the trace keeps the
  /// view).  Guaranteed copy elision makes the returned Scope live in
  /// the caller's frame.
  Scope Span(std::string_view name) { return Scope(this, name); }

  /// Records an externally-measured stage duration.
  void Record(std::string_view name, int64_t ns) {
    spans_.emplace_back(name, ns);
  }

  /// Duration of the first span named `name`, or -1 when absent.
  int64_t NsOf(std::string_view name) const;

  /// Wall-clock nanoseconds since the trace was constructed.
  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

  const std::vector<std::pair<std::string_view, int64_t>>& spans() const {
    return spans_;
  }

  /// One-line breakdown: `total=12.345ms auth=0.021ms label=7.9ms ...`
  /// — the payload of a slow-request audit record.
  std::string Summary() const;

 private:
  Clock::time_point start_;
  std::vector<std::pair<std::string_view, int64_t>> spans_;
};

/// The slow-request threshold in milliseconds, from the
/// `XMLSEC_TRACE_SLOW_MS` environment variable (read once):
///
///   * unset / unparsable / negative → -1: slow tracing disabled;
///   * 0 → every request is considered slow (drill / debugging mode);
///   * N > 0 → requests taking ≥ N ms log their span breakdown through
///     the audit sink.
int64_t SlowTraceThresholdMs();

/// Overrides the threshold at runtime (tests, `xacl_tool`).  Pass the
/// same semantics as the environment variable; this wins over it.
void SetSlowTraceThresholdMs(int64_t ms);

}  // namespace obs
}  // namespace xmlsec

#endif  // XMLSEC_OBS_TRACE_H_
