#ifndef XMLSEC_XPATH_PARSER_H_
#define XMLSEC_XPATH_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "xpath/ast.h"

namespace xmlsec {
namespace xpath {

/// Compiles an XPath 1.0 expression to an AST.
///
/// Supports the full location-path sublanguage the paper's authorization
/// objects use (absolute/relative paths, `//`, `.`, `..`, `@`, wildcards,
/// axes with `::`, positional and boolean predicates) plus general
/// expressions (boolean/relational/arithmetic operators, function calls,
/// string and number literals, union `|`, filter expressions).
Result<std::unique_ptr<Expr>> CompileXPath(std::string_view text);

}  // namespace xpath
}  // namespace xmlsec

#endif  // XMLSEC_XPATH_PARSER_H_
