#ifndef XMLSEC_XPATH_EVALUATOR_H_
#define XMLSEC_XPATH_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/dom.h"
#include "xpath/ast.h"
#include "xpath/value.h"

namespace xmlsec {
namespace xpath {

/// Values for `$name` variable references.  Unknown variables are
/// evaluation errors (XPath 1.0 semantics).
using VariableBindings = std::map<std::string, Value, std::less<>>;

/// Evaluates compiled XPath expressions against a DOM tree.
///
/// The evaluator is stateless across calls and safe to reuse; node-set
/// results are returned in document order (the owning document must have
/// been `Reindex()`ed, which the parser guarantees).
class Evaluator {
 public:
  Evaluator() = default;

  /// Evaluates `expr` with `context` as the context node (position 1,
  /// size 1).  `context` may be the document node or any node within it.
  /// `variables` supplies values for `$name` references (may be null).
  Result<Value> Evaluate(const Expr& expr, const xml::Node* context,
                         const VariableBindings* variables = nullptr) const;

  /// Evaluates and requires a node-set result.
  Result<NodeSet> SelectNodes(const Expr& expr, const xml::Node* context,
                              const VariableBindings* variables = nullptr) const;
};

/// One-shot convenience: compile and evaluate `expr_text` against
/// `context`.
Result<Value> EvaluateXPath(std::string_view expr_text,
                            const xml::Node* context,
                            const VariableBindings* variables = nullptr);

/// One-shot convenience returning a node-set.
Result<NodeSet> SelectXPath(std::string_view expr_text,
                            const xml::Node* context,
                            const VariableBindings* variables = nullptr);

}  // namespace xpath
}  // namespace xmlsec

#endif  // XMLSEC_XPATH_EVALUATOR_H_
