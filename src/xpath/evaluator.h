#ifndef XMLSEC_XPATH_EVALUATOR_H_
#define XMLSEC_XPATH_EVALUATOR_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/dom.h"
#include "xpath/ast.h"
#include "xpath/value.h"

namespace xmlsec {
namespace xpath {

/// Values for `$name` variable references.  Unknown variables are
/// evaluation errors (XPath 1.0 semantics).
using VariableBindings = std::map<std::string, Value, std::less<>>;

/// The reserved accessibility-guard function the query rewriter
/// (src/rewrite) injects as the first predicate of every step.  It is
/// not part of the user-facing XPath surface: without hooks the name is
/// rejected exactly like any unknown function, so a user query carrying
/// it cannot widen its own view (the rewriter additionally refuses to
/// rewrite such a query).
inline constexpr std::string_view kAccessibleFunctionName =
    "__xmlsec-accessible";

/// Callbacks a policy-aware evaluation threads through every step.  When
/// `node_visible` is set, the reserved guard function resolves through
/// it, and string-values (hence comparisons, string(), number(), sum(),
/// ...) are computed over visible text only — evaluation behaves as if
/// it ran over the materialized view while touching the original tree.
struct EvalHooks {
  NodeFilter node_visible;
};

/// Evaluates compiled XPath expressions against a DOM tree.
///
/// The evaluator is stateless across calls and safe to reuse; node-set
/// results are returned in document order (the owning document must have
/// been `Reindex()`ed, which the parser guarantees).
class Evaluator {
 public:
  Evaluator() = default;

  /// Evaluates `expr` with `context` as the context node (position 1,
  /// size 1).  `context` may be the document node or any node within it.
  /// `variables` supplies values for `$name` references (may be null).
  /// `hooks` (may be null) enables policy-aware evaluation — see
  /// `EvalHooks`.
  Result<Value> Evaluate(const Expr& expr, const xml::Node* context,
                         const VariableBindings* variables = nullptr,
                         const EvalHooks* hooks = nullptr) const;

  /// Evaluates and requires a node-set result.
  Result<NodeSet> SelectNodes(const Expr& expr, const xml::Node* context,
                              const VariableBindings* variables = nullptr,
                              const EvalHooks* hooks = nullptr) const;
};

/// One-shot convenience: compile and evaluate `expr_text` against
/// `context`.
Result<Value> EvaluateXPath(std::string_view expr_text,
                            const xml::Node* context,
                            const VariableBindings* variables = nullptr);

/// One-shot convenience returning a node-set.
Result<NodeSet> SelectXPath(std::string_view expr_text,
                            const xml::Node* context,
                            const VariableBindings* variables = nullptr);

}  // namespace xpath
}  // namespace xmlsec

#endif  // XMLSEC_XPATH_EVALUATOR_H_
