#include "xpath/evaluator.h"

#include <cmath>
#include <functional>
#include <limits>

#include "common/str_util.h"
#include "xml/dtd.h"
#include "xpath/parser.h"

namespace xmlsec {
namespace xpath {

namespace {

using xml::Attr;
using xml::Document;
using xml::Element;
using xml::Node;
using xml::NodeType;

/// Evaluation context: the context node plus the proximity position and
/// size used by position() and last().
struct Context {
  const Node* node;
  size_t position;  // 1-based
  size_t size;
  const VariableBindings* variables;  // may be null
};

const Node* RootOf(const Node* node) {
  const Node* cur = node;
  while (cur->parent() != nullptr) cur = cur->parent();
  return cur;
}

class EvalImpl {
 public:
  EvalImpl(const VariableBindings* variables, const EvalHooks* hooks)
      : ctx_variables_(variables), hooks_(hooks) {}

  Result<Value> Evaluate(const Expr& expr, const Context& ctx) const {
    switch (expr.kind) {
      case Expr::Kind::kBinary:
        return EvaluateBinary(expr, ctx);
      case Expr::Kind::kNegate: {
        XMLSEC_ASSIGN_OR_RETURN(Value inner, Evaluate(*expr.operand, ctx));
        return Value(-ToNumberV(inner));
      }
      case Expr::Kind::kLiteral:
        return Value(expr.literal);
      case Expr::Kind::kNumber:
        return Value(expr.number);
      case Expr::Kind::kVariable: {
        if (ctx.variables != nullptr) {
          auto it = ctx.variables->find(expr.literal);
          if (it != ctx.variables->end()) return it->second;
        }
        return Status::InvalidArgument("unbound XPath variable '$" +
                                       expr.literal + "'");
      }
      case Expr::Kind::kFunctionCall:
        return EvaluateFunction(expr, ctx);
      case Expr::Kind::kPath:
        return EvaluatePath(expr, ctx);
    }
    return Status::Internal("unknown expression kind");
  }

 private:
  // --- Operators -------------------------------------------------------

  Result<Value> EvaluateBinary(const Expr& expr, const Context& ctx) const {
    if (expr.op == BinaryOp::kOr || expr.op == BinaryOp::kAnd) {
      XMLSEC_ASSIGN_OR_RETURN(Value lhs, Evaluate(*expr.lhs, ctx));
      bool l = lhs.ToBool();
      if (expr.op == BinaryOp::kOr && l) return Value(true);
      if (expr.op == BinaryOp::kAnd && !l) return Value(false);
      XMLSEC_ASSIGN_OR_RETURN(Value rhs, Evaluate(*expr.rhs, ctx));
      return Value(rhs.ToBool());
    }

    XMLSEC_ASSIGN_OR_RETURN(Value lhs, Evaluate(*expr.lhs, ctx));
    XMLSEC_ASSIGN_OR_RETURN(Value rhs, Evaluate(*expr.rhs, ctx));

    switch (expr.op) {
      case BinaryOp::kEq:
      case BinaryOp::kNeq:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return Value(Compare(expr.op, lhs, rhs));
      case BinaryOp::kAdd:
        return Value(ToNumberV(lhs) + ToNumberV(rhs));
      case BinaryOp::kSub:
        return Value(ToNumberV(lhs) - ToNumberV(rhs));
      case BinaryOp::kMul:
        return Value(ToNumberV(lhs) * ToNumberV(rhs));
      case BinaryOp::kDiv:
        return Value(ToNumberV(lhs) / ToNumberV(rhs));
      case BinaryOp::kMod:
        return Value(std::fmod(ToNumberV(lhs), ToNumberV(rhs)));
      case BinaryOp::kUnion: {
        if (!lhs.is_node_set() || !rhs.is_node_set()) {
          return Status::InvalidArgument(
              "operands of '|' must be node-sets");
        }
        NodeSet merged = lhs.nodes();
        merged.insert(merged.end(), rhs.nodes().begin(), rhs.nodes().end());
        SortDocumentOrder(&merged);
        return Value(std::move(merged));
      }
      default:
        return Status::Internal("unexpected binary operator");
    }
  }

  static bool NumCompare(BinaryOp op, double a, double b) {
    switch (op) {
      case BinaryOp::kEq:
        return a == b;
      case BinaryOp::kNeq:
        return a != b;
      case BinaryOp::kLt:
        return a < b;
      case BinaryOp::kLe:
        return a <= b;
      case BinaryOp::kGt:
        return a > b;
      case BinaryOp::kGe:
        return a >= b;
      default:
        return false;
    }
  }

  /// String-value through the visibility hook when one is installed:
  /// policy-aware evaluation must read the text the *view* would carry,
  /// not the original document's.
  std::string StringValue(const Node& node) const {
    if (hooks_ != nullptr && hooks_->node_visible) {
      return StringValueOf(node, hooks_->node_visible);
    }
    return StringValueOf(node);
  }

  /// `Value::ToString`/`ToNumber` with the node-set case routed through
  /// the hook-aware string-value (Value itself cannot know about hooks).
  std::string ToStringV(const Value& v) const {
    if (v.is_node_set()) {
      return v.nodes().empty() ? std::string()
                               : StringValue(*v.nodes().front());
    }
    return v.ToString();
  }
  double ToNumberV(const Value& v) const {
    if (v.is_node_set()) return StringToNumber(ToStringV(v));
    return v.ToNumber();
  }

  /// XPath 1.0 §3.4 comparison semantics.
  bool Compare(BinaryOp op, const Value& lhs, const Value& rhs) const {
    const bool relational = op == BinaryOp::kLt || op == BinaryOp::kLe ||
                            op == BinaryOp::kGt || op == BinaryOp::kGe;
    if (lhs.is_node_set() && rhs.is_node_set()) {
      for (const Node* a : lhs.nodes()) {
        const std::string sa = StringValue(*a);
        for (const Node* b : rhs.nodes()) {
          const std::string sb = StringValue(*b);
          bool hit = relational
                         ? NumCompare(op, StringToNumber(sa),
                                      StringToNumber(sb))
                         : (op == BinaryOp::kEq ? sa == sb : sa != sb);
          if (hit) return true;
        }
      }
      return false;
    }
    if (lhs.is_node_set() || rhs.is_node_set()) {
      const Value& set = lhs.is_node_set() ? lhs : rhs;
      const Value& other = lhs.is_node_set() ? rhs : lhs;
      const bool set_on_left = lhs.is_node_set();
      if (!relational && other.kind() == Value::Kind::kBool) {
        bool a = set.ToBool();
        bool b = other.ToBool();
        return op == BinaryOp::kEq ? a == b : a != b;
      }
      for (const Node* n : set.nodes()) {
        const std::string sv = StringValue(*n);
        bool hit;
        if (relational || other.kind() == Value::Kind::kNumber ||
            other.kind() == Value::Kind::kBool) {
          double a = StringToNumber(sv);
          double b = other.ToNumber();
          hit = set_on_left ? NumCompare(op, a, b) : NumCompare(op, b, a);
        } else {
          const std::string b = other.ToString();
          hit = op == BinaryOp::kEq ? sv == b : sv != b;
        }
        if (hit) return true;
      }
      return false;
    }
    // Neither operand is a node-set.
    if (relational) {
      return NumCompare(op, lhs.ToNumber(), rhs.ToNumber());
    }
    if (lhs.kind() == Value::Kind::kBool ||
        rhs.kind() == Value::Kind::kBool) {
      bool a = lhs.ToBool();
      bool b = rhs.ToBool();
      return op == BinaryOp::kEq ? a == b : a != b;
    }
    if (lhs.kind() == Value::Kind::kNumber ||
        rhs.kind() == Value::Kind::kNumber) {
      return NumCompare(op, lhs.ToNumber(), rhs.ToNumber());
    }
    return op == BinaryOp::kEq ? lhs.ToString() == rhs.ToString()
                               : lhs.ToString() != rhs.ToString();
  }

  // --- Paths -----------------------------------------------------------

  Result<Value> EvaluatePath(const Expr& expr, const Context& ctx) const {
    NodeSet current;
    if (expr.base != nullptr) {
      XMLSEC_ASSIGN_OR_RETURN(Value base, Evaluate(*expr.base, ctx));
      if (!expr.base_predicates.empty() || !expr.steps.empty()) {
        if (!base.is_node_set()) {
          return Status::InvalidArgument(
              "filter/path applied to a non-node-set value");
        }
      }
      if (!base.is_node_set()) return base;  // Parenthesized primary.
      current = base.nodes();
      for (const auto& pred : expr.base_predicates) {
        XMLSEC_ASSIGN_OR_RETURN(current, FilterByPredicate(*pred, current));
      }
      if (expr.steps.empty() && expr.base_predicates.empty()) {
        return Value(std::move(current));
      }
    } else if (expr.absolute) {
      current.push_back(RootOf(ctx.node));
    } else {
      current.push_back(ctx.node);
    }

    for (const Step& step : expr.steps) {
      NodeSet next;
      for (const Node* node : current) {
        XMLSEC_ASSIGN_OR_RETURN(NodeSet selected, ApplyStep(step, node));
        next.insert(next.end(), selected.begin(), selected.end());
      }
      SortDocumentOrder(&next);
      current = std::move(next);
    }
    return Value(std::move(current));
  }

  const VariableBindings* ctx_variables_;
  const EvalHooks* hooks_;

  Result<NodeSet> ApplyStep(const Step& step, const Node* node) const {
    NodeSet candidates = AxisNodes(step.axis, node);
    NodeSet tested;
    tested.reserve(candidates.size());
    for (const Node* candidate : candidates) {
      if (MatchesTest(step, candidate)) tested.push_back(candidate);
    }
    for (const auto& pred : step.predicates) {
      // Fast path for the rewriter's injected guard (always the first
      // predicate of a rewritten step): a bare membership filter needs
      // no per-candidate context or value boxing — and on large
      // candidate lists that generic machinery costs more than the
      // visibility checks themselves.  Semantics are identical to the
      // generic path: the guard returns a boolean, so position-mapping
      // never applies, and without hooks the generic path still
      // rejects the reserved name as unknown.
      if (hooks_ != nullptr && hooks_->node_visible &&
          pred->kind == Expr::Kind::kFunctionCall &&
          pred->function_name == kAccessibleFunctionName &&
          pred->args.empty()) {
        NodeSet kept;
        kept.reserve(tested.size());
        for (const Node* candidate : tested) {
          if (hooks_->node_visible(candidate)) kept.push_back(candidate);
        }
        tested = std::move(kept);
        continue;
      }
      XMLSEC_ASSIGN_OR_RETURN(tested, FilterByPredicate(*pred, tested));
    }
    return tested;
  }

  /// Applies one predicate to a candidate list.  `AxisNodes` yields
  /// candidates in *axis order* for every axis (reverse axes emit the
  /// nearest node first), so the proximity position is simply the list
  /// index + 1.
  Result<NodeSet> FilterByPredicate(const Expr& pred,
                                    const NodeSet& nodes) const {
    NodeSet out;
    const size_t size = nodes.size();
    for (size_t i = 0; i < nodes.size(); ++i) {
      const size_t position = i + 1;
      Context sub{nodes[i], position, size, ctx_variables_};
      XMLSEC_ASSIGN_OR_RETURN(Value v, Evaluate(pred, sub));
      bool keep;
      if (v.kind() == Value::Kind::kNumber) {
        keep = v.ToNumber() == static_cast<double>(position);
      } else {
        keep = v.ToBool();
      }
      if (keep) out.push_back(nodes[i]);
    }
    return out;
  }

  /// Nodes on `axis` from `node`, in axis order (document order for
  /// forward axes, reverse document order handled by position logic).
  static NodeSet AxisNodes(Axis axis, const Node* node) {
    NodeSet out;
    switch (axis) {
      case Axis::kChild:
        for (const auto& child : node->children()) out.push_back(child.get());
        break;
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        if (axis == Axis::kDescendantOrSelf) out.push_back(node);
        CollectDescendants(node, &out);
        break;
      }
      case Axis::kParent: {
        if (node->parent() != nullptr) out.push_back(node->parent());
        break;
      }
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf: {
        if (axis == Axis::kAncestorOrSelf) out.push_back(node);
        for (const Node* p = node->parent(); p != nullptr; p = p->parent()) {
          out.push_back(p);
        }
        break;
      }
      case Axis::kSelf:
        out.push_back(node);
        break;
      case Axis::kAttribute: {
        if (const Element* el = node->AsElement()) {
          for (const auto& attr : el->attributes()) out.push_back(attr.get());
        }
        break;
      }
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling: {
        const Node* parent = node->parent();
        if (parent == nullptr || node->IsAttribute()) break;
        bool after = false;
        NodeSet before;
        for (const auto& sibling : parent->children()) {
          if (sibling.get() == node) {
            after = true;
            continue;
          }
          if (after && axis == Axis::kFollowingSibling) {
            out.push_back(sibling.get());
          } else if (!after && axis == Axis::kPrecedingSibling) {
            before.push_back(sibling.get());
          }
        }
        if (axis == Axis::kPrecedingSibling) {
          // Reverse axis order: nearest sibling first.
          out.assign(before.rbegin(), before.rend());
        }
        break;
      }
      case Axis::kFollowing:
      case Axis::kPreceding: {
        // All nodes after (before) this node in document order, excluding
        // descendants (ancestors) and attributes.
        const Node* root = RootOf(node);
        const Node* anchor = node->IsAttribute() ? node->parent() : node;
        NodeSet all;
        CollectDescendants(root, &all);
        for (const Node* candidate : all) {
          if (candidate->IsAttribute()) continue;
          if (axis == Axis::kFollowing) {
            if (candidate->doc_order() > anchor->doc_order() &&
                !xml::IsAncestorOrSelf(anchor, candidate)) {
              out.push_back(candidate);
            }
          } else {
            if (candidate->doc_order() < anchor->doc_order() &&
                !xml::IsAncestorOrSelf(candidate, anchor)) {
              out.push_back(candidate);
            }
          }
        }
        if (axis == Axis::kPreceding) {
          NodeSet reversed(out.rbegin(), out.rend());
          out = std::move(reversed);
        }
        break;
      }
    }
    return out;
  }

  static void CollectDescendants(const Node* node, NodeSet* out) {
    for (const auto& child : node->children()) {
      out->push_back(child.get());
      CollectDescendants(child.get(), out);
    }
  }

  static bool MatchesTest(const Step& step, const Node* node) {
    const bool principal_is_attribute = step.axis == Axis::kAttribute;
    switch (step.test) {
      case NodeTestKind::kName:
        if (principal_is_attribute) {
          return node->IsAttribute() && node->NodeName() == step.name;
        }
        return node->IsElement() && node->NodeName() == step.name;
      case NodeTestKind::kWildcard:
        return principal_is_attribute ? node->IsAttribute()
                                      : node->IsElement();
      case NodeTestKind::kText:
        return node->IsText();
      case NodeTestKind::kComment:
        return node->type() == NodeType::kComment;
      case NodeTestKind::kPi:
        return node->type() == NodeType::kProcessingInstruction &&
               (step.name.empty() || node->NodeName() == step.name);
      case NodeTestKind::kAnyNode:
        return true;
    }
    return false;
  }

  // --- Functions -------------------------------------------------------

  Result<Value> EvaluateFunction(const Expr& expr, const Context& ctx) const {
    const std::string& name = expr.function_name;
    auto arity_error = [&](const char* expected) {
      return Status::InvalidArgument("XPath function " + name + "() expects " +
                                     expected + " argument(s), got " +
                                     std::to_string(expr.args.size()));
    };

    // Zero-argument context functions.
    if (name == "last") {
      if (!expr.args.empty()) return arity_error("0");
      return Value(static_cast<double>(ctx.size));
    }
    if (name == "position") {
      if (!expr.args.empty()) return arity_error("0");
      return Value(static_cast<double>(ctx.position));
    }
    if (name == "true") {
      if (!expr.args.empty()) return arity_error("0");
      return Value(true);
    }
    if (name == "false") {
      if (!expr.args.empty()) return arity_error("0");
      return Value(false);
    }
    if (name == kAccessibleFunctionName) {
      // The rewriter's injected accessibility guard.  Resolvable only
      // under policy-aware hooks — in a plain evaluation the reserved
      // name fails like any unknown function, so user input can never
      // invoke (or spoof) the guard.
      if (hooks_ == nullptr || !hooks_->node_visible) {
        return Status::InvalidArgument("unknown XPath function '" + name +
                                       "'");
      }
      if (!expr.args.empty()) return arity_error("0");
      return Value(hooks_->node_visible(ctx.node));
    }

    // Evaluate arguments eagerly (no lazy semantics needed).
    std::vector<Value> args;
    args.reserve(expr.args.size());
    for (const auto& arg : expr.args) {
      XMLSEC_ASSIGN_OR_RETURN(Value v, Evaluate(*arg, ctx));
      args.push_back(std::move(v));
    }

    if (name == "count") {
      if (args.size() != 1 || !args[0].is_node_set()) {
        return Status::InvalidArgument("count() expects one node-set");
      }
      return Value(static_cast<double>(args[0].nodes().size()));
    }
    if (name == "id") {
      if (args.size() != 1) return arity_error("1");
      return EvaluateIdFunction(args[0], ctx);
    }
    if (name == "name" || name == "local-name") {
      if (args.size() > 1) return arity_error("0 or 1");
      const Node* target = ctx.node;
      if (!args.empty()) {
        if (!args[0].is_node_set()) {
          return Status::InvalidArgument(name + "() expects a node-set");
        }
        if (args[0].nodes().empty()) return Value(std::string());
        target = args[0].nodes().front();
      }
      switch (target->type()) {
        case NodeType::kElement:
        case NodeType::kAttribute:
        case NodeType::kProcessingInstruction:
          return Value(target->NodeName());
        default:
          return Value(std::string());
      }
    }
    if (name == "string") {
      if (args.size() > 1) return arity_error("0 or 1");
      if (args.empty()) return Value(StringValue(*ctx.node));
      return Value(ToStringV(args[0]));
    }
    if (name == "concat") {
      if (args.size() < 2) return arity_error("2 or more");
      std::string out;
      for (const Value& v : args) out += ToStringV(v);
      return Value(std::move(out));
    }
    if (name == "starts-with") {
      if (args.size() != 2) return arity_error("2");
      return Value(StartsWith(ToStringV(args[0]), ToStringV(args[1])));
    }
    if (name == "contains") {
      if (args.size() != 2) return arity_error("2");
      return Value(ToStringV(args[0]).find(ToStringV(args[1])) !=
                   std::string::npos);
    }
    if (name == "substring-before") {
      if (args.size() != 2) return arity_error("2");
      std::string s = ToStringV(args[0]);
      size_t pos = s.find(ToStringV(args[1]));
      return Value(pos == std::string::npos ? std::string()
                                            : s.substr(0, pos));
    }
    if (name == "substring-after") {
      if (args.size() != 2) return arity_error("2");
      std::string s = ToStringV(args[0]);
      std::string needle = ToStringV(args[1]);
      size_t pos = s.find(needle);
      return Value(pos == std::string::npos ? std::string()
                                            : s.substr(pos + needle.size()));
    }
    if (name == "substring") {
      if (args.size() != 2 && args.size() != 3) return arity_error("2 or 3");
      return EvaluateSubstring(args);
    }
    if (name == "string-length") {
      if (args.size() > 1) return arity_error("0 or 1");
      std::string s =
          args.empty() ? StringValue(*ctx.node) : ToStringV(args[0]);
      return Value(static_cast<double>(s.size()));
    }
    if (name == "normalize-space") {
      if (args.size() > 1) return arity_error("0 or 1");
      std::string s =
          args.empty() ? StringValue(*ctx.node) : ToStringV(args[0]);
      return Value(NormalizeSpace(s));
    }
    if (name == "translate") {
      if (args.size() != 3) return arity_error("3");
      std::string s = ToStringV(args[0]);
      std::string from = ToStringV(args[1]);
      std::string to = ToStringV(args[2]);
      std::string out;
      out.reserve(s.size());
      for (char c : s) {
        size_t pos = from.find(c);
        if (pos == std::string::npos) {
          out.push_back(c);
        } else if (pos < to.size()) {
          out.push_back(to[pos]);
        }  // else: removed
      }
      return Value(std::move(out));
    }
    if (name == "boolean") {
      if (args.size() != 1) return arity_error("1");
      return Value(args[0].ToBool());
    }
    if (name == "not") {
      if (args.size() != 1) return arity_error("1");
      return Value(!args[0].ToBool());
    }
    if (name == "number") {
      if (args.size() > 1) return arity_error("0 or 1");
      if (args.empty()) return Value(StringToNumber(StringValue(*ctx.node)));
      return Value(ToNumberV(args[0]));
    }
    if (name == "sum") {
      if (args.size() != 1 || !args[0].is_node_set()) {
        return Status::InvalidArgument("sum() expects one node-set");
      }
      double total = 0;
      for (const Node* n : args[0].nodes()) {
        total += StringToNumber(StringValue(*n));
      }
      return Value(total);
    }
    if (name == "floor") {
      if (args.size() != 1) return arity_error("1");
      return Value(std::floor(ToNumberV(args[0])));
    }
    if (name == "ceiling") {
      if (args.size() != 1) return arity_error("1");
      return Value(std::ceil(ToNumberV(args[0])));
    }
    if (name == "round") {
      if (args.size() != 1) return arity_error("1");
      double v = ToNumberV(args[0]);
      if (std::isnan(v) || std::isinf(v)) return Value(v);
      return Value(std::floor(v + 0.5));
    }
    return Status::InvalidArgument("unknown XPath function '" + name + "'");
  }

  Result<Value> EvaluateSubstring(const std::vector<Value>& args) const {
    std::string s = ToStringV(args[0]);
    double start = ToNumberV(args[1]);
    double length = args.size() == 3
                        ? ToNumberV(args[2])
                        : std::numeric_limits<double>::infinity();
    if (std::isnan(start) || std::isnan(length)) return Value(std::string());
    double begin = std::floor(start + 0.5);
    double end = args.size() == 3 ? begin + std::floor(length + 0.5)
                                  : std::numeric_limits<double>::infinity();
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
      double pos = static_cast<double>(i + 1);
      if (pos >= begin && pos < end) out.push_back(s[i]);
    }
    return Value(std::move(out));
  }

  Result<Value> EvaluateIdFunction(const Value& arg,
                                   const Context& ctx) const {
    // Gather the requested IDs.
    std::vector<std::string> wanted;
    if (arg.is_node_set()) {
      for (const Node* n : arg.nodes()) {
        for (std::string& token : SplitString(StringValue(*n), ' ')) {
          if (!token.empty()) wanted.push_back(std::move(token));
        }
      }
    } else {
      std::string joined = ToStringV(arg);
      std::string current;
      for (char c : joined + " ") {
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
          if (!current.empty()) wanted.push_back(current);
          current.clear();
        } else {
          current.push_back(c);
        }
      }
    }
    const Node* root = RootOf(ctx.node);
    const Document* doc = root->type() == NodeType::kDocument
                              ? static_cast<const Document*>(root)
                              : nullptr;
    const xml::Dtd* dtd = doc != nullptr ? doc->dtd() : nullptr;
    NodeSet out;
    if (dtd != nullptr) {
      NodeSet all;
      all.push_back(root);
      CollectDescendants(root, &all);
      for (const Node* n : all) {
        const Element* el = n->AsElement();
        if (el == nullptr) continue;
        if (hooks_ != nullptr && hooks_->node_visible &&
            !hooks_->node_visible(el)) {
          continue;  // Policy-aware: hidden elements are not addressable.
        }
        for (const auto& attr : el->attributes()) {
          if (hooks_ != nullptr && hooks_->node_visible &&
              !hooks_->node_visible(attr.get())) {
            continue;
          }
          const xml::AttrDecl* decl = dtd->FindAttr(el->tag(), attr->name());
          if (decl == nullptr || decl->type != xml::AttrType::kId) continue;
          for (const std::string& id : wanted) {
            if (attr->value() == id) {
              out.push_back(el);
              break;
            }
          }
        }
      }
    }
    SortDocumentOrder(&out);
    return Value(std::move(out));
  }
};

}  // namespace

Result<Value> Evaluator::Evaluate(const Expr& expr, const xml::Node* context,
                                  const VariableBindings* variables,
                                  const EvalHooks* hooks) const {
  if (context == nullptr) {
    return Status::InvalidArgument("XPath context node is null");
  }
  EvalImpl impl(variables, hooks);
  Context ctx{context, 1, 1, variables};
  return impl.Evaluate(expr, ctx);
}

Result<NodeSet> Evaluator::SelectNodes(
    const Expr& expr, const xml::Node* context,
    const VariableBindings* variables, const EvalHooks* hooks) const {
  XMLSEC_ASSIGN_OR_RETURN(Value v, Evaluate(expr, context, variables, hooks));
  if (!v.is_node_set()) {
    return Status::InvalidArgument(
        "XPath expression does not yield a node-set: " + expr.ToString());
  }
  return std::move(v.nodes());
}

Result<Value> EvaluateXPath(std::string_view expr_text,
                            const xml::Node* context,
                            const VariableBindings* variables) {
  XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr,
                          CompileXPath(expr_text));
  Evaluator evaluator;
  return evaluator.Evaluate(*expr, context, variables);
}

Result<NodeSet> SelectXPath(std::string_view expr_text,
                            const xml::Node* context,
                            const VariableBindings* variables) {
  XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr,
                          CompileXPath(expr_text));
  Evaluator evaluator;
  return evaluator.SelectNodes(*expr, context, variables);
}

}  // namespace xpath
}  // namespace xmlsec
