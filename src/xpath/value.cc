#include "xpath/value.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"

namespace xmlsec {
namespace xpath {

bool Value::ToBool() const {
  switch (kind_) {
    case Kind::kNodeSet:
      return !nodes_.empty();
    case Kind::kBool:
      return bool_;
    case Kind::kNumber:
      return number_ != 0 && !std::isnan(number_);
    case Kind::kString:
      return !string_.empty();
  }
  return false;
}

double Value::ToNumber() const {
  switch (kind_) {
    case Kind::kNodeSet:
      return StringToNumber(ToString());
    case Kind::kBool:
      return bool_ ? 1.0 : 0.0;
    case Kind::kNumber:
      return number_;
    case Kind::kString:
      return StringToNumber(string_);
  }
  return std::nan("");
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNodeSet:
      return nodes_.empty() ? std::string() : StringValueOf(*nodes_.front());
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber:
      return NumberToString(number_);
    case Kind::kString:
      return string_;
  }
  return std::string();
}

std::string StringValueOf(const xml::Node& node) {
  switch (node.type()) {
    case xml::NodeType::kElement:
      return static_cast<const xml::Element&>(node).TextContent();
    case xml::NodeType::kDocument: {
      const xml::Element* root =
          static_cast<const xml::Document&>(node).root();
      return root != nullptr ? root->TextContent() : std::string();
    }
    default:
      return node.NodeValue();
  }
}

namespace {

/// Mirrors Element::TextContent but skips subtrees the filter hides.  An
/// element that fails the filter contributes nothing: a visible text node
/// implies its whole ancestor chain is in the view (projector.cc keeps a
/// text node only under a self-permitted — hence kept — element), so
/// descending into hidden elements could never find visible text.
void AppendVisibleText(const xml::Node& node, const NodeFilter& filter,
                       std::string* out) {
  for (const auto& child : node.children()) {
    if (child->IsText()) {
      if (filter(child.get())) out->append(child->NodeValue());
    } else if (child->IsElement()) {
      if (filter(child.get())) AppendVisibleText(*child, filter, out);
    }
  }
}

}  // namespace

std::string StringValueOf(const xml::Node& node, const NodeFilter& filter) {
  if (!filter) return StringValueOf(node);
  switch (node.type()) {
    case xml::NodeType::kElement: {
      std::string out;
      AppendVisibleText(node, filter, &out);
      return out;
    }
    case xml::NodeType::kDocument: {
      const xml::Element* root =
          static_cast<const xml::Document&>(node).root();
      std::string out;
      if (root != nullptr && filter(root)) {
        AppendVisibleText(*root, filter, &out);
      }
      return out;
    }
    default:
      return node.NodeValue();
  }
}

double StringToNumber(std::string_view s) {
  std::string_view trimmed = StripAsciiWhitespace(s);
  if (trimmed.empty()) return std::nan("");
  // XPath Number ::= '-'? Digits ('.' Digits?)? | '-'? '.' Digits
  size_t i = 0;
  if (trimmed[0] == '-') i = 1;
  bool digits = false;
  bool dot = false;
  for (; i < trimmed.size(); ++i) {
    char c = trimmed[i];
    if (c >= '0' && c <= '9') {
      digits = true;
    } else if (c == '.' && !dot) {
      dot = true;
    } else {
      return std::nan("");
    }
  }
  if (!digits) return std::nan("");
  return std::strtod(std::string(trimmed).c_str(), nullptr);
}

std::string NumberToString(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Infinity" : "-Infinity";
  if (value == 0) return "0";
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    return std::to_string(static_cast<int64_t>(value));
  }
  std::string out = StrFormat("%.12g", value);
  return out;
}

void SortDocumentOrder(NodeSet* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const xml::Node* a, const xml::Node* b) {
              return a->doc_order() < b->doc_order();
            });
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

}  // namespace xpath
}  // namespace xmlsec
