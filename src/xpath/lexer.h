#ifndef XMLSEC_XPATH_LEXER_H_
#define XMLSEC_XPATH_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace xmlsec {
namespace xpath {

/// Token kinds of the XPath 1.0 lexical grammar.
enum class TokenKind {
  kEnd,
  kName,        ///< NCName (possibly an axis or function name)
  kVariable,    ///< $name
  kLiteral,     ///< quoted string
  kNumber,
  kSlash,       ///< /
  kDoubleSlash, ///< //
  kAt,          ///< @
  kDot,         ///< .
  kDotDot,      ///< ..
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kUnion,       ///< |
  kStar,        ///< * (wildcard)
  kAxisSep,     ///< ::
  kOpOr,
  kOpAnd,
  kOpDiv,
  kOpMod,
  kOpMul,       ///< * (operator)
  kOpEq,
  kOpNeq,
  kOpLt,
  kOpLe,
  kOpGt,
  kOpGe,
  kOpPlus,
  kOpMinus,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< name text or literal content
  double number = 0;  ///< for kNumber
  size_t offset = 0;  ///< byte offset in the source expression
};

/// Tokenizes an XPath expression, applying the XPath 1.0 disambiguation
/// rule: `*` and the NCNames and/or/div/mod are operators exactly when
/// the preceding token could end an operand.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace xpath
}  // namespace xmlsec

#endif  // XMLSEC_XPATH_LEXER_H_
