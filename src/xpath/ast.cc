#include "xpath/ast.h"

namespace xmlsec {
namespace xpath {

const char* AxisToString(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kSelf:
      return "self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
  }
  return "?";
}

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNeq:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "div";
    case BinaryOp::kMod:
      return "mod";
    case BinaryOp::kUnion:
      return "|";
  }
  return "?";
}

namespace {

std::string StepToString(const Step& step) {
  std::string out;
  out += AxisToString(step.axis);
  out += "::";
  switch (step.test) {
    case NodeTestKind::kName:
      out += step.name;
      break;
    case NodeTestKind::kWildcard:
      out += "*";
      break;
    case NodeTestKind::kText:
      out += "text()";
      break;
    case NodeTestKind::kComment:
      out += "comment()";
      break;
    case NodeTestKind::kPi:
      out += "processing-instruction(" +
             (step.name.empty() ? "" : "\"" + step.name + "\"") + ")";
      break;
    case NodeTestKind::kAnyNode:
      out += "node()";
      break;
  }
  for (const auto& pred : step.predicates) {
    out += "[" + pred->ToString() + "]";
  }
  return out;
}

}  // namespace

Step Step::Clone() const {
  Step out;
  out.axis = axis;
  out.test = test;
  out.name = name;
  out.predicates.reserve(predicates.size());
  for (const auto& pred : predicates) out.predicates.push_back(pred->Clone());
  return out;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>(kind);
  out->op = op;
  if (lhs != nullptr) out->lhs = lhs->Clone();
  if (rhs != nullptr) out->rhs = rhs->Clone();
  if (operand != nullptr) out->operand = operand->Clone();
  out->literal = literal;
  out->number = number;
  out->function_name = function_name;
  out->args.reserve(args.size());
  for (const auto& arg : args) out->args.push_back(arg->Clone());
  if (base != nullptr) out->base = base->Clone();
  out->base_predicates.reserve(base_predicates.size());
  for (const auto& pred : base_predicates) {
    out->base_predicates.push_back(pred->Clone());
  }
  out->absolute = absolute;
  out->steps.reserve(steps.size());
  for (const Step& step : steps) out->steps.push_back(step.Clone());
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + BinaryOpToString(op) + " " +
             rhs->ToString() + ")";
    case Kind::kNegate:
      return "-" + operand->ToString();
    case Kind::kLiteral:
      return "\"" + literal + "\"";
    case Kind::kVariable:
      return "$" + literal;
    case Kind::kNumber: {
      std::string repr = std::to_string(number);
      // Trim trailing zeros for readability.
      while (repr.find('.') != std::string::npos &&
             (repr.back() == '0' || repr.back() == '.')) {
        bool dot = repr.back() == '.';
        repr.pop_back();
        if (dot) break;
      }
      return repr;
    }
    case Kind::kFunctionCall: {
      std::string out = function_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kPath: {
      std::string out;
      if (base != nullptr) {
        out += base->ToString();
        for (const auto& pred : base_predicates) {
          out += "[" + pred->ToString() + "]";
        }
      }
      if (absolute) out += "/";
      for (size_t i = 0; i < steps.size(); ++i) {
        if (i > 0 || (base != nullptr && !absolute)) out += "/";
        out += StepToString(steps[i]);
      }
      return out;
    }
  }
  return "?";
}

}  // namespace xpath
}  // namespace xmlsec
