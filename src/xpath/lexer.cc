#include "xpath/lexer.h"

#include <cstdlib>

#include "xml/chars.h"

namespace xmlsec {
namespace xpath {

namespace {

using xml::IsDigit;
using xml::IsNameChar;
using xml::IsNameStartChar;
using xml::IsXmlSpace;

/// True when the previous token can end an operand, which makes a
/// following `*` / `and` / `or` / `div` / `mod` an operator (XPath 1.0
/// §3.7 lexical rule).
bool PrecedingEndsOperand(const std::vector<Token>& tokens) {
  if (tokens.empty()) return false;
  switch (tokens.back().kind) {
    case TokenKind::kName:
    case TokenKind::kVariable:
    case TokenKind::kLiteral:
    case TokenKind::kNumber:
    case TokenKind::kRParen:
    case TokenKind::kRBracket:
    case TokenKind::kDot:
    case TokenKind::kDotDot:
    case TokenKind::kStar:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenKind kind, size_t offset, std::string value = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(value);
    t.offset = offset;
    tokens.push_back(std::move(t));
  };

  while (i < text.size()) {
    char c = text[i];
    if (IsXmlSpace(c)) {
      ++i;
      continue;
    }
    size_t start = i;
    switch (c) {
      case '/':
        if (i + 1 < text.size() && text[i + 1] == '/') {
          push(TokenKind::kDoubleSlash, start);
          i += 2;
        } else {
          push(TokenKind::kSlash, start);
          ++i;
        }
        continue;
      case '@':
        push(TokenKind::kAt, start);
        ++i;
        continue;
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, start);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, start);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        continue;
      case '|':
        push(TokenKind::kUnion, start);
        ++i;
        continue;
      case '+':
        push(TokenKind::kOpPlus, start);
        ++i;
        continue;
      case '-':
        push(TokenKind::kOpMinus, start);
        ++i;
        continue;
      case '=':
        push(TokenKind::kOpEq, start);
        ++i;
        continue;
      case '!':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenKind::kOpNeq, start);
          i += 2;
          continue;
        }
        return Status::ParseError("unexpected '!' in XPath at offset " +
                                  std::to_string(i));
      case '<':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenKind::kOpLe, start);
          i += 2;
        } else {
          push(TokenKind::kOpLt, start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          push(TokenKind::kOpGe, start);
          i += 2;
        } else {
          push(TokenKind::kOpGt, start);
          ++i;
        }
        continue;
      case '*':
        push(PrecedingEndsOperand(tokens) ? TokenKind::kOpMul
                                          : TokenKind::kStar,
             start);
        ++i;
        continue;
      case ':':
        if (i + 1 < text.size() && text[i + 1] == ':') {
          push(TokenKind::kAxisSep, start);
          i += 2;
          continue;
        }
        return Status::ParseError("stray ':' in XPath at offset " +
                                  std::to_string(i));
      case '.':
        if (i + 1 < text.size() && text[i + 1] == '.') {
          push(TokenKind::kDotDot, start);
          i += 2;
          continue;
        }
        if (i + 1 < text.size() && IsDigit(text[i + 1])) {
          break;  // Number like ".5" — handled below.
        }
        push(TokenKind::kDot, start);
        ++i;
        continue;
      case '$': {
        ++i;
        size_t j = i;
        while (j < text.size() && IsNameChar(text[j]) && text[j] != ':') ++j;
        if (j == i) {
          return Status::ParseError("expected variable name after '$'");
        }
        push(TokenKind::kVariable, start, std::string(text.substr(i, j - i)));
        i = j;
        continue;
      }
      case '"':
      case '\'': {
        size_t end = text.find(c, i + 1);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated string literal in XPath");
        }
        push(TokenKind::kLiteral, start,
             std::string(text.substr(i + 1, end - i - 1)));
        i = end + 1;
        continue;
      }
      default:
        break;
    }

    if (IsDigit(c) || c == '.') {
      size_t j = i;
      while (j < text.size() && IsDigit(text[j])) ++j;
      if (j < text.size() && text[j] == '.') {
        ++j;
        while (j < text.size() && IsDigit(text[j])) ++j;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = std::string(text.substr(i, j - i));
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.offset = i;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }

    if (IsNameStartChar(c) && c != ':') {
      size_t j = i + 1;
      while (j < text.size() && IsNameChar(text[j]) && text[j] != ':') ++j;
      std::string name(text.substr(i, j - i));
      if (PrecedingEndsOperand(tokens)) {
        if (name == "and") {
          push(TokenKind::kOpAnd, start);
          i = j;
          continue;
        }
        if (name == "or") {
          push(TokenKind::kOpOr, start);
          i = j;
          continue;
        }
        if (name == "div") {
          push(TokenKind::kOpDiv, start);
          i = j;
          continue;
        }
        if (name == "mod") {
          push(TokenKind::kOpMod, start);
          i = j;
          continue;
        }
      }
      push(TokenKind::kName, start, std::move(name));
      i = j;
      continue;
    }

    return Status::ParseError(std::string("unexpected character '") + c +
                              "' in XPath at offset " + std::to_string(i));
  }

  push(TokenKind::kEnd, text.size());
  return tokens;
}

}  // namespace xpath
}  // namespace xmlsec
