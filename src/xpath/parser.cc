#include "xpath/parser.h"

#include <utility>

#include "xpath/lexer.h"

namespace xmlsec {
namespace xpath {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Expr>> Parse() {
    XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing tokens after expression");
    }
    return expr;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }
  Status Error(std::string_view what) const {
    return Status::ParseError("XPath: " + std::string(what) + " at offset " +
                              std::to_string(Peek().offset));
  }

  static std::unique_ptr<Expr> MakeBinary(BinaryOp op,
                                          std::unique_ptr<Expr> lhs,
                                          std::unique_ptr<Expr> rhs) {
    auto expr = std::make_unique<Expr>(Expr::Kind::kBinary);
    expr->op = op;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    return expr;
  }

  Result<std::unique_ptr<Expr>> ParseOr() {
    XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
    while (Match(TokenKind::kOpOr)) {
      XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseEquality());
    while (Match(TokenKind::kOpAnd)) {
      XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseEquality());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseEquality() {
    XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseRelational());
    while (true) {
      BinaryOp op;
      if (Match(TokenKind::kOpEq)) {
        op = BinaryOp::kEq;
      } else if (Match(TokenKind::kOpNeq)) {
        op = BinaryOp::kNeq;
      } else {
        return lhs;
      }
      XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseRelational());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> ParseRelational() {
    XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdditive());
    while (true) {
      BinaryOp op;
      if (Match(TokenKind::kOpLt)) {
        op = BinaryOp::kLt;
      } else if (Match(TokenKind::kOpLe)) {
        op = BinaryOp::kLe;
      } else if (Match(TokenKind::kOpGt)) {
        op = BinaryOp::kGt;
      } else if (Match(TokenKind::kOpGe)) {
        op = BinaryOp::kGe;
      } else {
        return lhs;
      }
      XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Match(TokenKind::kOpPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenKind::kOpMinus)) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs,
                              ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Match(TokenKind::kOpMul)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenKind::kOpDiv)) {
        op = BinaryOp::kDiv;
      } else if (Match(TokenKind::kOpMod)) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Match(TokenKind::kOpMinus)) {
      XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseUnary());
      auto expr = std::make_unique<Expr>(Expr::Kind::kNegate);
      expr->operand = std::move(inner);
      return expr;
    }
    return ParseUnion();
  }

  Result<std::unique_ptr<Expr>> ParseUnion() {
    XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParsePath());
    while (Match(TokenKind::kUnion)) {
      XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePath());
      lhs = MakeBinary(BinaryOp::kUnion, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  /// True when the upcoming tokens start a location step rather than a
  /// primary expression.
  bool StartsStep() const {
    switch (Peek().kind) {
      case TokenKind::kAt:
      case TokenKind::kDot:
      case TokenKind::kDotDot:
      case TokenKind::kStar:
        return true;
      case TokenKind::kName:
        // A name is a function call when followed by '(' — except the
        // node-type tests, which are steps.
        if (Peek(1).kind == TokenKind::kLParen) {
          const std::string& n = Peek().text;
          return n == "text" || n == "node" || n == "comment" ||
                 n == "processing-instruction";
        }
        return true;
      default:
        return false;
    }
  }

  Result<std::unique_ptr<Expr>> ParsePath() {
    auto path = std::make_unique<Expr>(Expr::Kind::kPath);

    if (Peek().kind == TokenKind::kSlash ||
        Peek().kind == TokenKind::kDoubleSlash) {
      path->absolute = true;
      if (Match(TokenKind::kDoubleSlash)) {
        Step implicit;
        implicit.axis = Axis::kDescendantOrSelf;
        implicit.test = NodeTestKind::kAnyNode;
        path->steps.push_back(std::move(implicit));
      } else {
        Match(TokenKind::kSlash);
        if (!StartsStep()) return path;  // Bare "/" selects the root.
      }
      XMLSEC_RETURN_IF_ERROR(ParseRelativePath(path.get()));
      return path;
    }

    if (StartsStep()) {
      XMLSEC_RETURN_IF_ERROR(ParseRelativePath(path.get()));
      return path;
    }

    // FilterExpr: primary expression, optional predicates, optional
    // trailing path.
    XMLSEC_ASSIGN_OR_RETURN(path->base, ParsePrimary());
    while (Peek().kind == TokenKind::kLBracket) {
      XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> pred, ParsePredicate());
      path->base_predicates.push_back(std::move(pred));
    }
    if (Peek().kind == TokenKind::kSlash ||
        Peek().kind == TokenKind::kDoubleSlash) {
      if (Match(TokenKind::kDoubleSlash)) {
        Step implicit;
        implicit.axis = Axis::kDescendantOrSelf;
        implicit.test = NodeTestKind::kAnyNode;
        path->steps.push_back(std::move(implicit));
      } else {
        Match(TokenKind::kSlash);
      }
      XMLSEC_RETURN_IF_ERROR(ParseRelativePath(path.get()));
    }
    // A bare primary expression needs no path wrapper.
    if (path->steps.empty() && path->base_predicates.empty()) {
      return std::move(path->base);
    }
    return path;
  }

  Status ParseRelativePath(Expr* path) {
    XMLSEC_RETURN_IF_ERROR(ParseStep(path));
    while (true) {
      if (Match(TokenKind::kDoubleSlash)) {
        Step implicit;
        implicit.axis = Axis::kDescendantOrSelf;
        implicit.test = NodeTestKind::kAnyNode;
        path->steps.push_back(std::move(implicit));
      } else if (!Match(TokenKind::kSlash)) {
        return Status::OK();
      }
      XMLSEC_RETURN_IF_ERROR(ParseStep(path));
    }
  }

  Status ParseStep(Expr* path) {
    Step step;
    if (Match(TokenKind::kDot)) {
      step.axis = Axis::kSelf;
      step.test = NodeTestKind::kAnyNode;
      path->steps.push_back(std::move(step));
      return Status::OK();
    }
    if (Match(TokenKind::kDotDot)) {
      step.axis = Axis::kParent;
      step.test = NodeTestKind::kAnyNode;
      path->steps.push_back(std::move(step));
      return Status::OK();
    }

    if (Match(TokenKind::kAt)) {
      step.axis = Axis::kAttribute;
    } else if (Peek().kind == TokenKind::kName &&
               Peek(1).kind == TokenKind::kAxisSep) {
      XMLSEC_ASSIGN_OR_RETURN(step.axis, ParseAxisName(Advance().text));
      Match(TokenKind::kAxisSep);
    }

    // Node test.
    if (Match(TokenKind::kStar)) {
      step.test = NodeTestKind::kWildcard;
    } else if (Peek().kind == TokenKind::kName) {
      std::string name = Advance().text;
      if (Peek().kind == TokenKind::kLParen &&
          (name == "text" || name == "node" || name == "comment" ||
           name == "processing-instruction")) {
        Match(TokenKind::kLParen);
        if (name == "text") {
          step.test = NodeTestKind::kText;
        } else if (name == "node") {
          step.test = NodeTestKind::kAnyNode;
        } else if (name == "comment") {
          step.test = NodeTestKind::kComment;
        } else {
          step.test = NodeTestKind::kPi;
          if (Peek().kind == TokenKind::kLiteral) {
            step.name = Advance().text;
          }
        }
        if (!Match(TokenKind::kRParen)) {
          return Error("expected ')' after node type test");
        }
      } else {
        step.test = NodeTestKind::kName;
        step.name = std::move(name);
      }
    } else {
      return Error("expected node test");
    }

    while (Peek().kind == TokenKind::kLBracket) {
      XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> pred, ParsePredicate());
      step.predicates.push_back(std::move(pred));
    }
    path->steps.push_back(std::move(step));
    return Status::OK();
  }

  Result<Axis> ParseAxisName(const std::string& name) {
    if (name == "child") return Axis::kChild;
    if (name == "descendant") return Axis::kDescendant;
    if (name == "descendant-or-self") return Axis::kDescendantOrSelf;
    if (name == "parent") return Axis::kParent;
    if (name == "ancestor") return Axis::kAncestor;
    if (name == "ancestor-or-self") return Axis::kAncestorOrSelf;
    if (name == "self") return Axis::kSelf;
    if (name == "attribute") return Axis::kAttribute;
    if (name == "following-sibling") return Axis::kFollowingSibling;
    if (name == "preceding-sibling") return Axis::kPrecedingSibling;
    if (name == "following") return Axis::kFollowing;
    if (name == "preceding") return Axis::kPreceding;
    return Status::ParseError("XPath: unknown axis '" + name + "'");
  }

  Result<std::unique_ptr<Expr>> ParsePredicate() {
    Match(TokenKind::kLBracket);
    XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr, ParseOr());
    if (!Match(TokenKind::kRBracket)) {
      return Error("expected ']' closing predicate");
    }
    return expr;
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kLiteral: {
        auto expr = std::make_unique<Expr>(Expr::Kind::kLiteral);
        expr->literal = Advance().text;
        return expr;
      }
      case TokenKind::kVariable: {
        auto expr = std::make_unique<Expr>(Expr::Kind::kVariable);
        expr->literal = Advance().text;
        return expr;
      }
      case TokenKind::kNumber: {
        auto expr = std::make_unique<Expr>(Expr::Kind::kNumber);
        expr->number = Advance().number;
        return expr;
      }
      case TokenKind::kLParen: {
        Advance();
        XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOr());
        if (!Match(TokenKind::kRParen)) {
          return Error("expected ')'");
        }
        return inner;
      }
      case TokenKind::kName: {
        if (Peek(1).kind != TokenKind::kLParen) {
          return Error("expected expression");
        }
        auto expr = std::make_unique<Expr>(Expr::Kind::kFunctionCall);
        expr->function_name = Advance().text;
        Match(TokenKind::kLParen);
        if (!Match(TokenKind::kRParen)) {
          while (true) {
            XMLSEC_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseOr());
            expr->args.push_back(std::move(arg));
            if (Match(TokenKind::kComma)) continue;
            if (Match(TokenKind::kRParen)) break;
            return Error("expected ',' or ')' in function arguments");
          }
        }
        return expr;
      }
      default:
        return Error("expected expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Expr>> CompileXPath(std::string_view text) {
  XMLSEC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace xpath
}  // namespace xmlsec
