#ifndef XMLSEC_XPATH_VALUE_H_
#define XMLSEC_XPATH_VALUE_H_

#include <functional>
#include <string>
#include <vector>

#include "xml/dom.h"

namespace xmlsec {
namespace xpath {

/// An ordered, duplicate-free set of nodes in document order.
using NodeSet = std::vector<const xml::Node*>;

/// The XPath 1.0 value model: node-set, boolean, number, or string, with
/// the standard coercion rules between them.
class Value {
 public:
  enum class Kind { kNodeSet, kBool, kNumber, kString };

  Value() : kind_(Kind::kNodeSet) {}
  explicit Value(NodeSet nodes)
      : kind_(Kind::kNodeSet), nodes_(std::move(nodes)) {}
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  Kind kind() const { return kind_; }
  bool is_node_set() const { return kind_ == Kind::kNodeSet; }

  /// Precondition: `is_node_set()`.
  const NodeSet& nodes() const { return nodes_; }
  NodeSet& nodes() { return nodes_; }

  /// XPath boolean(): non-empty node-set, non-zero non-NaN number,
  /// non-empty string.
  bool ToBool() const;

  /// XPath number(): string-value parsed as IEEE double (NaN on failure);
  /// booleans map to 0/1; node-sets convert through their string-value.
  double ToNumber() const;

  /// XPath string(): first node's string-value for node-sets; standard
  /// number formatting ("NaN", "Infinity", integers without decimals).
  std::string ToString() const;

 private:
  Kind kind_;
  NodeSet nodes_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
};

/// XPath string-value of a node (XPath 1.0 §5): concatenated descendant
/// text for elements and the document, the value for attributes, the data
/// for text/comment/PI nodes.
std::string StringValueOf(const xml::Node& node);

/// Node visibility predicate for policy-aware evaluation: true when the
/// node is part of the requester's view (src/rewrite binds this to its
/// visibility oracle).
using NodeFilter = std::function<bool(const xml::Node*)>;

/// String-value restricted to visible nodes: descendant text of an
/// element (or the document) contributes only when the text node — and
/// every element on the way down — passes `filter`.  Equals the plain
/// string-value of the same node in the materialized view.
std::string StringValueOf(const xml::Node& node, const NodeFilter& filter);

/// Parses a string as an XPath number (optional sign, decimal); NaN when
/// the trimmed string is not a number.
double StringToNumber(std::string_view s);

/// Formats per the XPath number→string rules.
std::string NumberToString(double value);

/// Sorts into document order and removes duplicates.  Requires the nodes'
/// document to have been `Reindex()`ed.
void SortDocumentOrder(NodeSet* nodes);

}  // namespace xpath
}  // namespace xmlsec

#endif  // XMLSEC_XPATH_VALUE_H_
