#ifndef XMLSEC_XPATH_AST_H_
#define XMLSEC_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace xmlsec {
namespace xpath {

/// XPath 1.0 axes supported by the engine (all of the paper's §4 plus the
/// sibling/document-order axes).
enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kSelf,
  kAttribute,
  kFollowingSibling,
  kPrecedingSibling,
  kFollowing,
  kPreceding,
};

const char* AxisToString(Axis axis);

/// Node tests.
enum class NodeTestKind {
  kName,      ///< a specific element/attribute name
  kWildcard,  ///< `*`
  kText,      ///< `text()`
  kComment,   ///< `comment()`
  kPi,        ///< `processing-instruction()` (optionally with a target)
  kAnyNode,   ///< `node()`
};

/// Binary operators, in increasing precedence groups.
enum class BinaryOp {
  kOr,
  kAnd,
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kUnion,
};

const char* BinaryOpToString(BinaryOp op);

struct Expr;

/// One location step: `axis::node-test[pred]*`.
struct Step {
  Axis axis = Axis::kChild;
  NodeTestKind test = NodeTestKind::kName;
  std::string name;       ///< for kName (and kPi target when given)
  std::vector<std::unique_ptr<Expr>> predicates;

  /// Deep copy (predicates cloned recursively).
  Step Clone() const;
};

/// A parsed XPath expression tree.
struct Expr {
  enum class Kind {
    kBinary,
    kNegate,
    kLiteral,
    kNumber,
    kVariable,
    kFunctionCall,
    kPath,
  };

  explicit Expr(Kind k) : kind(k) {}

  Kind kind;

  // kBinary
  BinaryOp op = BinaryOp::kOr;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  // kNegate
  std::unique_ptr<Expr> operand;

  // kLiteral / kNumber / kVariable (variable name in `literal`)
  std::string literal;
  double number = 0;

  // kFunctionCall
  std::string function_name;
  std::vector<std::unique_ptr<Expr>> args;

  // kPath: optional filter base (a primary expression with predicates),
  // absolute flag, and steps.  A bare primary expression is a kPath with
  // `base` set and no steps.
  std::unique_ptr<Expr> base;
  std::vector<std::unique_ptr<Expr>> base_predicates;
  bool absolute = false;
  std::vector<Step> steps;

  /// Unparses back to (canonical) XPath syntax, for diagnostics.
  std::string ToString() const;

  /// Deep copy of the whole expression tree — the query rewriter
  /// (src/rewrite) transforms a copy, never the caller's AST.
  std::unique_ptr<Expr> Clone() const;
};

}  // namespace xpath
}  // namespace xmlsec

#endif  // XMLSEC_XPATH_AST_H_
