#ifndef XMLSEC_ANALYSIS_ANALYZER_H_
#define XMLSEC_ANALYSIS_ANALYZER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/policy_automaton.h"
#include "analysis/schema_paths.h"
#include "authz/authorization.h"
#include "authz/lint.h"
#include "authz/policy.h"
#include "authz/subject.h"
#include "xml/dtd.h"

namespace xmlsec {
namespace analysis {

/// Configuration of the static policy analyzer.
struct AnalyzerOptions {
  authz::PolicyOptions policy;
  /// Reference request time for validity windows: only authorizations
  /// applicable at this time participate in shadowing / conflict /
  /// coverage reasoning (0 satisfies permanent authorizations).
  int64_t at_time = 0;
  /// Compute the per-subject decision coverage table.
  bool coverage = true;
};

/// Statically-known default decision of one (schema point, subject)
/// cell of the coverage table.
enum class Decision {
  kOpen,        ///< provably no authorization reaches the point: the
                ///  completeness policy's default applies ("open" node)
  kPlus,        ///< provably permitted on every instance
  kMinus,       ///< provably denied on every instance
  kPlusOrOpen,  ///< any instance that is reached gets '+', others default
  kMinusOrOpen, ///< any instance that is reached gets '-', others default
  kUnknown,     ///< conflicting signs or unanalyzable paths apply
};

std::string_view DecisionToString(Decision d);

/// The per-subject decision coverage table over the DTD's schema points:
/// for each element/attribute node of the schema graph and each subject
/// declared by the policy, the decision every valid document's instances
/// of that point are statically known to receive.
struct CoverageTable {
  std::vector<SchemaPoint> points;        ///< rows (reachable points)
  std::vector<authz::Subject> subjects;   ///< columns
  /// cells[row][column]; empty when coverage was disabled.
  std::vector<std::vector<Decision>> cells;

  Decision At(size_t point, size_t subject) const {
    return cells[point][subject];
  }
  /// Renders an aligned text table (the `xacl_tool analyze` report).
  std::string ToString() const;
};

/// Result of one static policy analysis.
///
/// Findings reuse the lint vocabulary (`authz::LintFinding`) with the
/// analyzer's own codes; `auth_index` refers to the concatenated
/// (instance, then schema) input order, like `authz::LintPolicy`:
///
///   * `unsat-object` (warning) — the object path cannot select any node
///     of any document valid against the DTD;
///   * `shadowed` (warning) — removing the authorization provably leaves
///     every requester's view of every valid document unchanged (it is
///     dominated by another authorization under the most-specific-
///     subject, conflict-resolution, and L/R/W precedence rules);
///   * `schema-conflict` (warning) — two same-level authorizations with
///     opposite signs, comparable subjects, and overlapping objects and
///     validity windows: the runtime resolves them silently (most
///     specific subject, then the conflict policy), which is usually
///     worth a policy author's attention.
struct PolicyAnalysis {
  std::vector<authz::LintFinding> findings;
  CoverageTable coverage;
  /// Per-authorization compiler verdicts (policy_automaton.h), in the
  /// same concatenated (instance, then schema) order as `auth_index` —
  /// which authorizations the policy compiler resolves by table lookup
  /// and which stay on the per-request XPath path, with reasons.
  std::vector<AuthClassification> decidability;
  /// `DecidabilityReport` over `decidability`, rendered while the
  /// authorization texts are at hand.
  std::string decidability_report;
};

/// Analyzes a policy purely against a DTD — no document instance.  The
/// paper (§5–§6) resolves conflicts only dynamically during labeling;
/// this pass decides satisfiability, shadowing, conflict, and coverage
/// statically over the schema graph.  All verdicts are conservative:
/// `unsat-object` and `shadowed` are proofs (never false positives on
/// analyzable paths), at the cost of missing some true instances.
PolicyAnalysis AnalyzePolicy(std::span<const authz::Authorization> instance,
                             std::span<const authz::Authorization> schema,
                             const authz::GroupStore& groups,
                             const xml::Dtd& dtd,
                             const AnalyzerOptions& options = {});

/// Renders the findings followed by the coverage table.
std::string AnalysisReport(const PolicyAnalysis& analysis);

}  // namespace analysis
}  // namespace xmlsec

#endif  // XMLSEC_ANALYSIS_ANALYZER_H_
