#include "analysis/schema_paths.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>

#include "xpath/parser.h"

namespace xmlsec {
namespace analysis {

namespace {

using xpath::Axis;
using xpath::BinaryOp;
using xpath::Expr;
using xpath::NodeTestKind;
using xpath::Step;

/// Maximum NFA size (states are tracked in a 64-bit set) and maximum
/// nesting depth of predicate sub-analyses.  Paths beyond either bound
/// are treated as unanalyzable — never unsound, just imprecise.
constexpr size_t kMaxStates = 64;
constexpr int kMaxPredicateDepth = 6;

/// A small word automaton over element names, compiled from the location
/// steps of one path expression.  A run consumes the element names on
/// the root-to-node path of a document node (the document node itself is
/// the empty word); the node is selected iff the run ends in an
/// accepting state (for attributes: in a state carrying a matching
/// attribute test).
struct Nfa {
  struct Edge {
    bool any = false;   ///< wildcard: matches every element name
    std::string name;   ///< matched name when !any
    size_t to = 0;
  };
  struct AttrTest {
    bool any = false;
    std::string name;

    bool Matches(const std::string& attr) const {
      return any || name == attr;
    }
  };
  struct State {
    bool any_loop = false;  ///< self-loop on every element name
    std::vector<Edge> edges;
    /// Predicates of the step this state completes; a candidate node is
    /// pruned when one of them is provably false at its element type.
    std::vector<const Expr*> predicates;
    std::vector<AttrTest> attr_accepts;
  };

  std::vector<State> states;   ///< state 0 is the start (document node)
  uint64_t accept_element = 0; ///< bit set of element-accepting states
  bool has_predicates = false;

  bool AcceptsElement(uint64_t bits) const {
    return (bits & accept_element) != 0;
  }
  bool AcceptsAttribute(uint64_t bits, const std::string& attr) const {
    for (size_t q = 0; q < states.size(); ++q) {
      if ((bits & (uint64_t{1} << q)) == 0) continue;
      for (const AttrTest& test : states[q].attr_accepts) {
        if (test.Matches(attr)) return true;
      }
    }
    return false;
  }
  bool AcceptsAnyAttribute(uint64_t bits) const {
    for (size_t q = 0; q < states.size(); ++q) {
      if ((bits & (uint64_t{1} << q)) == 0) continue;
      if (!states[q].attr_accepts.empty()) return true;
    }
    return false;
  }
};

/// Compiles path expressions to NFAs and runs them over a SchemaGraph.
class Machine {
 public:
  explicit Machine(const SchemaGraph* graph) : graph_(graph) {}

  /// Compiles `expr` (a location path, possibly a union of paths).  When
  /// `context_is_document` is true, relative branches consume one
  /// element letter first — labeling evaluates relative authorization
  /// paths with the root element as context node.  Otherwise relative
  /// branches start directly at the context element (predicate mode).
  Result<Nfa> Compile(const Expr& expr, bool context_is_document) const {
    Nfa nfa;
    nfa.states.emplace_back();  // start state 0
    int64_t context_state = -1;
    XMLSEC_RETURN_IF_ERROR(
        AddBranch(expr, context_is_document, &context_state, &nfa));
    return nfa;
  }

  /// The automaton of the empty authorization path: exactly the root
  /// element (the paper's whole-document object).
  Nfa RootOnly() const {
    Nfa nfa;
    nfa.states.emplace_back();
    nfa.states[0].edges.push_back(Nfa::Edge{true, "", 1});
    nfa.states.emplace_back();
    nfa.accept_element = uint64_t{1} << 1;
    return nfa;
  }

  /// Consumes element letter `element` from state set `bits`, applying
  /// predicate pruning at the target states.
  uint64_t Move(const Nfa& nfa, uint64_t bits, const std::string& element,
                int depth) const {
    uint64_t next = 0;
    for (size_t q = 0; q < nfa.states.size(); ++q) {
      if ((bits & (uint64_t{1} << q)) == 0) continue;
      const Nfa::State& state = nfa.states[q];
      if (state.any_loop) next |= uint64_t{1} << q;
      for (const Nfa::Edge& edge : state.edges) {
        if (edge.any || edge.name == element) next |= uint64_t{1} << edge.to;
      }
    }
    // Predicate pruning: a state whose step predicates are provably
    // false at this element type cannot be on a selecting run.
    for (size_t q = 0; q < nfa.states.size(); ++q) {
      if ((next & (uint64_t{1} << q)) == 0) continue;
      for (const Expr* pred : nfa.states[q].predicates) {
        if (PredicateProvablyFalse(element, *pred, depth)) {
          next &= ~(uint64_t{1} << q);
          break;
        }
      }
    }
    return next;
  }

  /// Runs `nfa` over the schema graph.  `start_element` empty starts at
  /// the document node; otherwise at that element (predicate context).
  AbstractSelection Simulate(const Nfa& nfa, const std::string& start_element,
                             int depth) const {
    AbstractSelection out;
    if (!graph_->valid()) return out;  // no valid documents exist at all
    std::set<std::pair<std::string, uint64_t>> seen;
    std::deque<std::pair<std::string, uint64_t>> queue;
    queue.emplace_back(start_element, uint64_t{1});
    seen.insert(queue.front());
    while (!queue.empty()) {
      auto [element, bits] = queue.front();
      queue.pop_front();
      if (!element.empty()) {
        if (nfa.AcceptsElement(bits)) {
          out.points.insert(SchemaPoint{element, ""});
        }
        for (const std::string& attr : graph_->Attributes(element)) {
          if (nfa.AcceptsAttribute(bits, attr)) {
            out.points.insert(SchemaPoint{element, attr});
          }
        }
      }
      const std::vector<std::string>* children = nullptr;
      std::vector<std::string> doc_children;
      if (element.empty()) {
        doc_children.push_back(graph_->root());
        children = &doc_children;
      } else {
        children = &graph_->Children(element);
      }
      for (const std::string& child : *children) {
        uint64_t next = Move(nfa, bits, child, depth);
        if (next == 0) continue;
        auto item = std::make_pair(child, next);
        if (seen.insert(item).second) queue.push_back(item);
      }
    }
    return out;
  }

  /// True when `pred` can be shown false for every node of element type
  /// `element` in every valid document.  Conservative: only path
  /// emptiness is exploited (an empty node-set operand makes both a bare
  /// path predicate and any comparison false).
  bool PredicateProvablyFalse(const std::string& element, const Expr& pred,
                              int depth) const {
    if (depth >= kMaxPredicateDepth) return false;
    switch (pred.kind) {
      case Expr::Kind::kBinary:
        switch (pred.op) {
          case BinaryOp::kAnd:
            return PredicateProvablyFalse(element, *pred.lhs, depth) ||
                   PredicateProvablyFalse(element, *pred.rhs, depth);
          case BinaryOp::kOr:
            return PredicateProvablyFalse(element, *pred.lhs, depth) &&
                   PredicateProvablyFalse(element, *pred.rhs, depth);
          case BinaryOp::kEq:
          case BinaryOp::kNeq:
          case BinaryOp::kLt:
          case BinaryOp::kLe:
          case BinaryOp::kGt:
          case BinaryOp::kGe:
            // A comparison with an empty node-set operand is false for
            // every operator (XPath 1.0 §3.4).
            return OperandProvablyEmpty(element, *pred.lhs, depth) ||
                   OperandProvablyEmpty(element, *pred.rhs, depth);
          case BinaryOp::kUnion:
            return OperandProvablyEmpty(element, pred, depth);
          default:
            return false;
        }
      case Expr::Kind::kPath:
        return OperandProvablyEmpty(element, pred, depth);
      default:
        return false;
    }
  }

 private:
  struct Frontier {
    std::vector<size_t> states;
  };

  Status AddBranch(const Expr& expr, bool context_is_document,
                   int64_t* context_state, Nfa* nfa) const {
    if (expr.kind == Expr::Kind::kBinary && expr.op == BinaryOp::kUnion) {
      XMLSEC_RETURN_IF_ERROR(
          AddBranch(*expr.lhs, context_is_document, context_state, nfa));
      return AddBranch(*expr.rhs, context_is_document, context_state, nfa);
    }
    if (expr.kind != Expr::Kind::kPath) {
      return Status::InvalidArgument("not a location path");
    }
    if (expr.base != nullptr || !expr.base_predicates.empty()) {
      return Status::InvalidArgument("filter expression base");
    }

    Frontier frontier;
    if (expr.absolute) {
      frontier.states.push_back(0);
      if (expr.steps.empty()) {
        // Bare "/": the document node — labeling remaps it to the root
        // element.
        size_t q = NewState(nfa);
        if (q == 0) return Status::InvalidArgument("path too long");
        Link(nfa, {0}, Nfa::Edge{true, "", q});
        nfa->accept_element |= uint64_t{1} << q;
        return Status::OK();
      }
    } else if (context_is_document) {
      if (*context_state < 0) {
        size_t q = NewState(nfa);
        if (q == 0) return Status::InvalidArgument("path too long");
        Link(nfa, {0}, Nfa::Edge{true, "", q});
        *context_state = static_cast<int64_t>(q);
      }
      frontier.states.push_back(static_cast<size_t>(*context_state));
    } else {
      frontier.states.push_back(0);
    }

    bool attribute_selected = false;
    for (const Step& step : expr.steps) {
      if (attribute_selected) {
        // Attributes have no children: any further step other than
        // `self::node()` makes this branch select nothing.
        if (step.axis == Axis::kSelf && step.test == NodeTestKind::kAnyNode &&
            step.predicates.empty()) {
          continue;
        }
        return Status::OK();  // dead branch: register no acceptance
      }
      switch (step.axis) {
        case Axis::kSelf:
          if (step.test != NodeTestKind::kAnyNode || !step.predicates.empty()) {
            return Status::InvalidArgument("self step with test or predicate");
          }
          continue;
        case Axis::kDescendantOrSelf: {
          if (step.test != NodeTestKind::kAnyNode || !step.predicates.empty()) {
            return Status::InvalidArgument(
                "descendant-or-self with test or predicate");
          }
          XMLSEC_RETURN_IF_ERROR(AddLoopState(nfa, &frontier));
          continue;
        }
        case Axis::kDescendant: {
          // descendant::T  ==  descendant-or-self::node()/child::T.
          XMLSEC_RETURN_IF_ERROR(AddLoopState(nfa, &frontier));
          XMLSEC_RETURN_IF_ERROR(AddChildStep(nfa, step, &frontier));
          continue;
        }
        case Axis::kChild:
          XMLSEC_RETURN_IF_ERROR(AddChildStep(nfa, step, &frontier));
          continue;
        case Axis::kAttribute: {
          Nfa::AttrTest test;
          if (step.test == NodeTestKind::kName) {
            test.name = step.name;
          } else if (step.test == NodeTestKind::kWildcard ||
                     step.test == NodeTestKind::kAnyNode) {
            test.any = true;
          } else {
            return Status::InvalidArgument("attribute step node test");
          }
          if (!step.predicates.empty()) nfa->has_predicates = true;
          for (size_t q : frontier.states) {
            nfa->states[q].attr_accepts.push_back(test);
          }
          attribute_selected = true;
          continue;
        }
        default:
          return Status::InvalidArgument(
              std::string("unsupported axis ") + AxisToString(step.axis));
      }
    }
    if (!attribute_selected) {
      for (size_t q : frontier.states) {
        nfa->accept_element |= uint64_t{1} << q;
      }
    }
    return Status::OK();
  }

  Status AddChildStep(Nfa* nfa, const Step& step, Frontier* frontier) const {
    Nfa::Edge edge;
    if (step.test == NodeTestKind::kName) {
      edge.name = step.name;
    } else if (step.test == NodeTestKind::kWildcard ||
               step.test == NodeTestKind::kAnyNode) {
      // node() also admits text/comment/PI children; for element
      // selection a wildcard over-approximates it soundly.
      edge.any = true;
    } else {
      // text()/comment()/processing-instruction() select non-labelable
      // nodes; give up rather than mislabel them unsatisfiable.
      return Status::InvalidArgument("non-element node test");
    }
    size_t g = NewState(nfa);
    if (g == 0) return Status::InvalidArgument("path too long");
    edge.to = g;
    Link(nfa, frontier->states, edge);
    for (const auto& pred : step.predicates) {
      nfa->states[g].predicates.push_back(pred.get());
      nfa->has_predicates = true;
    }
    frontier->states = {g};
    return Status::OK();
  }

  /// Inserts the `//` gap: a fresh predicate-free state reachable from
  /// the frontier by any letter, looping on any letter; the frontier
  /// grows (descendant-or-self keeps the current position too).
  Status AddLoopState(Nfa* nfa, Frontier* frontier) const {
    size_t m = NewState(nfa);
    if (m == 0) return Status::InvalidArgument("path too long");
    nfa->states[m].any_loop = true;
    Link(nfa, frontier->states, Nfa::Edge{true, "", m});
    frontier->states.push_back(m);
    return Status::OK();
  }

  /// Returns 0 on overflow (state 0 is always the pre-existing start).
  size_t NewState(Nfa* nfa) const {
    if (nfa->states.size() >= kMaxStates) return 0;
    nfa->states.emplace_back();
    return nfa->states.size() - 1;
  }

  void Link(Nfa* nfa, const std::vector<size_t>& from, Nfa::Edge edge) const {
    for (size_t q : from) nfa->states[q].edges.push_back(edge);
  }

  bool OperandProvablyEmpty(const std::string& element, const Expr& expr,
                            int depth) const {
    if (expr.kind == Expr::Kind::kBinary && expr.op == BinaryOp::kUnion) {
      return OperandProvablyEmpty(element, *expr.lhs, depth) &&
             OperandProvablyEmpty(element, *expr.rhs, depth);
    }
    if (expr.kind != Expr::Kind::kPath) return false;
    // Relative operand: evaluated from `element`.  Absolute operand:
    // evaluated from the document node, independent of context.
    auto nfa = Compile(expr, /*context_is_document=*/expr.absolute);
    if (!nfa.ok()) return false;
    AbstractSelection sel =
        Simulate(*nfa, expr.absolute ? "" : element, depth + 1);
    return sel.points.empty();
  }

  const SchemaGraph* graph_;
};

/// A compiled query: the owned expression tree plus its automaton.
struct CompiledQuery {
  std::unique_ptr<Expr> owner;
  Nfa nfa;
  bool recursive = false;
};

Result<CompiledQuery> CompileQuery(const Machine& machine,
                                   const PathQuery& query) {
  CompiledQuery out;
  out.recursive = query.recursive;
  if (query.path.empty()) {
    out.nfa = machine.RootOnly();
    return out;
  }
  XMLSEC_ASSIGN_OR_RETURN(out.owner, xpath::CompileXPath(query.path));
  XMLSEC_ASSIGN_OR_RETURN(out.nfa,
                          machine.Compile(*out.owner,
                                          /*context_is_document=*/true));
  return out;
}

/// Collects the unparsed predicate expressions of a location path (the
/// classifier's residual list), in path order.  Predicates nested inside
/// other predicates are not listed separately — their enclosing
/// predicate already names them.
void CollectPredicateStrings(const Expr& expr, std::vector<std::string>* out) {
  if (expr.kind == Expr::Kind::kBinary && expr.op == BinaryOp::kUnion) {
    if (expr.lhs != nullptr) CollectPredicateStrings(*expr.lhs, out);
    if (expr.rhs != nullptr) CollectPredicateStrings(*expr.rhs, out);
    return;
  }
  if (expr.kind != Expr::Kind::kPath) return;
  for (const auto& pred : expr.base_predicates) {
    out->push_back(pred->ToString());
  }
  for (const Step& step : expr.steps) {
    for (const auto& pred : step.predicates) {
      out->push_back(pred->ToString());
    }
  }
}

bool ExprUsesVariables(const Expr& expr) {
  if (expr.kind == Expr::Kind::kVariable) return true;
  if (expr.lhs != nullptr && ExprUsesVariables(*expr.lhs)) return true;
  if (expr.rhs != nullptr && ExprUsesVariables(*expr.rhs)) return true;
  if (expr.operand != nullptr && ExprUsesVariables(*expr.operand)) return true;
  if (expr.base != nullptr && ExprUsesVariables(*expr.base)) return true;
  for (const auto& arg : expr.args) {
    if (arg != nullptr && ExprUsesVariables(*arg)) return true;
  }
  for (const auto& pred : expr.base_predicates) {
    if (pred != nullptr && ExprUsesVariables(*pred)) return true;
  }
  for (const Step& step : expr.steps) {
    for (const auto& pred : step.predicates) {
      if (pred != nullptr && ExprUsesVariables(*pred)) return true;
    }
  }
  return false;
}

/// Product item of the containment searches.
struct ProductItem {
  std::string element;  ///< empty = document node
  uint64_t a_bits = 0;
  uint64_t b_bits = 0;
  bool a_abs = false;  ///< inner query covers here via recursive ancestor
  bool b_abs = false;

  friend bool operator<(const ProductItem& x, const ProductItem& y) {
    return std::tie(x.element, x.a_bits, x.b_bits, x.a_abs, x.b_abs) <
           std::tie(y.element, y.a_bits, y.b_bits, y.a_abs, y.b_abs);
  }
};

}  // namespace

// --- SchemaGraph --------------------------------------------------------

SchemaGraph SchemaGraph::Build(const xml::Dtd& dtd, const std::string& root) {
  SchemaGraph graph;
  std::string start = root;
  if (start.empty()) start = dtd.name();
  if (start.empty() && !dtd.elements().empty()) {
    // A bare DTD carries no doctype name.  Prefer the unique element no
    // other content model references — the only possible document
    // root — before falling back to the first declaration.
    std::set<std::string> referenced;
    for (const auto& [name, decl] : dtd.elements()) {
      for (const xml::SchemaEdge& edge : xml::SchemaChildEdges(dtd, decl)) {
        if (edge.name != name) referenced.insert(edge.name);
      }
    }
    std::vector<std::string> sources;
    for (const auto& [name, decl] : dtd.elements()) {
      (void)decl;
      if (!referenced.contains(name)) sources.push_back(name);
    }
    start = sources.size() == 1 ? sources.front()
                                : dtd.elements().begin()->first;
  }
  if (start.empty() || dtd.FindElement(start) == nullptr) {
    return graph;  // invalid: no analyzable root
  }
  graph.root_ = start;

  for (const auto& [name, decl] : dtd.elements()) {
    std::vector<std::string> children;
    for (const xml::SchemaEdge& edge : xml::SchemaChildEdges(dtd, decl)) {
      // Only declared element types can occur in a valid document.
      if (dtd.FindElement(edge.name) == nullptr) continue;
      if (std::find(children.begin(), children.end(), edge.name) ==
          children.end()) {
        children.push_back(edge.name);
      }
    }
    graph.children_[name] = std::move(children);

    std::vector<std::string> attrs;
    if (const std::vector<xml::AttrDecl>* attlist = dtd.FindAttlist(name)) {
      for (const xml::AttrDecl& attr : *attlist) {
        if (std::find(attrs.begin(), attrs.end(), attr.name) == attrs.end()) {
          attrs.push_back(attr.name);
        }
      }
    }
    graph.attrs_[name] = std::move(attrs);
  }

  // Reachability from the root.
  std::deque<std::string> queue = {graph.root_};
  graph.reachable_.insert(graph.root_);
  while (!queue.empty()) {
    std::string element = std::move(queue.front());
    queue.pop_front();
    for (const std::string& child : graph.Children(element)) {
      if (graph.reachable_.insert(child).second) queue.push_back(child);
    }
  }
  return graph;
}

const std::vector<std::string>& SchemaGraph::Children(
    const std::string& element) const {
  static const std::vector<std::string> kEmpty;
  auto it = children_.find(element);
  return it == children_.end() ? kEmpty : it->second;
}

const std::vector<std::string>& SchemaGraph::Attributes(
    const std::string& element) const {
  static const std::vector<std::string> kEmpty;
  auto it = attrs_.find(element);
  return it == attrs_.end() ? kEmpty : it->second;
}

bool SchemaGraph::HasAttribute(const std::string& element,
                               const std::string& attr) const {
  const std::vector<std::string>& attrs = Attributes(element);
  return std::find(attrs.begin(), attrs.end(), attr) != attrs.end();
}

std::set<std::string> SchemaGraph::DescendantsOf(
    const std::set<std::string>& seeds, bool include_seeds) const {
  std::set<std::string> out;
  std::deque<std::string> queue(seeds.begin(), seeds.end());
  std::set<std::string> visited = seeds;
  while (!queue.empty()) {
    std::string element = std::move(queue.front());
    queue.pop_front();
    for (const std::string& child : Children(element)) {
      out.insert(child);
      if (visited.insert(child).second) queue.push_back(child);
    }
  }
  if (include_seeds) out.insert(seeds.begin(), seeds.end());
  return out;
}

// --- AbstractSelection --------------------------------------------------

bool AbstractSelection::Overlaps(const AbstractSelection& other) const {
  if (unknown || other.unknown) return true;  // cannot rule overlap out
  const AbstractSelection& small = points.size() <= other.points.size()
                                       ? *this
                                       : other;
  const AbstractSelection& large = &small == this ? other : *this;
  for (const SchemaPoint& p : small.points) {
    if (large.points.contains(p)) return true;
  }
  return false;
}

// --- PathAnalyzer -------------------------------------------------------

AbstractSelection PathAnalyzer::Analyze(const std::string& path) const {
  if (path.empty()) {
    AbstractSelection out;
    if (graph_->valid()) out.points.insert(SchemaPoint{graph_->root(), ""});
    return out;
  }
  auto compiled = xpath::CompileXPath(path);
  if (!compiled.ok()) {
    AbstractSelection out;
    out.unknown = true;
    return out;
  }
  return Analyze(**compiled);
}

AbstractSelection PathAnalyzer::Analyze(const xpath::Expr& expr) const {
  Machine machine(graph_);
  auto nfa = machine.Compile(expr, /*context_is_document=*/true);
  if (!nfa.ok()) {
    AbstractSelection out;
    out.unknown = true;
    return out;
  }
  return machine.Simulate(*nfa, "", 0);
}

AbstractSelection PathAnalyzer::Influence(const PathQuery& query) const {
  AbstractSelection sel = Analyze(query.path);
  if (sel.unknown) return sel;
  std::set<std::string> elements;
  for (const SchemaPoint& p : sel.points) {
    if (!p.is_attribute()) elements.insert(p.element);
  }
  AbstractSelection out;
  out.points = sel.points;  // keeps directly selected attributes
  std::set<std::string> covered =
      query.recursive ? graph_->DescendantsOf(elements, /*include_seeds=*/true)
                      : elements;
  for (const std::string& element : covered) {
    out.points.insert(SchemaPoint{element, ""});
    // Local authorizations on an element cover its attributes; recursive
    // ones cover every attribute in the subtree.
    for (const std::string& attr : graph_->Attributes(element)) {
      out.points.insert(SchemaPoint{element, attr});
    }
  }
  return out;
}

bool PathAnalyzer::Covers(const PathQuery& b, const PathQuery& a,
                          CoverMode mode) const {
  if (!graph_->valid()) return false;
  Machine machine(graph_);
  auto qa = CompileQuery(machine, a);
  auto qb = CompileQuery(machine, b);
  if (!qa.ok() || !qb.ok()) return false;
  // Predicates could shrink the outer selection below the inner one;
  // demand a predicate-free outer query for a sound proof.
  if (qb->nfa.has_predicates) return false;
  if (mode == CoverMode::kSameSlot && a.recursive != b.recursive) return false;

  std::set<ProductItem> seen;
  std::deque<ProductItem> queue;
  queue.push_back(ProductItem{"", 1, 1, false, false});
  seen.insert(queue.front());
  while (!queue.empty()) {
    ProductItem item = queue.front();
    queue.pop_front();

    bool a_elem = false;
    bool b_elem = false;
    if (!item.element.empty()) {
      a_elem = qa->nfa.AcceptsElement(item.a_bits);
      b_elem = qb->nfa.AcceptsElement(item.b_bits);
      if (mode == CoverMode::kSameSlot) {
        if (a_elem && !b_elem) return false;
        for (const std::string& attr : graph_->Attributes(item.element)) {
          if (qa->nfa.AcceptsAttribute(item.a_bits, attr) &&
              !qb->nfa.AcceptsAttribute(item.b_bits, attr)) {
            return false;
          }
        }
      } else {
        bool a_inf = a_elem || item.a_abs;
        bool b_inf = b_elem || item.b_abs;
        if (a_inf && !b_inf) return false;
        for (const std::string& attr : graph_->Attributes(item.element)) {
          bool a_attr = a_inf || qa->nfa.AcceptsAttribute(item.a_bits, attr);
          bool b_attr = b_inf || qb->nfa.AcceptsAttribute(item.b_bits, attr);
          if (a_attr && !b_attr) return false;
        }
      }
    }

    bool a_abs = item.a_abs || (qa->recursive && a_elem);
    bool b_abs = item.b_abs || (qb->recursive && b_elem);
    if (mode == CoverMode::kInfluence && b_abs) {
      continue;  // everything below is covered by the outer query
    }
    const std::vector<std::string>* children;
    std::vector<std::string> doc_children;
    if (item.element.empty()) {
      doc_children.push_back(graph_->root());
      children = &doc_children;
    } else {
      children = &graph_->Children(item.element);
    }
    for (const std::string& child : *children) {
      ProductItem next;
      next.element = child;
      next.a_bits = machine.Move(qa->nfa, item.a_bits, child, 0);
      next.b_bits = machine.Move(qb->nfa, item.b_bits, child, 0);
      next.a_abs = a_abs;
      next.b_abs = b_abs;
      if (next.a_bits == 0 && !next.a_abs) {
        continue;  // inner query can never influence this subtree
      }
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return true;
}

bool PathAnalyzer::CoversAllInstances(const PathQuery& b,
                                      const SchemaPoint& point) const {
  if (!graph_->valid()) return false;
  Machine machine(graph_);
  auto qb = CompileQuery(machine, b);
  if (!qb.ok() || qb->nfa.has_predicates) return false;
  if (point.is_attribute() &&
      !graph_->HasAttribute(point.element, point.attribute)) {
    return false;
  }

  std::set<std::pair<std::string, uint64_t>> seen;
  std::deque<std::pair<std::string, uint64_t>> queue;
  queue.emplace_back("", uint64_t{1});
  seen.insert(queue.front());
  while (!queue.empty()) {
    auto [element, bits] = queue.front();
    queue.pop_front();
    bool b_elem = !element.empty() && qb->nfa.AcceptsElement(bits);
    if (element == point.element) {
      bool covered;
      if (point.is_attribute()) {
        covered = b_elem || qb->nfa.AcceptsAttribute(bits, point.attribute);
      } else {
        covered = b_elem;
      }
      if (!covered) return false;
    }
    if (qb->recursive && b_elem) {
      continue;  // every instance below this node is recursively covered
    }
    const std::vector<std::string>* children;
    std::vector<std::string> doc_children;
    if (element.empty()) {
      doc_children.push_back(graph_->root());
      children = &doc_children;
    } else {
      children = &graph_->Children(element);
    }
    for (const std::string& child : *children) {
      uint64_t next = machine.Move(qb->nfa, bits, child, 0);
      auto item = std::make_pair(child, next);
      if (seen.insert(item).second) queue.push_back(item);
    }
  }
  return true;
}

// --- ClassifyPath -------------------------------------------------------

std::string_view PathCompilabilityToString(PathCompilability c) {
  switch (c) {
    case PathCompilability::kDecidable:
      return "decidable";
    case PathCompilability::kValueDependent:
      return "partially-decidable";
    case PathCompilability::kOpaque:
      return "opaque";
  }
  return "?";
}

PathClassification ClassifyPath(const std::string& path) {
  PathClassification out;
  if (path.empty()) return out;  // the whole-document object: root only
  auto compiled = xpath::CompileXPath(path);
  if (!compiled.ok()) {
    out.verdict = PathCompilability::kOpaque;
    out.reason = "path does not compile: " + compiled.status().message();
    return out;
  }
  out.uses_requester_variables = ExprUsesVariables(**compiled);
  // The NFA construction never consults the schema graph; a null graph
  // is fine for pure classification.
  Machine machine(nullptr);
  auto nfa = machine.Compile(**compiled, /*context_is_document=*/true);
  if (!nfa.ok()) {
    out.verdict = PathCompilability::kOpaque;
    out.reason = nfa.status().message();
    CollectPredicateStrings(**compiled, &out.residual_predicates);
    return out;
  }
  if (nfa->has_predicates) {
    out.verdict = PathCompilability::kValueDependent;
    CollectPredicateStrings(**compiled, &out.residual_predicates);
  }
  return out;
}

// --- PathWordAutomaton --------------------------------------------------

struct PathWordAutomaton::Impl {
  std::unique_ptr<Expr> owner;  ///< predicates in `nfa` point into this
  Nfa nfa;
};

Result<PathWordAutomaton> PathWordAutomaton::Compile(const std::string& path) {
  auto impl = std::make_shared<Impl>();
  Machine machine(nullptr);  // compilation never consults the graph
  if (path.empty()) {
    impl->nfa = machine.RootOnly();
  } else {
    XMLSEC_ASSIGN_OR_RETURN(impl->owner, xpath::CompileXPath(path));
    XMLSEC_ASSIGN_OR_RETURN(
        impl->nfa, machine.Compile(*impl->owner,
                                   /*context_is_document=*/true));
  }
  PathWordAutomaton out;
  out.impl_ = std::move(impl);
  return out;
}

uint64_t PathWordAutomaton::Move(uint64_t bits,
                                 const std::string& element) const {
  const Nfa& nfa = impl_->nfa;
  uint64_t next = 0;
  for (size_t q = 0; q < nfa.states.size(); ++q) {
    if ((bits & (uint64_t{1} << q)) == 0) continue;
    const Nfa::State& state = nfa.states[q];
    if (state.any_loop) next |= uint64_t{1} << q;
    for (const Nfa::Edge& edge : state.edges) {
      if (edge.any || edge.name == element) next |= uint64_t{1} << edge.to;
    }
  }
  return next;
}

bool PathWordAutomaton::AcceptsElement(uint64_t bits) const {
  return impl_->nfa.AcceptsElement(bits);
}

bool PathWordAutomaton::AcceptsAttribute(uint64_t bits,
                                         const std::string& attr) const {
  return impl_->nfa.AcceptsAttribute(bits, attr);
}

bool PathWordAutomaton::HasAttributeTests(uint64_t bits) const {
  return impl_->nfa.AcceptsAnyAttribute(bits);
}

bool PathWordAutomaton::has_predicates() const {
  return impl_->nfa.has_predicates;
}

}  // namespace analysis
}  // namespace xmlsec
