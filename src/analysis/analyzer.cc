#include "analysis/analyzer.h"

#include <algorithm>
#include <optional>
#include <string_view>
#include <utility>

namespace xmlsec {
namespace analysis {

namespace {

using authz::Action;
using authz::Authorization;
using authz::ConflictPolicy;
using authz::GroupStore;
using authz::IsRecursive;
using authz::IsWeak;
using authz::LintFinding;
using authz::LintSeverity;
using authz::Sign;
using authz::SubjectLessEq;

/// One authorization with its precomputed abstract analysis.
struct AuthInfo {
  const Authorization* auth = nullptr;
  bool schema_level = false;
  int index = 0;  ///< combined (instance, then schema) index
  PathQuery query;
  AbstractSelection selection;  ///< abstract target points
  AbstractSelection influence;  ///< targets closed under propagation

  bool analyzable() const { return !selection.unknown; }
  bool unsatisfiable() const { return selection.definitely_empty(); }
};

bool WindowsOverlap(const Authorization& a, const Authorization& b) {
  return std::max(a.valid_from, b.valid_from) <=
         std::min(a.valid_until, b.valid_until);
}

bool WindowContains(const Authorization& outer, const Authorization& inner) {
  return outer.valid_from <= inner.valid_from &&
         outer.valid_until >= inner.valid_until;
}

/// The sign that wins an unresolved same-slot conflict under `policy`,
/// or nullopt for kNothingTakesPrecedence (no static winner).
std::optional<Sign> WinningSign(ConflictPolicy policy) {
  switch (policy) {
    case ConflictPolicy::kDenialsTakePrecedence:
      return Sign::kMinus;
    case ConflictPolicy::kPermissionsTakePrecedence:
      return Sign::kPlus;
    case ConflictPolicy::kNothingTakesPrecedence:
      return std::nullopt;
  }
  return std::nullopt;
}

/// Sufficient (sound) conditions under which removing `a` provably
/// leaves every requester's view of every valid document unchanged.
///
/// Same-sign domination: `b` applies to every requester/time `a` does,
/// influences (explicitly or by propagation) every node `a` influences,
/// and no opposite-sign authorization overlaps `a`'s influence — so the
/// final sign of every node in `a`'s influence region is `a.sign` (or ε)
/// with or without `a`, and `b` guarantees it stays non-ε exactly where
/// `a` made it non-ε.
///
/// Opposite-sign override: `b` carries the conflict-winning sign, has
/// the same subject, level, strength, and propagation type, and
/// *explicitly* targets every node `a` targets (same slot) — the slot
/// resolves to `b.sign` with or without `a`.  Explicit coverage is
/// required because a propagated sign is suppressed by an explicit one
/// at the same node ("most specific object takes precedence").
bool ShadowedBy(const AuthInfo& a, const AuthInfo& b,
                std::span<const AuthInfo> all, const GroupStore& groups,
                const PathAnalyzer& analyzer, ConflictPolicy conflict) {
  const Authorization& aa = *a.auth;
  const Authorization& bb = *b.auth;
  if (a.schema_level != b.schema_level) return false;

  // Exact twin: an identical authorization at the same level leaves the
  // labeling input unchanged when `a` is removed — shadowed no matter
  // what the rest of the policy looks like.  (The tie on equal tuples is
  // broken by index so only one direction is reported.)
  if (aa.subject == bb.subject && aa.object == bb.object &&
      aa.action == bb.action && aa.sign == bb.sign && aa.type == bb.type &&
      aa.valid_from == bb.valid_from && aa.valid_until == bb.valid_until) {
    return a.index > b.index;
  }

  if (aa.action != bb.action) return false;
  if (IsWeak(aa.type) != IsWeak(bb.type)) return false;
  if (!WindowContains(bb, aa)) return false;
  if (!a.analyzable() || !b.analyzable()) return false;

  if (aa.sign == bb.sign) {
    if (!SubjectLessEq(aa.subject, bb.subject, groups)) return false;
    if (IsRecursive(aa.type) && !IsRecursive(bb.type)) return false;
    if (!analyzer.Covers(b.query, a.query, CoverMode::kInfluence)) {
      return false;
    }
    // No opposite-sign authorization may overlap a's influence region:
    // otherwise a's subject specificity or slot value could shield or
    // flip nodes there.
    for (const AuthInfo& c : all) {
      if (c.index == a.index || c.index == b.index) continue;
      if (c.auth->action != aa.action) continue;
      if (c.auth->sign == aa.sign) continue;
      if (!WindowsOverlap(*c.auth, aa)) continue;
      if (c.influence.Overlaps(a.influence)) return false;
    }
    return true;
  }

  std::optional<Sign> winner = WinningSign(conflict);
  if (!winner.has_value() || bb.sign != *winner) return false;
  if (!(aa.subject == bb.subject)) return false;
  if (IsRecursive(aa.type) != IsRecursive(bb.type)) return false;
  return analyzer.Covers(b.query, a.query, CoverMode::kSameSlot);
}

std::string AuthRef(const AuthInfo& info) {
  return "auth#" + std::to_string(info.index) + " [" +
         info.auth->ToString() + "]";
}

/// Column label of a subject: the user/group, with any non-universal
/// location pattern appended so distinct subjects stay distinguishable.
std::string SubjectColumn(const authz::Subject& s) {
  std::string label = s.ug.empty() ? "(*)" : s.ug;
  if (std::string ip = s.ip.ToString(); ip != "*") label += "@" + ip;
  if (std::string sym = s.sym.ToString(); sym != "*") label += "@" + sym;
  return label;
}

}  // namespace

std::string_view DecisionToString(Decision d) {
  switch (d) {
    case Decision::kOpen:
      return "open";
    case Decision::kPlus:
      return "+";
    case Decision::kMinus:
      return "-";
    case Decision::kPlusOrOpen:
      return "+?";
    case Decision::kMinusOrOpen:
      return "-?";
    case Decision::kUnknown:
      return "?";
  }
  return "?";
}

std::string CoverageTable::ToString() const {
  if (points.empty() || subjects.empty()) return "";
  std::string out = "decision coverage (";
  out += std::to_string(points.size()) + " schema points x " +
         std::to_string(subjects.size()) + " subjects)\n";

  // Column widths.
  size_t name_width = 0;
  for (const SchemaPoint& p : points) {
    name_width = std::max(name_width, p.ToString().size());
  }
  std::vector<std::string> labels;
  std::vector<size_t> widths;
  for (const authz::Subject& s : subjects) {
    labels.push_back(SubjectColumn(s));
    widths.push_back(std::max<size_t>(4, labels.back().size()));
  }

  auto pad = [](std::string text, size_t width) {
    if (text.size() < width) text.append(width - text.size(), ' ');
    return text;
  };

  out += pad("node", name_width) + " |";
  for (size_t j = 0; j < subjects.size(); ++j) {
    out += " " + pad(labels[j], widths[j]);
  }
  out += "\n";
  for (size_t i = 0; i < points.size(); ++i) {
    out += pad(points[i].ToString(), name_width) + " |";
    for (size_t j = 0; j < subjects.size(); ++j) {
      out += " " + pad(std::string(DecisionToString(cells[i][j])), widths[j]);
    }
    out += "\n";
  }
  return out;
}

PolicyAnalysis AnalyzePolicy(std::span<const Authorization> instance,
                             std::span<const Authorization> schema,
                             const GroupStore& groups, const xml::Dtd& dtd,
                             const AnalyzerOptions& options) {
  PolicyAnalysis out;
  // Decidability is schema-independent (the verdict holds against every
  // DTD), so it is reported even when the graph below is unusable.
  out.decidability = ClassifyAuthorizations(instance, schema);
  out.decidability_report =
      DecidabilityReport(instance, schema, out.decidability);
  SchemaGraph graph = SchemaGraph::Build(dtd);
  if (!graph.valid()) {
    out.findings.push_back(LintFinding{
        LintSeverity::kWarning, "no-schema",
        "the DTD declares no analyzable root element; static analysis "
        "skipped",
        -1});
    return out;
  }
  PathAnalyzer analyzer(&graph);

  // Precompute the abstract analysis of every authorization.
  std::vector<AuthInfo> all;
  auto collect = [&](std::span<const Authorization> auths, bool schema_level) {
    for (const Authorization& auth : auths) {
      AuthInfo info;
      info.auth = &auth;
      info.schema_level = schema_level;
      info.index = static_cast<int>(all.size());
      info.query = PathQuery{auth.object.path, IsRecursive(auth.type)};
      info.selection = analyzer.Analyze(auth.object.path);
      info.influence = analyzer.Influence(info.query);
      all.push_back(std::move(info));
    }
  };
  collect(instance, /*schema_level=*/false);
  collect(schema, /*schema_level=*/true);

  // --- Pass 1: satisfiability ------------------------------------------
  for (const AuthInfo& info : all) {
    if (info.unsatisfiable()) {
      out.findings.push_back(LintFinding{
          LintSeverity::kWarning, "unsat-object",
          "object path can never select a node of any document valid "
          "against the DTD: " +
              info.auth->object.path,
          info.index});
    }
  }

  // --- Pass 2: shadowed authorizations ---------------------------------
  for (const AuthInfo& a : all) {
    if (!a.analyzable() || a.unsatisfiable()) continue;
    for (const AuthInfo& b : all) {
      if (b.index == a.index) continue;
      if (!ShadowedBy(a, b, all, groups, analyzer,
                      options.policy.conflict)) {
        continue;
      }
      out.findings.push_back(LintFinding{
          LintSeverity::kWarning, "shadowed",
          "authorization is shadowed by " + AuthRef(b) +
              ": removing it cannot change any requester's view",
          a.index});
      break;  // one witness is enough
    }
  }

  // --- Pass 3: static conflicts ----------------------------------------
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      const AuthInfo& a = all[i];
      const AuthInfo& b = all[j];
      if (a.schema_level != b.schema_level) continue;
      if (a.auth->action != b.auth->action) continue;
      if (a.auth->sign == b.auth->sign) continue;
      if (!WindowsOverlap(*a.auth, *b.auth)) continue;
      if (!a.analyzable() || !b.analyzable()) continue;
      if (!a.influence.Overlaps(b.influence)) continue;
      bool a_le_b = SubjectLessEq(a.auth->subject, b.auth->subject, groups);
      bool b_le_a = SubjectLessEq(b.auth->subject, a.auth->subject, groups);
      if (!a_le_b && !b_le_a) continue;  // incomparable: by design
      std::string resolution;
      if (a_le_b && b_le_a) {
        resolution = "resolved by the conflict policy (" +
                     std::string(authz::ConflictPolicyToString(
                         options.policy.conflict)) +
                     ")";
      } else {
        resolution = std::string("the more specific subject (") +
                     (a_le_b ? a.auth->subject.ug : b.auth->subject.ug) +
                     ") silently wins where both apply";
      }
      out.findings.push_back(LintFinding{
          LintSeverity::kWarning, "schema-conflict",
          "opposite-sign authorizations overlap on the schema (" +
              AuthRef(a) + " vs " + AuthRef(b) + "); " + resolution,
          a.index});
    }
  }

  // --- Pass 4: decision coverage table ---------------------------------
  if (!options.coverage) return out;

  for (const std::string& element : graph.reachable()) {
    out.coverage.points.push_back(SchemaPoint{element, ""});
    for (const std::string& attr : graph.Attributes(element)) {
      out.coverage.points.push_back(SchemaPoint{element, attr});
    }
  }
  for (const AuthInfo& info : all) {
    const authz::Subject& subject = info.auth->subject;
    bool known = false;
    for (const authz::Subject& existing : out.coverage.subjects) {
      if (existing == subject) {
        known = true;
        break;
      }
    }
    if (!known) out.coverage.subjects.push_back(subject);
  }

  out.coverage.cells.assign(
      out.coverage.points.size(),
      std::vector<Decision>(out.coverage.subjects.size(), Decision::kOpen));
  for (size_t j = 0; j < out.coverage.subjects.size(); ++j) {
    const authz::Subject& subject = out.coverage.subjects[j];
    std::vector<const AuthInfo*> applicable;
    bool has_unknown = false;
    for (const AuthInfo& info : all) {
      if (static_cast<int>(info.auth->action) != options.policy.action) {
        continue;
      }
      if (!info.auth->AppliesAtTime(options.at_time)) continue;
      if (!SubjectLessEq(subject, info.auth->subject, groups)) continue;
      if (!info.analyzable()) has_unknown = true;
      applicable.push_back(&info);
    }
    for (size_t i = 0; i < out.coverage.points.size(); ++i) {
      const SchemaPoint& point = out.coverage.points[i];
      if (has_unknown) {
        out.coverage.cells[i][j] = Decision::kUnknown;
        continue;
      }
      bool any_plus = false;
      bool any_minus = false;
      bool guaranteed = false;
      for (const AuthInfo* info : applicable) {
        if (!info->influence.MayContain(point)) continue;
        (info->auth->sign == Sign::kPlus ? any_plus : any_minus) = true;
        if (!guaranteed &&
            analyzer.CoversAllInstances(info->query, point)) {
          guaranteed = true;
        }
      }
      Decision decision;
      if (!any_plus && !any_minus) {
        decision = Decision::kOpen;
      } else if (any_plus && any_minus) {
        decision = Decision::kUnknown;
      } else if (any_plus) {
        decision = guaranteed ? Decision::kPlus : Decision::kPlusOrOpen;
      } else {
        decision = guaranteed ? Decision::kMinus : Decision::kMinusOrOpen;
      }
      out.coverage.cells[i][j] = decision;
    }
  }
  return out;
}

std::string AnalysisReport(const PolicyAnalysis& analysis) {
  std::string out = authz::LintReport(analysis.findings);
  if (!analysis.decidability_report.empty()) {
    out += "\n" + analysis.decidability_report;
  }
  std::string table = analysis.coverage.ToString();
  if (!table.empty()) {
    out += "\n" + table;
  }
  return out;
}

}  // namespace analysis
}  // namespace xmlsec
