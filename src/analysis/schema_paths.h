#ifndef XMLSEC_ANALYSIS_SCHEMA_PATHS_H_
#define XMLSEC_ANALYSIS_SCHEMA_PATHS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "xml/dtd.h"
#include "xml/dtd_tree.h"
#include "xpath/ast.h"

namespace xmlsec {
namespace analysis {

/// The DTD content-model graph: one node per declared element, arcs from
/// `xml::SchemaChildEdges`, plus the declared attributes per element.
/// This is the paper's schema graph (Fig. 1b) folded at recursion — the
/// finite structure all static analyses walk instead of a document
/// instance.  Only elements *declared* and *reachable from the root* can
/// occur in a valid document (the validator rejects undeclared element
/// types), so every analysis is restricted to that sub-graph.
class SchemaGraph {
 public:
  /// Builds the graph.  `root` overrides the start element; empty falls
  /// back to the DTD's declared doctype name, then the first declaration.
  static SchemaGraph Build(const xml::Dtd& dtd, const std::string& root = "");

  /// False when the DTD declares nothing usable (no root element).
  bool valid() const { return !root_.empty(); }
  const std::string& root() const { return root_; }

  bool HasElement(const std::string& name) const {
    return children_.contains(name);
  }
  /// Distinct child-element names admitted by `element`'s content model
  /// (declared targets only).
  const std::vector<std::string>& Children(const std::string& element) const;
  /// Declared attribute names of `element`.
  const std::vector<std::string>& Attributes(const std::string& element) const;
  bool HasAttribute(const std::string& element, const std::string& attr) const;

  /// Elements reachable from the root (the root included).
  const std::set<std::string>& reachable() const { return reachable_; }

  /// All elements reachable from any element in `seeds` (transitively);
  /// `include_seeds` adds the seeds themselves.
  std::set<std::string> DescendantsOf(const std::set<std::string>& seeds,
                                      bool include_seeds) const;

 private:
  std::string root_;
  std::map<std::string, std::vector<std::string>> children_;
  std::map<std::string, std::vector<std::string>> attrs_;
  std::set<std::string> reachable_;
};

/// One node of the schema graph: an element, or an attribute of an
/// element.  The abstract domain of the path interpreter — a concrete
/// document node maps to the point named by its tag (and attribute name).
struct SchemaPoint {
  std::string element;
  std::string attribute;  ///< empty => the element node itself

  bool is_attribute() const { return !attribute.empty(); }
  std::string ToString() const {
    return is_attribute() ? element + "/@" + attribute : element;
  }
  friend bool operator<(const SchemaPoint& a, const SchemaPoint& b) {
    return std::tie(a.element, a.attribute) < std::tie(b.element, b.attribute);
  }
  friend bool operator==(const SchemaPoint& a, const SchemaPoint& b) {
    return a.element == b.element && a.attribute == b.attribute;
  }
};

/// Result of abstractly evaluating a path over the schema graph.
///
/// When `unknown` is false, `points` is a sound *over-approximation* of
/// the schema points the path can select in any valid document: an empty
/// set proves the path unsatisfiable; a non-empty set means "possibly
/// these, nothing else".  `unknown` means the path uses constructs the
/// interpreter does not model (reverse/sibling axes, variables outside
/// predicates, filter bases, text()/comment() targets) and could select
/// anything.
struct AbstractSelection {
  bool unknown = false;
  std::set<SchemaPoint> points;

  bool definitely_empty() const { return !unknown && points.empty(); }
  bool MayContain(const SchemaPoint& p) const {
    return unknown || points.contains(p);
  }
  bool Overlaps(const AbstractSelection& other) const;
};

/// An authorization object path paired with its propagation behavior —
/// the unit the containment queries compare.  An empty `path` targets the
/// root element (the paper's whole-document object).
struct PathQuery {
  std::string path;
  bool recursive = false;  ///< authorization type is R / RW
};

/// Containment modes of `PathAnalyzer::Covers`.
enum class CoverMode {
  /// influence(a) ⊆ influence(b): every node (or attribute) the inner
  /// query reaches — directly, by recursive propagation, or as an
  /// attribute of a targeted element — is also reached by the outer one.
  kInfluence,
  /// Exact same-slot coverage: the outer path explicitly selects every
  /// node the inner path selects, with matching node kind (element vs
  /// attribute) and no credit for recursive propagation.  Required when
  /// reasoning about opposite-sign overrides, where a propagated sign
  /// can be suppressed by an explicit one at the same node.
  kSameSlot,
};

/// The XPath-over-DTD abstract interpreter (tentpole of the static
/// analyzer).  Compiles a path's location steps into a small word
/// automaton over element names and runs it against the schema graph:
///
///   * `Analyze`  — satisfiability / abstract point set;
///   * `Covers`   — word-level path containment (sound: `true` is a
///     proof, `false` merely "not provable");
///   * `CoversAllInstances` — does a query select (or recursively cover)
///     *every* instance of a schema point in every valid document?
///
/// Predicates are handled conservatively: a candidate is pruned only
/// when a predicate is *provably* false against the schema (its path
/// operand can never select anything); positional, functional, and
/// variable predicates are kept.  Outer queries of the containment
/// checks must be predicate-free, since predicates could shrink their
/// selection.
class PathAnalyzer {
 public:
  explicit PathAnalyzer(const SchemaGraph* graph) : graph_(graph) {}

  AbstractSelection Analyze(const std::string& path) const;
  AbstractSelection Analyze(const xpath::Expr& expr) const;

  /// Abstract influence set of an authorization: its points, closed
  /// under recursive propagation (`recursive`) and the element→own
  /// attributes coverage of Local authorizations.
  AbstractSelection Influence(const PathQuery& query) const;

  /// True iff provably: every node influenced (kInfluence) or selected
  /// (kSameSlot) by `a` is influenced/selected by `b` in every valid
  /// document.  `a`'s predicates are ignored (over-approximation, which
  /// keeps the proof sound); returns false when `b` has predicates or
  /// either path is not analyzable.
  bool Covers(const PathQuery& b, const PathQuery& a, CoverMode mode) const;

  /// True iff provably: `b` influences every instance of `point` in
  /// every valid document (selects it, selects an ancestor recursively,
  /// or — for attribute points — selects the owning element).
  bool CoversAllInstances(const PathQuery& b, const SchemaPoint& point) const;

  const SchemaGraph& graph() const { return *graph_; }

 private:
  const SchemaGraph* graph_;
};

/// Static compilability of one authorization path — the decidability
/// classification of the policy compiler (analysis/policy_automaton.h).
enum class PathCompilability {
  /// Selection depends only on the root-to-node tag word: the policy
  /// compiler resolves every target by table lookup, on any document.
  kDecidable,
  /// The structure compiles but the path carries predicates whose truth
  /// depends on document values or requester bindings ($user/$ip/$sym/
  /// $time): the authorization stays on the per-request XPath path.
  kValueDependent,
  /// Outside the compilable fragment (reverse/sibling axes, filter
  /// bases, non-element node tests, over-long paths): full fallback.
  kOpaque,
};

std::string_view PathCompilabilityToString(PathCompilability c);

struct PathClassification {
  PathCompilability verdict = PathCompilability::kDecidable;
  /// Unparsed offending predicates (kValueDependent), in path order —
  /// lint's fix-it hints and the decidability report name these.
  std::vector<std::string> residual_predicates;
  /// The path mentions an XPath variable anywhere ($user and friends).
  bool uses_requester_variables = false;
  /// kOpaque: which construct defeated compilation.
  std::string reason;
};

/// Classifies `path` for the policy compiler.  Schema-independent: the
/// verdict holds against every DTD.  An empty path (the whole-document
/// object) is decidable.
PathClassification ClassifyPath(const std::string& path);

/// A compiled word automaton over root-to-node element-tag words — the
/// interpreter's internal NFA behind a stable interface, the building
/// block of the policy-automaton product construction.  A run consumes
/// the element names on the root-to-node path of a document node
/// starting from `kStartBits` (the document node; the empty word); the
/// node is selected iff the final state set accepts it.
///
/// Unlike the containment machinery this wrapper applies NO predicate
/// pruning: callers must only trust Accepts* verdicts of predicate-free
/// automata (`has_predicates() == false`), for which acceptance is
/// *exact* on any document — not just an over-approximation.
class PathWordAutomaton {
 public:
  /// Compiles `path`; empty compiles the root-only automaton (the
  /// paper's whole-document object).  Fails outside the compilable
  /// fragment — the same verdict `ClassifyPath` reports as kOpaque.
  static Result<PathWordAutomaton> Compile(const std::string& path);

  static constexpr uint64_t kStartBits = 1;  ///< the start state's bit

  uint64_t Move(uint64_t bits, const std::string& element) const;
  bool AcceptsElement(uint64_t bits) const;
  bool AcceptsAttribute(uint64_t bits, const std::string& attr) const;
  /// Any attribute test live in `bits` — the guard the product
  /// construction stores per state to stay exact on attributes the DTD
  /// does not declare.
  bool HasAttributeTests(uint64_t bits) const;
  bool has_predicates() const;

 private:
  struct Impl;
  std::shared_ptr<const Impl> impl_;
};

}  // namespace analysis
}  // namespace xmlsec

#endif  // XMLSEC_ANALYSIS_SCHEMA_PATHS_H_
