#ifndef XMLSEC_ANALYSIS_POLICY_AUTOMATON_H_
#define XMLSEC_ANALYSIS_POLICY_AUTOMATON_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/schema_paths.h"
#include "authz/authorization.h"
#include "authz/labeling.h"
#include "authz/policy.h"
#include "authz/subject.h"
#include "common/result.h"
#include "xml/dom.h"
#include "xml/dtd.h"

namespace xmlsec {
namespace analysis {

/// Static decidability of one authorization against a DTD (grounded in
/// Cheney, "Static Enforceability of XPath-Based Access Control
/// Policies": the schema-decidable fragment resolves by table lookup).
enum class Decidability {
  kDecidable,  ///< resolved entirely by automaton table lookup
  kPartial,    ///< structure compiles; value-dependent predicates remain
  kOpaque,     ///< outside the compilable fragment: full XPath fallback
};

std::string_view DecidabilityToString(Decidability d);

/// Per-authorization compiler verdict, with reasons — one entry of the
/// static decidability report.
struct AuthClassification {
  Decidability decidability = Decidability::kDecidable;
  bool schema_level = false;
  bool uses_requester_variables = false;
  /// kPartial / kOpaque: the offending predicates, unparsed.
  std::vector<std::string> residual_predicates;
  /// kOpaque: which construct defeated compilation.
  std::string reason;
};

/// Classifies every authorization of a policy (instance set first, then
/// schema set — the concatenated index order `LintPolicy` uses).  Pure
/// per-path work; building the product automaton is not required.
std::vector<AuthClassification> ClassifyAuthorizations(
    std::span<const authz::Authorization> instance_auths,
    std::span<const authz::Authorization> schema_auths);

/// Renders the per-authorization classification as text (the
/// `xacl_tool analyze` / `xacl_tool compile` decidability section).
std::string DecidabilityReport(
    std::span<const authz::Authorization> instance_auths,
    std::span<const authz::Authorization> schema_auths,
    std::span<const AuthClassification> classes);

struct AutomatonOptions {
  /// Cap on the product construction.  On overflow `Compile` fails and
  /// the caller keeps serving through the XPath path — the automaton is
  /// an optimization, never a correctness requirement.
  size_t max_states = 65536;
  /// Overrides the schema root element (empty: the DTD's doctype name).
  std::string root;
};

struct AutomatonStats {
  size_t states = 0;
  size_t transitions = 0;
  size_t decidable_auths = 0;
  size_t partial_auths = 0;
  size_t opaque_auths = 0;
};

/// The schema-compiled policy automaton (tentpole of the static labeling
/// compiler).
///
/// `Compile` abstractly interprets each authorization's XPath over the
/// DTD content-model graph and builds the product DFA whose states are
/// DTD element contexts — (element type, per-authorization NFA state
/// sets), i.e. element type × schema-path equivalence class — with a
/// transition table keyed by child element name.  Each state carries,
/// per label slot, the list of statically decidable authorizations that
/// explicitly target the element (and each declared attribute) in that
/// context.  Authorizations classified kPartial or kOpaque go to a
/// residual list that still evaluates through XPath per request.
///
/// `ComputeSigns` then labels a document by threading automaton states
/// down the tree: for most nodes the explicit 6-tuple row is a table
/// lookup (resolved lazily per state and cached for the request, since
/// subject specificity and conflict resolution depend only on the
/// requester-applicable candidate set, not on the node); nodes a
/// residual authorization landed on merge both candidate lists and
/// resolve jointly, which keeps the most-specific-subject override
/// sound across the decidable/residual split.
///
/// Exactness: for the predicate-free compiled fragment, XPath selection
/// depends only on the root-to-node tag word, so table acceptance equals
/// runtime selection on ANY document — valid or not — as long as every
/// tag/attribute the walk meets is part of the compiled schema.  A
/// transition miss or an undeclared attribute under live attribute
/// tests (possible only on documents invalid against the DTD) aborts
/// via `*schema_mismatch`, and the caller serves through the XPath path.
class PolicyAutomaton : public authz::ExplicitSignEngine {
 public:
  static Result<std::unique_ptr<PolicyAutomaton>> Compile(
      const xml::Dtd& dtd,
      std::span<const authz::Authorization> instance_auths,
      std::span<const authz::Authorization> schema_auths,
      const AutomatonOptions& options = {});

  // authz::ExplicitSignEngine:
  Result<authz::ExplicitSigns> ComputeSigns(
      const xml::Document& doc, const authz::Requester& rq,
      const authz::GroupStore& groups, authz::PolicyOptions policy,
      authz::LabelingStats* stats, bool* schema_mismatch) const override;

  /// Every authorization compiled into the table; nothing residual.
  /// Explicit signs then depend only on root-to-node tag words — the
  /// premise the update path's incremental re-labeling relies on.
  bool fully_decidable() const override {
    return residual_instance_.empty() && residual_schema_.empty();
  }

  /// `Resolver` behind the `authz::NodeSignResolver` interface (the
  /// update path's lazy row source); nullptr when construction fails.
  std::unique_ptr<authz::NodeSignResolver> NewNodeResolver(
      const xml::Document& doc, const authz::Requester& rq,
      const authz::GroupStore& groups,
      authz::PolicyOptions policy) const override;

  const AutomatonStats& stats() const { return stats_; }
  /// Concatenated (instance, then schema) input order.
  const std::vector<AuthClassification>& classifications() const {
    return classifications_;
  }
  /// The decidability report for this policy, automaton header line
  /// included.
  std::string Report() const;

  /// The residual (value-dependent / opaque) authorization subsets the
  /// engine evaluates through XPath per request.
  std::span<const authz::Authorization> residual_instance() const {
    return residual_instance_;
  }
  std::span<const authz::Authorization> residual_schema() const {
    return residual_schema_;
  }

  /// Incremental per-request sign resolution — the automaton's lazy
  /// counterpart to `ComputeSigns`, built for consumers that touch only
  /// a slice of the document (the query rewriter's visibility oracle).
  ///
  /// `RowFor` returns the explicit pre-propagation 6-tuple of an element
  /// or attribute node, memoizing the automaton state of every element
  /// on the way up (parent-chain threading instead of a whole-tree
  /// walk), the per-state resolved rows, and the residual joint
  /// resolution — the same values `ComputeSigns` would have written for
  /// that node, at cost proportional to the nodes actually visited.
  ///
  /// Fail-safe: meeting an undeclared element, a content-model
  /// violation, or an undeclared attribute under live attribute tests
  /// latches `schema_mismatch()` (sticky).  From then on every `RowFor`
  /// returns all-ε; the caller MUST check the latch and discard its
  /// conclusions — under an open completeness policy an all-ε row reads
  /// as permission, so serving through a mismatched resolver would fail
  /// open.
  class Resolver {
   public:
    /// Explicit 6-tuple of an element or attribute (all-ε for other
    /// node types, which carry no explicit signs).  The node must
    /// belong to the document the resolver was created for.
    std::array<authz::TriSign, 6> RowFor(const xml::Node& node);

    bool schema_mismatch() const { return mismatch_; }
    /// Nodes resolved by pure table lookup vs. through a residual joint
    /// resolution, for `LabelingStats`-style accounting.
    int64_t table_nodes() const { return table_nodes_; }
    int64_t residual_nodes() const { return residual_nodes_; }

   private:
    friend class PolicyAutomaton;

    static constexpr int32_t kStateUnknown = -2;
    static constexpr int32_t kStateMismatch = -1;

    /// Lazily resolved per-state rows (same request-scoped cache as
    /// `ComputeSigns`' `rows_of`).
    struct ResolvedState {
      bool ready = false;
      std::array<authz::TriSign, 6> element{};
      std::vector<std::array<authz::TriSign, 6>> attrs;
    };

    Resolver(const PolicyAutomaton* owner, const xml::Document* doc,
             const authz::GroupStore* groups, authz::PolicyOptions policy);

    /// Automaton state id of `el`, threading (and memoizing) the parent
    /// chain; `kStateMismatch` latches `mismatch_`.
    int32_t StateFor(const xml::Element* el);
    const ResolvedState& Rows(size_t state_id);
    std::array<authz::TriSign, 6> ResolveLists(
        const std::array<std::vector<uint32_t>, 6>& lists);
    std::array<authz::TriSign, 6> JointRow(
        const std::array<std::vector<uint32_t>, 6>* lists,
        int64_t doc_order);
    std::array<authz::TriSign, 6> ElementRow(const xml::Element& el);
    std::array<authz::TriSign, 6> AttrRow(const xml::Attr& attr);

    const PolicyAutomaton* owner_;
    const xml::Document* doc_;
    const authz::GroupStore* groups_;
    authz::PolicyOptions policy_;
    /// Request-time applicability of the decidable set.
    std::vector<uint8_t> mask_;
    /// Residual (value-dependent) candidates, collected once.
    authz::SlotCandidates residual_;
    std::vector<ResolvedState> resolved_;
    /// Per-element memoized state id, indexed by doc_order.
    std::vector<int32_t> state_memo_;
    std::vector<const authz::Authorization*> scratch_;
    bool mismatch_ = false;
    int64_t table_nodes_ = 0;
    int64_t residual_nodes_ = 0;
  };

  /// Builds a resolver for one (document, requester) pair.  Fails only
  /// when the residual XPath evaluation fails or the document has no
  /// root; an automaton/schema disagreement surfaces later through
  /// `Resolver::schema_mismatch`.
  Result<std::unique_ptr<Resolver>> NewResolver(
      const xml::Document& doc, const authz::Requester& rq,
      const authz::GroupStore& groups, authz::PolicyOptions policy) const;

 private:
  /// One statically decidable authorization: its word automaton plus a
  /// pointer into the owned copies below.
  struct CompiledAuth {
    const authz::Authorization* auth;
    bool schema_level;
    PathWordAutomaton word;
  };

  /// One product state: the element context's transition row plus the
  /// per-slot decidable candidate lists (authorization indices into
  /// `decidable_`) for the element node and each declared attribute
  /// that any candidate targets.
  struct State {
    uint32_t element_id = 0;
    /// Sorted by element id; children the content model admits.
    std::vector<std::pair<uint32_t, uint32_t>> transitions;
    std::array<std::vector<uint32_t>, 6> element_slots;
    struct AttrEntry {
      std::string name;
      std::array<std::vector<uint32_t>, 6> slots;
    };
    std::vector<AttrEntry> attrs;
    /// Some decidable authorization has a live attribute test here: an
    /// attribute the DTD does not declare cannot be proven untargeted,
    /// so meeting one forces the schema-mismatch fallback.
    bool attr_tests = false;
  };

  PolicyAutomaton() = default;

  const State* TransitionTo(const State& from, uint32_t element_id) const;

  std::vector<authz::Authorization> instance_;
  std::vector<authz::Authorization> schema_;
  std::vector<authz::Authorization> residual_instance_;
  std::vector<authz::Authorization> residual_schema_;
  std::vector<CompiledAuth> decidable_;
  std::vector<AuthClassification> classifications_;

  std::unordered_map<std::string, uint32_t> element_ids_;
  std::vector<std::string> element_names_;
  /// Declared attribute names per element id, sorted (the undeclared-
  /// attribute guard binary-searches these).
  std::vector<std::vector<std::string>> declared_attrs_;

  std::vector<State> states_;  ///< state 0: the document context
  std::string root_;
  AutomatonStats stats_;
};

}  // namespace analysis
}  // namespace xmlsec

#endif  // XMLSEC_ANALYSIS_POLICY_AUTOMATON_H_
