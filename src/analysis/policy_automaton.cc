#include "analysis/policy_automaton.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <utility>

namespace xmlsec {
namespace analysis {

namespace {

using authz::Authorization;
using authz::ExplicitSigns;
using authz::GroupStore;
using authz::LabelingStats;
using authz::PolicyOptions;
using authz::Requester;
using authz::ResolveSlotCandidates;
using authz::SlotCandidates;
using authz::SlotForTarget;
using authz::TriSign;
using xml::Attr;
using xml::Document;
using xml::Element;

/// Element id of the document-context state (state 0), which is not an
/// element at all.
constexpr uint32_t kDocumentId = UINT32_MAX;

constexpr std::array<TriSign, 6> kAllEps = {
    TriSign::kEps, TriSign::kEps, TriSign::kEps,
    TriSign::kEps, TriSign::kEps, TriSign::kEps};

Decidability VerdictOf(PathCompilability c) {
  switch (c) {
    case PathCompilability::kDecidable:
      return Decidability::kDecidable;
    case PathCompilability::kValueDependent:
      return Decidability::kPartial;
    case PathCompilability::kOpaque:
      return Decidability::kOpaque;
  }
  return Decidability::kOpaque;
}

}  // namespace

std::string_view DecidabilityToString(Decidability d) {
  switch (d) {
    case Decidability::kDecidable:
      return "decidable";
    case Decidability::kPartial:
      return "partially-decidable";
    case Decidability::kOpaque:
      return "opaque";
  }
  return "?";
}

std::vector<AuthClassification> ClassifyAuthorizations(
    std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths) {
  std::vector<AuthClassification> out;
  out.reserve(instance_auths.size() + schema_auths.size());
  auto classify = [&](std::span<const Authorization> auths,
                      bool schema_level) {
    for (const Authorization& auth : auths) {
      PathClassification p = ClassifyPath(auth.object.path);
      AuthClassification c;
      c.decidability = VerdictOf(p.verdict);
      c.schema_level = schema_level;
      c.uses_requester_variables = p.uses_requester_variables;
      c.residual_predicates = std::move(p.residual_predicates);
      c.reason = std::move(p.reason);
      out.push_back(std::move(c));
    }
  };
  classify(instance_auths, /*schema_level=*/false);
  classify(schema_auths, /*schema_level=*/true);
  return out;
}

std::string DecidabilityReport(std::span<const Authorization> instance_auths,
                               std::span<const Authorization> schema_auths,
                               std::span<const AuthClassification> classes) {
  size_t decidable = 0;
  size_t partial = 0;
  size_t opaque = 0;
  for (const AuthClassification& c : classes) {
    switch (c.decidability) {
      case Decidability::kDecidable:
        decidable++;
        break;
      case Decidability::kPartial:
        partial++;
        break;
      case Decidability::kOpaque:
        opaque++;
        break;
    }
  }
  std::string out = "decidability: " + std::to_string(decidable) +
                    " decidable, " + std::to_string(partial) +
                    " partially-decidable, " + std::to_string(opaque) +
                    " opaque (of " + std::to_string(classes.size()) + ")\n";
  for (size_t i = 0; i < classes.size(); ++i) {
    const AuthClassification& c = classes[i];
    const Authorization& auth =
        i < instance_auths.size() ? instance_auths[i]
                                  : schema_auths[i - instance_auths.size()];
    out += "auth#" + std::to_string(i);
    out += c.schema_level ? " [schema] " : " [instance] ";
    out += DecidabilityToString(c.decidability);
    out += ": " + auth.ToString() + "\n";
    if (!c.residual_predicates.empty()) {
      out += "    residual predicates:";
      for (const std::string& pred : c.residual_predicates) {
        out += " [" + pred + "]";
      }
      out += "\n";
    }
    if (c.uses_requester_variables) {
      out += "    uses requester variables\n";
    }
    if (!c.reason.empty()) {
      out += "    reason: " + c.reason + "\n";
    }
  }
  return out;
}

Result<std::unique_ptr<PolicyAutomaton>> PolicyAutomaton::Compile(
    const xml::Dtd& dtd, std::span<const Authorization> instance_auths,
    std::span<const Authorization> schema_auths,
    const AutomatonOptions& options) {
  SchemaGraph graph = SchemaGraph::Build(dtd, options.root);
  if (!graph.valid()) {
    return Status::InvalidArgument(
        "cannot compile policy automaton: DTD declares no usable root "
        "element");
  }

  auto automaton = std::unique_ptr<PolicyAutomaton>(new PolicyAutomaton());
  PolicyAutomaton& a = *automaton;
  a.root_ = graph.root();
  a.instance_.assign(instance_auths.begin(), instance_auths.end());
  a.schema_.assign(schema_auths.begin(), schema_auths.end());
  a.classifications_ = ClassifyAuthorizations(a.instance_, a.schema_);

  // Partition into the compiled set (word automata pointing into the
  // owned copies — populated after the vectors stop growing) and the
  // residual sets the engine evaluates through XPath per request.
  size_t class_index = 0;
  auto partition = [&](const std::vector<Authorization>& owned,
                       bool schema_level,
                       std::vector<Authorization>* residual) -> Status {
    for (const Authorization& auth : owned) {
      AuthClassification& c = a.classifications_[class_index++];
      if (c.decidability == Decidability::kDecidable) {
        auto word = PathWordAutomaton::Compile(auth.object.path);
        if (word.ok()) {
          a.decidable_.push_back(
              CompiledAuth{&auth, schema_level, std::move(*word)});
          continue;
        }
        // ClassifyPath and the word compiler accept the same fragment;
        // a disagreement is a bug, but degrading to residual keeps the
        // automaton sound rather than wrong.
        c.decidability = Decidability::kOpaque;
        c.reason = word.status().message();
      }
      residual->push_back(auth);
    }
    return Status::OK();
  };
  XMLSEC_RETURN_IF_ERROR(
      partition(a.instance_, /*schema_level=*/false, &a.residual_instance_));
  XMLSEC_RETURN_IF_ERROR(
      partition(a.schema_, /*schema_level=*/true, &a.residual_schema_));
  for (const AuthClassification& c : a.classifications_) {
    switch (c.decidability) {
      case Decidability::kDecidable:
        a.stats_.decidable_auths++;
        break;
      case Decidability::kPartial:
        a.stats_.partial_auths++;
        break;
      case Decidability::kOpaque:
        a.stats_.opaque_auths++;
        break;
    }
  }

  // Intern the reachable element vocabulary.
  for (const std::string& name : graph.reachable()) {
    a.element_ids_.emplace(name,
                           static_cast<uint32_t>(a.element_names_.size()));
    a.element_names_.push_back(name);
    std::vector<std::string> attrs = graph.Attributes(name);
    std::sort(attrs.begin(), attrs.end());
    a.declared_attrs_.push_back(std::move(attrs));
  }

  // Product construction: BFS over (element, per-auth NFA state sets).
  const size_t n = a.decidable_.size();
  std::vector<uint64_t> start_bits(n, PathWordAutomaton::kStartBits);
  std::map<std::pair<uint32_t, std::vector<uint64_t>>, uint32_t> ids;
  struct WorkItem {
    uint32_t state;
    std::vector<uint64_t> bits;
  };
  std::deque<WorkItem> queue;
  a.states_.emplace_back();
  a.states_[0].element_id = kDocumentId;
  ids.emplace(std::make_pair(kDocumentId, start_bits), 0u);
  queue.push_back(WorkItem{0, std::move(start_bits)});

  std::vector<std::string> doc_children = {graph.root()};
  while (!queue.empty()) {
    WorkItem item = std::move(queue.front());
    queue.pop_front();
    const uint32_t element_id = a.states_[item.state].element_id;
    const std::vector<std::string>& children =
        element_id == kDocumentId ? doc_children
                                  : graph.Children(a.element_names_[element_id]);
    std::vector<std::pair<uint32_t, uint32_t>> transitions;
    transitions.reserve(children.size());
    for (const std::string& child : children) {
      const uint32_t child_id = a.element_ids_.at(child);
      std::vector<uint64_t> next_bits(n);
      for (size_t i = 0; i < n; ++i) {
        next_bits[i] = a.decidable_[i].word.Move(item.bits[i], child);
      }
      auto [it, inserted] =
          ids.emplace(std::make_pair(child_id, next_bits),
                      static_cast<uint32_t>(a.states_.size()));
      if (inserted) {
        if (a.states_.size() >= options.max_states) {
          return Status::InvalidArgument(
              "policy automaton exceeds the state cap (" +
              std::to_string(options.max_states) +
              "); serve through the XPath path instead");
        }
        State st;
        st.element_id = child_id;
        for (size_t i = 0; i < n; ++i) {
          const CompiledAuth& ca = a.decidable_[i];
          if (ca.word.AcceptsElement(next_bits[i])) {
            auto slot = static_cast<size_t>(SlotForTarget(
                *ca.auth, ca.schema_level, /*target_is_attribute=*/false));
            st.element_slots[slot].push_back(static_cast<uint32_t>(i));
          }
          if (ca.word.HasAttributeTests(next_bits[i])) st.attr_tests = true;
        }
        for (const std::string& attr : a.declared_attrs_[child_id]) {
          State::AttrEntry entry;
          entry.name = attr;
          bool any = false;
          for (size_t i = 0; i < n; ++i) {
            const CompiledAuth& ca = a.decidable_[i];
            if (ca.word.AcceptsAttribute(next_bits[i], attr)) {
              auto slot = static_cast<size_t>(SlotForTarget(
                  *ca.auth, ca.schema_level, /*target_is_attribute=*/true));
              entry.slots[slot].push_back(static_cast<uint32_t>(i));
              any = true;
            }
          }
          if (any) st.attrs.push_back(std::move(entry));
        }
        a.states_.push_back(std::move(st));
        queue.push_back(WorkItem{it->second, std::move(next_bits)});
      }
      transitions.emplace_back(child_id, it->second);
      a.stats_.transitions++;
    }
    std::sort(transitions.begin(), transitions.end());
    a.states_[item.state].transitions = std::move(transitions);
  }
  a.stats_.states = a.states_.size();
  return automaton;
}

const PolicyAutomaton::State* PolicyAutomaton::TransitionTo(
    const State& from, uint32_t element_id) const {
  auto it = std::lower_bound(
      from.transitions.begin(), from.transitions.end(),
      std::make_pair(element_id, uint32_t{0}),
      [](const std::pair<uint32_t, uint32_t>& a,
         const std::pair<uint32_t, uint32_t>& b) { return a.first < b.first; });
  if (it == from.transitions.end() || it->first != element_id) return nullptr;
  return &states_[it->second];
}

Result<ExplicitSigns> PolicyAutomaton::ComputeSigns(
    const Document& doc, const Requester& rq, const GroupStore& groups,
    PolicyOptions policy, LabelingStats* stats, bool* schema_mismatch) const {
  if (schema_mismatch != nullptr) *schema_mismatch = false;
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root element");
  }
  ExplicitSigns out(static_cast<size_t>(doc.node_count()));

  // Request-time applicability of the decidable set (action, validity
  // window, requester match) — the only per-request inputs the table
  // resolution depends on.
  std::vector<uint8_t> mask(decidable_.size(), 0);
  for (size_t i = 0; i < decidable_.size(); ++i) {
    const Authorization& auth = *decidable_[i].auth;
    if (static_cast<int>(auth.action) != policy.action) continue;
    if (!auth.AppliesAtTime(rq.time)) continue;
    if (!RequesterMatches(rq, auth.subject, groups)) continue;
    mask[i] = 1;
    if (stats != nullptr) {
      (decidable_[i].schema_level ? stats->applicable_schema_auths
                                  : stats->applicable_instance_auths)++;
    }
  }

  // Residual authorizations still evaluate through XPath, once each.
  XMLSEC_ASSIGN_OR_RETURN(
      SlotCandidates residual,
      authz::CollectSlotCandidates(doc, residual_instance_, residual_schema_,
                                   rq, groups, policy, stats));

  // Lazily resolved per-state rows, cached for this request: subject
  // specificity and conflict resolution depend only on the applicable
  // candidate set of the state, never on the concrete node.
  struct ResolvedState {
    bool ready = false;
    std::array<TriSign, 6> element = kAllEps;
    std::vector<std::array<TriSign, 6>> attrs;
  };
  std::vector<ResolvedState> resolved(states_.size());
  std::vector<const Authorization*> merged;  // per-slot scratch

  auto resolve_lists =
      [&](const std::array<std::vector<uint32_t>, 6>& lists) {
        std::array<TriSign, 6> row = kAllEps;
        for (size_t slot = 0; slot < 6; ++slot) {
          merged.clear();
          for (uint32_t id : lists[slot]) {
            if (mask[id] != 0) merged.push_back(decidable_[id].auth);
          }
          if (!merged.empty()) {
            row[slot] = ResolveSlotCandidates(merged, groups, policy.conflict);
          }
        }
        return row;
      };
  auto rows_of = [&](const State& st) -> ResolvedState& {
    auto sid = static_cast<size_t>(&st - states_.data());
    ResolvedState& rs = resolved[sid];
    if (!rs.ready) {
      rs.element = resolve_lists(st.element_slots);
      rs.attrs.reserve(st.attrs.size());
      for (const State::AttrEntry& entry : st.attrs) {
        rs.attrs.push_back(resolve_lists(entry.slots));
      }
      rs.ready = true;
    }
    return rs;
  };
  // Joint resolution where residual authorizations landed: merge both
  // candidate lists per slot so most-specific-subject overrides apply
  // across the decidable/residual split, exactly as ComputeExplicitSigns
  // resolves the combined candidate map.
  auto joint_row = [&](const std::array<std::vector<uint32_t>, 6>* lists,
                       int64_t doc_order) {
    std::array<TriSign, 6> row = kAllEps;
    for (size_t slot = 0; slot < 6; ++slot) {
      merged.clear();
      if (lists != nullptr) {
        for (uint32_t id : (*lists)[slot]) {
          if (mask[id] != 0) merged.push_back(decidable_[id].auth);
        }
      }
      auto it = residual.slots.find(
          SlotCandidates::KeyOf(doc_order, static_cast<authz::LabelSlot>(slot)));
      if (it != residual.slots.end()) {
        merged.insert(merged.end(), it->second.begin(), it->second.end());
      }
      if (!merged.empty()) {
        row[slot] = ResolveSlotCandidates(merged, groups, policy.conflict);
      }
    }
    return row;
  };

  int64_t table_nodes = 0;
  int64_t residual_nodes = 0;
  std::function<bool(const Element*, const State&)> walk =
      [&](const Element* el, const State& st) -> bool {
    const auto order = static_cast<size_t>(el->doc_order());
    if (residual.touched[order] != 0) {
      out.MutableRow(order) = joint_row(&st.element_slots, el->doc_order());
      residual_nodes++;
    } else {
      out.MutableRow(order) = rows_of(st).element;
      table_nodes++;
    }

    for (const auto& attr : el->attributes()) {
      const auto attr_order = static_cast<size_t>(attr->doc_order());
      const bool touched = residual.touched[attr_order] != 0;
      const State::AttrEntry* entry = nullptr;
      size_t entry_index = 0;
      for (size_t k = 0; k < st.attrs.size(); ++k) {
        if (st.attrs[k].name == attr->name()) {
          entry = &st.attrs[k];
          entry_index = k;
          break;
        }
      }
      if (entry != nullptr) {
        if (touched) {
          out.MutableRow(attr_order) =
              joint_row(&entry->slots, attr->doc_order());
          residual_nodes++;
        } else {
          out.MutableRow(attr_order) = rows_of(st).attrs[entry_index];
          table_nodes++;
        }
        continue;
      }
      const std::vector<std::string>& declared = declared_attrs_[st.element_id];
      if (!std::binary_search(declared.begin(), declared.end(),
                              attr->name()) &&
          st.attr_tests) {
        // An attribute the DTD does not declare, in a context where some
        // compiled authorization tests attributes: acceptance cannot be
        // read off the table, and the document is invalid anyway.
        return false;
      }
      if (touched) {
        out.MutableRow(attr_order) = joint_row(nullptr, attr->doc_order());
        residual_nodes++;
      } else {
        table_nodes++;  // row stays all-ε, exactly like the XPath path
      }
    }

    for (const auto& child : el->children()) {
      if (!child->IsElement()) continue;  // values carry no explicit signs
      const auto* child_el = static_cast<const Element*>(child.get());
      auto id_it = element_ids_.find(child_el->tag());
      if (id_it == element_ids_.end()) return false;  // undeclared element
      const State* next = TransitionTo(st, id_it->second);
      if (next == nullptr) return false;  // content model violation
      if (!walk(child_el, *next)) return false;
    }
    return true;
  };

  bool ok = true;
  for (const auto& child : doc.children()) {
    if (!child->IsElement()) continue;
    const auto* el = static_cast<const Element*>(child.get());
    auto id_it = element_ids_.find(el->tag());
    const State* next = id_it == element_ids_.end()
                            ? nullptr
                            : TransitionTo(states_[0], id_it->second);
    if (next == nullptr || !walk(el, *next)) {
      ok = false;
      break;
    }
  }
  if (!ok) {
    if (schema_mismatch != nullptr) *schema_mismatch = true;
    return out;  // meaningless; the caller must fall back
  }
  if (stats != nullptr) {
    stats->table_nodes += table_nodes;
    stats->residual_nodes += residual_nodes;
    stats->labeled_nodes = doc.node_count();
  }
  return out;
}

// --- Incremental per-node resolution (Resolver) ------------------------
//
// The resolution rules below mirror `ComputeSigns` exactly — same
// applicability mask, same lazy per-state rows, same residual joint
// resolution, same mismatch conditions — only the traversal differs:
// `ComputeSigns` walks the whole tree once, the resolver threads the
// parent chain of each node on demand and memoizes.  The equivalence is
// enforced by the rewrite property suite (tests/rewrite_test.cc).

PolicyAutomaton::Resolver::Resolver(const PolicyAutomaton* owner,
                                    const xml::Document* doc,
                                    const GroupStore* groups,
                                    PolicyOptions policy)
    : owner_(owner), doc_(doc), groups_(groups), policy_(policy) {}

Result<std::unique_ptr<PolicyAutomaton::Resolver>>
PolicyAutomaton::NewResolver(const Document& doc, const Requester& rq,
                             const GroupStore& groups,
                             PolicyOptions policy) const {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root element");
  }
  auto resolver = std::unique_ptr<Resolver>(
      new Resolver(this, &doc, &groups, policy));
  resolver->mask_.assign(decidable_.size(), 0);
  for (size_t i = 0; i < decidable_.size(); ++i) {
    const Authorization& auth = *decidable_[i].auth;
    if (static_cast<int>(auth.action) != policy.action) continue;
    if (!auth.AppliesAtTime(rq.time)) continue;
    if (!RequesterMatches(rq, auth.subject, groups)) continue;
    resolver->mask_[i] = 1;
  }
  XMLSEC_ASSIGN_OR_RETURN(
      resolver->residual_,
      authz::CollectSlotCandidates(doc, residual_instance_, residual_schema_,
                                   rq, groups, policy, /*stats=*/nullptr));
  resolver->resolved_.resize(states_.size());
  resolver->state_memo_.assign(static_cast<size_t>(doc.node_count()),
                               Resolver::kStateUnknown);
  return resolver;
}

namespace {

/// `Resolver` behind the engine-neutral `authz::NodeSignResolver`
/// interface the update path consumes.
class ResolverAdapter final : public authz::NodeSignResolver {
 public:
  explicit ResolverAdapter(std::unique_ptr<PolicyAutomaton::Resolver> impl)
      : impl_(std::move(impl)) {}

  std::array<TriSign, 6> RowFor(const xml::Node& node) override {
    return impl_->RowFor(node);
  }
  bool schema_mismatch() const override { return impl_->schema_mismatch(); }

 private:
  std::unique_ptr<PolicyAutomaton::Resolver> impl_;
};

}  // namespace

std::unique_ptr<authz::NodeSignResolver> PolicyAutomaton::NewNodeResolver(
    const Document& doc, const Requester& rq, const GroupStore& groups,
    PolicyOptions policy) const {
  Result<std::unique_ptr<Resolver>> resolver =
      NewResolver(doc, rq, groups, policy);
  if (!resolver.ok()) return nullptr;
  return std::make_unique<ResolverAdapter>(std::move(*resolver));
}

std::array<TriSign, 6> PolicyAutomaton::Resolver::ResolveLists(
    const std::array<std::vector<uint32_t>, 6>& lists) {
  std::array<TriSign, 6> row = kAllEps;
  for (size_t slot = 0; slot < 6; ++slot) {
    scratch_.clear();
    for (uint32_t id : lists[slot]) {
      if (mask_[id] != 0) scratch_.push_back(owner_->decidable_[id].auth);
    }
    if (!scratch_.empty()) {
      row[slot] = ResolveSlotCandidates(scratch_, *groups_, policy_.conflict);
    }
  }
  return row;
}

std::array<TriSign, 6> PolicyAutomaton::Resolver::JointRow(
    const std::array<std::vector<uint32_t>, 6>* lists, int64_t doc_order) {
  std::array<TriSign, 6> row = kAllEps;
  for (size_t slot = 0; slot < 6; ++slot) {
    scratch_.clear();
    if (lists != nullptr) {
      for (uint32_t id : (*lists)[slot]) {
        if (mask_[id] != 0) scratch_.push_back(owner_->decidable_[id].auth);
      }
    }
    auto it = residual_.slots.find(SlotCandidates::KeyOf(
        doc_order, static_cast<authz::LabelSlot>(slot)));
    if (it != residual_.slots.end()) {
      scratch_.insert(scratch_.end(), it->second.begin(), it->second.end());
    }
    if (!scratch_.empty()) {
      row[slot] = ResolveSlotCandidates(scratch_, *groups_, policy_.conflict);
    }
  }
  return row;
}

const PolicyAutomaton::Resolver::ResolvedState&
PolicyAutomaton::Resolver::Rows(size_t state_id) {
  ResolvedState& rs = resolved_[state_id];
  if (!rs.ready) {
    const State& st = owner_->states_[state_id];
    rs.element = ResolveLists(st.element_slots);
    rs.attrs.reserve(st.attrs.size());
    for (const State::AttrEntry& entry : st.attrs) {
      rs.attrs.push_back(ResolveLists(entry.slots));
    }
    rs.ready = true;
  }
  return rs;
}

int32_t PolicyAutomaton::Resolver::StateFor(const Element* el) {
  const auto order = static_cast<size_t>(el->doc_order());
  if (order >= state_memo_.size()) {
    mismatch_ = true;  // Node outside the resolver's document.
    return kStateMismatch;
  }
  int32_t memo = state_memo_[order];
  if (memo != kStateUnknown) return memo;

  const xml::Node* parent = el->parent();
  size_t from_id = 0;  // state 0: the document context
  if (parent == nullptr) {
    mismatch_ = true;  // Detached element — not part of any document.
    return state_memo_[order] = kStateMismatch;
  }
  if (parent->IsElement()) {
    int32_t parent_state = StateFor(static_cast<const Element*>(parent));
    if (parent_state < 0) return state_memo_[order] = kStateMismatch;
    from_id = static_cast<size_t>(parent_state);
  } else if (parent->type() != xml::NodeType::kDocument) {
    mismatch_ = true;
    return state_memo_[order] = kStateMismatch;
  }

  auto id_it = owner_->element_ids_.find(el->tag());
  if (id_it == owner_->element_ids_.end()) {
    mismatch_ = true;  // Undeclared element.
    return state_memo_[order] = kStateMismatch;
  }
  const State* next =
      owner_->TransitionTo(owner_->states_[from_id], id_it->second);
  if (next == nullptr) {
    mismatch_ = true;  // Content-model violation.
    return state_memo_[order] = kStateMismatch;
  }
  return state_memo_[order] =
             static_cast<int32_t>(next - owner_->states_.data());
}

std::array<TriSign, 6> PolicyAutomaton::Resolver::ElementRow(
    const Element& el) {
  int32_t state_id = StateFor(&el);
  if (state_id < 0) return kAllEps;
  const auto order = static_cast<size_t>(el.doc_order());
  if (order < residual_.touched.size() && residual_.touched[order] != 0) {
    residual_nodes_++;
    return JointRow(&owner_->states_[static_cast<size_t>(state_id)]
                         .element_slots,
                    el.doc_order());
  }
  table_nodes_++;
  return Rows(static_cast<size_t>(state_id)).element;
}

std::array<TriSign, 6> PolicyAutomaton::Resolver::AttrRow(const Attr& attr) {
  const xml::Node* parent = attr.parent();
  if (parent == nullptr || !parent->IsElement()) {
    mismatch_ = true;
    return kAllEps;
  }
  int32_t state_id = StateFor(static_cast<const Element*>(parent));
  if (state_id < 0) return kAllEps;
  const State& st = owner_->states_[static_cast<size_t>(state_id)];
  const auto order = static_cast<size_t>(attr.doc_order());
  const bool touched =
      order < residual_.touched.size() && residual_.touched[order] != 0;

  for (size_t k = 0; k < st.attrs.size(); ++k) {
    if (st.attrs[k].name != attr.name()) continue;
    if (touched) {
      residual_nodes_++;
      return JointRow(&st.attrs[k].slots, attr.doc_order());
    }
    table_nodes_++;
    return Rows(static_cast<size_t>(state_id)).attrs[k];
  }

  const std::vector<std::string>& declared =
      owner_->declared_attrs_[st.element_id];
  if (!std::binary_search(declared.begin(), declared.end(), attr.name()) &&
      st.attr_tests) {
    // Same guard as ComputeSigns: an undeclared attribute under live
    // attribute tests cannot be proven untargeted by the table.
    mismatch_ = true;
    return kAllEps;
  }
  if (touched) {
    residual_nodes_++;
    return JointRow(nullptr, attr.doc_order());
  }
  table_nodes_++;
  return kAllEps;
}

std::array<TriSign, 6> PolicyAutomaton::Resolver::RowFor(
    const xml::Node& node) {
  if (mismatch_) return kAllEps;
  switch (node.type()) {
    case xml::NodeType::kElement:
      return ElementRow(static_cast<const Element&>(node));
    case xml::NodeType::kAttribute:
      return AttrRow(static_cast<const Attr&>(node));
    default:
      return kAllEps;  // Values carry no explicit signs.
  }
}

std::string PolicyAutomaton::Report() const {
  std::string out = "policy automaton over root '" + root_ + "': " +
                    std::to_string(stats_.states) + " states, " +
                    std::to_string(stats_.transitions) + " transitions\n";
  out += DecidabilityReport(instance_, schema_, classifications_);
  return out;
}

}  // namespace analysis
}  // namespace xmlsec
