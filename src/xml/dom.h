#ifndef XMLSEC_XML_DOM_H_
#define XMLSEC_XML_DOM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/dtd.h"

namespace xmlsec {
namespace xml {

class Attr;
class Document;
class Element;

/// Kinds of DOM nodes, following DOM Level 1 Core (the subset the paper's
/// security processor manipulates).
enum class NodeType {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kCData,
  kComment,
  kProcessingInstruction,
};

std::string_view NodeTypeToString(NodeType type);

/// Base class of every node in the document tree.
///
/// Ownership: a parent owns its children through `std::unique_ptr`;
/// `parent()` is a non-owning back pointer.  Attributes are owned by their
/// element but are reachable through the same `Node` interface so that the
/// tree-labeling algorithm of the paper (which labels elements *and*
/// attributes) can treat them uniformly.
class Node {
 public:
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeType type() const { return type_; }

  /// Owning parent; for an attribute this is its owner element; nullptr
  /// for the document node and for detached nodes.
  Node* parent() const { return parent_; }

  /// DOM nodeName: tag name for elements, attribute name for attributes,
  /// "#text", "#cdata-section", "#comment", "#document", or the PI target.
  virtual std::string NodeName() const = 0;

  /// DOM nodeValue: character data for text/CDATA/comment/PI/attribute
  /// nodes; empty for document and element nodes.
  virtual std::string NodeValue() const { return std::string(); }

  /// Deep structural copy (children and attributes included when `deep`).
  /// The copy is detached (no parent) and belongs to no document index.
  virtual std::unique_ptr<Node> Clone(bool deep) const = 0;

  /// Child list (empty for node kinds that cannot have children).
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  size_t child_count() const { return children_.size(); }
  Node* child(size_t i) const { return children_[i].get(); }

  /// Appends `node` as the last child and returns a raw pointer to it.
  Node* AppendChild(std::unique_ptr<Node> node);

  /// Inserts `node` immediately before `reference` (a direct child);
  /// appends when `reference` is null.  Returns the inserted node, or
  /// null when `reference` is not a child (DOM insertBefore).
  Node* InsertBefore(std::unique_ptr<Node> node, const Node* reference);

  /// Replaces direct child `old_child` with `node`; returns ownership of
  /// the old child, or null when `old_child` is not a child of this node
  /// (DOM replaceChild).
  std::unique_ptr<Node> ReplaceChild(std::unique_ptr<Node> node,
                                     Node* old_child);

  /// Detaches `child` (which must be a direct child) and returns ownership.
  std::unique_ptr<Node> RemoveChild(Node* child);

  /// Removes the i-th child.
  void RemoveChildAt(size_t i);

  /// Merges adjacent text children and drops empty ones, recursively
  /// (DOM normalize).  CDATA sections are left intact.
  void Normalize();

  /// The element containing this node, skipping the document node; for an
  /// attribute this is the owner element.  nullptr at the top of the tree.
  Element* ParentElement() const;

  /// Position of this node in a pre-order traversal of its document, with
  /// attributes ordered just after their element (XPath document order).
  /// Valid only after `Document::Reindex()`.
  int64_t doc_order() const { return doc_order_; }

  /// 1-based source position captured by the parser (0 when synthetic).
  int line() const { return line_; }
  int column() const { return column_; }
  void set_source_position(int line, int column) {
    line_ = line;
    column_ = column;
  }

  bool IsElement() const { return type_ == NodeType::kElement; }
  bool IsAttribute() const { return type_ == NodeType::kAttribute; }
  bool IsText() const {
    return type_ == NodeType::kText || type_ == NodeType::kCData;
  }

  /// this as Element / Attr; null when the type does not match.
  Element* AsElement();
  const Element* AsElement() const;
  Attr* AsAttr();
  const Attr* AsAttr() const;

 protected:
  explicit Node(NodeType type) : type_(type) {}

  friend class Document;
  friend class Element;

  NodeType type_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;
  int64_t doc_order_ = -1;
  int line_ = 0;
  int column_ = 0;
};

/// An attribute node.  Its value is stored flat (entity references are
/// expanded by the parser); in the paper's tree model the value is a child
/// "value node" of the attribute — visibility of the value follows the
/// visibility of the attribute itself.
class Attr final : public Node {
 public:
  Attr(std::string name, std::string value)
      : Node(NodeType::kAttribute),
        name_(std::move(name)),
        value_(std::move(value)) {}

  const std::string& name() const { return name_; }
  const std::string& value() const { return value_; }
  void set_value(std::string value) { value_ = std::move(value); }

  /// True when the value came from a DTD default rather than the document.
  bool is_defaulted() const { return defaulted_; }
  void set_defaulted(bool d) { defaulted_ = d; }

  std::string NodeName() const override { return name_; }
  std::string NodeValue() const override { return value_; }
  std::unique_ptr<Node> Clone(bool deep) const override;

 private:
  std::string name_;
  std::string value_;
  bool defaulted_ = false;
};

/// An element node with a tag name, ordered attributes, and children.
class Element final : public Node {
 public:
  explicit Element(std::string tag) : Node(NodeType::kElement), tag_(std::move(tag)) {}

  const std::string& tag() const { return tag_; }

  std::string NodeName() const override { return tag_; }
  std::unique_ptr<Node> Clone(bool deep) const override;

  /// Attribute list in document order.
  const std::vector<std::unique_ptr<Attr>>& attributes() const {
    return attributes_;
  }
  size_t attribute_count() const { return attributes_.size(); }

  /// The value of attribute `name`, or nullopt when absent.
  std::optional<std::string> GetAttribute(std::string_view name) const;

  /// The attribute node named `name`, or nullptr.
  Attr* FindAttribute(std::string_view name);
  const Attr* FindAttribute(std::string_view name) const;

  /// Sets (adding or overwriting) attribute `name`; returns the node.
  Attr* SetAttribute(std::string_view name, std::string_view value);

  /// Attaches an already-built attribute node; fails on duplicates.
  Status AddAttribute(std::unique_ptr<Attr> attr);

  /// Removes attribute `name`; returns whether it existed.
  bool RemoveAttribute(std::string_view name);

  /// Child elements only (skips text/comment/PI children).
  std::vector<Element*> ChildElements() const;

  /// First child element with the given tag, or nullptr.
  Element* FirstChildElement(std::string_view tag) const;

  /// All descendant elements with the given tag, in document order
  /// ("*" matches every element) — DOM getElementsByTagName.
  std::vector<Element*> GetElementsByTagName(std::string_view tag) const;

  /// Concatenation of all descendant text (XPath string-value).
  std::string TextContent() const;

  /// Creates and appends a text child node.
  void AppendText(std::string_view data);

 private:
  std::string tag_;
  std::vector<std::unique_ptr<Attr>> attributes_;
};

/// Character data (text or CDATA section).
class Text final : public Node {
 public:
  explicit Text(std::string data, bool cdata = false)
      : Node(cdata ? NodeType::kCData : NodeType::kText),
        data_(std::move(data)) {}

  const std::string& data() const { return data_; }
  void set_data(std::string d) { data_ = std::move(d); }

  std::string NodeName() const override {
    return type() == NodeType::kCData ? "#cdata-section" : "#text";
  }
  std::string NodeValue() const override { return data_; }
  std::unique_ptr<Node> Clone(bool deep) const override;

 private:
  std::string data_;
};

/// A comment node (`<!-- ... -->`).
class Comment final : public Node {
 public:
  explicit Comment(std::string data)
      : Node(NodeType::kComment), data_(std::move(data)) {}

  const std::string& data() const { return data_; }

  std::string NodeName() const override { return "#comment"; }
  std::string NodeValue() const override { return data_; }
  std::unique_ptr<Node> Clone(bool deep) const override;

 private:
  std::string data_;
};

/// A processing instruction (`<?target data?>`).
class ProcessingInstruction final : public Node {
 public:
  ProcessingInstruction(std::string target, std::string data)
      : Node(NodeType::kProcessingInstruction),
        target_(std::move(target)),
        data_(std::move(data)) {}

  const std::string& target() const { return target_; }
  const std::string& data() const { return data_; }

  std::string NodeName() const override { return target_; }
  std::string NodeValue() const override { return data_; }
  std::unique_ptr<Node> Clone(bool deep) const override;

 private:
  std::string target_;
  std::string data_;
};

/// The document node: prolog items, one root element, epilog items, plus
/// metadata from the XML declaration and document type declaration.
class Document final : public Node {
 public:
  Document() : Node(NodeType::kDocument) {}
  ~Document() override;  // Out of line: Dtd is incomplete here.

  std::string NodeName() const override { return "#document"; }
  std::unique_ptr<Node> Clone(bool deep) const override;

  /// The single root element (nullptr for an empty shell under
  /// construction; a parsed document always has one).
  Element* root() const;

  /// XML declaration data, when present.
  const std::string& version() const { return version_; }
  const std::string& encoding() const { return encoding_; }
  bool standalone() const { return standalone_; }
  bool has_xml_decl() const { return has_xml_decl_; }
  void SetXmlDecl(std::string version, std::string encoding, bool standalone) {
    has_xml_decl_ = true;
    version_ = std::move(version);
    encoding_ = std::move(encoding);
    standalone_ = standalone;
  }

  /// Name declared in `<!DOCTYPE name ...>`; empty when absent.
  const std::string& doctype_name() const { return doctype_name_; }
  void set_doctype_name(std::string name) { doctype_name_ = std::move(name); }

  /// SYSTEM identifier of the external DTD subset; empty when absent.
  const std::string& doctype_system_id() const { return doctype_system_id_; }
  void set_doctype_system_id(std::string id) {
    doctype_system_id_ = std::move(id);
  }

  /// The DTD attached to this document (internal subset, external subset,
  /// or one supplied programmatically); may be null.
  const Dtd* dtd() const { return dtd_.get(); }
  Dtd* mutable_dtd() { return dtd_.get(); }
  void set_dtd(std::unique_ptr<Dtd> dtd);

  /// Recomputes `doc_order()` for every node, attributes included.
  /// Must be called after structural mutation before relying on document
  /// order (the parser and the pruner call it).
  void Reindex();

  /// Total number of nodes (elements + attributes + character data +
  /// comments + PIs + the document node) — the `n` of complexity claims.
  int64_t node_count() const { return node_count_; }

 private:
  bool has_xml_decl_ = false;
  std::string version_ = "1.0";
  std::string encoding_ = "UTF-8";
  bool standalone_ = false;
  std::string doctype_name_;
  std::string doctype_system_id_;
  std::unique_ptr<Dtd> dtd_;
  int64_t node_count_ = 0;
};

/// Calls `fn` for every node of the subtree rooted at `node` in document
/// order (attributes visited right after their element).  `node` itself is
/// included.
void ForEachNode(Node* node, const std::function<void(Node*)>& fn);
void ForEachNode(const Node* node, const std::function<void(const Node*)>& fn);

/// True when `maybe_ancestor` is `node` or one of its ancestors (an
/// attribute's ancestors start at its owner element).
bool IsAncestorOrSelf(const Node* maybe_ancestor, const Node* node);

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_DOM_H_
