#include "xml/content_model.h"

#include <deque>

namespace xmlsec {
namespace xml {

ContentModelMatcher::ContentModelMatcher(const ContentParticle& particle) {
  Fragment all = Compile(particle);
  start_ = all.start;
  accept_ = all.accept;
}

int ContentModelMatcher::NewState() {
  states_.emplace_back();
  return static_cast<int>(states_.size()) - 1;
}

int ContentModelMatcher::SymbolId(const std::string& name) {
  auto it = symbols_.find(name);
  if (it != symbols_.end()) return it->second;
  int id = static_cast<int>(symbols_.size());
  symbols_.emplace(name, id);
  return id;
}

ContentModelMatcher::Fragment ContentModelMatcher::Compile(
    const ContentParticle& particle) {
  Fragment frag{};
  switch (particle.kind) {
    case ContentParticle::Kind::kName: {
      frag.start = NewState();
      frag.accept = NewState();
      states_[frag.start].moves.emplace_back(SymbolId(particle.name),
                                             frag.accept);
      break;
    }
    case ContentParticle::Kind::kSequence: {
      frag.start = NewState();
      int cursor = frag.start;
      for (const ContentParticle& child : particle.children) {
        Fragment sub = Compile(child);
        states_[cursor].eps.push_back(sub.start);
        cursor = sub.accept;
      }
      frag.accept = cursor;
      break;
    }
    case ContentParticle::Kind::kChoice: {
      frag.start = NewState();
      frag.accept = NewState();
      for (const ContentParticle& child : particle.children) {
        Fragment sub = Compile(child);
        states_[frag.start].eps.push_back(sub.start);
        states_[sub.accept].eps.push_back(frag.accept);
      }
      break;
    }
  }
  return ApplyCardinality(frag, particle.cardinality);
}

ContentModelMatcher::Fragment ContentModelMatcher::ApplyCardinality(
    Fragment inner, Cardinality cardinality) {
  switch (cardinality) {
    case Cardinality::kOne:
      return inner;
    case Cardinality::kOptional: {
      states_[inner.start].eps.push_back(inner.accept);
      return inner;
    }
    case Cardinality::kZeroOrMore: {
      Fragment frag{NewState(), NewState()};
      states_[frag.start].eps.push_back(inner.start);
      states_[frag.start].eps.push_back(frag.accept);
      states_[inner.accept].eps.push_back(inner.start);
      states_[inner.accept].eps.push_back(frag.accept);
      return frag;
    }
    case Cardinality::kOneOrMore: {
      Fragment frag{NewState(), NewState()};
      states_[frag.start].eps.push_back(inner.start);
      states_[inner.accept].eps.push_back(inner.start);
      states_[inner.accept].eps.push_back(frag.accept);
      return frag;
    }
  }
  return inner;
}

void ContentModelMatcher::EpsClosure(std::vector<char>* set) const {
  std::deque<int> work;
  for (size_t i = 0; i < set->size(); ++i) {
    if ((*set)[i]) work.push_back(static_cast<int>(i));
  }
  while (!work.empty()) {
    int s = work.front();
    work.pop_front();
    for (int next : states_[s].eps) {
      if (!(*set)[next]) {
        (*set)[next] = 1;
        work.push_back(next);
      }
    }
  }
}

bool ContentModelMatcher::Matches(
    const std::vector<std::string_view>& names) const {
  std::vector<char> current(states_.size(), 0);
  current[start_] = 1;
  EpsClosure(&current);
  for (std::string_view name : names) {
    auto sym = symbols_.find(name);
    if (sym == symbols_.end()) return false;  // Name not in the model.
    std::vector<char> next(states_.size(), 0);
    bool any = false;
    for (size_t s = 0; s < current.size(); ++s) {
      if (!current[s]) continue;
      for (const auto& [symbol, target] : states_[s].moves) {
        if (symbol == sym->second) {
          next[target] = 1;
          any = true;
        }
      }
    }
    if (!any) return false;
    EpsClosure(&next);
    current.swap(next);
  }
  return current[accept_] != 0;
}

}  // namespace xml
}  // namespace xmlsec
