#include "xml/canonical.h"

#include <algorithm>
#include <vector>

namespace xmlsec {
namespace xml {

namespace {

void EscapeTextC14n(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '&':
        *out += "&amp;";
        break;
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '\r':
        *out += "&#xD;";
        break;
      default:
        out->push_back(c);
    }
  }
}

void EscapeAttrC14n(std::string_view value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '&':
        *out += "&amp;";
        break;
      case '<':
        *out += "&lt;";
        break;
      case '"':
        *out += "&quot;";
        break;
      case '\t':
        *out += "&#x9;";
        break;
      case '\n':
        *out += "&#xA;";
        break;
      case '\r':
        *out += "&#xD;";
        break;
      default:
        out->push_back(c);
    }
  }
}

void Render(const Node& node, std::string* out) {
  switch (node.type()) {
    case NodeType::kDocument:
      for (const auto& child : node.children()) {
        Render(*child, out);
      }
      break;
    case NodeType::kElement: {
      const auto& el = static_cast<const Element&>(node);
      *out += "<" + el.tag();
      std::vector<const Attr*> attrs;
      attrs.reserve(el.attribute_count());
      for (const auto& attr : el.attributes()) attrs.push_back(attr.get());
      std::sort(attrs.begin(), attrs.end(),
                [](const Attr* a, const Attr* b) {
                  return a->name() < b->name();
                });
      for (const Attr* attr : attrs) {
        *out += " " + attr->name() + "=\"";
        EscapeAttrC14n(attr->value(), out);
        *out += "\"";
      }
      *out += ">";
      // Merge adjacent character data (text and CDATA render the same).
      std::string pending;
      auto flush = [&]() {
        if (pending.empty()) return;
        EscapeTextC14n(pending, out);
        pending.clear();
      };
      for (const auto& child : node.children()) {
        if (child->IsText()) {
          pending += child->NodeValue();
        } else {
          flush();
          Render(*child, out);
        }
      }
      flush();
      *out += "</" + el.tag() + ">";
      break;
    }
    case NodeType::kText:
    case NodeType::kCData:
      EscapeTextC14n(node.NodeValue(), out);
      break;
    case NodeType::kAttribute:
    case NodeType::kComment:
    case NodeType::kProcessingInstruction:
      break;  // Dropped in canonical form.
  }
}

}  // namespace

std::string CanonicalXml(const Document& doc) {
  std::string out;
  Render(doc, &out);
  return out;
}

std::string CanonicalXml(const Node& node) {
  std::string out;
  Render(node, &out);
  return out;
}

}  // namespace xml
}  // namespace xmlsec
