#ifndef XMLSEC_XML_DTD_TREE_H_
#define XMLSEC_XML_DTD_TREE_H_

#include <string>

#include "xml/dtd.h"

namespace xmlsec {
namespace xml {

/// Renders a DTD as the paper's graphical tree model (Fig. 1b): one node
/// per element and attribute, arcs labeled with the cardinality of the
/// relationship.  Elements print as `(name)`, attributes as `[name]`,
/// arcs as `--*`, `--+`, `--?`, or `---` (exactly one).
///
/// ```
/// (laboratory)
///  |--? [name]
///  |--* (project)
///        |--- [name]
///        |--- [type]
///        |--- (manager)
///        ...
/// ```
///
/// Recursion in the schema is cut at the second occurrence of an element
/// along one branch (printed as `(name)^`).  `root` selects the starting
/// element; empty uses the DTD's declared name or the first declaration.
std::string DtdTreeString(const Dtd& dtd, const std::string& root = "");

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_DTD_TREE_H_
