#ifndef XMLSEC_XML_DTD_TREE_H_
#define XMLSEC_XML_DTD_TREE_H_

#include <string>
#include <vector>

#include "xml/dtd.h"

namespace xmlsec {
namespace xml {

/// One child arc of the schema tree/graph: the target element name and
/// the (pessimistically composed) cardinality of the relationship.
struct SchemaEdge {
  std::string name;
  Cardinality cardinality = Cardinality::kOne;

  friend bool operator==(const SchemaEdge& a, const SchemaEdge& b) {
    return a.name == b.name && a.cardinality == b.cardinality;
  }
};

/// Flattens `decl`'s content specification into child arcs — the edges of
/// the paper's schema graph (Fig. 1b).  Group cardinalities compose with
/// member cardinalities pessimistically (a member of a `*` group is
/// `--*`, members of a choice are individually optional); `kMixed`
/// members are `--*`; `kAny` content yields one `--*` edge per element
/// declared in `dtd`; `kEmpty` yields none.
///
/// Shared by the tree renderer below and by the static policy analyzer
/// (`analysis::SchemaGraph`), which walks these edges instead of a
/// document instance.
std::vector<SchemaEdge> SchemaChildEdges(const Dtd& dtd,
                                         const ElementDecl& decl);

/// Renders a DTD as the paper's graphical tree model (Fig. 1b): one node
/// per element and attribute, arcs labeled with the cardinality of the
/// relationship.  Elements print as `(name)`, attributes as `[name]`,
/// arcs as `--*`, `--+`, `--?`, or `---` (exactly one).
///
/// ```
/// (laboratory)
///  |--? [name]
///  |--* (project)
///        |--- [name]
///        |--- [type]
///        |--- (manager)
///        ...
/// ```
///
/// Recursion in the schema is cut at the second occurrence of an element
/// along one branch (printed as `(name)^`).  `root` selects the starting
/// element; empty uses the DTD's declared name or the first declaration.
std::string DtdTreeString(const Dtd& dtd, const std::string& root = "");

}  // namespace xml
}  // namespace xmlsec

#endif  // XMLSEC_XML_DTD_TREE_H_
