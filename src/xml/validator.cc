#include "xml/validator.h"

#include "common/str_util.h"
#include "xml/chars.h"

namespace xmlsec {
namespace xml {

namespace {

bool IsValidName(std::string_view s) {
  if (s.empty() || !IsNameStartChar(s[0])) return false;
  for (char c : s.substr(1)) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

bool IsValidNmtoken(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

std::vector<std::string> SplitTokens(std::string_view s) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (IsXmlSpace(c)) {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace

Validator::Validator(const Dtd* dtd, ValidationOptions options)
    : dtd_(dtd), options_(options) {}

Status Validator::Validate(Document* doc) {
  errors_.clear();
  seen_ids_.clear();
  pending_idrefs_.clear();

  Element* root = doc->root();
  if (root == nullptr) {
    return Status::ValidationError("document has no root element");
  }
  if (!dtd_->name().empty() && root->tag() != dtd_->name()) {
    AddError(*root, "root element '" + root->tag() +
                        "' does not match DOCTYPE name '" + dtd_->name() +
                        "'");
  }
  ValidateElement(root);

  // Resolve deferred IDREFs against the full ID set.
  for (const auto& [id, context] : pending_idrefs_) {
    if (seen_ids_.find(id) == seen_ids_.end()) {
      errors_.push_back("IDREF '" + id + "' in " + context +
                        " does not match any ID in the document");
    }
  }

  if (errors_.empty()) return Status::OK();
  return Status::ValidationError(
      errors_.front() +
      (errors_.size() > 1
           ? " (and " + std::to_string(errors_.size() - 1) + " more)"
           : ""));
}

void Validator::ValidateElement(Element* el) {
  const ElementDecl* decl = dtd_->FindElement(el->tag());
  if (decl == nullptr) {
    if (options_.strict_declarations) {
      AddError(*el, "element '" + el->tag() + "' is not declared");
    }
  } else {
    switch (decl->content_kind) {
      case ContentKind::kEmpty: {
        for (const auto& child : el->children()) {
          if (child->IsElement() ||
              (child->IsText() && !IsXmlWhitespace(child->NodeValue()))) {
            AddError(*el, "element '" + el->tag() +
                              "' is declared EMPTY but has content");
            break;
          }
        }
        break;
      }
      case ContentKind::kAny:
        break;  // Children validated recursively below.
      case ContentKind::kMixed: {
        for (const auto& child : el->children()) {
          if (!child->IsElement()) continue;
          const auto* ce = static_cast<const Element*>(child.get());
          bool allowed = false;
          for (const std::string& name : decl->mixed_names) {
            if (ce->tag() == name) {
              allowed = true;
              break;
            }
          }
          if (!allowed) {
            AddError(*ce, "element '" + ce->tag() +
                              "' not allowed in mixed content of '" +
                              el->tag() + "'");
          }
        }
        break;
      }
      case ContentKind::kChildren: {
        std::vector<std::string_view> names;
        bool has_text = false;
        for (const auto& child : el->children()) {
          if (child->IsElement()) {
            names.push_back(
                static_cast<const Element*>(child.get())->tag());
          } else if (child->IsText() &&
                     !IsXmlWhitespace(child->NodeValue())) {
            has_text = true;
          }
        }
        if (has_text) {
          AddError(*el, "element '" + el->tag() +
                            "' has character data but is declared with "
                            "element content");
        }
        const ContentModelMatcher* matcher = MatcherFor(*decl);
        if (matcher != nullptr && !matcher->Matches(names)) {
          std::string seq;
          for (size_t i = 0; i < names.size(); ++i) {
            if (i > 0) seq += ",";
            seq += names[i];
          }
          AddError(*el, "content of element '" + el->tag() + "' (" + seq +
                            ") does not match model " +
                            decl->ContentToString());
        }
        break;
      }
    }
  }

  ValidateAttributes(el);

  for (const auto& child : el->children()) {
    if (child->IsElement()) {
      ValidateElement(static_cast<Element*>(child.get()));
    }
  }
}

void Validator::ValidateAttributes(Element* el) {
  const std::vector<AttrDecl>* attlist = dtd_->FindAttlist(el->tag());

  // Every attribute present must be declared (strict mode) and well-typed.
  for (const auto& attr : el->attributes()) {
    const AttrDecl* decl =
        attlist != nullptr ? dtd_->FindAttr(el->tag(), attr->name()) : nullptr;
    if (decl == nullptr) {
      if (options_.strict_declarations) {
        AddError(*attr, "attribute '" + attr->name() +
                            "' is not declared for element '" + el->tag() +
                            "'");
      }
      continue;
    }
    CheckAttrValue(*el, *decl, attr->value());
  }

  if (attlist == nullptr) return;

  // Required / defaulted attributes.
  for (const AttrDecl& decl : *attlist) {
    const Attr* present = el->FindAttribute(decl.name);
    if (present != nullptr) {
      if (decl.default_kind == AttrDefaultKind::kFixed &&
          present->value() != decl.default_value) {
        AddError(*present, "attribute '" + decl.name + "' of element '" +
                               el->tag() + "' must have the #FIXED value '" +
                               decl.default_value + "'");
      }
      continue;
    }
    switch (decl.default_kind) {
      case AttrDefaultKind::kRequired:
        AddError(*el, "required attribute '" + decl.name +
                          "' missing on element '" + el->tag() + "'");
        break;
      case AttrDefaultKind::kImplied:
        break;
      case AttrDefaultKind::kFixed:
      case AttrDefaultKind::kDefault:
        if (options_.add_default_attributes) {
          Attr* added = el->SetAttribute(decl.name, decl.default_value);
          added->set_defaulted(true);
        }
        break;
    }
  }
}

void Validator::CheckAttrValue(const Element& el, const AttrDecl& decl,
                               const std::string& value) {
  const std::string context =
      "attribute '" + decl.name + "' of element '" + el.tag() + "'";
  switch (decl.type) {
    case AttrType::kCData:
      break;
    case AttrType::kId: {
      if (!IsValidName(value)) {
        errors_.push_back("ID " + context + " is not a valid name: '" +
                          value + "'");
        break;
      }
      if (!seen_ids_.insert(value).second) {
        errors_.push_back("duplicate ID '" + value + "' (" + context + ")");
      }
      break;
    }
    case AttrType::kIdRef: {
      if (!IsValidName(value)) {
        errors_.push_back("IDREF " + context + " is not a valid name");
      } else {
        pending_idrefs_.emplace_back(value, context);
      }
      break;
    }
    case AttrType::kIdRefs: {
      std::vector<std::string> refs = SplitTokens(value);
      if (refs.empty()) {
        errors_.push_back("IDREFS " + context + " is empty");
      }
      for (const std::string& ref : refs) {
        if (!IsValidName(ref)) {
          errors_.push_back("IDREFS " + context + " contains invalid name '" +
                            ref + "'");
        } else {
          pending_idrefs_.emplace_back(ref, context);
        }
      }
      break;
    }
    case AttrType::kEntity:
    case AttrType::kEntities: {
      std::vector<std::string> names = decl.type == AttrType::kEntity
                                           ? std::vector<std::string>{value}
                                           : SplitTokens(value);
      for (const std::string& name : names) {
        const EntityDecl* entity = dtd_->FindEntity(name, false);
        if (entity == nullptr || entity->ndata.empty()) {
          errors_.push_back(context + " must name an unparsed entity, got '" +
                            name + "'");
        }
      }
      break;
    }
    case AttrType::kNmToken: {
      if (!IsValidNmtoken(value)) {
        errors_.push_back("NMTOKEN " + context + " has invalid value '" +
                          value + "'");
      }
      break;
    }
    case AttrType::kNmTokens: {
      std::vector<std::string> tokens = SplitTokens(value);
      if (tokens.empty()) {
        errors_.push_back("NMTOKENS " + context + " is empty");
      }
      for (const std::string& token : tokens) {
        if (!IsValidNmtoken(token)) {
          errors_.push_back("NMTOKENS " + context +
                            " contains invalid token '" + token + "'");
        }
      }
      break;
    }
    case AttrType::kNotation: {
      bool found = false;
      for (const std::string& allowed : decl.enum_values) {
        if (value == allowed) {
          found = true;
          break;
        }
      }
      if (!found) {
        errors_.push_back(context + " value '" + value +
                          "' is not among the declared notations");
      } else if (dtd_->FindNotation(value) == nullptr) {
        errors_.push_back(context + " names undeclared notation '" + value +
                          "'");
      }
      break;
    }
    case AttrType::kEnumeration: {
      bool found = false;
      for (const std::string& allowed : decl.enum_values) {
        if (value == allowed) {
          found = true;
          break;
        }
      }
      if (!found) {
        errors_.push_back(context + " value '" + value +
                          "' is not in the enumeration");
      }
      break;
    }
  }
}

const ContentModelMatcher* Validator::MatcherFor(const ElementDecl& decl) {
  if (!decl.particle.has_value()) return nullptr;
  auto it = matchers_.find(decl.name);
  if (it == matchers_.end()) {
    it = matchers_
             .emplace(decl.name,
                      std::make_unique<ContentModelMatcher>(*decl.particle))
             .first;
  }
  return it->second.get();
}

void Validator::AddError(const Node& node, std::string message) {
  if (node.line() > 0) {
    message += StrFormat(" (line %d, column %d)", node.line(), node.column());
  }
  errors_.push_back(std::move(message));
}

Status ValidateDocument(Document* doc, ValidationOptions options) {
  if (doc->dtd() == nullptr) {
    return Status::InvalidArgument("document has no attached DTD");
  }
  Validator validator(doc->dtd(), options);
  return validator.Validate(doc);
}

}  // namespace xml
}  // namespace xmlsec
